// Strategy conformance: the registry-wide contract. Every registered
// consolidation strategy — present and future — must hold the invariants no
// policy is allowed to trade away, across fuzzed cluster shapes and a
// fault-heavy chaos day:
//
//   * capacity is never exceeded and no cluster invariant is violated (the
//     fixture's InvariantChecker counts violations; strict mode in CI turns
//     any one of them into a hard exit);
//   * the §3.1 power gate is never bypassed: a strategy that declares
//     has_power_gate commits nothing on a cluster configured so that
//     consolidation can only lose energy — and a strategy that declares the
//     opposite really does migrate there (the trait is honest);
//   * strategies that declare supports_plan_modes are byte-identical under
//     OASIS_PLAN=full|incremental|verify;
//   * every strategy is jobs-invariant: the same repetitions fold to the
//     same digests at OASIS_JOBS 1 and 4;
//   * the predictive strategy's forecast-window knob fails loudly (exit 2)
//     on malformed input, mirroring OASIS_PLAN / OASIS_POLICY.
//
// The suite iterates RegisteredStrategyNames() so a newly registered
// strategy is conformance-tested by construction, with zero edits here.

#include "src/cluster/strategy.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/check/check.h"
#include "src/cluster/manager.h"
#include "src/cluster/strategy_oasis.h"
#include "src/cluster/strategy_predictive.h"
#include "src/common/rng.h"
#include "src/core/oasis.h"
#include "src/exp/exp.h"
#include "src/fault/fault.h"
#include "src/power/host_profile.h"
#include "src/trace/activity_trace.h"
#include "tests/metric_digest.h"

namespace oasis {
namespace {

using check::CheckMode;
using check::InvariantChecker;

// OASIS_FUZZ_TRIALS caps every fuzz loop (the CI Release leg bounds it; the
// sanitizer legs run the full default depth).
int FuzzTrials(int default_trials) {
  const char* env = std::getenv("OASIS_FUZZ_TRIALS");
  if (env == nullptr || *env == '\0') {
    return default_trials;
  }
  int parsed = std::atoi(env);
  return parsed > 0 ? std::min(parsed, default_trials) : default_trials;
}

TraceSet UniformTrace(int users, bool active) {
  TraceSet set;
  for (int u = 0; u < users; ++u) {
    UserDay day;
    if (active) {
      for (int i = 0; i < kIntervalsPerDay; ++i) {
        day.SetActive(i, true);
      }
    }
    set.push_back(day);
  }
  return set;
}

class ScopedPlanMode {
 public:
  explicit ScopedPlanMode(const char* mode) { setenv("OASIS_PLAN", mode, 1); }
  ~ScopedPlanMode() { unsetenv("OASIS_PLAN"); }
  ScopedPlanMode(const ScopedPlanMode&) = delete;
  ScopedPlanMode& operator=(const ScopedPlanMode&) = delete;
};

// A small-but-interesting rack: enough homes that vacate plans span several
// hosts, two consolidation hosts so draining has somewhere to go.
SimulationConfig SmallRack(const std::string& strategy) {
  SimulationConfig config;
  config.cluster.num_home_hosts = 6;
  config.cluster.num_consolidation_hosts = 2;
  config.cluster.vms_per_home = 8;
  config.cluster.policy = ConsolidationPolicy::kFullToPartial;
  config.cluster.strategy_name = strategy;
  config.seed = 2016;
  return config;
}

uint64_t DigestUnderPlanMode(const SimulationConfig& config, const char* plan_mode) {
  ScopedPlanMode scoped(plan_mode);
  exp::ExperimentPlan plan;
  plan.Add(config);
  std::vector<SimulationResult> results = exp::RunParallel(plan, 1);
  return testing::DigestResult(results.at(0));
}

class StrategyConformanceTest : public ::testing::Test {
 protected:
  void SetUp() override { InvariantChecker::Install(&checker_); }
  void TearDown() override {
    InvariantChecker::Install(nullptr);
    EXPECT_EQ(checker_.violation_count(), 0u)
        << "cluster invariant violations recorded during a conformance run";
  }

  InvariantChecker checker_{CheckMode::kWarn};
};

// --- registry metadata ------------------------------------------------------

TEST(StrategyTraitsTest, TraitsMatchTheRegistryContract) {
  auto traits_of = [](const std::string& name) {
    std::unique_ptr<ConsolidationStrategy> s = MakeStrategy(name);
    EXPECT_NE(s, nullptr) << name;
    return s->traits();
  };
  // The two greedy-planner strategies are the only ones with interchangeable
  // planning backends; local-threshold is the only one without the §3.1 gate.
  EXPECT_TRUE(traits_of("oasis-greedy").has_power_gate);
  EXPECT_TRUE(traits_of("oasis-greedy").supports_plan_modes);
  EXPECT_TRUE(traits_of("predictive").has_power_gate);
  EXPECT_TRUE(traits_of("predictive").supports_plan_modes);
  EXPECT_TRUE(traits_of("first-fit-decreasing").has_power_gate);
  EXPECT_FALSE(traits_of("first-fit-decreasing").supports_plan_modes);
  EXPECT_FALSE(traits_of("local-threshold").has_power_gate);
  EXPECT_FALSE(traits_of("local-threshold").supports_plan_modes);
}

// --- fuzzed shapes ----------------------------------------------------------

TEST_F(StrategyConformanceTest, FuzzedShapesHoldTheInvariants) {
  // Deterministic "fuzz": a pinned Rng walks the shape space so a failure
  // reproduces exactly. Every run executes under the fixture's checker;
  // capacity breaches, double-residency, or power-state misuse all land in
  // violation_count and fail the suite at teardown.
  const int trials = FuzzTrials(6);
  const ConsolidationPolicy kPolicies[] = {
      ConsolidationPolicy::kOnlyPartial, ConsolidationPolicy::kDefault,
      ConsolidationPolicy::kFullToPartial, ConsolidationPolicy::kNewHome};
  uint64_t salt = 0;
  for (const std::string& name : RegisteredStrategyNames()) {
    Rng rng(0xC04F04 + salt++);
    for (int t = 0; t < trials; ++t) {
      SimulationConfig config;
      config.cluster.num_home_hosts = 2 + static_cast<int>(rng.NextBelow(7));
      config.cluster.num_consolidation_hosts = 1 + static_cast<int>(rng.NextBelow(3));
      config.cluster.vms_per_home = 1 + static_cast<int>(rng.NextBelow(10));
      config.cluster.policy = kPolicies[rng.NextBelow(4)];
      config.cluster.strategy_name = name;
      config.day = rng.NextBelow(4) == 0 ? DayKind::kWeekend : DayKind::kWeekday;
      config.seed = rng.NextU64();
      SimulationResult result = ClusterSimulation(config).Run();
      EXPECT_GT(result.metrics.TotalEnergy(), 0.0) << name << " trial " << t;
      EXPECT_GE(result.metrics.baseline_energy, result.metrics.home_host_energy)
          << name << " trial " << t
          << ": home hosts burned more than the no-consolidation baseline";
      EXPECT_EQ(checker_.violation_count(), 0u)
          << name << " trial " << t << " (homes=" << config.cluster.num_home_hosts
          << " cons=" << config.cluster.num_consolidation_hosts
          << " vms=" << config.cluster.vms_per_home << " seed=" << config.seed << ")";
    }
  }
}

TEST_F(StrategyConformanceTest, FuzzedFleetMixesHoldTheInvariantsAndNeverSleepNoS3) {
  // Heterogeneous fleets: random generation mixes drawn from the catalog
  // over the SmallRack shape. Two contracts on top of the usual zero
  // violations: no strategy ever suspends an s3_capable=false host (their
  // per-class sleep ledger must read exactly zero), and S3-capable bands
  // keep working — the mix degrades savings, never correctness.
  const int trials = FuzzTrials(4);
  const std::vector<HostProfile>& catalog = HostGenerationCatalog();
  uint64_t salt = 0;
  for (const std::string& name : RegisteredStrategyNames()) {
    Rng rng(0xF1EE7 + salt++);
    for (int t = 0; t < trials; ++t) {
      SimulationConfig config = SmallRack(name);
      // Carve the 6+2 rack into 1-3 random catalog segments; any remainder
      // past the covered prefix runs the default class-0 profile.
      const int segments = 1 + static_cast<int>(rng.NextBelow(3));
      int hosts_left = config.cluster.TotalHosts();
      for (int s = 0; s < segments && hosts_left > 0; ++s) {
        const int count = 1 + static_cast<int>(rng.NextBelow(
                                  static_cast<uint64_t>(hosts_left)));
        const std::string& generation =
            catalog[rng.NextBelow(catalog.size())].generation;
        config.cluster.fleet.segments.push_back({generation, count});
        hosts_left -= count;
      }
      config.seed = rng.NextU64();
      ASSERT_TRUE(config.cluster.Validate().ok());
      SimulationResult result = ClusterSimulation(config).Run();
      EXPECT_GT(result.metrics.TotalEnergy(), 0.0) << name << " trial " << t;
      EXPECT_EQ(checker_.violation_count(), 0u)
          << name << " trial " << t << " seed=" << config.seed;
      const ClusterMetrics& m = result.metrics;
      ASSERT_EQ(m.hosts_by_class.size(),
                static_cast<size_t>(config.cluster.NumProfileClasses()));
      for (size_t cls = 1; cls < m.hosts_by_class.size(); ++cls) {
        const FleetSegment& segment = config.cluster.fleet.segments[cls - 1];
        if (FindHostGeneration(segment.generation)->s3_capable) {
          continue;
        }
        EXPECT_EQ(m.host_sleep_seconds_by_class[cls], 0.0)
            << name << " trial " << t << ": a " << segment.generation
            << " host slept despite s3_capable=false (seed=" << config.seed << ")";
      }
    }
  }
}

TEST_F(StrategyConformanceTest, ChaosDayCompletesCleanly) {
  // Fault injection exercises the paths a polite day never touches: crashes
  // evicting residents, WoL losses stranding wakes, migration aborts. Every
  // strategy must ride it out without an invariant violation.
  for (const std::string& name : RegisteredStrategyNames()) {
    SimulationConfig config = SmallRack(name);
    config.cluster.fault = FaultConfig::ChaosDay();
    SimulationResult result = ClusterSimulation(config).Run();
    EXPECT_GT(result.metrics.TotalEnergy(), 0.0) << name;
    EXPECT_EQ(checker_.violation_count(), 0u) << name << " under chaos";
  }
}

// --- the power gate ---------------------------------------------------------

TEST_F(StrategyConformanceTest, PowerGateIsNeverBypassed) {
  // Memory servers inflated until parking a home costs more than it saves:
  // gated strategies must sit on their hands all day (baseline draw to the
  // joule), and the one strategy that declares no gate must actually commit
  // a losing plan there — proving the trait describes real behavior.
  for (const std::string& name : RegisteredStrategyNames()) {
    ClusterConfig config;
    config.num_home_hosts = 4;
    config.num_consolidation_hosts = 2;
    config.vms_per_home = 5;
    config.policy = ConsolidationPolicy::kFullToPartial;
    config.strategy_name = name;
    config.seed = 7;
    config.memory_server_power = MemoryServerProfile::WithPower(10'000.0);
    ClusterManager manager(config, UniformTrace(config.TotalVms(), false));
    ClusterMetrics m = manager.Run();
    if (MakeStrategy(name)->traits().has_power_gate) {
      EXPECT_EQ(m.partial_migrations, 0u) << name;
      EXPECT_EQ(m.full_migrations, 0u) << name;
      EXPECT_EQ(m.host_sleeps, 0u) << name;
      EXPECT_NEAR(m.home_host_energy, m.baseline_energy, 1e-6 * m.baseline_energy)
          << name << " deviated from baseline with the gate closed";
    } else {
      EXPECT_GT(m.partial_migrations, 0u)
          << name << " declares no power gate but never migrated";
    }
  }
}

// --- plan-mode and jobs identity --------------------------------------------

TEST_F(StrategyConformanceTest, PlanModesAreByteIdenticalWhereSupported) {
  for (const std::string& name : RegisteredStrategyNames()) {
    if (!MakeStrategy(name)->traits().supports_plan_modes) {
      continue;
    }
    SimulationConfig config = SmallRack(name);
    const uint64_t reference = DigestUnderPlanMode(config, "full");
    EXPECT_EQ(DigestUnderPlanMode(config, "incremental"), reference)
        << name << ": incremental backend diverged from full";
    EXPECT_EQ(DigestUnderPlanMode(config, "verify"), reference)
        << name << ": verify mode diverged from full";
  }
}

TEST_F(StrategyConformanceTest, RepetitionsAreJobsInvariant) {
  // The worker count is an operational knob, never a semantic one: the same
  // repetition folds to the same digest whether it ran alone or on a pool.
  for (const std::string& name : RegisteredStrategyNames()) {
    auto digests_at = [&name](int jobs) {
      exp::ExperimentPlan plan;
      exp::RepetitionSpan span = plan.AddRepetitions(SmallRack(name), 3);
      std::vector<SimulationResult> results = exp::RunParallel(plan, jobs);
      std::vector<uint64_t> digests;
      for (size_t r = 0; r < static_cast<size_t>(span.count); ++r) {
        digests.push_back(testing::DigestResult(results.at(span.first + r)));
      }
      return digests;
    };
    EXPECT_EQ(digests_at(1), digests_at(4)) << name << " is not jobs-invariant";
  }
}

// --- the forecast-window knob -----------------------------------------------

TEST(ForecastWindowDeathTest, MalformedWindowExitsWithStatusTwo) {
  // Mirrors OASIS_PLAN / OASIS_POLICY: a malformed value is a fatal
  // configuration error, not a silent default.
  for (const char* bad : {"banana", "0", "-3", "999", "6x", ""}) {
    if (*bad == '\0') {
      continue;  // empty means "use the default", tested below
    }
    setenv("OASIS_FORECAST_WINDOW", bad, 1);
    EXPECT_EXIT(ForecastWindowFromEnv(), ::testing::ExitedWithCode(2),
                "OASIS_FORECAST_WINDOW") << "value: " << bad;
  }
  unsetenv("OASIS_FORECAST_WINDOW");
  EXPECT_EQ(ForecastWindowFromEnv(), 6);
  setenv("OASIS_FORECAST_WINDOW", "12", 1);
  EXPECT_EQ(ForecastWindowFromEnv(), 12);
  setenv("OASIS_FORECAST_WINDOW", "", 1);
  EXPECT_EQ(ForecastWindowFromEnv(), 6);
  unsetenv("OASIS_FORECAST_WINDOW");
}

}  // namespace
}  // namespace oasis
