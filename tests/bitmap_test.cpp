#include "src/mem/bitmap.h"

#include <gtest/gtest.h>

#include <vector>

namespace oasis {
namespace {

TEST(BitmapTest, StartsClear) {
  Bitmap b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.Count(), 0u);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(b.Get(i));
  }
}

TEST(BitmapTest, SetClearGet) {
  Bitmap b(128);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(127);
  EXPECT_TRUE(b.Get(0));
  EXPECT_TRUE(b.Get(63));
  EXPECT_TRUE(b.Get(64));
  EXPECT_TRUE(b.Get(127));
  EXPECT_EQ(b.Count(), 4u);
  b.Clear(63);
  EXPECT_FALSE(b.Get(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(BitmapTest, SetRange) {
  Bitmap b(200);
  b.SetRange(50, 100);
  EXPECT_EQ(b.Count(), 100u);
  EXPECT_FALSE(b.Get(49));
  EXPECT_TRUE(b.Get(50));
  EXPECT_TRUE(b.Get(149));
  EXPECT_FALSE(b.Get(150));
}

TEST(BitmapTest, SetAllRespectsTailBits) {
  Bitmap b(70);  // not a multiple of 64
  b.SetAll();
  EXPECT_EQ(b.Count(), 70u);
  b.ClearAll();
  EXPECT_EQ(b.Count(), 0u);
}

TEST(BitmapTest, ForEachSetVisitsAscending) {
  Bitmap b(300);
  std::vector<size_t> expected = {3, 64, 65, 190, 299};
  for (size_t i : expected) {
    b.Set(i);
  }
  std::vector<size_t> seen;
  b.ForEachSet([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(BitmapTest, OrWithUnions) {
  Bitmap a(100);
  Bitmap b(100);
  a.Set(1);
  b.Set(2);
  b.Set(1);
  a.OrWith(b);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_TRUE(a.Get(1));
  EXPECT_TRUE(a.Get(2));
}

TEST(BitmapTest, AndNotWithSubtracts) {
  Bitmap a(100);
  Bitmap b(100);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  a.AndNotWith(b);
  EXPECT_TRUE(a.Get(1));
  EXPECT_FALSE(a.Get(2));
}

TEST(BitmapTest, FindFirstClear) {
  Bitmap b(130);
  EXPECT_EQ(b.FindFirstClear(), 0u);
  b.SetRange(0, 130);
  EXPECT_EQ(b.FindFirstClear(), 130u);  // none
  b.Clear(128);
  EXPECT_EQ(b.FindFirstClear(), 128u);
  EXPECT_EQ(b.FindFirstClear(129), 130u);
}

TEST(BitmapTest, Equality) {
  Bitmap a(64);
  Bitmap b(64);
  EXPECT_EQ(a, b);
  a.Set(5);
  EXPECT_FALSE(a == b);
  b.Set(5);
  EXPECT_EQ(a, b);
}

TEST(BitmapTest, LargeBitmapCount) {
  Bitmap b(1u << 20);  // one Mi pages, a 4 GiB VM
  for (size_t i = 0; i < b.size(); i += 4096) {
    b.Set(i);
  }
  EXPECT_EQ(b.Count(), (1u << 20) / 4096);
}

TEST(BitmapTest, CountStaysExactThroughEveryMutator) {
  // The memoized count must agree with a from-scratch popcount after every
  // kind of mutation, including redundant sets/clears and the word-level ops
  // that invalidate the memo.
  Bitmap b(200);
  b.Set(3);
  b.Set(3);  // redundant set must not double-count
  b.Set(70);
  EXPECT_EQ(b.Count(), 2u);
  b.Clear(3);
  b.Clear(3);  // redundant clear must not under-count
  EXPECT_EQ(b.Count(), 1u);
  b.SetRange(10, 20);
  EXPECT_EQ(b.Count(), 21u);

  Bitmap mask(200);
  mask.SetRange(15, 100);
  b.OrWith(mask);
  EXPECT_EQ(b.Count(), 105u);  // {70} ∪ [10,30) ∪ [15,115) = [10,115)
  b.AndNotWith(mask);
  EXPECT_EQ(b.Count(), 5u);  // [10,15)
  b.Set(0);
  EXPECT_EQ(b.Count(), 6u);  // incremental updates resume after revalidation
  b.SetAll();
  EXPECT_EQ(b.Count(), 200u);
  b.ClearAll();
  EXPECT_EQ(b.Count(), 0u);
}

TEST(BitmapTest, EqualityIgnoresCountMemoState) {
  // Two bitmaps with identical bits must compare equal even when one has a
  // valid memo and the other was just invalidated by a word-level op.
  Bitmap a(64);
  a.Set(5);
  a.Set(9);
  Bitmap b(64);
  Bitmap mask(64);
  mask.Set(5);
  mask.Set(9);
  b.OrWith(mask);  // same bits as `a`, memo invalidated
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Count(), b.Count());
}

}  // namespace
}  // namespace oasis
