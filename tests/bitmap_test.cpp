#include "src/mem/bitmap.h"

#include <gtest/gtest.h>

#include <vector>

namespace oasis {
namespace {

TEST(BitmapTest, StartsClear) {
  Bitmap b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.Count(), 0u);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(b.Get(i));
  }
}

TEST(BitmapTest, SetClearGet) {
  Bitmap b(128);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(127);
  EXPECT_TRUE(b.Get(0));
  EXPECT_TRUE(b.Get(63));
  EXPECT_TRUE(b.Get(64));
  EXPECT_TRUE(b.Get(127));
  EXPECT_EQ(b.Count(), 4u);
  b.Clear(63);
  EXPECT_FALSE(b.Get(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(BitmapTest, SetRange) {
  Bitmap b(200);
  b.SetRange(50, 100);
  EXPECT_EQ(b.Count(), 100u);
  EXPECT_FALSE(b.Get(49));
  EXPECT_TRUE(b.Get(50));
  EXPECT_TRUE(b.Get(149));
  EXPECT_FALSE(b.Get(150));
}

TEST(BitmapTest, SetAllRespectsTailBits) {
  Bitmap b(70);  // not a multiple of 64
  b.SetAll();
  EXPECT_EQ(b.Count(), 70u);
  b.ClearAll();
  EXPECT_EQ(b.Count(), 0u);
}

TEST(BitmapTest, ForEachSetVisitsAscending) {
  Bitmap b(300);
  std::vector<size_t> expected = {3, 64, 65, 190, 299};
  for (size_t i : expected) {
    b.Set(i);
  }
  std::vector<size_t> seen;
  b.ForEachSet([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(BitmapTest, OrWithUnions) {
  Bitmap a(100);
  Bitmap b(100);
  a.Set(1);
  b.Set(2);
  b.Set(1);
  a.OrWith(b);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_TRUE(a.Get(1));
  EXPECT_TRUE(a.Get(2));
}

TEST(BitmapTest, AndNotWithSubtracts) {
  Bitmap a(100);
  Bitmap b(100);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  a.AndNotWith(b);
  EXPECT_TRUE(a.Get(1));
  EXPECT_FALSE(a.Get(2));
}

TEST(BitmapTest, FindFirstClear) {
  Bitmap b(130);
  EXPECT_EQ(b.FindFirstClear(), 0u);
  b.SetRange(0, 130);
  EXPECT_EQ(b.FindFirstClear(), 130u);  // none
  b.Clear(128);
  EXPECT_EQ(b.FindFirstClear(), 128u);
  EXPECT_EQ(b.FindFirstClear(129), 130u);
}

TEST(BitmapTest, Equality) {
  Bitmap a(64);
  Bitmap b(64);
  EXPECT_EQ(a, b);
  a.Set(5);
  EXPECT_FALSE(a == b);
  b.Set(5);
  EXPECT_EQ(a, b);
}

TEST(BitmapTest, LargeBitmapCount) {
  Bitmap b(1u << 20);  // one Mi pages, a 4 GiB VM
  for (size_t i = 0; i < b.size(); i += 4096) {
    b.Set(i);
  }
  EXPECT_EQ(b.Count(), (1u << 20) / 4096);
}

}  // namespace
}  // namespace oasis
