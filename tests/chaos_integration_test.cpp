// Chaos integration: a full simulated cluster day with nonzero rates for
// every cluster-level fault class, plus control-plane episodes covering the
// RPC and memory-server classes. Validates through the observability export
// that every injected fault has a matching recovery, that no VM is lost,
// and that energy/time accounting still balances to the simulated day.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "src/core/oasis.h"
#include "src/ctrl/controller.h"
#include "src/ctrl/host_agent.h"
#include "src/ctrl/rpc_bus.h"
#include "src/fault/fault.h"
#include "src/hyper/memory_server.h"
#include "src/obs/trace.h"
#include "src/trace/trace_generator.h"
#include "tests/mini_json.h"

namespace oasis {
namespace {

using oasis::testing::JsonParser;
using oasis::testing::JsonValue;

ClusterConfig ChaosCluster() {
  ClusterConfig config;
  config.num_home_hosts = 8;
  config.num_consolidation_hosts = 3;
  config.vms_per_home = 12;
  config.policy = ConsolidationPolicy::kFullToPartial;
  config.seed = 20160418;
  config.fault = FaultConfig::ChaosDay();
  // Push the scheduled classes hard enough that each fires several times.
  config.fault.host_crash_per_hour = 0.5;
  config.fault.memory_server_failure_per_hour = 0.75;
  config.fault.migration_abort_per_hour = 2.0;
  return config;
}

TraceSet ChaosTrace(const ClusterConfig& config) {
  TraceGenerator generator(TraceGeneratorConfig{}, config.seed ^ 0x7ACEBA5Eull);
  return generator.GenerateTraceSet(config.TotalVms(), DayKind::kWeekday);
}

class ChaosIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::Global().SetCapacity(1 << 19);
    obs::Tracer::Global().set_enabled(true);
  }
  void TearDown() override {
    obs::Tracer::Global().set_enabled(false);
    obs::Tracer::Global().Clear();
  }
};

TEST_F(ChaosIntegrationTest, FullChaosDayPairsEveryInjectionWithRecovery) {
  ClusterConfig config = ChaosCluster();
  TraceSet trace = ChaosTrace(config);
  ClusterManager manager(config, trace);
  ClusterMetrics metrics = manager.Run();
  const FaultInjector& injector = manager.fault_injector();

  // Every cluster-level class fired, and every injection recovered.
  const FaultClass cluster_classes[] = {
      FaultClass::kHostCrash, FaultClass::kWolLoss, FaultClass::kResumeHang,
      FaultClass::kMemoryServerFailure, FaultClass::kMigrationAbort};
  for (FaultClass fault : cluster_classes) {
    EXPECT_GT(injector.injected(fault), 0u) << FaultClassName(fault);
    EXPECT_EQ(injector.injected(fault), injector.recovered(fault))
        << FaultClassName(fault);
  }
  EXPECT_GT(metrics.faults_injected, 0u);
  EXPECT_EQ(metrics.faults_injected, metrics.faults_recovered);
  EXPECT_GT(metrics.crash_vm_restarts, 0u);

  // No VM lost: every VM is resident exactly where the manager thinks it is,
  // and the cluster-wide census still adds up.
  size_t census = 0;
  for (size_t v = 0; v < manager.num_vms(); ++v) {
    const VmSlot& vm = manager.GetVm(static_cast<VmId>(v));
    ASSERT_LT(vm.location, manager.num_hosts()) << "vm " << v;
    EXPECT_TRUE(manager.GetHost(vm.location).vms().count(vm.id))
        << "vm " << v << " not resident at host " << vm.location;
  }
  for (size_t h = 0; h < manager.num_hosts(); ++h) {
    census += manager.GetHost(static_cast<HostId>(h)).vms().size();
  }
  EXPECT_EQ(census, static_cast<size_t>(config.TotalVms()));

  // Energy/time accounting balances: every host's power-state ledger covers
  // exactly the simulated day, crashes and emergency wakes included.
  for (size_t h = 0; h < manager.num_hosts(); ++h) {
    EXPECT_EQ(manager.GetHost(static_cast<HostId>(h)).ledger().TotalTime(),
              SimTime::Hours(24.0))
        << "host " << h;
  }
  EXPECT_GT(metrics.TotalEnergy(), 0.0);
  EXPECT_GT(metrics.baseline_energy, 0.0);
  EXPECT_LT(metrics.TotalEnergy(), metrics.baseline_energy);

  // The trace export is the external evidence: per class, the number of
  // inject instants matches the injector's count and the recover spans pair
  // up one-to-one.
  ASSERT_EQ(obs::Tracer::Global().dropped(), 0u)
      << "trace ring too small for the chaos day; counts would be partial";
  std::string path = ::testing::TempDir() + "/oasis_chaos.trace.jsonl";
  ASSERT_TRUE(obs::Tracer::Global().ExportJsonlFile(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::map<std::string, uint64_t> names;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    JsonValue event;
    ASSERT_TRUE(JsonParser::Parse(line, &event)) << line;
    if (event.has("cat") && event.at("cat").str == "fault") {
      ++names[event.at("name").str];
    }
  }
  for (FaultClass fault : cluster_classes) {
    std::string name = FaultClassName(fault);
    EXPECT_EQ(names["inject." + name], injector.injected(fault)) << name;
    EXPECT_EQ(names["recover." + name], injector.recovered(fault)) << name;
  }
  std::remove(path.c_str());
}

TEST_F(ChaosIntegrationTest, ChaosDayIsSeedDeterministic) {
  ClusterConfig config = ChaosCluster();
  TraceSet trace = ChaosTrace(config);
  ClusterManager a(config, trace);
  ClusterMetrics ma = a.Run();
  obs::Tracer::Global().Clear();
  ClusterManager b(config, trace);
  ClusterMetrics mb = b.Run();

  EXPECT_EQ(ma.faults_injected, mb.faults_injected);
  EXPECT_EQ(ma.faults_recovered, mb.faults_recovered);
  EXPECT_EQ(ma.crash_vm_restarts, mb.crash_vm_restarts);
  EXPECT_EQ(ma.host_wakes, mb.host_wakes);
  EXPECT_EQ(ma.reintegrations, mb.reintegrations);
  EXPECT_EQ(ma.TotalEnergy(), mb.TotalEnergy());  // bitwise, not approximate
  for (int c = 0; c < kNumFaultClasses; ++c) {
    FaultClass fault = static_cast<FaultClass>(c);
    EXPECT_EQ(a.fault_injector().injected(fault), b.fault_injector().injected(fault));
  }
}

TEST_F(ChaosIntegrationTest, DisabledAndZeroRateRunsAreByteIdentical) {
  // The acceptance bar for the disabled default: enabling the subsystem with
  // all rates at zero must not consume a single extra random draw, so the
  // run is bit-identical to one with the subsystem off.
  ClusterConfig off = ChaosCluster();
  off.fault = FaultConfig{};  // disabled default
  TraceSet trace = ChaosTrace(off);
  ClusterManager a(off, trace);
  ClusterMetrics ma = a.Run();

  ClusterConfig zeros = off;
  zeros.fault.enabled = true;  // enabled, but every rate/probability is 0.0
  ClusterManager b(zeros, trace);
  ClusterMetrics mb = b.Run();

  EXPECT_EQ(ma.TotalEnergy(), mb.TotalEnergy());
  EXPECT_EQ(ma.host_wakes, mb.host_wakes);
  EXPECT_EQ(ma.host_sleeps, mb.host_sleeps);
  EXPECT_EQ(ma.full_migrations, mb.full_migrations);
  EXPECT_EQ(ma.partial_migrations, mb.partial_migrations);
  EXPECT_EQ(ma.reintegrations, mb.reintegrations);
  ASSERT_EQ(ma.timeline.size(), mb.timeline.size());
  for (size_t i = 0; i < ma.timeline.size(); ++i) {
    EXPECT_EQ(ma.timeline[i].active_vms, mb.timeline[i].active_vms) << i;
    EXPECT_EQ(ma.timeline[i].powered_hosts, mb.timeline[i].powered_hosts) << i;
    EXPECT_EQ(ma.timeline[i].partial_vms, mb.timeline[i].partial_vms) << i;
  }
  EXPECT_EQ(mb.faults_injected, 0u);
  EXPECT_EQ(mb.faults_recovered, 0u);
}

TEST_F(ChaosIntegrationTest, RpcDropAndDelayRecoverThroughRetries) {
  FaultConfig config;
  config.enabled = true;
  config.rpc_drop_probability = 0.2;
  config.rpc_delay_probability = 0.2;
  config.max_rpc_attempts = 8;  // deep enough that no exchange exhausts
  FaultInjector injector(config, 4242);

  RpcBus bus;
  bus.set_fault_injector(&injector);
  ConfigStore store;
  store.Put("/configs/a.cfg",
            "vmid = 0001\ndisk = nfs://images/a.img\nmemory = 4G\nvcpus = 1\n");
  ClusterController controller(&bus, &store);
  std::vector<std::unique_ptr<HostAgent>> agents;
  for (HostId h = 0; h < 3; ++h) {
    agents.push_back(std::make_unique<HostAgent>(&bus, h, 128 * kGiB));
    controller.RegisterHost(h, 128 * kGiB);
  }

  ASSERT_TRUE(controller.CreateVm("/configs/a.cfg").ok());
  for (int i = 0; i < 100; ++i) {
    bus.set_now(SimTime::Seconds(i));
    ASSERT_EQ(controller.CollectStats().size(), 3u) << "round " << i;
  }

  EXPECT_GT(bus.dropped(), 0u);
  EXPECT_GT(bus.delayed(), 0u);
  EXPECT_GT(bus.retries(), 0u);
  EXPECT_GT(bus.total_backoff(), SimTime::Zero());
  EXPECT_GT(bus.total_delay(), SimTime::Zero());
  // Every dropped delivery was recovered by a retry (none exhausted), and
  // every delay is accounted as an instantly-recovered fault.
  EXPECT_EQ(injector.injected(FaultClass::kRpcDrop),
            injector.recovered(FaultClass::kRpcDrop));
  EXPECT_EQ(injector.injected(FaultClass::kRpcDelay),
            injector.recovered(FaultClass::kRpcDelay));
  EXPECT_GT(injector.injected(FaultClass::kRpcDrop), 0u);
  EXPECT_GT(injector.injected(FaultClass::kRpcDelay), 0u);
}

TEST_F(ChaosIntegrationTest, MemoryServerServeFailureRecoversViaRepair) {
  FaultConfig config;
  config.enabled = true;
  config.serve_failure_probability = 0.05;
  FaultInjector injector(config, 99);

  MemoryServer server{MemoryServerConfig{}};
  server.set_fault_injector(&injector);
  server.Upload(SimTime::Zero(), /*vm=*/1, 256 * kPageSize);

  SimTime now = SimTime::Seconds(1);
  bool failed = false;
  for (int page = 0; page < 512 && !failed; ++page) {
    StatusOr<SimTime> served = server.ServePageRequest(now, 1, page % 256);
    now = now + SimTime::Millis(1);
    if (!served.ok()) {
      EXPECT_EQ(served.status().code(), StatusCode::kAborted);
      failed = true;
    }
  }
  ASSERT_TRUE(failed) << "serve-failure probability never fired";
  ASSERT_TRUE(server.failed());
  // While failed, every request bounces with kUnavailable.
  EXPECT_EQ(server.ServePageRequest(now, 1, 0).status().code(),
            StatusCode::kUnavailable);
  // Repair closes the loop: the injector pairs the injection with a recovery
  // spanning the outage.
  server.Repair(now + SimTime::Seconds(30));
  EXPECT_FALSE(server.failed());
  EXPECT_EQ(injector.injected(FaultClass::kMemoryServerFailure), 1u);
  EXPECT_EQ(injector.recovered(FaultClass::kMemoryServerFailure), 1u);
  EXPECT_TRUE(server.ServePageRequest(now + SimTime::Seconds(31), 1, 0).ok());
}

}  // namespace
}  // namespace oasis
