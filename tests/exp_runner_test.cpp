// The parallel experiment runner's determinism contract: for any OASIS_JOBS
// value, RunParallel must produce bit-identical results, aggregates, and
// merged global observability compared with the serial (jobs=1) legacy path.
// These tests run real simulations on several workers, so they double as the
// TSan exercise for the run-local RunContext isolation.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <vector>

#include "src/exp/exp.h"
#include "src/exp/thread_pool.h"
#include "src/fault/fault.h"
#include "src/obs/metrics.h"
#include "src/obs/run_context.h"
#include "src/obs/trace.h"

namespace oasis {
namespace {

// Small enough for unit-test latency, big enough to exercise migrations,
// sleeps, and the consolidation policy.
SimulationConfig SmallCluster(uint64_t seed = 1234,
                              ConsolidationPolicy policy = ConsolidationPolicy::kFullToPartial) {
  SimulationConfig config;
  config.cluster.num_home_hosts = 6;
  config.cluster.num_consolidation_hosts = 2;
  config.cluster.vms_per_home = 8;
  config.cluster.policy = policy;
  config.seed = seed;
  return config;
}

void ExpectSameMetrics(const ClusterMetrics& a, const ClusterMetrics& b) {
  // Exact equality on purpose: the contract is bit-identical, not close.
  EXPECT_EQ(a.TotalEnergy(), b.TotalEnergy());
  EXPECT_EQ(a.baseline_energy, b.baseline_energy);
  EXPECT_EQ(a.EnergySavings(), b.EnergySavings());
  EXPECT_EQ(a.full_migrations, b.full_migrations);
  EXPECT_EQ(a.partial_migrations, b.partial_migrations);
  EXPECT_EQ(a.reintegrations, b.reintegrations);
  EXPECT_EQ(a.host_sleeps, b.host_sleeps);
  EXPECT_EQ(a.host_wakes, b.host_wakes);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.transition_delay_s.count(), b.transition_delay_s.count());
}

TEST(ExperimentPlanTest, AddAssignsSequentialIndices) {
  exp::ExperimentPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.Add(SmallCluster(1)), 0u);
  EXPECT_EQ(plan.Add(SmallCluster(2)), 1u);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.runs()[0].config.seed, 1u);
  EXPECT_EQ(plan.runs()[1].config.seed, 2u);
  EXPECT_EQ(plan.runs()[1].index, 1u);
}

TEST(ExperimentPlanTest, AddRepetitionsDerivesSeedsAtPlanBuildTime) {
  exp::ExperimentPlan plan;
  plan.Add(SmallCluster(7));
  exp::RepetitionSpan span = plan.AddRepetitions(SmallCluster(100), 3);
  EXPECT_EQ(span.first, 1u);
  EXPECT_EQ(span.count, 3);
  ASSERT_EQ(plan.size(), 4u);
  for (int rep = 0; rep < 3; ++rep) {
    const exp::PlannedRun& run = plan.runs()[span.first + rep];
    EXPECT_EQ(run.repetition, rep);
    EXPECT_EQ(run.config.seed, exp::ExperimentPlan::DeriveSeed(100, rep));
  }
  // The golden-ratio stride produces distinct streams.
  EXPECT_NE(exp::ExperimentPlan::DeriveSeed(100, 1), exp::ExperimentPlan::DeriveSeed(100, 2));
  EXPECT_EQ(exp::ExperimentPlan::DeriveSeed(100, 0), 100u);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  exp::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> done{0};
  for (int i = 0; i < 500; ++i) {
    pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 500);
  // The pool stays usable after a Wait().
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 600);
}

TEST(ExpRunnerTest, ParallelResultsMatchSerialBitForBit) {
  // A quickstart-style mixed plan: different seeds, policies, and a
  // repetition group, all in one plan.
  exp::ExperimentPlan plan;
  plan.Add(SmallCluster(11));
  plan.Add(SmallCluster(22, ConsolidationPolicy::kDefault));
  plan.AddRepetitions(SmallCluster(33), 3);

  std::vector<SimulationResult> serial = exp::RunParallel(plan, 1);
  std::vector<SimulationResult> parallel = exp::RunParallel(plan, 4);
  ASSERT_EQ(serial.size(), plan.size());
  ASSERT_EQ(parallel.size(), plan.size());
  for (size_t i = 0; i < plan.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectSameMetrics(serial[i].metrics, parallel[i].metrics);
  }
}

TEST(ExpRunnerTest, CollectRepeatedMatchesLegacyRunRepeated) {
  // exp::RunRepeated on N workers must reproduce oasis::RunRepeated's
  // aggregates exactly, including the floating-point reduction order.
  SimulationConfig config = SmallCluster(2016);
  RepeatedRunResult legacy = oasis::RunRepeated(config, 4);
  RepeatedRunResult parallel = exp::RunRepeated(config, 4, 4);

  EXPECT_EQ(parallel.savings.count(), legacy.savings.count());
  EXPECT_EQ(parallel.savings.mean(), legacy.savings.mean());
  EXPECT_EQ(parallel.savings.stddev(), legacy.savings.stddev());
  EXPECT_EQ(parallel.total_energy_kwh.mean(), legacy.total_energy_kwh.mean());
  EXPECT_EQ(parallel.total_energy_kwh.min(), legacy.total_energy_kwh.min());
  EXPECT_EQ(parallel.total_energy_kwh.max(), legacy.total_energy_kwh.max());
  EXPECT_EQ(parallel.baseline_energy_kwh.mean(), legacy.baseline_energy_kwh.mean());
  ASSERT_EQ(parallel.runs.size(), legacy.runs.size());
  for (size_t i = 0; i < legacy.runs.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectSameMetrics(parallel.runs[i].metrics, legacy.runs[i].metrics);
  }
}

TEST(ExpRunnerTest, MergedGlobalObsMatchesSerialExecution) {
  obs::Tracer& tracer = obs::Tracer::Global();
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  tracer.Clear();
  tracer.set_enabled(true);
  metrics.ResetValues();
  metrics.set_enabled(true);

  exp::ExperimentPlan plan;
  plan.Add(SmallCluster(5));
  plan.AddRepetitions(SmallCluster(6), 2);

  (void)exp::RunParallel(plan, 1);
  std::vector<obs::TraceEvent> serial_events = tracer.Events();
  uint64_t serial_total = tracer.total_recorded();
  uint64_t serial_dropped = tracer.dropped();
  std::vector<obs::MetricRow> serial_rows = metrics.Snapshot();
  std::ostringstream serial_csv;
  metrics.WriteCsv(serial_csv);

  tracer.Clear();
  metrics.ResetValues();
  (void)exp::RunParallel(plan, 4);

  // The run-local rings merge in plan order, so the retained suffix, the
  // total, and the drop count all match the serial run.
  EXPECT_EQ(tracer.total_recorded(), serial_total);
  EXPECT_EQ(tracer.dropped(), serial_dropped);
  std::vector<obs::TraceEvent> parallel_events = tracer.Events();
  ASSERT_EQ(parallel_events.size(), serial_events.size());
  for (size_t i = 0; i < serial_events.size(); ++i) {
    EXPECT_EQ(parallel_events[i].ts_us, serial_events[i].ts_us) << "event " << i;
    EXPECT_STREQ(parallel_events[i].name, serial_events[i].name) << "event " << i;
  }

  std::vector<obs::MetricRow> parallel_rows = metrics.Snapshot();
  ASSERT_EQ(parallel_rows.size(), serial_rows.size());
  for (size_t i = 0; i < serial_rows.size(); ++i) {
    EXPECT_EQ(parallel_rows[i].name, serial_rows[i].name);
    EXPECT_EQ(parallel_rows[i].count, serial_rows[i].count) << serial_rows[i].name;
    // Histogram sums fold per-run before merging, so the mean may move by a
    // few ULPs vs serial; the exported CSV (6 significant digits) is the
    // byte-identical artifact and is compared below.
    EXPECT_NEAR(parallel_rows[i].value, serial_rows[i].value,
                1e-9 * (1.0 + std::abs(serial_rows[i].value)))
        << serial_rows[i].name;
  }
  std::ostringstream parallel_csv;
  metrics.WriteCsv(parallel_csv);
  EXPECT_EQ(parallel_csv.str(), serial_csv.str());

  tracer.set_enabled(false);
  tracer.Clear();
  metrics.set_enabled(false);
  metrics.ResetValues();
}

TEST(ExpRunnerTest, WorkerThreadsLeaveNoContextInstalled) {
  exp::ExperimentPlan plan;
  plan.Add(SmallCluster(9));
  plan.Add(SmallCluster(10));
  (void)exp::RunParallel(plan, 2);
  // The calling thread never had a context; the workers' Scopes must have
  // unwound before RunParallel returned.
  EXPECT_EQ(obs::RunContext::Current(), nullptr);
}

TEST(ExpRunnerTest, FaultInjectionIsRunLocalAndDeterministic) {
  // Chaos runs executing concurrently must not bleed injections into each
  // other: per-class counters must match the serial execution exactly.
  SimulationConfig config = SmallCluster(77);
  config.cluster.fault = FaultConfig::ChaosDay();
  exp::ExperimentPlan plan;
  plan.AddRepetitions(config, 3);

  std::vector<SimulationResult> serial = exp::RunParallel(plan, 1);
  std::vector<SimulationResult> parallel = exp::RunParallel(plan, 3);
  ASSERT_EQ(parallel.size(), serial.size());
  uint64_t total_injected = 0;
  for (size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectSameMetrics(serial[i].metrics, parallel[i].metrics);
    for (size_t c = 0; c < kNumFaultClasses; ++c) {
      EXPECT_EQ(parallel[i].metrics.fault_injected_by_class[c],
                serial[i].metrics.fault_injected_by_class[c]);
      EXPECT_EQ(parallel[i].metrics.fault_recovered_by_class[c],
                serial[i].metrics.fault_recovered_by_class[c]);
      total_injected += serial[i].metrics.fault_injected_by_class[c];
    }
  }
  EXPECT_GT(total_injected, 0u) << "chaos day injected nothing; test is vacuous";
}

}  // namespace
}  // namespace oasis
