#include "src/hyper/memory_server.h"

#include <gtest/gtest.h>

namespace oasis {
namespace {

TEST(MemoryServerTest, UploadTimeFollowsSasBandwidth) {
  MemoryServer server;
  SimTime done = server.Upload(SimTime::Zero(), 1, 1306 * kMiB);
  EXPECT_NEAR(done.seconds(), 10.2, 0.1);
  EXPECT_TRUE(server.HasImage(1));
  EXPECT_EQ(server.StoredBytes(), 1306 * kMiB);
}

TEST(MemoryServerTest, ConcurrentUploadsSerializeOnSas) {
  MemoryServer server;
  SimTime d1 = server.Upload(SimTime::Zero(), 1, 128 * kMiB);
  SimTime d2 = server.Upload(SimTime::Zero(), 2, 128 * kMiB);
  EXPECT_NEAR(d1.seconds(), 1.0, 0.01);
  EXPECT_NEAR(d2.seconds(), 2.0, 0.01);
}

TEST(MemoryServerTest, ServeUnknownVmFails) {
  MemoryServer server;
  StatusOr<SimTime> r = server.ServePageRequest(SimTime::Zero(), 99, 0);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(MemoryServerTest, ColdRequestPaysDiskSeek) {
  MemoryServer server;
  server.Upload(SimTime::Zero(), 1, 100 * kMiB);
  StatusOr<SimTime> r = server.ServePageRequest(SimTime::Zero(), 1, 12345);
  ASSERT_TRUE(r.ok());
  MemoryServerConfig config;
  SimTime expected_miss = config.network_rtt + config.disk_seek + config.decompress_per_page;
  EXPECT_EQ(*r, expected_miss);
}

TEST(MemoryServerTest, SameChunkHitsCache) {
  MemoryServer server;
  server.Upload(SimTime::Zero(), 1, 100 * kMiB);
  uint64_t base = 7 * kPagesPerChunk;
  StatusOr<SimTime> miss = server.ServePageRequest(SimTime::Zero(), 1, base);
  StatusOr<SimTime> hit = server.ServePageRequest(SimTime::Zero(), 1, base + 3);
  ASSERT_TRUE(miss.ok());
  ASSERT_TRUE(hit.ok());
  EXPECT_LT(*hit, *miss);
  EXPECT_EQ(server.cache_hits(), 1u);
  EXPECT_EQ(server.pages_served(), 2u);
}

TEST(MemoryServerTest, CacheEvictsOldChunks) {
  MemoryServerConfig config;
  config.chunk_cache_entries = 2;
  MemoryServer server(config);
  server.Upload(SimTime::Zero(), 1, 100 * kMiB);
  server.ServePageRequest(SimTime::Zero(), 1, 0 * kPagesPerChunk);      // miss chunk 0
  server.ServePageRequest(SimTime::Zero(), 1, 1 * kPagesPerChunk);      // miss chunk 1
  server.ServePageRequest(SimTime::Zero(), 1, 2 * kPagesPerChunk);      // miss chunk 2 (evicts 0)
  StatusOr<SimTime> r = server.ServePageRequest(SimTime::Zero(), 1, 1);  // chunk 0 again
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(server.cache_hits(), 0u);
}

TEST(MemoryServerTest, RemoveFreesImageAndCache) {
  MemoryServer server;
  server.Upload(SimTime::Zero(), 1, 50 * kMiB);
  server.ServePageRequest(SimTime::Zero(), 1, 0);
  server.Remove(1);
  EXPECT_FALSE(server.HasImage(1));
  EXPECT_EQ(server.StoredBytes(), 0u);
  EXPECT_FALSE(server.ServePageRequest(SimTime::Zero(), 1, 0).ok());
}

TEST(MemoryServerTest, PowerAccountingOnlyWhileOn) {
  MemoryServer server;
  server.PowerOn(SimTime::Zero());
  EXPECT_TRUE(server.powered());
  server.PowerOff(SimTime::Hours(1));
  EXPECT_FALSE(server.powered());
  Joules after_off = server.EnergyUsed(SimTime::Hours(10));
  // 42.2 W for exactly one hour.
  EXPECT_NEAR(ToWattHours(after_off), 42.2, 0.01);
}

TEST(MemoryServerTest, DoublePowerOnIsIdempotent) {
  MemoryServer server;
  server.PowerOn(SimTime::Zero());
  server.PowerOn(SimTime::Hours(1));
  server.PowerOff(SimTime::Hours(2));
  EXPECT_NEAR(ToWattHours(server.EnergyUsed(SimTime::Hours(2))), 84.4, 0.01);
}

TEST(MemoryServerTest, MultipleVmImagesAccumulate) {
  MemoryServer server;
  server.Upload(SimTime::Zero(), 1, 100 * kMiB);
  server.Upload(SimTime::Zero(), 2, 200 * kMiB);
  server.Upload(SimTime::Zero(), 1, 50 * kMiB);  // differential adds on
  EXPECT_EQ(server.StoredBytes(), 350 * kMiB);
}

}  // namespace
}  // namespace oasis
