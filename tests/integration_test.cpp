// Cross-module integration tests: the paper's qualitative claims must hold
// end-to-end on a mid-sized cluster with a realistic synthetic trace.

#include <gtest/gtest.h>

#include "src/core/oasis.h"

namespace oasis {
namespace {

// 10 homes x 10 VMs with 2 consolidation hosts: big enough for the policy
// dynamics, small enough for unit-test latency.
SimulationConfig MidCluster(ConsolidationPolicy policy, DayKind day = DayKind::kWeekday) {
  SimulationConfig config;
  config.cluster.num_home_hosts = 10;
  config.cluster.num_consolidation_hosts = 2;
  config.cluster.vms_per_home = 10;
  config.cluster.policy = policy;
  config.day = day;
  config.seed = 1234;
  return config;
}

double Savings(ConsolidationPolicy policy, DayKind day = DayKind::kWeekday) {
  return ClusterSimulation(MidCluster(policy, day)).Run().metrics.EnergySavings();
}

TEST(IntegrationTest, HybridBeatsPartialOnly) {
  // The paper's core claim: hybrid consolidation (FulltoPartial) saves far
  // more energy than partial migration alone.
  double only_partial = Savings(ConsolidationPolicy::kOnlyPartial);
  double full_to_partial = Savings(ConsolidationPolicy::kFullToPartial);
  EXPECT_GT(full_to_partial, only_partial + 0.05);
}

TEST(IntegrationTest, FullToPartialBeatsDefault) {
  // §5.3: recycling idle full VMs into partials frees consolidation memory.
  double dflt = Savings(ConsolidationPolicy::kDefault);
  double f2p = Savings(ConsolidationPolicy::kFullToPartial);
  EXPECT_GT(f2p, dflt);
}

TEST(IntegrationTest, NewHomeAddsLittleOverFullToPartial) {
  // §5.3: "the more complex NewHome policy does not achieve additional
  // saving beyond the FulltoPartial policy".
  double f2p = Savings(ConsolidationPolicy::kFullToPartial);
  double new_home = Savings(ConsolidationPolicy::kNewHome);
  EXPECT_NEAR(new_home, f2p, 0.08);
}

TEST(IntegrationTest, WeekendsSaveMoreThanWeekdays) {
  double weekday = Savings(ConsolidationPolicy::kFullToPartial, DayKind::kWeekday);
  double weekend = Savings(ConsolidationPolicy::kFullToPartial, DayKind::kWeekend);
  EXPECT_GT(weekend, weekday);
}

TEST(IntegrationTest, FullToPartialTradesTrafficForEnergy) {
  // §5.4: FulltoPartial moves more bytes than Default in exchange for the
  // energy win.
  auto dflt = ClusterSimulation(MidCluster(ConsolidationPolicy::kDefault)).Run();
  auto f2p = ClusterSimulation(MidCluster(ConsolidationPolicy::kFullToPartial)).Run();
  EXPECT_GT(f2p.metrics.traffic.NetworkTotal(), dflt.metrics.traffic.NetworkTotal());
}

TEST(IntegrationTest, FullToPartialRaisesConsolidationRatio) {
  // Fig 9: the median number of VMs per consolidation host grows when idle
  // full VMs are recycled into partials.
  auto dflt = ClusterSimulation(MidCluster(ConsolidationPolicy::kDefault)).Run();
  auto f2p = ClusterSimulation(MidCluster(ConsolidationPolicy::kFullToPartial)).Run();
  ASSERT_GT(dflt.metrics.consolidation_ratio.count(), 0u);
  ASSERT_GT(f2p.metrics.consolidation_ratio.count(), 0u);
  EXPECT_GT(f2p.metrics.consolidation_ratio.Quantile(0.5),
            dflt.metrics.consolidation_ratio.Quantile(0.5));
}

TEST(IntegrationTest, MostTransitionsAreZeroDelay) {
  // Fig 11: the majority of idle->active transitions land on full VMs.
  auto result = ClusterSimulation(MidCluster(ConsolidationPolicy::kFullToPartial)).Run();
  const EmpiricalCdf& delays = result.metrics.transition_delay_s;
  ASSERT_GT(delays.count(), 100u);
  EXPECT_GT(delays.FractionAtOrBelow(0.001), 0.35);
  // And reintegration delays are small: sub-minute p99.
  EXPECT_LT(delays.Quantile(0.99), 60.0);
}

TEST(IntegrationTest, CheaperMemoryServerImprovesSavings) {
  // Table 3: memory-server power directly trades against savings.
  SimulationConfig base = MidCluster(ConsolidationPolicy::kFullToPartial);
  SimulationConfig cheap = base;
  cheap.cluster.memory_server_power = MemoryServerProfile::WithPower(1.0);
  double savings_base = ClusterSimulation(base).Run().metrics.EnergySavings();
  double savings_cheap = ClusterSimulation(cheap).Run().metrics.EnergySavings();
  EXPECT_GT(savings_cheap, savings_base + 0.02);
}

TEST(IntegrationTest, MoreConsolidationHostsNeverHurtMuch) {
  // Fig 8: savings rise with consolidation hosts then level off.
  SimulationConfig two = MidCluster(ConsolidationPolicy::kFullToPartial);
  SimulationConfig four = two;
  four.cluster.num_consolidation_hosts = 4;
  double s2 = ClusterSimulation(two).Run().metrics.EnergySavings();
  double s4 = ClusterSimulation(four).Run().metrics.EnergySavings();
  EXPECT_GT(s4, s2 - 0.05);
}

TEST(IntegrationTest, PoweredHostsTrackActivity) {
  // Fig 7: powered-host count correlates with the active-VM curve.
  auto result = ClusterSimulation(MidCluster(ConsolidationPolicy::kFullToPartial)).Run();
  const auto& timeline = result.metrics.timeline;
  int peak_active = 0;
  int peak_interval = 0;
  int trough_active = INT32_MAX;
  int trough_interval = 0;
  // Skip the first hour (initial consolidation transient).
  for (size_t i = 12; i < timeline.size(); ++i) {
    if (timeline[i].active_vms > peak_active) {
      peak_active = timeline[i].active_vms;
      peak_interval = static_cast<int>(i);
    }
    if (timeline[i].active_vms < trough_active) {
      trough_active = timeline[i].active_vms;
      trough_interval = static_cast<int>(i);
    }
  }
  EXPECT_GE(timeline[peak_interval].powered_hosts, timeline[trough_interval].powered_hosts);
}

}  // namespace
}  // namespace oasis
