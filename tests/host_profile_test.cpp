// Heterogeneous-fleet plumbing: the HostProfile catalog, the OASIS_FLEET
// wire format, ClusterConfig's host -> profile-class resolution, and the
// strict-mode contract that an s3_capable=false host can never be suspended.
//
// The homogeneous-default pin matters most: an empty FleetMix must resolve
// every host to class 0, whose power curve IS ClusterConfig::host_power —
// watt-for-watt, not approximately — because every pre-existing golden and
// metamorphic digest rides on that identity.

#include "src/power/host_profile.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/check/check.h"
#include "src/cluster/cluster_types.h"
#include "src/cluster/host.h"
#include "src/power/power_model.h"
#include "src/sim/simulator.h"

namespace oasis {
namespace {

// Bitwise equality between two power curves — the fleet refactor's contract
// is byte identity on the default path, so EXPECT_NEAR is not good enough.
void ExpectSameCurve(const HostPowerProfile& a, const HostPowerProfile& b) {
  EXPECT_EQ(a.idle_watts, b.idle_watts);
  EXPECT_EQ(a.watts_at_20_vms, b.watts_at_20_vms);
  EXPECT_EQ(a.sleep_watts, b.sleep_watts);
  EXPECT_EQ(a.suspend_watts, b.suspend_watts);
  EXPECT_EQ(a.resume_watts, b.resume_watts);
  EXPECT_EQ(a.suspend_latency, b.suspend_latency);
  EXPECT_EQ(a.resume_latency, b.resume_latency);
}

// --- HostPowerProfile::Scaled -----------------------------------------------

TEST(ScaledProfileTest, ScalesEveryWattageAndLeavesLatenciesAlone) {
  HostPowerProfile base;
  HostPowerProfile scaled = base.Scaled(1.5);
  EXPECT_EQ(scaled.idle_watts, base.idle_watts * 1.5);
  EXPECT_EQ(scaled.watts_at_20_vms, base.watts_at_20_vms * 1.5);
  EXPECT_EQ(scaled.sleep_watts, base.sleep_watts * 1.5);
  EXPECT_EQ(scaled.suspend_watts, base.suspend_watts * 1.5);
  EXPECT_EQ(scaled.resume_watts, base.resume_watts * 1.5);
  // Resizing the box changes its draw, not its ACPI timing.
  EXPECT_EQ(scaled.suspend_latency, base.suspend_latency);
  EXPECT_EQ(scaled.resume_latency, base.resume_latency);
  // The identity scale is the identity transform, bit for bit.
  ExpectSameCurve(base.Scaled(1.0), base);
}

TEST(ScaledProfileTest, SetVmsPerHomeUsesTheSharedScaleTransform) {
  // SetVmsPerHome(45) is the old hand-scaling call site; it must now be
  // exactly Scaled(45/30) — same products, same bits.
  ClusterConfig config;
  const HostPowerProfile before = config.host_power;
  config.SetVmsPerHome(45);
  ExpectSameCurve(config.host_power, before.Scaled(1.5));
  EXPECT_EQ(config.vms_per_home, 45);
  EXPECT_EQ(config.fleet_power_scale, 1.5);
  EXPECT_EQ(config.host_memory_bytes, static_cast<uint64_t>(192) * kGiB);
}

// --- the generation catalog -------------------------------------------------

TEST(CatalogTest, HasTheThreeGenerations) {
  const std::vector<HostProfile>& catalog = HostGenerationCatalog();
  ASSERT_EQ(catalog.size(), 3u);
  EXPECT_EQ(catalog[0].generation, "table1");
  EXPECT_EQ(catalog[1].generation, "efficient-v2");
  EXPECT_EQ(catalog[2].generation, "legacy-no-s3");
  for (const HostProfile& profile : catalog) {
    EXPECT_NE(HostGenerationNames().find(profile.generation), std::string::npos);
    EXPECT_EQ(FindHostGeneration(profile.generation), &profile);
  }
  EXPECT_EQ(FindHostGeneration("supermicro-x9"), nullptr);
}

TEST(CatalogTest, Table1IsThePaperHostWattForWatt) {
  const HostProfile* table1 = FindHostGeneration("table1");
  ASSERT_NE(table1, nullptr);
  ExpectSameCurve(table1->power, HostPowerProfile());
  EXPECT_TRUE(table1->s3_capable);
  EXPECT_EQ(table1->capacity_scale, 1.0);
}

TEST(CatalogTest, GenerationsSpanTheInterestingAxes) {
  const HostProfile* efficient = FindHostGeneration("efficient-v2");
  const HostProfile* legacy = FindHostGeneration("legacy-no-s3");
  ASSERT_NE(efficient, nullptr);
  ASSERT_NE(legacy, nullptr);
  const HostPowerProfile table1;
  // The newer box idles and sleeps cheaper, cycles S3 faster, packs more.
  EXPECT_LT(efficient->power.idle_watts, table1.idle_watts);
  EXPECT_LT(efficient->power.sleep_watts, table1.sleep_watts);
  EXPECT_LT(efficient->power.suspend_latency, table1.suspend_latency);
  EXPECT_TRUE(efficient->s3_capable);
  EXPECT_EQ(efficient->capacity_scale, 1.25);
  // The legacy box is hungrier everywhere and cannot enter S3 at all.
  EXPECT_GT(legacy->power.idle_watts, table1.idle_watts);
  EXPECT_GT(legacy->power.watts_at_20_vms, table1.watts_at_20_vms);
  EXPECT_FALSE(legacy->s3_capable);
}

// --- ParseFleetMix ----------------------------------------------------------

TEST(ParseFleetMixTest, ParsesTheWireFormat) {
  StatusOr<FleetMix> mix = ParseFleetMix("table1:10,legacy-no-s3:2,efficient-v2:4");
  ASSERT_TRUE(mix.ok()) << mix.status().ToString();
  ASSERT_EQ(mix->segments.size(), 3u);
  EXPECT_EQ(mix->segments[0].generation, "table1");
  EXPECT_EQ(mix->segments[0].count, 10);
  EXPECT_EQ(mix->segments[1].generation, "legacy-no-s3");
  EXPECT_EQ(mix->segments[1].count, 2);
  EXPECT_EQ(mix->segments[2].generation, "efficient-v2");
  EXPECT_EQ(mix->segments[2].count, 4);
  EXPECT_EQ(mix->CoveredHosts(), 16);
  EXPECT_TRUE(mix->Validate().ok());
}

TEST(ParseFleetMixTest, RejectsMalformedSpecs) {
  // Every rejection is an InvalidArgument, matching the exit-2 convention
  // the benches build on top of this parser.
  for (const char* bad :
       {"", "table1", "table1:", ":5", "table1:x", "table1:0", "table1:-3",
        "table1:10,,efficient-v2:4", "not-a-generation:5"}) {
    StatusOr<FleetMix> mix = ParseFleetMix(bad);
    EXPECT_FALSE(mix.ok()) << "accepted \"" << bad << "\"";
  }
}

// --- ClusterConfig resolution -----------------------------------------------

TEST(FleetResolutionTest, EmptyMixResolvesEveryHostToTheDefaultCurve) {
  ClusterConfig config;
  EXPECT_EQ(config.NumProfileClasses(), 1);
  for (HostId id = 0; id < static_cast<HostId>(config.TotalHosts()); ++id) {
    EXPECT_EQ(config.ProfileClassOf(id), 0);
  }
  HostProfile resolved = config.ResolvedProfile(0);
  ExpectSameCurve(resolved.power, config.host_power);
  EXPECT_TRUE(resolved.s3_capable);
  EXPECT_EQ(resolved.capacity_scale, 1.0);
}

TEST(FleetResolutionTest, SegmentsMapConsecutiveRangesAndTheTailIsClassZero) {
  ClusterConfig config;
  config.fleet.segments = {{"table1", 2}, {"legacy-no-s3", 3}};
  ASSERT_TRUE(config.Validate().ok());
  EXPECT_EQ(config.NumProfileClasses(), 3);
  EXPECT_EQ(config.ProfileClassOf(0), 1);
  EXPECT_EQ(config.ProfileClassOf(1), 1);
  EXPECT_EQ(config.ProfileClassOf(2), 2);
  EXPECT_EQ(config.ProfileClassOf(4), 2);
  // Hosts past the covered prefix fall back to the default generation.
  EXPECT_EQ(config.ProfileClassOf(5), 0);
  EXPECT_EQ(config.ProfileClassOf(config.TotalHosts() - 1), 0);

  EXPECT_FALSE(config.HostProfileFor(3).s3_capable);
  ExpectSameCurve(config.HostProfileFor(0).power,
                  FindHostGeneration("table1")->power);
  ExpectSameCurve(config.HostProfileFor(10).power, config.host_power);
}

TEST(FleetResolutionTest, SetVmsPerHomeRescalesCatalogGenerationsCoherently) {
  // Resizing the standard host must resize the whole fleet: catalog
  // generations pick up the compounded scale through fleet_power_scale,
  // using the exact Scaled() products.
  ClusterConfig config;
  config.fleet.segments = {{"efficient-v2", 4}};
  config.SetVmsPerHome(60);
  ExpectSameCurve(config.ResolvedProfile(1).power,
                  FindHostGeneration("efficient-v2")->power.Scaled(2.0));
}

TEST(FleetResolutionTest, ValidateRejectsUnknownGenerations) {
  ClusterConfig config;
  config.fleet.segments = {{"not-a-generation", 4}};
  EXPECT_FALSE(config.Validate().ok());
  config.fleet.segments = {{"table1", 0}};
  EXPECT_FALSE(config.Validate().ok());
}

// --- ClusterHost's authoritative copy ---------------------------------------

TEST(HeterogeneousHostTest, HostsCarryTheirOwnProfile) {
  ClusterConfig config;
  config.fleet.segments = {{"legacy-no-s3", 1}, {"efficient-v2", 1}};
  ASSERT_TRUE(config.Validate().ok());

  ClusterHost legacy(0, HostRole::kHome, config, true);
  EXPECT_FALSE(legacy.s3_capable());
  EXPECT_EQ(legacy.profile_class(), 1);
  ExpectSameCurve(legacy.power_profile(), FindHostGeneration("legacy-no-s3")->power);

  ClusterHost efficient(1, HostRole::kHome, config, true);
  EXPECT_TRUE(efficient.s3_capable());
  EXPECT_EQ(efficient.profile_class(), 2);
  EXPECT_EQ(efficient.capacity_bytes(),
            static_cast<uint64_t>(static_cast<double>(config.host_memory_bytes) * 1.25));

  ClusterHost tail(2, HostRole::kHome, config, true);
  EXPECT_EQ(tail.profile_class(), 0);
  ExpectSameCurve(tail.power_profile(), config.host_power);
}

TEST(HeterogeneousHostTest, NoS3HostStartsPoweredAndIgnoresSleepRequests) {
  ClusterConfig config;
  config.fleet.segments = {{"legacy-no-s3", 1}};
  ASSERT_TRUE(config.Validate().ok());
  // There is no sleeping state for this box to start the day in.
  ClusterHost host(0, HostRole::kHome, config, /*initially_powered=*/false);
  EXPECT_TRUE(host.IsPowered());
}

// --- the strict-mode contract -----------------------------------------------

TEST(NoS3DeathTest, StrictCheckerRejectsSuspendingAnIncapableHost) {
  // The planner and actuator both gate on s3_capable(); if any future caller
  // bypasses them and suspends a no-S3 box anyway, the invariant checker
  // must turn the run into a hard exit-2 — the same contract as every other
  // strict-mode violation.
  auto force_suspend = [] {
    {
      check::CheckConfig strict;
      strict.mode = check::CheckMode::kStrict;
      check::CheckScope scope(strict);
      ClusterConfig config;
      config.fleet.segments = {{"legacy-no-s3", 1}};
      Simulator sim;
      ClusterHost host(0, HostRole::kHome, config, true);
      host.RequestSleep(sim);
    }  // strict CheckScope closes with a recorded violation -> exit 2
    std::exit(0);
  };
  EXPECT_EXIT(force_suspend(), ::testing::ExitedWithCode(2),
              "s3_on_incapable_host");
}

}  // namespace
}  // namespace oasis
