// Calibration tests for the idle-access processes behind Figures 1 and 2.

#include "src/mem/access_generator.h"

#include <gtest/gtest.h>

#include "src/common/stats.h"

namespace oasis {
namespace {

TEST(IdleAccessTest, Figure1UniqueBytesAtOneHour) {
  // §2: desktop 188.2 MiB, web 37.6 MiB, db 30.6 MiB after one idle hour.
  IdleAccessGenerator desktop(VmType::kDesktop, 1);
  IdleAccessGenerator web(VmType::kWebServer, 1);
  IdleAccessGenerator db(VmType::kDatabase, 1);
  SimTime hour = SimTime::Hours(1);
  EXPECT_NEAR(ToMiB(desktop.CumulativeUniqueBytes(hour)), 188.2, 0.5);
  EXPECT_NEAR(ToMiB(web.CumulativeUniqueBytes(hour)), 37.6, 0.5);
  EXPECT_NEAR(ToMiB(db.CumulativeUniqueBytes(hour)), 30.6, 0.5);
}

TEST(IdleAccessTest, UniqueBytesCurveIsMonotoneAndSaturating) {
  IdleAccessGenerator gen(VmType::kDesktop, 2);
  uint64_t prev = 0;
  for (int m = 1; m <= 60; ++m) {
    uint64_t u = gen.CumulativeUniqueBytes(SimTime::Minutes(m));
    EXPECT_GE(u, prev);
    prev = u;
  }
  // First 10 minutes cover far more than proportional share (saturation).
  uint64_t at10 = gen.CumulativeUniqueBytes(SimTime::Minutes(10));
  uint64_t at60 = gen.CumulativeUniqueBytes(SimTime::Minutes(60));
  EXPECT_GT(at10 * 6, at60 * 2);
}

TEST(IdleAccessTest, ZeroTimeZeroBytes) {
  IdleAccessGenerator gen(VmType::kDatabase, 3);
  EXPECT_EQ(gen.CumulativeUniqueBytes(SimTime::Zero()), 0u);
}

TEST(IdleAccessTest, DatabaseGapMeanMatchesPaper) {
  // §2: mean page-request inter-arrival of 3.9 minutes for one DB VM.
  IdleAccessGenerator gen(VmType::kDatabase, 4);
  std::vector<SimTime> bursts = gen.GenerateBurstTimes(SimTime::Hours(100));
  ASSERT_GT(bursts.size(), 500u);
  double mean_gap = SimTime::Hours(100).seconds() / static_cast<double>(bursts.size());
  EXPECT_NEAR(mean_gap / 60.0, 3.9, 0.4);
}

TEST(IdleAccessTest, TenVmAggregateGapMatchesPaper) {
  // §2: 5 web + 5 db VMs aggregate to a 5.8 s mean inter-arrival.
  std::vector<std::vector<SimTime>> streams;
  for (int i = 0; i < 5; ++i) {
    IdleAccessGenerator web(VmType::kWebServer, 100 + i);
    IdleAccessGenerator db(VmType::kDatabase, 200 + i);
    streams.push_back(web.GenerateBurstTimes(SimTime::Hours(10)));
    streams.push_back(db.GenerateBurstTimes(SimTime::Hours(10)));
  }
  std::vector<SimTime> merged = MergeRequestStreams(streams);
  double mean_gap = SimTime::Hours(10).seconds() / static_cast<double>(merged.size());
  EXPECT_NEAR(mean_gap, 5.8, 0.8);
}

TEST(IdleAccessTest, MergedStreamsAreSorted) {
  IdleAccessGenerator a(VmType::kWebServer, 5);
  IdleAccessGenerator b(VmType::kDatabase, 6);
  auto merged = MergeRequestStreams(
      {a.GenerateBurstTimes(SimTime::Hours(1)), b.GenerateBurstTimes(SimTime::Hours(1))});
  for (size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1], merged[i]);
  }
}

TEST(IdleAccessTest, BurstPagesAtLeastOneAndMeanMatches) {
  IdleAccessGenerator gen(VmType::kWebServer, 7);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) {
    uint64_t pages = gen.SampleBurstPages();
    ASSERT_GE(pages, 1u);
    stats.Add(static_cast<double>(pages));
  }
  EXPECT_NEAR(stats.mean(), gen.profile().burst_pages_mean, 0.5);
}

TEST(SleepOpportunityTest, NoRequestsMeansNearlyFullSleep) {
  SleepOpportunity s = ComputeSleepOpportunity({}, SimTime::Hours(1), SimTime::Seconds(3.1),
                                               SimTime::Seconds(2.3), SimTime::Seconds(10));
  EXPECT_GT(s.sleep_fraction, 0.99);
  EXPECT_EQ(s.sleep_episodes, 1);
  EXPECT_EQ(s.requests, 0);
}

TEST(SleepOpportunityTest, DenseRequestsKillSleep) {
  // Requests every 5.8 s with ~5.4 s of transition overhead leave nothing.
  std::vector<SimTime> requests;
  for (double t = 5.8; t < 3600.0; t += 5.8) {
    requests.push_back(SimTime::Seconds(t));
  }
  SleepOpportunity s =
      ComputeSleepOpportunity(requests, SimTime::Hours(1), SimTime::Seconds(3.1),
                              SimTime::Seconds(2.3), SimTime::Seconds(10));
  EXPECT_LT(s.sleep_fraction, 0.01);
}

TEST(SleepOpportunityTest, SparseRequestsAllowSleep) {
  // One request every 3.9 minutes leaves most of the hour for S3.
  std::vector<SimTime> requests;
  for (double t = 234.0; t < 3600.0; t += 234.0) {
    requests.push_back(SimTime::Seconds(t));
  }
  SleepOpportunity s =
      ComputeSleepOpportunity(requests, SimTime::Hours(1), SimTime::Seconds(3.1),
                              SimTime::Seconds(2.3), SimTime::Seconds(10));
  EXPECT_GT(s.sleep_fraction, 0.85);
  EXPECT_EQ(s.requests, static_cast<int>(requests.size()));
  EXPECT_NEAR(s.mean_gap_seconds, 234.0, 1.0);
}

TEST(SleepOpportunityTest, SingleVsTenVmContrast) {
  // The Fig 2 punchline: one idle DB VM leaves big sleep opportunities; ten
  // co-located VMs erase them.
  IdleAccessGenerator db(VmType::kDatabase, 11);
  SleepOpportunity one =
      ComputeSleepOpportunity(db.GenerateBurstTimes(SimTime::Hours(2)), SimTime::Hours(2),
                              SimTime::Seconds(3.1), SimTime::Seconds(2.3),
                              SimTime::Seconds(10));
  std::vector<std::vector<SimTime>> streams;
  for (int i = 0; i < 5; ++i) {
    IdleAccessGenerator web(VmType::kWebServer, 300 + i);
    IdleAccessGenerator db2(VmType::kDatabase, 400 + i);
    streams.push_back(web.GenerateBurstTimes(SimTime::Hours(2)));
    streams.push_back(db2.GenerateBurstTimes(SimTime::Hours(2)));
  }
  SleepOpportunity ten = ComputeSleepOpportunity(MergeRequestStreams(streams),
                                                 SimTime::Hours(2), SimTime::Seconds(3.1),
                                                 SimTime::Seconds(2.3), SimTime::Seconds(10));
  EXPECT_GT(one.sleep_fraction, 0.5);
  EXPECT_LT(ten.sleep_fraction, 0.12);
}

TEST(VmTypeTest, Names) {
  EXPECT_STREQ(VmTypeName(VmType::kDesktop), "desktop");
  EXPECT_STREQ(VmTypeName(VmType::kWebServer), "web");
  EXPECT_STREQ(VmTypeName(VmType::kDatabase), "database");
}

}  // namespace
}  // namespace oasis
