// Verifies that the migration model reproduces the §4.4.2 micro-benchmark
// latencies (Fig 5) from first principles: workload priming, real
// compression ratios, and the measured channel bandwidths.

#include "src/hyper/migration_model.h"

#include <gtest/gtest.h>

#include "src/hyper/workloads.h"

namespace oasis {
namespace {

Vm PrimedVm() {
  VmConfig config;
  config.memory_bytes = 4 * kGiB;
  config.seed = 42;
  Vm vm(config);
  ApplyWorkload(vm, BaseSystemFootprint());
  ApplyWorkload(vm, DesktopWorkload1());
  ApplyWorkload(vm, IdleBackgroundChurn(SimTime::Minutes(5)));
  return vm;
}

TEST(MigrationModelTest, FullMigrationMatchesPaper41Seconds) {
  // §4.4.2: fully migrating the 4 GiB VM over GigE takes ~41 s.
  MigrationModel model;
  FullMigrationPlan plan = model.PlanFullMigration(4 * kGiB);
  EXPECT_EQ(plan.bytes, 4 * kGiB);
  EXPECT_NEAR(plan.duration.seconds(), 41.0, 0.5);
}

TEST(MigrationModelTest, FirstPartialMigrationNearPaper15point7Seconds) {
  // §4.4.2: 15.7 s total = ~10.2 s memory upload + ~5.2 s descriptor push.
  MigrationModel model;
  Vm vm = PrimedVm();
  PartialMigrationPlan plan = model.ExecutePartialMigration(vm, /*differential=*/false);
  EXPECT_FALSE(plan.differential);
  EXPECT_NEAR(plan.upload_time.seconds(), 10.2, 1.5);
  EXPECT_NEAR(plan.descriptor_time.seconds(), 5.2, 0.2);
  EXPECT_NEAR(plan.total.seconds(), 15.7, 1.6);
}

TEST(MigrationModelTest, DifferentialUploadNearPaper2point2Seconds) {
  // After reintegration + Workload 2 + idle churn, only the delta uploads:
  // §4.4.2 measures ~2.2 s, for a ~7.2 s second partial migration.
  MigrationModel model;
  Vm vm = PrimedVm();
  model.ExecutePartialMigration(vm, /*differential=*/false);
  // Dirty state from running on the consolidation host (~175 MiB, §4.4.3)…
  vm.image().DirtyTouchedPages(MiBToBytes(175.3) / kPageSize);
  // …plus Workload 2 and another idle wait.
  ApplyWorkload(vm, DesktopWorkload2());
  ApplyWorkload(vm, IdleBackgroundChurn(SimTime::Minutes(5)));
  PartialMigrationPlan plan = model.ExecutePartialMigration(vm, /*differential=*/true);
  EXPECT_TRUE(plan.differential);
  EXPECT_NEAR(plan.upload_time.seconds(), 2.2, 0.8);
  EXPECT_NEAR(plan.total.seconds(), 7.2, 0.9);
}

TEST(MigrationModelTest, PartialBeatsFullMigration) {
  MigrationModel model;
  Vm vm = PrimedVm();
  PartialMigrationPlan partial = model.ExecutePartialMigration(vm, false);
  FullMigrationPlan full = model.PlanFullMigration(vm.config().memory_bytes);
  EXPECT_LT(partial.total, full.duration);
}

TEST(MigrationModelTest, ReintegrationNearPaper3point7Seconds) {
  // §4.4.2: reintegration averages 3.7 s while moving ~175 MiB of dirty state.
  MigrationModel model;
  ReintegrationPlan plan = model.PlanReintegration(MiBToBytes(175.3));
  EXPECT_NEAR(plan.duration.seconds(), 3.7, 0.3);
}

TEST(MigrationModelTest, ReintegrationScalesWithDirtyBytes) {
  MigrationModel model;
  SimTime small = model.PlanReintegration(10 * kMiB).duration;
  SimTime large = model.PlanReintegration(400 * kMiB).duration;
  EXPECT_LT(small, large);
  // Fixed overhead dominates tiny reintegrations.
  EXPECT_GT(small.seconds(), 2.0);
}

TEST(MigrationModelTest, UploadConsumesDirtySet) {
  MigrationModel model;
  Vm vm = PrimedVm();
  model.ExecutePartialMigration(vm, false);
  EXPECT_EQ(vm.image().dirty_pages(), 0u);
  // With nothing dirtied since, a differential upload is almost free.
  PartialMigrationPlan plan = model.ExecutePartialMigration(vm, true);
  EXPECT_EQ(plan.upload_pages, 0u);
  EXPECT_NEAR(plan.total.seconds(), plan.descriptor_time.seconds(), 1e-9);
}

TEST(MigrationModelTest, CompressionShrinksUpload) {
  MigrationModel model;
  Vm vm = PrimedVm();
  PartialMigrationPlan plan = model.ExecutePartialMigration(vm, false);
  EXPECT_LT(plan.upload_bytes_compressed, plan.upload_bytes_raw);
  EXPECT_GT(plan.upload_bytes_compressed, plan.upload_bytes_raw / 10);
}

TEST(MigrationModelTest, ClusterTimingConfigMatchesSection51) {
  // §5.1 assumes 10 s for a 4 GiB full migration over 10 GigE.
  MigrationTimingConfig cluster;
  cluster.live_migration_bytes_per_sec = kLiveMigrationBytesPerSec;
  MigrationModel model(cluster);
  EXPECT_NEAR(model.PlanFullMigration(4 * kGiB).duration.seconds(), 10.0, 0.1);
}

}  // namespace
}  // namespace oasis
