// Calibration tests: the synthetic trace must reproduce the workload
// properties §5.2 reports about the paper's real trace, because every
// cluster result depends on them.

#include "src/trace/trace_generator.h"

#include <gtest/gtest.h>

#include "src/trace/trace_stats.h"

namespace oasis {
namespace {

TraceSet Weekdays(int n, uint64_t seed = 1) {
  TraceGenerator gen(TraceGeneratorConfig{}, seed);
  return gen.GenerateTraceSet(n, DayKind::kWeekday);
}

TraceSet Weekends(int n, uint64_t seed = 1) {
  TraceGenerator gen(TraceGeneratorConfig{}, seed);
  return gen.GenerateTraceSet(n, DayKind::kWeekend);
}

TEST(TraceGeneratorTest, DeterministicForSameSeed) {
  TraceGenerator a(TraceGeneratorConfig{}, 42);
  TraceGenerator b(TraceGeneratorConfig{}, 42);
  UserDay da = a.GenerateUserDay(DayKind::kWeekday);
  UserDay db = b.GenerateUserDay(DayKind::kWeekday);
  EXPECT_EQ(da.bits(), db.bits());
}

TEST(TraceGeneratorTest, WeekdayPeakNearPaperFortySixPercent) {
  // §5.2: "there are never more than 411 (46%) active VMs simultaneously".
  TraceSet set = Weekdays(900);
  double peak = PeakActiveFraction(set);
  EXPECT_GT(peak, 0.30);
  EXPECT_LT(peak, 0.50);
}

TEST(TraceGeneratorTest, WeekdayPeaksMidAfternoonTroughsEarlyMorning) {
  // §5.2: peak around 14:00, bottom around 06:30.
  TraceSet set = Weekdays(900);
  double peak_hour = HourOfInterval(PeakInterval(set));
  EXPECT_GT(peak_hour, 11.0);
  EXPECT_LT(peak_hour, 17.0);
  double trough_hour = HourOfInterval(TroughInterval(set));
  EXPECT_TRUE(trough_hour < 8.0 || trough_hour > 22.0)
      << "trough at " << trough_hour;
}

TEST(TraceGeneratorTest, WeekendsAreQuieter) {
  TraceSet wd = Weekdays(900);
  TraceSet we = Weekends(900);
  EXPECT_LT(PeakActiveFraction(we), PeakActiveFraction(wd) * 0.6);
  EXPECT_LT(MeanActiveFraction(we), MeanActiveFraction(wd) * 0.5);
}

TEST(TraceGeneratorTest, MeanDailyActivityPlausibleForOfficeWorkers) {
  TraceSet set = Weekdays(900);
  double mean = MeanActiveFraction(set);
  EXPECT_GT(mean, 0.06);
  EXPECT_LT(mean, 0.22);
}

TEST(TraceGeneratorTest, ThirtyVmHostsSeeLongAllIdleStretches) {
  // §5.3: all 30 VMs of a home host are simultaneously idle ~13% of the
  // time — little enough to doom OnlyPartial, but nonzero.
  TraceSet set = Weekdays(900);
  double frac = MeanAllIdleFraction(set, 30);
  EXPECT_GT(frac, 0.05);
  EXPECT_LT(frac, 0.35);
}

TEST(TraceGeneratorTest, NightIsContiguouslyQuiet) {
  // Off-hours activity comes in contiguous sessions, so an individual user's
  // longest idle run should span most of the night.
  TraceSet set = Weekdays(200);
  int long_runs = 0;
  for (const UserDay& day : set) {
    if (day.LongestIdleRun() >= 8 * 12) {  // >= 8 hours
      ++long_runs;
    }
  }
  EXPECT_GT(long_runs, 150);
}

TEST(TraceGeneratorTest, ActivationsPerUserDayAreModerate) {
  // Users resume activity a handful of times a day, not every interval.
  TraceSet set = Weekdays(500);
  double total_activations = 0;
  for (const UserDay& day : set) {
    for (int i = 1; i < kIntervalsPerDay; ++i) {
      if (day.IsActive(i) && !day.IsActive(i - 1)) {
        ++total_activations;
      }
    }
  }
  double per_user = total_activations / 500.0;
  EXPECT_GT(per_user, 2.0);
  EXPECT_LT(per_user, 15.0);
}

TEST(TraceGeneratorTest, AttendanceControlsActivity) {
  TraceGeneratorConfig nobody;
  nobody.weekday_attendance = 0.0;
  nobody.absent_remote_check_probability = 0.0;
  nobody.night_sessions_per_user_day = 0.0;
  TraceGenerator gen(nobody, 3);
  TraceSet set = gen.GenerateTraceSet(50, DayKind::kWeekday);
  EXPECT_DOUBLE_EQ(MeanActiveFraction(set), 0.0);

  TraceGeneratorConfig everyone;
  everyone.weekday_attendance = 1.0;
  TraceGenerator gen2(everyone, 3);
  TraceSet set2 = gen2.GenerateTraceSet(50, DayKind::kWeekday);
  EXPECT_GT(MeanActiveFraction(set2), 0.10);
}

class TraceStatsGroupTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TraceStatsGroupTest, AllIdleFractionDecreasesWithGroupSize) {
  // More VMs on a host means fewer fully-idle intervals — the §2 argument
  // for why co-location kills naive partial-migration sleep.
  TraceSet set = Weekdays(600, /*seed=*/9);
  size_t group = GetParam();
  double small_group = MeanAllIdleFraction(set, group);
  double big_group = MeanAllIdleFraction(set, group * 2);
  EXPECT_GE(small_group, big_group);
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, TraceStatsGroupTest,
                         ::testing::Values(1, 2, 5, 10, 15, 30));

TEST(TraceStatsTest, ActiveCountSeriesSumsUsers) {
  TraceSet set;
  UserDay a;
  a.SetActive(0, true);
  UserDay b;
  b.SetActive(0, true);
  b.SetActive(1, true);
  set.push_back(a);
  set.push_back(b);
  std::vector<int> counts = ActiveCountSeries(set);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 0);
}

TEST(TraceStatsTest, AllIdleFractionBounds) {
  TraceSet set;
  UserDay all_active;
  for (int i = 0; i < kIntervalsPerDay; ++i) {
    all_active.SetActive(i, true);
  }
  set.push_back(all_active);
  set.push_back(UserDay{});
  EXPECT_DOUBLE_EQ(AllIdleFraction(set, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(AllIdleFraction(set, 1, 1), 1.0);
  EXPECT_DOUBLE_EQ(AllIdleFraction(set, 0, 2), 0.0);
}

}  // namespace
}  // namespace oasis
