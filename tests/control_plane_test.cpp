// RpcBus + HostAgent + ClusterController working together: the §4.1 control
// flow of VM creation, migration commands, suspend/wake, and stats polling.

#include <gtest/gtest.h>

#include "src/ctrl/controller.h"
#include "src/ctrl/host_agent.h"
#include "src/ctrl/rpc_bus.h"

namespace oasis {
namespace {

std::string Config(const std::string& vmid, const std::string& memory) {
  return "vmid = " + vmid + "\ndisk = nfs://images/" + vmid + ".img\nmemory = " + memory +
         "\nvcpus = 1\n";
}

class ControlPlaneTest : public ::testing::Test {
 protected:
  ControlPlaneTest() : controller_(&bus_, &store_) {
    for (HostId h = 0; h < 3; ++h) {
      agents_.push_back(std::make_unique<HostAgent>(&bus_, h, 128 * kGiB));
      controller_.RegisterHost(h, 128 * kGiB);
    }
    store_.Put("/configs/a.cfg", Config("0001", "4G"));
    store_.Put("/configs/b.cfg", Config("0002", "4G"));
    store_.Put("/configs/huge.cfg", Config("0666", "200G"));
    store_.Put("/configs/bad.cfg", "vmid = nope\n");
  }

  RpcBus bus_;
  ConfigStore store_;
  ClusterController controller_;
  std::vector<std::unique_ptr<HostAgent>> agents_;
};

TEST_F(ControlPlaneTest, CreateVmPlacesOnHostWithMostFreeMemory) {
  StatusOr<CreateVmResponse> a = controller_.CreateVm("/configs/a.cfg");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a->vmid, "0001");
  ASSERT_LT(a->host, 3u);
  EXPECT_TRUE(agents_[a->host]->OwnsVm("0001"));
  EXPECT_EQ(agents_[a->host]->used_bytes(), 4 * kGiB);
  // The second VM lands on a different (now-freer) host.
  StatusOr<CreateVmResponse> b = controller_.CreateVm("/configs/b.cfg");
  ASSERT_TRUE(b.ok());
  EXPECT_NE(b->host, a->host);
}

TEST_F(ControlPlaneTest, CreateVmRejectsMissingOrBadConfigs) {
  EXPECT_EQ(controller_.CreateVm("/configs/nonexistent.cfg").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(controller_.CreateVm("/configs/bad.cfg").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ControlPlaneTest, CreateVmRejectsWhenNothingFits) {
  EXPECT_EQ(controller_.CreateVm("/configs/huge.cfg").status().code(),
            StatusCode::kResourceExhausted);
}

TEST_F(ControlPlaneTest, FullMigrationTransfersOwnership) {
  StatusOr<CreateVmResponse> created = controller_.CreateVm("/configs/a.cfg");
  ASSERT_TRUE(created.ok());
  HostId src = created->host;
  HostId dst = (src + 1) % 3;
  ASSERT_TRUE(controller_.MigrateVm(src, "0001", MigrationType::kFull, dst).ok());
  EXPECT_FALSE(agents_[src]->OwnsVm("0001"));
  EXPECT_TRUE(agents_[dst]->OwnsVm("0001"));
  EXPECT_EQ(agents_[src]->used_bytes(), 0u);
  EXPECT_EQ(agents_[dst]->used_bytes(), 4 * kGiB);
}

TEST_F(ControlPlaneTest, PartialMigrationKeepsOwnershipAtSource) {
  StatusOr<CreateVmResponse> created = controller_.CreateVm("/configs/a.cfg");
  ASSERT_TRUE(created.ok());
  HostId src = created->host;
  HostId dst = (src + 1) % 3;
  ASSERT_TRUE(controller_.MigrateVm(src, "0001", MigrationType::kPartial, dst).ok());
  // §4.2: "the VM's ownership remains with the agent of the source host";
  // the destination runs an unowned partial replica.
  EXPECT_TRUE(agents_[src]->OwnsVm("0001"));
  EXPECT_FALSE(agents_[src]->VmPresent("0001"));
  EXPECT_TRUE(agents_[dst]->HasVm("0001"));
  EXPECT_FALSE(agents_[dst]->OwnsVm("0001"));
  EXPECT_TRUE(agents_[dst]->VmPresent("0001"));
}

TEST_F(ControlPlaneTest, HostSuspendsAfterPartialMigratingItsVmsAway) {
  StatusOr<CreateVmResponse> created = controller_.CreateVm("/configs/a.cfg");
  ASSERT_TRUE(created.ok());
  HostId src = created->host;
  HostId dst = (src + 1) % 3;
  ASSERT_TRUE(controller_.MigrateVm(src, "0001", MigrationType::kPartial, dst).ok());
  // The owner record stays, but nothing executes here: S3 is allowed.
  EXPECT_TRUE(controller_.SuspendHost(src).ok());
  EXPECT_TRUE(agents_[src]->suspended());
}

TEST_F(ControlPlaneTest, ReintegrationReturnsReplicaToOwner) {
  StatusOr<CreateVmResponse> created = controller_.CreateVm("/configs/a.cfg");
  ASSERT_TRUE(created.ok());
  HostId src = created->host;
  HostId dst = (src + 1) % 3;
  ASSERT_TRUE(controller_.MigrateVm(src, "0001", MigrationType::kPartial, dst).ok());
  // The user returns: the replica partial-migrates back to its owner.
  ASSERT_TRUE(controller_.MigrateVm(dst, "0001", MigrationType::kPartial, src).ok());
  EXPECT_TRUE(agents_[src]->OwnsVm("0001"));
  EXPECT_TRUE(agents_[src]->VmPresent("0001"));
  EXPECT_FALSE(agents_[dst]->HasVm("0001"));
  EXPECT_EQ(agents_[dst]->used_bytes(), 0u);
}

TEST_F(ControlPlaneTest, MigrateFailsForUnknownVmOrSelf) {
  EXPECT_FALSE(controller_.MigrateVm(0, "9999", MigrationType::kFull, 1).ok());
  StatusOr<CreateVmResponse> created = controller_.CreateVm("/configs/a.cfg");
  ASSERT_TRUE(created.ok());
  EXPECT_FALSE(
      controller_.MigrateVm(created->host, "0001", MigrationType::kFull, created->host).ok());
}

TEST_F(ControlPlaneTest, SuspendRefusedWhileRunningVms) {
  StatusOr<CreateVmResponse> created = controller_.CreateVm("/configs/a.cfg");
  ASSERT_TRUE(created.ok());
  EXPECT_FALSE(controller_.SuspendHost(created->host).ok());
  HostId other = (created->host + 1) % 3;
  EXPECT_TRUE(controller_.SuspendHost(other).ok());
  EXPECT_TRUE(agents_[other]->suspended());
}

TEST_F(ControlPlaneTest, SuspendedHostRejectsCreationUntilWoken) {
  ASSERT_TRUE(controller_.SuspendHost(0).ok());
  ASSERT_TRUE(controller_.SuspendHost(1).ok());
  ASSERT_TRUE(controller_.SuspendHost(2).ok());
  EXPECT_FALSE(controller_.CreateVm("/configs/a.cfg").ok());
  ASSERT_TRUE(controller_.WakeHost(1).ok());
  StatusOr<CreateVmResponse> created = controller_.CreateVm("/configs/a.cfg");
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(created->host, 1u);
}

TEST_F(ControlPlaneTest, StatsPollingReportsEveryAgent) {
  controller_.CreateVm("/configs/a.cfg");
  controller_.CreateVm("/configs/b.cfg");
  std::vector<HostStatsReport> reports = controller_.CollectStats();
  ASSERT_EQ(reports.size(), 3u);
  int total_vms = 0;
  for (const HostStatsReport& report : reports) {
    total_vms += static_cast<int>(report.vms.size());
  }
  EXPECT_EQ(total_vms, 2);
}

TEST_F(ControlPlaneTest, StatsSkipUnreachableAgents) {
  agents_.erase(agents_.begin());  // host 0's agent disappears
  std::vector<HostStatsReport> reports = controller_.CollectStats();
  EXPECT_EQ(reports.size(), 2u);
}

TEST_F(ControlPlaneTest, BusLogsWireTraffic) {
  controller_.CreateVm("/configs/a.cfg");
  EXPECT_GT(bus_.calls(), 0u);
  EXPECT_GT(bus_.bytes_transferred(), 0u);
  bool saw_create = false;
  for (const std::string& line : bus_.log()) {
    if (line.find("CREATE_VM") != std::string::npos) {
      saw_create = true;
    }
  }
  EXPECT_TRUE(saw_create);
}

TEST(RpcBusTest, DuplicateEndpointRejected) {
  RpcBus bus;
  ASSERT_TRUE(bus.RegisterEndpoint("x", [](const ControlMessage&) {
    return ControlMessage(AckResponse{true, ""});
  }).ok());
  EXPECT_FALSE(bus.RegisterEndpoint("x", [](const ControlMessage&) {
    return ControlMessage(AckResponse{true, ""});
  }).ok());
}

TEST(RpcBusTest, CallToMissingEndpointFails) {
  RpcBus bus;
  EXPECT_EQ(bus.Call("a", "b", AckResponse{}).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace oasis
