#include "src/cluster/host.h"

#include <gtest/gtest.h>

namespace oasis {
namespace {

ClusterConfig TestConfig() {
  ClusterConfig config;
  config.host_memory_bytes = 128 * kGiB;
  return config;
}

TEST(ClusterHostTest, InitialState) {
  ClusterConfig config = TestConfig();
  ClusterHost powered(0, HostRole::kHome, config, true);
  ClusterHost asleep(1, HostRole::kConsolidation, config, false);
  EXPECT_TRUE(powered.IsPowered());
  EXPECT_TRUE(asleep.IsAsleep());
  EXPECT_EQ(powered.capacity_bytes(), 128 * kGiB);
  EXPECT_EQ(powered.reserved_bytes(), 0u);
  EXPECT_FALSE(powered.HasVms());
}

TEST(ClusterHostTest, ReserveRelease) {
  ClusterHost host(0, HostRole::kHome, TestConfig(), true);
  host.Reserve(100 * kGiB);
  EXPECT_EQ(host.AvailableBytes(), 28 * kGiB);
  EXPECT_TRUE(host.CanFit(28 * kGiB));
  EXPECT_FALSE(host.CanFit(28 * kGiB + 1));
  host.Release(50 * kGiB);
  EXPECT_EQ(host.reserved_bytes(), 50 * kGiB);
}

TEST(ClusterHostTest, SleepTakesSuspendLatency) {
  Simulator sim;
  ClusterHost host(0, HostRole::kHome, TestConfig(), true);
  host.RequestSleep(sim);
  EXPECT_EQ(host.power_state(), HostPowerState::kSuspending);
  sim.RunUntil(SimTime::Seconds(3.0));
  EXPECT_EQ(host.power_state(), HostPowerState::kSuspending);
  sim.RunUntil(SimTime::Seconds(3.2));
  EXPECT_TRUE(host.IsAsleep());
}

TEST(ClusterHostTest, WakeTakesResumeLatency) {
  Simulator sim;
  ClusterHost host(0, HostRole::kHome, TestConfig(), false);
  SimTime powered_at;
  host.RequestWake(sim, [&](SimTime t) { powered_at = t; });
  EXPECT_EQ(host.power_state(), HostPowerState::kResuming);
  sim.RunToCompletion();
  EXPECT_TRUE(host.IsPowered());
  EXPECT_EQ(powered_at, SimTime::Seconds(2.3));
}

TEST(ClusterHostTest, WakeWhenPoweredFiresImmediately) {
  Simulator sim;
  ClusterHost host(0, HostRole::kHome, TestConfig(), true);
  bool fired = false;
  host.RequestWake(sim, [&](SimTime) { fired = true; });
  EXPECT_TRUE(fired);
}

TEST(ClusterHostTest, WakeDuringSuspendQueuesBehindIt) {
  Simulator sim;
  ClusterHost host(0, HostRole::kHome, TestConfig(), true);
  host.RequestSleep(sim);
  SimTime powered_at;
  sim.ScheduleAfter(SimTime::Seconds(1), [&] {
    host.RequestWake(sim, [&](SimTime t) { powered_at = t; });
  });
  sim.RunToCompletion();
  EXPECT_TRUE(host.IsPowered());
  // Full suspend (3.1 s) then resume (2.3 s).
  EXPECT_NEAR(powered_at.seconds(), 5.4, 0.01);
}

TEST(ClusterHostTest, OnAsleepCallbackFires) {
  Simulator sim;
  ClusterHost host(0, HostRole::kHome, TestConfig(), true);
  SimTime asleep_at;
  host.RequestSleep(sim, [&](SimTime t) { asleep_at = t; });
  sim.RunToCompletion();
  EXPECT_EQ(asleep_at, SimTime::Seconds(3.1));
}

TEST(ClusterHostTest, SleepRequestIgnoredUnlessPowered) {
  Simulator sim;
  ClusterHost host(0, HostRole::kHome, TestConfig(), false);
  host.RequestSleep(sim);
  EXPECT_TRUE(host.IsAsleep());  // unchanged, no crash
}

TEST(ClusterHostTest, MultipleWakeWaitersAllFire) {
  Simulator sim;
  ClusterHost host(0, HostRole::kHome, TestConfig(), false);
  int fired = 0;
  host.RequestWake(sim, [&](SimTime) { ++fired; });
  host.RequestWake(sim, [&](SimTime) { ++fired; });
  sim.RunToCompletion();
  EXPECT_EQ(fired, 2);
}

TEST(ClusterHostTest, EarliestPoweredTime) {
  Simulator sim;
  ClusterHost host(0, HostRole::kHome, TestConfig(), true);
  EXPECT_EQ(host.EarliestPoweredTime(SimTime::Zero()), SimTime::Zero());
  host.RequestSleep(sim);
  // Suspending: must finish suspend then resume.
  EXPECT_NEAR(host.EarliestPoweredTime(SimTime::Zero()).seconds(), 5.4, 0.01);
  sim.RunToCompletion();
  EXPECT_NEAR(host.EarliestPoweredTime(SimTime::Seconds(10)).seconds(), 12.3, 0.01);
}

TEST(ClusterHostTest, OutboundMigrationsSerialize) {
  ClusterHost host(0, HostRole::kHome, TestConfig(), true);
  SimTime d1 = host.EnqueueOutboundMigration(SimTime::Zero(), SimTime::Seconds(10));
  SimTime d2 = host.EnqueueOutboundMigration(SimTime::Zero(), SimTime::Seconds(7.2));
  EXPECT_EQ(d1, SimTime::Seconds(10));
  EXPECT_NEAR(d2.seconds(), 17.2, 1e-9);
  EXPECT_EQ(host.outbound_busy_until(), d2);
}

TEST(ClusterHostTest, InboundTransfersSerializeIndependently) {
  ClusterHost host(0, HostRole::kHome, TestConfig(), true);
  host.EnqueueOutboundMigration(SimTime::Zero(), SimTime::Seconds(100));
  SimTime d = host.EnqueueInboundTransfer(SimTime::Zero(), SimTime::Seconds(1.5));
  EXPECT_NEAR(d.seconds(), 1.5, 1e-9);  // unaffected by outbound backlog
}

TEST(ClusterHostTest, EnergyAccountsStates) {
  Simulator sim;
  ClusterHost host(0, HostRole::kHome, TestConfig(), true);
  // Powered and empty: 102.2 W for one hour.
  Joules e1 = host.HostEnergy(SimTime::Hours(1));
  EXPECT_NEAR(ToWattHours(e1), 102.2, 0.01);
}

TEST(ClusterHostTest, VmResidencyRaisesDraw) {
  ClusterHost host(0, HostRole::kHome, TestConfig(), true);
  for (VmId v = 0; v < 30; ++v) {
    host.AddVm(SimTime::Zero(), v);
  }
  // Saturated at the 20-VM figure: 137.9 W.
  EXPECT_NEAR(ToWattHours(host.HostEnergy(SimTime::Hours(1))), 137.9, 0.01);
}

TEST(ClusterHostTest, SleepEnergyIncludesTransitionSpike) {
  Simulator sim;
  ClusterHost host(0, HostRole::kHome, TestConfig(), true);
  host.RequestSleep(sim);
  sim.RunToCompletion();
  Joules e = host.HostEnergy(SimTime::Hours(1));
  double expected = 138.2 * 3.1 + 12.9 * (3600.0 - 3.1);
  EXPECT_NEAR(e, expected, 1.0);
}

TEST(ClusterHostTest, MemoryServerEnergySeparate) {
  ClusterHost host(0, HostRole::kHome, TestConfig(), true);
  host.SetMemoryServerPowered(SimTime::Zero(), true);
  host.SetMemoryServerPowered(SimTime::Hours(2), false);
  EXPECT_NEAR(ToWattHours(host.MemoryServerEnergy(SimTime::Hours(5))), 84.4, 0.01);
}

TEST(ClusterHostTest, LedgerTracksSleepFraction) {
  Simulator sim;
  ClusterHost host(0, HostRole::kHome, TestConfig(), true);
  host.RequestSleep(sim);
  sim.RunToCompletion();
  host.AdvanceLedger(SimTime::Hours(24));
  EXPECT_GT(host.ledger().SleepFraction(SimTime::Hours(24)), 0.99);
}

}  // namespace
}  // namespace oasis
