#include "src/mem/compression.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/mem/page_content.h"

namespace oasis {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(CompressionTest, EmptyInput) {
  std::vector<uint8_t> empty;
  EXPECT_TRUE(LzCompress(empty).empty());
  auto out = LzDecompress({}, 0);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
}

TEST(CompressionTest, RoundTripShortString) {
  auto input = Bytes("hello world hello world hello world");
  auto compressed = LzCompress(input);
  auto out = LzDecompress(compressed, input.size());
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, input);
  EXPECT_LT(compressed.size(), input.size());
}

TEST(CompressionTest, ZeroPageCollapses) {
  std::vector<uint8_t> page(kPageSize, 0);
  auto compressed = LzCompress(page);
  EXPECT_LT(compressed.size(), 200u);
  auto out = LzDecompress(compressed, page.size());
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, page);
}

TEST(CompressionTest, RandomDataDoesNotExplode) {
  Rng rng(1);
  std::vector<uint8_t> data(kPageSize);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.NextBelow(256));
  }
  auto compressed = LzCompress(data);
  // Incompressible input costs at most the literal-run overhead (~0.8%).
  EXPECT_LE(compressed.size(), data.size() + data.size() / 64 + 16);
  auto out = LzDecompress(compressed, data.size());
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, data);
}

TEST(CompressionTest, OverlappingMatchRoundTrip) {
  // "aaaa..." forces offset-1 overlapping copies.
  std::vector<uint8_t> runs(5000, 'a');
  auto compressed = LzCompress(runs);
  EXPECT_LT(compressed.size(), 200u);
  auto out = LzDecompress(compressed, runs.size());
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, runs);
}

TEST(CompressionTest, DecompressRejectsCorruptOffset) {
  // A match token referring past the start of output.
  std::vector<uint8_t> bogus = {0x80, 0xFF, 0x00};
  EXPECT_FALSE(LzDecompress(bogus, 10).has_value());
}

TEST(CompressionTest, DecompressRejectsTruncatedLiteralRun) {
  std::vector<uint8_t> bogus = {0x05, 'a', 'b'};  // promises 6 literals, has 2
  EXPECT_FALSE(LzDecompress(bogus, 6).has_value());
}

TEST(CompressionTest, DecompressRejectsWrongExpectedSize) {
  auto input = Bytes("some content some content");
  auto compressed = LzCompress(input);
  EXPECT_FALSE(LzDecompress(compressed, input.size() + 1).has_value());
}

// Property test: round-trip over every synthetic page class and many pages.
class PageRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(PageRoundTripTest, GeneratedPagesRoundTrip) {
  PageContentGenerator gen(static_cast<uint64_t>(GetParam()));
  for (uint64_t page = 0; page < 48; ++page) {
    PageBytes content = gen.Generate(page);
    auto compressed = LzCompress(content);
    auto out = LzDecompress(compressed, content.size());
    ASSERT_TRUE(out.has_value()) << "page " << page;
    EXPECT_EQ(*out, content) << "page " << page;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageRoundTripTest, ::testing::Values(1, 2, 3, 99, 12345));

TEST(CompressionTest, ClassRatiosAreOrdered) {
  // zero << text < code < random: the honesty of upload sizes depends on it.
  PageContentGenerator gen(7);
  double ratio_by_class[4] = {0, 0, 0, 0};
  int count_by_class[4] = {0, 0, 0, 0};
  for (uint64_t page = 0; page < 400; ++page) {
    PageClass cls = gen.ClassOf(page);
    ratio_by_class[static_cast<int>(cls)] += CompressionRatio(gen.Generate(page));
    ++count_by_class[static_cast<int>(cls)];
  }
  for (int c = 0; c < 4; ++c) {
    ASSERT_GT(count_by_class[c], 0) << "class " << c;
    ratio_by_class[c] /= count_by_class[c];
  }
  double zero = ratio_by_class[static_cast<int>(PageClass::kZero)];
  double text = ratio_by_class[static_cast<int>(PageClass::kText)];
  double code = ratio_by_class[static_cast<int>(PageClass::kCode)];
  double random = ratio_by_class[static_cast<int>(PageClass::kRandom)];
  EXPECT_LT(zero, 0.05);
  EXPECT_LT(zero, text);
  EXPECT_LT(text, code);
  EXPECT_LT(code, random);
  EXPECT_GT(random, 0.95);
}

}  // namespace
}  // namespace oasis
