#include "src/common/units.h"

#include <gtest/gtest.h>

namespace oasis {
namespace {

TEST(SimTimeTest, ConstructionAndConversion) {
  EXPECT_EQ(SimTime::Seconds(1.5).micros(), 1500000);
  EXPECT_EQ(SimTime::Millis(2).micros(), 2000);
  EXPECT_EQ(SimTime::Minutes(2).micros(), 120000000);
  EXPECT_EQ(SimTime::Hours(1).micros(), 3600000000LL);
  EXPECT_DOUBLE_EQ(SimTime::Seconds(2.5).seconds(), 2.5);
  EXPECT_DOUBLE_EQ(SimTime::Minutes(3).minutes(), 3.0);
  EXPECT_DOUBLE_EQ(SimTime::Hours(0.5).hours(), 0.5);
}

TEST(SimTimeTest, Arithmetic) {
  SimTime a = SimTime::Seconds(10);
  SimTime b = SimTime::Seconds(4);
  EXPECT_EQ((a + b).seconds(), 14.0);
  EXPECT_EQ((a - b).seconds(), 6.0);
  a += b;
  EXPECT_EQ(a.seconds(), 14.0);
  a -= b;
  EXPECT_EQ(a.seconds(), 10.0);
  EXPECT_DOUBLE_EQ((a * 2.5).seconds(), 25.0);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
}

TEST(SimTimeTest, Comparison) {
  EXPECT_LT(SimTime::Seconds(1), SimTime::Seconds(2));
  EXPECT_EQ(SimTime::Seconds(1), SimTime::Millis(1000));
  EXPECT_GT(SimTime::Max(), SimTime::Hours(1000000));
  EXPECT_EQ(SimTime::Zero().micros(), 0);
}

TEST(SimTimeTest, ClockStringWrapsAtMidnight) {
  EXPECT_EQ(SimTime::Hours(0).ToClockString(), "00:00:00");
  EXPECT_EQ(SimTime::Hours(14.5).ToClockString(), "14:30:00");
  EXPECT_EQ(SimTime::Hours(25).ToClockString(), "01:00:00");
  EXPECT_EQ((SimTime::Hours(23) + SimTime::Seconds(59 * 60 + 59)).ToClockString(),
            "23:59:59");
}

TEST(BytesTest, Constants) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024u);
  EXPECT_EQ(kGiB, 1024ull * 1024 * 1024);
  EXPECT_EQ(kPageSize, 4096u);
  EXPECT_EQ(kChunkSize, 2u * kMiB);
  EXPECT_EQ(kPagesPerChunk, 512u);
}

TEST(BytesTest, Conversions) {
  EXPECT_DOUBLE_EQ(ToMiB(512 * kKiB), 0.5);
  EXPECT_DOUBLE_EQ(ToGiB(512 * kMiB), 0.5);
  EXPECT_EQ(MiBToBytes(1.5), 1572864u);
}

TEST(BytesTest, Formatting) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(4 * kKiB), "4.0 KiB");
  EXPECT_EQ(FormatBytes(static_cast<uint64_t>(37.6 * kMiB)), "37.6 MiB");
  EXPECT_EQ(FormatBytes(4 * kGiB), "4.0 GiB");
}

TEST(EnergyTest, Conversions) {
  EXPECT_DOUBLE_EQ(WattHours(1.0), 3600.0);
  EXPECT_DOUBLE_EQ(ToWattHours(7200.0), 2.0);
  EXPECT_DOUBLE_EQ(ToKWh(3.6e6), 1.0);
}

TEST(EnergyTest, EnergyOverSpan) {
  // 100 W for one hour is 100 Wh.
  EXPECT_DOUBLE_EQ(ToWattHours(EnergyOver(100.0, SimTime::Hours(1))), 100.0);
  EXPECT_DOUBLE_EQ(EnergyOver(42.0, SimTime::Zero()), 0.0);
}

}  // namespace
}  // namespace oasis
