#include "src/power/power_model.h"

#include <gtest/gtest.h>

namespace oasis {
namespace {

TEST(PowerModelTest, Table1Defaults) {
  HostPowerProfile p;
  EXPECT_DOUBLE_EQ(p.idle_watts, 102.2);
  EXPECT_DOUBLE_EQ(p.watts_at_20_vms, 137.9);
  EXPECT_DOUBLE_EQ(p.sleep_watts, 12.9);
  EXPECT_DOUBLE_EQ(p.suspend_watts, 138.2);
  EXPECT_DOUBLE_EQ(p.resume_watts, 149.2);
  EXPECT_EQ(p.suspend_latency, SimTime::Seconds(3.1));
  EXPECT_EQ(p.resume_latency, SimTime::Seconds(2.3));
}

TEST(PowerModelTest, DrawPerState) {
  HostPowerProfile p;
  EXPECT_DOUBLE_EQ(p.Draw(HostPowerState::kPowered, 0), 102.2);
  EXPECT_DOUBLE_EQ(p.Draw(HostPowerState::kPowered, 20), 137.9);
  EXPECT_DOUBLE_EQ(p.Draw(HostPowerState::kSleeping, 0), 12.9);
  EXPECT_DOUBLE_EQ(p.Draw(HostPowerState::kSuspending, 0), 138.2);
  EXPECT_DOUBLE_EQ(p.Draw(HostPowerState::kResuming, 0), 149.2);
}

TEST(PowerModelTest, DrawSaturatesAtTwentyVms) {
  HostPowerProfile p;
  EXPECT_DOUBLE_EQ(p.Draw(HostPowerState::kPowered, 30), 137.9);
  EXPECT_DOUBLE_EQ(p.Draw(HostPowerState::kPowered, 300), 137.9);
}

TEST(PowerModelTest, DrawIsLinearBelowSaturation) {
  HostPowerProfile p;
  double per_vm = p.PerVmWatts();
  EXPECT_NEAR(per_vm, 1.785, 0.001);
  EXPECT_DOUBLE_EQ(p.Draw(HostPowerState::kPowered, 10), 102.2 + 10 * per_vm);
}

TEST(PowerModelTest, SleepingHostPlusMemoryServerBeatsIdleHost) {
  // The §4.4.1 observation that makes Oasis worthwhile at all: 12.9 + 42.2 =
  // 55.1 W < 102.2 W idle.
  HostPowerProfile host;
  MemoryServerProfile ms;
  EXPECT_DOUBLE_EQ(ms.TotalWatts(), 42.2);
  EXPECT_LT(host.sleep_watts + ms.TotalWatts(), host.idle_watts);
}

TEST(PowerModelTest, MemoryServerComponents) {
  MemoryServerProfile ms;
  EXPECT_DOUBLE_EQ(ms.board_watts, 27.8);
  EXPECT_DOUBLE_EQ(ms.drive_watts, 14.4);
}

TEST(PowerModelTest, HypotheticalMemoryServers) {
  // Table 3 design points.
  for (double w : {16.0, 8.0, 4.0, 2.0, 1.0}) {
    MemoryServerProfile ms = MemoryServerProfile::WithPower(w);
    EXPECT_DOUBLE_EQ(ms.TotalWatts(), w);
  }
}

TEST(PowerModelTest, StateNames) {
  EXPECT_STREQ(HostPowerStateName(HostPowerState::kPowered), "powered");
  EXPECT_STREQ(HostPowerStateName(HostPowerState::kSleeping), "sleeping");
  EXPECT_STREQ(HostPowerStateName(HostPowerState::kSuspending), "suspending");
  EXPECT_STREQ(HostPowerStateName(HostPowerState::kResuming), "resuming");
}

}  // namespace
}  // namespace oasis
