#include "src/hyper/workloads.h"

#include <gtest/gtest.h>

namespace oasis {
namespace {

TEST(WorkloadsTest, Workload1HasTable2Applications) {
  Workload w = DesktopWorkload1();
  EXPECT_EQ(w.name, "workload-1");
  // Table 2: Thunderbird, Pidgin, LibreOffice, Evince, five Firefox sites.
  EXPECT_EQ(w.steps.size(), 9u);
  bool has_sunspider = false;
  for (const auto& s : w.steps) {
    if (s.application.find("SunSpider") != std::string::npos) {
      has_sunspider = true;
    }
  }
  EXPECT_TRUE(has_sunspider);
}

TEST(WorkloadsTest, Workload2AddsFourSitesThreeDocsOnePdf) {
  Workload w = DesktopWorkload2();
  EXPECT_EQ(w.steps.size(), 6u);
}

TEST(WorkloadsTest, TotalsSumSteps) {
  Workload w{"t", {{"a", 10, 1}, {"b", 20, 2}}};
  EXPECT_EQ(w.TotalNewBytes(), 30u);
  EXPECT_EQ(w.TotalDirtyBytes(), 3u);
}

TEST(WorkloadsTest, ApplyTouchesImage) {
  VmConfig config;
  config.memory_bytes = 4 * kGiB;
  config.seed = 1;
  Vm vm(config);
  ApplyWorkload(vm, BaseSystemFootprint());
  uint64_t base = vm.image().touched_bytes();
  EXPECT_EQ(base, BaseSystemFootprint().TotalNewBytes());
  ApplyWorkload(vm, DesktopWorkload1());
  EXPECT_EQ(vm.image().touched_bytes(), base + DesktopWorkload1().TotalNewBytes());
}

TEST(WorkloadsTest, PrimedVmTouchesRealisticFraction) {
  // Boot + Workload 1 should leave a 4 GiB VM with most memory touched
  // (the Fig 5 first upload pushes ~1.3 GiB compressed).
  VmConfig config;
  config.memory_bytes = 4 * kGiB;
  config.seed = 2;
  Vm vm(config);
  ApplyWorkload(vm, BaseSystemFootprint());
  ApplyWorkload(vm, DesktopWorkload1());
  double fraction = static_cast<double>(vm.image().touched_bytes()) / (4.0 * kGiB);
  EXPECT_GT(fraction, 0.5);
  EXPECT_LT(fraction, 0.95);
}

TEST(WorkloadsTest, IdleChurnScalesWithDuration) {
  Workload short_churn = IdleBackgroundChurn(SimTime::Minutes(5));
  Workload long_churn = IdleBackgroundChurn(SimTime::Minutes(50));
  EXPECT_NEAR(static_cast<double>(long_churn.TotalDirtyBytes()),
              10.0 * static_cast<double>(short_churn.TotalDirtyBytes()),
              static_cast<double>(short_churn.TotalDirtyBytes()) + 1.0);
}

TEST(WorkloadsTest, Figure6AppsCoverVdiMix) {
  auto apps = Figure6Applications();
  ASSERT_GE(apps.size(), 5u);
  for (const auto& app : apps) {
    EXPECT_GT(app.startup_working_set, 0u);
    EXPECT_GT(app.full_vm_startup, SimTime::Zero());
  }
  bool has_libreoffice = false;
  for (const auto& app : apps) {
    if (app.name.find("LibreOffice") != std::string::npos) {
      has_libreoffice = true;
    }
  }
  EXPECT_TRUE(has_libreoffice);
}

}  // namespace
}  // namespace oasis
