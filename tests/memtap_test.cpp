// memtap demand-paging behaviour and the Fig 6 app-startup model.

#include "src/hyper/memtap.h"

#include <gtest/gtest.h>

namespace oasis {
namespace {

constexpr uint64_t kVmPages = (4 * kGiB) / kPageSize;

TEST(MemtapTest, FaultInFetchesFromServer) {
  MemoryServer server;
  server.Upload(SimTime::Zero(), 1, 100 * kMiB);
  Memtap memtap(&server, 1, kVmPages, 7);
  StatusOr<SimTime> latency = memtap.FaultIn(SimTime::Zero(), 42);
  ASSERT_TRUE(latency.ok());
  EXPECT_GT(*latency, SimTime::Zero());
  EXPECT_EQ(memtap.pages_fetched(), 1u);
  EXPECT_EQ(memtap.bytes_fetched(), kPageSize);
}

TEST(MemtapTest, FaultOnMissingImageFails) {
  MemoryServer server;
  Memtap memtap(&server, 1, kVmPages, 7);
  EXPECT_FALSE(memtap.FaultIn(SimTime::Zero(), 0).ok());
}

TEST(MemtapTest, ManyFaultsAccumulateLatency) {
  MemoryServer server;
  server.Upload(SimTime::Zero(), 1, 100 * kMiB);
  Memtap memtap(&server, 1, kVmPages, 7);
  StatusOr<SimTime> total = memtap.FaultInMany(SimTime::Zero(), 1000, 0.1);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(memtap.pages_fetched(), 1000u);
  // ~5 ms per mostly-missing fault.
  EXPECT_GT(total->seconds(), 2.0);
  EXPECT_LT(total->seconds(), 8.0);
}

TEST(MemtapTest, LocalityReducesTotalStall) {
  MemoryServer s1;
  MemoryServer s2;
  s1.Upload(SimTime::Zero(), 1, 100 * kMiB);
  s2.Upload(SimTime::Zero(), 1, 100 * kMiB);
  Memtap scattered(&s1, 1, kVmPages, 7);
  Memtap local(&s2, 1, kVmPages, 7);
  StatusOr<SimTime> t_scattered = scattered.FaultInMany(SimTime::Zero(), 2000, 0.0);
  StatusOr<SimTime> t_local = local.FaultInMany(SimTime::Zero(), 2000, 0.9);
  ASSERT_TRUE(t_scattered.ok());
  ASSERT_TRUE(t_local.ok());
  EXPECT_LT(t_local->seconds(), t_scattered->seconds() * 0.5);
}

TEST(Figure6Test, LibreOfficeStartupNearPaper168Seconds) {
  // §4.4.4: starting a LibreOffice document in a partial VM takes ~168 s
  // vs ~1.5 s in a full VM — up to 111x slower.
  MemoryServer server;
  server.Upload(SimTime::Zero(), 1, 1306 * kMiB);
  Memtap memtap(&server, 1, kVmPages, 3);
  AppStartupProfile libreoffice{"LibreOffice (document)", 131 * kMiB, SimTime::Seconds(1.5)};
  StatusOr<SimTime> partial = SimulatePartialVmAppStart(libreoffice, memtap, SimTime::Zero());
  ASSERT_TRUE(partial.ok());
  EXPECT_NEAR(partial->seconds(), 168.0, 30.0);
  double slowdown = partial->seconds() / libreoffice.full_vm_startup.seconds();
  EXPECT_GT(slowdown, 60.0);
  EXPECT_LT(slowdown, 140.0);
}

TEST(Figure6Test, EveryAppIsSlowerInPartialVm) {
  MemoryServer server;
  server.Upload(SimTime::Zero(), 1, 1306 * kMiB);
  for (const AppStartupProfile& app : Figure6Applications()) {
    Memtap memtap(&server, 1, kVmPages, app.startup_working_set);
    StatusOr<SimTime> partial = SimulatePartialVmAppStart(app, memtap, SimTime::Zero());
    ASSERT_TRUE(partial.ok()) << app.name;
    EXPECT_GT(*partial, app.full_vm_startup * 5.0) << app.name;
  }
}

TEST(Figure6Test, SlowdownMotivatesConversionPolicy) {
  // §4.4.4's conclusion: partial start-up dwarfs even a full 41 s
  // migration, so active partial VMs must convert to full VMs.
  MemoryServer server;
  server.Upload(SimTime::Zero(), 1, 1306 * kMiB);
  Memtap memtap(&server, 1, kVmPages, 5);
  AppStartupProfile libreoffice{"LibreOffice (document)", 131 * kMiB, SimTime::Seconds(1.5)};
  StatusOr<SimTime> partial = SimulatePartialVmAppStart(libreoffice, memtap, SimTime::Zero());
  ASSERT_TRUE(partial.ok());
  EXPECT_GT(partial->seconds(), 41.0);
}

}  // namespace
}  // namespace oasis
