// The invariant checker under the parallel experiment runner: concurrent
// runs share the process-wide checker, so its accounting must be thread-safe
// and — critically — a violation recorded while one run executes must not
// stop, perturb, or fail the sibling runs. It must only surface in the
// merged end-of-scope report.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/check/check.h"
#include "src/exp/exp.h"
#include "tests/metric_digest.h"

namespace oasis {
namespace {

using check::CheckMode;
using check::InvariantChecker;

SimulationConfig SmallCluster(uint64_t seed) {
  SimulationConfig config;
  config.cluster.num_home_hosts = 6;
  config.cluster.num_consolidation_hosts = 2;
  config.cluster.vms_per_home = 8;
  config.cluster.policy = ConsolidationPolicy::kFullToPartial;
  config.seed = seed;
  return config;
}

exp::ExperimentPlan MixedPlan() {
  exp::ExperimentPlan plan;
  plan.Add(SmallCluster(11));
  plan.Add(SmallCluster(22));
  plan.AddRepetitions(SmallCluster(33), 3);
  return plan;
}

std::vector<uint64_t> Digests(const std::vector<SimulationResult>& results) {
  std::vector<uint64_t> digests;
  digests.reserve(results.size());
  for (const SimulationResult& result : results) {
    digests.push_back(testing::DigestResult(result));
  }
  return digests;
}

TEST(CheckExpTest, CheckerObservesParallelRunsWithoutPerturbingThem) {
  exp::ExperimentPlan plan = MixedPlan();
  // Reference: no checker installed, serial — the legacy code path.
  std::vector<uint64_t> reference = Digests(exp::RunParallel(plan, 1));

  InvariantChecker checker(CheckMode::kStrict);
  InvariantChecker::Install(&checker);
  std::vector<uint64_t> observed = Digests(exp::RunParallel(plan, 4));
  InvariantChecker::Install(nullptr);

  // The checker ran (every worker hits the per-interval walks) and the runs
  // were clean...
  EXPECT_GT(checker.checks_run(), 10000u);
  EXPECT_EQ(checker.violation_count(), 0u);
  // ...and observing changed nothing: results are bit-identical to the
  // uninstrumented serial reference.
  EXPECT_EQ(observed, reference);
}

TEST(CheckExpTest, ViolationInOneRunDoesNotPoisonSiblings) {
  exp::ExperimentPlan plan = MixedPlan();
  std::vector<uint64_t> reference = Digests(exp::RunParallel(plan, 1));

  InvariantChecker checker(CheckMode::kStrict);
  InvariantChecker::Install(&checker);
  // A synthetic violation reported from another thread while the pool is
  // mid-flight: the moral equivalent of one run tripping an invariant.
  std::thread saboteur([&checker] {
    checker.Report("test.synthetic_failure", SimTime::Seconds(1),
                   "seeded from a concurrent run", obs::TraceArgs{3, 14});
  });
  std::vector<uint64_t> observed = Digests(exp::RunParallel(plan, 4));
  saboteur.join();
  InvariantChecker::Install(nullptr);

  // Every sibling run completed and produced exactly the clean-run results.
  ASSERT_EQ(observed.size(), plan.size());
  EXPECT_EQ(observed, reference);

  // The violation surfaces in the merged report with its structured payload.
  EXPECT_EQ(checker.violation_count(), 1u);
  std::vector<check::Violation> stored = checker.violations();
  ASSERT_EQ(stored.size(), 1u);
  EXPECT_STREQ(stored[0].invariant, "test.synthetic_failure");
  EXPECT_EQ(stored[0].args.host, 3);
  EXPECT_EQ(stored[0].args.vm, 14);
  EXPECT_EQ(checker.ReportToStderr(), 1u);
}

TEST(CheckExpTest, ConcurrentReportsAreCountedExactly) {
  InvariantChecker checker(CheckMode::kWarn);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&checker, t] {
      for (int i = 0; i < kPerThread; ++i) {
        checker.Expect(i % 2 == 0, "test.concurrent", SimTime::Micros(t * kPerThread + i),
                       [] { return "odd"; });
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(checker.checks_run(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(checker.violation_count(), static_cast<uint64_t>(kThreads * kPerThread / 2));
  EXPECT_EQ(checker.violations().size(), InvariantChecker::kMaxStoredViolations);
}

}  // namespace
}  // namespace oasis
