#include "src/cluster/manager.h"

#include <gtest/gtest.h>

#include "src/trace/trace_generator.h"

namespace oasis {
namespace {

ClusterConfig SmallCluster(ConsolidationPolicy policy) {
  ClusterConfig config;
  config.num_home_hosts = 4;
  config.num_consolidation_hosts = 2;
  config.vms_per_home = 5;
  config.policy = policy;
  config.seed = 7;
  return config;
}

TraceSet UniformTrace(int users, bool active) {
  TraceSet set;
  for (int u = 0; u < users; ++u) {
    UserDay day;
    if (active) {
      for (int i = 0; i < kIntervalsPerDay; ++i) {
        day.SetActive(i, true);
      }
    }
    set.push_back(day);
  }
  return set;
}

// One user active 09:00-17:00, everyone else always idle.
TraceSet OfficeHoursTrace(int users, int active_users) {
  TraceSet set;
  for (int u = 0; u < users; ++u) {
    UserDay day;
    if (u < active_users) {
      for (int i = IntervalAt(9.0); i < IntervalAt(17.0); ++i) {
        day.SetActive(i, true);
      }
    }
    set.push_back(day);
  }
  return set;
}

TEST(ManagerTest, BaselineEnergyIsFlatLoadedDraw) {
  ClusterConfig config = SmallCluster(ConsolidationPolicy::kFullToPartial);
  TraceSet trace = UniformTrace(config.TotalVms(), false);
  Joules baseline = ClusterManager::BaselineEnergy(config, trace);
  // 4 homes, each saturating below 20 VMs: 102.2 + 5 * 1.785 W, 24 h.
  double per_host = 102.2 + 5 * (137.9 - 102.2) / 20.0;
  EXPECT_NEAR(ToKWh(baseline), 4 * per_host * 24.0 / 1000.0, 0.01);
}

TEST(ManagerTest, AllIdleClusterConsolidatesEverythingAndSleeps) {
  ClusterConfig config = SmallCluster(ConsolidationPolicy::kFullToPartial);
  ClusterManager manager(config, UniformTrace(config.TotalVms(), false));
  ClusterMetrics m = manager.Run();
  // Every VM ends up partial on a consolidation host.
  EXPECT_EQ(m.partial_migrations, static_cast<uint64_t>(config.TotalVms()));
  EXPECT_EQ(m.reintegrations, 0u);
  // 4 small homes vs one (load-saturated) consolidation host: modest but
  // clearly positive savings.
  EXPECT_GT(m.EnergySavings(), 0.12);
  // All home hosts asleep nearly all day.
  for (int h = 0; h < config.num_home_hosts; ++h) {
    EXPECT_GT(manager.GetHost(h).ledger().SleepFraction(SimTime::Hours(24)), 0.95);
  }
  // The final snapshot shows zero powered home hosts.
  EXPECT_EQ(m.timeline.back().powered_home_hosts, 0);
  EXPECT_EQ(m.timeline.back().partial_vms, config.TotalVms());
}

TEST(ManagerTest, AllIdleOnlyPartialAlsoWorks) {
  ClusterConfig config = SmallCluster(ConsolidationPolicy::kOnlyPartial);
  ClusterManager manager(config, UniformTrace(config.TotalVms(), false));
  ClusterMetrics m = manager.Run();
  EXPECT_EQ(m.full_migrations, 0u);
  EXPECT_GT(m.EnergySavings(), 0.12);
}

TEST(ManagerTest, AllActiveOnlyPartialNeverMigrates) {
  ClusterConfig config = SmallCluster(ConsolidationPolicy::kOnlyPartial);
  ClusterManager manager(config, UniformTrace(config.TotalVms(), true));
  ClusterMetrics m = manager.Run();
  EXPECT_EQ(m.full_migrations, 0u);
  EXPECT_EQ(m.partial_migrations, 0u);
  EXPECT_EQ(m.host_sleeps, 0u);
  // No consolidation: energy equals the baseline except for the S3 draw of
  // the (never-used) sleeping consolidation hosts, which the baseline does
  // not include.
  EXPECT_NEAR(m.EnergySavings(), 0.0, 0.08);
}

TEST(ManagerTest, AllActiveHybridConsolidatesInFullWhenItFits) {
  // 20 active VMs * 4 GiB = 80 GiB fits one 128 GiB consolidation host, and
  // sleeping four homes for one consolidation host is a clear win.
  ClusterConfig config = SmallCluster(ConsolidationPolicy::kFullToPartial);
  ClusterManager manager(config, UniformTrace(config.TotalVms(), true));
  ClusterMetrics m = manager.Run();
  EXPECT_EQ(m.full_migrations, static_cast<uint64_t>(config.TotalVms()));
  EXPECT_GT(m.EnergySavings(), 0.2);
  // Active VMs never lose resources: all transitions zero-delay (none occur
  // after t=0 here, so the distribution may simply be empty).
  EXPECT_EQ(m.capacity_exhaustions, 0u);
}

TEST(ManagerTest, ZeroDelayForActivationsOnPoweredHomes) {
  // Users work 9-17; their VMs are full at home when they return from
  // overnight consolidation... the 9:00 activation may reintegrate, but all
  // subsequent activity flips (none here) are free. Check the distribution
  // only contains small values.
  ClusterConfig config = SmallCluster(ConsolidationPolicy::kFullToPartial);
  ClusterManager manager(config, OfficeHoursTrace(config.TotalVms(), 8));
  ClusterMetrics m = manager.Run();
  ASSERT_GT(m.transition_delay_s.count(), 0u);
  EXPECT_GE(m.transition_delay_s.Min(), 0.0);
  EXPECT_LT(m.transition_delay_s.Max(), 120.0);
}

TEST(ManagerTest, DeterministicForSameSeedAndTrace) {
  ClusterConfig config = SmallCluster(ConsolidationPolicy::kFullToPartial);
  TraceGenerator gen(TraceGeneratorConfig{}, 99);
  TraceSet trace = gen.GenerateTraceSet(config.TotalVms(), DayKind::kWeekday);
  ClusterManager m1(config, trace);
  ClusterManager m2(config, trace);
  ClusterMetrics r1 = m1.Run();
  ClusterMetrics r2 = m2.Run();
  EXPECT_DOUBLE_EQ(r1.TotalEnergy(), r2.TotalEnergy());
  EXPECT_EQ(r1.full_migrations, r2.full_migrations);
  EXPECT_EQ(r1.partial_migrations, r2.partial_migrations);
  EXPECT_EQ(r1.traffic.NetworkTotal(), r2.traffic.NetworkTotal());
}

TEST(ManagerTest, ReservationsNeverExceedCapacity) {
  ClusterConfig config = SmallCluster(ConsolidationPolicy::kFullToPartial);
  TraceGenerator gen(TraceGeneratorConfig{}, 5);
  ClusterManager manager(config, gen.GenerateTraceSet(config.TotalVms(), DayKind::kWeekday));
  manager.Run();
  for (size_t h = 0; h < manager.num_hosts(); ++h) {
    const ClusterHost& host = manager.GetHost(static_cast<HostId>(h));
    EXPECT_LE(host.reserved_bytes(), host.capacity_bytes()) << "host " << h;
  }
}

TEST(ManagerTest, VmLocationMatchesHostMembership) {
  ClusterConfig config = SmallCluster(ConsolidationPolicy::kNewHome);
  TraceGenerator gen(TraceGeneratorConfig{}, 6);
  ClusterManager manager(config, gen.GenerateTraceSet(config.TotalVms(), DayKind::kWeekday));
  manager.Run();
  for (size_t v = 0; v < manager.num_vms(); ++v) {
    const VmSlot& vm = manager.GetVm(static_cast<VmId>(v));
    const ClusterHost& host = manager.GetHost(vm.location);
    EXPECT_TRUE(host.vms().count(vm.id)) << "vm " << v << " not on host " << vm.location;
  }
}

TEST(ManagerTest, ActiveVmsNeverOnSleepingHosts) {
  ClusterConfig config = SmallCluster(ConsolidationPolicy::kFullToPartial);
  TraceGenerator gen(TraceGeneratorConfig{}, 8);
  ClusterManager manager(config, gen.GenerateTraceSet(config.TotalVms(), DayKind::kWeekday));
  manager.Run();
  for (size_t v = 0; v < manager.num_vms(); ++v) {
    const VmSlot& vm = manager.GetVm(static_cast<VmId>(v));
    if (vm.activity == VmActivity::kActive && !vm.migration_in_flight) {
      EXPECT_NE(manager.GetHost(vm.location).power_state(), HostPowerState::kSleeping)
          << "active vm " << v << " stranded on sleeping host";
    }
  }
}

TEST(ManagerTest, EnergyComponentsArePositiveAndSumCorrectly) {
  ClusterConfig config = SmallCluster(ConsolidationPolicy::kFullToPartial);
  TraceGenerator gen(TraceGeneratorConfig{}, 9);
  ClusterManager manager(config, gen.GenerateTraceSet(config.TotalVms(), DayKind::kWeekday));
  ClusterMetrics m = manager.Run();
  EXPECT_GT(m.home_host_energy, 0.0);
  EXPECT_GT(m.baseline_energy, 0.0);
  EXPECT_DOUBLE_EQ(m.TotalEnergy(),
                   m.home_host_energy + m.consolidation_host_energy + m.memory_server_energy);
  EXPECT_LT(m.EnergySavings(), 1.0);
}

TEST(ManagerTest, TimelineHasOneSnapshotPerInterval) {
  ClusterConfig config = SmallCluster(ConsolidationPolicy::kDefault);
  ClusterManager manager(config, UniformTrace(config.TotalVms(), false));
  ClusterMetrics m = manager.Run();
  EXPECT_EQ(m.timeline.size(), static_cast<size_t>(kIntervalsPerDay));
  for (const IntervalSnapshot& s : m.timeline) {
    EXPECT_LE(s.active_vms, config.TotalVms());
    EXPECT_LE(s.powered_hosts, config.TotalHosts());
    EXPECT_GE(s.powered_hosts, 0);
  }
}

TEST(ManagerTest, DelaysAreNonNegativeAndBounded) {
  ClusterConfig config = SmallCluster(ConsolidationPolicy::kFullToPartial);
  TraceGenerator gen(TraceGeneratorConfig{}, 11);
  ClusterManager manager(config, gen.GenerateTraceSet(config.TotalVms(), DayKind::kWeekday));
  ClusterMetrics m = manager.Run();
  if (m.transition_delay_s.count() > 0) {
    EXPECT_GE(m.transition_delay_s.Min(), 0.0);
    EXPECT_LT(m.transition_delay_s.Max(), 400.0);
  }
}

TEST(ManagerTest, MemoryServersOnlyBurnEnergyWhenHomesSleep) {
  // All-active cluster under OnlyPartial: nobody sleeps, so no memory server
  // should ever be powered.
  ClusterConfig config = SmallCluster(ConsolidationPolicy::kOnlyPartial);
  ClusterManager manager(config, UniformTrace(config.TotalVms(), true));
  ClusterMetrics m = manager.Run();
  EXPECT_DOUBLE_EQ(m.memory_server_energy, 0.0);
}

TEST(ManagerTest, MemoryServerPowerScalesTable3) {
  // A cheaper memory server must never hurt savings (Table 3's premise).
  ClusterConfig expensive = SmallCluster(ConsolidationPolicy::kFullToPartial);
  ClusterConfig cheap = expensive;
  cheap.memory_server_power = MemoryServerProfile::WithPower(1.0);
  TraceGenerator gen(TraceGeneratorConfig{}, 13);
  TraceSet trace = gen.GenerateTraceSet(expensive.TotalVms(), DayKind::kWeekday);
  ClusterMetrics m_expensive = ClusterManager(expensive, trace).Run();
  ClusterMetrics m_cheap = ClusterManager(cheap, trace).Run();
  EXPECT_GT(m_cheap.EnergySavings(), m_expensive.EnergySavings());
}

class PolicyTest : public ::testing::TestWithParam<ConsolidationPolicy> {};

TEST_P(PolicyTest, RunsCleanlyOnRealisticTrace) {
  ClusterConfig config = SmallCluster(GetParam());
  TraceGenerator gen(TraceGeneratorConfig{}, 21);
  ClusterManager manager(config, gen.GenerateTraceSet(config.TotalVms(), DayKind::kWeekday));
  ClusterMetrics m = manager.Run();
  EXPECT_GT(m.baseline_energy, 0.0);
  EXPECT_GE(m.EnergySavings(), -0.05);
  EXPECT_LE(m.EnergySavings(), 1.0);
}

TEST_P(PolicyTest, OnlyPartialNeverDoesFullMigrations) {
  if (GetParam() != ConsolidationPolicy::kOnlyPartial) {
    GTEST_SKIP();
  }
  ClusterConfig config = SmallCluster(GetParam());
  TraceGenerator gen(TraceGeneratorConfig{}, 23);
  ClusterManager manager(config, gen.GenerateTraceSet(config.TotalVms(), DayKind::kWeekday));
  ClusterMetrics m = manager.Run();
  EXPECT_EQ(m.full_migrations, 0u);
  EXPECT_EQ(m.traffic.Total(TrafficCategory::kFullMigration), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyTest,
                         ::testing::Values(ConsolidationPolicy::kOnlyPartial,
                                           ConsolidationPolicy::kDefault,
                                           ConsolidationPolicy::kFullToPartial,
                                           ConsolidationPolicy::kNewHome),
                         [](const auto& suite_info) {
                           return ConsolidationPolicyName(suite_info.param);
                         });

TEST(ManagerTest, PolicyNames) {
  EXPECT_STREQ(ConsolidationPolicyName(ConsolidationPolicy::kOnlyPartial), "OnlyPartial");
  EXPECT_STREQ(ConsolidationPolicyName(ConsolidationPolicy::kDefault), "Default");
  EXPECT_STREQ(ConsolidationPolicyName(ConsolidationPolicy::kFullToPartial), "FulltoPartial");
  EXPECT_STREQ(ConsolidationPolicyName(ConsolidationPolicy::kNewHome), "NewHome");
}

}  // namespace
}  // namespace oasis
