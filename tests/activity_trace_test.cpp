#include "src/trace/activity_trace.h"

#include <gtest/gtest.h>

namespace oasis {
namespace {

TEST(ActivityTraceTest, Constants) {
  EXPECT_EQ(kTraceIntervalSeconds, 300);
  EXPECT_EQ(kIntervalsPerDay, 288);
  EXPECT_EQ(TraceIntervalLength(), SimTime::Minutes(5));
}

TEST(UserDayTest, StartsIdle) {
  UserDay day;
  EXPECT_EQ(day.ActiveIntervals(), 0);
  EXPECT_DOUBLE_EQ(day.ActiveFraction(), 0.0);
  EXPECT_EQ(day.LongestIdleRun(), kIntervalsPerDay);
}

TEST(UserDayTest, SetAndGet) {
  UserDay day;
  day.SetActive(10, true);
  day.SetActive(20, true);
  EXPECT_TRUE(day.IsActive(10));
  EXPECT_FALSE(day.IsActive(11));
  EXPECT_EQ(day.ActiveIntervals(), 2);
  day.SetActive(10, false);
  EXPECT_EQ(day.ActiveIntervals(), 1);
}

TEST(UserDayTest, LongestIdleRun) {
  UserDay day;
  day.SetActive(100, true);
  // Idle runs: [0,99] (100 long) and [101,287] (187 long).
  EXPECT_EQ(day.LongestIdleRun(), 187);
  day.SetActive(0, true);
  day.SetActive(287, true);
  EXPECT_EQ(day.LongestIdleRun(), 186);
}

TEST(UserDayTest, ConstructFromBits) {
  std::vector<bool> bits(kIntervalsPerDay, false);
  bits[5] = true;
  UserDay day(bits);
  EXPECT_TRUE(day.IsActive(5));
  EXPECT_EQ(day.ActiveIntervals(), 1);
}

TEST(IntervalMathTest, IntervalAtMapsHours) {
  EXPECT_EQ(IntervalAt(0.0), 0);
  EXPECT_EQ(IntervalAt(14.0), 168);
  EXPECT_EQ(IntervalAt(23.99), 287);
  EXPECT_EQ(IntervalAt(24.5), 287);  // clamps
}

TEST(IntervalMathTest, HourOfIntervalIsMidpoint) {
  EXPECT_NEAR(HourOfInterval(0), 0.0417, 0.001);
  EXPECT_NEAR(HourOfInterval(168), 14.04, 0.01);
}

TEST(IntervalMathTest, RoundTrip) {
  for (int i = 0; i < kIntervalsPerDay; ++i) {
    EXPECT_EQ(IntervalAt(HourOfInterval(i)), i);
  }
}

TEST(DayKindTest, Names) {
  EXPECT_STREQ(DayKindName(DayKind::kWeekday), "weekday");
  EXPECT_STREQ(DayKindName(DayKind::kWeekend), "weekend");
}

}  // namespace
}  // namespace oasis
