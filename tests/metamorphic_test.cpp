// Metamorphic properties of the simulator: relations that must hold between
// *pairs* of runs, regardless of what the right answer is. Each property is
// phrased over the full metric digest (tests/metric_digest.h), so a single
// perturbed interval snapshot or one-ULP energy drift fails the suite. Every
// test runs with the invariant checker installed in warn mode; a recorded
// violation fails the test at teardown.
//
//   1. Seed determinism      — same config, same digest. Different seed,
//                              different digest (the test is not vacuous).
//   2. Jobs equivalence      — RunParallel at jobs=1 and jobs=4 produce
//                              bit-identical per-run results.
//   3. Relabeling invariance — permuting user-trace rows cannot change the
//                              cluster-wide activity timeline or the
//                              baseline, and swapping whole home-host blocks
//                              (a pure host relabeling) moves the headline
//                              energy only marginally.
//   4. Fault-disabled identity — a chaos config with enabled=false is
//                              byte-identical to the pre-fault default.

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "src/check/check.h"
#include "src/cluster/strategy.h"
#include "src/exp/exp.h"
#include "src/fault/fault.h"
#include "src/trace/trace_generator.h"
#include "tests/metric_digest.h"

namespace oasis {
namespace {

using check::CheckMode;
using check::InvariantChecker;

SimulationConfig SmallCluster(uint64_t seed) {
  SimulationConfig config;
  config.cluster.num_home_hosts = 6;
  config.cluster.num_consolidation_hosts = 2;
  config.cluster.vms_per_home = 8;
  config.cluster.policy = ConsolidationPolicy::kFullToPartial;
  config.seed = seed;
  return config;
}

TraceSet FixedTrace(const SimulationConfig& config) {
  TraceGenerator generator(config.trace, config.seed ^ 0x7ACEBA5Eull);
  return generator.GenerateTraceSet(config.cluster.TotalVms(), config.day);
}

class MetamorphicTest : public ::testing::Test {
 protected:
  void SetUp() override { InvariantChecker::Install(&checker_); }
  void TearDown() override {
    InvariantChecker::Install(nullptr);
    EXPECT_EQ(checker_.violation_count(), 0u)
        << "invariant violations recorded during a metamorphic run";
  }

  static SimulationResult RunOnce(const SimulationConfig& config) {
    return ClusterSimulation(config).Run();
  }

  InvariantChecker checker_{CheckMode::kWarn};
};

TEST_F(MetamorphicTest, SameSeedSameDigestDifferentSeedDifferentDigest) {
  SimulationConfig config = SmallCluster(2016);
  uint64_t first = testing::DigestResult(RunOnce(config));
  uint64_t second = testing::DigestResult(RunOnce(config));
  EXPECT_EQ(first, second);

  SimulationConfig reseeded = SmallCluster(2017);
  EXPECT_NE(testing::DigestResult(RunOnce(reseeded)), first)
      << "digest ignored the seed; the determinism property is vacuous";
}

TEST_F(MetamorphicTest, ParallelJobsProduceBitIdenticalDigests) {
  exp::ExperimentPlan plan;
  plan.Add(SmallCluster(5));
  plan.Add(SmallCluster(6));
  plan.AddRepetitions(SmallCluster(7), 3);

  std::vector<SimulationResult> serial = exp::RunParallel(plan, 1);
  std::vector<SimulationResult> parallel = exp::RunParallel(plan, 4);
  ASSERT_EQ(serial.size(), plan.size());
  ASSERT_EQ(parallel.size(), plan.size());
  for (size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(testing::DigestResult(parallel[i]), testing::DigestResult(serial[i]))
        << "plan index " << i;
  }
}

TEST_F(MetamorphicTest, TracePermutationPreservesActivityTimelineAndBaseline) {
  SimulationConfig config = SmallCluster(99);
  config.fixed_trace = FixedTrace(config);
  SimulationResult original = RunOnce(config);

  // Reversing the rows is a maximal relabeling: every VM gets a different
  // user, but the multiset of user-days — and therefore the cluster-wide
  // number of active VMs at every interval — is untouched.
  TraceSet reversed_rows = *config.fixed_trace;
  std::reverse(reversed_rows.begin(), reversed_rows.end());
  SimulationConfig relabeled = config;
  relabeled.fixed_trace = std::move(reversed_rows);
  SimulationResult reversed = RunOnce(relabeled);

  EXPECT_EQ(reversed.metrics.baseline_energy, original.metrics.baseline_energy);
  ASSERT_EQ(reversed.metrics.timeline.size(), original.metrics.timeline.size());
  for (size_t i = 0; i < original.metrics.timeline.size(); ++i) {
    EXPECT_EQ(reversed.metrics.timeline[i].active_vms,
              original.metrics.timeline[i].active_vms)
        << "interval " << i;
  }
}

TEST_F(MetamorphicTest, HomeHostBlockSwapIsAHostRelabeling) {
  SimulationConfig config = SmallCluster(123);
  config.fixed_trace = FixedTrace(config);
  SimulationResult original = RunOnce(config);

  // Swapping the trace blocks of home host 0 and home host 1 relabels the
  // two hosts. Planning order and RNG stream assignment shift, so the runs
  // are not bit-identical — but the physics cannot move much: the same users
  // run on the same hardware.
  TraceSet swapped_rows = *config.fixed_trace;
  const int block = config.cluster.vms_per_home;
  for (int v = 0; v < block; ++v) {
    std::swap(swapped_rows[v], swapped_rows[block + v]);
  }
  SimulationConfig swapped = config;
  swapped.fixed_trace = std::move(swapped_rows);
  SimulationResult relabeled = RunOnce(swapped);

  EXPECT_EQ(relabeled.metrics.baseline_energy, original.metrics.baseline_energy);
  ASSERT_EQ(relabeled.metrics.timeline.size(), original.metrics.timeline.size());
  for (size_t i = 0; i < original.metrics.timeline.size(); ++i) {
    EXPECT_EQ(relabeled.metrics.timeline[i].active_vms,
              original.metrics.timeline[i].active_vms)
        << "interval " << i;
  }
  EXPECT_NEAR(relabeled.metrics.TotalEnergy(), original.metrics.TotalEnergy(),
              0.05 * original.metrics.TotalEnergy());
  EXPECT_NEAR(relabeled.metrics.EnergySavings(), original.metrics.EnergySavings(), 0.05);
}

TEST_F(MetamorphicTest, DisabledFaultConfigIsByteIdenticalToPreFaultRun) {
  SimulationConfig plain = SmallCluster(31337);
  uint64_t plain_digest = testing::DigestResult(RunOnce(plain));

  // A fully-populated chaos config with the master switch off must not
  // consume a single extra random draw.
  SimulationConfig disarmed = plain;
  disarmed.cluster.fault = FaultConfig::ChaosDay();
  disarmed.cluster.fault.enabled = false;
  EXPECT_EQ(testing::DigestResult(RunOnce(disarmed)), plain_digest);

  // And the enabled chaos day actually changes the run (the switch matters).
  SimulationConfig armed = plain;
  armed.cluster.fault = FaultConfig::ChaosDay();
  SimulationResult chaotic = RunOnce(armed);
  EXPECT_GT(chaotic.metrics.faults_injected, 0u);
  EXPECT_NE(testing::DigestResult(chaotic), plain_digest);
}

TEST_F(MetamorphicTest, DefaultStrategyReproducesTheLegacyManagerDigest) {
  // Policy-identity pin for the control-plane split (view / strategy /
  // actuator): the "oasis-greedy" strategy must reproduce the pre-refactor
  // monolithic ClusterManager byte for byte. The constant below is the
  // digest of SmallCluster(2016) captured against the last monolithic
  // build; it must hold at any parallelism.
  constexpr uint64_t kLegacyDigest = 0xb99c15c8663b6673ull;
  SimulationConfig config = SmallCluster(2016);
  config.cluster.strategy_name = kDefaultStrategyName;  // explicit == default
  exp::ExperimentPlan plan;
  plan.Add(config);
  for (int jobs : {1, 4}) {
    std::vector<SimulationResult> results = exp::RunParallel(plan, jobs);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(testing::DigestResult(results[0]), kLegacyDigest) << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace oasis
