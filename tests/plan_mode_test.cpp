// Plan-backend identity: the oasis-greedy strategy's incremental backend
// (OASIS_PLAN=incremental, dirty-set-refreshed scan state) must reproduce
// the full-rescan backend digest for digest — same seed, same plans, same
// simulation, byte for byte — across every scenario shape the flagship
// binaries exercise:
//
//   * quickstart        — the default cluster, weekday and weekend;
//   * fig07/fig08       — the paper rack under all four consolidation
//                         policies (swaps on and off, NewHome moves,
//                         OnlyPartial's empty-plan early-outs);
//   * chaos_day         — faults enabled: crashes and recoveries must mark
//                         hosts dirty correctly or the cached rows go stale;
//   * datacenter_day    — the sharded runner, per-rack digests and the
//                         merged ledger.
//
// Every equality is checked at OASIS_JOBS 1 and 4 (the plan mode is read per
// strategy construction, so worker threads inherit whatever the env said
// when their manager was built). A final smoke runs OASIS_PLAN=verify, which
// executes both backends per pass and exits(2) on any divergence — surviving
// a chaos day under verify is the strongest single check in the suite.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "src/check/check.h"
#include "src/cluster/strategy_oasis.h"
#include "src/core/oasis.h"
#include "src/dc/ledger.h"
#include "src/dc/runner.h"
#include "src/dc/topology.h"
#include "src/exp/exp.h"
#include "src/fault/fault.h"
#include "tests/metric_digest.h"

namespace oasis {
namespace {

using check::CheckMode;
using check::InvariantChecker;

// Sets OASIS_PLAN for the duration of one run. Strategies read the variable
// at construction, which happens inside the Run call, so scoping the env
// around it is airtight (no simulation threads outlive the scope).
class ScopedPlanMode {
 public:
  explicit ScopedPlanMode(const char* mode) { setenv("OASIS_PLAN", mode, 1); }
  ~ScopedPlanMode() { unsetenv("OASIS_PLAN"); }
  ScopedPlanMode(const ScopedPlanMode&) = delete;
  ScopedPlanMode& operator=(const ScopedPlanMode&) = delete;
};

// The paper's standard rack (30 homes x 30 VMs + 4 consolidation hosts),
// as bench/bench_util.h builds it for fig07/fig08/chaos_day.
SimulationConfig PaperRack(ConsolidationPolicy policy, DayKind day) {
  SimulationConfig config;
  config.cluster.policy = policy;
  config.day = day;
  config.seed = 20160418;
  return config;
}

uint64_t DigestUnder(const SimulationConfig& config, const char* plan_mode, int jobs) {
  ScopedPlanMode scoped(plan_mode);
  exp::ExperimentPlan plan;
  plan.Add(config);
  std::vector<SimulationResult> results = exp::RunParallel(plan, jobs);
  return testing::DigestResult(results.at(0));
}

class PlanModeTest : public ::testing::Test {
 protected:
  void SetUp() override { InvariantChecker::Install(&checker_); }
  void TearDown() override {
    InvariantChecker::Install(nullptr);
    EXPECT_EQ(checker_.violation_count(), 0u)
        << "invariant violations recorded during a plan-mode run";
  }

  // The pinned property: full rescan at jobs=1 is the reference; the full
  // backend at jobs=4 and the incremental backend at both job counts must
  // all fold to the same digest.
  static void ExpectBackendIdentity(const SimulationConfig& config, const char* label) {
    const uint64_t reference = DigestUnder(config, "full", 1);
    EXPECT_EQ(DigestUnder(config, "full", 4), reference)
        << label << ": full backend is not jobs-invariant";
    for (int jobs : {1, 4}) {
      EXPECT_EQ(DigestUnder(config, "incremental", jobs), reference)
          << label << ": incremental diverged from full at jobs=" << jobs;
    }
  }

  InvariantChecker checker_{CheckMode::kWarn};
};

TEST_F(PlanModeTest, DefaultsToIncremental) {
  // The default is the fast backend — safe exactly because this suite pins
  // it byte-identical to the reference.
  unsetenv("OASIS_PLAN");
  EXPECT_EQ(PlanModeFromEnv(), PlanMode::kIncremental);
  EXPECT_EQ(OasisGreedyStrategy().mode(), PlanMode::kIncremental);
  {
    ScopedPlanMode scoped("full");
    EXPECT_EQ(PlanModeFromEnv(), PlanMode::kFull);
  }
  {
    ScopedPlanMode scoped("verify");
    EXPECT_EQ(PlanModeFromEnv(), PlanMode::kVerify);
  }
}

TEST_F(PlanModeTest, QuickstartDays) {
  ExpectBackendIdentity(PaperRack(ConsolidationPolicy::kFullToPartial, DayKind::kWeekday),
                        "quickstart weekday");
  ExpectBackendIdentity(PaperRack(ConsolidationPolicy::kFullToPartial, DayKind::kWeekend),
                        "quickstart weekend");
}

TEST_F(PlanModeTest, PaperRackAllPolicies) {
  // fig08 sweeps the policy axis; each policy exercises a different subset
  // of the planner (swap pass on/off, NewHome conversions, OnlyPartial's
  // all-trusted gate and empty-plan early-outs).
  for (ConsolidationPolicy policy :
       {ConsolidationPolicy::kOnlyPartial, ConsolidationPolicy::kDefault,
        ConsolidationPolicy::kFullToPartial, ConsolidationPolicy::kNewHome}) {
    ExpectBackendIdentity(PaperRack(policy, DayKind::kWeekday),
                          ConsolidationPolicyName(policy));
  }
}

TEST_F(PlanModeTest, ChaosDayFaultsDirtyHostsCorrectly) {
  // Crashes evict VMs and flip power states outside the planner's own
  // actions; if those paths failed to mark hosts dirty, the incremental
  // rows would go stale and the digests would split within one interval.
  SimulationConfig config = PaperRack(ConsolidationPolicy::kFullToPartial,
                                      DayKind::kWeekday);
  config.cluster.fault = FaultConfig::ChaosDay();
  ExpectBackendIdentity(config, "chaos day");
}

TEST_F(PlanModeTest, DatacenterDayShardsAgree) {
  dc::DatacenterConfig config;
  config.total_racks = 4;
  config.racks_per_pod = 2;
  config.rack.home_hosts = 4;
  config.rack.consolidation_hosts = 2;
  config.rack.vms_per_home = 5;
  config.rack.fault.enabled = true;
  config.rack.fault.host_crash_per_hour = 0.02;
  config.coordinator.rack_power_cap_watts = 3200.0;
  config.coordinator.cap_events_per_rack_day = 0.25;

  auto run_dc = [&config](const char* plan_mode, int jobs) {
    ScopedPlanMode scoped(plan_mode);
    StatusOr<dc::DatacenterTopology> topology = dc::DatacenterTopology::Build(config);
    EXPECT_TRUE(topology.ok()) << topology.status().message();
    return dc::ShardRunner(jobs).Run(topology.value());
  };
  auto ledger_digest = [](const dc::DatacenterRun& run) {
    const dc::GlobalCoordinator coordinator(run.config.coordinator);
    return dc::DatacenterLedger::Build(run, coordinator.Coordinate(run)).Digest();
  };

  dc::DatacenterRun reference = run_dc("full", 1);
  const uint64_t reference_ledger = ledger_digest(reference);
  for (const char* plan_mode : {"full", "incremental"}) {
    for (int jobs : {1, 4}) {
      dc::DatacenterRun run = run_dc(plan_mode, jobs);
      ASSERT_EQ(run.racks.size(), reference.racks.size());
      for (size_t i = 0; i < run.racks.size(); ++i) {
        EXPECT_EQ(testing::DigestMetrics(run.racks[i].metrics),
                  testing::DigestMetrics(reference.racks[i].metrics))
            << "rack " << reference.racks[i].rack << " diverged under plan="
            << plan_mode << " jobs=" << jobs;
      }
      EXPECT_EQ(ledger_digest(run), reference_ledger)
          << "merged ledger diverged under plan=" << plan_mode << " jobs=" << jobs;
    }
  }
}

TEST_F(PlanModeTest, PredictiveStrategyBackendIdentity) {
  // The predictive strategy wraps the greedy planner and adds forecast
  // passes that draw from the planning streams only after the base pass
  // finishes — so it must inherit the full/incremental/verify identity,
  // jobs-invariance included.
  SimulationConfig config = PaperRack(ConsolidationPolicy::kFullToPartial,
                                      DayKind::kWeekday);
  config.cluster.strategy_name = "predictive";
  ExpectBackendIdentity(config, "predictive weekday");
  const uint64_t reference = DigestUnder(config, "full", 1);
  EXPECT_EQ(DigestUnder(config, "verify", 1), reference)
      << "predictive: verify mode diverged from the full reference";
}

TEST_F(PlanModeTest, VerifyModeSurvivesAChaosDay) {
  // verify runs both backends per pass, rewinding the planning streams in
  // between, and exits(2) on the first divergence — so merely completing a
  // fault-heavy day is a per-pass (not just end-of-day) identity check.
  SimulationConfig config = PaperRack(ConsolidationPolicy::kFullToPartial,
                                      DayKind::kWeekday);
  config.cluster.fault = FaultConfig::ChaosDay();
  const uint64_t reference = DigestUnder(config, "full", 1);
  EXPECT_EQ(DigestUnder(config, "verify", 1), reference);
}

}  // namespace
}  // namespace oasis
