#include "src/trace/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/trace/trace_generator.h"

namespace oasis {
namespace {

TEST(TraceIoTest, RoundTripPreservesBits) {
  TraceGenerator gen(TraceGeneratorConfig{}, 5);
  TraceFile original;
  original.kind = DayKind::kWeekend;
  original.users = gen.GenerateTraceSet(25, DayKind::kWeekend);

  std::stringstream ss;
  ASSERT_TRUE(WriteTrace(ss, original).ok());
  StatusOr<TraceFile> loaded = ReadTrace(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->kind, DayKind::kWeekend);
  ASSERT_EQ(loaded->users.size(), original.users.size());
  for (size_t u = 0; u < original.users.size(); ++u) {
    EXPECT_EQ(loaded->users[u].bits(), original.users[u].bits()) << "user " << u;
  }
}

TEST(TraceIoTest, EmptyTraceRoundTrips) {
  TraceFile empty;
  std::stringstream ss;
  ASSERT_TRUE(WriteTrace(ss, empty).ok());
  StatusOr<TraceFile> loaded = ReadTrace(ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->users.empty());
  EXPECT_EQ(loaded->kind, DayKind::kWeekday);
}

TEST(TraceIoTest, RejectsBadMagic) {
  std::stringstream ss("NOTATRACE v1 0 288 weekday\n");
  EXPECT_EQ(ReadTrace(ss).status().code(), StatusCode::kInvalidArgument);
}

TEST(TraceIoTest, RejectsWrongIntervalCount) {
  std::stringstream ss("OASISTRACE v1 0 144 weekday\n");
  EXPECT_EQ(ReadTrace(ss).status().code(), StatusCode::kInvalidArgument);
}

TEST(TraceIoTest, RejectsUnknownDayKind) {
  std::stringstream ss("OASISTRACE v1 0 288 holiday\n");
  EXPECT_EQ(ReadTrace(ss).status().code(), StatusCode::kInvalidArgument);
}

TEST(TraceIoTest, RejectsTruncatedBody) {
  std::stringstream ss("OASISTRACE v1 2 288 weekday\n" + std::string(288, '0') + "\n");
  EXPECT_EQ(ReadTrace(ss).status().code(), StatusCode::kInvalidArgument);
}

TEST(TraceIoTest, RejectsBadCharacters) {
  std::string line(288, '0');
  line[7] = 'x';
  std::stringstream ss("OASISTRACE v1 1 288 weekday\n" + line + "\n");
  EXPECT_EQ(ReadTrace(ss).status().code(), StatusCode::kInvalidArgument);
}

TEST(TraceIoTest, RejectsShortLine) {
  std::stringstream ss("OASISTRACE v1 1 288 weekday\n0101\n");
  EXPECT_EQ(ReadTrace(ss).status().code(), StatusCode::kInvalidArgument);
}

TEST(TraceIoTest, PathRoundTrip) {
  TraceGenerator gen(TraceGeneratorConfig{}, 6);
  TraceFile original;
  original.users = gen.GenerateTraceSet(3, DayKind::kWeekday);
  std::string path = ::testing::TempDir() + "/oasis_trace_test.txt";
  ASSERT_TRUE(WriteTraceToPath(path, original).ok());
  StatusOr<TraceFile> loaded = ReadTraceFromPath(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->users.size(), 3u);
}

TEST(TraceIoTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadTraceFromPath("/nonexistent/path/trace.txt").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace oasis
