// Unit tests at the strategy boundary: the policy layer introduced by the
// control-plane split (view / strategy / actuator, see DESIGN.md).
//
//   - ClusterManager::BaselineEnergy closed form and trace-independence.
//   - The §3.1 power-delta gate, driven directly through
//     OasisGreedyStrategy::BuildVacatePlan against a live manager's view —
//     no full-day run needed to see the gate open or close.
//   - Digest identity: an explicit strategy_name = "oasis-greedy" is
//     byte-identical to the default-constructed config.
//   - Registry sanity: every registered name instantiates, unknown names
//     fail loudly in MakeStrategy and ClusterConfig::Validate.

#include "src/cluster/strategy.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/check/check.h"
#include "src/cluster/manager.h"
#include "src/cluster/strategy_oasis.h"
#include "src/trace/trace_generator.h"
#include "tests/metric_digest.h"

namespace oasis {
namespace {

using check::CheckMode;
using check::InvariantChecker;

ClusterConfig SmallCluster(ConsolidationPolicy policy) {
  ClusterConfig config;
  config.num_home_hosts = 4;
  config.num_consolidation_hosts = 2;
  config.vms_per_home = 5;
  config.policy = policy;
  config.seed = 7;
  return config;
}

TraceSet UniformTrace(int users, bool active) {
  TraceSet set;
  for (int u = 0; u < users; ++u) {
    UserDay day;
    if (active) {
      for (int i = 0; i < kIntervalsPerDay; ++i) {
        day.SetActive(i, true);
      }
    }
    set.push_back(day);
  }
  return set;
}

// --- BaselineEnergy ---------------------------------------------------------

TEST(BaselineEnergyTest, ClosedFormAndTraceIndependence) {
  ClusterConfig config = SmallCluster(ConsolidationPolicy::kFullToPartial);
  TraceSet idle = UniformTrace(config.TotalVms(), false);
  TraceSet active = UniformTrace(config.TotalVms(), true);

  // The baseline is the no-consolidation loaded draw: every home powered all
  // day hosting its full complement of VMs, regardless of their activity.
  Joules from_idle = ClusterManager::BaselineEnergy(config, idle);
  Joules from_active = ClusterManager::BaselineEnergy(config, active);
  EXPECT_DOUBLE_EQ(from_idle, from_active);

  double per_host = 102.2 + 5 * (137.9 - 102.2) / 20.0;
  EXPECT_NEAR(ToKWh(from_idle), 4 * per_host * 24.0 / 1000.0, 0.01);
}

TEST(BaselineEnergyTest, AllActiveRunDrawsExactlyTheBaseline) {
  // Under OnlyPartial an active VM can never leave its home, so with every
  // VM active all day nothing consolidates and the home hosts reproduce the
  // baseline draw to the joule. (FulltoPartial would NOT hold this: active
  // VMs full-migrate — the hybrid in "hybrid server consolidation".)
  ClusterConfig config = SmallCluster(ConsolidationPolicy::kOnlyPartial);
  ClusterManager manager(config, UniformTrace(config.TotalVms(), true));
  ClusterMetrics m = manager.Run();
  EXPECT_NEAR(m.home_host_energy, m.baseline_energy, 1e-6 * m.baseline_energy);
  EXPECT_EQ(m.host_sleeps, 0u);
}

// --- the §3.1 power-delta gate, at the strategy boundary --------------------

TEST(VacatePlanGateTest, AllIdleClusterBuildsAPowerSavingPlan) {
  ClusterConfig config = SmallCluster(ConsolidationPolicy::kFullToPartial);
  ClusterManager manager(config, UniformTrace(config.TotalVms(), false));
  ClusterView view = manager.View();

  OasisGreedyStrategy strategy;
  // VmSlot::idle_since predates the epoch by eras, so a VM idle from trace
  // interval 0 is already trusted-idle at t=0.
  SimTime now = SimTime::Zero();
  for (HostId h = 0; h < static_cast<HostId>(view.num_hosts()); ++h) {
    const ClusterHost& host = view.host(h);
    if (host.IsHomeHost()) {
      EXPECT_TRUE(strategy.HostEligibleForVacate(view, host, now)) << "home " << h;
    }
  }

  auto planned_ws = strategy.PresampleWorkingSets(view, now);
  EXPECT_EQ(planned_ws.size(), static_cast<size_t>(config.TotalVms()));
  VacatePlan plan = strategy.BuildVacatePlan(view, now, /*allow_waking=*/true, planned_ws);

  ASSERT_FALSE(plan.hosts_to_vacate.empty());
  EXPECT_GT(plan.net_power_delta_watts, 0.0);
  ASSERT_EQ(plan.placements.size(), plan.hosts_to_vacate.size());
  for (const auto& group : plan.placements) {
    EXPECT_EQ(group.size(), static_cast<size_t>(config.vms_per_home));
    for (const VacatePlacement& p : group) {
      EXPECT_TRUE(p.as_partial);  // trusted-idle VMs consolidate partially
      EXPECT_GT(p.bytes, 0u);
      EXPECT_TRUE(view.host(p.dest).IsConsolidationHost());
    }
  }
}

TEST(VacatePlanGateTest, TrustedIdleGatesEligibility) {
  ClusterConfig config = SmallCluster(ConsolidationPolicy::kFullToPartial);
  ClusterManager manager(config, UniformTrace(config.TotalVms(), true));
  ClusterView view = manager.View();

  // An active VM is never trusted-idle, and a freshly-idled one stays
  // untrusted until the smoothing window has elapsed (§3.1).
  VmSlot active_vm = view.vm(0);
  active_vm.activity = VmActivity::kActive;
  EXPECT_FALSE(view.TrustedIdle(active_vm, SimTime::Hours(12)));

  VmSlot fresh = view.vm(0);
  fresh.activity = VmActivity::kIdle;
  fresh.idle_since = SimTime::Hours(12);
  EXPECT_FALSE(view.TrustedIdle(fresh, SimTime::Hours(12)));
  EXPECT_TRUE(view.TrustedIdle(fresh, SimTime::Hours(12) +
                                          config.planning_interval *
                                              config.idle_smoothing_intervals));
}

TEST(VacatePlanGateTest, RuinousMemoryServerPowerClosesTheGate) {
  // Inflate the memory servers until parking a home costs more than it
  // saves: the plan still packs every VM, but its net delta goes negative.
  ClusterConfig config = SmallCluster(ConsolidationPolicy::kFullToPartial);
  config.memory_server_power = MemoryServerProfile::WithPower(10'000.0);
  ClusterManager manager(config, UniformTrace(config.TotalVms(), false));
  ClusterView view = manager.View();

  OasisGreedyStrategy strategy;
  auto planned_ws = strategy.PresampleWorkingSets(view, SimTime::Zero());
  VacatePlan plan =
      strategy.BuildVacatePlan(view, SimTime::Zero(), /*allow_waking=*/true, planned_ws);
  EXPECT_FALSE(plan.hosts_to_vacate.empty());
  EXPECT_LT(plan.net_power_delta_watts, 0.0);
}

TEST(VacatePlanGateTest, ClosedGateMeansNoConsolidationAllDay) {
  ClusterConfig config = SmallCluster(ConsolidationPolicy::kFullToPartial);
  config.memory_server_power = MemoryServerProfile::WithPower(10'000.0);
  ClusterManager gated(config, UniformTrace(config.TotalVms(), false));
  ClusterMetrics m = gated.Run();
  EXPECT_EQ(m.partial_migrations, 0u);
  EXPECT_EQ(m.host_sleeps, 0u);
  EXPECT_EQ(m.timeline.back().powered_home_hosts, config.num_home_hosts);

  // Sanity that the gate (not something else) was the blocker: the same
  // cluster with stock memory servers consolidates and sleeps.
  ClusterConfig stock = SmallCluster(ConsolidationPolicy::kFullToPartial);
  ClusterManager open(stock, UniformTrace(stock.TotalVms(), false));
  ClusterMetrics open_m = open.Run();
  EXPECT_GT(open_m.partial_migrations, 0u);
  EXPECT_GT(open_m.host_sleeps, 0u);
}

// --- strategy selection -----------------------------------------------------

class StrategySelectionTest : public ::testing::Test {
 protected:
  void SetUp() override { InvariantChecker::Install(&checker_); }
  void TearDown() override {
    InvariantChecker::Install(nullptr);
    EXPECT_EQ(checker_.violation_count(), 0u)
        << "invariant violations recorded during a strategy run";
  }

  static SimulationConfig BaseConfig() {
    SimulationConfig config;
    config.cluster.num_home_hosts = 6;
    config.cluster.num_consolidation_hosts = 2;
    config.cluster.vms_per_home = 8;
    config.cluster.policy = ConsolidationPolicy::kFullToPartial;
    config.seed = 2016;
    return config;
  }

  InvariantChecker checker_{CheckMode::kWarn};
};

TEST_F(StrategySelectionTest, ExplicitDefaultNameIsByteIdenticalToDefault) {
  SimulationConfig implicit = BaseConfig();
  SimulationConfig explicit_name = BaseConfig();
  explicit_name.cluster.strategy_name = kDefaultStrategyName;
  EXPECT_EQ(testing::DigestResult(ClusterSimulation(implicit).Run()),
            testing::DigestResult(ClusterSimulation(explicit_name).Run()));
}

TEST_F(StrategySelectionTest, RegisteredStrategiesAreDistinctAndClean) {
  // Every registered strategy completes a full day with zero invariant
  // violations (the fixture asserts that at teardown) and no two of them
  // are byte-identical — the ablation in bench/ablation_policy.cpp is
  // comparing genuinely different policies.
  std::set<uint64_t> digests;
  for (const std::string& name : RegisteredStrategyNames()) {
    SimulationConfig config = BaseConfig();
    config.cluster.strategy_name = name;
    SimulationResult result = ClusterSimulation(config).Run();
    EXPECT_GE(result.metrics.baseline_energy, result.metrics.home_host_energy)
        << name << " burned more home-host energy than the no-consolidation baseline";
    digests.insert(testing::DigestResult(result));
  }
  EXPECT_EQ(digests.size(), RegisteredStrategyNames().size())
      << "two registered strategies produced byte-identical runs";
}

// --- registry ---------------------------------------------------------------

TEST(StrategyRegistryTest, EveryNameInstantiatesAndRoundTrips) {
  const std::vector<std::string>& names = RegisteredStrategyNames();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names.front(), kDefaultStrategyName);
  for (const std::string& name : names) {
    EXPECT_TRUE(IsRegisteredStrategyName(name));
    std::unique_ptr<ConsolidationStrategy> strategy = MakeStrategy(name);
    ASSERT_NE(strategy, nullptr) << name;
    EXPECT_EQ(strategy->name(), name);
    EXPECT_NE(RegisteredStrategyNamesJoined().find(name), std::string::npos);
  }
  EXPECT_FALSE(IsRegisteredStrategyName("round-robin"));
  EXPECT_EQ(MakeStrategy("round-robin"), nullptr);
}

TEST(StrategyRegistryTest, ValidateRejectsUnknownStrategyNameListingRegistered) {
  ClusterConfig config = SmallCluster(ConsolidationPolicy::kFullToPartial);
  config.strategy_name = "definitely-not-a-strategy";
  Status status = config.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("definitely-not-a-strategy"), std::string::npos)
      << status.message();
  for (const std::string& name : RegisteredStrategyNames()) {
    EXPECT_NE(status.message().find(name), std::string::npos) << status.message();
  }
}

}  // namespace
}  // namespace oasis
