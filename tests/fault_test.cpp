// Unit tests for the deterministic fault-injection subsystem: plan
// determinism, per-class stream independence, config validation, and the
// zero-overhead guarantee of the disabled (default) injector.

#include <gtest/gtest.h>

#include "src/fault/fault.h"

namespace oasis {
namespace {

FaultConfig RatesOnly() {
  FaultConfig config;
  config.enabled = true;
  config.host_crash_per_hour = 0.5;
  config.memory_server_failure_per_hour = 1.0;
  config.migration_abort_per_hour = 2.0;
  return config;
}

TEST(FaultPlanTest, SameSeedSamePlan) {
  FaultConfig config = RatesOnly();
  FaultPlan a = FaultPlan::Build(config, 42);
  FaultPlan b = FaultPlan::Build(config, 42);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i], b.events[i]) << "event " << i;
  }
  EXPECT_GT(a.events.size(), 0u);
}

TEST(FaultPlanTest, DifferentSeedDifferentPlan) {
  FaultConfig config = RatesOnly();
  FaultPlan a = FaultPlan::Build(config, 42);
  FaultPlan b = FaultPlan::Build(config, 43);
  EXPECT_NE(a.events, b.events);
}

TEST(FaultPlanTest, ClassStreamsAreIndependent) {
  // Adding a rate for one class must not shift another class's firing
  // times — each class samples from its own salted stream.
  FaultConfig crash_only;
  crash_only.enabled = true;
  crash_only.host_crash_per_hour = 0.5;
  FaultConfig both = crash_only;
  both.memory_server_failure_per_hour = 2.0;

  auto crashes_of = [](const FaultPlan& plan) {
    std::vector<ScheduledFault> out;
    for (const ScheduledFault& e : plan.events) {
      if (e.fault == FaultClass::kHostCrash) {
        out.push_back(e);
      }
    }
    return out;
  };
  EXPECT_EQ(crashes_of(FaultPlan::Build(crash_only, 7)),
            crashes_of(FaultPlan::Build(both, 7)));
}

TEST(FaultPlanTest, PlanIsTimeSortedAndBounded) {
  FaultConfig config = RatesOnly();
  config.horizon = SimTime::Hours(6.0);
  FaultPlan plan = FaultPlan::Build(config, 1);
  for (size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_LE(plan.events[i].at, config.horizon);
    if (i > 0) {
      EXPECT_LE(plan.events[i - 1].at, plan.events[i].at);
    }
  }
}

TEST(FaultPlanTest, ExplicitScheduleMergesIntoSampledPlan) {
  FaultConfig config = RatesOnly();
  ScheduledFault explicit_crash{SimTime::Hours(3.0), FaultClass::kHostCrash, 31};
  config.scheduled.push_back(explicit_crash);
  FaultPlan plan = FaultPlan::Build(config, 42);
  bool found = false;
  for (const ScheduledFault& e : plan.events) {
    found = found || e == explicit_crash;
  }
  EXPECT_TRUE(found);
}

TEST(FaultConfigTest, ValidateRejectsBadValues) {
  FaultConfig config;
  config.enabled = true;
  config.wol_loss_probability = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config.wol_loss_probability = 0.1;
  config.host_crash_per_hour = -1.0;
  EXPECT_FALSE(config.Validate().ok());
  config.host_crash_per_hour = 0.0;
  config.max_rpc_attempts = 0;
  EXPECT_FALSE(config.Validate().ok());
  config.max_rpc_attempts = 4;
  config.rpc_backoff_cap = SimTime::Millis(1);  // below the initial backoff
  EXPECT_FALSE(config.Validate().ok());
}

TEST(FaultConfigTest, ChaosDayValidates) {
  FaultConfig config = FaultConfig::ChaosDay();
  EXPECT_TRUE(config.enabled);
  EXPECT_TRUE(config.Validate().ok());
}

TEST(FaultInjectorTest, InvalidConfigDisablesInjection) {
  FaultConfig config;
  config.enabled = true;
  config.rpc_drop_probability = 2.0;
  FaultInjector injector(config, 42);
  EXPECT_FALSE(injector.enabled());
  EXPECT_TRUE(injector.plan().events.empty());
}

TEST(FaultInjectorTest, DisabledInjectorIsInert) {
  // The default-constructed injector must never fire, never build a plan,
  // and never consume a random draw — disabled runs stay byte-identical to
  // builds without the subsystem.
  FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  EXPECT_TRUE(injector.plan().events.empty());
  for (int i = 0; i < 1000; ++i) {
    SimTime now = SimTime::Seconds(i);
    EXPECT_EQ(injector.SampleWolLosses(now, 0), 0);
    EXPECT_FALSE(injector.SampleResumeHang(now, 0));
    EXPECT_FALSE(injector.SampleRpcDrop(now));
    EXPECT_FALSE(injector.SampleRpcDelay(now));
    EXPECT_FALSE(injector.SampleServeFailure(now, 0));
  }
  EXPECT_EQ(injector.TotalInjected(), 0u);
  EXPECT_EQ(injector.TotalRecovered(), 0u);
}

TEST(FaultInjectorTest, ZeroProbabilityConsumesNoDraws) {
  // Enabling a class must not perturb another class's stream: an injector
  // with only WoL loss enabled samples the same WoL sequence as one that
  // also enables RPC drops (they draw from distinct streams).
  FaultConfig wol_only;
  wol_only.enabled = true;
  wol_only.wol_loss_probability = 0.5;
  FaultConfig wol_and_rpc = wol_only;
  wol_and_rpc.rpc_drop_probability = 0.5;

  FaultInjector a(wol_only, 9);
  FaultInjector b(wol_and_rpc, 9);
  for (int i = 0; i < 256; ++i) {
    SimTime now = SimTime::Seconds(i);
    // Interleave RPC draws in b only; the WoL sequences must still agree.
    b.SampleRpcDrop(now);
    EXPECT_EQ(a.SampleWolLosses(now, 1), b.SampleWolLosses(now, 1)) << "draw " << i;
  }
}

TEST(FaultInjectorTest, SampleSequencesAreSeedDeterministic) {
  FaultConfig config;
  config.enabled = true;
  config.rpc_drop_probability = 0.3;
  FaultInjector a(config, 1234);
  FaultInjector b(config, 1234);
  for (int i = 0; i < 512; ++i) {
    SimTime now = SimTime::Millis(i);
    EXPECT_EQ(a.SampleRpcDrop(now), b.SampleRpcDrop(now)) << "draw " << i;
  }
  EXPECT_EQ(a.injected(FaultClass::kRpcDrop), b.injected(FaultClass::kRpcDrop));
  EXPECT_GT(a.injected(FaultClass::kRpcDrop), 0u);
}

TEST(FaultInjectorTest, WolLossRunsAreCappedAtMaxRetries) {
  FaultConfig config;
  config.enabled = true;
  config.wol_loss_probability = 1.0;  // every packet lost
  config.max_wol_retries = 3;
  FaultInjector injector(config, 5);
  EXPECT_EQ(injector.SampleWolLosses(SimTime::Zero(), 0), 3);
  EXPECT_EQ(injector.injected(FaultClass::kWolLoss), 1u);
}

TEST(FaultInjectorTest, RecordingTracksPerClassCounts) {
  FaultConfig config;
  config.enabled = true;
  config.host_crash_per_hour = 0.1;
  FaultInjector injector(config, 2);
  injector.RecordInjected(FaultClass::kHostCrash, SimTime::Hours(1.0));
  injector.RecordRecovered(FaultClass::kHostCrash, SimTime::Hours(1.0), SimTime::Hours(1.1));
  injector.RecordSkipped(FaultClass::kMigrationAbort, SimTime::Hours(2.0));
  EXPECT_EQ(injector.injected(FaultClass::kHostCrash), 1u);
  EXPECT_EQ(injector.recovered(FaultClass::kHostCrash), 1u);
  EXPECT_EQ(injector.skipped(FaultClass::kMigrationAbort), 1u);
  EXPECT_EQ(injector.TotalInjected(), 1u);
  EXPECT_EQ(injector.TotalRecovered(), 1u);
}

}  // namespace
}  // namespace oasis
