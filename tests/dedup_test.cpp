#include "src/mem/dedup.h"

#include <gtest/gtest.h>

namespace oasis {
namespace {

PageBytes FilledPage(uint8_t value) { return PageBytes(kPageSize, value); }

TEST(HashPageTest, EqualContentEqualHash) {
  EXPECT_EQ(HashPage(FilledPage(7)), HashPage(FilledPage(7)));
  EXPECT_NE(HashPage(FilledPage(7)), HashPage(FilledPage(8)));
}

TEST(HashPageTest, SingleBitFlipChangesHash) {
  PageBytes a = FilledPage(0);
  PageBytes b = a;
  b[2048] ^= 1;
  EXPECT_NE(HashPage(a), HashPage(b));
}

TEST(DedupStoreTest, StartsEmpty) {
  DedupPageStore store;
  EXPECT_EQ(store.unique_pages(), 0u);
  EXPECT_EQ(store.total_references(), 0u);
  EXPECT_DOUBLE_EQ(store.DedupFactor(), 1.0);
}

TEST(DedupStoreTest, DuplicatesShareStorage) {
  DedupPageStore store;
  for (int i = 0; i < 10; ++i) {
    store.Insert(FilledPage(0));
  }
  EXPECT_EQ(store.unique_pages(), 1u);
  EXPECT_EQ(store.total_references(), 10u);
  EXPECT_DOUBLE_EQ(store.DedupFactor(), 10.0);
  EXPECT_EQ(store.StoredBytes(), kPageSize);
  EXPECT_EQ(store.LogicalBytes(), 10 * kPageSize);
}

TEST(DedupStoreTest, RemoveFreesAtZeroRefs) {
  DedupPageStore store;
  uint64_t h = store.Insert(FilledPage(1));
  store.Insert(FilledPage(1));
  EXPECT_TRUE(store.Remove(h));
  EXPECT_TRUE(store.Contains(h));  // one ref left
  EXPECT_TRUE(store.Remove(h));
  EXPECT_FALSE(store.Contains(h));
  EXPECT_FALSE(store.Remove(h));  // already gone
}

TEST(DedupStoreTest, ZeroPagesDedupAcrossVms) {
  // Zero pages are identical across every VM — the biggest dedup win a
  // memory server sees.
  DedupPageStore store;
  int zero_pages = 0;
  for (uint64_t vm_seed = 1; vm_seed <= 5; ++vm_seed) {
    PageContentGenerator gen(vm_seed);
    for (uint64_t page = 0; page < 200; ++page) {
      store.Insert(gen.Generate(page));
      if (gen.ClassOf(page) == PageClass::kZero) {
        ++zero_pages;
      }
    }
  }
  // All zero pages collapse to a single stored page.
  EXPECT_EQ(store.total_references(), 1000u);
  EXPECT_EQ(store.unique_pages(), 1000u - zero_pages + 1);
  EXPECT_GT(store.DedupFactor(), 1.1);
}

TEST(DedupStoreTest, DistinctContentDoesNotDedup) {
  DedupPageStore store;
  PageContentGenerator gen(3, PageClassMix{0.0, 0.0, 0.0, 1.0});  // all random
  for (uint64_t page = 0; page < 100; ++page) {
    store.Insert(gen.Generate(page));
  }
  EXPECT_EQ(store.unique_pages(), 100u);
  EXPECT_DOUBLE_EQ(store.DedupFactor(), 1.0);
}

}  // namespace
}  // namespace oasis
