#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace oasis {
namespace {

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(OnlineStatsTest, BasicMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStatsTest, SampleVarianceUsesBesselCorrection) {
  OnlineStats s;
  s.Add(1.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);
}

TEST(OnlineStatsTest, MergeEqualsCombinedStream) {
  OnlineStats a;
  OnlineStats b;
  OnlineStats all;
  for (int i = 0; i < 100; ++i) {
    double x = std::sin(i) * 10.0;
    (i % 2 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStatsTest, MergeWithEmpty) {
  OnlineStats a;
  a.Add(5.0);
  OnlineStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(EmpiricalCdfTest, QuantilesOnKnownData) {
  EmpiricalCdf cdf;
  for (int i = 1; i <= 100; ++i) {
    cdf.Add(i);
  }
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(cdf.Min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Max(), 100.0);
  EXPECT_DOUBLE_EQ(cdf.Mean(), 50.5);
}

TEST(EmpiricalCdfTest, FractionAtOrBelow) {
  EmpiricalCdf cdf;
  for (int i = 1; i <= 10; ++i) {
    cdf.Add(i);
  }
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(5.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(10.0), 1.0);
}

TEST(EmpiricalCdfTest, AddNWeightsSamples) {
  EmpiricalCdf cdf;
  cdf.AddN(1.0, 99);
  cdf.Add(100.0);
  EXPECT_EQ(cdf.count(), 100u);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 100.0);
}

TEST(EmpiricalCdfTest, CurveIsMonotone) {
  EmpiricalCdf cdf;
  for (int i = 0; i < 1000; ++i) {
    cdf.Add((i * 37) % 101);
  }
  auto curve = cdf.Curve(20);
  ASSERT_EQ(curve.size(), 20u);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].first, curve[i].first);
    EXPECT_LT(curve[i - 1].second, curve[i].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(EmpiricalCdfTest, InterleavedAddAndQuery) {
  EmpiricalCdf cdf;
  cdf.Add(5.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 5.0);
  cdf.Add(1.0);
  cdf.Add(9.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(cdf.Min(), 1.0);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(9.5);
  h.Add(-100.0);  // clamps into bucket 0
  h.Add(100.0);   // clamps into bucket 9
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.BucketLow(3), 3.0);
  EXPECT_DOUBLE_EQ(h.BucketHigh(3), 4.0);
}

}  // namespace
}  // namespace oasis
