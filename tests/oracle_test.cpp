// Metamorphic pins on the offline oracle (src/cluster/oracle.h) and the
// optimality-gap harness built on it:
//
//   * determinism — the solve is a pure function of (config, trace, seed):
//     same inputs, same Digest(), across reruns and across OASIS_JOBS;
//   * bound ordering — relaxed interval bound <= best schedule <= baseline,
//     by construction, on every input;
//   * gap soundness — on the quickstart day every online strategy's gap
//     against the oracle is non-negative (the oracle's relaxations only ever
//     err in its favor, so no online policy can appear to beat hindsight);
//   * strategy ordering — the predictive planner's weekday savings strictly
//     beat the local-threshold ablation's, and clear the paper-scale floor.

#include "src/cluster/oracle.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/check/check.h"
#include "src/cluster/strategy.h"
#include "src/core/oasis.h"
#include "src/exp/exp.h"
#include "tests/metric_digest.h"

namespace oasis {
namespace {

using check::CheckMode;
using check::InvariantChecker;

class OracleTest : public ::testing::Test {
 protected:
  void SetUp() override { InvariantChecker::Install(&checker_); }
  void TearDown() override {
    InvariantChecker::Install(nullptr);
    EXPECT_EQ(checker_.violation_count(), 0u)
        << "invariant violations recorded during an oracle-harness run";
  }

  InvariantChecker checker_{CheckMode::kWarn};
};

TEST_F(OracleTest, SolveIsSeedDeterministicAndBoundsAreOrdered) {
  // The quickstart day: the default paper rack, one weekday.
  SimulationConfig config;
  SimulationResult run = ClusterSimulation(config).Run();

  OfflineOracle solver(config.cluster);
  OracleResult a = solver.Solve(run.trace, config.seed);
  OracleResult b = solver.Solve(run.trace, config.seed);
  EXPECT_EQ(a.Digest(), b.Digest()) << "same seed, different oracle solve";
  EXPECT_DOUBLE_EQ(a.schedule_energy, b.schedule_energy);
  EXPECT_DOUBLE_EQ(a.relaxed_lower_bound, b.relaxed_lower_bound);

  EXPECT_GT(a.relaxed_lower_bound, 0.0);
  EXPECT_LE(a.relaxed_lower_bound, a.schedule_energy);
  EXPECT_LT(a.schedule_energy, a.baseline_energy);
  EXPECT_GT(a.ScheduleSavings(), 0.0);

  // A different seed redraws the working sets and the annealer's walk; the
  // energies move, the ordering must not.
  OracleResult c = solver.Solve(run.trace, config.seed + 1);
  EXPECT_LE(c.relaxed_lower_bound, c.schedule_energy);
  EXPECT_LT(c.schedule_energy, c.baseline_energy);
}

TEST_F(OracleTest, SolveIsJobsInvariant) {
  // The traces the runner hands back are jobs-invariant, and the oracle
  // touches no global stream — so the per-repetition oracle digests must be
  // identical whether the repetitions ran serially or on a worker pool.
  SimulationConfig config;
  auto oracle_digests_at = [&config](int jobs) {
    exp::ExperimentPlan plan;
    exp::RepetitionSpan span = plan.AddRepetitions(config, 2);
    std::vector<SimulationResult> results = exp::RunParallel(plan, jobs);
    OfflineOracle solver(config.cluster);
    std::vector<uint64_t> digests;
    for (size_t r = 0; r < static_cast<size_t>(span.count); ++r) {
      uint64_t seed = exp::ExperimentPlan::DeriveSeed(config.seed, static_cast<int>(r));
      digests.push_back(solver.Solve(results.at(span.first + r).trace, seed).Digest());
    }
    return digests;
  };
  EXPECT_EQ(oracle_digests_at(1), oracle_digests_at(4));
}

TEST_F(OracleTest, GapIsNonNegativeForEveryStrategyAndPredictiveLeadsLocal) {
  // One quickstart day per registered strategy, all driven by the same seed
  // and therefore the same trace; one oracle solve bounds them all.
  SimulationConfig base;
  OfflineOracle solver(base.cluster);

  bool solved = false;
  OracleResult oracle;
  std::map<std::string, double> savings;
  for (const std::string& name : RegisteredStrategyNames()) {
    SimulationConfig config = base;
    config.cluster.strategy_name = name;
    SimulationResult result = ClusterSimulation(config).Run();
    if (!solved) {
      oracle = solver.Solve(result.trace, base.seed);
      solved = true;
    }
    double gap = OptimalityGap(result.metrics.TotalEnergy(), oracle);
    EXPECT_GE(gap, 0.0) << name << " appears to beat the hindsight oracle "
                        << "(gap " << gap << ") — the bound is unsound";
    savings[name] = result.metrics.EnergySavings();
  }

  // The ablation's headline ordering on a weekday: forecast-driven beats
  // gate-free local parking, and clears the local rule's paper-scale floor.
  ASSERT_TRUE(savings.count("predictive"));
  ASSERT_TRUE(savings.count("local-threshold"));
  EXPECT_GT(savings["predictive"], savings["local-threshold"]);
  EXPECT_GT(savings["predictive"], 0.111);
}

TEST_F(OracleTest, GapStaysNonNegativeOnAHeterogeneousDay) {
  // The mixed-generation rack from bench/heterogeneous_fleet: the oracle's
  // per-class DayModel prices each home at its own curve and never sleeps
  // the legacy-no-s3 band, so its bound must stay a sound lower bound for
  // every online strategy on the same fleet — and the bound ordering must
  // survive the mix.
  SimulationConfig base;
  base.cluster.fleet.segments = {
      {"table1", 10}, {"legacy-no-s3", 10}, {"efficient-v2", 14}};
  ASSERT_TRUE(base.cluster.Validate().ok());
  OfflineOracle solver(base.cluster);

  bool solved = false;
  OracleResult oracle;
  for (const std::string& name : RegisteredStrategyNames()) {
    SimulationConfig config = base;
    config.cluster.strategy_name = name;
    SimulationResult result = ClusterSimulation(config).Run();
    if (!solved) {
      oracle = solver.Solve(result.trace, base.seed);
      solved = true;
      EXPECT_GT(oracle.relaxed_lower_bound, 0.0);
      EXPECT_LE(oracle.relaxed_lower_bound, oracle.schedule_energy);
      EXPECT_LT(oracle.schedule_energy, oracle.baseline_energy);
      EXPECT_GT(oracle.ScheduleSavings(), 0.0);
    }
    double gap = OptimalityGap(result.metrics.TotalEnergy(), oracle);
    EXPECT_GE(gap, 0.0)
        << name << " appears to beat the hindsight oracle on a mixed fleet "
        << "(gap " << gap << ") — the per-class bound is unsound";
  }
}

}  // namespace
}  // namespace oasis
