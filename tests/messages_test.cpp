#include "src/ctrl/messages.h"

#include <gtest/gtest.h>

#include "src/ctrl/rpc_bus.h"

namespace oasis {
namespace {

template <typename T>
T RoundTrip(const T& message) {
  std::string line = EncodeMessage(message);
  StatusOr<ControlMessage> decoded = DecodeMessage(line);
  EXPECT_TRUE(decoded.ok()) << line << ": " << decoded.status().ToString();
  const T* out = std::get_if<T>(&*decoded);
  EXPECT_NE(out, nullptr) << line;
  return *out;
}

TEST(MessagesTest, CreateVmRoundTrip) {
  CreateVmRequest request{"/configs/alice.cfg"};
  EXPECT_EQ(RoundTrip(request).config_path, request.config_path);
  CreateVmResponse response{"0042", 7};
  CreateVmResponse out = RoundTrip(response);
  EXPECT_EQ(out.vmid, "0042");
  EXPECT_EQ(out.host, 7u);
}

TEST(MessagesTest, MigrateRoundTripBothTypes) {
  for (MigrationType type : {MigrationType::kFull, MigrationType::kPartial}) {
    MigrateCommand command{"0007", type, 31};
    MigrateCommand out = RoundTrip(command);
    EXPECT_EQ(out.vmid, "0007");
    EXPECT_EQ(out.type, type);
    EXPECT_EQ(out.destination, 31u);
  }
}

TEST(MessagesTest, HostCommandsRoundTrip) {
  EXPECT_EQ(RoundTrip(SuspendHostCommand{5}).host, 5u);
  EXPECT_EQ(RoundTrip(WakeHostCommand{9}).host, 9u);
  EXPECT_NO_THROW(RoundTrip(StatsRequest{}));
}

TEST(MessagesTest, StatsReportRoundTripWithVms) {
  HostStatsReport report;
  report.host = 3;
  report.memory_utilization = 0.75;
  report.cpu_utilization = 0.33;
  report.io_utilization = 0.1;
  report.vms.push_back({"0001", 4 * kGiB, 0.5, 8.8});
  report.vms.push_back({"0002", 2 * kGiB, 0.1, 1.2});
  HostStatsReport out = RoundTrip(report);
  EXPECT_EQ(out.host, 3u);
  EXPECT_NEAR(out.memory_utilization, 0.75, 1e-6);
  ASSERT_EQ(out.vms.size(), 2u);
  EXPECT_EQ(out.vms[0].vmid, "0001");
  EXPECT_EQ(out.vms[0].memory_bytes, 4 * kGiB);
  EXPECT_NEAR(out.vms[1].dirty_mib_per_min, 1.2, 1e-6);
}

TEST(MessagesTest, AckRoundTrip) {
  AckResponse ack{true, "done"};
  AckResponse out = RoundTrip(ack);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.detail, "done");
}

TEST(MessagesTest, EscapesWireMetacharacters) {
  CreateVmRequest request{"weird|path=with%stuff\nand newline"};
  EXPECT_EQ(RoundTrip(request).config_path, request.config_path);
}

TEST(MessagesTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(DecodeMessage("").ok());
  EXPECT_FALSE(DecodeMessage("BOGUS_TYPE|x=1").ok());
  EXPECT_FALSE(DecodeMessage("MIGRATE|vmid=0001").ok());           // missing fields
  EXPECT_FALSE(DecodeMessage("MIGRATE|vmid=1|type=warp|dest=2").ok());
  EXPECT_FALSE(DecodeMessage("CREATE_VM|noequals").ok());
  EXPECT_FALSE(DecodeMessage("HOST_STATS|host=1|mem=0|cpu=0|io=0|vm=brokenstats").ok());
}

TEST(MessagesTest, TypeNames) {
  EXPECT_EQ(MessageTypeName(ControlMessage(MigrateCommand{})), "MIGRATE");
  EXPECT_EQ(MessageTypeName(ControlMessage(HostStatsReport{})), "HOST_STATS");
  EXPECT_EQ(MessageTypeName(ControlMessage(StatsRequest{})), "STATS_REQ");
  EXPECT_STREQ(MigrationTypeName(MigrationType::kFull), "full");
  EXPECT_STREQ(MigrationTypeName(MigrationType::kPartial), "partial");
}

TEST(MessagesTest, BusBytesTransferredMatchesEncodedWireLines) {
  RpcBus bus;
  ControlMessage reply = AckResponse{true, "done"};
  ASSERT_TRUE(bus.RegisterEndpoint("agent", [reply](const ControlMessage&) -> ControlMessage {
                   return reply;
                 }).ok());
  ControlMessage request = MigrateCommand{"0007", MigrationType::kPartial, 3};
  ASSERT_TRUE(bus.Call("manager", "agent", request).ok());
  ASSERT_TRUE(bus.Call("manager", "agent", request).ok());
  uint64_t per_call = EncodeMessage(request).size() + EncodeMessage(reply).size();
  EXPECT_EQ(bus.bytes_transferred(), 2 * per_call);
}

}  // namespace
}  // namespace oasis
