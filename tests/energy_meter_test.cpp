#include "src/power/energy_meter.h"

#include <gtest/gtest.h>

namespace oasis {
namespace {

TEST(EnergyMeterTest, ConstantDrawIntegrates) {
  EnergyMeter m(SimTime::Zero(), 100.0);
  m.Advance(SimTime::Hours(2));
  EXPECT_DOUBLE_EQ(ToWattHours(m.total_joules()), 200.0);
}

TEST(EnergyMeterTest, PiecewiseConstant) {
  EnergyMeter m(SimTime::Zero(), 100.0);
  m.SetDraw(SimTime::Hours(1), 50.0);   // 100 Wh so far
  m.SetDraw(SimTime::Hours(3), 0.0);    // +100 Wh
  m.Advance(SimTime::Hours(10));        // +0
  EXPECT_DOUBLE_EQ(ToWattHours(m.total_joules()), 200.0);
  EXPECT_DOUBLE_EQ(m.current_draw(), 0.0);
}

TEST(EnergyMeterTest, RepeatedAdvanceIsIdempotentAtSameTime) {
  EnergyMeter m(SimTime::Zero(), 10.0);
  m.Advance(SimTime::Hours(1));
  double j = m.total_joules();
  m.Advance(SimTime::Hours(1));
  EXPECT_DOUBLE_EQ(m.total_joules(), j);
}

TEST(EnergyMeterTest, TransitionSpikeAccounting) {
  // Suspend at 138.2 W for 3.1 s then sleep at 12.9 W — the Table 1 numbers.
  EnergyMeter m(SimTime::Zero(), 138.2);
  m.SetDraw(SimTime::Seconds(3.1), 12.9);
  m.Advance(SimTime::Seconds(3.1 + 3600.0));
  EXPECT_NEAR(m.total_joules(), 138.2 * 3.1 + 12.9 * 3600.0, 1e-6);
}

TEST(StateTimeLedgerTest, TracksTimePerState) {
  StateTimeLedger ledger(SimTime::Zero(), HostPowerState::kPowered);
  ledger.Transition(SimTime::Hours(2), HostPowerState::kSuspending);
  ledger.Transition(SimTime::Hours(2) + SimTime::Seconds(3.1), HostPowerState::kSleeping);
  ledger.Advance(SimTime::Hours(10));
  EXPECT_EQ(ledger.TimeIn(HostPowerState::kPowered), SimTime::Hours(2));
  EXPECT_EQ(ledger.TimeIn(HostPowerState::kSuspending), SimTime::Seconds(3.1));
  EXPECT_NEAR(ledger.TimeIn(HostPowerState::kSleeping).seconds(), 8 * 3600.0 - 3.1, 1e-6);
  EXPECT_EQ(ledger.state(), HostPowerState::kSleeping);
}

TEST(StateTimeLedgerTest, SleepFraction) {
  StateTimeLedger ledger(SimTime::Zero(), HostPowerState::kSleeping);
  ledger.Transition(SimTime::Hours(6), HostPowerState::kPowered);
  ledger.Advance(SimTime::Hours(24));
  EXPECT_DOUBLE_EQ(ledger.SleepFraction(SimTime::Hours(24)), 0.25);
  EXPECT_DOUBLE_EQ(ledger.SleepFraction(SimTime::Zero()), 0.0);
}

}  // namespace
}  // namespace oasis
