#include "src/power/energy_meter.h"

#include <gtest/gtest.h>

namespace oasis {
namespace {

TEST(EnergyMeterTest, ConstantDrawIntegrates) {
  EnergyMeter m(SimTime::Zero(), 100.0);
  m.Advance(SimTime::Hours(2));
  EXPECT_DOUBLE_EQ(ToWattHours(m.total_joules()), 200.0);
}

TEST(EnergyMeterTest, PiecewiseConstant) {
  EnergyMeter m(SimTime::Zero(), 100.0);
  m.SetDraw(SimTime::Hours(1), 50.0);   // 100 Wh so far
  m.SetDraw(SimTime::Hours(3), 0.0);    // +100 Wh
  m.Advance(SimTime::Hours(10));        // +0
  EXPECT_DOUBLE_EQ(ToWattHours(m.total_joules()), 200.0);
  EXPECT_DOUBLE_EQ(m.current_draw(), 0.0);
}

TEST(EnergyMeterTest, RepeatedAdvanceIsIdempotentAtSameTime) {
  EnergyMeter m(SimTime::Zero(), 10.0);
  m.Advance(SimTime::Hours(1));
  double j = m.total_joules();
  m.Advance(SimTime::Hours(1));
  EXPECT_DOUBLE_EQ(m.total_joules(), j);
}

TEST(EnergyMeterTest, TransitionSpikeAccounting) {
  // Suspend at 138.2 W for 3.1 s then sleep at 12.9 W — the Table 1 numbers.
  EnergyMeter m(SimTime::Zero(), 138.2);
  m.SetDraw(SimTime::Seconds(3.1), 12.9);
  m.Advance(SimTime::Seconds(3.1 + 3600.0));
  EXPECT_NEAR(m.total_joules(), 138.2 * 3.1 + 12.9 * 3600.0, 1e-6);
}

TEST(EnergyMeterTest, Table1TransitionEnergyTable) {
  // Each row pins one Table 1 measurement: holding the state's draw for its
  // measured dwell must integrate to exactly watts x seconds, and the two
  // transition rows additionally match the hand-computed joule figures
  // (3.1 s @ 138.2 W = 428.42 J suspending, 2.3 s @ 149.2 W = 343.16 J
  // resuming).
  const HostPowerProfile profile;
  struct Case {
    const char* name;
    Watts watts;
    SimTime dwell;
    double expected_joules;
  };
  const Case kCases[] = {
      {"suspend", profile.suspend_watts, profile.suspend_latency, 428.42},
      {"resume", profile.resume_watts, profile.resume_latency, 343.16},
      {"sleep-hour", profile.sleep_watts, SimTime::Hours(1), 12.9 * 3600.0},
      {"idle-hour", profile.idle_watts, SimTime::Hours(1), 102.2 * 3600.0},
      {"busy-hour", profile.watts_at_20_vms, SimTime::Hours(1), 137.9 * 3600.0},
  };
  for (const Case& c : kCases) {
    SCOPED_TRACE(c.name);
    EnergyMeter meter(SimTime::Zero(), c.watts);
    meter.Advance(c.dwell);
    // The meter is a pure piecewise integral: bit-identical to EnergyOver.
    EXPECT_EQ(meter.total_joules(), EnergyOver(c.watts, c.dwell));
    // The hand figure is quoted at the measured latency; SimTime stores
    // microseconds, so 2.3 s truncates to 2299999 us and the match is to
    // ~1e-4 J, not exact.
    EXPECT_NEAR(meter.total_joules(), c.expected_joules, 1e-2);
    // The side-effect-free view the invariant checker uses agrees exactly.
    EXPECT_EQ(meter.EnergyAt(c.dwell), meter.total_joules());
  }

  // A full suspend -> sleep -> resume cycle sums the rows exactly: the meter
  // must account transition spikes and the sleep plateau with no loss.
  EnergyMeter cycle(SimTime::Zero(), profile.suspend_watts);
  SimTime t = profile.suspend_latency;
  cycle.SetDraw(t, profile.sleep_watts);
  t += SimTime::Hours(1);
  cycle.SetDraw(t, profile.resume_watts);
  t += profile.resume_latency;
  cycle.Advance(t);
  EXPECT_NEAR(cycle.total_joules(), 428.42 + 12.9 * 3600.0 + 343.16, 1e-2);
}

TEST(StateTimeLedgerTest, SideEffectFreeViewsCoverTheOpenSegment) {
  StateTimeLedger ledger(SimTime::Zero(), HostPowerState::kPowered);
  ledger.Transition(SimTime::Hours(2), HostPowerState::kSuspending);
  // One hour into the still-open suspending segment (no Advance): the *At
  // views must include it, and the total must cover the run exactly.
  SimTime now = SimTime::Hours(3);
  EXPECT_EQ(ledger.TimeInAt(HostPowerState::kPowered, now), SimTime::Hours(2));
  EXPECT_EQ(ledger.TimeInAt(HostPowerState::kSuspending, now), SimTime::Hours(1));
  EXPECT_EQ(ledger.TotalTimeAt(now), now);
  // The views mutate nothing: the recorded tallies still end at the last
  // transition.
  EXPECT_EQ(ledger.TimeIn(HostPowerState::kSuspending), SimTime::Zero());
}

TEST(StateTimeLedgerTest, TracksTimePerState) {
  StateTimeLedger ledger(SimTime::Zero(), HostPowerState::kPowered);
  ledger.Transition(SimTime::Hours(2), HostPowerState::kSuspending);
  ledger.Transition(SimTime::Hours(2) + SimTime::Seconds(3.1), HostPowerState::kSleeping);
  ledger.Advance(SimTime::Hours(10));
  EXPECT_EQ(ledger.TimeIn(HostPowerState::kPowered), SimTime::Hours(2));
  EXPECT_EQ(ledger.TimeIn(HostPowerState::kSuspending), SimTime::Seconds(3.1));
  EXPECT_NEAR(ledger.TimeIn(HostPowerState::kSleeping).seconds(), 8 * 3600.0 - 3.1, 1e-6);
  EXPECT_EQ(ledger.state(), HostPowerState::kSleeping);
}

TEST(StateTimeLedgerTest, SleepFraction) {
  StateTimeLedger ledger(SimTime::Zero(), HostPowerState::kSleeping);
  ledger.Transition(SimTime::Hours(6), HostPowerState::kPowered);
  ledger.Advance(SimTime::Hours(24));
  EXPECT_DOUBLE_EQ(ledger.SleepFraction(SimTime::Hours(24)), 0.25);
  EXPECT_DOUBLE_EQ(ledger.SleepFraction(SimTime::Zero()), 0.0);
}

}  // namespace
}  // namespace oasis
