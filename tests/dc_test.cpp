// Unit tests for the datacenter hierarchy (src/dc): topology expansion and
// seed derivation, the OASIS_DC_RACKS override convention, the coordinator's
// drain sweep on hand-built timelines, and the merged ledger.
//
// Everything here runs on synthetic DatacenterRuns — no cluster simulation —
// so the coordinator's arithmetic (S3 credits, wire-energy charges, cap and
// fault exclusions) is pinned against closed-form expectations. The
// whole-simulation properties live in dc_metamorphic_test.cpp.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "src/dc/coordinator.h"
#include "src/dc/ledger.h"
#include "src/dc/runner.h"
#include "src/dc/topology.h"
#include "src/power/power_model.h"

namespace oasis {
namespace dc {
namespace {

constexpr double kIntervalS = 300.0;

IntervalSnapshot Snap(double t_s, int partial_vms, int powered_cons) {
  IntervalSnapshot s;
  s.time = SimTime::Seconds(t_s);
  s.partial_vms = partial_vms;
  s.powered_consolidation_hosts = powered_cons;
  return s;
}

// A rack whose parked population is `parked[t]` with `powered_cons`
// consolidation hosts powered every interval.
RackResult SyntheticRack(int rack, int pod, const std::vector<int>& parked,
                         int powered_cons) {
  RackResult result;
  result.rack = rack;
  result.pod = pod;
  for (size_t t = 0; t < parked.size(); ++t) {
    result.metrics.timeline.push_back(
        Snap(static_cast<double>(t) * kIntervalS, parked[t], powered_cons));
  }
  return result;
}

// Fixed thresholds so every expectation below is closed-form (auto
// calibration is exercised by the bench and the metamorphic suite).
CoordinatorConfig DrainConfig() {
  CoordinatorConfig config;
  config.mode = CoordinatorMode::kAssisted;
  config.near_empty_max_parked = 4;
  config.min_drain_intervals = 3;
  config.cons_host_vm_capacity = 64;
  return config;
}

Watts S3Delta() {
  const HostPowerProfile power;
  return power.idle_watts - power.sleep_watts;
}

TEST(DatacenterTopologyTest, ExpandsPodMajorWithDerivedSeeds) {
  DatacenterConfig config;
  config.total_racks = 5;
  config.racks_per_pod = 2;
  ASSERT_EQ(config.NumPods(), 3);
  ASSERT_EQ(config.TotalUsers(), 5ll * config.rack.users());

  StatusOr<DatacenterTopology> topology = DatacenterTopology::Build(config);
  ASSERT_TRUE(topology.ok()) << topology.status().message();
  const std::vector<RackSpec>& racks = topology.value().racks();
  ASSERT_EQ(racks.size(), 5u);
  for (int r = 0; r < 5; ++r) {
    EXPECT_EQ(racks[r].rack, r);
    EXPECT_EQ(racks[r].pod, r / 2);
    EXPECT_EQ(racks[r].sim.seed, DatacenterTopology::RackSeed(config.seed, r));
    EXPECT_EQ(racks[r].sim.cluster.num_home_hosts, config.rack.home_hosts);
    EXPECT_EQ(racks[r].sim.cluster.num_consolidation_hosts,
              config.rack.consolidation_hosts);
  }
}

TEST(DatacenterTopologyTest, RackSeedIsStableAcrossRackCounts) {
  DatacenterConfig small;
  small.total_racks = 8;
  DatacenterConfig big = small;
  big.total_racks = 256;

  StatusOr<DatacenterTopology> small_topo = DatacenterTopology::Build(small);
  StatusOr<DatacenterTopology> big_topo = DatacenterTopology::Build(big);
  ASSERT_TRUE(small_topo.ok());
  ASSERT_TRUE(big_topo.ok());
  // A smoke grid is a prefix of the full datacenter: rack 7 simulates the
  // identical day in both.
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(small_topo.value().racks()[r].sim.seed,
              big_topo.value().racks()[r].sim.seed);
  }
  // And adjacent racks get decorrelated, distinct streams.
  EXPECT_NE(DatacenterTopology::RackSeed(1, 0), DatacenterTopology::RackSeed(1, 1));
  EXPECT_NE(DatacenterTopology::RackSeed(1, 0), DatacenterTopology::RackSeed(2, 0));
}

TEST(DatacenterTopologyTest, ValidateRejectsBadConfigs) {
  DatacenterConfig config;
  config.total_racks = 0;
  EXPECT_FALSE(DatacenterTopology::Build(config).ok());

  config = DatacenterConfig();
  config.racks_per_pod = 0;
  EXPECT_FALSE(DatacenterTopology::Build(config).ok());

  config = DatacenterConfig();
  config.rack.strategy_name = "no-such-strategy";
  EXPECT_FALSE(DatacenterTopology::Build(config).ok());

  config = DatacenterConfig();
  config.coordinator.sponsor_fill_ratio = 0.0;
  EXPECT_FALSE(DatacenterTopology::Build(config).ok());

  config = DatacenterConfig();
  config.coordinator.cap_events_per_rack_day = 1.0;  // cap events, no cap watts
  EXPECT_FALSE(DatacenterTopology::Build(config).ok());
}

TEST(DatacenterEnvTest, RackCountOverrideParses) {
  setenv("OASIS_DC_RACKS", "8", 1);
  DatacenterConfig config;
  ApplyDatacenterEnvOverrides(&config);
  unsetenv("OASIS_DC_RACKS");
  EXPECT_EQ(config.total_racks, 8);
}

TEST(DatacenterEnvDeathTest, UnknownRackCountExitsWithStatus2) {
  // The OASIS_CHECK / OASIS_PROF / OASIS_POLICY convention: an OASIS_* knob
  // set to something unusable is a hard configuration error, not a silent
  // fallback.
  DatacenterConfig config;
  setenv("OASIS_DC_RACKS", "a-rack-count", 1);
  EXPECT_EXIT(ApplyDatacenterEnvOverrides(&config), ::testing::ExitedWithCode(2),
              "OASIS_DC_RACKS");
  setenv("OASIS_DC_RACKS", "-3", 1);
  EXPECT_EXIT(ApplyDatacenterEnvOverrides(&config), ::testing::ExitedWithCode(2),
              "not a positive integer");
  unsetenv("OASIS_DC_RACKS");
}

TEST(CoordinatorTest, OffModeReturnsZeroStats) {
  CoordinatorConfig config = DrainConfig();
  config.mode = CoordinatorMode::kOff;
  DatacenterRun run;
  run.racks.push_back(SyntheticRack(0, 0, {2, 2, 2}, 1));
  CoordinatorStats stats = GlobalCoordinator(config).Coordinate(run);
  EXPECT_EQ(stats.drains_started, 0u);
  EXPECT_EQ(stats.energy_saved, 0.0);
  EXPECT_EQ(stats.cross_rack_traffic_bytes, 0u);
}

TEST(CoordinatorTest, GlobalGreedyCreditsIdealPacking) {
  DatacenterRun run;
  // 4 parked VMs across two racks fit one 64-VM host; two are powered.
  run.racks.push_back(SyntheticRack(0, 0, std::vector<int>(10, 2), 1));
  run.racks.push_back(SyntheticRack(1, 0, std::vector<int>(10, 2), 1));
  CoordinatorConfig config = DrainConfig();
  config.mode = CoordinatorMode::kGlobalGreedy;
  CoordinatorStats stats = GlobalCoordinator(config).Coordinate(run);
  EXPECT_DOUBLE_EQ(stats.energy_saved, 10.0 * S3Delta() * kIntervalS);
  EXPECT_EQ(stats.drains_started, 0u);  // the bound models no mechanism
  EXPECT_EQ(stats.migration_energy, 0.0);
}

TEST(CoordinatorTest, AssistedDrainsNearEmptyRackIntoPodSponsor) {
  DatacenterRun run;
  run.racks.push_back(SyntheticRack(0, 0, std::vector<int>(10, 2), 1));
  run.racks.push_back(SyntheticRack(1, 0, std::vector<int>(10, 10), 1));
  const CoordinatorConfig config = DrainConfig();
  CoordinatorStats stats = GlobalCoordinator(config).Coordinate(run);

  // Rack 0 (2 parked <= near-empty 4) drains into rack 1 at t=0, then earns
  // the S3 credit of its one consolidation host for the 9 remaining
  // intervals. Rack 1 (10 parked) never qualifies.
  EXPECT_EQ(stats.drains_started, 1u);
  EXPECT_EQ(stats.drain_returns, 0u);
  EXPECT_EQ(stats.vms_drained, 2u);
  EXPECT_EQ(stats.drain_intervals, 9u);
  EXPECT_DOUBLE_EQ(stats.energy_saved, 9.0 * S3Delta() * kIntervalS);
  EXPECT_EQ(stats.cross_rack_traffic_bytes, 2u * config.drain_bytes_per_vm);
  EXPECT_DOUBLE_EQ(stats.migration_energy,
                   ToGiB(2u * config.drain_bytes_per_vm) * config.wire_joules_per_gib);
  EXPECT_GT(stats.NetSaved(), 0.0);
}

TEST(CoordinatorTest, DrainReturnsWhenDemandRisesAfterHysteresis) {
  std::vector<int> parked(10, 2);
  for (size_t t = 5; t < parked.size(); ++t) {
    parked[t] = 10;  // demand returns mid-day
  }
  DatacenterRun run;
  run.racks.push_back(SyntheticRack(0, 0, parked, 1));
  run.racks.push_back(SyntheticRack(1, 0, std::vector<int>(10, 10), 1));
  const CoordinatorConfig config = DrainConfig();
  CoordinatorStats stats = GlobalCoordinator(config).Coordinate(run);

  // Drained at t=0, credited t=1..4, returned at t=5 (past the 3-interval
  // hysteresis window), charged the move back at the then-current demand.
  EXPECT_EQ(stats.drains_started, 1u);
  EXPECT_EQ(stats.drain_returns, 1u);
  EXPECT_EQ(stats.drain_intervals, 4u);
  EXPECT_DOUBLE_EQ(stats.energy_saved, 4.0 * S3Delta() * kIntervalS);
  EXPECT_EQ(stats.cross_rack_traffic_bytes, (2u + 10u) * config.drain_bytes_per_vm);
}

TEST(CoordinatorTest, HysteresisHoldsDrainThroughShortSpikes) {
  std::vector<int> parked(10, 2);
  parked[1] = 10;
  parked[2] = 10;  // spike shorter than min_drain_intervals
  DatacenterRun run;
  run.racks.push_back(SyntheticRack(0, 0, parked, 1));
  run.racks.push_back(SyntheticRack(1, 0, std::vector<int>(10, 10), 1));
  CoordinatorStats stats = GlobalCoordinator(DrainConfig()).Coordinate(run);
  EXPECT_EQ(stats.drains_started, 1u);
  EXPECT_EQ(stats.drain_returns, 0u);
  EXPECT_EQ(stats.drain_intervals, 9u);
}

TEST(CoordinatorTest, FaultedRackNeverSponsors) {
  DatacenterRun run;
  run.racks.push_back(SyntheticRack(0, 0, std::vector<int>(10, 2), 1));
  run.racks.push_back(SyntheticRack(1, 0, std::vector<int>(10, 10), 1));
  run.racks[1].metrics.faults_injected = 1;
  CoordinatorStats stats = GlobalCoordinator(DrainConfig()).Coordinate(run);
  // The only candidate sponsor crashed hosts today: rack 0 retries (and is
  // refused) every interval.
  EXPECT_EQ(stats.drains_started, 0u);
  EXPECT_EQ(stats.fault_excluded_sponsors, 10u);
  EXPECT_EQ(stats.energy_saved, 0.0);
}

TEST(CoordinatorTest, CapWindowsAreSampledDeterministically) {
  DatacenterRun run;
  run.config.seed = 42;
  run.racks.push_back(SyntheticRack(0, 0, std::vector<int>(20, 2), 1));
  run.racks.push_back(SyntheticRack(1, 0, std::vector<int>(20, 10), 1));
  CoordinatorConfig config = DrainConfig();
  config.rack_power_cap_watts = 1000.0;
  config.cap_events_per_rack_day = 1.0;  // exactly one window per rack
  const GlobalCoordinator coordinator(config);
  CoordinatorStats a = GlobalCoordinator(config).Coordinate(run);
  CoordinatorStats b = coordinator.Coordinate(run);
  EXPECT_EQ(a.cap_windows, 2u);
  // Same run, same stats — the windows come from (seed, rack), not from any
  // per-call state.
  EXPECT_EQ(a.cap_windows, b.cap_windows);
  EXPECT_EQ(a.drains_started, b.drains_started);
  EXPECT_EQ(a.cap_blocked_sponsorships, b.cap_blocked_sponsorships);
  EXPECT_EQ(a.energy_saved, b.energy_saved);
}

TEST(CoordinatorTest, StatsAreInvariantUnderRackPermutation) {
  DatacenterRun run;
  run.racks.push_back(SyntheticRack(0, 0, std::vector<int>(10, 2), 1));
  run.racks.push_back(SyntheticRack(1, 0, std::vector<int>(10, 10), 1));
  run.racks.push_back(SyntheticRack(2, 1, std::vector<int>(10, 3), 1));
  run.racks.push_back(SyntheticRack(3, 1, std::vector<int>(10, 20), 1));
  DatacenterRun permuted = run;
  std::reverse(permuted.racks.begin(), permuted.racks.end());

  const GlobalCoordinator coordinator(DrainConfig());
  CoordinatorStats a = coordinator.Coordinate(run);
  CoordinatorStats b = coordinator.Coordinate(permuted);
  EXPECT_EQ(DatacenterLedger::Build(run, a).Digest(),
            DatacenterLedger::Build(permuted, b).Digest());
  EXPECT_GE(a.drains_started, 1u);  // the property is non-vacuous
}

TEST(DatacenterLedgerTest, BuildSortsRowsAndSumsTotals) {
  DatacenterRun run;
  run.config.total_racks = 3;
  run.config.racks_per_pod = 2;
  // Arrival order 2, 0, 1 — rows must come out 0, 1, 2.
  run.racks.push_back(SyntheticRack(2, 1, {1}, 1));
  run.racks.push_back(SyntheticRack(0, 0, {1}, 1));
  run.racks.push_back(SyntheticRack(1, 0, {1}, 1));
  for (size_t i = 0; i < run.racks.size(); ++i) {
    run.racks[i].metrics.home_host_energy = 100.0 * (run.racks[i].rack + 1);
    run.racks[i].metrics.baseline_energy = 1000.0;
    run.racks[i].metrics.full_migrations = 5;
    run.racks[i].metrics.faults_injected = 1;
  }

  DatacenterLedger ledger = DatacenterLedger::Build(run, CoordinatorStats());
  ASSERT_EQ(ledger.racks.size(), 3u);
  EXPECT_EQ(ledger.racks[0].rack, 0);
  EXPECT_EQ(ledger.racks[1].rack, 1);
  EXPECT_EQ(ledger.racks[2].rack, 2);
  ASSERT_EQ(ledger.pods.size(), 2u);
  EXPECT_EQ(ledger.pods[0].racks, 2);
  EXPECT_EQ(ledger.pods[1].racks, 1);
  EXPECT_DOUBLE_EQ(ledger.pods[0].total_energy, 100.0 + 200.0);
  EXPECT_DOUBLE_EQ(ledger.total_energy, 600.0);
  EXPECT_DOUBLE_EQ(ledger.baseline_energy, 3000.0);
  EXPECT_EQ(ledger.total_migrations, 15u);
  EXPECT_EQ(ledger.total_faults, 3u);
  EXPECT_EQ(ledger.total_users, 3ll * run.config.rack.users());
  EXPECT_DOUBLE_EQ(ledger.LocalSavings(), 1.0 - 600.0 / 3000.0);
  // No coordinator contribution: the two savings figures coincide.
  EXPECT_DOUBLE_EQ(ledger.CoordinatedSavings(), ledger.LocalSavings());
}

TEST(DatacenterLedgerTest, DigestIsPermutationInvariantAndFieldSensitive) {
  DatacenterRun run;
  run.racks.push_back(SyntheticRack(0, 0, {2, 2}, 1));
  run.racks.push_back(SyntheticRack(1, 0, {3, 3}, 1));
  run.racks[0].metrics.home_host_energy = 10.0;
  run.racks[1].metrics.home_host_energy = 20.0;
  DatacenterRun permuted = run;
  std::swap(permuted.racks[0], permuted.racks[1]);

  CoordinatorStats stats;
  stats.drains_started = 1;
  const uint64_t digest = DatacenterLedger::Build(run, stats).Digest();
  EXPECT_EQ(digest, DatacenterLedger::Build(permuted, stats).Digest());

  run.racks[1].metrics.host_wakes += 1;
  EXPECT_NE(digest, DatacenterLedger::Build(run, stats).Digest());
  run.racks[1].metrics.host_wakes -= 1;
  stats.vms_drained = 7;
  EXPECT_NE(digest, DatacenterLedger::Build(run, stats).Digest());
}

}  // namespace
}  // namespace dc
}  // namespace oasis
