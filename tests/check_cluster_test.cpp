// Check-instrumented cluster runs: the conservation walk under fault
// injection, and the RollbackMigration emergency-reintegration path in
// particular. A consolidation host crashing while partial migrations are in
// flight forces the manager through rollback + emergency reintegration; the
// installed checker asserts after every planning interval that no VM was
// lost or duplicated and that no partial-VM page state leaked.

#include <gtest/gtest.h>

#include <cstddef>

#include "src/check/check.h"
#include "src/cluster/invariants.h"
#include "src/cluster/manager.h"
#include "src/fault/fault.h"
#include "src/trace/trace_generator.h"

namespace oasis {
namespace {

using check::CheckMode;
using check::InvariantChecker;

ClusterConfig SmallCluster(uint64_t seed) {
  ClusterConfig config;
  config.num_home_hosts = 6;
  config.num_consolidation_hosts = 2;
  config.vms_per_home = 10;
  config.policy = ConsolidationPolicy::kFullToPartial;
  config.seed = seed;
  return config;
}

TraceSet TraceFor(const ClusterConfig& config) {
  TraceGenerator generator(TraceGeneratorConfig{}, config.seed ^ 0x7ACEBA5Eull);
  return generator.GenerateTraceSet(config.TotalVms(), DayKind::kWeekday);
}

// Installs a warn-mode checker for the duration of each test so every
// instrumentation site in the manager/hypervisor/power layers is live, and
// fails the test if any invariant fired.
class CheckClusterTest : public ::testing::Test {
 protected:
  void SetUp() override { InvariantChecker::Install(&checker_); }
  void TearDown() override {
    InvariantChecker::Install(nullptr);
    EXPECT_EQ(checker_.violation_count(), 0u) << "invariant violations recorded; "
                                                 "see stderr for the structured report";
  }

  void ExpectNoVmLostOrDuplicated(const ClusterManager& manager) {
    size_t census = 0;
    for (size_t h = 0; h < manager.num_hosts(); ++h) {
      census += manager.GetHost(static_cast<HostId>(h)).vms().size();
    }
    EXPECT_EQ(census, manager.num_vms());
    for (size_t v = 0; v < manager.num_vms(); ++v) {
      const VmSlot& vm = manager.GetVm(static_cast<VmId>(v));
      ASSERT_LT(vm.location, manager.num_hosts()) << "vm " << v;
      EXPECT_TRUE(manager.GetHost(vm.location).vms().count(vm.id))
          << "vm " << v << " not resident where its slot points";
    }
  }

  InvariantChecker checker_{CheckMode::kWarn};
};

TEST_F(CheckClusterTest, CrashMidPartialMigrationReintegratesWithoutPageLoss) {
  ClusterConfig config = SmallCluster(20160419);
  config.fault.enabled = true;
  // Aborted streams plus explicit crashes on both consolidation hosts, spread
  // across the day so several land while vacate migrations are in flight —
  // exactly the window where RollbackMigration's emergency path runs.
  config.fault.migration_abort_per_hour = 2.0;
  for (int hour = 1; hour < 24; hour += 2) {
    config.fault.scheduled.push_back(
        {SimTime::Hours(hour) + SimTime::Seconds(17), FaultClass::kHostCrash,
         /*target=*/-1});
  }

  TraceSet trace = TraceFor(config);
  ClusterManager manager(config, trace);
  ClusterMetrics metrics = manager.Run();

  // The path under test actually ran: crashes were injected and recovered,
  // in-flight migrations were rolled back, and the cluster kept operating.
  const FaultInjector& injector = manager.fault_injector();
  EXPECT_GT(injector.injected(FaultClass::kHostCrash), 0u);
  EXPECT_EQ(injector.injected(FaultClass::kHostCrash),
            injector.recovered(FaultClass::kHostCrash));
  EXPECT_GT(injector.injected(FaultClass::kMigrationAbort), 0u);
  EXPECT_EQ(injector.injected(FaultClass::kMigrationAbort),
            injector.recovered(FaultClass::kMigrationAbort));
  EXPECT_GT(metrics.reintegrations, 0u);

  // No page loss: the end-of-day conservation walk re-checks reservation and
  // working-set accounting for every host and VM (the per-interval walks
  // already ran inside Run() via the installed checker).
  ExpectNoVmLostOrDuplicated(manager);
  uint64_t before = checker_.checks_run();
  CheckClusterInvariants(manager, SimTime::Hours(24.0), checker_);
  EXPECT_GT(checker_.checks_run(), before) << "conservation walk ran no checks";
}

TEST_F(CheckClusterTest, ScheduledMigrationAbortsRollBackCleanly) {
  ClusterConfig config = SmallCluster(7);
  config.fault.enabled = true;
  config.fault.migration_abort_per_hour = 4.0;

  TraceSet trace = TraceFor(config);
  ClusterManager manager(config, trace);
  (void)manager.Run();

  const FaultInjector& injector = manager.fault_injector();
  EXPECT_GT(injector.injected(FaultClass::kMigrationAbort), 0u)
      << "no abort fired; the rollback path went unexercised";
  EXPECT_EQ(injector.injected(FaultClass::kMigrationAbort),
            injector.recovered(FaultClass::kMigrationAbort));
  ExpectNoVmLostOrDuplicated(manager);
  CheckClusterInvariants(manager, SimTime::Hours(24.0), checker_);
}

TEST_F(CheckClusterTest, CleanDayRunsMillionsOfChecksWithZeroViolations) {
  ClusterConfig config = SmallCluster(42);
  TraceSet trace = TraceFor(config);
  ClusterManager manager(config, trace);
  (void)manager.Run();
  // The per-interval walks plus the hypervisor/power hooks all executed.
  EXPECT_GT(checker_.checks_run(), 10000u);
  ExpectNoVmLostOrDuplicated(manager);
}

}  // namespace
}  // namespace oasis
