// The wall-clock profiler's contract: percentile math is honest within the
// log-linear bucket error, OASIS_PROF parsing matches the OASIS_CHECK
// conventions (unknown modes exit 2), profiling provably never perturbs
// simulation results, and the per-thread buffers survive a real parallel
// run at jobs=4 with a self-consistent report.

#include "src/obs/prof.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "src/exp/exp.h"
#include "src/obs/metrics.h"
#include "tests/metric_digest.h"

namespace oasis {
namespace prof {
namespace {

// Small enough for unit-test latency, big enough to run real migrations
// through the pool workers.
SimulationConfig SmallCluster(uint64_t seed = 1234) {
  SimulationConfig config;
  config.cluster.num_home_hosts = 6;
  config.cluster.num_consolidation_hosts = 2;
  config.cluster.vms_per_home = 8;
  config.seed = seed;
  return config;
}

// Restores OASIS_PROF around each env-parsing test.
class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_ = true;
      old_ = old;
    }
  }
  ~EnvGuard() {
    if (had_) {
      setenv(name_, old_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string old_;
};

// Zeroes profiler state around tests that enable it, so test order cannot
// leak samples between cases.
class ProfilerGuard {
 public:
  ProfilerGuard() { Profiler::Instance().Reset(); }
  ~ProfilerGuard() {
    Profiler::Instance().SetMode(ProfMode::kOff);
    Profiler::Instance().Reset();
  }
};

// --- percentile correctness (table-driven) ----------------------------------

TEST(ProfHistogramTest, PercentileTableWithinLogLinearError) {
  // The report's p50/p95/p99 come from obs::Histogram's log-linear buckets
  // (16 sub-buckets per power of two => <= ~6.5% relative error). Each case
  // records a known distribution of durations-in-seconds at profiler scale
  // (hundreds of nanoseconds to minutes) and pins the quantiles.
  struct Case {
    const char* name;
    std::vector<double> values;  // recorded in order given
    double pct;
    double expected;
  };
  const Case cases[] = {
      {"uniform_1us_to_1ms_p50", {}, 50.0, 500e-6},   // filled below
      {"uniform_1us_to_1ms_p95", {}, 95.0, 950e-6},
      {"uniform_1us_to_1ms_p99", {}, 99.0, 990e-6},
      {"single_value_any_pct", {0.25}, 99.0, 0.25},
      {"two_points_p50", {1e-6, 1.0}, 50.0, 1e-6},
      {"heavy_tail_p99", {}, 99.0, 60.0},
  };
  for (const Case& c : cases) {
    obs::MetricsRegistry reg;
    obs::Histogram* h = reg.histogram("phase");
    std::vector<double> values = c.values;
    if (std::string(c.name).rfind("uniform", 0) == 0) {
      for (int i = 1; i <= 1000; ++i) {
        values.push_back(static_cast<double>(i) * 1e-6);  // 1us .. 1ms
      }
    } else if (std::string(c.name) == "heavy_tail_p99") {
      for (int i = 0; i < 980; ++i) {
        values.push_back(1e-6);
      }
      for (int i = 0; i < 20; ++i) {
        values.push_back(60.0);  // twenty one-minute stalls: p99 is a stall
      }
    }
    for (double v : values) {
      h->Record(v);
    }
    double got = h->Percentile(c.pct);
    EXPECT_NEAR(got, c.expected, c.expected * 0.065)
        << c.name << ": p" << c.pct << " = " << got << ", want ~" << c.expected;
  }
}

TEST(ProfHistogramTest, PercentileClampedToObservedRange) {
  obs::MetricsRegistry reg;
  obs::Histogram* h = reg.histogram("phase");
  h->Record(3e-6);
  h->Record(5e-6);
  EXPECT_GE(h->Percentile(0.0), 3e-6);
  EXPECT_LE(h->Percentile(100.0), 5e-6);
}

// --- OASIS_PROF parsing ------------------------------------------------------

TEST(ProfConfigTest, FromEnvAcceptedSpellings) {
  EnvGuard guard("OASIS_PROF");
  struct Case {
    const char* value;  // nullptr = unset
    ProfMode expected;
  };
  const Case cases[] = {
      {nullptr, ProfMode::kOff}, {"", ProfMode::kOff},
      {"off", ProfMode::kOff},   {"0", ProfMode::kOff},
      {"summary", ProfMode::kSummary}, {"on", ProfMode::kSummary},
      {"1", ProfMode::kSummary}, {"timeline", ProfMode::kTimeline},
      {"2", ProfMode::kTimeline},
  };
  for (const Case& c : cases) {
    if (c.value == nullptr) {
      unsetenv("OASIS_PROF");
    } else {
      setenv("OASIS_PROF", c.value, 1);
    }
    EXPECT_EQ(ProfConfig::FromEnv().mode, c.expected)
        << "OASIS_PROF=" << (c.value ? c.value : "<unset>");
  }
}

TEST(ProfConfigDeathTest, UnknownModeExitsTwo) {
  // Same convention as OASIS_CHECK / OASIS_POLICY: a typo must not silently
  // run unprofiled for an hour.
  EnvGuard guard("OASIS_PROF");
  setenv("OASIS_PROF", "detailed", 1);
  EXPECT_EXIT(ProfConfig::FromEnv(), ::testing::ExitedWithCode(kBadModeExitCode),
              "unknown OASIS_PROF mode \"detailed\"");
}

// --- no effect on simulation output ------------------------------------------

TEST(ProfIsolationTest, ProfilingModesLeaveDigestsIdentical) {
  // The acceptance bar: bit-identical SimulationResult digests with the
  // profiler off, in summary mode, and in timeline mode, at jobs=1 and 4.
  ProfilerGuard profiler_guard;
  exp::ExperimentPlan plan;
  for (uint64_t seed : {11u, 12u, 13u, 14u}) {
    plan.Add(SmallCluster(seed));
  }
  std::vector<uint64_t> digests;
  for (ProfMode mode : {ProfMode::kOff, ProfMode::kSummary, ProfMode::kTimeline}) {
    for (int jobs : {1, 4}) {
      Profiler::Instance().SetMode(mode);
      std::vector<SimulationResult> results = exp::RunParallel(plan, jobs);
      Profiler::Instance().SetMode(ProfMode::kOff);
      Profiler::Instance().Reset();
      testing::MetricDigest digest;
      for (const SimulationResult& result : results) {
        digest.Fold(testing::DigestMetrics(result.metrics));
      }
      digests.push_back(digest.hash());
    }
  }
  for (size_t i = 1; i < digests.size(); ++i) {
    EXPECT_EQ(digests[i], digests[0]) << "mode/jobs combination " << i;
  }
}

// --- per-thread buffers under a real parallel run -----------------------------

TEST(ProfParallelTest, CollectAfterJobs4IsSelfConsistent) {
  // Eight runs across the pool workers: every worker records into its own
  // buffer concurrently; Collect after Wait must see all of it exactly once.
  // The runner clamps workers to the hardware, so the expected pool size is
  // min(4, cores); global metrics are enabled so run contexts are built
  // (with collectors dark the runner skips them entirely).
  ProfilerGuard profiler_guard;
  const int expected_workers = std::min(4, exp::HardwareJobs());
  obs::MetricsRegistry::SetEnabled(true);
  Profiler::Instance().SetMode(ProfMode::kSummary);
  Profiler::Instance().LabelCurrentThread("main");
  exp::ExperimentPlan plan;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    plan.Add(SmallCluster(seed));
  }
  std::vector<SimulationResult> results = exp::RunParallel(plan, 4);
  obs::MetricsRegistry::SetEnabled(false);
  obs::MetricsRegistry::Global().ResetValues();
  Report report = Profiler::Instance().Collect(/*reset=*/true);

  EXPECT_EQ(report.jobs, expected_workers);
  EXPECT_TRUE(report.HasSamples());
  EXPECT_GT(report.wall_s, 0.0);
  bool saw_sim = false, saw_merge = false, saw_setup = false, saw_task_run = false;
  uint64_t sim_count = 0;
  for (const PhaseStats& p : report.phases) {
    std::string name = p.name;
    if (name == "exp.run_sim") {
      saw_sim = true;
      sim_count = p.count;
    }
    saw_merge = saw_merge || name == "exp.merge";
    saw_setup = saw_setup || name == "exp.run_setup";
    saw_task_run = saw_task_run || name == "pool.task_run";
  }
  EXPECT_TRUE(saw_sim);
  EXPECT_EQ(sim_count, 8u);
  if (expected_workers > 1) {
    // The pool path: one context per run, every task popped or stolen
    // exactly once, and every phase the parallel path wraps fired.
    EXPECT_EQ(report.counts[static_cast<int>(Count::kTasksRun)], 8u);
    EXPECT_EQ(report.counts[static_cast<int>(Count::kRunContexts)], 8u);
    EXPECT_EQ(report.counts[static_cast<int>(Count::kPoolOwnPops)] +
                  report.counts[static_cast<int>(Count::kPoolSteals)],
              8u);
    EXPECT_TRUE(saw_merge && saw_setup && saw_task_run);
    // Every pool worker recorded; rows merge by label, exactly worker0..N-1.
    EXPECT_EQ(report.workers.size(), static_cast<size_t>(expected_workers));
  } else {
    // A single effective worker takes the inline serial path: no pool, no
    // contexts, no merge — the legacy loop with nothing layered on top.
    EXPECT_EQ(report.counts[static_cast<int>(Count::kRunContexts)], 0u);
    EXPECT_FALSE(saw_task_run);
  }
  // busy <= wall per worker, so efficiency is a fraction (plus clock jitter).
  EXPECT_GT(report.parallel_efficiency, 0.0);
  EXPECT_LE(report.parallel_efficiency, 1.1);
  EXPECT_GE(report.merge_serial_fraction, 0.0);
  EXPECT_STRNE(report.bottleneck, "");

  // reset=true opened a fresh window: nothing left to collect.
  Report empty = Profiler::Instance().Collect(/*reset=*/false);
  EXPECT_FALSE(empty.HasSamples());
}

// --- report wiring ------------------------------------------------------------

TEST(ProfReportTest, JsonCarriesScalingFieldsAndParses) {
  ProfilerGuard profiler_guard;
  Profiler::Instance().SetMode(ProfMode::kSummary);
  exp::ExperimentPlan plan;
  plan.Add(SmallCluster(7));
  plan.Add(SmallCluster(8));
  exp::RunParallel(plan, 2);
  Report report = Profiler::Instance().Collect(/*reset=*/true);
  std::ostringstream json;
  report.WriteJson(json, 0);
  const std::string text = json.str();
  // The CI perf-smoke gate greps for exactly these fields.
  EXPECT_NE(text.find("\"parallel_efficiency\":"), std::string::npos);
  EXPECT_NE(text.find("\"merge_serial_fraction\":"), std::string::npos);
  EXPECT_NE(text.find("\"worker_idle_share\":"), std::string::npos);
  EXPECT_NE(text.find("\"bottleneck\":"), std::string::npos);
  EXPECT_NE(text.find("\"trace_dropped\":"), std::string::npos);

  std::ostringstream table;
  report.WriteTable(table);
  EXPECT_NE(table.str().find("[prof] top scaling bottleneck:"), std::string::npos);
}

TEST(ProfReportTest, MetricsMergeDropCountSurfaces) {
  // A kind mismatch across run registries must not vanish: MergeFrom counts
  // the skipped instrument and the profiler report carries it.
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.counter("x");
  b.histogram("x")->Record(1.0);
  b.counter("y")->Increment();
  a.MergeFrom(b);
  EXPECT_EQ(a.merge_dropped(), 1u);
  EXPECT_EQ(a.counter("y")->value(), 1u);

  // Drops already counted upstream propagate through further merges.
  obs::MetricsRegistry c;
  c.MergeFrom(a);
  EXPECT_EQ(c.merge_dropped(), 1u);
}

}  // namespace
}  // namespace prof
}  // namespace oasis
