#include "src/obs/obs.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "tests/mini_json.h"

namespace oasis {
namespace obs {
namespace {

using oasis::testing::JsonParser;
using oasis::testing::JsonValue;

TEST(CounterTest, IncrementsAndReads) {
  MetricsRegistry reg;
  Counter* c = reg.counter("events");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  MetricsRegistry reg;
  Gauge* g = reg.gauge("depth");
  ASSERT_NE(g, nullptr);
  g->Set(5.0);
  g->Add(-2.0);
  EXPECT_DOUBLE_EQ(g->value(), 3.0);
}

TEST(HistogramTest, BasicStats) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("latency");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_DOUBLE_EQ(h->Percentile(50), 0.0);
  for (double v : {1.0, 2.0, 3.0, 4.0, 100.0}) {
    h->Record(v);
  }
  EXPECT_EQ(h->count(), 5u);
  EXPECT_DOUBLE_EQ(h->sum(), 110.0);
  EXPECT_DOUBLE_EQ(h->mean(), 22.0);
  EXPECT_DOUBLE_EQ(h->min(), 1.0);
  EXPECT_DOUBLE_EQ(h->max(), 100.0);
}

TEST(HistogramTest, PercentilesWithinLogLinearError) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("latency");
  for (int i = 1; i <= 1000; ++i) {
    h->Record(static_cast<double>(i));
  }
  // 16 sub-buckets per power of two bounds relative error around 1/16.
  EXPECT_NEAR(h->Percentile(50), 500.0, 500.0 * 0.07);
  EXPECT_NEAR(h->Percentile(90), 900.0, 900.0 * 0.07);
  EXPECT_NEAR(h->Percentile(99), 990.0, 990.0 * 0.07);
  // Extremes clamp to exact observed bounds.
  EXPECT_DOUBLE_EQ(h->Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h->Percentile(100), 1000.0);
}

TEST(HistogramTest, NonPositiveValuesLandInUnderflowBucket) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("deltas");
  h->Record(0.0);
  h->Record(-5.0);
  h->Record(10.0);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_DOUBLE_EQ(h->min(), -5.0);
  EXPECT_DOUBLE_EQ(h->max(), 10.0);
  EXPECT_LE(h->Percentile(10), 0.0);
}

TEST(MetricsRegistryTest, SameNameReturnsSamePointerAndKindMismatchIsNull) {
  MetricsRegistry reg;
  Counter* c1 = reg.counter("x");
  Counter* c2 = reg.counter("x");
  EXPECT_EQ(c1, c2);
  // "x" is already a counter: asking for another kind fails.
  EXPECT_EQ(reg.gauge("x"), nullptr);
  EXPECT_EQ(reg.histogram("x"), nullptr);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistryTest, ResetValuesKeepsInstruments) {
  MetricsRegistry reg;
  Counter* c = reg.counter("n");
  Gauge* g = reg.gauge("g");
  Histogram* h = reg.histogram("h");
  c->Increment(7);
  g->Set(3.5);
  h->Record(1.0);
  reg.ResetValues();
  // Cached pointers stay valid and read zero.
  EXPECT_EQ(c->value(), 0u);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistryTest, CsvExportIsSortedAndParsable) {
  MetricsRegistry reg;
  reg.counter("b.count")->Increment(2);
  reg.gauge("a.depth")->Set(4.0);
  reg.histogram("c.lat")->Record(10.0);
  std::ostringstream out;
  reg.WriteCsv(out);
  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "name,kind,count,value,min,p50,p90,p99,max");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.rfind("a.depth,gauge,", 0), 0u);
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.rfind("b.count,counter,2,", 0), 0u);
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.rfind("c.lat,histogram,1,", 0), 0u);
}

TEST(MetricsRegistryTest, DisabledGateReturnsNull) {
  MetricsRegistry::SetEnabled(false);
  EXPECT_EQ(MetricsRegistry::IfEnabled(), nullptr);
  MetricsRegistry::SetEnabled(true);
  EXPECT_EQ(MetricsRegistry::IfEnabled(), &MetricsRegistry::Global());
  MetricsRegistry::SetEnabled(false);
}

TEST(TracerTest, DisabledRecordingIsANoOp) {
  Tracer tracer(8);
  ASSERT_FALSE(tracer.enabled());
  tracer.Complete("cat", "span", SimTime::Seconds(1), SimTime::Seconds(2));
  tracer.Instant("cat", "evt", SimTime::Seconds(1));
  tracer.CounterValue("cat", "n", SimTime::Seconds(1), 5);
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.total_recorded(), 0u);
}

TEST(TracerTest, RecordsEventsWithSimTimestamps) {
  Tracer tracer(8);
  tracer.set_enabled(true);
  tracer.Complete("cat", "span", SimTime::Seconds(1.0), SimTime::Seconds(2.5),
                  TraceArgs{3, 7, 4096});
  std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, TracePhase::kComplete);
  EXPECT_EQ(events[0].ts_us, 1000000);
  EXPECT_EQ(events[0].dur_us, 1500000);
  EXPECT_EQ(events[0].args.host, 3);
  EXPECT_EQ(events[0].args.vm, 7);
  EXPECT_EQ(events[0].args.bytes, 4096);
}

TEST(TracerTest, RingDropsOldestKeepsNewest) {
  Tracer tracer(4);
  tracer.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    tracer.Instant("cat", "evt", SimTime::Micros(i));
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.total_recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first among the survivors: 6, 7, 8, 9.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].ts_us, 6 + i);
  }
}

TEST(TracerTest, ClearAndSetCapacityReset) {
  Tracer tracer(4);
  tracer.set_enabled(true);
  tracer.Instant("cat", "evt", SimTime::Zero());
  tracer.SetCapacity(16);
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.capacity(), 16u);
  tracer.Instant("cat", "evt", SimTime::Zero());
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TracerTest, ChromeJsonParsesBackWithNestingPair) {
  Tracer tracer(64);
  tracer.set_enabled(true);
  tracer.Begin("ctrl", "outer", SimTime::Seconds(1), TraceArgs{2, -1, -1});
  tracer.Complete("ctrl", "inner", SimTime::Seconds(1.2), SimTime::Seconds(1.4),
                  TraceArgs{2, 11, 512});
  tracer.End("ctrl", "outer", SimTime::Seconds(2), TraceArgs{2, -1, -1});
  tracer.Instant("power", "sleeping", SimTime::Seconds(3));
  tracer.CounterValue("sim", "queue_depth", SimTime::Seconds(3), 42);

  std::ostringstream out;
  tracer.ExportChromeJson(out);
  JsonValue root;
  ASSERT_TRUE(JsonParser::Parse(out.str(), &root)) << out.str();
  ASSERT_TRUE(root.is_object());
  ASSERT_TRUE(root.has("traceEvents"));
  const JsonValue& events = root.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  // 5 recorded + 1 process_name metadata event.
  ASSERT_EQ(events.array.size(), 6u);

  int begins = 0, ends = 0, completes = 0, instants = 0, counters = 0;
  for (const JsonValue& e : events.array) {
    ASSERT_TRUE(e.is_object());
    const std::string& ph = e.at("ph").str;
    if (ph == "B") {
      ++begins;
      EXPECT_EQ(e.at("name").str, "outer");
      // host 2 renders as tid 3 (tid 0 is reserved for host-less events).
      EXPECT_EQ(e.at("tid").number, 3.0);
    } else if (ph == "E") {
      ++ends;
    } else if (ph == "X") {
      ++completes;
      EXPECT_EQ(e.at("name").str, "inner");
      EXPECT_EQ(e.at("dur").number, 200000.0);
      EXPECT_EQ(e.at("args").at("vm").number, 11.0);
      EXPECT_EQ(e.at("args").at("bytes").number, 512.0);
    } else if (ph == "i") {
      ++instants;
    } else if (ph == "C") {
      ++counters;
      EXPECT_EQ(e.at("args").at("value").number, 42.0);
    }
  }
  EXPECT_EQ(begins, 1);
  EXPECT_EQ(ends, 1);
  EXPECT_EQ(completes, 1);
  EXPECT_EQ(instants, 1);
  EXPECT_EQ(counters, 1);
}

TEST(TracerTest, JsonlEmitsOneValidObjectPerLine) {
  Tracer tracer(8);
  tracer.set_enabled(true);
  tracer.Instant("a", "one", SimTime::Micros(1));
  tracer.Instant("a", "two", SimTime::Micros(2));
  std::ostringstream out;
  tracer.ExportJsonl(out);
  std::istringstream in(out.str());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    JsonValue v;
    ASSERT_TRUE(JsonParser::Parse(line, &v)) << line;
    EXPECT_TRUE(v.is_object());
    ++lines;
  }
  EXPECT_EQ(lines, 2);
}

TEST(TracerTest, GlobalGateReturnsNullWhenDisabled) {
  Tracer::Global().set_enabled(false);
  EXPECT_EQ(Tracer::IfEnabled(), nullptr);
  Tracer::Global().set_enabled(true);
  EXPECT_EQ(Tracer::IfEnabled(), &Tracer::Global());
  Tracer::Global().set_enabled(false);
}

TEST(ObsConfigTest, FromEnvReadsAllKnobs) {
  ::setenv("OASIS_TRACE", "/tmp/t.jsonl", 1);
  ::setenv("OASIS_METRICS", "/tmp/m.csv", 1);
  ::setenv("OASIS_TRACE_CAPACITY", "128", 1);
  ::setenv("OASIS_LOG_LEVEL", "debug", 1);
  ObsConfig config = ObsConfig::FromEnv();
  EXPECT_TRUE(config.TracingRequested());
  EXPECT_TRUE(config.TraceIsJsonl());
  EXPECT_TRUE(config.MetricsRequested());
  EXPECT_EQ(config.trace_capacity, 128u);
  EXPECT_EQ(config.log_level, "debug");
  ::unsetenv("OASIS_TRACE");
  ::unsetenv("OASIS_METRICS");
  ::unsetenv("OASIS_TRACE_CAPACITY");
  ::unsetenv("OASIS_LOG_LEVEL");
  ObsConfig off = ObsConfig::FromEnv();
  EXPECT_FALSE(off.TracingRequested());
  EXPECT_FALSE(off.MetricsRequested());
}

}  // namespace
}  // namespace obs
}  // namespace oasis
