// Property/fuzz coverage for the LZ codec: round-trip fidelity over a wide
// spread of sizes and byte distributions, plus decompressor robustness
// against mutated streams (it must reject or produce wrong-size output —
// never crash or read out of bounds).

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/common/rng.h"
#include "src/mem/compression.h"

namespace oasis {
namespace {

// Trial counts are tunable so CI can bound the Release-mode run:
// OASIS_FUZZ_TRIALS caps every fuzz loop at that many iterations.
int FuzzTrials(int default_trials) {
  const char* env = std::getenv("OASIS_FUZZ_TRIALS");
  if (env == nullptr || *env == '\0') {
    return default_trials;
  }
  int parsed = std::atoi(env);
  return parsed > 0 ? std::min(parsed, default_trials) : default_trials;
}

std::vector<uint8_t> RandomBuffer(Rng& rng, size_t size, int alphabet) {
  std::vector<uint8_t> out(size);
  for (auto& b : out) {
    b = static_cast<uint8_t>(rng.NextBelow(static_cast<uint64_t>(alphabet)));
  }
  return out;
}

class RoundTripSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RoundTripSizeTest, RandomBytesRoundTrip) {
  Rng rng(GetParam() * 977 + 1);
  for (int alphabet : {2, 5, 32, 256}) {
    std::vector<uint8_t> input = RandomBuffer(rng, GetParam(), alphabet);
    auto out = LzDecompress(LzCompress(input), input.size());
    ASSERT_TRUE(out.has_value()) << "size " << GetParam() << " alphabet " << alphabet;
    EXPECT_EQ(*out, input);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RoundTripSizeTest,
                         ::testing::Values(1, 2, 3, 7, 8, 9, 63, 64, 65, 127, 128, 129,
                                           1000, 4096, 10000));

TEST(CompressionFuzzTest, StructuredPatternsRoundTrip) {
  Rng rng(7);
  const int trials = FuzzTrials(200);
  for (int trial = 0; trial < trials; ++trial) {
    // Stitch together runs, repeats of earlier content, and noise.
    std::vector<uint8_t> input;
    int segments = 1 + static_cast<int>(rng.NextBelow(8));
    for (int s = 0; s < segments; ++s) {
      switch (rng.NextBelow(3)) {
        case 0: {  // run
          size_t n = 1 + rng.NextBelow(500);
          input.insert(input.end(), n, static_cast<uint8_t>(rng.NextBelow(256)));
          break;
        }
        case 1: {  // self-copy
          if (!input.empty()) {
            size_t start = rng.NextBelow(input.size());
            size_t n = std::min<size_t>(1 + rng.NextBelow(300), input.size() - start);
            // insert may reallocate; copy out first
            std::vector<uint8_t> chunk(input.begin() + static_cast<long>(start),
                                       input.begin() + static_cast<long>(start + n));
            input.insert(input.end(), chunk.begin(), chunk.end());
          }
          break;
        }
        default: {  // noise
          auto noise = RandomBuffer(rng, 1 + rng.NextBelow(300), 256);
          input.insert(input.end(), noise.begin(), noise.end());
        }
      }
    }
    auto out = LzDecompress(LzCompress(input), input.size());
    ASSERT_TRUE(out.has_value()) << "trial " << trial;
    ASSERT_EQ(*out, input) << "trial " << trial;
  }
}

TEST(CompressionFuzzTest, MutatedStreamsNeverCrash) {
  Rng rng(13);
  std::vector<uint8_t> input = RandomBuffer(rng, 2000, 7);
  std::vector<uint8_t> compressed = LzCompress(input);
  const int trials = FuzzTrials(500);
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<uint8_t> mutated = compressed;
    int flips = 1 + static_cast<int>(rng.NextBelow(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.NextBelow(mutated.size())] ^=
          static_cast<uint8_t>(1u << rng.NextBelow(8));
    }
    // Any outcome is fine except a crash: nullopt, or (rarely) a buffer that
    // happens to still decode to the expected size.
    auto out = LzDecompress(mutated, input.size());
    if (out.has_value()) {
      EXPECT_EQ(out->size(), input.size());
    }
  }
}

TEST(CompressionFuzzTest, TruncatedStreamsNeverCrash) {
  Rng rng(17);
  std::vector<uint8_t> input = RandomBuffer(rng, 4096, 11);
  std::vector<uint8_t> compressed = LzCompress(input);
  for (size_t cut = 0; cut < compressed.size(); cut += 7) {
    std::vector<uint8_t> truncated(compressed.begin(),
                                   compressed.begin() + static_cast<long>(cut));
    auto out = LzDecompress(truncated, input.size());
    if (out.has_value()) {
      EXPECT_EQ(out->size(), input.size());
    }
  }
}

}  // namespace
}  // namespace oasis
