#include "src/net/traffic.h"

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace oasis {
namespace {

TEST(TrafficTest, StartsEmpty) {
  TrafficAccounting t;
  EXPECT_EQ(t.NetworkTotal(), 0u);
  EXPECT_EQ(t.PartialMigrationTotal(), 0u);
  for (int c = 0; c < static_cast<int>(TrafficCategory::kCategoryCount); ++c) {
    EXPECT_EQ(t.Total(static_cast<TrafficCategory>(c)), 0u);
    EXPECT_EQ(t.Count(static_cast<TrafficCategory>(c)), 0u);
  }
}

TEST(TrafficTest, AddAccumulatesBytesAndCounts) {
  TrafficAccounting t;
  t.Add(TrafficCategory::kFullMigration, 4 * kGiB);
  t.Add(TrafficCategory::kFullMigration, 4 * kGiB);
  EXPECT_EQ(t.Total(TrafficCategory::kFullMigration), 8 * kGiB);
  EXPECT_EQ(t.Count(TrafficCategory::kFullMigration), 2u);
}

TEST(TrafficTest, MemoryUploadStaysOffTheNetwork) {
  // §4.3: SAS traffic does not reach the datacenter network.
  TrafficAccounting t;
  t.Add(TrafficCategory::kMemoryUpload, 1306 * kMiB);
  t.Add(TrafficCategory::kPartialDescriptor, 16 * kMiB);
  EXPECT_EQ(t.NetworkTotal(), 16 * kMiB);
}

TEST(TrafficTest, PartialMigrationGrouping) {
  TrafficAccounting t;
  t.Add(TrafficCategory::kPartialDescriptor, 16 * kMiB);
  t.Add(TrafficCategory::kOnDemandPages, 57 * kMiB);
  t.Add(TrafficCategory::kReintegration, 175 * kMiB);
  t.Add(TrafficCategory::kFullMigration, 4 * kGiB);
  EXPECT_EQ(t.PartialMigrationTotal(), (16 + 57 + 175) * kMiB);
}

TEST(TrafficTest, MergeAndReset) {
  TrafficAccounting a;
  TrafficAccounting b;
  a.Add(TrafficCategory::kReintegration, 100);
  b.Add(TrafficCategory::kReintegration, 200);
  b.Add(TrafficCategory::kFullMigration, 50);
  a.MergeFrom(b);
  EXPECT_EQ(a.Total(TrafficCategory::kReintegration), 300u);
  EXPECT_EQ(a.Count(TrafficCategory::kReintegration), 2u);
  EXPECT_EQ(a.Total(TrafficCategory::kFullMigration), 50u);
  a.Reset();
  EXPECT_EQ(a.NetworkTotal(), 0u);
}

TEST(TrafficTest, SummaryMentionsEveryCategory) {
  TrafficAccounting t;
  std::string s = t.Summary();
  EXPECT_NE(s.find("full-migration"), std::string::npos);
  EXPECT_NE(s.find("partial-descriptor"), std::string::npos);
  EXPECT_NE(s.find("memory-upload"), std::string::npos);
  EXPECT_NE(s.find("on-demand-pages"), std::string::npos);
  EXPECT_NE(s.find("reintegration"), std::string::npos);
}

TEST(TrafficTest, CategoryNames) {
  EXPECT_STREQ(TrafficCategoryName(TrafficCategory::kFullMigration), "full-migration");
  EXPECT_STREQ(TrafficCategoryName(TrafficCategory::kMemoryUpload), "memory-upload");
}

}  // namespace
}  // namespace oasis
