#include "src/hyper/page_auth.h"

#include <gtest/gtest.h>

namespace oasis {
namespace {

TEST(SipHashTest, KnownTestVector) {
  // The reference SipHash-2-4 test vector: key 000102...0f over the message
  // 00 01 02 ... 3e yields a well-known table; spot-check the empty input.
  AuthKey key{0x0706050403020100ull, 0x0F0E0D0C0B0A0908ull};
  EXPECT_EQ(SipHash24(key, nullptr, 0), 0x726FDB47DD0E0E31ull);
  uint8_t one = 0x00;
  EXPECT_EQ(SipHash24(key, &one, 1), 0x74F839C593DC67FDull);
}

TEST(SipHashTest, KeySensitivity) {
  std::vector<uint8_t> data = {1, 2, 3, 4, 5};
  EXPECT_NE(SipHash24(AuthKey{1, 2}, data), SipHash24(AuthKey{1, 3}, data));
  EXPECT_NE(SipHash24(AuthKey{1, 2}, data), SipHash24(AuthKey{2, 2}, data));
}

TEST(SipHashTest, MessageSensitivityAcrossLengths) {
  AuthKey key{42, 43};
  std::vector<uint8_t> data(64, 0);
  uint64_t prev = SipHash24(key, data.data(), 0);
  for (size_t len = 1; len <= 64; ++len) {
    uint64_t h = SipHash24(key, data.data(), len);
    EXPECT_NE(h, prev) << "length " << len;
    prev = h;
  }
}

TEST(KeyAuthorityTest, PerVmKeysAreDistinctAndStable) {
  KeyAuthority authority(0xDEADBEEF);
  AuthKey a1 = authority.IssueKey(1);
  AuthKey a2 = authority.IssueKey(2);
  EXPECT_NE(a1.k0, a2.k0);
  EXPECT_EQ(a1, authority.IssueKey(1));
  KeyAuthority other(0xFEEDFACE);
  EXPECT_FALSE(a1 == other.IssueKey(1));
}

class PageAuthTest : public ::testing::Test {
 protected:
  PageAuthTest() : authority_(0x5EC12E7), server_(&authority_) {
    server_.AdmitVm(7);
  }

  KeyAuthority authority_;
  AuthenticatedServer server_;
};

TEST_F(PageAuthTest, HonestExchangeSucceeds) {
  AuthenticatedClient client(7, authority_.IssueKey(7));
  AuthenticatedPageRequest request = client.MakeRequest(12345);
  ASSERT_TRUE(server_.VerifyRequest(request).ok());
  PageBytes payload(kPageSize, 0xAB);
  AuthenticatedPageResponse response = server_.MakeResponse(7, 12345, payload);
  EXPECT_TRUE(client.VerifyResponse(response).ok());
  EXPECT_EQ(server_.rejected_requests(), 0u);
}

TEST_F(PageAuthTest, RogueLanHostIsRejected) {
  // §4.3: "local area hosts can access VM memory by requesting pages from
  // the memory server" — unless requests must be authenticated.
  AuthenticatedClient rogue(7, AuthKey{1234, 5678});  // wrong key
  EXPECT_FALSE(server_.VerifyRequest(rogue.MakeRequest(0)).ok());
  EXPECT_EQ(server_.rejected_requests(), 1u);
}

TEST_F(PageAuthTest, UnknownVmIsRejected) {
  AuthenticatedClient client(9, authority_.IssueKey(9));
  EXPECT_FALSE(server_.VerifyRequest(client.MakeRequest(0)).ok());
}

TEST_F(PageAuthTest, ReplayedRequestIsRejected) {
  AuthenticatedClient client(7, authority_.IssueKey(7));
  AuthenticatedPageRequest request = client.MakeRequest(1);
  ASSERT_TRUE(server_.VerifyRequest(request).ok());
  Status replay = server_.VerifyRequest(request);
  EXPECT_FALSE(replay.ok());
  EXPECT_EQ(replay.code(), StatusCode::kInvalidArgument);
}

TEST_F(PageAuthTest, TamperedFieldsAreRejected) {
  AuthenticatedClient client(7, authority_.IssueKey(7));
  AuthenticatedPageRequest request = client.MakeRequest(100);
  request.page_number = 200;  // redirect the request to another page
  EXPECT_FALSE(server_.VerifyRequest(request).ok());
}

TEST_F(PageAuthTest, TamperedPayloadIsDetected) {
  AuthenticatedClient client(7, authority_.IssueKey(7));
  PageBytes payload(kPageSize, 0x11);
  AuthenticatedPageResponse response = server_.MakeResponse(7, 5, payload);
  response.payload[100] ^= 0xFF;
  EXPECT_FALSE(client.VerifyResponse(response).ok());
  AuthenticatedPageResponse renumbered = server_.MakeResponse(7, 5, payload);
  renumbered.page_number = 6;
  EXPECT_FALSE(client.VerifyResponse(renumbered).ok());
}

// Builds a request with an arbitrary nonce (the real client only counts
// upward), MAC'd correctly so only the freshness check can reject it.
AuthenticatedPageRequest ForgeRequest(const AuthKey& key, VmId vm, uint64_t page,
                                      uint64_t nonce) {
  std::vector<uint8_t> bytes;
  for (uint64_t field : {static_cast<uint64_t>(vm), page, nonce}) {
    for (size_t i = 0; i < 8; ++i) {
      bytes.push_back(static_cast<uint8_t>(field >> (8 * i)));
    }
  }
  AuthenticatedPageRequest request;
  request.vm = vm;
  request.page_number = page;
  request.nonce = nonce;
  request.mac = SipHash24(key, bytes);
  return request;
}

TEST_F(PageAuthTest, NonceOutsideReplayWindowIsRejectedAsStale) {
  const AuthKey key = authority_.IssueKey(7);
  const uint64_t window = AuthenticatedServer::kReplayWindow;
  ASSERT_TRUE(server_.VerifyRequest(ForgeRequest(key, 7, 1, window + 100)).ok());
  // max_seen = window + 100, so the window floor sits at nonce 100: at or
  // below it, a correctly-MAC'd request is rejected without being recorded.
  Status stale = server_.VerifyRequest(ForgeRequest(key, 7, 1, 100));
  EXPECT_FALSE(stale.ok());
  EXPECT_EQ(stale.code(), StatusCode::kInvalidArgument);
  // Just inside the window is still fresh.
  EXPECT_TRUE(server_.VerifyRequest(ForgeRequest(key, 7, 1, 101)).ok());
}

TEST_F(PageAuthTest, ReplayDetectionSurvivesWindowPrune) {
  const AuthKey key = authority_.IssueKey(7);
  const uint64_t window = AuthenticatedServer::kReplayWindow;
  // Drive enough sequential nonces to trip the amortized prune (> 2x the
  // window) several times over.
  const uint64_t last = 3 * window;
  for (uint64_t nonce = 1; nonce <= last; ++nonce) {
    ASSERT_TRUE(server_.VerifyRequest(ForgeRequest(key, 7, 1, nonce)).ok());
  }
  // A seen nonce inside the window is still caught as a replay after pruning.
  EXPECT_FALSE(server_.VerifyRequest(ForgeRequest(key, 7, 1, last - 10)).ok());
  // A pruned (pre-window) nonce is caught by the staleness check instead.
  EXPECT_FALSE(server_.VerifyRequest(ForgeRequest(key, 7, 1, window / 2)).ok());
  uint64_t rejected_before = server_.rejected_requests();
  EXPECT_EQ(rejected_before, 2u);
}

TEST_F(PageAuthTest, EvictionInvalidatesAccess) {
  AuthenticatedClient client(7, authority_.IssueKey(7));
  server_.EvictVm(7);
  EXPECT_FALSE(server_.VerifyRequest(client.MakeRequest(0)).ok());
}

}  // namespace
}  // namespace oasis
