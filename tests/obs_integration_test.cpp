// End-to-end check of the tracing acceptance criteria: running a cluster
// simulation with the global tracer enabled and exporting Chrome trace JSON
// yields (parsed back from the file) at least one planning round, one full
// migration, one partial-migration descriptor push, one memtap fault fetch,
// and one S3 suspend/resume pair.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "src/core/oasis.h"
#include "src/hyper/memory_server.h"
#include "src/hyper/memtap.h"
#include "src/obs/trace.h"
#include "tests/mini_json.h"

namespace oasis {
namespace {

using oasis::testing::JsonParser;
using oasis::testing::JsonValue;

class ObsIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::Global().SetCapacity(1 << 18);
    obs::Tracer::Global().set_enabled(true);
  }
  void TearDown() override {
    obs::Tracer::Global().set_enabled(false);
    obs::Tracer::Global().Clear();
  }
};

TEST_F(ObsIntegrationTest, ClusterRunEmitsAllRequiredSpans) {
  // A day on a small cluster with mixed activity: some users work office
  // hours (forcing full migrations of active VMs during vacates and
  // reintegrations at 9:00), the rest idle all day (partial migrations with
  // descriptor pushes; homes suspend and later resume).
  SimulationConfig config;
  config.cluster.num_home_hosts = 6;
  config.cluster.num_consolidation_hosts = 2;
  config.cluster.vms_per_home = 10;
  config.cluster.policy = ConsolidationPolicy::kFullToPartial;
  config.day = DayKind::kWeekday;
  config.seed = 20160418;
  ClusterSimulation simulation(config);
  simulation.Run();

  // One direct fault fetch (the cluster model accounts page traffic in bulk,
  // the memtap path is the per-page mechanism).
  MemoryServer server{MemoryServerConfig{}};
  server.Upload(SimTime::Zero(), /*vm=*/1, 64 * kPageSize);
  Memtap memtap(&server, /*vm=*/1, /*total_pages=*/64, /*fault_seed=*/7);
  ASSERT_TRUE(memtap.FaultIn(SimTime::Seconds(1), 5).ok());

  std::string path = ::testing::TempDir() + "/oasis_obs_integration.trace.json";
  ASSERT_TRUE(obs::Tracer::Global().ExportChromeJsonFile(path).ok());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  JsonValue root;
  ASSERT_TRUE(JsonParser::Parse(buffer.str(), &root));
  ASSERT_TRUE(root.has("traceEvents"));
  const JsonValue& events = root.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_GT(events.array.size(), 0u);

  std::set<std::string> names;
  for (const JsonValue& e : events.array) {
    ASSERT_TRUE(e.is_object());
    names.insert(e.at("name").str);
  }
  EXPECT_TRUE(names.count("planning_round")) << "no planning round span";
  EXPECT_TRUE(names.count("full_migration")) << "no full migration span";
  EXPECT_TRUE(names.count("descriptor_push")) << "no descriptor push span";
  EXPECT_TRUE(names.count("fault_fetch")) << "no memtap fault fetch span";
  EXPECT_TRUE(names.count("s3_suspend")) << "no S3 suspend span";
  EXPECT_TRUE(names.count("s3_resume")) << "no S3 resume span";

  std::remove(path.c_str());
}

}  // namespace
}  // namespace oasis
