// Metamorphic properties of the datacenter shard runner — the whole-system
// counterpart of tests/dc_test.cpp's synthetic-timeline units.
//
// The properties are phrased as digest equalities over real rack-day
// simulations (tests/metric_digest.h for per-rack metrics, the ledger's own
// Digest() for the merged view):
//
//   * OASIS_JOBS identity: ShardRunner(1) and ShardRunner(4) produce
//     bit-identical rack results, coordinator stats, and merged ledger;
//   * rack-permutation invariance: shuffling the result array changes
//     nothing downstream (coordinator sweep, ledger, digest);
//   * coordinator-off decomposition: with the drain tier off, the
//     datacenter is exactly the sum of independent rack simulations.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/core/oasis.h"
#include "src/dc/coordinator.h"
#include "src/dc/ledger.h"
#include "src/dc/runner.h"
#include "src/dc/topology.h"
#include "tests/metric_digest.h"

namespace oasis {
namespace dc {
namespace {

// Small but fully featured: two pods, faults on, cap windows on — every
// coordinator code path can trigger, and a rack day stays ~milliseconds.
DatacenterConfig SmallDatacenter() {
  DatacenterConfig config;
  config.total_racks = 4;
  config.racks_per_pod = 2;
  config.rack.home_hosts = 4;
  config.rack.consolidation_hosts = 2;
  config.rack.vms_per_home = 5;
  config.rack.fault.enabled = true;
  config.rack.fault.host_crash_per_hour = 0.02;
  config.coordinator.rack_power_cap_watts = 3200.0;
  config.coordinator.cap_events_per_rack_day = 0.25;
  return config;
}

DatacenterRun RunSmall(const DatacenterConfig& config, int jobs) {
  StatusOr<DatacenterTopology> topology = DatacenterTopology::Build(config);
  EXPECT_TRUE(topology.ok()) << topology.status().message();
  return ShardRunner(jobs).Run(topology.value());
}

uint64_t LedgerDigest(const DatacenterRun& run) {
  const GlobalCoordinator coordinator(run.config.coordinator);
  return DatacenterLedger::Build(run, coordinator.Coordinate(run)).Digest();
}

TEST(DcMetamorphicTest, JobsOneAndFourProduceIdenticalResults) {
  const DatacenterConfig config = SmallDatacenter();
  DatacenterRun serial = RunSmall(config, 1);
  DatacenterRun parallel = RunSmall(config, 4);

  ASSERT_EQ(serial.racks.size(), parallel.racks.size());
  for (size_t i = 0; i < serial.racks.size(); ++i) {
    EXPECT_EQ(serial.racks[i].rack, parallel.racks[i].rack);
    EXPECT_EQ(serial.racks[i].seed, parallel.racks[i].seed);
    EXPECT_EQ(testing::DigestMetrics(serial.racks[i].metrics),
              testing::DigestMetrics(parallel.racks[i].metrics))
        << "rack " << serial.racks[i].rack << " diverged across job counts";
  }
  // The merged view — ledger rows, totals, and all coordinator counters —
  // folds to the same digest.
  EXPECT_EQ(LedgerDigest(serial), LedgerDigest(parallel));
}

TEST(DcMetamorphicTest, MergedLedgerIsInvariantUnderRackPermutation) {
  DatacenterRun run = RunSmall(SmallDatacenter(), 2);
  const uint64_t reference = LedgerDigest(run);

  DatacenterRun reversed = run;
  std::reverse(reversed.racks.begin(), reversed.racks.end());
  EXPECT_EQ(LedgerDigest(reversed), reference);

  // An interior swap as well, so the property is not just about reversal.
  DatacenterRun swapped = run;
  std::swap(swapped.racks[1], swapped.racks[2]);
  EXPECT_EQ(LedgerDigest(swapped), reference);
}

TEST(DcMetamorphicTest, CoordinatorOffEqualsSumOfIndependentRackRuns) {
  DatacenterConfig config = SmallDatacenter();
  config.coordinator.mode = CoordinatorMode::kOff;
  config.coordinator.rack_power_cap_watts = 0.0;
  config.coordinator.cap_events_per_rack_day = 0.0;

  StatusOr<DatacenterTopology> topology = DatacenterTopology::Build(config);
  ASSERT_TRUE(topology.ok()) << topology.status().message();
  DatacenterRun run = ShardRunner(2).Run(topology.value());

  // Each rack, simulated on its own from the spec the topology handed out,
  // reproduces the shard's result exactly: the runner adds nothing and the
  // racks share nothing.
  double energy_sum = 0.0;
  ASSERT_EQ(run.racks.size(), topology.value().racks().size());
  for (size_t i = 0; i < run.racks.size(); ++i) {
    const RackSpec& spec = topology.value().racks()[i];
    SimulationResult independent = ClusterSimulation(spec.sim).Run();
    EXPECT_EQ(testing::DigestMetrics(run.racks[i].metrics),
              testing::DigestMetrics(independent.metrics))
        << "rack " << spec.rack << " is not independent";
    energy_sum += independent.metrics.TotalEnergy();
  }

  const GlobalCoordinator coordinator(config.coordinator);
  CoordinatorStats stats = coordinator.Coordinate(run);
  EXPECT_EQ(stats.drains_started, 0u);
  EXPECT_EQ(stats.energy_saved, 0.0);

  DatacenterLedger ledger = DatacenterLedger::Build(run, stats);
  EXPECT_DOUBLE_EQ(ledger.total_energy, energy_sum);
  EXPECT_DOUBLE_EQ(ledger.CoordinatedSavings(), ledger.LocalSavings());
}

}  // namespace
}  // namespace dc
}  // namespace oasis
