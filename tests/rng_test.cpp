#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace oasis {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBelowInRangeAndRoughlyUniform) {
  Rng rng(7);
  std::vector<int> buckets(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    uint64_t v = rng.NextBelow(10);
    ASSERT_LT(v, 10u);
    ++buckets[v];
  }
  for (int b : buckets) {
    EXPECT_NEAR(b, n / 10, n / 100);  // within 10% relative
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(RngTest, NextRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextRange(-3.0, 7.0);
    ASSERT_GE(d, -3.0);
    ASSERT_LT(d, 7.0);
  }
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(11);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian(10.0, 3.0);
    sum += g;
    sum2 += g * g;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double e = rng.NextExponential(42.0);
    ASSERT_GE(e, 0.0);
    sum += e;
  }
  EXPECT_NEAR(sum / n, 42.0, 0.8);
}

TEST(RngTest, BoundedParetoStaysInBounds) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    double p = rng.NextBoundedPareto(1.5, 2.0, 100.0);
    ASSERT_GE(p, 2.0);
    ASSERT_LE(p, 100.0);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkedStreamsAreDecorrelated) {
  Rng parent(31);
  Rng child1 = parent.Fork();
  Rng child2 = parent.Fork();
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(child1.NextU64());
    seen.insert(child2.NextU64());
  }
  EXPECT_EQ(seen.size(), 200u);
}

}  // namespace
}  // namespace oasis
