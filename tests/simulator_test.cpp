#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace oasis {
namespace {

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::Zero());
  std::vector<double> times;
  sim.ScheduleAfter(SimTime::Seconds(5), [&] { times.push_back(sim.now().seconds()); });
  sim.ScheduleAfter(SimTime::Seconds(2), [&] { times.push_back(sim.now().seconds()); });
  sim.RunToCompletion();
  EXPECT_EQ(times, (std::vector<double>{2.0, 5.0}));
  EXPECT_EQ(sim.now(), SimTime::Seconds(5));
}

TEST(SimulatorTest, EventsScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      sim.ScheduleAfter(SimTime::Seconds(1), recurse);
    }
  };
  sim.ScheduleAfter(SimTime::Seconds(1), recurse);
  sim.RunToCompletion();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), SimTime::Seconds(5));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  bool late_ran = false;
  bool on_time_ran = false;
  sim.ScheduleAfter(SimTime::Seconds(1), [&] { on_time_ran = true; });
  sim.ScheduleAfter(SimTime::Seconds(10), [&] { late_ran = true; });
  sim.RunUntil(SimTime::Seconds(5));
  EXPECT_TRUE(on_time_ran);
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(sim.now(), SimTime::Seconds(5));
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, RunUntilIncludesDeadlineEvents) {
  Simulator sim;
  bool ran = false;
  sim.ScheduleAfter(SimTime::Seconds(5), [&] { ran = true; });
  sim.RunUntil(SimTime::Seconds(5));
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, RunUntilAdvancesClockWithNoEvents) {
  Simulator sim;
  sim.RunUntil(SimTime::Hours(24));
  EXPECT_EQ(sim.now(), SimTime::Hours(24));
}

TEST(SimulatorTest, CancelScheduledEvent) {
  Simulator sim;
  bool ran = false;
  EventId id = sim.ScheduleAfter(SimTime::Seconds(1), [&] { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.RunToCompletion();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.ScheduleAfter(SimTime::Seconds(1), [&] { ++count; });
  sim.ScheduleAfter(SimTime::Seconds(2), [&] { ++count; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, PeriodicTaskFiresUntilCancelled) {
  Simulator sim;
  std::vector<double> fires;
  auto handle = sim.SchedulePeriodic(SimTime::Seconds(1), SimTime::Seconds(2),
                                     [&](SimTime t) { fires.push_back(t.seconds()); });
  sim.ScheduleAfter(SimTime::Seconds(6), [&] { handle.Cancel(); });
  sim.RunUntil(SimTime::Seconds(20));
  EXPECT_EQ(fires, (std::vector<double>{1.0, 3.0, 5.0}));
}

TEST(SimulatorTest, PeriodicTaskCanCancelItself) {
  Simulator sim;
  int fires = 0;
  Simulator::PeriodicHandle handle;
  handle = sim.SchedulePeriodic(SimTime::Seconds(1), SimTime::Seconds(1), [&](SimTime) {
    if (++fires == 3) {
      handle.Cancel();
    }
  });
  sim.RunUntil(SimTime::Seconds(100));
  EXPECT_EQ(fires, 3);
}

TEST(SimulatorTest, ScheduleAtAbsoluteTime) {
  Simulator sim;
  double seen = -1.0;
  sim.ScheduleAt(SimTime::Seconds(42), [&] { seen = sim.now().seconds(); });
  sim.RunToCompletion();
  EXPECT_DOUBLE_EQ(seen, 42.0);
}

}  // namespace
}  // namespace oasis
