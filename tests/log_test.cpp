#include "src/common/log.h"

#include <gtest/gtest.h>

namespace oasis {
namespace {

// Restores the global log level around each test.
class LogTest : public ::testing::Test {
 protected:
  LogTest() : saved_(GetLogLevel()) {}
  ~LogTest() override { SetLogLevel(saved_); }

  LogLevel saved_;
};

TEST_F(LogTest, DefaultLevelIsWarning) {
  // The library must not chatter unless asked.
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

TEST_F(LogTest, SetAndGetRoundTrip) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kOff);
  EXPECT_EQ(GetLogLevel(), LogLevel::kOff);
}

TEST_F(LogTest, MacroCompilesAndStreams) {
  SetLogLevel(LogLevel::kOff);  // silence output, exercise the path
  OASIS_LOG(kInfo) << "value=" << 42 << " host=" << std::string("h1");
  OASIS_LOG(kError) << "still fine";
  SUCCEED();
}

TEST_F(LogTest, BelowThresholdShortCircuits) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "expensive";
  };
  OASIS_LOG(kDebug) << expensive();
  EXPECT_EQ(evaluations, 0);  // the stream expression never ran
  SetLogLevel(LogLevel::kOff);
  OASIS_LOG(kError) << expensive();
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
}  // namespace oasis
