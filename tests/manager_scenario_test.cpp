// Scenario-level cluster-manager tests: migration aborts, drains, swaps,
// capacity exhaustion, and invariants under parameterized cluster shapes.

#include <gtest/gtest.h>

#include "src/cluster/manager.h"
#include "src/trace/trace_generator.h"

namespace oasis {
namespace {

TraceSet IdleTrace(int users) { return TraceSet(static_cast<size_t>(users), UserDay{}); }

// Activates `user` for [from, to) intervals.
void Activate(TraceSet& trace, int user, int from, int to) {
  for (int i = from; i < to && i < kIntervalsPerDay; ++i) {
    trace[static_cast<size_t>(user)].SetActive(i, true);
  }
}

TEST(ManagerScenarioTest, QueuedPartialMigrationAbortsWhenUserReturns) {
  // One dense home host: vacating its 45 idle VMs takes 45 x 7.2 s = 324 s,
  // longer than one planning interval. A VM near the end of the queue whose
  // user returns at the next interval has not been suspended yet — the move
  // aborts and the user sees zero delay.
  ClusterConfig config;
  config.num_home_hosts = 1;
  config.num_consolidation_hosts = 2;
  config.SetVmsPerHome(45);
  config.policy = ConsolidationPolicy::kFullToPartial;
  TraceSet trace = IdleTrace(45);
  Activate(trace, 44, 1, 4);  // back 5 minutes after the vacate starts

  ClusterManager manager(config, trace);
  ClusterMetrics m = manager.Run();
  ASSERT_GT(m.transition_delay_s.count(), 0u);
  // The returning user waited nothing: the queued migration was cancelled
  // (or, had the VM already moved, it converted in place within seconds).
  EXPECT_LT(m.transition_delay_s.Quantile(0.5), 4.0);
  EXPECT_LT(m.transition_delay_s.Max(), 30.0);
}

TEST(ManagerScenarioTest, CapacityExhaustionReturnsWholeHomeGroup) {
  // A consolidation host too small to hold a converting VM forces the
  // §3.2 Default fallback: wake the home, return all its VMs.
  ClusterConfig config;
  config.num_home_hosts = 2;
  config.num_consolidation_hosts = 1;
  config.vms_per_home = 10;
  config.host_memory_bytes = 44 * kGiB;  // fits 10 x 4 GiB + working sets, barely
  config.policy = ConsolidationPolicy::kDefault;
  TraceSet trace = IdleTrace(20);
  // Overnight everyone idles; at 09:00 twelve users come back at once and
  // their in-place conversions (4 GiB each) exhaust the 44 GiB host.
  for (int u = 0; u < 12; ++u) {
    Activate(trace, u, IntervalAt(9.0), IntervalAt(17.0));
  }
  ClusterManager manager(config, trace);
  ClusterMetrics m = manager.Run();
  EXPECT_GT(m.capacity_exhaustions, 0u);
  EXPECT_GT(m.reintegrations, 0u);
  // Whatever happened, no active VM may end up without full resources.
  for (size_t v = 0; v < manager.num_vms(); ++v) {
    const VmSlot& vm = manager.GetVm(static_cast<VmId>(v));
    if (vm.activity == VmActivity::kActive && !vm.migration_in_flight) {
      EXPECT_NE(vm.residency, VmResidency::kPartial) << "vm " << v;
    }
  }
}

TEST(ManagerScenarioTest, FullToPartialSwapRecyclesConsolidationMemory) {
  // A user active overnight gets vacated in full; when they stop at 02:00,
  // FulltoPartial returns the VM home and re-consolidates it partially,
  // freeing most of its reservation.
  ClusterConfig config;
  config.num_home_hosts = 2;
  config.num_consolidation_hosts = 1;
  config.vms_per_home = 5;
  config.policy = ConsolidationPolicy::kFullToPartial;
  TraceSet trace = IdleTrace(10);
  Activate(trace, 0, 0, IntervalAt(2.0));

  ClusterManager manager(config, trace);
  ClusterMetrics m = manager.Run();
  EXPECT_GT(m.full_to_partial_swaps, 0u);
  // By the end of the day the VM is partial again.
  EXPECT_EQ(manager.GetVm(0).residency, VmResidency::kPartial);
  // Default would have left it parked in full; here the reservation shrank.
  EXPECT_LT(manager.GetVm(0).ws_bytes, 1 * kGiB);
}

TEST(ManagerScenarioTest, DefaultLeavesIdleFullVmsParked) {
  ClusterConfig config;
  config.num_home_hosts = 2;
  config.num_consolidation_hosts = 1;
  config.vms_per_home = 5;
  config.policy = ConsolidationPolicy::kDefault;
  TraceSet trace = IdleTrace(10);
  Activate(trace, 0, 0, IntervalAt(2.0));

  ClusterManager manager(config, trace);
  ClusterMetrics m = manager.Run();
  EXPECT_EQ(m.full_to_partial_swaps, 0u);
  EXPECT_EQ(manager.GetVm(0).residency, VmResidency::kFullAtConsolidation);
}

TEST(ManagerScenarioTest, DrainCollapsesConsolidationHosts) {
  // Plenty of consolidation hosts for few VMs: after the initial spread the
  // drain step should concentrate the partials and let the spares sleep.
  ClusterConfig config;
  config.num_home_hosts = 4;
  config.num_consolidation_hosts = 4;
  config.vms_per_home = 8;
  config.policy = ConsolidationPolicy::kFullToPartial;
  ClusterManager manager(config, IdleTrace(32));
  ClusterMetrics m = manager.Run();
  // 32 partial working sets (~165 MiB each) fit one host with ease.
  EXPECT_EQ(m.timeline.back().powered_consolidation_hosts, 1);
}

TEST(ManagerScenarioTest, NewHomeMovesInsteadOfWakingHome) {
  // NewHome: when a conversion would not fit, the VM moves to another
  // *currently powered* consolidation host instead of waking its home. That
  // situation needs both consolidation hosts busy, so this scenario uses a
  // mid-sized cluster under a realistic diurnal trace.
  ClusterConfig config;
  config.num_home_hosts = 12;
  config.num_consolidation_hosts = 2;
  config.vms_per_home = 30;
  config.policy = ConsolidationPolicy::kNewHome;
  config.seed = 7;
  TraceGenerator gen(TraceGeneratorConfig{}, 11);
  ClusterManager manager(config, gen.GenerateTraceSet(config.TotalVms(), DayKind::kWeekday));
  ClusterMetrics m = manager.Run();
  EXPECT_GT(m.new_home_moves, 0u);
  // NewHome only refines the fallback; exhaustion returns still occur when
  // no powered host has room.
  EXPECT_GT(m.capacity_exhaustions, 0u);
}

TEST(ManagerScenarioTest, ResumeStormUnderWolLossStaysBoundedAndLosesNoVm) {
  // The 09:00 storm with a lossy wake path: every home wakes at once while
  // WoL packets drop and S3 resumes hang. The recovery policy (re-send on a
  // timeout, watchdog on the hang) bounds the extra user-visible delay by
  // max_wol_retries * wol_retry_timeout + resume_watchdog per wake, and no
  // VM may be lost or left partial while its user is active.
  ClusterConfig config;
  config.num_home_hosts = 6;
  config.num_consolidation_hosts = 2;
  config.vms_per_home = 8;
  config.policy = ConsolidationPolicy::kFullToPartial;
  TraceSet trace = IdleTrace(48);
  for (int u = 0; u < 48; ++u) {
    Activate(trace, u, IntervalAt(9.0), IntervalAt(17.0));
  }
  ClusterMetrics control = ClusterManager(config, trace).Run();

  ClusterConfig lossy = config;
  lossy.fault.enabled = true;
  lossy.fault.wol_loss_probability = 0.4;
  lossy.fault.resume_hang_probability = 0.25;
  ClusterManager manager(lossy, trace);
  ClusterMetrics m = manager.Run();

  const FaultInjector& injector = manager.fault_injector();
  EXPECT_GT(injector.injected(FaultClass::kWolLoss), 0u);
  EXPECT_GT(injector.injected(FaultClass::kResumeHang), 0u);
  EXPECT_EQ(m.faults_injected, m.faults_recovered);

  // Bounded: a wake can lose at most max_wol_retries packets and hang once,
  // so no transition stretches beyond the fault-free one by more than that.
  double worst_wake_penalty_s =
      lossy.fault.max_wol_retries * lossy.fault.wol_retry_timeout.seconds() +
      lossy.fault.resume_watchdog.seconds();
  ASSERT_GT(m.transition_delay_s.count(), 0u);
  EXPECT_LE(m.transition_delay_s.Max(),
            control.transition_delay_s.Max() + worst_wake_penalty_s + 0.5);

  // Zero lost VMs: census intact and no active VM stranded partial.
  size_t census = 0;
  for (size_t h = 0; h < manager.num_hosts(); ++h) {
    census += manager.GetHost(static_cast<HostId>(h)).vms().size();
  }
  EXPECT_EQ(census, static_cast<size_t>(config.TotalVms()));
  for (size_t v = 0; v < manager.num_vms(); ++v) {
    const VmSlot& vm = manager.GetVm(static_cast<VmId>(v));
    EXPECT_TRUE(manager.GetHost(vm.location).vms().count(vm.id)) << "vm " << v;
    if (vm.activity == VmActivity::kActive && !vm.migration_in_flight) {
      EXPECT_NE(vm.residency, VmResidency::kPartial) << "vm " << v;
    }
  }
}

struct ShapeParam {
  int homes;
  int vms;
  int cons;
  ConsolidationPolicy policy;
};

class ManagerShapeTest : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(ManagerShapeTest, InvariantsHoldForRealisticDay) {
  ShapeParam param = GetParam();
  ClusterConfig config;
  config.num_home_hosts = param.homes;
  config.num_consolidation_hosts = param.cons;
  config.vms_per_home = param.vms;
  config.policy = param.policy;
  config.seed = 99;
  TraceGenerator gen(TraceGeneratorConfig{}, 31);
  ClusterManager manager(config, gen.GenerateTraceSet(config.TotalVms(), DayKind::kWeekday));
  ClusterMetrics m = manager.Run();

  // Energy sanity.
  EXPECT_GT(m.TotalEnergy(), 0.0);
  EXPECT_LT(m.TotalEnergy(), m.baseline_energy * 1.5);
  // Capacity: no host over-reserved (the assert would have fired too).
  for (size_t h = 0; h < manager.num_hosts(); ++h) {
    EXPECT_LE(manager.GetHost(static_cast<HostId>(h)).reserved_bytes(),
              manager.GetHost(static_cast<HostId>(h)).capacity_bytes());
  }
  // Location/membership coherence.
  for (size_t v = 0; v < manager.num_vms(); ++v) {
    const VmSlot& vm = manager.GetVm(static_cast<VmId>(v));
    EXPECT_TRUE(manager.GetHost(vm.location).vms().count(vm.id));
  }
  // Delay distribution sanity.
  if (m.transition_delay_s.count() > 0) {
    EXPECT_GE(m.transition_delay_s.Min(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ManagerShapeTest,
    ::testing::Values(ShapeParam{2, 4, 1, ConsolidationPolicy::kOnlyPartial},
                      ShapeParam{5, 10, 2, ConsolidationPolicy::kDefault},
                      ShapeParam{8, 12, 3, ConsolidationPolicy::kFullToPartial},
                      ShapeParam{8, 12, 3, ConsolidationPolicy::kNewHome},
                      ShapeParam{12, 6, 2, ConsolidationPolicy::kFullToPartial},
                      ShapeParam{3, 30, 4, ConsolidationPolicy::kFullToPartial}),
    [](const auto& suite_info) {
      return std::string(ConsolidationPolicyName(suite_info.param.policy)) + "_" +
             std::to_string(suite_info.param.homes) + "x" + std::to_string(suite_info.param.vms) + "_" +
             std::to_string(suite_info.param.cons);
    });

TEST(ManagerScenarioTest, CpuCapBindsWhenConfiguredTight) {
  // With no CPU over-subscription and 4-core hosts, a consolidation host may
  // execute at most 4 active VMs even though 128 GiB fits 32 of them.
  ClusterConfig config;
  config.num_home_hosts = 2;
  config.num_consolidation_hosts = 1;
  config.vms_per_home = 6;
  config.host_cores = 4;
  config.cpu_overcommit = 1.0;
  config.policy = ConsolidationPolicy::kFullToPartial;
  TraceSet trace(12, UserDay{});
  for (int u = 0; u < 12; ++u) {
    for (int i = 0; i < kIntervalsPerDay; ++i) {
      trace[static_cast<size_t>(u)].SetActive(i, true);
    }
  }
  ClusterManager manager(config, trace);
  ClusterMetrics m = manager.Run();
  // 12 always-active VMs cannot be consolidated onto one 4-slot host, and a
  // vacate is all-or-nothing per home: nothing moves.
  EXPECT_EQ(m.full_migrations, 0u);
  EXPECT_NEAR(m.EnergySavings(), 0.0, 0.08);
  // The same cluster with the paper's 3x over-subscription consolidates.
  config.cpu_overcommit = 3.0;
  ClusterManager relaxed(config, trace);
  EXPECT_GT(relaxed.Run().full_migrations, 0u);
}

TEST(ManagerScenarioTest, OvercommitRaisesConsolidationCapacity) {
  ClusterConfig tight;
  tight.num_home_hosts = 4;
  tight.num_consolidation_hosts = 1;
  tight.vms_per_home = 10;
  tight.host_memory_bytes = 44 * kGiB;
  tight.policy = ConsolidationPolicy::kFullToPartial;
  ClusterConfig loose = tight;
  loose.memory_overcommit = 1.5;
  TraceSet trace = IdleTrace(40);
  for (int u = 0; u < 12; ++u) {
    Activate(trace, u, IntervalAt(9.0), IntervalAt(17.0));
  }
  ClusterMetrics m_tight = ClusterManager(tight, trace).Run();
  ClusterMetrics m_loose = ClusterManager(loose, trace).Run();
  EXPECT_GE(m_loose.EnergySavings(), m_tight.EnergySavings());
}

}  // namespace
}  // namespace oasis
