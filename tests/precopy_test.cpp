#include "src/hyper/precopy.h"

#include <gtest/gtest.h>

namespace oasis {
namespace {

TEST(PrecopyTest, QuietVmConvergesQuickly) {
  PrecopyConfig config;
  config.dirty_bytes_per_sec = 0.0;
  PrecopyResult r = SimulatePrecopyMigration(4 * kGiB, config);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.rounds.size(), 1u);  // one full round, nothing dirtied
  EXPECT_EQ(r.total_bytes, 4 * kGiB);
  EXPECT_NEAR(r.total_duration.seconds(),
              4.0 * kGiB / kGigEBytesPerSec + config.control_overhead.seconds(), 0.1);
}

TEST(PrecopyTest, DirtyingAddsRoundsAndBytes) {
  PrecopyConfig quiet;
  quiet.dirty_bytes_per_sec = 0.0;
  PrecopyConfig busy;
  busy.dirty_bytes_per_sec = 24.0 * kMiB;
  PrecopyResult r_quiet = SimulatePrecopyMigration(4 * kGiB, quiet);
  PrecopyResult r_busy = SimulatePrecopyMigration(4 * kGiB, busy);
  EXPECT_GT(r_busy.rounds.size(), r_quiet.rounds.size());
  EXPECT_GT(r_busy.total_bytes, r_quiet.total_bytes);
  EXPECT_GT(r_busy.total_duration, r_quiet.total_duration);
}

TEST(PrecopyTest, RoundsShrinkGeometrically) {
  PrecopyConfig config;  // 12 MiB/s dirty on ~117 MiB/s link
  PrecopyResult r = SimulatePrecopyMigration(4 * kGiB, config);
  ASSERT_GE(r.rounds.size(), 2u);
  for (size_t i = 1; i < r.rounds.size(); ++i) {
    EXPECT_LT(r.rounds[i].bytes_sent, r.rounds[i - 1].bytes_sent);
  }
  EXPECT_TRUE(r.converged);
}

TEST(PrecopyTest, DowntimeIsSmallWhenConverged) {
  PrecopyConfig config;
  PrecopyResult r = SimulatePrecopyMigration(4 * kGiB, config);
  ASSERT_TRUE(r.converged);
  // "Live" migration: downtime well under a second.
  EXPECT_LT(r.downtime.seconds(), 1.0);
  EXPECT_LT(r.downtime, r.total_duration);
}

TEST(PrecopyTest, HotVmHitsRoundBudget) {
  PrecopyConfig config;
  config.dirty_bytes_per_sec = config.link_bytes_per_sec * 2.0;  // dirties faster than link
  PrecopyResult r = SimulatePrecopyMigration(1 * kGiB, config);
  EXPECT_FALSE(r.converged);
  // Downtime degenerates toward a full stop-and-copy.
  EXPECT_GT(r.downtime.seconds(), 1.0);
}

TEST(PrecopyTest, CalibratesTheTestbed41Seconds) {
  // §4.4.2: a 4 GiB desktop VM over GigE live-migrates in ~41 s. A ~16 MiB/s
  // effective dirty rate (idling multitasking desktop) lands right there.
  PrecopyConfig config;
  config.dirty_bytes_per_sec = 16.0 * kMiB;
  PrecopyResult r = SimulatePrecopyMigration(4 * kGiB, config);
  EXPECT_NEAR(r.total_duration.seconds(), 41.0, 3.0);
}

TEST(PrecopyTest, ClusterTenSecondAssumptionIsConservative) {
  // §5.1 assumes 10 s per 4 GiB over 10 GigE (a figure from inter-rack
  // measurements with switch contention); an uncontended 10 GigE precopy
  // finishes faster, so the fixed cluster timing is conservative.
  PrecopyConfig config;
  config.link_bytes_per_sec = kTenGigEBytesPerSec;
  config.dirty_bytes_per_sec = 24.0 * kMiB;
  PrecopyResult r = SimulatePrecopyMigration(4 * kGiB, config);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.total_duration.seconds(), 10.0);
}

TEST(PrecopyTest, EffectiveThroughputBelowLineRate) {
  PrecopyConfig config;
  double effective = EffectivePrecopyBytesPerSec(4 * kGiB, config);
  EXPECT_LT(effective, config.link_bytes_per_sec);
  EXPECT_GT(effective, config.link_bytes_per_sec * 0.5);
}

class PrecopyDirtyRateTest : public ::testing::TestWithParam<double> {};

TEST_P(PrecopyDirtyRateTest, MonotoneInDirtyRate) {
  PrecopyConfig slow;
  slow.dirty_bytes_per_sec = GetParam() * kMiB;
  PrecopyConfig fast = slow;
  fast.dirty_bytes_per_sec *= 2.0;
  PrecopyResult r_slow = SimulatePrecopyMigration(2 * kGiB, slow);
  PrecopyResult r_fast = SimulatePrecopyMigration(2 * kGiB, fast);
  EXPECT_LE(r_slow.total_duration, r_fast.total_duration);
  EXPECT_LE(r_slow.total_bytes, r_fast.total_bytes);
}

// Rates stay below half the link rate: once dirtying outpaces the link the
// algorithm gives up early by design, which legitimately breaks monotonicity.
INSTANTIATE_TEST_SUITE_P(Rates, PrecopyDirtyRateTest,
                         ::testing::Values(1.0, 4.0, 12.0, 30.0));

}  // namespace
}  // namespace oasis
