#include "src/cluster/idleness.h"

#include <gtest/gtest.h>

namespace oasis {
namespace {

constexpr SimTime kInterval = SimTime::Minutes(5);

uint64_t MibPerMin(double rate) { return MiBToBytes(rate * kInterval.minutes()); }

TEST(IdlenessDetectorTest, StartsActive) {
  DirtyRateIdlenessDetector detector;
  EXPECT_EQ(detector.activity(), VmActivity::kActive);
  EXPECT_EQ(detector.transitions(), 0);
}

TEST(IdlenessDetectorTest, NeedsConsecutiveQuietIntervalsToGoIdle) {
  DirtyRateIdlenessDetector detector;  // idle after 2 quiet intervals
  EXPECT_EQ(detector.Observe(MibPerMin(1.2), kInterval), VmActivity::kActive);
  EXPECT_EQ(detector.Observe(MibPerMin(1.2), kInterval), VmActivity::kIdle);
  EXPECT_EQ(detector.transitions(), 1);
}

TEST(IdlenessDetectorTest, FlickerDoesNotTriggerIdle) {
  DirtyRateIdlenessDetector detector;
  detector.Observe(MibPerMin(1.0), kInterval);   // quiet
  detector.Observe(MibPerMin(30.0), kInterval);  // burst resets the streak
  detector.Observe(MibPerMin(1.0), kInterval);   // quiet again
  EXPECT_EQ(detector.activity(), VmActivity::kActive);
  detector.Observe(MibPerMin(1.0), kInterval);
  EXPECT_EQ(detector.activity(), VmActivity::kIdle);
}

TEST(IdlenessDetectorTest, ReactivatesImmediatelyByDefault) {
  DirtyRateIdlenessDetector detector;
  detector.Observe(MibPerMin(0.5), kInterval);
  detector.Observe(MibPerMin(0.5), kInterval);
  ASSERT_EQ(detector.activity(), VmActivity::kIdle);
  // A single busy interval flips it back: users must not wait.
  EXPECT_EQ(detector.Observe(MibPerMin(50.0), kInterval), VmActivity::kActive);
  EXPECT_EQ(detector.transitions(), 2);
}

TEST(IdlenessDetectorTest, ThresholdSeparatesBackgroundChurnFromUsers) {
  // Idle desktops churn ~1.2 MiB/min (§4.4.1 background tasks); an active
  // user dirties tens (§4.4.3: ~8.8 MiB/min while merely consolidated).
  IdlenessDetectorConfig config;
  DirtyRateIdlenessDetector detector(config);
  detector.Observe(MibPerMin(1.2), kInterval);
  detector.Observe(MibPerMin(1.2), kInterval);
  EXPECT_EQ(detector.activity(), VmActivity::kIdle);
  detector.Observe(MibPerMin(8.8), kInterval);
  EXPECT_EQ(detector.activity(), VmActivity::kActive);
}

TEST(IdlenessDetectorTest, CustomHysteresis) {
  IdlenessDetectorConfig config;
  config.idle_intervals = 4;
  config.active_intervals = 2;
  DirtyRateIdlenessDetector detector(config);
  for (int i = 0; i < 3; ++i) {
    detector.Observe(0, kInterval);
  }
  EXPECT_EQ(detector.activity(), VmActivity::kActive);
  detector.Observe(0, kInterval);
  EXPECT_EQ(detector.activity(), VmActivity::kIdle);
  detector.Observe(MibPerMin(99), kInterval);
  EXPECT_EQ(detector.activity(), VmActivity::kIdle);  // needs 2 busy samples
  detector.Observe(MibPerMin(99), kInterval);
  EXPECT_EQ(detector.activity(), VmActivity::kActive);
}

TEST(IdlenessDetectorTest, StartIdleSeed) {
  DirtyRateIdlenessDetector detector(IdlenessDetectorConfig{}, VmActivity::kIdle);
  EXPECT_EQ(detector.activity(), VmActivity::kIdle);
  EXPECT_EQ(detector.Observe(MibPerMin(50.0), kInterval), VmActivity::kActive);
}

class IdlenessThresholdTest : public ::testing::TestWithParam<double> {};

TEST_P(IdlenessThresholdTest, RatesBelowThresholdEventuallyIdle) {
  IdlenessDetectorConfig config;
  config.idle_threshold_mib_per_min = GetParam();
  DirtyRateIdlenessDetector detector(config);
  for (int i = 0; i < 5; ++i) {
    detector.Observe(MibPerMin(GetParam() * 0.9), kInterval);
  }
  EXPECT_EQ(detector.activity(), VmActivity::kIdle);
  for (int i = 0; i < 5; ++i) {
    detector.Observe(MibPerMin(GetParam() * 1.1), kInterval);
  }
  EXPECT_EQ(detector.activity(), VmActivity::kActive);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, IdlenessThresholdTest,
                         ::testing::Values(0.5, 2.0, 4.0, 10.0));

}  // namespace
}  // namespace oasis
