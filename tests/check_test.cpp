// The invariant checker itself: OASIS_CHECK parsing, recording semantics,
// the process-wide install gate, the power-state transition legality hook,
// and the strict-mode exit contract (a seeded violation must turn into a
// non-zero process exit with a structured stderr report — the acceptance
// test for the whole subsystem).

#include "src/check/check.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/power/energy_meter.h"

namespace oasis {
namespace {

using check::CheckConfig;
using check::CheckMode;
using check::CheckScope;
using check::InvariantChecker;
using check::Violation;

CheckConfig ParseEnv(const char* value) {
  if (value == nullptr) {
    unsetenv("OASIS_CHECK");
  } else {
    setenv("OASIS_CHECK", value, 1);
  }
  CheckConfig config = CheckConfig::FromEnv();
  unsetenv("OASIS_CHECK");
  return config;
}

TEST(CheckConfigTest, FromEnvParsesEverySpelling) {
  EXPECT_EQ(ParseEnv(nullptr).mode, CheckMode::kOff);
  EXPECT_EQ(ParseEnv("").mode, CheckMode::kOff);
  EXPECT_EQ(ParseEnv("0").mode, CheckMode::kOff);
  EXPECT_EQ(ParseEnv("off").mode, CheckMode::kOff);
  EXPECT_EQ(ParseEnv("1").mode, CheckMode::kWarn);
  EXPECT_EQ(ParseEnv("on").mode, CheckMode::kWarn);
  EXPECT_EQ(ParseEnv("warn").mode, CheckMode::kWarn);
  EXPECT_EQ(ParseEnv("2").mode, CheckMode::kStrict);
  EXPECT_EQ(ParseEnv("strict").mode, CheckMode::kStrict);
  // Unknown values degrade to warn (with a stderr notice) rather than
  // silently disabling the checker the user asked for.
  EXPECT_EQ(ParseEnv("paranoid").mode, CheckMode::kWarn);
  EXPECT_FALSE(ParseEnv("off").Enabled());
  EXPECT_TRUE(ParseEnv("warn").Enabled());
  EXPECT_TRUE(ParseEnv("strict").Enabled());
}

TEST(InvariantCheckerTest, ExpectCountsAndReportsOnlyFailures) {
  InvariantChecker checker(CheckMode::kWarn);
  checker.Expect(true, "test.passing", SimTime::Seconds(1), [] { return "unused"; });
  EXPECT_EQ(checker.checks_run(), 1u);
  EXPECT_EQ(checker.violation_count(), 0u);

  checker.Expect(false, "test.failing", SimTime::Seconds(2),
                 [] { return "two is not three"; }, obs::TraceArgs{7, 9, 4096});
  checker.CountChecks(10);
  EXPECT_EQ(checker.checks_run(), 12u);
  EXPECT_EQ(checker.violation_count(), 1u);

  std::vector<Violation> stored = checker.violations();
  ASSERT_EQ(stored.size(), 1u);
  EXPECT_STREQ(stored[0].invariant, "test.failing");
  EXPECT_EQ(stored[0].at, SimTime::Seconds(2));
  EXPECT_EQ(stored[0].detail, "two is not three");
  EXPECT_EQ(stored[0].args.host, 7);
  EXPECT_EQ(stored[0].args.vm, 9);
  EXPECT_EQ(stored[0].args.bytes, 4096);
}

TEST(InvariantCheckerTest, StoredViolationsCapButCountStaysExact) {
  InvariantChecker checker(CheckMode::kWarn);
  const uint64_t reported = InvariantChecker::kMaxStoredViolations + 40;
  for (uint64_t i = 0; i < reported; ++i) {
    checker.Report("test.flood", SimTime::Micros(static_cast<int64_t>(i)), "flood");
  }
  EXPECT_EQ(checker.violation_count(), reported);
  EXPECT_EQ(checker.violations().size(), InvariantChecker::kMaxStoredViolations);
  EXPECT_EQ(checker.ReportToStderr(), reported);
}

TEST(InvariantCheckerTest, InstallGatesTheHotPath) {
  EXPECT_EQ(InvariantChecker::IfEnabled(), nullptr);
  InvariantChecker checker(CheckMode::kWarn);
  InvariantChecker::Install(&checker);
  EXPECT_EQ(InvariantChecker::IfEnabled(), &checker);
  InvariantChecker::Install(nullptr);
  EXPECT_EQ(InvariantChecker::IfEnabled(), nullptr);
}

TEST(CheckScopeTest, OffScopeInstallsNothing) {
  CheckScope scope(CheckConfig{CheckMode::kOff});
  EXPECT_EQ(scope.checker(), nullptr);
  EXPECT_EQ(InvariantChecker::IfEnabled(), nullptr);
  EXPECT_FALSE(scope.Finish());
}

TEST(CheckScopeTest, WarnScopeRecordsWithoutChangingExitStatus) {
  CheckScope scope(CheckConfig{CheckMode::kWarn});
  ASSERT_NE(scope.checker(), nullptr);
  EXPECT_EQ(InvariantChecker::IfEnabled(), scope.checker());
  scope.checker()->Report("test.warn_mode", SimTime::Seconds(5), "recorded only");
  // Warn mode: Finish reports but the strict contract is not violated, so
  // the destructor will not exit the process (this test keeps running).
  EXPECT_FALSE(scope.Finish());
  EXPECT_EQ(InvariantChecker::IfEnabled(), nullptr);
  EXPECT_FALSE(scope.Finish());  // idempotent
}

// The power-state machine hook: StateTimeLedger::Transition must flag
// transitions the hardware cannot perform. kPowered -> kResuming (resuming a
// host that never slept) is the canonical illegal edge.
TEST(PowerTransitionCheckTest, IllegalTransitionIsReported) {
  InvariantChecker checker(CheckMode::kWarn);
  InvariantChecker::Install(&checker);
  StateTimeLedger ledger(SimTime::Zero(), HostPowerState::kPowered);
  ledger.Transition(SimTime::Seconds(10), HostPowerState::kResuming);
  InvariantChecker::Install(nullptr);

  ASSERT_EQ(checker.violation_count(), 1u);
  EXPECT_STREQ(checker.violations()[0].invariant, "power.legal_transition");
}

TEST(PowerTransitionCheckTest, FullSuspendResumeCycleIsLegal) {
  InvariantChecker checker(CheckMode::kWarn);
  InvariantChecker::Install(&checker);
  StateTimeLedger ledger(SimTime::Zero(), HostPowerState::kPowered);
  ledger.Transition(SimTime::Hours(1), HostPowerState::kSuspending);
  ledger.Transition(SimTime::Hours(1) + SimTime::Seconds(3.1), HostPowerState::kSleeping);
  ledger.Transition(SimTime::Hours(2), HostPowerState::kResuming);
  ledger.Transition(SimTime::Hours(2) + SimTime::Seconds(2.3), HostPowerState::kPowered);
  // A crash cuts power from any state without passing through suspend.
  ledger.Transition(SimTime::Hours(3), HostPowerState::kSleeping);
  InvariantChecker::Install(nullptr);

  EXPECT_EQ(checker.violation_count(), 0u);
  EXPECT_GT(checker.checks_run(), 0u);
}

// The acceptance test for strict mode: an intentionally seeded violation
// must exit the process with kStrictExitCode and print the structured
// violation line plus the VIOLATIONS summary.
TEST(CheckScopeDeathTest, StrictScopeExitsNonZeroOnSeededViolation) {
  EXPECT_EXIT(
      {
        CheckScope scope(CheckConfig{CheckMode::kStrict});
        StateTimeLedger ledger(SimTime::Zero(), HostPowerState::kPowered);
        ledger.Transition(SimTime::Seconds(1), HostPowerState::kResuming);
        // Scope destruction reports and exits with status 2.
      },
      ::testing::ExitedWithCode(check::kStrictExitCode),
      "violation invariant=power\\.legal_transition");
}

TEST(CheckScopeDeathTest, StrictScopeWithNoViolationsExitsNormally) {
  EXPECT_EXIT(
      {
        CheckScope scope(CheckConfig{CheckMode::kStrict});
        StateTimeLedger ledger(SimTime::Zero(), HostPowerState::kPowered);
        ledger.Transition(SimTime::Seconds(1), HostPowerState::kSuspending);
        scope.Finish();
        std::exit(0);
      },
      ::testing::ExitedWithCode(0), "0 violations");
}

}  // namespace
}  // namespace oasis
