#include "src/common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace oasis {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing vm 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing vm 42");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing vm 42");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::Unavailable("down");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kUnavailable);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

}  // namespace
}  // namespace oasis
