#include "src/hyper/vm.h"

#include <gtest/gtest.h>

namespace oasis {
namespace {

VmConfig SmallConfig() {
  VmConfig config;
  config.id = 7;
  config.memory_bytes = 64 * kMiB;
  config.seed = 3;
  return config;
}

TEST(VmTest, ConstructionDefaults) {
  Vm vm(SmallConfig());
  EXPECT_EQ(vm.id(), 7u);
  EXPECT_EQ(vm.activity(), VmActivity::kActive);
  EXPECT_EQ(vm.residency(), VmResidency::kFullAtHome);
  EXPECT_EQ(vm.home_host(), kNoHost);
  EXPECT_EQ(vm.image().total_bytes(), 64 * kMiB);
  EXPECT_EQ(vm.config().descriptor_bytes, 16 * kMiB);
}

TEST(VmTest, StateTransitions) {
  Vm vm(SmallConfig());
  vm.set_activity(VmActivity::kIdle);
  vm.set_residency(VmResidency::kPartial);
  vm.set_home_host(2);
  vm.set_current_host(5);
  EXPECT_EQ(vm.activity(), VmActivity::kIdle);
  EXPECT_EQ(vm.residency(), VmResidency::kPartial);
  EXPECT_EQ(vm.home_host(), 2u);
  EXPECT_EQ(vm.current_host(), 5u);
}

TEST(VmTest, DebugStringMentionsKeyState) {
  Vm vm(SmallConfig());
  vm.set_home_host(1);
  vm.set_current_host(1);
  std::string s = vm.DebugString();
  EXPECT_NE(s.find("vm7"), std::string::npos);
  EXPECT_NE(s.find("desktop"), std::string::npos);
  EXPECT_NE(s.find("active"), std::string::npos);
  EXPECT_NE(s.find("full@home"), std::string::npos);
}

TEST(VmTest, ImageIsMutable) {
  Vm vm(SmallConfig());
  vm.image().TouchNewBytes(8 * kMiB);
  EXPECT_EQ(vm.image().touched_bytes(), 8 * kMiB);
}

TEST(VmTest, ResidencyNames) {
  EXPECT_STREQ(VmResidencyName(VmResidency::kFullAtHome), "full@home");
  EXPECT_STREQ(VmResidencyName(VmResidency::kFullAtConsolidation), "full@consolidation");
  EXPECT_STREQ(VmResidencyName(VmResidency::kPartial), "partial");
  EXPECT_STREQ(VmActivityName(VmActivity::kActive), "active");
  EXPECT_STREQ(VmActivityName(VmActivity::kIdle), "idle");
}

}  // namespace
}  // namespace oasis
