#include <gtest/gtest.h>

#include <sstream>

#include "src/common/csv.h"
#include "src/common/table.h"

namespace oasis {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"policy", "savings"});
  t.AddRow({"FulltoPartial", "28%"});
  t.AddRow({"OnlyPartial", "6%"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("| policy        | savings |"), std::string::npos);
  EXPECT_NE(out.find("| FulltoPartial | 28%     |"), std::string::npos);
  EXPECT_NE(out.find("+---------------+---------+"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTableTest, NumberFormatting) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Num(3.0, 0), "3");
  EXPECT_EQ(TextTable::Pct(0.281, 1), "28.1%");
  EXPECT_EQ(TextTable::Pct(0.43), "43.0%");
}

TEST(TextTableTest, ExperimentHeader) {
  std::ostringstream os;
  PrintExperimentHeader(os, "Figure 8", "Energy savings");
  std::string out = os.str();
  EXPECT_NE(out.find("# Figure 8"), std::string::npos);
  EXPECT_NE(out.find("Energy savings"), std::string::npos);
}

TEST(CsvWriterTest, WritesHeaderAndRows) {
  std::ostringstream os;
  CsvWriter csv(os, {"a", "b"});
  csv.WriteRow({"1", "2"});
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(CsvWriterTest, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::Escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::Escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::Escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::Escape("line\nbreak"), "\"line\nbreak\"");
}

}  // namespace
}  // namespace oasis
