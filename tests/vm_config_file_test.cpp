#include "src/ctrl/vm_config_file.h"

#include <gtest/gtest.h>

namespace oasis {
namespace {

constexpr char kGoodConfig[] = R"(# Alice's desktop
vmid   = 0042
disk   = nfs://storage/images/alice.img
memory = 4096M
vcpus  = 2
device = net:bridge0
device = vfb:vnc,port=5942
)";

TEST(VmConfigFileTest, ParsesCompleteConfig) {
  StatusOr<VmConfigFile> config = ParseVmConfig(kGoodConfig);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->vmid, "0042");
  EXPECT_EQ(config->VmidNumber(), 42u);
  EXPECT_EQ(config->disk_image, "nfs://storage/images/alice.img");
  EXPECT_EQ(config->memory_bytes, 4 * kGiB);
  EXPECT_EQ(config->vcpus, 2);
  ASSERT_EQ(config->devices.size(), 2u);
  EXPECT_EQ(config->devices[0], "net:bridge0");
}

TEST(VmConfigFileTest, VcpusDefaultsToOne) {
  StatusOr<VmConfigFile> config =
      ParseVmConfig("vmid = 0001\ndisk = a.img\nmemory = 512M\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->vcpus, 1);
  EXPECT_TRUE(config->devices.empty());
}

TEST(VmConfigFileTest, RejectsMissingFields) {
  EXPECT_FALSE(ParseVmConfig("disk = a.img\nmemory = 1G\n").ok());       // no vmid
  EXPECT_FALSE(ParseVmConfig("vmid = 0001\nmemory = 1G\n").ok());        // no disk
  EXPECT_FALSE(ParseVmConfig("vmid = 0001\ndisk = a.img\n").ok());       // no memory
}

TEST(VmConfigFileTest, RejectsBadVmid) {
  for (const char* bad : {"42", "00042", "12a4", "abcd", ""}) {
    std::string text = std::string("vmid = ") + bad + "\ndisk = a.img\nmemory = 1G\n";
    EXPECT_FALSE(ParseVmConfig(text).ok()) << "vmid '" << bad << "' accepted";
  }
}

TEST(VmConfigFileTest, RejectsMalformedLines) {
  StatusOr<VmConfigFile> r = ParseVmConfig("vmid 0001\n");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
  EXPECT_FALSE(ParseVmConfig("vmid = 0001\nfoo = bar\ndisk = a\nmemory = 1G\n").ok());
  EXPECT_FALSE(ParseVmConfig("vmid =\ndisk = a\nmemory = 1G\n").ok());
}

TEST(VmConfigFileTest, RejectsBadVcpus) {
  EXPECT_FALSE(
      ParseVmConfig("vmid = 0001\ndisk = a\nmemory = 1G\nvcpus = 0\n").ok());
  EXPECT_FALSE(
      ParseVmConfig("vmid = 0001\ndisk = a\nmemory = 1G\nvcpus = 9999\n").ok());
}

TEST(VmConfigFileTest, RoundTrip) {
  StatusOr<VmConfigFile> config = ParseVmConfig(kGoodConfig);
  ASSERT_TRUE(config.ok());
  StatusOr<VmConfigFile> again = ParseVmConfig(SerializeVmConfig(*config));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->vmid, config->vmid);
  EXPECT_EQ(again->memory_bytes, config->memory_bytes);
  EXPECT_EQ(again->devices, config->devices);
}

TEST(VmConfigFileTest, ParsesPolicyKey) {
  StatusOr<VmConfigFile> config = ParseVmConfig(
      "vmid = 0001\ndisk = a.img\nmemory = 1G\npolicy = OnlyPartial\n");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_TRUE(config->has_policy);
  EXPECT_EQ(config->policy, ConsolidationPolicy::kOnlyPartial);

  StatusOr<VmConfigFile> none = ParseVmConfig("vmid = 0001\ndisk = a.img\nmemory = 1G\n");
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->has_policy);
}

TEST(VmConfigFileTest, BadPolicyErrorListsValidNames) {
  StatusOr<VmConfigFile> r = ParseVmConfig(
      "vmid = 0001\ndisk = a.img\nmemory = 1G\npolicy = Frobnicate\n");
  ASSERT_FALSE(r.ok());
  const std::string message = r.status().message();
  EXPECT_NE(message.find("line 4"), std::string::npos) << message;
  EXPECT_NE(message.find("Frobnicate"), std::string::npos) << message;
  // The error must name every accepted spelling so a typo is self-correcting.
  for (ConsolidationPolicy p :
       {ConsolidationPolicy::kOnlyPartial, ConsolidationPolicy::kDefault,
        ConsolidationPolicy::kFullToPartial, ConsolidationPolicy::kNewHome}) {
    EXPECT_NE(message.find(ConsolidationPolicyName(p)), std::string::npos) << message;
  }
}

TEST(VmConfigFileTest, PolicyRoundTrip) {
  for (ConsolidationPolicy p :
       {ConsolidationPolicy::kOnlyPartial, ConsolidationPolicy::kDefault,
        ConsolidationPolicy::kFullToPartial, ConsolidationPolicy::kNewHome}) {
    // Name-level round trip: ConsolidationPolicyName and its parser invert.
    StatusOr<ConsolidationPolicy> parsed =
        ParseConsolidationPolicy(ConsolidationPolicyName(p));
    ASSERT_TRUE(parsed.ok()) << ConsolidationPolicyName(p);
    EXPECT_EQ(*parsed, p);
    // File-level round trip through serialize + parse.
    VmConfigFile config;
    config.vmid = "0007";
    config.disk_image = "a.img";
    config.memory_bytes = kGiB;
    config.has_policy = true;
    config.policy = p;
    StatusOr<VmConfigFile> again = ParseVmConfig(SerializeVmConfig(config));
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    EXPECT_TRUE(again->has_policy);
    EXPECT_EQ(again->policy, p);
  }
  EXPECT_FALSE(ParseConsolidationPolicy("NotAPolicy").ok());
}

TEST(ParseMemorySizeTest, Suffixes) {
  EXPECT_EQ(*ParseMemorySize("512K"), 512 * kKiB);
  EXPECT_EQ(*ParseMemorySize("4096M"), 4 * kGiB);
  EXPECT_EQ(*ParseMemorySize("4G"), 4 * kGiB);
  EXPECT_EQ(*ParseMemorySize("4g"), 4 * kGiB);
  EXPECT_EQ(*ParseMemorySize("1073741824"), 1 * kGiB);
}

TEST(ParseMemorySizeTest, Rejections) {
  EXPECT_FALSE(ParseMemorySize("").ok());
  EXPECT_FALSE(ParseMemorySize("G").ok());
  EXPECT_FALSE(ParseMemorySize("12X").ok());
  EXPECT_FALSE(ParseMemorySize("1.5G").ok());
}

}  // namespace
}  // namespace oasis
