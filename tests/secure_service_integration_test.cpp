// End-to-end integration of the memory-server data path: real page contents,
// LZ compression, the service-latency model, and the §4.3 authentication
// layer, wired together the way a deployed memory server would be.

#include <gtest/gtest.h>

#include "src/hyper/memory_server.h"
#include "src/hyper/page_auth.h"
#include "src/mem/compression.h"
#include "src/mem/dedup.h"
#include "src/mem/page_content.h"

namespace oasis {
namespace {

class SecureServiceTest : public ::testing::Test {
 protected:
  static constexpr VmId kVm = 42;

  SecureServiceTest() : authority_(0xA117), auth_(&authority_), content_(kVm) {
    auth_.AdmitVm(kVm);
    // The home host compresses and uploads the touched image; the store
    // deduplicates page contents.
    for (uint64_t page = 0; page < 256; ++page) {
      PageBytes bytes = content_.Generate(page);
      store_.Insert(bytes);
      uploaded_ += LzCompress(bytes).size();
    }
    server_.Upload(SimTime::Zero(), kVm, uploaded_);
  }

  // One authenticated, compressed page fetch as memtap performs it.
  StatusOr<std::pair<PageBytes, SimTime>> Fetch(AuthenticatedClient& client, uint64_t page) {
    AuthenticatedPageRequest request = client.MakeRequest(page);
    Status verdict = auth_.VerifyRequest(request);
    if (!verdict.ok()) {
      return verdict;
    }
    StatusOr<SimTime> latency = server_.ServePageRequest(SimTime::Zero(), kVm, page);
    if (!latency.ok()) {
      return latency.status();
    }
    PageBytes original = content_.Generate(page);
    std::vector<uint8_t> compressed = LzCompress(original);
    AuthenticatedPageResponse response = auth_.MakeResponse(kVm, page, compressed);
    Status ok = client.VerifyResponse(response);
    if (!ok.ok()) {
      return ok;
    }
    auto decompressed = LzDecompress(response.payload, kPageSize);
    if (!decompressed.has_value()) {
      return Status::Internal("decompression failed");
    }
    return std::make_pair(*decompressed, *latency);
  }

  KeyAuthority authority_;
  AuthenticatedServer auth_;
  MemoryServer server_;
  DedupPageStore store_;
  PageContentGenerator content_;
  uint64_t uploaded_ = 0;
};

TEST_F(SecureServiceTest, AuthorizedFetchReturnsExactPageBytes) {
  AuthenticatedClient memtap(kVm, authority_.IssueKey(kVm));
  for (uint64_t page : {0ull, 17ull, 200ull}) {
    auto result = Fetch(memtap, page);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->first, content_.Generate(page)) << "page " << page;
    EXPECT_GT(result->second, SimTime::Zero());
  }
}

TEST_F(SecureServiceTest, UnauthorizedClientGetsNothing) {
  AuthenticatedClient attacker(kVm, AuthKey{0xBAD, 0xBAD});
  auto result = Fetch(attacker, 0);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(auth_.rejected_requests(), 1u);
  // No page was served: the latency model was never consulted.
  EXPECT_EQ(server_.pages_served(), 0u);
}

TEST_F(SecureServiceTest, UploadedBytesReflectRealCompression) {
  EXPECT_LT(uploaded_, 256 * kPageSize);
  EXPECT_GT(uploaded_, 256 * kPageSize / 10);
  EXPECT_EQ(server_.StoredBytes(), uploaded_);
}

TEST_F(SecureServiceTest, DedupStoreShrinksImage) {
  // Zero pages collapse; everything else in one VM image is distinct.
  EXPECT_LT(store_.StoredBytes(), store_.LogicalBytes());
  EXPECT_GT(store_.DedupFactor(), 1.05);
}

TEST_F(SecureServiceTest, RequestsAreSingleUse) {
  AuthenticatedClient memtap(kVm, authority_.IssueKey(kVm));
  AuthenticatedPageRequest request = memtap.MakeRequest(3);
  ASSERT_TRUE(auth_.VerifyRequest(request).ok());
  EXPECT_FALSE(auth_.VerifyRequest(request).ok());  // a sniffed copy replayed
}

}  // namespace
}  // namespace oasis
