#include "src/mem/memory_image.h"

#include <gtest/gtest.h>

namespace oasis {
namespace {

constexpr uint64_t kSmallVm = 64 * kMiB;  // 16384 pages: fast tests

TEST(MemoryImageTest, StartsUntouched) {
  MemoryImage img(kSmallVm, 1);
  EXPECT_EQ(img.total_pages(), kSmallVm / kPageSize);
  EXPECT_EQ(img.touched_pages(), 0u);
  EXPECT_EQ(img.dirty_pages(), 0u);
}

TEST(MemoryImageTest, TouchNewPagesCountsExactly) {
  MemoryImage img(kSmallVm, 1);
  EXPECT_EQ(img.TouchNewPages(1000), 1000u);
  EXPECT_EQ(img.touched_pages(), 1000u);
  EXPECT_EQ(img.dirty_pages(), 1000u);  // new pages are dirty
}

TEST(MemoryImageTest, TouchClampsAtCapacity) {
  MemoryImage img(4 * kMiB, 2);  // 1024 pages
  EXPECT_EQ(img.TouchNewPages(2000), 1024u);
  EXPECT_EQ(img.touched_pages(), 1024u);
  EXPECT_EQ(img.TouchNewPages(10), 0u);
}

TEST(MemoryImageTest, TouchBytesRoundsToPages) {
  MemoryImage img(kSmallVm, 3);
  EXPECT_EQ(img.TouchNewBytes(10 * kMiB), 10 * kMiB);
  EXPECT_EQ(img.touched_bytes(), 10 * kMiB);
}

TEST(MemoryImageTest, UploadEpochClearsDirty) {
  MemoryImage img(kSmallVm, 4);
  img.TouchNewPages(500);
  EXPECT_EQ(img.BeginUploadEpoch(), 500u);
  EXPECT_EQ(img.dirty_pages(), 0u);
  EXPECT_EQ(img.touched_pages(), 500u);  // touched persists
  EXPECT_EQ(img.BeginUploadEpoch(), 0u);
}

TEST(MemoryImageTest, DirtyTouchedPagesOnlyMarksTouched) {
  MemoryImage img(kSmallVm, 5);
  img.TouchNewPages(100);
  img.BeginUploadEpoch();
  EXPECT_EQ(img.DirtyTouchedPages(50), 50u);
  EXPECT_EQ(img.dirty_pages(), 50u);
  // Cannot dirty more distinct pages than are touched.
  EXPECT_EQ(img.DirtyTouchedPages(1000), 50u);
  EXPECT_EQ(img.dirty_pages(), 100u);
}

TEST(MemoryImageTest, DirtyOnEmptyImageIsZero) {
  MemoryImage img(kSmallVm, 6);
  EXPECT_EQ(img.DirtyTouchedPages(10), 0u);
}

TEST(MemoryImageTest, DifferentialUploadSmallerThanFull) {
  MemoryImage img(kSmallVm, 7);
  img.TouchNewPages(4000);
  img.BeginUploadEpoch();
  img.DirtyTouchedPages(300);
  uint64_t differential = img.dirty_pages();
  EXPECT_EQ(differential, 300u);
  EXPECT_LT(img.CompressedBytesFor(differential), img.CompressedTouchedBytes());
}

TEST(MemoryImageTest, CompressedSizeReflectsRealCompressor) {
  MemoryImage img(kSmallVm, 8);
  img.TouchNewPages(1000);
  uint64_t compressed = img.CompressedTouchedBytes();
  // The default mix compresses to well under raw size but far above zero.
  EXPECT_LT(compressed, 1000 * kPageSize);
  EXPECT_GT(compressed, 1000 * kPageSize / 10);
}

TEST(MemoryImageTest, DeterministicAcrossInstances) {
  MemoryImage a(kSmallVm, 99);
  MemoryImage b(kSmallVm, 99);
  a.TouchNewPages(123);
  b.TouchNewPages(123);
  EXPECT_EQ(a.touched_pages(), b.touched_pages());
  EXPECT_EQ(a.CompressedTouchedBytes(), b.CompressedTouchedBytes());
}

TEST(CompressedSizeModelTest, DefaultIsSingleton) {
  const CompressedSizeModel& m1 = CompressedSizeModel::Default();
  const CompressedSizeModel& m2 = CompressedSizeModel::Default();
  EXPECT_EQ(&m1, &m2);
}

TEST(CompressedSizeModelTest, PerClassSizesOrdered) {
  const CompressedSizeModel& m = CompressedSizeModel::Default();
  EXPECT_LT(m.MeanCompressedPageSize(PageClass::kZero),
            m.MeanCompressedPageSize(PageClass::kText));
  EXPECT_LT(m.MeanCompressedPageSize(PageClass::kText),
            m.MeanCompressedPageSize(PageClass::kCode));
  EXPECT_LT(m.MeanCompressedPageSize(PageClass::kCode),
            m.MeanCompressedPageSize(PageClass::kRandom));
}

TEST(CompressedSizeModelTest, ExpectedBytesScalesLinearly) {
  const CompressedSizeModel& m = CompressedSizeModel::Default();
  PageClassMix mix;
  uint64_t one = m.ExpectedCompressedBytes(1000, mix);
  uint64_t two = m.ExpectedCompressedBytes(2000, mix);
  EXPECT_NEAR(static_cast<double>(two), 2.0 * static_cast<double>(one),
              static_cast<double>(one) * 0.01);
}

TEST(CompressedSizeModelTest, OverallRatioInCalibratedBand) {
  // The Fig 5 upload latencies depend on the mixed-page compression ratio
  // landing in a realistic band (LZO on desktop RAM is ~0.4-0.6).
  const CompressedSizeModel& m = CompressedSizeModel::Default();
  PageClassMix mix;
  double ratio = static_cast<double>(m.ExpectedCompressedBytes(1000, mix)) /
                 static_cast<double>(1000 * kPageSize);
  EXPECT_GT(ratio, 0.25);
  EXPECT_LT(ratio, 0.65);
}

}  // namespace
}  // namespace oasis
