#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace oasis {
namespace {

TEST(EventQueueTest, EmptyQueue) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.NextTime(), SimTime::Max());
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(SimTime::Seconds(3), [&] { order.push_back(3); });
  q.Schedule(SimTime::Seconds(1), [&] { order.push_back(1); });
  q.Schedule(SimTime::Seconds(2), [&] { order.push_back(2); });
  while (!q.empty()) {
    q.Pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(SimTime::Seconds(1), [&, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.Pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventId id = q.Schedule(SimTime::Seconds(1), [&] { ran = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelTwiceFails) {
  EventQueue q;
  EventId id = q.Schedule(SimTime::Seconds(1), [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(kInvalidEventId));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  EventId early = q.Schedule(SimTime::Seconds(1), [] {});
  q.Schedule(SimTime::Seconds(5), [] {});
  q.Cancel(early);
  EXPECT_EQ(q.NextTime(), SimTime::Seconds(5));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, PopReportsTimeAndId) {
  EventQueue q;
  EventId id = q.Schedule(SimTime::Seconds(7), [] {});
  auto popped = q.Pop();
  EXPECT_EQ(popped.time, SimTime::Seconds(7));
  EXPECT_EQ(popped.id, id);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, RecycledSlotGetsFreshGeneration) {
  EventQueue q;
  EventId first = q.Schedule(SimTime::Seconds(1), [] {});
  ASSERT_TRUE(q.Cancel(first));
  // The slot is recycled; the new id must differ so the old handle stays dead.
  EventId second = q.Schedule(SimTime::Seconds(2), [] {});
  EXPECT_NE(first, second);
  EXPECT_FALSE(q.Cancel(first));
  EXPECT_TRUE(q.Cancel(second));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, StaleIdCannotCancelRecycledSlot) {
  EventQueue q;
  EventId stale = q.Schedule(SimTime::Seconds(1), [] {});
  q.Pop();  // consumes the event, frees the slot
  bool ran = false;
  q.Schedule(SimTime::Seconds(2), [&] { ran = true; });
  // `stale` refers to the same slot as the live event but an older
  // generation: cancelling through it must not touch the live event.
  EXPECT_FALSE(q.Cancel(stale));
  ASSERT_EQ(q.size(), 1u);
  q.Pop().fn();
  EXPECT_TRUE(ran);
}

TEST(EventQueueTest, IdReuseStress) {
  EventQueue q;
  // Hammer one slot through many schedule/cancel generations; every retired
  // id must stay permanently invalid.
  std::vector<EventId> retired;
  for (int i = 0; i < 100; ++i) {
    EventId id = q.Schedule(SimTime::Seconds(1), [] {});
    for (EventId old : retired) {
      EXPECT_FALSE(q.Cancel(old));
    }
    EXPECT_TRUE(q.Cancel(id));
    retired.push_back(id);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, SizeCountsLiveEventsOnly) {
  EventQueue q;
  EventId a = q.Schedule(SimTime::Seconds(1), [] {});
  q.Schedule(SimTime::Seconds(2), [] {});
  EventId c = q.Schedule(SimTime::Seconds(3), [] {});
  EXPECT_EQ(q.size(), 3u);
  q.Cancel(a);
  q.Cancel(c);
  // Tombstones may still sit in the heap, but size() reports live events.
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.Pop().time, SimTime::Seconds(2));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelledClosureNotRunEvenWhenBuried) {
  EventQueue q;
  // Cancel an event that is *not* at the heap front, then drain: the
  // tombstoned entry must be skipped wherever it surfaces.
  std::vector<int> order;
  q.Schedule(SimTime::Seconds(1), [&] { order.push_back(1); });
  EventId mid = q.Schedule(SimTime::Seconds(2), [&] { order.push_back(2); });
  q.Schedule(SimTime::Seconds(3), [&] { order.push_back(3); });
  q.Cancel(mid);
  while (!q.empty()) {
    q.Pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, ManyEventsStressOrder) {
  EventQueue q;
  for (int i = 999; i >= 0; --i) {
    q.Schedule(SimTime::Micros(i * 13 % 997), [] {});
  }
  SimTime prev = SimTime::Zero();
  while (!q.empty()) {
    auto e = q.Pop();
    EXPECT_GE(e.time, prev);
    prev = e.time;
  }
}

}  // namespace
}  // namespace oasis
