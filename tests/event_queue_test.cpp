#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <utility>
#include <vector>

namespace oasis {
namespace {

// Counts live instances so tests can pin exactly *when* a captured payload
// is destroyed (eagerly in Cancel vs. lazily at tombstone surfacing).
struct InstanceCounter {
  explicit InstanceCounter(int* c) : count(c) { ++*count; }
  InstanceCounter(const InstanceCounter& o) : count(o.count) { ++*count; }
  InstanceCounter(InstanceCounter&& o) noexcept : count(o.count) { ++*count; }
  ~InstanceCounter() { --*count; }
  int* count;
};

TEST(EventQueueTest, EmptyQueue) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.NextTime(), SimTime::Max());
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(SimTime::Seconds(3), [&] { order.push_back(3); });
  q.Schedule(SimTime::Seconds(1), [&] { order.push_back(1); });
  q.Schedule(SimTime::Seconds(2), [&] { order.push_back(2); });
  while (!q.empty()) {
    q.Pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(SimTime::Seconds(1), [&, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.Pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventId id = q.Schedule(SimTime::Seconds(1), [&] { ran = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelTwiceFails) {
  EventQueue q;
  EventId id = q.Schedule(SimTime::Seconds(1), [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(kInvalidEventId));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  EventId early = q.Schedule(SimTime::Seconds(1), [] {});
  q.Schedule(SimTime::Seconds(5), [] {});
  q.Cancel(early);
  EXPECT_EQ(q.NextTime(), SimTime::Seconds(5));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, PopReportsTimeAndId) {
  EventQueue q;
  EventId id = q.Schedule(SimTime::Seconds(7), [] {});
  auto popped = q.Pop();
  EXPECT_EQ(popped.time, SimTime::Seconds(7));
  EXPECT_EQ(popped.id, id);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, RecycledSlotGetsFreshGeneration) {
  EventQueue q;
  EventId first = q.Schedule(SimTime::Seconds(1), [] {});
  ASSERT_TRUE(q.Cancel(first));
  // The slot is recycled; the new id must differ so the old handle stays dead.
  EventId second = q.Schedule(SimTime::Seconds(2), [] {});
  EXPECT_NE(first, second);
  EXPECT_FALSE(q.Cancel(first));
  EXPECT_TRUE(q.Cancel(second));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, StaleIdCannotCancelRecycledSlot) {
  EventQueue q;
  EventId stale = q.Schedule(SimTime::Seconds(1), [] {});
  q.Pop();  // consumes the event, frees the slot
  bool ran = false;
  q.Schedule(SimTime::Seconds(2), [&] { ran = true; });
  // `stale` refers to the same slot as the live event but an older
  // generation: cancelling through it must not touch the live event.
  EXPECT_FALSE(q.Cancel(stale));
  ASSERT_EQ(q.size(), 1u);
  q.Pop().fn();
  EXPECT_TRUE(ran);
}

TEST(EventQueueTest, IdReuseStress) {
  EventQueue q;
  // Hammer one slot through many schedule/cancel generations; every retired
  // id must stay permanently invalid.
  std::vector<EventId> retired;
  for (int i = 0; i < 100; ++i) {
    EventId id = q.Schedule(SimTime::Seconds(1), [] {});
    for (EventId old : retired) {
      EXPECT_FALSE(q.Cancel(old));
    }
    EXPECT_TRUE(q.Cancel(id));
    retired.push_back(id);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, SizeCountsLiveEventsOnly) {
  EventQueue q;
  EventId a = q.Schedule(SimTime::Seconds(1), [] {});
  q.Schedule(SimTime::Seconds(2), [] {});
  EventId c = q.Schedule(SimTime::Seconds(3), [] {});
  EXPECT_EQ(q.size(), 3u);
  q.Cancel(a);
  q.Cancel(c);
  // Tombstones may still sit in the heap, but size() reports live events.
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.Pop().time, SimTime::Seconds(2));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelledClosureNotRunEvenWhenBuried) {
  EventQueue q;
  // Cancel an event that is *not* at the heap front, then drain: the
  // tombstoned entry must be skipped wherever it surfaces.
  std::vector<int> order;
  q.Schedule(SimTime::Seconds(1), [&] { order.push_back(1); });
  EventId mid = q.Schedule(SimTime::Seconds(2), [&] { order.push_back(2); });
  q.Schedule(SimTime::Seconds(3), [&] { order.push_back(3); });
  q.Cancel(mid);
  while (!q.empty()) {
    q.Pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, CancelDestroysClosureEagerly) {
  EventQueue q;
  int live = 0;
  // Bury the event under an earlier one so its tombstone cannot surface (and
  // be reaped) before we check: destruction must happen inside Cancel itself,
  // not when the dead heap entry is eventually skipped.
  q.Schedule(SimTime::Seconds(1), [] {});
  EventId id = q.Schedule(SimTime::Seconds(2), [c = InstanceCounter(&live)] {});
  ASSERT_EQ(live, 1);
  EXPECT_TRUE(q.Cancel(id));
  // Captured state released the moment Cancel returns — no Pop has run yet.
  EXPECT_EQ(live, 0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, CancelReleasesSharedOwnership) {
  EventQueue q;
  auto payload = std::make_shared<int>(7);
  EventId id = q.Schedule(SimTime::Seconds(1), [payload] {});
  ASSERT_EQ(payload.use_count(), 2);
  q.Cancel(id);
  // The queue's reference is gone before any drain touches the heap.
  EXPECT_EQ(payload.use_count(), 1);
}

TEST(EventQueueTest, PopDestroysClosureAfterInvocation) {
  EventQueue q;
  int live = 0;
  q.Schedule(SimTime::Seconds(1), [c = InstanceCounter(&live)] {});
  ASSERT_EQ(live, 1);
  {
    auto popped = q.Pop();
    // Moved out of the slot table into the caller's hands: still alive.
    EXPECT_EQ(live, 1);
    popped.fn();
    EXPECT_EQ(live, 1);
  }
  // Destroyed when the popped record goes out of scope, and exactly once
  // (relocation through the slot table must not leak or double-destroy).
  EXPECT_EQ(live, 0);
}

TEST(EventQueueTest, QueueDestructorDestroysPendingClosures) {
  int live = 0;
  {
    EventQueue q;
    q.Schedule(SimTime::Seconds(1), [c = InstanceCounter(&live)] {});
    q.Schedule(SimTime::Seconds(2), [c = InstanceCounter(&live)] {});
    EventId dead = q.Schedule(SimTime::Seconds(3), [c = InstanceCounter(&live)] {});
    q.Cancel(dead);
    EXPECT_EQ(live, 2);
  }
  EXPECT_EQ(live, 0);
}

TEST(EventClosureTest, CaptureAtExactCapacityFits) {
  // A capture of exactly kCapacity bytes must compile and round-trip through
  // the slot table; one byte more is a static_assert (compile-time, so not
  // testable here — this pins the boundary from the passing side).
  struct Blob {
    unsigned char bytes[EventClosure::kCapacity - sizeof(int*)];
    int* out;
  };
  static_assert(sizeof(Blob) == EventClosure::kCapacity);
  int result = 0;
  Blob blob{};
  std::memset(blob.bytes, 0x5a, sizeof(blob.bytes));
  blob.out = &result;
  EventQueue q;
  q.Schedule(SimTime::Seconds(1), [blob] {
    int sum = 0;
    for (unsigned char b : blob.bytes) {
      sum += b;
    }
    *blob.out = sum;
  });
  q.Pop().fn();
  EXPECT_EQ(result, 0x5a * static_cast<int>(sizeof(blob.bytes)));
}

TEST(EventClosureTest, MoveTransfersOwnership) {
  int live = 0;
  int runs = 0;
  EventClosure a([c = InstanceCounter(&live), &runs] { ++runs; });
  EXPECT_TRUE(static_cast<bool>(a));
  EXPECT_EQ(live, 1);
  EventClosure b(std::move(a));
  // Relocation move-constructs into the new home then destroys the source:
  // exactly one instance survives and the source is empty.
  EXPECT_EQ(live, 1);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(runs, 1);
  b.Reset();
  EXPECT_EQ(live, 0);
  EXPECT_FALSE(static_cast<bool>(b));
}

TEST(EventClosureTest, MoveAssignDestroysPreviousTenant) {
  int live_a = 0;
  int live_b = 0;
  EventClosure a([c = InstanceCounter(&live_a)] {});
  EventClosure b([c = InstanceCounter(&live_b)] {});
  a = std::move(b);
  // The assignee's old closure is destroyed first, then the source's capture
  // relocates in.
  EXPECT_EQ(live_a, 0);
  EXPECT_EQ(live_b, 1);
  EXPECT_FALSE(static_cast<bool>(b));
  a.Reset();
  EXPECT_EQ(live_b, 0);
}

TEST(EventQueueTest, ManyEventsStressOrder) {
  EventQueue q;
  for (int i = 999; i >= 0; --i) {
    q.Schedule(SimTime::Micros(i * 13 % 997), [] {});
  }
  SimTime prev = SimTime::Zero();
  while (!q.empty()) {
    auto e = q.Pop();
    EXPECT_GE(e.time, prev);
    prev = e.time;
  }
}

}  // namespace
}  // namespace oasis
