#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace oasis {
namespace {

TEST(EventQueueTest, EmptyQueue) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.NextTime(), SimTime::Max());
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(SimTime::Seconds(3), [&] { order.push_back(3); });
  q.Schedule(SimTime::Seconds(1), [&] { order.push_back(1); });
  q.Schedule(SimTime::Seconds(2), [&] { order.push_back(2); });
  while (!q.empty()) {
    q.Pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(SimTime::Seconds(1), [&, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.Pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventId id = q.Schedule(SimTime::Seconds(1), [&] { ran = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelTwiceFails) {
  EventQueue q;
  EventId id = q.Schedule(SimTime::Seconds(1), [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(kInvalidEventId));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  EventId early = q.Schedule(SimTime::Seconds(1), [] {});
  q.Schedule(SimTime::Seconds(5), [] {});
  q.Cancel(early);
  EXPECT_EQ(q.NextTime(), SimTime::Seconds(5));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, PopReportsTimeAndId) {
  EventQueue q;
  EventId id = q.Schedule(SimTime::Seconds(7), [] {});
  auto popped = q.Pop();
  EXPECT_EQ(popped.time, SimTime::Seconds(7));
  EXPECT_EQ(popped.id, id);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, ManyEventsStressOrder) {
  EventQueue q;
  for (int i = 999; i >= 0; --i) {
    q.Schedule(SimTime::Micros(i * 13 % 997), [] {});
  }
  SimTime prev = SimTime::Zero();
  while (!q.empty()) {
    auto e = q.Pop();
    EXPECT_GE(e.time, prev);
    prev = e.time;
  }
}

}  // namespace
}  // namespace oasis
