#include "src/mem/working_set.h"

#include <gtest/gtest.h>

#include "src/common/stats.h"

namespace oasis {
namespace {

TEST(WorkingSetTest, MatchesPaperMoments) {
  // §5.1: idle working sets of 4 GiB desktop VMs were 165.63 ± 91.38 MiB.
  WorkingSetSampler sampler(1);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(ToMiB(sampler.Sample(4 * kGiB)));
  }
  EXPECT_NEAR(stats.mean(), 165.63, 6.0);
  EXPECT_NEAR(stats.stddev(), 91.38, 8.0);
}

TEST(WorkingSetTest, RespectsFloorAndCeiling) {
  WorkingSetSampler sampler(2);
  for (int i = 0; i < 5000; ++i) {
    uint64_t ws = sampler.Sample(4 * kGiB);
    EXPECT_GE(ws, MiBToBytes(16.0));
    EXPECT_LE(ws, 4 * kGiB);
  }
}

TEST(WorkingSetTest, SmallAllocationClampsCeiling) {
  WorkingSetSampler sampler(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(sampler.Sample(256 * kMiB), 256 * kMiB);
  }
}

TEST(WorkingSetTest, ResultsArePageAligned) {
  WorkingSetSampler sampler(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampler.Sample(4 * kGiB) % kPageSize, 0u);
  }
}

TEST(WorkingSetTest, DeterministicForSeed) {
  WorkingSetSampler a(5);
  WorkingSetSampler b(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.Sample(4 * kGiB), b.Sample(4 * kGiB));
  }
}

TEST(WorkingSetTest, CustomDistribution) {
  WorkingSetDistribution dist;
  dist.mean_mib = 500.0;
  dist.stddev_mib = 10.0;
  WorkingSetSampler sampler(dist, 6);
  OnlineStats stats;
  for (int i = 0; i < 5000; ++i) {
    stats.Add(ToMiB(sampler.Sample(4 * kGiB)));
  }
  EXPECT_NEAR(stats.mean(), 500.0, 2.0);
}

TEST(WorkingSetTest, WorkingSetsAreSmallFractionOfAllocation) {
  // §2's core observation: idle VMs touch <5% of their allocation.
  WorkingSetSampler sampler(7);
  OnlineStats stats;
  for (int i = 0; i < 10000; ++i) {
    stats.Add(static_cast<double>(sampler.Sample(4 * kGiB)) / (4.0 * kGiB));
  }
  EXPECT_LT(stats.mean(), 0.05);
}

}  // namespace
}  // namespace oasis
