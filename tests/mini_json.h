// Minimal recursive-descent JSON parser, just enough for tests to parse the
// tracer's Chrome trace_event output back and assert on its structure. Not a
// validator: accepts the subset the exporters emit (objects, arrays, strings
// with backslash escapes, numbers, true/false/null).

#ifndef OASIS_TESTS_MINI_JSON_H_
#define OASIS_TESTS_MINI_JSON_H_

#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace oasis {
namespace testing {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool has(const std::string& key) const { return object.count(key) > 0; }
  const JsonValue& at(const std::string& key) const { return object.at(key); }
};

class JsonParser {
 public:
  // Returns false (and leaves *out unspecified) on malformed input.
  static bool Parse(const std::string& text, JsonValue* out) {
    JsonParser p(text);
    if (!p.ParseValue(out)) {
      return false;
    }
    p.SkipSpace();
    return p.pos_ == text.size();
  }

 private:
  explicit JsonParser(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return false;
    }
    char c = text_[pos_];
    if (c == '{') {
      return ParseObject(out);
    }
    if (c == '[') {
      return ParseArray(out);
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!Consume('{')) {
      return false;
    }
    if (Consume('}')) {
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      if (!Consume(':')) {
        return false;
      }
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->object.emplace(std::move(key), std::move(value));
      if (Consume(',')) {
        continue;
      }
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!Consume('[')) {
      return false;
    }
    if (Consume(']')) {
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->array.push_back(std::move(value));
      if (Consume(',')) {
        continue;
      }
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return false;
        }
        char esc = text_[pos_++];
        switch (esc) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u':
            // The exporters only escape control characters; tests don't need
            // the decoded code point, just to not choke on it.
            if (pos_ + 4 > text_.size()) {
              return false;
            }
            pos_ += 4;
            out->push_back('?');
            break;
          default: out->push_back(esc); break;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return false;
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace testing
}  // namespace oasis

#endif  // OASIS_TESTS_MINI_JSON_H_
