#include "src/net/link.h"

#include <gtest/gtest.h>

namespace oasis {
namespace {

TEST(LinkTest, TransferTimeIsLatencyPlusSerialization) {
  Link link(100.0 * kMiB, SimTime::Millis(1));
  SimTime t = link.TransferTime(200 * kMiB);
  EXPECT_NEAR(t.seconds(), 2.001, 1e-6);
}

TEST(LinkTest, ZeroBytesCostsOnlyLatency) {
  Link link(kGigEBytesPerSec, SimTime::Micros(150));
  EXPECT_EQ(link.TransferTime(0), SimTime::Micros(150));
}

TEST(LinkTest, PaperBandwidthConstants) {
  // §4.3: SAS sustains 128 MiB/s; §5.1 assumes 4 GiB over 10 GigE in 10 s.
  Link sas(kSasBytesPerSec, SimTime::Zero());
  EXPECT_NEAR(sas.TransferTime(1306 * kMiB).seconds(), 10.2, 0.05);
  Link live(kLiveMigrationBytesPerSec, SimTime::Zero());
  EXPECT_NEAR(live.TransferTime(4 * kGiB).seconds(), 10.0, 0.01);
}

TEST(SharedChannelTest, IdleChannelStartsImmediately) {
  SharedChannel ch(Link(100.0 * kMiB, SimTime::Zero()));
  SimTime done = ch.EnqueueTransfer(SimTime::Seconds(5), 100 * kMiB);
  EXPECT_NEAR(done.seconds(), 6.0, 1e-9);
  EXPECT_EQ(ch.busy_until(), done);
}

TEST(SharedChannelTest, BackToBackTransfersQueue) {
  SharedChannel ch(Link(100.0 * kMiB, SimTime::Zero()));
  SimTime d1 = ch.EnqueueTransfer(SimTime::Zero(), 100 * kMiB);
  SimTime d2 = ch.EnqueueTransfer(SimTime::Zero(), 100 * kMiB);
  EXPECT_NEAR(d1.seconds(), 1.0, 1e-9);
  EXPECT_NEAR(d2.seconds(), 2.0, 1e-9);
}

TEST(SharedChannelTest, LateArrivalAfterDrainStartsFresh) {
  SharedChannel ch(Link(100.0 * kMiB, SimTime::Zero()));
  ch.EnqueueTransfer(SimTime::Zero(), 100 * kMiB);  // busy until 1s
  SimTime done = ch.EnqueueTransfer(SimTime::Seconds(10), 100 * kMiB);
  EXPECT_NEAR(done.seconds(), 11.0, 1e-9);
}

TEST(SharedChannelTest, QueueDelayReflectsBacklog) {
  SharedChannel ch(Link(100.0 * kMiB, SimTime::Zero()));
  EXPECT_EQ(ch.QueueDelay(SimTime::Zero()), SimTime::Zero());
  ch.EnqueueTransfer(SimTime::Zero(), 300 * kMiB);  // busy until 3s
  EXPECT_NEAR(ch.QueueDelay(SimTime::Seconds(1)).seconds(), 2.0, 1e-9);
  EXPECT_EQ(ch.QueueDelay(SimTime::Seconds(5)), SimTime::Zero());
}

TEST(SharedChannelTest, AccountsTotals) {
  SharedChannel ch(Link(kGigEBytesPerSec, SimTime::Zero()));
  ch.EnqueueTransfer(SimTime::Zero(), 10 * kMiB);
  ch.EnqueueTransfer(SimTime::Zero(), 20 * kMiB);
  EXPECT_EQ(ch.total_bytes(), 30 * kMiB);
  EXPECT_EQ(ch.total_transfers(), 2u);
}

}  // namespace
}  // namespace oasis
