#include "src/ctrl/rpc_bus.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/trace.h"

namespace oasis {
namespace {

AckResponse Ack(const std::string& detail) {
  AckResponse r;
  r.ok = true;
  r.detail = detail;
  return r;
}

TEST(RpcBusTest, CallRoundTripsThroughWireEncoding) {
  RpcBus bus;
  ASSERT_TRUE(bus.RegisterEndpoint("agent", [](const ControlMessage& m) -> ControlMessage {
                   EXPECT_TRUE(std::holds_alternative<StatsRequest>(m));
                   return Ack("ok");
                 }).ok());
  StatusOr<ControlMessage> response = bus.Call("manager", "agent", StatsRequest{});
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(std::get<AckResponse>(*response).ok);
}

TEST(RpcBusTest, CallsCountExchangesNotLegs) {
  RpcBus bus;
  ASSERT_TRUE(
      bus.RegisterEndpoint("agent", [](const ControlMessage&) -> ControlMessage {
           return Ack("ok");
         }).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(bus.Call("manager", "agent", StatsRequest{}).ok());
  }
  EXPECT_EQ(bus.calls(), 3u);
}

TEST(RpcBusTest, BytesTransferredIsSumOfBothWireLegs) {
  RpcBus bus;
  ControlMessage response_msg = Ack("fine");
  ASSERT_TRUE(bus.RegisterEndpoint("agent",
                                   [response_msg](const ControlMessage&) -> ControlMessage {
                                     return response_msg;
                                   })
                  .ok());
  ControlMessage request = StatsRequest{};
  ASSERT_TRUE(bus.Call("manager", "agent", request).ok());
  uint64_t expected = EncodeMessage(request).size() + EncodeMessage(response_msg).size();
  EXPECT_EQ(bus.bytes_transferred(), expected);
}

TEST(RpcBusTest, LogRetentionIsCappedOnEveryPath) {
  RpcBus bus;
  ASSERT_TRUE(
      bus.RegisterEndpoint("agent", [](const ControlMessage&) -> ControlMessage {
           return Ack("ok");
         }).ok());
  // 100 calls record 200 wire lines; the ring must never exceed its cap.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(bus.Call("manager", "agent", StatsRequest{}).ok());
    EXPECT_LE(bus.log().size(), bus.log_capacity());
  }
  std::vector<std::string> log = bus.log();
  EXPECT_EQ(log.size(), bus.log_capacity());
  // Newest entry last; the final recorded line is the response leg.
  EXPECT_EQ(log.back().rfind("agent->manager ", 0), 0u);
  // Oldest-first ordering: request legs precede their response legs.
  EXPECT_EQ(log[log.size() - 2].rfind("manager->agent ", 0), 0u);
}

TEST(RpcBusTest, CallToMissingEndpointFails) {
  RpcBus bus;
  StatusOr<ControlMessage> response = bus.Call("manager", "ghost", StatsRequest{});
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(bus.calls(), 0u);
  EXPECT_EQ(bus.bytes_transferred(), 0u);
}

TEST(RpcBusTest, TracedCallsEmitRpcSpansAtSimTime) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.set_enabled(true);
  RpcBus bus;
  ASSERT_TRUE(
      bus.RegisterEndpoint("agent", [](const ControlMessage&) -> ControlMessage {
           return Ack("ok");
         }).ok());
  bus.set_now(SimTime::Seconds(12));
  MigrateCommand cmd;
  cmd.vmid = "vm-3";
  cmd.destination = 2;
  ASSERT_TRUE(bus.Call("manager", "agent", cmd).ok());
  tracer.set_enabled(false);

  bool found = false;
  for (const obs::TraceEvent& e : tracer.Events()) {
    if (std::string(e.category) == "rpc" && std::string(e.name) == "MIGRATE") {
      found = true;
      EXPECT_EQ(e.ts_us, SimTime::Seconds(12).micros());
      EXPECT_EQ(e.args.bytes, static_cast<int64_t>(bus.bytes_transferred()));
    }
  }
  EXPECT_TRUE(found) << "no rpc span recorded";
  tracer.Clear();
}

}  // namespace
}  // namespace oasis
