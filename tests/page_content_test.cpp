#include "src/mem/page_content.h"

#include <gtest/gtest.h>

namespace oasis {
namespace {

TEST(PageContentTest, DeterministicPerPage) {
  PageContentGenerator gen(42);
  EXPECT_EQ(gen.Generate(7), gen.Generate(7));
  EXPECT_EQ(gen.ClassOf(7), gen.ClassOf(7));
}

TEST(PageContentTest, DifferentVmsDiffer) {
  PageContentGenerator a(1);
  PageContentGenerator b(2);
  int identical = 0;
  for (uint64_t p = 0; p < 50; ++p) {
    if (a.Generate(p) == b.Generate(p)) {
      ++identical;
    }
  }
  // Only zero pages can coincide across VMs.
  EXPECT_LT(identical, 25);
}

TEST(PageContentTest, VersionChangesContent) {
  PageContentGenerator gen(3);
  // Find a non-zero page.
  for (uint64_t p = 0; p < 100; ++p) {
    if (gen.ClassOf(p) != PageClass::kZero) {
      EXPECT_NE(gen.Generate(p, 0), gen.Generate(p, 1)) << "page " << p;
      return;
    }
  }
  FAIL() << "no non-zero page found in first 100";
}

TEST(PageContentTest, PageSizeIsAlways4KiB) {
  PageContentGenerator gen(5);
  for (uint64_t p = 0; p < 20; ++p) {
    EXPECT_EQ(gen.Generate(p).size(), kPageSize);
  }
}

TEST(PageContentTest, ZeroPagesAreAllZero) {
  PageContentGenerator gen(9);
  for (uint64_t p = 0; p < 200; ++p) {
    if (gen.ClassOf(p) == PageClass::kZero) {
      PageBytes page = gen.Generate(p);
      for (uint8_t byte : page) {
        ASSERT_EQ(byte, 0);
      }
      return;
    }
  }
  FAIL() << "no zero page found";
}

TEST(PageContentTest, ClassMixRoughlyMatchesConfiguration) {
  PageClassMix mix;  // defaults: 0.18 / 0.34 / 0.30 / 0.18
  PageContentGenerator gen(11, mix);
  int counts[4] = {0, 0, 0, 0};
  const int n = 5000;
  for (uint64_t p = 0; p < n; ++p) {
    ++counts[static_cast<int>(gen.ClassOf(p))];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), mix.zero, 0.03);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), mix.text, 0.03);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), mix.code, 0.03);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), mix.random, 0.03);
}

TEST(PageContentTest, CustomMixAllText) {
  PageClassMix mix{0.0, 1.0, 0.0, 0.0};
  PageContentGenerator gen(13, mix);
  for (uint64_t p = 0; p < 50; ++p) {
    EXPECT_EQ(gen.ClassOf(p), PageClass::kText);
  }
}

TEST(PageContentTest, ClassNames) {
  EXPECT_STREQ(PageClassName(PageClass::kZero), "zero");
  EXPECT_STREQ(PageClassName(PageClass::kText), "text");
  EXPECT_STREQ(PageClassName(PageClass::kCode), "code");
  EXPECT_STREQ(PageClassName(PageClass::kRandom), "random");
}

}  // namespace
}  // namespace oasis
