#include "src/core/oasis.h"

#include <gtest/gtest.h>

namespace oasis {
namespace {

SimulationConfig SmallConfig() {
  SimulationConfig config;
  config.cluster.num_home_hosts = 3;
  config.cluster.num_consolidation_hosts = 1;
  config.cluster.vms_per_home = 4;
  config.seed = 5;
  return config;
}

TEST(ClusterSimulationTest, RunsAndReturnsTrace) {
  SimulationConfig config = SmallConfig();
  ClusterSimulation sim(config);
  SimulationResult result = sim.Run();
  EXPECT_EQ(result.trace.size(), static_cast<size_t>(config.cluster.TotalVms()));
  EXPECT_GT(result.metrics.baseline_energy, 0.0);
  EXPECT_EQ(result.metrics.timeline.size(), static_cast<size_t>(kIntervalsPerDay));
}

TEST(ClusterSimulationTest, SameSeedSameResult) {
  SimulationConfig config = SmallConfig();
  SimulationResult a = ClusterSimulation(config).Run();
  SimulationResult b = ClusterSimulation(config).Run();
  EXPECT_DOUBLE_EQ(a.metrics.TotalEnergy(), b.metrics.TotalEnergy());
  EXPECT_EQ(a.trace[0].bits(), b.trace[0].bits());
}

TEST(ClusterSimulationTest, DifferentSeedsDiffer) {
  SimulationConfig a_config = SmallConfig();
  SimulationConfig b_config = SmallConfig();
  b_config.seed = 6;
  SimulationResult a = ClusterSimulation(a_config).Run();
  SimulationResult b = ClusterSimulation(b_config).Run();
  EXPECT_NE(a.metrics.TotalEnergy(), b.metrics.TotalEnergy());
}

TEST(ClusterSimulationTest, FixedTraceOverridesGenerator) {
  SimulationConfig config = SmallConfig();
  TraceSet trace(config.cluster.TotalVms(), UserDay{});  // everyone idle
  config.fixed_trace = trace;
  SimulationResult result = ClusterSimulation(config).Run();
  EXPECT_EQ(result.metrics.timeline.back().active_vms, 0);
  EXPECT_GT(result.metrics.EnergySavings(), 0.08);
}

TEST(ClusterSimulationTest, WeekendsQuieterThanWeekdays) {
  SimulationConfig weekday = SmallConfig();
  SimulationConfig weekend = SmallConfig();
  weekend.day = DayKind::kWeekend;
  SimulationResult wd = ClusterSimulation(weekday).Run();
  SimulationResult we = ClusterSimulation(weekend).Run();
  int wd_peak = 0;
  int we_peak = 0;
  for (const auto& s : wd.metrics.timeline) {
    wd_peak = std::max(wd_peak, s.active_vms);
  }
  for (const auto& s : we.metrics.timeline) {
    we_peak = std::max(we_peak, s.active_vms);
  }
  EXPECT_LT(we_peak, wd_peak);
}

TEST(RunRepeatedTest, AggregatesRuns) {
  SimulationConfig config = SmallConfig();
  RepeatedRunResult result = RunRepeated(config, 3);
  EXPECT_EQ(result.runs.size(), 3u);
  EXPECT_EQ(result.savings.count(), 3u);
  EXPECT_GT(result.baseline_energy_kwh.mean(), 0.0);
  // Different per-run seeds: not all runs identical.
  EXPECT_GT(result.total_energy_kwh.max() - result.total_energy_kwh.min(), 0.0);
}

TEST(RunRepeatedTest, MeanSavingsWithinRunEnvelope) {
  SimulationConfig config = SmallConfig();
  RepeatedRunResult result = RunRepeated(config, 3);
  EXPECT_GE(result.savings.mean(), result.savings.min());
  EXPECT_LE(result.savings.mean(), result.savings.max());
}

}  // namespace
}  // namespace oasis
