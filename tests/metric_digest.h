// FNV-1a digest over every observable field of a SimulationResult.
//
// The metamorphic suite phrases its properties as digest equalities: "same
// seed, same digest", "OASIS_JOBS=1 and N, same digest", "faults disabled,
// same digest as the pre-fault build". Folding *all* of the metrics — the
// energy integrals, the Fig 7 timeline, the CDF samples, traffic by
// category, the fault accounting — makes those equalities far stronger than
// comparing a handful of headline numbers: a single perturbed interval or a
// one-ULP energy drift flips the digest.

#ifndef OASIS_TESTS_METRIC_DIGEST_H_
#define OASIS_TESTS_METRIC_DIGEST_H_

#include <cstdint>
#include <cstring>

#include "src/core/oasis.h"

namespace oasis {
namespace testing {

class MetricDigest {
 public:
  void Fold(uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash_ ^= (value >> (8 * byte)) & 0xFF;
      hash_ *= 0x100000001b3ull;
    }
  }
  void Fold(double value) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    Fold(bits);
  }
  void Fold(SimTime t) { Fold(static_cast<uint64_t>(t.micros())); }

  uint64_t hash() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ull;  // FNV-1a offset basis
};

inline uint64_t DigestMetrics(const ClusterMetrics& m) {
  MetricDigest d;
  d.Fold(m.home_host_energy);
  d.Fold(m.consolidation_host_energy);
  d.Fold(m.memory_server_energy);
  d.Fold(m.baseline_energy);
  for (const IntervalSnapshot& s : m.timeline) {
    d.Fold(s.time);
    d.Fold(static_cast<uint64_t>(s.active_vms));
    d.Fold(static_cast<uint64_t>(s.powered_hosts));
    d.Fold(static_cast<uint64_t>(s.powered_home_hosts));
    d.Fold(static_cast<uint64_t>(s.powered_consolidation_hosts));
    d.Fold(static_cast<uint64_t>(s.partial_vms));
    d.Fold(static_cast<uint64_t>(s.full_at_consolidation_vms));
  }
  for (double sample : m.consolidation_ratio.sorted_samples()) {
    d.Fold(sample);
  }
  for (double sample : m.transition_delay_s.sorted_samples()) {
    d.Fold(sample);
  }
  for (int c = 0; c < static_cast<int>(TrafficCategory::kCategoryCount); ++c) {
    TrafficCategory category = static_cast<TrafficCategory>(c);
    d.Fold(m.traffic.Total(category));
    d.Fold(m.traffic.Count(category));
  }
  d.Fold(m.full_migrations);
  d.Fold(m.partial_migrations);
  d.Fold(m.reintegrations);
  d.Fold(m.host_sleeps);
  d.Fold(m.host_wakes);
  d.Fold(m.capacity_exhaustions);
  d.Fold(m.full_to_partial_swaps);
  d.Fold(m.new_home_moves);
  d.Fold(m.faults_injected);
  d.Fold(m.faults_recovered);
  d.Fold(m.crash_vm_restarts);
  for (int c = 0; c < kNumFaultClasses; ++c) {
    d.Fold(m.fault_injected_by_class[c]);
    d.Fold(m.fault_recovered_by_class[c]);
    d.Fold(m.fault_skipped_by_class[c]);
  }
  d.Fold(m.events_dispatched);
  return d.hash();
}

inline uint64_t DigestResult(const SimulationResult& result) {
  return DigestMetrics(result.metrics);
}

}  // namespace testing
}  // namespace oasis

#endif  // OASIS_TESTS_METRIC_DIGEST_H_
