// Shared helpers for the table/figure reproduction harnesses.

#ifndef OASIS_BENCH_BENCH_UTIL_H_
#define OASIS_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "src/cluster/strategy.h"
#include "src/core/oasis.h"
#include "src/obs/obs.h"

namespace oasis {

// The paper's standard rack: 30 home hosts x 30 VMs plus N consolidation
// hosts (§5.1).
inline SimulationConfig PaperCluster(ConsolidationPolicy policy, int consolidation_hosts,
                                     DayKind day) {
  SimulationConfig config;
  config.cluster.num_home_hosts = 30;
  config.cluster.num_consolidation_hosts = consolidation_hosts;
  config.cluster.vms_per_home = 30;
  config.cluster.policy = policy;
  config.day = day;
  config.seed = 20160418;  // EuroSys'16 opening day
  obs::ApplySeedOverride(&config.seed);
  // Honour OASIS_POLICY; per-experiment strategy_name assignments made
  // after this call still win (the ablation harness relies on that).
  ApplyPolicyOverride(&config.cluster);
  return config;
}

// Number of repetitions per datapoint (§5.3 averages five runs). Override
// with OASIS_BENCH_RUNS for quicker smoke runs.
inline int BenchRuns() {
  if (const char* env = std::getenv("OASIS_BENCH_RUNS")) {
    int n = std::atoi(env);
    if (n > 0) {
      return n;
    }
  }
  return 5;
}

// When OASIS_CSV_DIR is set, benches also write their data series as
// <dir>/<name>.csv for external plotting. Returns nullptr otherwise.
inline std::unique_ptr<std::ofstream> CsvFileFor(const std::string& name) {
  const char* dir = std::getenv("OASIS_CSV_DIR");
  if (dir == nullptr || *dir == '\0') {
    return nullptr;
  }
  auto file = std::make_unique<std::ofstream>(std::string(dir) + "/" + name + ".csv");
  if (!*file) {
    return nullptr;
  }
  return file;
}

inline const ConsolidationPolicy kAllPolicies[] = {
    ConsolidationPolicy::kOnlyPartial,
    ConsolidationPolicy::kDefault,
    ConsolidationPolicy::kFullToPartial,
    ConsolidationPolicy::kNewHome,
};

}  // namespace oasis

#endif  // OASIS_BENCH_BENCH_UTIL_H_
