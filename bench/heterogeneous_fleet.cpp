// Heterogeneous fleets: every registered strategy on a mixed-generation rack.
//
// The paper evaluates one host model (Table 1); real clusters run several
// procurement generations side by side. This bench builds the standard
// 30+4 weekday rack from three catalog generations — table1 homes, hungry
// legacy-no-s3 homes that cannot enter S3, and efficient-v2 hosts with a
// cheaper sleep state and 25% more memory — and compares all four registry
// strategies plus the offline oracle bound on the exact same days.
//
// The per-generation sleep columns are the point: every strategy's §3.1
// gate now prices each home at its own curve, and the s3 eligibility gate
// keeps legacy-no-s3 homes powered (they sponsor, but never sleep), so
// their band must read 0.0 while the S3-capable bands do the sleeping.
//
// Environment:
//   OASIS_FLEET=<gen:count,...>  overrides the default mix (generations from
//                                the src/power catalog). Anything malformed —
//                                including an unknown generation name — exits
//                                with status 2, matching the OASIS_CHECK /
//                                OASIS_DC_RACKS convention.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/check/check.h"
#include "src/cluster/oracle.h"
#include "src/cluster/strategy.h"
#include "src/common/table.h"
#include "src/exp/exp.h"
#include "src/obs/obs.h"
#include "src/power/host_profile.h"

namespace oasis {
namespace {

// Homes 0-9 run the paper's host, homes 10-19 the S3-incapable legacy
// boxes, homes 20-29 and all four consolidation hosts the efficient
// generation (the consolidation tier must be sleep-capable or nothing the
// drain saves comes back).
constexpr const char* kDefaultFleetSpec = "table1:10,legacy-no-s3:10,efficient-v2:14";

FleetMix FleetFromEnv() {
  const char* env = std::getenv("OASIS_FLEET");
  const std::string spec =
      (env == nullptr || *env == '\0') ? kDefaultFleetSpec : env;
  StatusOr<FleetMix> mix = ParseFleetMix(spec);
  if (!mix.ok()) {
    std::fprintf(stderr,
                 "bad OASIS_FLEET \"%s\": %s (accepted: generation:count pairs "
                 "joined by commas, generations from the catalog: %s)\n",
                 spec.c_str(), mix.status().ToString().c_str(),
                 HostGenerationNames().c_str());
    std::exit(2);
  }
  return *mix;
}

uint64_t FnvFold(uint64_t hash, uint64_t value) {
  for (int b = 0; b < 8; ++b) {
    hash ^= (value >> (b * 8)) & 0xFFu;
    hash *= 1099511628211ULL;
  }
  return hash;
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void FleetSweep(int runs) {
  const FleetMix mix = FleetFromEnv();
  const std::vector<std::string>& names = RegisteredStrategyNames();

  exp::ExperimentPlan plan;
  std::vector<exp::RepetitionSpan> spans;
  uint64_t base_seed = 0;
  ClusterConfig oracle_cluster;
  for (const std::string& name : names) {
    SimulationConfig config =
        PaperCluster(ConsolidationPolicy::kFullToPartial, 4, DayKind::kWeekday);
    config.cluster.strategy_name = name;
    config.cluster.fleet = mix;
    Status valid = config.cluster.Validate();
    if (!valid.ok()) {
      std::fprintf(stderr, "bad OASIS_FLEET for the 30+4 rack: %s\n",
                   valid.ToString().c_str());
      std::exit(2);
    }
    base_seed = config.seed;
    oracle_cluster = config.cluster;
    spans.push_back(plan.AddRepetitions(config, runs));
  }
  std::vector<SimulationResult> results = exp::RunParallel(plan);

  // One oracle solve per repetition (the per-class DayModel prices each
  // home generation separately and never sleeps the legacy band), shared
  // across strategy rows exactly like ablation_policy.
  OfflineOracle solver(oracle_cluster);
  std::vector<OracleResult> oracle;
  oracle.reserve(static_cast<size_t>(runs));
  for (int r = 0; r < runs; ++r) {
    const SimulationResult& rep = results[spans[0].first + static_cast<size_t>(r)];
    oracle.push_back(
        solver.Solve(rep.trace, exp::ExperimentPlan::DeriveSeed(base_seed, r)));
  }
  std::vector<double> mean_gap(names.size(), 0.0);
  for (size_t row = 0; row < names.size(); ++row) {
    for (int r = 0; r < runs; ++r) {
      const ClusterMetrics& m =
          results[spans[row].first + static_cast<size_t>(r)].metrics;
      mean_gap[row] += OptimalityGap(m.TotalEnergy(), oracle[static_cast<size_t>(r)]);
    }
    mean_gap[row] /= static_cast<double>(runs);
  }
  double oracle_savings = 0.0;
  double relaxed_savings = 0.0;
  for (const OracleResult& r : oracle) {
    oracle_savings += r.ScheduleSavings();
    relaxed_savings += 1.0 - r.relaxed_lower_bound / r.baseline_energy;
  }
  oracle_savings /= static_cast<double>(runs);
  relaxed_savings /= static_cast<double>(runs);

  std::printf("fleet:");
  for (const FleetSegment& segment : mix.segments) {
    std::printf(" %s x %d", segment.generation.c_str(), segment.count);
  }
  std::printf("\n\n");

  // One sleep-hours-per-host column per fleet segment (profile class
  // k + 1); the uncovered class-0 remainder gets a column only if it has
  // hosts.
  std::vector<std::string> header = {"strategy", "savings", "gap vs oracle",
                                     "host sleeps"};
  for (const FleetSegment& segment : mix.segments) {
    header.push_back(segment.generation + " slp h");
  }
  const ClusterMetrics& probe =
      results[spans[0].first].metrics;
  const bool has_default_band =
      !probe.hosts_by_class.empty() && probe.hosts_by_class[0] > 0;
  if (has_default_band) {
    header.push_back("default slp h");
  }

  uint64_t digest = 1469598103934665603ULL;
  for (const OracleResult& r : oracle) {
    digest = FnvFold(digest, r.Digest());
  }

  TextTable table(header);
  for (size_t row = 0; row < names.size(); ++row) {
    RepeatedRunResult result = exp::CollectRepeated(results, spans[row]);
    const ClusterMetrics& m = result.runs[0].metrics;
    std::vector<std::string> cells = {names[row], TextTable::Pct(result.savings.mean()),
                                      TextTable::Pct(mean_gap[row]),
                                      std::to_string(m.host_sleeps)};
    auto band_hours = [&m](size_t cls) {
      if (cls >= m.hosts_by_class.size() || m.hosts_by_class[cls] == 0) {
        return 0.0;
      }
      return m.host_sleep_seconds_by_class[cls] / 3600.0 /
             static_cast<double>(m.hosts_by_class[cls]);
    };
    for (size_t s = 0; s < mix.segments.size(); ++s) {
      cells.push_back(TextTable::Num(band_hours(s + 1), 1));
    }
    if (has_default_band) {
      cells.push_back(TextTable::Num(band_hours(0), 1));
    }
    table.AddRow(cells);
    digest = FnvFold(digest, DoubleBits(result.savings.mean()));
  }
  table.Print(std::cout);
  std::printf("\noracle: hindsight schedule saves %.1f%% (relaxed interval bound %.1f%%), "
              "digest 0x%016" PRIx64 "\n",
              oracle_savings * 100.0, relaxed_savings * 100.0, digest);
  std::printf(
      "\nEach home is priced at its own generation's curve: vacating a table1\n"
      "home saves more absolute watts than an efficient-v2 home, and the s3\n"
      "eligibility gate never parks a legacy-no-s3 home at all — its sleep\n"
      "column must read 0.0 while it keeps sponsoring guests. The oracle bound\n"
      "prices the same mixed fleet per class, so \"gap vs oracle\" stays\n"
      "comparable across generations.\n");
}

}  // namespace
}  // namespace oasis

int main() {
  // Invariant checking per OASIS_CHECK (off | warn | strict); declared
  // before ObsScope so traces flush before any strict exit.
  oasis::check::CheckScope check_scope;
  oasis::obs::ObsScope obs_scope;
  using namespace oasis;
  PrintExperimentHeader(std::cout, "Heterogeneous fleet - mixed host generations",
                        "The standard 30+4 weekday rack built from three catalog "
                        "generations (table1, legacy-no-s3, efficient-v2): every "
                        "registered strategy prices per-host power curves, the s3 "
                        "gate keeps incapable homes powered, and the oracle bound "
                        "prices the same mix per class.");
  FleetSweep(std::max(1, BenchRuns() - 2));
  return 0;
}
