// Figure 7: number of active VMs and fully powered hosts over one simulated
// day, 30 home + 4 consolidation hosts, FulltoPartial policy.
//
// Paper reference points: diurnal weekday activity peaking around 14:00
// (never above 411 of 900 VMs = 46%) and bottoming out around 06:30; at the
// trough all 900 VMs fit into a handful of consolidation hosts.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/csv.h"
#include "src/common/table.h"
#include "src/exp/exp.h"
#include "src/check/check.h"
#include "src/obs/obs.h"

namespace oasis {
namespace {

void PrintDay(DayKind day, const SimulationConfig& config, const SimulationResult& result) {
  const auto& timeline = result.metrics.timeline;

  if (auto file = CsvFileFor(std::string("fig07_") + DayKindName(day))) {
    CsvWriter csv(*file, {"hour", "active_vms", "powered_hosts", "powered_homes",
                          "powered_consolidation", "partial_vms"});
    for (const IntervalSnapshot& s : timeline) {
      csv.WriteRow({TextTable::Num(s.time.hours(), 3), std::to_string(s.active_vms),
                    std::to_string(s.powered_hosts), std::to_string(s.powered_home_hosts),
                    std::to_string(s.powered_consolidation_hosts),
                    std::to_string(s.partial_vms)});
    }
  }

  std::printf("\n-- %s --\n", DayKindName(day));
  TextTable table({"time", "active VMs", "powered hosts", "powered homes",
                   "powered consolidation", "partial VMs"});
  for (size_t i = 0; i < timeline.size(); i += 12) {  // hourly
    const IntervalSnapshot& s = timeline[i];
    table.AddRow({s.time.ToClockString(), std::to_string(s.active_vms),
                  std::to_string(s.powered_hosts), std::to_string(s.powered_home_hosts),
                  std::to_string(s.powered_consolidation_hosts),
                  std::to_string(s.partial_vms)});
  }
  table.Print(std::cout);

  int peak_active = 0;
  size_t peak_i = 0;
  int min_powered = INT32_MAX;
  // Ignore the first hour while the initial placement settles.
  for (size_t i = 12; i < timeline.size(); ++i) {
    if (timeline[i].active_vms > peak_active) {
      peak_active = timeline[i].active_vms;
      peak_i = i;
    }
    min_powered = std::min(min_powered, timeline[i].powered_hosts);
  }
  std::printf("peak: %d active VMs (%.0f%%) at %s; minimum powered hosts: %d\n", peak_active,
              100.0 * peak_active / config.cluster.TotalVms(),
              timeline[peak_i].time.ToClockString().c_str(), min_powered);
}

}  // namespace
}  // namespace oasis

int main() {
  // Honour OASIS_TRACE / OASIS_METRICS / OASIS_LOG_LEVEL for this run.
  // Invariant checking per OASIS_CHECK (off | warn | strict); declared
  // before ObsScope so traces flush before any strict exit.
  oasis::check::CheckScope check_scope;
  oasis::obs::ObsScope obs_scope;
  using namespace oasis;
  PrintExperimentHeader(std::cout,
                        "Figure 7 - Active VMs and powered hosts over a simulation day",
                        "30 home + 4 consolidation hosts, 900 VMs, FulltoPartial policy "
                        "(paper: weekday peak 411 active VMs at ~14:00, trough ~06:30).");
  // Both day panels are independent runs: plan them together and let the
  // experiment runner execute them on OASIS_JOBS workers, then print in
  // plan order (identical output at any job count).
  exp::ExperimentPlan plan;
  const DayKind days[] = {DayKind::kWeekday, DayKind::kWeekend};
  std::vector<SimulationConfig> configs;
  for (DayKind day : days) {
    configs.push_back(PaperCluster(ConsolidationPolicy::kFullToPartial, 4, day));
    plan.Add(configs.back());
  }
  std::vector<SimulationResult> results = exp::RunParallel(plan);
  for (size_t i = 0; i < configs.size(); ++i) {
    PrintDay(days[i], configs[i], results[i]);
  }
  return 0;
}
