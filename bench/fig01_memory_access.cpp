// Figure 1: cumulative unique memory touched by idle VMs over one hour.
//
// Paper reference points (4 GiB VMs, 1 idle hour):
//   desktop 188.2 MiB, web server 37.6 MiB, database 30.6 MiB  (< 5% of RAM)

#include <cstdio>
#include <iostream>

#include "src/common/table.h"
#include "src/mem/access_generator.h"
#include "src/check/check.h"
#include "src/obs/obs.h"

int main() {
  // Honour OASIS_TRACE / OASIS_METRICS / OASIS_LOG_LEVEL for this run.
  // Invariant checking per OASIS_CHECK (off | warn | strict); declared
  // before ObsScope so traces flush before any strict exit.
  oasis::check::CheckScope check_scope;
  oasis::obs::ObsScope obs_scope;
  using namespace oasis;
  PrintExperimentHeader(std::cout, "Figure 1 - Memory access pattern of idle VMs",
                        "Cumulative unique MiB touched while idle (4 GiB allocation).");

  IdleAccessGenerator desktop(VmType::kDesktop, 1);
  IdleAccessGenerator web(VmType::kWebServer, 2);
  IdleAccessGenerator db(VmType::kDatabase, 3);

  TextTable table({"idle minutes", "desktop (MiB)", "web (MiB)", "database (MiB)"});
  for (int minute : {1, 2, 5, 10, 15, 20, 30, 40, 50, 60}) {
    SimTime t = SimTime::Minutes(minute);
    table.AddRow({std::to_string(minute),
                  TextTable::Num(ToMiB(desktop.CumulativeUniqueBytes(t)), 1),
                  TextTable::Num(ToMiB(web.CumulativeUniqueBytes(t)), 1),
                  TextTable::Num(ToMiB(db.CumulativeUniqueBytes(t)), 1)});
  }
  table.Print(std::cout);

  SimTime hour = SimTime::Hours(1);
  std::printf("\nAfter 1 idle hour (paper: desktop 188.2, web 37.6, db 30.6 MiB):\n");
  std::printf("  desktop %.1f MiB (%.2f%% of 4 GiB), web %.1f MiB, db %.1f MiB\n",
              ToMiB(desktop.CumulativeUniqueBytes(hour)),
              100.0 * static_cast<double>(desktop.CumulativeUniqueBytes(hour)) / (4.0 * kGiB),
              ToMiB(web.CumulativeUniqueBytes(hour)),
              ToMiB(db.CumulativeUniqueBytes(hour)));
  return 0;
}
