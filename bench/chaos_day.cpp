// Chaos day: one full simulated cluster day with every fault class enabled
// at the FaultConfig::ChaosDay() rates — host crashes, WoL packet loss, S3
// resume hangs, memory-server failures and migration-stream aborts — next to
// a fault-free control run with the same seed.
//
// The run is fully deterministic: re-running (or overriding OASIS_SEED) makes
// the same faults fire at the same sim-times. The report shows the per-class
// injected/recovered/skipped accounting and what the chaos cost in energy
// and user-visible latency. Export the pairing evidence with
//
//   OASIS_TRACE=chaos.jsonl OASIS_METRICS=chaos.csv ./build/bench/chaos_day

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/exp/exp.h"
#include "src/fault/fault.h"
#include "src/check/check.h"
#include "src/obs/obs.h"
#include "src/trace/trace_generator.h"

int main() {
  // Honour OASIS_TRACE / OASIS_METRICS / OASIS_LOG_LEVEL for this run.
  // Invariant checking per OASIS_CHECK (off | warn | strict); declared
  // before ObsScope so traces flush before any strict exit.
  oasis::check::CheckScope check_scope;
  oasis::obs::ObsScope obs_scope;
  using namespace oasis;
  PrintExperimentHeader(std::cout, "Chaos day - failure injection and recovery",
                        "One simulated day of the 30+4 rack under ChaosDay fault rates "
                        "vs a fault-free control run with the same seed. Every injected "
                        "fault must pair with a completed recovery.");

  SimulationConfig config = PaperCluster(ConsolidationPolicy::kFullToPartial, 4,
                                         DayKind::kWeekday);
  TraceGenerator generator(config.trace, config.seed ^ 0x7ACEBA5Eull);
  TraceSet trace = generator.GenerateTraceSet(config.cluster.TotalVms(), config.day);

  // Control and chaos share one pre-generated trace (fixed_trace pins it)
  // and differ only in the fault config — two independent runs the
  // experiment runner can execute side by side.
  SimulationConfig control_config = config;
  control_config.fixed_trace = trace;
  SimulationConfig chaos_config = control_config;
  chaos_config.cluster.fault = FaultConfig::ChaosDay();

  exp::ExperimentPlan plan;
  plan.Add(control_config);
  plan.Add(chaos_config);
  std::vector<SimulationResult> results = exp::RunParallel(plan);
  const ClusterMetrics& control_metrics = results[0].metrics;
  const ClusterMetrics& chaos_metrics = results[1].metrics;

  TextTable faults({"fault class", "injected", "recovered", "skipped"});
  for (int c = 0; c < kNumFaultClasses; ++c) {
    FaultClass fault = static_cast<FaultClass>(c);
    faults.AddRow({FaultClassName(fault),
                   std::to_string(chaos_metrics.fault_injected_by_class[c]),
                   std::to_string(chaos_metrics.fault_recovered_by_class[c]),
                   std::to_string(chaos_metrics.fault_skipped_by_class[c])});
  }
  faults.Print(std::cout);

  TextTable impact({"metric", "control", "chaos"});
  impact.AddRow({"energy savings (%)",
                 TextTable::Num(100.0 * control_metrics.EnergySavings(), 1),
                 TextTable::Num(100.0 * chaos_metrics.EnergySavings(), 1)});
  impact.AddRow({"total energy (kWh)", TextTable::Num(ToKWh(control_metrics.TotalEnergy()), 2),
                 TextTable::Num(ToKWh(chaos_metrics.TotalEnergy()), 2)});
  impact.AddRow({"transition delay p95 (s)",
                 TextTable::Num(control_metrics.transition_delay_s.Quantile(0.95), 1),
                 TextTable::Num(chaos_metrics.transition_delay_s.Quantile(0.95), 1)});
  impact.AddRow({"host wakes", std::to_string(control_metrics.host_wakes),
                 std::to_string(chaos_metrics.host_wakes)});
  impact.AddRow({"reintegrations", std::to_string(control_metrics.reintegrations),
                 std::to_string(chaos_metrics.reintegrations)});
  impact.AddRow({"VM restarts after crashes", std::to_string(control_metrics.crash_vm_restarts),
                 std::to_string(chaos_metrics.crash_vm_restarts)});
  impact.Print(std::cout);

  std::printf("\nfaults: %llu injected, %llu recovered (%s)\n",
              static_cast<unsigned long long>(chaos_metrics.faults_injected),
              static_cast<unsigned long long>(chaos_metrics.faults_recovered),
              chaos_metrics.faults_injected == chaos_metrics.faults_recovered
                  ? "all paired"
                  : "MISMATCH - a fault was left unrecovered");
  return chaos_metrics.faults_injected == chaos_metrics.faults_recovered ? 0 : 1;
}
