// Figure 9: CDF of the consolidation ratio — the number of VMs resident on
// each powered consolidation host, sampled every interval over the day.
//
// Paper reference points: the median rises from 60 VMs per host (Default) to
// 93 (FulltoPartial); NewHome overlaps FulltoPartial; the tail approaches
// ~800 VMs on one host (the 128 GiB capacity bound with ~165 MiB partials).

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/exp/exp.h"
#include "src/check/check.h"
#include "src/obs/obs.h"

int main() {
  // Honour OASIS_TRACE / OASIS_METRICS / OASIS_LOG_LEVEL for this run.
  // Invariant checking per OASIS_CHECK (off | warn | strict); declared
  // before ObsScope so traces flush before any strict exit.
  oasis::check::CheckScope check_scope;
  oasis::obs::ObsScope obs_scope;
  using namespace oasis;
  PrintExperimentHeader(std::cout, "Figure 9 - CDF of consolidation ratio",
                        "VMs per powered consolidation host, 30 home + 4 consolidation "
                        "hosts, weekday (paper: median 60 Default vs 93 FulltoPartial).");

  // One run per policy plus the FulltoPartial curve run at the end, planned
  // together and executed on OASIS_JOBS workers; the serial harness ran the
  // same five simulations one after another.
  exp::ExperimentPlan plan;
  for (ConsolidationPolicy policy : kAllPolicies) {
    plan.Add(PaperCluster(policy, 4, DayKind::kWeekday));
  }
  plan.Add(PaperCluster(ConsolidationPolicy::kFullToPartial, 4, DayKind::kWeekday));
  std::vector<SimulationResult> results = exp::RunParallel(plan);

  TextTable table({"policy", "p10", "p25", "median", "p75", "p90", "p99", "max"});
  size_t next = 0;
  for (ConsolidationPolicy policy : kAllPolicies) {
    SimulationResult& result = results[next++];
    const EmpiricalCdf& cdf = result.metrics.consolidation_ratio;
    if (cdf.empty()) {
      table.AddRow({ConsolidationPolicyName(policy), "-", "-", "-", "-", "-", "-", "-"});
      continue;
    }
    table.AddRow({ConsolidationPolicyName(policy), TextTable::Num(cdf.Quantile(0.10), 0),
                  TextTable::Num(cdf.Quantile(0.25), 0), TextTable::Num(cdf.Quantile(0.5), 0),
                  TextTable::Num(cdf.Quantile(0.75), 0), TextTable::Num(cdf.Quantile(0.9), 0),
                  TextTable::Num(cdf.Quantile(0.99), 0), TextTable::Num(cdf.Max(), 0)});
  }
  table.Print(std::cout);

  std::printf("\nCDF series (VMs per host at cumulative fraction), FulltoPartial:\n");
  SimulationResult& result = results[next];
  for (auto& [value, fraction] : result.metrics.consolidation_ratio.Curve(10)) {
    std::printf("  %4.0f VMs -> %.0f%%\n", value, fraction * 100.0);
  }
  return 0;
}
