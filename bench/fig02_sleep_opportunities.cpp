// Figure 2: server sleep opportunities while serving page requests,
// 1 idle database VM vs 10 co-located idle VMs (5 web + 5 db).
//
// Paper reference points: mean inter-arrival 3.9 minutes (1 VM) collapses to
// 5.8 seconds (10 VMs) — about the S3 round-trip — so a host that must wake
// per request can no longer sleep at all.

#include <cstdio>
#include <iostream>
#include <vector>

#include "src/common/table.h"
#include "src/mem/access_generator.h"
#include "src/power/power_model.h"
#include "src/check/check.h"
#include "src/obs/obs.h"

int main() {
  // Honour OASIS_TRACE / OASIS_METRICS / OASIS_LOG_LEVEL for this run.
  // Invariant checking per OASIS_CHECK (off | warn | strict); declared
  // before ObsScope so traces flush before any strict exit.
  oasis::check::CheckScope check_scope;
  oasis::obs::ObsScope obs_scope;
  using namespace oasis;
  PrintExperimentHeader(
      std::cout, "Figure 2 - Sleep opportunities with 1 VM vs 10 VMs",
      "Host wakes per page-request burst; S3 suspend 3.1 s, resume 2.3 s, 10 s linger.");

  HostPowerProfile power;
  const SimTime horizon = SimTime::Hours(12);
  const SimTime linger = SimTime::Seconds(10);

  // Single database VM.
  IdleAccessGenerator db(VmType::kDatabase, 1);
  SleepOpportunity one = ComputeSleepOpportunity(db.GenerateBurstTimes(horizon), horizon,
                                                 power.suspend_latency, power.resume_latency,
                                                 linger);

  // Ten co-located VMs: 5 web + 5 db.
  std::vector<std::vector<SimTime>> streams;
  for (int i = 0; i < 5; ++i) {
    IdleAccessGenerator web(VmType::kWebServer, 100 + i);
    IdleAccessGenerator db2(VmType::kDatabase, 200 + i);
    streams.push_back(web.GenerateBurstTimes(horizon));
    streams.push_back(db2.GenerateBurstTimes(horizon));
  }
  SleepOpportunity ten =
      ComputeSleepOpportunity(MergeRequestStreams(streams), horizon, power.suspend_latency,
                              power.resume_latency, linger);

  TextTable table({"configuration", "requests", "mean gap", "sleep fraction",
                   "sleep episodes", "effective draw (W)"});
  auto effective_draw = [&](const SleepOpportunity& s) {
    return s.sleep_fraction * power.sleep_watts + (1.0 - s.sleep_fraction) * power.idle_watts;
  };
  table.AddRow({"1 database VM", std::to_string(one.requests),
                TextTable::Num(one.mean_gap_seconds / 60.0, 1) + " min",
                TextTable::Pct(one.sleep_fraction), std::to_string(one.sleep_episodes),
                TextTable::Num(effective_draw(one), 1)});
  table.AddRow({"10 VMs (5 web + 5 db)", std::to_string(ten.requests),
                TextTable::Num(ten.mean_gap_seconds, 1) + " s",
                TextTable::Pct(ten.sleep_fraction), std::to_string(ten.sleep_episodes),
                TextTable::Num(effective_draw(ten), 1)});
  table.Print(std::cout);

  std::printf("\nPaper: 3.9 min -> 5.8 s mean gap; S3 round-trip is %.1f s, so the 10-VM\n"
              "host has effectively no opportunity to sleep (motivating the low-power\n"
              "memory server of Section 3.3).\n",
              (power.suspend_latency + power.resume_latency).seconds());

  // Extension: how quickly co-location destroys sleep as VMs accumulate.
  std::printf("\nSweep: sleep opportunity vs co-located idle VMs (half web, half db):\n");
  TextTable sweep({"VMs", "mean gap (s)", "sleep fraction"});
  for (int n : {1, 2, 4, 6, 8, 10, 15, 20, 30}) {
    std::vector<std::vector<SimTime>> vm_streams;
    for (int i = 0; i < n; ++i) {
      IdleAccessGenerator gen(i % 2 == 0 ? VmType::kDatabase : VmType::kWebServer,
                              1000 + static_cast<uint64_t>(i));
      vm_streams.push_back(gen.GenerateBurstTimes(horizon));
    }
    SleepOpportunity s =
        ComputeSleepOpportunity(MergeRequestStreams(vm_streams), horizon,
                                power.suspend_latency, power.resume_latency, linger);
    sweep.AddRow({std::to_string(n), TextTable::Num(s.mean_gap_seconds, 1),
                  TextTable::Pct(s.sleep_fraction)});
  }
  sweep.Print(std::cout);
  return 0;
}
