// Ablation: memory over-commitment (§3 assumption 1) and memory-server
// page deduplication.
//
// The paper's capacity analysis assumes consolidation is memory-bound with
// at most ~1.5x over-commit from ballooning/de-duplication. This harness
// quantifies (a) how much cluster-level savings an over-commit factor adds,
// and (b) the raw dedup factor a memory server sees across co-uploaded VM
// images (zero pages dominate).

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/exp/exp.h"
#include "src/mem/dedup.h"
#include "src/check/check.h"
#include "src/obs/obs.h"

namespace oasis {
namespace {

void ClusterOvercommitSweep(int runs) {
  std::printf("\nCluster savings vs over-commit factor (FulltoPartial, 30+4, weekday):\n");
  const double factors[] = {1.0, 1.25, 1.5};
  exp::ExperimentPlan plan;
  std::vector<exp::RepetitionSpan> spans;
  for (double factor : factors) {
    SimulationConfig config =
        PaperCluster(ConsolidationPolicy::kFullToPartial, 4, DayKind::kWeekday);
    config.cluster.memory_overcommit = factor;
    spans.push_back(plan.AddRepetitions(config, runs));
  }
  std::vector<SimulationResult> results = exp::RunParallel(plan);

  TextTable table({"over-commit", "weekday savings", "median VMs/consolidation host"});
  size_t datapoint = 0;
  for (double factor : factors) {
    RepeatedRunResult result = exp::CollectRepeated(results, spans[datapoint++]);
    double median_ratio = 0.0;
    if (!result.runs.empty() && !result.runs[0].metrics.consolidation_ratio.empty()) {
      median_ratio = result.runs[0].metrics.consolidation_ratio.Quantile(0.5);
    }
    table.AddRow({TextTable::Num(factor, 2), TextTable::Pct(result.savings.mean()),
                  TextTable::Num(median_ratio, 0)});
  }
  table.Print(std::cout);
}

void MemoryServerDedup() {
  std::printf("\nMemory-server page dedup across co-uploaded VM images:\n");
  TextTable table({"VMs uploaded", "logical", "stored", "dedup factor"});
  DedupPageStore store;
  for (int vms = 1; vms <= 16; vms *= 2) {
    // Each VM contributes a sample of its touched pages.
    for (uint64_t seed = (vms == 1 ? 0u : static_cast<uint64_t>(vms) / 2);
         seed < static_cast<uint64_t>(vms); ++seed) {
      PageContentGenerator gen(seed + 1000);
      for (uint64_t page = 0; page < 512; ++page) {
        store.Insert(gen.Generate(page));
      }
    }
    table.AddRow({std::to_string(vms), FormatBytes(store.LogicalBytes()),
                  FormatBytes(store.StoredBytes()),
                  TextTable::Num(store.DedupFactor(), 2) + "x"});
  }
  table.Print(std::cout);
  std::printf("All zero pages — inside one image and across every co-located image —\n"
              "collapse to a single stored copy; ballooning reclaims the rest of the\n"
              "headroom behind the 1.5x over-commit assumption.\n");
}

}  // namespace
}  // namespace oasis

int main() {
  // Honour OASIS_TRACE / OASIS_METRICS / OASIS_LOG_LEVEL for this run.
  // Invariant checking per OASIS_CHECK (off | warn | strict); declared
  // before ObsScope so traces flush before any strict exit.
  oasis::check::CheckScope check_scope;
  oasis::obs::ObsScope obs_scope;
  using namespace oasis;
  int runs = std::max(1, BenchRuns() - 2);
  PrintExperimentHeader(std::cout, "Ablation - memory over-commitment and dedup",
                        "Section 3 assumption 1: ballooning/de-duplication allow ~1.5x "
                        "memory over-commit; consolidation is memory-bound.");
  ClusterOvercommitSweep(runs);
  MemoryServerDedup();
  return 0;
}
