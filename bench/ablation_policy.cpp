// Ablation: pluggable consolidation strategies (control-plane policy layer).
//
// Runs the paper's standard rack for one weekday under every registered
// ConsolidationStrategy and compares the headline outcomes side by side:
// how much of the greedy §3 algorithm's savings a static bin-packer or a
// purely local per-host rule can recover, and what each one pays in
// migrations and network traffic. Run with OASIS_CHECK=strict to assert
// that every strategy keeps the cluster invariants intact.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/check/check.h"
#include "src/cluster/strategy.h"
#include "src/common/table.h"
#include "src/exp/exp.h"
#include "src/obs/obs.h"

namespace oasis {
namespace {

uint64_t NetworkTraffic(const ClusterMetrics& m) {
  // Everything that crosses the rack network; memory uploads ride the
  // shared SAS drive and are accounted separately.
  return m.traffic.Total(TrafficCategory::kFullMigration) +
         m.traffic.Total(TrafficCategory::kPartialDescriptor) +
         m.traffic.Total(TrafficCategory::kOnDemandPages) +
         m.traffic.Total(TrafficCategory::kReintegration);
}

void PolicySweep(int runs) {
  const std::vector<std::string>& names = RegisteredStrategyNames();
  exp::ExperimentPlan plan;
  std::vector<exp::RepetitionSpan> spans;
  for (const std::string& name : names) {
    SimulationConfig config =
        PaperCluster(ConsolidationPolicy::kFullToPartial, 4, DayKind::kWeekday);
    // Per-row assignment after PaperCluster so it wins over OASIS_POLICY.
    config.cluster.strategy_name = name;
    spans.push_back(plan.AddRepetitions(config, runs));
  }
  std::vector<SimulationResult> results = exp::RunParallel(plan);

  TextTable table({"strategy", "savings", "partial migs", "full migs", "host sleeps",
                   "delay p50 (s)", "network traffic"});
  for (size_t row = 0; row < names.size(); ++row) {
    RepeatedRunResult result = exp::CollectRepeated(results, spans[row]);
    const ClusterMetrics& m = result.runs[0].metrics;
    double p50 = m.transition_delay_s.empty() ? 0.0 : m.transition_delay_s.Quantile(0.5);
    table.AddRow({names[row], TextTable::Pct(result.savings.mean()),
                  std::to_string(m.partial_migrations), std::to_string(m.full_migrations),
                  std::to_string(m.host_sleeps), TextTable::Num(p50, 2),
                  FormatBytes(NetworkTraffic(m))});
  }
  table.Print(std::cout);
  std::printf(
      "\noasis-greedy is the paper's §3 planner (and the byte-identical default);\n"
      "first-fit-decreasing drops its incremental draining and power-aware host\n"
      "choice for one static packing pass; local-threshold drops the global view\n"
      "entirely and lets each home park its VMs on a fixed consolidation host.\n");
}

}  // namespace
}  // namespace oasis

int main() {
  // Invariant checking per OASIS_CHECK (off | warn | strict); declared
  // before ObsScope so traces flush before any strict exit.
  oasis::check::CheckScope check_scope;
  oasis::obs::ObsScope obs_scope;
  using namespace oasis;
  PrintExperimentHeader(std::cout, "Ablation - consolidation strategy",
                        "The pluggable policy layer: the paper's greedy planner vs "
                        "first-fit-decreasing packing vs purely local thresholds on "
                        "the standard 30+4 weekday rack.");
  PolicySweep(std::max(1, BenchRuns() - 2));
  return 0;
}
