// Ablation: pluggable consolidation strategies (control-plane policy layer).
//
// Runs the paper's standard rack for one weekday under every registered
// ConsolidationStrategy and compares the headline outcomes side by side:
// how much of the greedy §3 algorithm's savings a static bin-packer, a
// purely local per-host rule, or the forecast-driven predictive planner can
// recover, and what each one pays in migrations and network traffic. Every
// strategy is additionally measured against the offline oracle
// (src/cluster/oracle.h): "gap vs oracle" is how much more energy the
// online strategy burned than the best whole-day schedule the oracle found
// on the same completed day. Run with OASIS_CHECK=strict to assert that
// every strategy keeps the cluster invariants intact.
//
// When OASIS_BENCH_JSON is set, the per-strategy gaps are spliced into that
// snapshot as a "policy_gaps" member (tools/update_bench.sh runs this bench
// after perf_sweep so BENCH_sweep.json carries both).

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/check/check.h"
#include "src/cluster/oracle.h"
#include "src/cluster/strategy.h"
#include "src/common/table.h"
#include "src/exp/exp.h"
#include "src/obs/obs.h"

namespace oasis {
namespace {

uint64_t NetworkTraffic(const ClusterMetrics& m) {
  // Everything that crosses the rack network; memory uploads ride the
  // shared SAS drive and are accounted separately.
  return m.traffic.Total(TrafficCategory::kFullMigration) +
         m.traffic.Total(TrafficCategory::kPartialDescriptor) +
         m.traffic.Total(TrafficCategory::kOnDemandPages) +
         m.traffic.Total(TrafficCategory::kReintegration);
}

uint64_t CombineDigests(const std::vector<OracleResult>& oracle) {
  uint64_t hash = 1469598103934665603ULL;
  for (const OracleResult& r : oracle) {
    uint64_t d = r.Digest();
    for (int b = 0; b < 8; ++b) {
      hash ^= (d >> (b * 8)) & 0xFFu;
      hash *= 1099511628211ULL;
    }
  }
  return hash;
}

// Splices the gap results into the OASIS_BENCH_JSON snapshot as a
// "policy_gaps" member, replacing any previous splice. perf_sweep owns the
// file and writes it whole; this bench only appends one member before the
// closing brace (or creates a minimal object if run standalone).
void SpliceBenchJson(const std::vector<std::string>& names,
                     const std::vector<double>& gaps, double oracle_savings,
                     uint64_t digest) {
  const char* path = std::getenv("OASIS_BENCH_JSON");
  if (path == nullptr || *path == '\0') {
    return;
  }
  std::string content;
  {
    std::ifstream in(path);
    if (in) {
      content.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
  }
  size_t previous = content.find(",\n  \"policy_gaps\":");
  if (previous != std::string::npos) {
    content = content.substr(0, previous) + "\n}\n";
  }
  std::ostringstream member;
  member << ",\n  \"policy_gaps\": {\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", oracle_savings);
  member << "    \"oracle_savings\": " << buf << ",\n";
  std::snprintf(buf, sizeof(buf), "\"0x%016" PRIx64 "\"", digest);
  member << "    \"oracle_digest\": " << buf << ",\n";
  member << "    \"gaps\": {";
  for (size_t i = 0; i < names.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.6f", gaps[i]);
    member << (i == 0 ? "" : ",") << "\n      \"" << names[i] << "\": " << buf;
  }
  member << "\n    }\n  }";

  size_t brace = content.rfind('}');
  if (brace == std::string::npos) {
    content = std::string("{\n  \"bench\": \"ablation_policy\"") + member.str() + "\n}\n";
  } else {
    size_t end = content.find_last_not_of(" \t\n", brace - 1);
    content = content.substr(0, end + 1) + member.str() + "\n}\n";
  }
  std::ofstream out(path);
  out << content;
}

void PolicySweep(int runs) {
  const std::vector<std::string>& names = RegisteredStrategyNames();
  exp::ExperimentPlan plan;
  std::vector<exp::RepetitionSpan> spans;
  uint64_t base_seed = 0;
  ClusterConfig oracle_cluster;
  for (const std::string& name : names) {
    SimulationConfig config =
        PaperCluster(ConsolidationPolicy::kFullToPartial, 4, DayKind::kWeekday);
    // Per-row assignment after PaperCluster so it wins over OASIS_POLICY.
    config.cluster.strategy_name = name;
    base_seed = config.seed;
    oracle_cluster = config.cluster;
    spans.push_back(plan.AddRepetitions(config, runs));
  }
  std::vector<SimulationResult> results = exp::RunParallel(plan);

  // One oracle solve per repetition. Repetition r's day is identical across
  // strategy rows (same derived seed, same trace), so row 0's traces stand
  // in for everyone and each row's rep-r energy compares against the same
  // bound. Solved before CollectRepeated, which moves the results away.
  OfflineOracle solver(oracle_cluster);
  std::vector<OracleResult> oracle;
  oracle.reserve(static_cast<size_t>(runs));
  for (int r = 0; r < runs; ++r) {
    const SimulationResult& rep = results[spans[0].first + static_cast<size_t>(r)];
    oracle.push_back(solver.Solve(rep.trace, exp::ExperimentPlan::DeriveSeed(base_seed, r)));
  }
  std::vector<double> mean_gap(names.size(), 0.0);
  for (size_t row = 0; row < names.size(); ++row) {
    for (int r = 0; r < runs; ++r) {
      const ClusterMetrics& m =
          results[spans[row].first + static_cast<size_t>(r)].metrics;
      mean_gap[row] +=
          OptimalityGap(m.TotalEnergy(), oracle[static_cast<size_t>(r)]);
    }
    mean_gap[row] /= static_cast<double>(runs);
  }
  double oracle_savings = 0.0;
  double relaxed_savings = 0.0;
  for (const OracleResult& r : oracle) {
    oracle_savings += r.ScheduleSavings();
    relaxed_savings += 1.0 - r.relaxed_lower_bound / r.baseline_energy;
  }
  oracle_savings /= static_cast<double>(runs);
  relaxed_savings /= static_cast<double>(runs);
  uint64_t digest = CombineDigests(oracle);

  TextTable table({"strategy", "savings", "gap vs oracle", "partial migs", "full migs",
                   "host sleeps", "delay p50 (s)", "network traffic"});
  for (size_t row = 0; row < names.size(); ++row) {
    RepeatedRunResult result = exp::CollectRepeated(results, spans[row]);
    const ClusterMetrics& m = result.runs[0].metrics;
    double p50 = m.transition_delay_s.empty() ? 0.0 : m.transition_delay_s.Quantile(0.5);
    table.AddRow({names[row], TextTable::Pct(result.savings.mean()),
                  TextTable::Pct(mean_gap[row]), std::to_string(m.partial_migrations),
                  std::to_string(m.full_migrations), std::to_string(m.host_sleeps),
                  TextTable::Num(p50, 2), FormatBytes(NetworkTraffic(m))});
  }
  table.Print(std::cout);
  std::printf("\noracle: hindsight schedule saves %.1f%% (relaxed interval bound %.1f%%), "
              "digest 0x%016" PRIx64 "\n",
              oracle_savings * 100.0, relaxed_savings * 100.0, digest);
  std::printf(
      "\noasis-greedy is the paper's §3 planner (and the byte-identical default);\n"
      "first-fit-decreasing drops its incremental draining and power-aware host\n"
      "choice for one static packing pass; local-threshold drops the global view\n"
      "entirely and lets each home park its VMs on a fixed consolidation host;\n"
      "predictive adds a diurnal forecast to oasis-greedy, pre-draining into the\n"
      "trough and pre-waking ahead of the peak. \"gap vs oracle\" is each online\n"
      "strategy's extra energy over the offline oracle's whole-day schedule on\n"
      "the same completed day (0%% = matched perfect hindsight).\n");
  SpliceBenchJson(names, mean_gap, oracle_savings, digest);
}

}  // namespace
}  // namespace oasis

int main() {
  // Invariant checking per OASIS_CHECK (off | warn | strict); declared
  // before ObsScope so traces flush before any strict exit.
  oasis::check::CheckScope check_scope;
  oasis::obs::ObsScope obs_scope;
  using namespace oasis;
  PrintExperimentHeader(std::cout, "Ablation - consolidation strategy",
                        "The pluggable policy layer: the paper's greedy planner vs "
                        "first-fit-decreasing packing vs purely local thresholds vs "
                        "the predictive forecaster on the standard 30+4 weekday "
                        "rack, each measured against the offline oracle bound.");
  PolicySweep(std::max(1, BenchRuns() - 2));
  return 0;
}
