// Figure 5 (+ §4.4.3 network traffic): consolidation latencies for one VM.
//
// Replays the §4.4.1 micro-benchmark: prime a 4 GiB desktop VM with
// Workload 1, idle 5 min, partial-migrate (full upload), run 20 min on the
// consolidation host, reintegrate, run Workload 2, idle 5 min, and
// partial-migrate again (differential upload). Compares against one full
// live migration.
//
// Paper reference points: full 41 s; partial #1 15.7 s (10.2 s upload);
// partial #2 7.2 s (2.2 s differential upload); reintegration 3.7 s; network
// traffic 16.0 MiB descriptor, 56.9 MiB on-demand, 175.3 MiB reintegration.

#include <cstdio>
#include <iostream>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/hyper/memory_server.h"
#include "src/hyper/memtap.h"
#include "src/hyper/migration_model.h"
#include "src/hyper/workloads.h"
#include "src/check/check.h"
#include "src/obs/obs.h"

namespace oasis {
namespace {

struct RunResult {
  double full_s;
  double partial1_s;
  double upload1_s;
  double partial2_s;
  double upload2_s;
  double reintegration1_s;
  double reintegration2_s;
  double descriptor_mib;
  double ondemand_mib;
  double reintegration_mib;
};

RunResult OneRun(uint64_t seed) {
  MigrationModel model;  // GigE testbed timings (§4.4)
  MemoryServer server;
  Rng rng(seed);

  VmConfig config;
  config.id = 1;
  config.memory_bytes = 4 * kGiB;
  config.seed = seed;
  Vm vm(config);

  // Prime with boot + Workload 1, then idle for five minutes.
  ApplyWorkload(vm, BaseSystemFootprint());
  ApplyWorkload(vm, DesktopWorkload1());
  ApplyWorkload(vm, IdleBackgroundChurn(SimTime::Minutes(5)));

  RunResult r{};
  r.full_s = model.PlanFullMigration(config.memory_bytes).duration.seconds();

  // Partial migration #1: full upload of the touched image + descriptor.
  PartialMigrationPlan p1 = model.ExecutePartialMigration(vm, /*differential=*/false);
  server.Upload(SimTime::Zero(), vm.id(), p1.upload_bytes_compressed);
  r.partial1_s = p1.total.seconds();
  r.upload1_s = p1.upload_time.seconds();
  r.descriptor_mib = ToMiB(p1.descriptor_bytes);

  // Twenty minutes on the consolidation host: on-demand fetches and dirtying.
  Memtap memtap(&server, vm.id(), vm.image().total_pages(), seed ^ 0xF00D);
  uint64_t ondemand_pages = MiBToBytes(rng.NextGaussian(56.9, 7.9)) / kPageSize;
  (void)memtap.FaultInMany(SimTime::Zero(), ondemand_pages, /*locality=*/0.3);
  r.ondemand_mib = ToMiB(memtap.bytes_fetched());
  uint64_t dirty1 = MiBToBytes(std::max(60.0, rng.NextGaussian(175.3, 49.3)));
  vm.image().DirtyTouchedPages(dirty1 / kPageSize);

  // Reintegration #1: only the dirty state returns home.
  ReintegrationPlan ri1 = model.PlanReintegration(dirty1);
  r.reintegration1_s = ri1.duration.seconds();
  r.reintegration_mib = ToMiB(dirty1);

  // Workload 2 + idle, then partial migration #2 with differential upload.
  ApplyWorkload(vm, DesktopWorkload2());
  ApplyWorkload(vm, IdleBackgroundChurn(SimTime::Minutes(5)));
  PartialMigrationPlan p2 = model.ExecutePartialMigration(vm, /*differential=*/true);
  server.Upload(SimTime::Zero(), vm.id(), p2.upload_bytes_compressed);
  r.partial2_s = p2.total.seconds();
  r.upload2_s = p2.upload_time.seconds();

  // A second consolidation stint and reintegration.
  uint64_t dirty2 = MiBToBytes(std::max(60.0, rng.NextGaussian(175.3, 49.3)));
  r.reintegration2_s = model.PlanReintegration(dirty2).duration.seconds();
  return r;
}

}  // namespace
}  // namespace oasis

int main() {
  // Honour OASIS_TRACE / OASIS_METRICS / OASIS_LOG_LEVEL for this run.
  // Invariant checking per OASIS_CHECK (off | warn | strict); declared
  // before ObsScope so traces flush before any strict exit.
  oasis::check::CheckScope check_scope;
  oasis::obs::ObsScope obs_scope;
  using namespace oasis;
  PrintExperimentHeader(std::cout, "Figure 5 - Consolidation latencies for one VM",
                        "Average of 3 runs, 4 GiB desktop VM, GigE testbed + SAS memory "
                        "server (paper: full 41 s, partial 15.7 s / 7.2 s, reint 3.7 s).");

  OnlineStats full, p1, u1, p2, u2, ri, desc, od, rim;
  uint64_t seeds[] = {11u, 22u, 33u};
  uint64_t base = seeds[0];
  if (obs::ApplySeedOverride(&base)) {
    for (size_t i = 0; i < 3; ++i) {
      seeds[i] = base + i;
    }
  }
  for (uint64_t seed : seeds) {
    RunResult r = OneRun(seed);
    full.Add(r.full_s);
    p1.Add(r.partial1_s);
    u1.Add(r.upload1_s);
    p2.Add(r.partial2_s);
    u2.Add(r.upload2_s);
    ri.Add(r.reintegration1_s);
    ri.Add(r.reintegration2_s);
    desc.Add(r.descriptor_mib);
    od.Add(r.ondemand_mib);
    rim.Add(r.reintegration_mib);
  }

  TextTable table({"operation", "latency (s)", "paper (s)"});
  table.AddRow({"full live migration", TextTable::Num(full.mean(), 1), "41.0"});
  table.AddRow({"partial migration #1 (total)", TextTable::Num(p1.mean(), 1), "15.7"});
  table.AddRow({"  memory upload #1", TextTable::Num(u1.mean(), 1), "10.2"});
  table.AddRow({"partial migration #2 (total)", TextTable::Num(p2.mean(), 1), "7.2"});
  table.AddRow({"  differential upload #2", TextTable::Num(u2.mean(), 1), "2.2"});
  table.AddRow({"reintegration (avg)", TextTable::Num(ri.mean(), 1), "3.7"});
  table.Print(std::cout);

  std::cout << "\nSection 4.4.3 - network traffic of one partial-migration cycle:\n";
  TextTable traffic({"transfer", "measured (MiB)", "paper (MiB)"});
  traffic.AddRow({"partial VM creation (descriptor)", TextTable::Num(desc.mean(), 1),
                  "16.0 +/- 0.5"});
  traffic.AddRow({"on-demand page fetches (20 min)", TextTable::Num(od.mean(), 1),
                  "56.9 +/- 7.9"});
  traffic.AddRow({"reintegration dirty state", TextTable::Num(rim.mean(), 1),
                  "175.3 +/- 49.3"});
  traffic.Print(std::cout);
  std::printf("\nThe reintegrated dirty state exceeds the on-demand fetches because new\n"
              "allocations dirty pages without ever faulting them in (section 4.4.3).\n");
  return 0;
}
