// Figure 12: sensitivity of energy savings to cluster shape. The 900 VMs are
// redistributed over fewer, denser home hosts (30x30, 20x45, 18x50, 15x60,
// 10x90) with 2-4 consolidation hosts.
//
// Paper reference point: savings are essentially independent of how many VMs
// each home host carries.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/exp/exp.h"
#include "src/check/check.h"
#include "src/obs/obs.h"

int main() {
  // Honour OASIS_TRACE / OASIS_METRICS / OASIS_LOG_LEVEL for this run.
  // Invariant checking per OASIS_CHECK (off | warn | strict); declared
  // before ObsScope so traces flush before any strict exit.
  oasis::check::CheckScope check_scope;
  oasis::obs::ObsScope obs_scope;
  using namespace oasis;
  int runs = std::max(1, BenchRuns() - 2);
  PrintExperimentHeader(std::cout, "Figure 12 - Sensitivity to cluster shape",
                        "900 VMs total, FulltoPartial; rows are home-hosts x VMs-per-host, "
                        "columns add consolidation hosts (paper: savings are flat).");

  struct Shape {
    int homes;
    int vms_per_home;
  };
  const Shape shapes[] = {{30, 30}, {20, 45}, {18, 50}, {15, 60}, {10, 90}};

  for (DayKind day : {DayKind::kWeekday, DayKind::kWeekend}) {
    std::printf("\n-- %s --\n", DayKindName(day));
    // Plan the day's full shape x consolidation grid, run it on OASIS_JOBS
    // workers, then aggregate in plan order (byte-identical to serial).
    exp::ExperimentPlan plan;
    std::vector<exp::RepetitionSpan> spans;
    for (const Shape& shape : shapes) {
      for (int cons : {2, 3, 4}) {
        SimulationConfig config = PaperCluster(ConsolidationPolicy::kFullToPartial, cons, day);
        config.cluster.num_home_hosts = shape.homes;
        // Denser home hosts are bigger servers: capacity (and, proportionally,
        // host power) scales with the VM count, as §5.6's "vary the server
        // capacity" implies.
        config.cluster.SetVmsPerHome(shape.vms_per_home);
        spans.push_back(plan.AddRepetitions(config, runs));
      }
    }
    std::vector<SimulationResult> results = exp::RunParallel(plan);

    TextTable table({"cluster shape", "+2 hosts", "+3 hosts", "+4 hosts"});
    size_t datapoint = 0;
    for (const Shape& shape : shapes) {
      std::vector<std::string> row{std::to_string(shape.homes) + " x " +
                                   std::to_string(shape.vms_per_home)};
      for (int cons : {2, 3, 4}) {
        (void)cons;
        RepeatedRunResult result = exp::CollectRepeated(results, spans[datapoint++]);
        row.push_back(TextTable::Pct(result.savings.mean()));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }
  return 0;
}
