// Figure 6: application start-up latency in a full VM vs a partial VM whose
// pages fault in from the memory server.
//
// Paper reference points: partial VMs start applications up to 111x slower;
// a LibreOffice document takes ~168 s vs pre-fetching the VM's entire
// remaining state in ~41 s — which is why active partial VMs are converted
// to full VMs (§4.4.4).

#include <cstdio>
#include <iostream>

#include "src/common/table.h"
#include "src/hyper/memory_server.h"
#include "src/hyper/memtap.h"
#include "src/hyper/migration_model.h"
#include "src/hyper/workloads.h"
#include "src/check/check.h"
#include "src/obs/obs.h"

int main() {
  // Honour OASIS_TRACE / OASIS_METRICS / OASIS_LOG_LEVEL for this run.
  // Invariant checking per OASIS_CHECK (off | warn | strict); declared
  // before ObsScope so traces flush before any strict exit.
  oasis::check::CheckScope check_scope;
  oasis::obs::ObsScope obs_scope;
  using namespace oasis;
  PrintExperimentHeader(std::cout, "Figure 6 - Application start-up latency",
                        "Full VM vs partial VM (demand paging through the memory server).");

  MemoryServer server;
  server.Upload(SimTime::Zero(), 1, 1306 * kMiB);
  constexpr uint64_t kVmPages = (4 * kGiB) / kPageSize;

  TextTable table({"application", "full VM (s)", "partial VM (s)", "slowdown"});
  double worst_slowdown = 0.0;
  for (const AppStartupProfile& app : Figure6Applications()) {
    Memtap memtap(&server, 1, kVmPages, app.startup_working_set ^ 0x5EED);
    StatusOr<SimTime> partial = SimulatePartialVmAppStart(app, memtap, SimTime::Zero());
    if (!partial.ok()) {
      std::fprintf(stderr, "error: %s\n", partial.status().ToString().c_str());
      return 1;
    }
    double slowdown = partial->seconds() / app.full_vm_startup.seconds();
    worst_slowdown = std::max(worst_slowdown, slowdown);
    table.AddRow({app.name, TextTable::Num(app.full_vm_startup.seconds(), 1),
                  TextTable::Num(partial->seconds(), 1),
                  TextTable::Num(slowdown, 0) + "x"});
  }
  table.Print(std::cout);

  MigrationModel model;
  double prefetch = model.PlanFullMigration(4 * kGiB).duration.seconds();
  std::printf("\nWorst slowdown: %.0fx (paper: up to 111x).\n", worst_slowdown);
  std::printf("Pre-fetching the VM's entire remaining state takes only %.0f s (paper: 41 s),\n"
              "so Oasis converts activating partial VMs into full VMs instead of letting\n"
              "them run on demand paging.\n",
              prefetch);
  return 0;
}
