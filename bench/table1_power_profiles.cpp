// Table 1: energy profiles and S3 transition times of the prototype host and
// memory-server components, plus derived quantities the evaluation uses.

#include <iostream>

#include "src/common/table.h"
#include "src/power/energy_meter.h"
#include "src/power/power_model.h"
#include "src/check/check.h"
#include "src/obs/obs.h"

int main() {
  // Honour OASIS_TRACE / OASIS_METRICS / OASIS_LOG_LEVEL for this run.
  // Invariant checking per OASIS_CHECK (off | warn | strict); declared
  // before ObsScope so traces flush before any strict exit.
  oasis::check::CheckScope check_scope;
  oasis::obs::ObsScope obs_scope;
  using namespace oasis;
  PrintExperimentHeader(std::cout, "Table 1 - Energy profiles and S3 transition times",
                        "Model constants as measured on the paper's custom host.");

  HostPowerProfile host;
  MemoryServerProfile ms;

  TextTable table({"device", "state", "time (s)", "power (W)"});
  table.AddRow({"Custom host", "idle", "-", TextTable::Num(host.idle_watts, 1)});
  table.AddRow({"Custom host", "20 VMs", "-", TextTable::Num(host.watts_at_20_vms, 1)});
  table.AddRow({"Custom host", "suspend", TextTable::Num(host.suspend_latency.seconds(), 1),
                TextTable::Num(host.suspend_watts, 1)});
  table.AddRow({"Custom host", "resume", TextTable::Num(host.resume_latency.seconds(), 1),
                TextTable::Num(host.resume_watts, 1)});
  table.AddRow({"Custom host", "sleep (S3)", "-", TextTable::Num(host.sleep_watts, 1)});
  table.AddRow({"Memory server", "idle", "-", TextTable::Num(ms.board_watts, 1)});
  table.AddRow({"SAS drive", "idle", "-", TextTable::Num(ms.drive_watts, 1)});
  table.Print(std::cout);

  std::cout << "\nDerived quantities:\n";
  TextTable derived({"quantity", "value"});
  derived.AddRow({"sleeping host + memory server (W)",
                  TextTable::Num(host.sleep_watts + ms.TotalWatts(), 1)});
  derived.AddRow({"headroom vs idle host (W)",
                  TextTable::Num(host.idle_watts - host.sleep_watts - ms.TotalWatts(), 1)});
  derived.AddRow({"per-VM increment below 20 VMs (W)", TextTable::Num(host.PerVmWatts(), 2)});

  // Energy of one full suspend/resume cycle, integrated with the meter.
  EnergyMeter meter(SimTime::Zero(), host.suspend_watts);
  SimTime t = host.suspend_latency;
  meter.SetDraw(t, host.resume_watts);
  t += host.resume_latency;
  meter.Advance(t);
  derived.AddRow({"one S3 round-trip (J)", TextTable::Num(meter.total_joules(), 0)});
  derived.AddRow(
      {"S3 round-trip break-even vs idle (s)",
       TextTable::Num(meter.total_joules() / (host.idle_watts - host.sleep_watts), 1)});
  derived.Print(std::cout);
  return 0;
}
