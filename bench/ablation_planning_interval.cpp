// Ablation: the cluster manager's planning-interval length.
//
// §3.1: "The cluster manager makes migration plans at periodic intervals.
// The size of an interval is a configurable parameter." Shorter intervals
// react faster to idleness (more sleep) but amplify migration churn;
// longer intervals leave hosts powered waiting for the next plan.
//
// Note the activity trace itself has 5-minute resolution, so sub-5-minute
// planning only re-evaluates placement, not activity.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/exp/exp.h"
#include "src/check/check.h"
#include "src/obs/obs.h"

int main() {
  // Honour OASIS_TRACE / OASIS_METRICS / OASIS_LOG_LEVEL for this run.
  // Invariant checking per OASIS_CHECK (off | warn | strict); declared
  // before ObsScope so traces flush before any strict exit.
  oasis::check::CheckScope check_scope;
  oasis::obs::ObsScope obs_scope;
  using namespace oasis;
  int runs = std::max(1, BenchRuns() - 2);
  PrintExperimentHeader(std::cout, "Ablation - planning interval length",
                        "FulltoPartial, 30+4 cluster, weekday; the paper fixes this knob "
                        "at the trace's 5-minute resolution.");

  const double interval_minutes[] = {5.0, 10.0, 15.0, 30.0};
  exp::ExperimentPlan plan;
  std::vector<exp::RepetitionSpan> spans;
  for (double minutes : interval_minutes) {
    SimulationConfig config =
        PaperCluster(ConsolidationPolicy::kFullToPartial, 4, DayKind::kWeekday);
    config.cluster.planning_interval = SimTime::Minutes(minutes);
    // Keep the idleness-detection window at ~10 minutes of wall clock.
    config.cluster.idle_smoothing_intervals = std::max(1, static_cast<int>(10.0 / minutes));
    spans.push_back(plan.AddRepetitions(config, runs));
  }
  std::vector<SimulationResult> results = exp::RunParallel(plan);

  TextTable table({"interval", "weekday savings", "partial migrations", "host wakes",
                   "p99 delay (s)"});
  size_t datapoint = 0;
  for (double minutes : interval_minutes) {
    RepeatedRunResult result = exp::CollectRepeated(results, spans[datapoint++]);
    const ClusterMetrics& m = result.runs[0].metrics;
    table.AddRow({TextTable::Num(minutes, 0) + " min",
                  TextTable::Pct(result.savings.mean()),
                  std::to_string(m.partial_migrations), std::to_string(m.host_wakes),
                  m.transition_delay_s.count() > 0
                      ? TextTable::Num(m.transition_delay_s.Quantile(0.99), 1)
                      : "-"});
  }
  table.Print(std::cout);
  std::printf("\nLonger intervals trade migration churn for missed sleep opportunities;\n"
              "5 minutes (the paper's choice, matching the trace resolution) maximizes\n"
              "savings on this workload.\n");
  return 0;
}
