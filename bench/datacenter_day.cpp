// Datacenter day: one simulated weekday for a sharded, hierarchical
// datacenter — pods of racks, every rack a self-contained paper-style
// cluster running its own consolidation plan, executed as parallel shards
// on the deterministic experiment runner (OASIS_JOBS), merged in topology
// order, and then coordinated by the global drain tier.
//
// The default grid is 8 pods x 32 racks, each rack 36 home hosts x 110 VDI
// VMs plus 4 consolidation hosts: 10,240 hosts serving 1,013,760 users. A
// light deterministic fault mix (host crashes) runs per rack, and the
// assisted coordinator samples rack-level power-cap windows, so the
// inter-rack tier has real constraints to respect. Override the grid with
// OASIS_DC_RACKS (CI smokes 8 racks) and the shard parallelism with
// OASIS_JOBS.
//
// Three coordination modes are compared over the *same* rack results:
//   per-rack-local        every rack keeps its parked VMs (the lower bound)
//   global-greedy         idealized flat packing of all parked VMs (upper
//                         bound: no locality, caps, hysteresis or cost)
//   coordinator-assisted  the drain tier: near-empty racks export their
//                         parked load to same-pod sponsors and sleep their
//                         consolidation hosts, paying cross-rack migration
//                         traffic, honouring cap windows and never
//                         sponsoring into a faulted rack
//
// Stdout is deterministic (timing goes to stderr via obs::TimingLine) and
// ends with the merged ledger digest — pinned by the golden suite and
// asserted bit-identical across OASIS_JOBS=1/4 and rack execution order by
// the metamorphic suite.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "src/check/check.h"
#include "src/common/table.h"
#include "src/dc/coordinator.h"
#include "src/dc/ledger.h"
#include "src/dc/runner.h"
#include "src/dc/topology.h"
#include "src/obs/obs.h"
#include "src/obs/prof.h"

namespace oasis {
namespace dc {
namespace {

DatacenterConfig DayConfig() {
  DatacenterConfig config;
  config.total_racks = 256;
  config.racks_per_pod = 32;
  config.rack.home_hosts = 36;
  config.rack.consolidation_hosts = 4;
  config.rack.vms_per_home = 110;  // 36 x 110 x 256 racks = 1,013,760 users
  // A light deterministic fault mix: ~0.5 expected host crashes per
  // rack-day, so a realistic fraction of racks is fault-tainted and the
  // coordinator's sponsor exclusion has teeth.
  config.rack.fault.enabled = true;
  config.rack.fault.host_crash_per_hour = 0.02;
  // The assisted tier samples rack power-cap windows (2 h at ~1 window per
  // 4 racks per day) and refuses to sponsor load into a capped rack.
  config.coordinator.rack_power_cap_watts = 3200.0;
  config.coordinator.cap_events_per_rack_day = 0.25;
  config.seed = 20160418;  // EuroSys'16 opening day
  obs::ApplySeedOverride(&config.seed);
  ApplyDatacenterEnvOverrides(&config);
  // Honour OASIS_POLICY for the rack-local planner, with the usual exit-2
  // rejection of unregistered names.
  ClusterConfig policy_probe;
  policy_probe.strategy_name = config.rack.strategy_name;
  ApplyPolicyOverride(&policy_probe);
  config.rack.strategy_name = policy_probe.strategy_name;
  return config;
}

CoordinatorStats RunMode(const DatacenterRun& run, CoordinatorMode mode) {
  CoordinatorConfig config = run.config.coordinator;
  config.mode = mode;
  return GlobalCoordinator(config).Coordinate(run);
}

int DatacenterDay() {
  DatacenterConfig config = DayConfig();
  StatusOr<DatacenterTopology> topology = DatacenterTopology::Build(config);
  if (!topology.ok()) {
    std::fprintf(stderr, "invalid datacenter config: %s\n",
                 topology.status().ToString().c_str());
    return 1;
  }

  std::printf("topology: %d pods x %d racks/pod = %d racks, %d hosts, %lld users\n",
              config.NumPods(), config.racks_per_pod, config.total_racks,
              config.TotalHosts(), config.TotalUsers());
  std::printf("rack: %d home hosts x %d VMs + %d consolidation hosts (%s, %s)\n\n",
              config.rack.home_hosts, config.rack.vms_per_home,
              config.rack.consolidation_hosts, config.rack.strategy_name.c_str(),
              ConsolidationPolicyName(config.rack.policy));

  ShardRunner runner;
  obs::TimingLine("simulating %d rack shards at jobs=%d ...", config.total_racks,
                  runner.jobs());
  DatacenterRun run = runner.Run(*topology);

  // All three coordination modes replay the same shard results; the rack
  // simulations are not re-run.
  const CoordinatorStats local = RunMode(run, CoordinatorMode::kOff);
  const CoordinatorStats greedy = RunMode(run, CoordinatorMode::kGlobalGreedy);
  const CoordinatorStats assisted = RunMode(run, CoordinatorMode::kAssisted);

  TextTable table({"coordination", "savings", "net tier effect (kWh)", "drains",
                   "vms drained", "cross-rack traffic"});
  struct ModeRow {
    CoordinatorMode mode;
    const CoordinatorStats* stats;
  };
  const ModeRow rows[] = {{CoordinatorMode::kOff, &local},
                          {CoordinatorMode::kGlobalGreedy, &greedy},
                          {CoordinatorMode::kAssisted, &assisted}};
  for (const ModeRow& row : rows) {
    DatacenterLedger ledger = DatacenterLedger::Build(run, *row.stats);
    table.AddRow({CoordinatorModeName(row.mode), TextTable::Pct(ledger.CoordinatedSavings()),
                  TextTable::Num(ToKWh(row.stats->NetSaved()), 1),
                  std::to_string(row.stats->drains_started),
                  std::to_string(row.stats->vms_drained),
                  FormatBytes(row.stats->cross_rack_traffic_bytes)});
  }
  table.Print(std::cout);

  std::printf(
      "\nassisted tier: %llu drain-intervals across %llu drains (%llu returns), "
      "%llu cap windows blocked %llu sponsorships, %llu sponsor lookups skipped "
      "faulted racks\n",
      static_cast<unsigned long long>(assisted.drain_intervals),
      static_cast<unsigned long long>(assisted.drains_started),
      static_cast<unsigned long long>(assisted.drain_returns),
      static_cast<unsigned long long>(assisted.cap_windows),
      static_cast<unsigned long long>(assisted.cap_blocked_sponsorships),
      static_cast<unsigned long long>(assisted.fault_excluded_sponsors));

  // The merged per-rack ledger (assisted mode), folded in rack order.
  DatacenterLedger ledger = DatacenterLedger::Build(run, assisted);
  TextTable pods({"pod", "racks", "savings", "energy (kWh)", "baseline (kWh)"});
  for (const PodLedgerRow& pod : ledger.pods) {
    pods.AddRow({std::to_string(pod.pod), std::to_string(pod.racks),
                 TextTable::Pct(pod.savings), TextTable::Num(ToKWh(pod.total_energy), 1),
                 TextTable::Num(ToKWh(pod.baseline_energy), 1)});
  }
  std::printf("\n");
  pods.Print(std::cout);

  std::printf("\ndatacenter: %llu migrations, %llu faults injected, %llu events\n",
              static_cast<unsigned long long>(ledger.total_migrations),
              static_cast<unsigned long long>(ledger.total_faults),
              static_cast<unsigned long long>(ledger.total_events));
  std::printf("merged ledger digest: %016llx\n",
              static_cast<unsigned long long>(ledger.Digest()));
  return 0;
}

}  // namespace
}  // namespace dc
}  // namespace oasis

int main() {
  // Invariant checking per OASIS_CHECK; declared before ObsScope so traces
  // flush before any strict exit. Wall-clock profiling per OASIS_PROF.
  oasis::check::CheckScope check_scope;
  oasis::obs::ObsScope obs_scope;
  oasis::prof::ProfSession prof_session;
  oasis::PrintExperimentHeader(
      std::cout, "Datacenter day - sharded hierarchical simulation",
      "Pods of self-contained consolidation racks executed as parallel "
      "deterministic shards, with a global drain tier coordinating only "
      "between racks.");
  return oasis::dc::DatacenterDay();
}
