// Figure 8: energy savings for one simulated day on a 30-home-host cluster,
// as the number of consolidation hosts varies from 2 to 12, for all four
// policies, weekday and weekend panels. Each datapoint averages five runs.
//
// Paper reference points: OnlyPartial ~6%; Default only marginally better;
// FulltoPartial up to 28% weekday / 43% weekend; NewHome adds nothing beyond
// FulltoPartial; savings level off at ~4 consolidation hosts.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "src/common/csv.h"
#include "src/common/table.h"
#include "src/exp/exp.h"
#include "src/check/check.h"
#include "src/obs/obs.h"

namespace oasis {
namespace {

void PrintPanel(DayKind day, int runs) {
  std::printf("\n-- %s (mean +/- stddev over %d runs) --\n", DayKindName(day), runs);
  auto csv_file = CsvFileFor(std::string("fig08_") + DayKindName(day));
  std::unique_ptr<CsvWriter> csv;
  if (csv_file) {
    csv = std::make_unique<CsvWriter>(
        *csv_file,
        std::vector<std::string>{"policy", "consolidation_hosts", "savings", "stddev"});
  }
  // Plan the whole panel grid (policy x hosts x runs) before executing:
  // the runner spreads the independent runs over OASIS_JOBS workers and the
  // second loop aggregates/prints in plan order, reproducing the serial
  // output byte-for-byte.
  exp::ExperimentPlan plan;
  std::vector<exp::RepetitionSpan> spans;
  const int host_counts[] = {2, 4, 6, 8, 10, 12};
  for (ConsolidationPolicy policy : kAllPolicies) {
    for (int hosts : host_counts) {
      spans.push_back(plan.AddRepetitions(PaperCluster(policy, hosts, day), runs));
    }
  }
  std::vector<SimulationResult> results = exp::RunParallel(plan);
  TextTable table({"policy", "2 hosts", "4 hosts", "6 hosts", "8 hosts", "10 hosts",
                   "12 hosts"});
  size_t datapoint = 0;
  for (ConsolidationPolicy policy : kAllPolicies) {
    std::vector<std::string> row{ConsolidationPolicyName(policy)};
    for (int hosts : host_counts) {
      RepeatedRunResult result = exp::CollectRepeated(results, spans[datapoint++]);
      row.push_back(TextTable::Pct(result.savings.mean()) + " +/- " +
                    TextTable::Pct(result.savings.sample_stddev()));
      if (csv) {
        csv->WriteRow({ConsolidationPolicyName(policy), std::to_string(hosts),
                       TextTable::Num(result.savings.mean(), 4),
                       TextTable::Num(result.savings.sample_stddev(), 4)});
      }
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace oasis

int main() {
  // Honour OASIS_TRACE / OASIS_METRICS / OASIS_LOG_LEVEL for this run.
  // Invariant checking per OASIS_CHECK (off | warn | strict); declared
  // before ObsScope so traces flush before any strict exit.
  oasis::check::CheckScope check_scope;
  oasis::obs::ObsScope obs_scope;
  using namespace oasis;
  int runs = BenchRuns();
  PrintExperimentHeader(std::cout, "Figure 8 - Energy savings vs consolidation hosts",
                        "30 home hosts x 30 VMs; savings normalized to all home hosts "
                        "left powered (paper: FulltoPartial 28% weekday / 43% weekend, "
                        "leveling off at 4 consolidation hosts).");
  PrintPanel(DayKind::kWeekday, runs);
  PrintPanel(DayKind::kWeekend, runs);
  return 0;
}
