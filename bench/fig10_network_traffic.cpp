// Figure 10: weekday data-transfer breakdown per policy.
//
// Paper reference point: FulltoPartial increases both partial- and
// full-migration traffic over Default — it trades network bytes (cheap
// inside a rack) for energy.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/exp/exp.h"
#include "src/check/check.h"
#include "src/obs/obs.h"

int main() {
  // Honour OASIS_TRACE / OASIS_METRICS / OASIS_LOG_LEVEL for this run.
  // Invariant checking per OASIS_CHECK (off | warn | strict); declared
  // before ObsScope so traces flush before any strict exit.
  oasis::check::CheckScope check_scope;
  oasis::obs::ObsScope obs_scope;
  using namespace oasis;
  PrintExperimentHeader(std::cout, "Figure 10 - Weekday data transfer breakdown",
                        "Per-policy network volume over one weekday, 30+4 cluster "
                        "(memory uploads travel the host-local SAS link, not the rack).");

  // Four independent policy runs, planned up front for the runner.
  exp::ExperimentPlan plan;
  for (ConsolidationPolicy policy : kAllPolicies) {
    plan.Add(PaperCluster(policy, 4, DayKind::kWeekday));
  }
  std::vector<SimulationResult> results = exp::RunParallel(plan);

  TextTable table({"policy", "full migration", "descriptor", "on-demand", "reintegration",
                   "network total", "SAS uploads"});
  size_t next = 0;
  for (ConsolidationPolicy policy : kAllPolicies) {
    const TrafficAccounting& t = results[next++].metrics.traffic;
    table.AddRow({ConsolidationPolicyName(policy),
                  FormatBytes(t.Total(TrafficCategory::kFullMigration)),
                  FormatBytes(t.Total(TrafficCategory::kPartialDescriptor)),
                  FormatBytes(t.Total(TrafficCategory::kOnDemandPages)),
                  FormatBytes(t.Total(TrafficCategory::kReintegration)),
                  FormatBytes(t.NetworkTotal()),
                  FormatBytes(t.Total(TrafficCategory::kMemoryUpload))});
  }
  table.Print(std::cout);

  std::printf("\nFulltoPartial moves more bytes than Default in both categories — the\n"
              "paper's energy-for-traffic trade (acceptable when home and consolidation\n"
              "hosts share a rack with abundant bandwidth, section 5.4).\n");
  return 0;
}
