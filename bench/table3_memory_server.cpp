// Table 3: energy savings with alternative memory-server implementations
// between the 42.2 W prototype and a hypothetical 1 W embedded design.
//
// Paper reference points: weekday 28% -> 41%, weekend 43% -> 68% as the
// memory server shrinks from 42.2 W to 1 W.

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/exp/exp.h"
#include "src/check/check.h"
#include "src/obs/obs.h"

int main() {
  // Honour OASIS_TRACE / OASIS_METRICS / OASIS_LOG_LEVEL for this run.
  // Invariant checking per OASIS_CHECK (off | warn | strict); declared
  // before ObsScope so traces flush before any strict exit.
  oasis::check::CheckScope check_scope;
  oasis::obs::ObsScope obs_scope;
  using namespace oasis;
  int runs = BenchRuns();
  PrintExperimentHeader(std::cout, "Table 3 - Alternative memory server implementations",
                        "FulltoPartial, 30+4 cluster; savings vs memory-server power "
                        "(paper: 28%/43% at 42.2 W rising to 41%/68% at 1 W).");

  // Plan the watts x day grid up front for the experiment runner.
  const double watt_points[] = {42.2, 16.0, 8.0, 4.0, 2.0, 1.0};
  exp::ExperimentPlan plan;
  std::vector<exp::RepetitionSpan> spans;
  for (double watts : watt_points) {
    for (DayKind day : {DayKind::kWeekday, DayKind::kWeekend}) {
      SimulationConfig config = PaperCluster(ConsolidationPolicy::kFullToPartial, 4, day);
      config.cluster.memory_server_power = MemoryServerProfile::WithPower(watts);
      spans.push_back(plan.AddRepetitions(config, runs));
    }
  }
  std::vector<SimulationResult> results = exp::RunParallel(plan);

  TextTable table({"memory server power (W)", "weekday savings", "weekend savings"});
  size_t datapoint = 0;
  for (double watts : watt_points) {
    std::vector<std::string> row{TextTable::Num(watts, 1)};
    for (DayKind day : {DayKind::kWeekday, DayKind::kWeekend}) {
      (void)day;
      RepeatedRunResult result = exp::CollectRepeated(results, spans[datapoint++]);
      row.push_back(TextTable::Pct(result.savings.mean()));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  return 0;
}
