// google-benchmark microbenchmarks of the substrates the simulations sit on:
// the LZ compressor (per page class), event queue, bitmaps, memory images,
// working-set sampling, trace generation and a whole cluster day.

#include <benchmark/benchmark.h>

#include "src/cluster/manager.h"
#include "src/core/oasis.h"
#include "src/mem/compression.h"
#include "src/mem/memory_image.h"
#include "src/mem/page_content.h"
#include "src/mem/working_set.h"
#include "src/obs/obs.h"
#include "src/sim/event_queue.h"
#include "src/trace/trace_generator.h"

namespace oasis {
namespace {

void BM_LzCompressPage(benchmark::State& state) {
  PageClass cls = static_cast<PageClass>(state.range(0));
  PageClassMix mix{0, 0, 0, 0};
  switch (cls) {
    case PageClass::kZero:
      mix.zero = 1.0;
      break;
    case PageClass::kText:
      mix.text = 1.0;
      break;
    case PageClass::kCode:
      mix.code = 1.0;
      break;
    case PageClass::kRandom:
      mix.random = 1.0;
      break;
  }
  PageContentGenerator gen(1, mix);
  PageBytes page = gen.Generate(0);
  size_t compressed = 0;
  for (auto _ : state) {
    compressed = LzCompress(page).size();
    benchmark::DoNotOptimize(compressed);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * kPageSize));
  state.SetLabel(std::string(PageClassName(cls)) + " ratio=" +
                 std::to_string(static_cast<double>(compressed) / kPageSize));
}
BENCHMARK(BM_LzCompressPage)->DenseRange(0, 3);

void BM_LzRoundTrip(benchmark::State& state) {
  PageContentGenerator gen(2);
  PageBytes page = gen.Generate(1);
  for (auto _ : state) {
    auto compressed = LzCompress(page);
    auto out = LzDecompress(compressed, page.size());
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * kPageSize));
}
BENCHMARK(BM_LzRoundTrip);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    for (int i = 0; i < state.range(0); ++i) {
      q.Schedule(SimTime::Micros((i * 7919) % 100000), [] {});
    }
    while (!q.empty()) {
      q.Pop();
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000);

void BM_BitmapCount(benchmark::State& state) {
  Bitmap bitmap(1u << 20);
  for (size_t i = 0; i < bitmap.size(); i += 3) {
    bitmap.Set(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bitmap.Count());
  }
}
BENCHMARK(BM_BitmapCount);

void BM_MemoryImageTouch(benchmark::State& state) {
  for (auto _ : state) {
    MemoryImage img(1 * kGiB, 3);
    img.TouchNewPages(static_cast<uint64_t>(state.range(0)));
    benchmark::DoNotOptimize(img.touched_pages());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MemoryImageTouch)->Arg(10000)->Arg(100000);

void BM_WorkingSetSample(benchmark::State& state) {
  WorkingSetSampler sampler(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(4 * kGiB));
  }
}
BENCHMARK(BM_WorkingSetSample);

void BM_TraceGeneration(benchmark::State& state) {
  TraceGenerator gen(TraceGeneratorConfig{}, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.GenerateUserDay(DayKind::kWeekday));
  }
}
BENCHMARK(BM_TraceGeneration);

void BM_ClusterDaySimulation(benchmark::State& state) {
  SimulationConfig config;
  config.cluster.num_home_hosts = static_cast<int>(state.range(0));
  config.cluster.num_consolidation_hosts = 4;
  config.cluster.vms_per_home = 30;
  obs::ApplySeedOverride(&config.seed);
  for (auto _ : state) {
    ClusterSimulation sim(config);
    benchmark::DoNotOptimize(sim.Run().metrics.TotalEnergy());
  }
  state.SetLabel(std::to_string(config.cluster.TotalVms()) + " VMs/day");
}
BENCHMARK(BM_ClusterDaySimulation)->Arg(10)->Arg(30)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace oasis

BENCHMARK_MAIN();
