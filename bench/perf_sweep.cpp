// Perf sweep: wall-clock throughput of the simulator core and the parallel
// experiment runner on the Figure 12 sensitivity grid.
//
// The harness executes the same experiment plan (5 cluster shapes x 3
// consolidation-host counts x OASIS_BENCH_RUNS repetitions, weekday) at a
// sweep of job counts — always jobs=1 (the serial reference) plus doubling
// steps up to OASIS_JOBS (default: hardware concurrency). For every step it
// reports wall seconds, runs/sec, simulator events/sec and the speedup over
// jobs=1, and writes the series to BENCH_sweep.json (override the path with
// OASIS_BENCH_JSON; tools/update_bench.sh refreshes the repo-root copy that
// tracks the perf trajectory across PRs).
//
// Determinism is enforced, not assumed: a checksum over every run's metrics
// must be identical at every job count; the binary exits non-zero on a
// mismatch. Stdout carries only the deterministic lines (header, plan,
// checksum) and is pinned by the golden suite; all wall-clock timing goes
// through obs::TimingLine to stderr, so timing output can change freely
// without touching tests/golden/.
//
// With OASIS_PROF=summary (or timeline) every sweep step also collects a
// wall-clock profile — per-phase breakdown, parallel efficiency, serial
// merge fraction, per-worker busy/idle — printed per step to stderr and
// embedded per step as the "prof" block in BENCH_sweep.json, so the jobs=N
// scaling loss arrives pre-diagnosed.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/strategy_oasis.h"
#include "src/common/table.h"
#include "src/exp/exp.h"
#include "src/check/check.h"
#include "src/obs/obs.h"
#include "src/obs/prof.h"

namespace oasis {
namespace {

// FNV-1a over the bit patterns of every run's headline metrics: equal
// checksums mean equal simulation results, independent of execution order.
uint64_t ResultsChecksum(const std::vector<SimulationResult>& results) {
  uint64_t hash = 0xcbf29ce484222325ull;
  auto fold = [&hash](uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xFF;
      hash *= 0x100000001b3ull;
    }
  };
  auto fold_double = [&fold](double value) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    fold(bits);
  };
  for (const SimulationResult& result : results) {
    const ClusterMetrics& m = result.metrics;
    fold_double(m.TotalEnergy());
    fold_double(m.baseline_energy);
    fold_double(m.EnergySavings());
    fold(m.full_migrations);
    fold(m.partial_migrations);
    fold(m.reintegrations);
    fold(m.host_wakes);
    fold(m.events_dispatched);
  }
  return hash;
}

exp::ExperimentPlan Fig12Grid(int runs) {
  struct Shape {
    int homes;
    int vms_per_home;
  };
  const Shape shapes[] = {{30, 30}, {20, 45}, {18, 50}, {15, 60}, {10, 90}};
  exp::ExperimentPlan plan;
  for (const Shape& shape : shapes) {
    for (int cons : {2, 3, 4}) {
      SimulationConfig config =
          PaperCluster(ConsolidationPolicy::kFullToPartial, cons, DayKind::kWeekday);
      config.cluster.num_home_hosts = shape.homes;
      config.cluster.SetVmsPerHome(shape.vms_per_home);
      plan.AddRepetitions(config, runs);
    }
  }
  return plan;
}

struct SweepPoint {
  int jobs = 0;       // requested (the OASIS_JOBS-style knob)
  int effective = 0;  // workers actually used after the runner's clamp
  double wall_s = 0.0;
  uint64_t events = 0;
  uint64_t checksum = 0;
  bool has_prof = false;
  prof::Report prof_report;
};

// A requested job count that clamps to an effective worker count some
// earlier sweep point already measured — running it would time the identical
// execution again and show up as a phantom "slowdown" on low-core hosts.
struct CollapsedPoint {
  int jobs = 0;
  int effective = 0;
};

}  // namespace
}  // namespace oasis

int main() {
  // Honour OASIS_TRACE / OASIS_METRICS / OASIS_LOG_LEVEL for this run.
  // Invariant checking per OASIS_CHECK (off | warn | strict); declared
  // before ObsScope so traces flush before any strict exit. Wall-clock
  // profiling per OASIS_PROF (off | summary | timeline); declared after
  // ObsScope so session-end collection runs before the trace is exported.
  oasis::check::CheckScope check_scope;
  oasis::obs::ObsScope obs_scope;
  oasis::prof::ProfSession prof_session;
  using namespace oasis;
  int runs = std::max(1, BenchRuns() - 2);
  PrintExperimentHeader(std::cout, "Perf sweep - parallel experiment runner throughput",
                        "Figure 12 sensitivity grid (5 shapes x 3 consolidation counts) "
                        "executed at increasing OASIS_JOBS; results must be identical at "
                        "every job count.");

  // jobs sweep: 1, 2, 4, ... up to the requested maximum (always >= 1 step).
  int max_jobs = exp::JobsFromEnv();
  std::vector<int> jobs_requested{1};
  for (int jobs = 2; jobs < max_jobs; jobs *= 2) {
    jobs_requested.push_back(jobs);
  }
  if (max_jobs > 1) {
    jobs_requested.push_back(max_jobs);
  }

  exp::ExperimentPlan plan = Fig12Grid(runs);
  std::printf("plan: %zu runs (%d reps per datapoint), sweeping jobs up to %d\n\n",
              plan.size(), runs, max_jobs);

  // Keep only the first sweep point per *effective* worker count: on a
  // low-core host jobs=2 and jobs=4 clamp to the same execution as some
  // earlier point, and timing it again only manufactures noise that reads
  // as a parallel slowdown in the cross-PR trajectory. The collapsed points
  // are reported (stderr + JSON) rather than silently dropped. Stdout stays
  // untouched — it is pinned by the golden suite and must not depend on the
  // machine's core count.
  std::vector<int> jobs_sweep;
  std::vector<CollapsedPoint> collapsed;
  for (int jobs : jobs_requested) {
    const int effective = exp::EffectiveWorkers(jobs, plan.size());
    bool duplicate = false;
    for (int kept : jobs_sweep) {
      duplicate |= exp::EffectiveWorkers(kept, plan.size()) == effective;
    }
    if (duplicate) {
      collapsed.push_back({jobs, effective});
      obs::TimingLine("jobs=%-3d collapses to %d effective worker%s on this host; skipping",
                      jobs, effective, effective == 1 ? "" : "s");
    } else {
      jobs_sweep.push_back(jobs);
    }
  }

  const bool profiling = prof_session.config().Enabled();
  // Each step is timed best-of-3: the plan is deterministic, so the fastest
  // repetition is the one least disturbed by scheduler noise — the right
  // estimator for a snapshot whose step-to-step *ratios* are compared
  // across PRs. Results are checksummed every repetition regardless.
  constexpr int kTimingReps = 3;
  std::vector<SweepPoint> points;
  for (int jobs : jobs_sweep) {
    SweepPoint point;
    point.jobs = jobs;
    point.effective = exp::EffectiveWorkers(jobs, plan.size());
    for (int rep = 0; rep < kTimingReps; ++rep) {
      auto start = std::chrono::steady_clock::now();
      std::vector<SimulationResult> results = exp::RunParallel(plan, jobs);
      auto end = std::chrono::steady_clock::now();
      const double wall_s = std::chrono::duration<double>(end - start).count();
      prof::Report report;
      if (profiling) {
        // One collection window per repetition: the report's
        // wall/efficiency numbers describe exactly this RunParallel call.
        report = prof::Profiler::Instance().Collect(/*reset=*/true);
      }
      uint64_t events = 0;
      for (const SimulationResult& result : results) {
        events += result.metrics.events_dispatched;
      }
      const uint64_t checksum = ResultsChecksum(results);
      if (rep > 0 && (checksum != point.checksum || events != point.events)) {
        std::fprintf(stderr, "repetition %d of jobs=%d changed the checksum\n", rep, jobs);
        return 1;
      }
      point.events = events;
      point.checksum = checksum;
      if (rep == 0 || wall_s < point.wall_s) {
        point.wall_s = wall_s;
        point.has_prof = profiling;
        point.prof_report = report;
      }
    }
    points.push_back(point);
    obs::TimingLine(
        "jobs=%-3d workers=%-3d wall=%8.3fs  runs/s=%7.2f  events/s=%11.0f  speedup=%5.2fx",
        jobs, point.effective, point.wall_s, plan.size() / point.wall_s,
        point.events / point.wall_s, points.front().wall_s / point.wall_s);
    if (point.has_prof) {
      point.prof_report.WriteTable(std::cerr);
    }
  }

  // Plan-mode comparison: time the serial reference under both planner
  // backends so the committed snapshot tracks the incremental planner's
  // speedup across PRs. One timing repetition per mode — the pair is a
  // trajectory marker, not a benchmark — and each run's checksum must match
  // the sweep's (the backends are pinned byte-identical, so a mismatch here
  // is a real divergence, reported as a determinism failure). The profiler
  // is paused for these runs (safe: no recording threads are active between
  // sweep steps): per-event clock reads cost ~40% of wall on slow hosts,
  // which would dilute exactly the hot-path delta this pair exists to track.
  struct PlanModePoint {
    const char* mode;
    double wall_s;
    uint64_t events;
  };
  std::vector<PlanModePoint> plan_points;
  {
    const prof::ProfMode prior_prof = prof::Profiler::Instance().mode();
    prof::Profiler::Instance().SetMode(prof::ProfMode::kOff);
    const char* prior = std::getenv("OASIS_PLAN");
    const std::string restore = prior != nullptr ? prior : "";
    for (const char* mode : {"full", "incremental"}) {
      setenv("OASIS_PLAN", mode, 1);
      PlanModePoint point{mode, 0.0, 0};
      // Best-of-kTimingReps, the same estimator the sweep points use.
      for (int rep = 0; rep < kTimingReps; ++rep) {
        auto start = std::chrono::steady_clock::now();
        std::vector<SimulationResult> results = exp::RunParallel(plan, 1);
        auto end = std::chrono::steady_clock::now();
        const double wall_s = std::chrono::duration<double>(end - start).count();
        uint64_t events = 0;
        for (const SimulationResult& result : results) {
          events += result.metrics.events_dispatched;
        }
        if (ResultsChecksum(results) != points.front().checksum) {
          std::fprintf(stderr, "OASIS_PLAN=%s changed the results checksum\n", mode);
          return 1;
        }
        point.events = events;
        if (rep == 0 || wall_s < point.wall_s) {
          point.wall_s = wall_s;
        }
      }
      plan_points.push_back(point);
      obs::TimingLine("plan=%-11s wall=%8.3fs  events/s=%11.0f", mode, point.wall_s,
                      point.events / point.wall_s);
    }
    if (prior != nullptr) {
      setenv("OASIS_PLAN", restore.c_str(), 1);
    } else {
      unsetenv("OASIS_PLAN");
    }
    prof::Profiler::Instance().SetMode(prior_prof);
  }

  bool deterministic = true;
  for (const SweepPoint& point : points) {
    if (point.checksum != points.front().checksum || point.events != points.front().events) {
      deterministic = false;
    }
  }
  std::printf("results checksum: %016llx across all job counts (%s)\n",
              static_cast<unsigned long long>(points.front().checksum),
              deterministic ? "identical" : "MISMATCH - determinism broken");

  const char* json_path = std::getenv("OASIS_BENCH_JSON");
  if (json_path == nullptr || *json_path == '\0') {
    json_path = "BENCH_sweep.json";
  }
  std::ofstream json(json_path);
  if (json) {
    json << "{\n  \"bench\": \"perf_sweep\",\n  \"grid\": \"fig12_weekday\",\n";
    // Machine/revision stamps so cross-PR trajectory diffs are interpretable:
    // a jobs=4 speedup of 1.0x means something entirely different on a
    // 1-core box than on a 16-core one. The SHA comes from the environment
    // (tools/update_bench.sh exports it) so the binary stays hermetic.
    json << "  \"hardware_cores\": " << exp::HardwareJobs() << ",\n";
    const char* git_sha = std::getenv("OASIS_BENCH_GIT_SHA");
    json << "  \"git_sha\": \"" << (git_sha != nullptr && *git_sha != '\0' ? git_sha : "unknown")
         << "\",\n";
    json << "  \"runs\": " << plan.size() << ",\n";
    json << "  \"reps_per_datapoint\": " << runs << ",\n";
    char checksum_hex[32];
    std::snprintf(checksum_hex, sizeof(checksum_hex), "%016llx",
                  static_cast<unsigned long long>(points.front().checksum));
    json << "  \"results_checksum\": \"" << checksum_hex << "\",\n";
    json << "  \"deterministic\": " << (deterministic ? "true" : "false") << ",\n";
    json << "  \"prof_mode\": \"" << prof::ProfModeName(prof_session.config().mode)
         << "\",\n";
    json << "  \"plan_mode\": \"" << PlanModeName(PlanModeFromEnv()) << "\",\n";
    // Requested job counts whose effective worker count duplicated an
    // earlier point; kept in the record so a trajectory diff can tell "the
    // sweep shrank" from "the machine shrank".
    json << "  \"collapsed_points\": [";
    for (size_t i = 0; i < collapsed.size(); ++i) {
      json << (i > 0 ? ", " : "") << "{\"jobs\": " << collapsed[i].jobs
           << ", \"effective_workers\": " << collapsed[i].effective << "}";
    }
    json << "],\n";
    // Serial events/s under each planner backend, measured with the
    // profiler paused (see the comparison above): the cross-PR record of
    // what the incremental planner buys, undiluted by prof overhead.
    json << "  \"plan_modes\": [";
    for (size_t i = 0; i < plan_points.size(); ++i) {
      json << (i > 0 ? ", " : "") << "{\"plan_mode\": \"" << plan_points[i].mode
           << "\", \"wall_s\": " << plan_points[i].wall_s
           << ", \"events_per_sec\": " << plan_points[i].events / plan_points[i].wall_s
           << "}";
    }
    json << "],\n";
    json << "  \"sweep\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& point = points[i];
      json << "    {\"jobs\": " << point.jobs
           << ", \"effective_workers\": " << point.effective
           << ", \"wall_s\": " << point.wall_s
           << ", \"runs_per_sec\": " << plan.size() / point.wall_s
           << ", \"events_dispatched\": " << point.events
           << ", \"events_per_sec\": " << point.events / point.wall_s
           << ", \"speedup_vs_jobs1\": " << points.front().wall_s / point.wall_s;
      if (point.has_prof) {
        json << ",\n     \"prof\":\n";
        point.prof_report.WriteJson(json, 5);
        json << "\n    }";
      } else {
        json << "}";
      }
      json << (i + 1 < points.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    obs::TimingLine("wrote %s", json_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path);
  }
  return deterministic ? 0 : 1;
}
