// Figure 11: distribution of user-perceived idle->active transition delays
// for different numbers of consolidation hosts.
//
// Paper reference points: transitions in full VMs are free; the zero-latency
// fraction falls from 75% (2 consolidation hosts) to 38% (12) as more VMs
// live as partials; reintegration delays stay under ~4 s, reaching ~19 s at
// the 99.99th percentile during resume storms.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/csv.h"
#include "src/common/table.h"
#include "src/exp/exp.h"
#include "src/check/check.h"
#include "src/obs/obs.h"

int main() {
  // Honour OASIS_TRACE / OASIS_METRICS / OASIS_LOG_LEVEL for this run.
  // Invariant checking per OASIS_CHECK (off | warn | strict); declared
  // before ObsScope so traces flush before any strict exit.
  oasis::check::CheckScope check_scope;
  oasis::obs::ObsScope obs_scope;
  using namespace oasis;
  PrintExperimentHeader(std::cout, "Figure 11 - Idle->active transition delays",
                        "FulltoPartial, weekday, 30 home hosts; delay CDF vs number of "
                        "consolidation hosts (paper: zero-latency 75% at 2 hosts -> 38% "
                        "at 12; p99.99 <= 19 s).");

  auto csv_file = CsvFileFor("fig11_delay_cdf");
  std::unique_ptr<CsvWriter> csv;
  if (csv_file) {
    csv = std::make_unique<CsvWriter>(
        *csv_file, std::vector<std::string>{"consolidation_hosts", "delay_s", "cdf"});
  }
  // One run per consolidation-host count, executed by the runner.
  const int host_counts[] = {2, 4, 6, 8, 10, 12};
  exp::ExperimentPlan plan;
  for (int hosts : host_counts) {
    plan.Add(PaperCluster(ConsolidationPolicy::kFullToPartial, hosts, DayKind::kWeekday));
  }
  std::vector<SimulationResult> results = exp::RunParallel(plan);

  TextTable table({"consolidation hosts", "transitions", "zero-delay", "p50 (s)", "p90 (s)",
                   "p99 (s)", "p99.99 (s)", "max (s)"});
  size_t next = 0;
  for (int hosts : host_counts) {
    const EmpiricalCdf& d = results[next++].metrics.transition_delay_s;
    if (d.empty()) {
      continue;
    }
    table.AddRow({std::to_string(hosts), std::to_string(d.count()),
                  TextTable::Pct(d.FractionAtOrBelow(0.001)), TextTable::Num(d.Quantile(0.5), 2),
                  TextTable::Num(d.Quantile(0.9), 2), TextTable::Num(d.Quantile(0.99), 2),
                  TextTable::Num(d.Quantile(0.9999), 2), TextTable::Num(d.Max(), 2)});
    if (csv) {
      for (auto& [value, fraction] : d.Curve(200)) {
        csv->WriteRow({std::to_string(hosts), TextTable::Num(value, 3),
                       TextTable::Num(fraction, 4)});
      }
    }
  }
  table.Print(std::cout);

  std::printf("\nMore consolidation hosts keep more VMs partial, so fewer transitions are\n"
              "free — but the non-zero delays stay small (reintegration + wake-up), which\n"
              "is the paper's argument that consolidation barely hurts productivity.\n");
  return 0;
}
