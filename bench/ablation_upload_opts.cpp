// Ablation: the two memory-upload optimizations of §4.3 — per-page
// compression and differential upload — plus the memory server's chunk
// cache. Quantifies how much each contributes to the Fig 5 latencies.

#include <cstdio>
#include <iostream>

#include "src/common/table.h"
#include "src/hyper/memory_server.h"
#include "src/hyper/memtap.h"
#include "src/hyper/migration_model.h"
#include "src/hyper/workloads.h"
#include "src/check/check.h"
#include "src/obs/obs.h"

namespace oasis {
namespace {

Vm PrimedVm(uint64_t seed) {
  VmConfig config;
  config.memory_bytes = 4 * kGiB;
  config.seed = seed;
  Vm vm(config);
  ApplyWorkload(vm, BaseSystemFootprint());
  ApplyWorkload(vm, DesktopWorkload1());
  ApplyWorkload(vm, IdleBackgroundChurn(SimTime::Minutes(5)));
  return vm;
}

double UploadSeconds(uint64_t bytes) {
  return static_cast<double>(bytes) / kSasBytesPerSec;
}

}  // namespace
}  // namespace oasis

int main() {
  // Honour OASIS_TRACE / OASIS_METRICS / OASIS_LOG_LEVEL for this run.
  // Invariant checking per OASIS_CHECK (off | warn | strict); declared
  // before ObsScope so traces flush before any strict exit.
  oasis::check::CheckScope check_scope;
  oasis::obs::ObsScope obs_scope;
  using namespace oasis;
  PrintExperimentHeader(std::cout, "Ablation - memory upload optimizations (section 4.3)",
                        "Contribution of per-page compression and differential upload to "
                        "partial-migration latency, plus the chunk cache's effect on "
                        "demand paging.");

  MigrationModel model;

  // --- First upload: with and without compression -------------------------
  uint64_t vm_seed = 1;
  obs::ApplySeedOverride(&vm_seed);
  Vm vm1 = PrimedVm(vm_seed);
  PartialMigrationPlan first = model.ExecutePartialMigration(vm1, /*differential=*/false);
  double compressed_s = UploadSeconds(first.upload_bytes_compressed);
  double raw_s = UploadSeconds(first.upload_bytes_raw);

  // --- Second upload: differential vs full re-upload ----------------------
  vm1.image().DirtyTouchedPages(MiBToBytes(175.3) / kPageSize);
  ApplyWorkload(vm1, DesktopWorkload2());
  ApplyWorkload(vm1, IdleBackgroundChurn(SimTime::Minutes(5)));
  uint64_t dirty_pages = vm1.image().dirty_pages();
  uint64_t touched_pages = vm1.image().touched_pages();
  double diff_s = UploadSeconds(vm1.image().CompressedBytesFor(dirty_pages));
  double full_again_s = UploadSeconds(vm1.image().CompressedBytesFor(touched_pages));

  TextTable table({"upload variant", "bytes on SAS", "upload time (s)"});
  table.AddRow({"#1 compressed (shipped)",
                FormatBytes(vm1.image().CompressedBytesFor(touched_pages)),
                TextTable::Num(compressed_s, 1)});
  table.AddRow({"#1 uncompressed (ablated)", FormatBytes(first.upload_bytes_raw),
                TextTable::Num(raw_s, 1)});
  table.AddRow({"#2 differential (shipped)",
                FormatBytes(vm1.image().CompressedBytesFor(dirty_pages)),
                TextTable::Num(diff_s, 1)});
  table.AddRow({"#2 full re-upload (ablated)",
                FormatBytes(vm1.image().CompressedBytesFor(touched_pages)),
                TextTable::Num(full_again_s, 1)});
  table.Print(std::cout);
  std::printf("\ncompression cuts the first upload %.1fx; differential upload cuts the\n"
              "second %.1fx — together they turn a %.0f s upload into %.1f s.\n",
              raw_s / compressed_s, full_again_s / diff_s, raw_s, diff_s);

  // --- Chunk cache ablation on demand paging -------------------------------
  constexpr uint64_t kVmPages = (4 * kGiB) / kPageSize;
  AppStartupProfile app{"LibreOffice (document)", 131 * kMiB, SimTime::Seconds(1.5)};

  MemoryServerConfig with_cache;
  MemoryServerConfig no_cache;
  no_cache.chunk_cache_entries = 0;
  MemoryServer cached(with_cache);
  MemoryServer uncached(no_cache);
  cached.Upload(SimTime::Zero(), 1, 1306 * kMiB);
  uncached.Upload(SimTime::Zero(), 1, 1306 * kMiB);
  Memtap tap_cached(&cached, 1, kVmPages, 3);
  Memtap tap_uncached(&uncached, 1, kVmPages, 3);
  auto start_cached = SimulatePartialVmAppStart(app, tap_cached, SimTime::Zero());
  auto start_uncached = SimulatePartialVmAppStart(app, tap_uncached, SimTime::Zero());
  if (start_cached.ok() && start_uncached.ok()) {
    std::printf("\nchunk cache: LibreOffice partial-VM start %.1f s with cache vs %.1f s\n"
                "without (%.0f%% of faults hit a warm 2 MiB chunk).\n",
                start_cached->seconds(), start_uncached->seconds(),
                100.0 * static_cast<double>(cached.cache_hits()) /
                    static_cast<double>(cached.pages_served()));
  }
  return 0;
}
