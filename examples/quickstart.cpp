// Quickstart: simulate one weekday on a 30-home / 4-consolidation-host VDI
// rack with the FulltoPartial policy and print the headline numbers.
//
//   $ ./build/examples/quickstart [policy]
//
// where policy is one of: onlypartial, default, fulltopartial, newhome.

#include <cstdio>
#include <cstring>
#include <string>

#include "src/cluster/strategy.h"
#include "src/core/oasis.h"
#include "src/exp/exp.h"
#include "src/check/check.h"
#include "src/obs/obs.h"
#include "src/obs/prof.h"

namespace {

oasis::ConsolidationPolicy ParsePolicy(const std::string& name) {
  if (name == "onlypartial") {
    return oasis::ConsolidationPolicy::kOnlyPartial;
  }
  if (name == "default") {
    return oasis::ConsolidationPolicy::kDefault;
  }
  if (name == "newhome") {
    return oasis::ConsolidationPolicy::kNewHome;
  }
  return oasis::ConsolidationPolicy::kFullToPartial;
}

}  // namespace

int main(int argc, char** argv) {
  // Honour OASIS_TRACE / OASIS_METRICS / OASIS_LOG_LEVEL for this run.
  // Invariant checking per OASIS_CHECK (off | warn | strict); declared
  // before ObsScope so traces flush before any strict exit. Wall-clock
  // profiling per OASIS_PROF (off | summary | timeline); declared after
  // ObsScope so the session-end report runs before the trace is exported.
  oasis::check::CheckScope check_scope;
  oasis::obs::ObsScope obs_scope;
  oasis::prof::ProfSession prof_session;
  oasis::SimulationConfig config;
  oasis::obs::ApplySeedOverride(&config.seed);
  oasis::ApplyPolicyOverride(&config.cluster);  // honour OASIS_POLICY
  config.cluster.policy =
      ParsePolicy(argc > 1 ? argv[1] : "fulltopartial");
  if (argc > 2 && std::string(argv[2]) == "weekend") {
    config.day = oasis::DayKind::kWeekend;
  }

  // A single-run plan through the experiment runner: with one run (or
  // OASIS_JOBS=1) this is exactly ClusterSimulation(config).Run().
  oasis::exp::ExperimentPlan plan;
  plan.Add(config);
  std::vector<oasis::SimulationResult> results = oasis::exp::RunParallel(plan);
  const oasis::ClusterMetrics& m = results[0].metrics;

  std::printf("Oasis quickstart: one simulated weekday, %d home + %d consolidation hosts, "
              "%d VMs, policy=%s\n",
              config.cluster.num_home_hosts, config.cluster.num_consolidation_hosts,
              config.cluster.TotalVms(),
              oasis::ConsolidationPolicyName(config.cluster.policy));
  std::printf("  baseline energy        : %.2f kWh\n", oasis::ToKWh(m.baseline_energy));
  std::printf("  oasis energy           : %.2f kWh  (homes %.2f + consolidation %.2f + "
              "memory servers %.2f)\n",
              oasis::ToKWh(m.TotalEnergy()), oasis::ToKWh(m.home_host_energy),
              oasis::ToKWh(m.consolidation_host_energy),
              oasis::ToKWh(m.memory_server_energy));
  std::printf("  energy savings         : %.1f%%\n", m.EnergySavings() * 100.0);
  std::printf("  migrations             : %llu full, %llu partial, %llu reintegrations\n",
              static_cast<unsigned long long>(m.full_migrations),
              static_cast<unsigned long long>(m.partial_migrations),
              static_cast<unsigned long long>(m.reintegrations));
  std::printf("  host sleeps/wakes      : %llu / %llu\n",
              static_cast<unsigned long long>(m.host_sleeps),
              static_cast<unsigned long long>(m.host_wakes));
  std::printf("  capacity exhaustions   : %llu\n",
              static_cast<unsigned long long>(m.capacity_exhaustions));
  if (m.transition_delay_s.count() > 0) {
    std::printf("  transition delay       : p50=%.2fs p99=%.2fs max=%.2fs over %zu events "
                "(%.0f%% are zero)\n",
                m.transition_delay_s.Quantile(0.5), m.transition_delay_s.Quantile(0.99),
                m.transition_delay_s.Max(), m.transition_delay_s.count(),
                m.transition_delay_s.FractionAtOrBelow(0.001) * 100.0);
  }
  std::printf("  network traffic        : %s\n", m.traffic.Summary().c_str());
  if (m.consolidation_ratio.count() > 0) {
    std::printf("  consolidation ratio    : median %.0f VMs per powered consolidation host\n",
                m.consolidation_ratio.Quantile(0.5));
  }
  std::printf("  timeline (time: active VMs / powered homes / powered consolidation / "
              "partials / full@cons):\n");
  for (size_t i = 0; i < m.timeline.size(); i += 24) {
    const oasis::IntervalSnapshot& s = m.timeline[i];
    std::printf("    %s  %3d / %2d / %d / %3d / %3d\n", s.time.ToClockString().c_str(),
                s.active_vms, s.powered_home_hosts, s.powered_consolidation_hosts,
                s.partial_vms, s.full_at_consolidation_vms);
  }
  return 0;
}
