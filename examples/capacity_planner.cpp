// Capacity-planning what-if tool: given a fleet size and workload intensity,
// sweep consolidation-host counts and report the energy/latency trade-off so
// an operator can size an Oasis deployment.
//
//   $ ./build/examples/capacity_planner [home_hosts] [vms_per_host] [attendance%]
//
// e.g. `capacity_planner 20 40 60` evaluates a 20-host, 800-VM farm whose
// users attend 60% of weekdays.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "src/common/table.h"
#include "src/cluster/strategy.h"
#include "src/core/oasis.h"
#include "src/exp/exp.h"
#include "src/check/check.h"
#include "src/obs/obs.h"

int main(int argc, char** argv) {
  // Honour OASIS_TRACE / OASIS_METRICS / OASIS_LOG_LEVEL for this run.
  // Invariant checking per OASIS_CHECK (off | warn | strict); declared
  // before ObsScope so traces flush before any strict exit.
  oasis::check::CheckScope check_scope;
  oasis::obs::ObsScope obs_scope;
  using namespace oasis;

  int home_hosts = argc > 1 ? std::atoi(argv[1]) : 30;
  int vms_per_host = argc > 2 ? std::atoi(argv[2]) : 30;
  double attendance = argc > 3 ? std::atof(argv[3]) / 100.0 : 0.76;
  if (home_hosts <= 0 || vms_per_host <= 0 || attendance < 0.0 || attendance > 1.0) {
    std::fprintf(stderr,
                 "usage: capacity_planner [home_hosts>0] [vms_per_host>0] [attendance 0-100]\n");
    return 1;
  }

  std::printf("Sizing an Oasis deployment: %d home hosts x %d VMs (%d total), "
              "%.0f%% weekday attendance.\n\n",
              home_hosts, vms_per_host, home_hosts * vms_per_host, attendance * 100.0);

  // Plan the full sweep (8 host counts x weekday/weekend) so the runner can
  // evaluate the what-if grid on OASIS_JOBS workers.
  exp::ExperimentPlan plan;
  for (int cons = 1; cons <= 8; ++cons) {
    SimulationConfig config;
    config.cluster.num_home_hosts = home_hosts;
    config.cluster.vms_per_home = vms_per_host;
    config.cluster.num_consolidation_hosts = cons;
    config.cluster.policy = ConsolidationPolicy::kFullToPartial;
    config.trace.weekday_attendance = attendance;
    config.seed = 77;
    obs::ApplySeedOverride(&config.seed);
    ApplyPolicyOverride(&config.cluster);  // honour OASIS_POLICY
    plan.Add(config);
    config.day = DayKind::kWeekend;
    plan.Add(config);
  }
  std::vector<SimulationResult> results = exp::RunParallel(plan);

  TextTable table({"consolidation hosts", "weekday savings", "weekend savings",
                   "instant transitions", "p99 delay (s)", "daily rack kWh"});
  double best_savings = 0.0;
  int best_hosts = 0;
  for (int cons = 1; cons <= 8; ++cons) {
    SimulationResult& weekday = results[(cons - 1) * 2];
    SimulationResult& weekend = results[(cons - 1) * 2 + 1];

    const ClusterMetrics& m = weekday.metrics;
    double instant = m.transition_delay_s.count() > 0
                         ? m.transition_delay_s.FractionAtOrBelow(0.001)
                         : 1.0;
    double p99 =
        m.transition_delay_s.count() > 0 ? m.transition_delay_s.Quantile(0.99) : 0.0;
    table.AddRow({std::to_string(cons), TextTable::Pct(m.EnergySavings()),
                  TextTable::Pct(weekend.metrics.EnergySavings()), TextTable::Pct(instant),
                  TextTable::Num(p99, 1), TextTable::Num(ToKWh(m.TotalEnergy()), 1)});
    if (m.EnergySavings() > best_savings + 0.005) {
      best_savings = m.EnergySavings();
      best_hosts = cons;
    }
  }
  table.Print(std::cout);

  std::printf("\nRecommendation: %d consolidation host(s) — smallest count within 0.5%% of "
              "the best weekday savings (%.1f%%).\n",
              best_hosts, best_savings * 100.0);
  std::printf("Assumptions: 128 GiB hosts, 4 GiB VMs, FulltoPartial policy, %.1f W memory "
              "servers.\n",
              MemoryServerProfile{}.TotalWatts());
  return 0;
}
