// A tour of the Oasis control plane (§4.1-4.2): a client creates VMs
// through the cluster manager's RPC interface, the manager places them on
// agents, commands partial and full migrations, polls statistics, and powers
// hosts down and up — with the actual wire traffic shown at the end.

#include <cstdio>

#include "src/ctrl/controller.h"
#include "src/ctrl/host_agent.h"
#include "src/ctrl/rpc_bus.h"
#include "src/check/check.h"
#include "src/obs/obs.h"

int main() {
  // Honour OASIS_TRACE / OASIS_METRICS / OASIS_LOG_LEVEL for this run.
  // Invariant checking per OASIS_CHECK (off | warn | strict); declared
  // before ObsScope so traces flush before any strict exit.
  oasis::check::CheckScope check_scope;
  oasis::obs::ObsScope obs_scope;
  using namespace oasis;

  RpcBus bus;
  ConfigStore store;
  ClusterController manager(&bus, &store);

  // A tiny rack: two compute hosts and one consolidation host.
  HostAgent compute0(&bus, 0, 128 * kGiB);
  HostAgent compute1(&bus, 1, 128 * kGiB);
  HostAgent consolidation(&bus, 2, 128 * kGiB);
  for (HostId h = 0; h < 3; ++h) {
    manager.RegisterHost(h, 128 * kGiB);
  }

  // VM configuration files live on network storage (§4.1).
  store.Put("/nfs/configs/alice.cfg",
            "vmid = 0101\ndisk = nfs://images/alice.img\nmemory = 4G\nvcpus = 1\n"
            "device = net:bridge0\ndevice = vfb:vnc\n");
  store.Put("/nfs/configs/bob.cfg",
            "vmid = 0102\ndisk = nfs://images/bob.img\nmemory = 4G\nvcpus = 1\n"
            "device = net:bridge0\n");

  std::printf("=== Oasis control plane tour ===\n\n");

  auto alice = manager.CreateVm("/nfs/configs/alice.cfg");
  auto bob = manager.CreateVm("/nfs/configs/bob.cfg");
  if (!alice.ok() || !bob.ok()) {
    std::fprintf(stderr, "creation failed\n");
    return 1;
  }
  std::printf("1. created vm %s on host %u and vm %s on host %u\n", alice->vmid.c_str(),
              alice->host, bob->vmid.c_str(), bob->host);

  // Night falls: both users go idle; the manager consolidates both VMs
  // partially onto the consolidation host and suspends the compute hosts.
  Status s1 = manager.MigrateVm(alice->host, alice->vmid, MigrationType::kPartial, 2);
  Status s2 = manager.MigrateVm(bob->host, bob->vmid, MigrationType::kPartial, 2);
  std::printf("2. partial migrations to consolidation host: %s, %s\n",
              s1.ToString().c_str(), s2.ToString().c_str());
  std::printf("   ownership stays with the homes (%u owns %s: %s), the consolidation host\n"
              "   runs the partial replicas\n",
              alice->host, alice->vmid.c_str(),
              (alice->host == 0 ? compute0 : compute1).OwnsVm(alice->vmid) ? "yes" : "no");

  // With nothing executing on the compute hosts their agents allow S3; the
  // memory servers keep answering page requests.
  std::printf("3. suspend compute hosts: %s / %s\n",
              manager.SuspendHost(alice->host).ToString().c_str(),
              manager.SuspendHost(bob->host).ToString().c_str());

  // Alice returns: wake her home via Wake-on-LAN, then reintegrate — the
  // replica partial-migrates back to its owner, which resumes it in place.
  Status wake = manager.WakeHost(alice->host);
  Status reintegrate =
      manager.MigrateVm(2, alice->vmid, MigrationType::kPartial, alice->host);
  std::printf("4. alice is back: wake host %u -> %s, reintegrate -> %s\n", alice->host,
              wake.ToString().c_str(), reintegrate.ToString().c_str());
  std::printf("   vm %s now executes at home again: %s\n", alice->vmid.c_str(),
              compute0.VmPresent(alice->vmid) || compute1.VmPresent(alice->vmid) ? "yes"
                                                                                 : "no");

  std::printf("\n5. periodic statistics:\n");
  for (const HostStatsReport& report : manager.CollectStats()) {
    std::printf("   host %u: mem %.0f%%, %zu VM(s)\n", report.host,
                report.memory_utilization * 100.0, report.vms.size());
  }

  std::printf("\n6. wire traffic (%llu messages, %llu bytes):\n",
              static_cast<unsigned long long>(bus.calls()),
              static_cast<unsigned long long>(bus.bytes_transferred()));
  for (const std::string& line : bus.log()) {
    std::printf("   %s\n", line.c_str());
  }
  return 0;
}
