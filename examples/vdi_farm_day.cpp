// Simulates a full day of a VDI server farm and writes a detailed operator
// report: energy breakdown, hourly timeline, latency percentiles, traffic,
// and the activity trace used (replayable via trace files).
//
//   $ ./build/examples/vdi_farm_day [trace-file]
//
// With a trace-file argument the day is driven by that trace (as produced by
// a previous run's `vdi_trace.txt`); otherwise a fresh synthetic weekday is
// generated and saved to vdi_trace.txt for reproduction.

#include <cstdio>
#include <iostream>

#include "src/common/table.h"
#include "src/cluster/strategy.h"
#include "src/core/oasis.h"
#include "src/exp/exp.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_stats.h"
#include "src/check/check.h"
#include "src/obs/obs.h"

int main(int argc, char** argv) {
  // Honour OASIS_TRACE / OASIS_METRICS / OASIS_LOG_LEVEL for this run.
  // Invariant checking per OASIS_CHECK (off | warn | strict); declared
  // before ObsScope so traces flush before any strict exit.
  oasis::check::CheckScope check_scope;
  oasis::obs::ObsScope obs_scope;
  using namespace oasis;

  SimulationConfig config;
  config.cluster.policy = ConsolidationPolicy::kFullToPartial;
  config.seed = 2016;
  obs::ApplySeedOverride(&config.seed);
  ApplyPolicyOverride(&config.cluster);  // honour OASIS_POLICY

  if (argc > 1) {
    StatusOr<TraceFile> loaded = ReadTraceFromPath(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load trace %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    config.fixed_trace = loaded->users;
    config.day = loaded->kind;
    std::printf("Replaying %zu-user %s trace from %s\n", loaded->users.size(),
                DayKindName(loaded->kind), argv[1]);
  }

  // Single-run plan via the experiment runner (identical to a direct
  // ClusterSimulation::Run at any OASIS_JOBS setting).
  exp::ExperimentPlan plan;
  plan.Add(config);
  SimulationResult result = std::move(exp::RunParallel(plan)[0]);
  const ClusterMetrics& m = result.metrics;

  if (argc <= 1) {
    TraceFile out{config.day, result.trace};
    if (WriteTraceToPath("vdi_trace.txt", out).ok()) {
      std::printf("Trace saved to vdi_trace.txt (replay with: vdi_farm_day vdi_trace.txt)\n");
    }
  }

  std::printf("\n=== VDI farm report: %d VMs on %d+%d hosts, %s, %s ===\n",
              config.cluster.TotalVms(), config.cluster.num_home_hosts,
              config.cluster.num_consolidation_hosts,
              ConsolidationPolicyName(config.cluster.policy), DayKindName(config.day));

  std::printf("\nWorkload: peak %.0f%% of users simultaneously active, mean %.1f%%\n",
              PeakActiveFraction(result.trace) * 100.0,
              MeanActiveFraction(result.trace) * 100.0);

  TextTable energy({"component", "kWh", "share"});
  double total = ToKWh(m.TotalEnergy());
  energy.AddRow({"home hosts", TextTable::Num(ToKWh(m.home_host_energy), 2),
                 TextTable::Pct(ToKWh(m.home_host_energy) / total)});
  energy.AddRow({"consolidation hosts", TextTable::Num(ToKWh(m.consolidation_host_energy), 2),
                 TextTable::Pct(ToKWh(m.consolidation_host_energy) / total)});
  energy.AddRow({"memory servers", TextTable::Num(ToKWh(m.memory_server_energy), 2),
                 TextTable::Pct(ToKWh(m.memory_server_energy) / total)});
  energy.AddRow({"total", TextTable::Num(total, 2), "100.0%"});
  energy.AddRow({"baseline (no consolidation)", TextTable::Num(ToKWh(m.baseline_energy), 2),
                 "-"});
  energy.Print(std::cout);
  std::printf("energy savings: %.1f%%\n", m.EnergySavings() * 100.0);

  std::printf("\nOperations: %llu full migrations, %llu partial migrations, "
              "%llu reintegrations, %llu host sleeps, %llu wakes, %llu FulltoPartial swaps\n",
              static_cast<unsigned long long>(m.full_migrations),
              static_cast<unsigned long long>(m.partial_migrations),
              static_cast<unsigned long long>(m.reintegrations),
              static_cast<unsigned long long>(m.host_sleeps),
              static_cast<unsigned long long>(m.host_wakes),
              static_cast<unsigned long long>(m.full_to_partial_swaps));

  if (m.transition_delay_s.count() > 0) {
    std::printf("\nUser experience over %zu idle->active transitions:\n",
                m.transition_delay_s.count());
    std::printf("  instant: %.1f%%   p90: %.1fs   p99: %.1fs   worst: %.1fs\n",
                m.transition_delay_s.FractionAtOrBelow(0.001) * 100.0,
                m.transition_delay_s.Quantile(0.90), m.transition_delay_s.Quantile(0.99),
                m.transition_delay_s.Max());
  }

  std::printf("\nNetwork: %s\n", m.traffic.Summary().c_str());

  std::printf("\nHourly timeline (active VMs / powered hosts):\n ");
  for (size_t i = 0; i < m.timeline.size(); i += 12) {
    std::printf(" %02zu:00=%d/%d", i / 12, m.timeline[i].active_vms,
                m.timeline[i].powered_hosts);
    if ((i / 12) % 6 == 5) {
      std::printf("\n ");
    }
  }
  std::printf("\n");
  return 0;
}
