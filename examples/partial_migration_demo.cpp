// Walks one VM through the complete hybrid-consolidation mechanism at the
// hypervisor level — the §4.4 micro-benchmark as an annotated narrative:
// priming, memory upload, descriptor push, demand paging through the memory
// server, dirtying, and reintegration.

#include <cstdio>

#include "src/hyper/memory_server.h"
#include "src/hyper/memtap.h"
#include "src/hyper/migration_model.h"
#include "src/hyper/workloads.h"
#include "src/check/check.h"
#include "src/obs/obs.h"

int main() {
  // Honour OASIS_TRACE / OASIS_METRICS / OASIS_LOG_LEVEL for this run.
  // Invariant checking per OASIS_CHECK (off | warn | strict); declared
  // before ObsScope so traces flush before any strict exit.
  oasis::check::CheckScope check_scope;
  oasis::obs::ObsScope obs_scope;
  using namespace oasis;

  std::printf("=== Oasis partial VM migration, step by step ===\n\n");

  // 1. A 4 GiB desktop VM boots and runs the Table 2 multitasking workload.
  VmConfig config;
  config.id = 1001;
  config.memory_bytes = 4 * kGiB;
  config.seed = 7;
  obs::ApplySeedOverride(&config.seed);
  Vm vm(config);
  ApplyWorkload(vm, BaseSystemFootprint());
  ApplyWorkload(vm, DesktopWorkload1());
  std::printf("1. primed %s\n   touched %s of %s (%.0f%% of allocation)\n",
              vm.DebugString().c_str(), FormatBytes(vm.image().touched_bytes()).c_str(),
              FormatBytes(vm.image().total_bytes()).c_str(),
              100.0 * static_cast<double>(vm.image().touched_bytes()) /
                  static_cast<double>(vm.image().total_bytes()));

  // 2. The user goes idle; five minutes later the cluster manager decides to
  //    consolidate. The agent compresses and uploads the memory image to the
  //    host's memory server over the shared SAS drive.
  ApplyWorkload(vm, IdleBackgroundChurn(SimTime::Minutes(5)));
  MigrationModel model;
  MemoryServer server;
  PartialMigrationPlan plan = model.ExecutePartialMigration(vm, /*differential=*/false);
  SimTime clock = server.Upload(SimTime::Zero(), vm.id(), plan.upload_bytes_compressed);
  vm.set_activity(VmActivity::kIdle);
  vm.set_residency(VmResidency::kPartial);
  std::printf("\n2. partial migration: uploaded %s compressed (%s raw) in %.1f s,\n"
              "   descriptor push %.1f s -> total %.1f s (vs %.1f s full migration)\n",
              FormatBytes(plan.upload_bytes_compressed).c_str(),
              FormatBytes(plan.upload_bytes_raw).c_str(), plan.upload_time.seconds(),
              plan.descriptor_time.seconds(), plan.total.seconds(),
              model.PlanFullMigration(config.memory_bytes).duration.seconds());

  // 3. The home host sleeps; the partial VM faults pages in on demand.
  std::printf("\n3. home host suspends to S3 (3.1 s); its 42.2 W memory server keeps\n"
              "   serving page requests while the host draws 12.9 W\n");
  Memtap memtap(&server, vm.id(), vm.image().total_pages(), 99);
  StatusOr<SimTime> stall = memtap.FaultInMany(clock, 14563 /* ~57 MiB */, 0.3);
  if (!stall.ok()) {
    std::fprintf(stderr, "fault error: %s\n", stall.status().ToString().c_str());
    return 1;
  }
  std::printf("   20 idle minutes on the consolidation host: fetched %s on demand\n"
              "   (%llu faults, %.1f%% chunk-cache hits, %.2f ms mean service time)\n",
              FormatBytes(memtap.bytes_fetched()).c_str(),
              static_cast<unsigned long long>(memtap.pages_fetched()),
              100.0 * static_cast<double>(server.cache_hits()) /
                  static_cast<double>(server.pages_served()),
              stall->seconds() * 1000.0 / static_cast<double>(memtap.pages_fetched()));

  // 4. The user returns: reintegrate the dirty state back home.
  uint64_t dirty = MiBToBytes(175.3);
  vm.image().DirtyTouchedPages(dirty / kPageSize);
  ReintegrationPlan reint = model.PlanReintegration(dirty);
  vm.set_activity(VmActivity::kActive);
  vm.set_residency(VmResidency::kFullAtHome);
  server.Remove(vm.id());
  std::printf("\n4. user active again: home wakes (2.3 s), %s of dirty state reintegrates\n"
              "   in %.1f s; the memory server image is released\n",
              FormatBytes(reint.dirty_bytes).c_str(), reint.duration.seconds());

  // 5. Next consolidation only uploads the delta.
  ApplyWorkload(vm, DesktopWorkload2());
  ApplyWorkload(vm, IdleBackgroundChurn(SimTime::Minutes(5)));
  PartialMigrationPlan delta = model.ExecutePartialMigration(vm, /*differential=*/true);
  std::printf("\n5. next idle period: differential upload moves only %s -> %.1f s total\n"
              "   (first migration was %.1f s)\n",
              FormatBytes(delta.upload_bytes_compressed).c_str(), delta.total.seconds(),
              plan.total.seconds());

  std::printf("\ndone: %s\n", vm.DebugString().c_str());
  return 0;
}
