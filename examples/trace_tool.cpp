// Trace tooling: generate, inspect and convert the VDI activity traces the
// simulation consumes.
//
//   trace_tool gen  <path> <users> <weekday|weekend> [seed]   generate a trace
//   trace_tool stats <path>                                   summarize a trace
//
// The text format is stable (see src/trace/trace_io.h), so traces can be
// versioned, hand-edited, and replayed into vdi_farm_day.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/trace/trace_generator.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_stats.h"
#include "src/check/check.h"
#include "src/obs/obs.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  trace_tool gen <path> <users> <weekday|weekend> [seed]\n"
               "  trace_tool stats <path>\n");
  return 2;
}

int Generate(int argc, char** argv) {
  using namespace oasis;
  if (argc < 5) {
    return Usage();
  }
  const char* path = argv[2];
  int users = std::atoi(argv[3]);
  if (users <= 0) {
    std::fprintf(stderr, "user count must be positive\n");
    return 2;
  }
  DayKind kind;
  if (std::strcmp(argv[4], "weekday") == 0) {
    kind = DayKind::kWeekday;
  } else if (std::strcmp(argv[4], "weekend") == 0) {
    kind = DayKind::kWeekend;
  } else {
    return Usage();
  }
  uint64_t seed = 42;
  if (argc > 5) {
    seed = std::strtoull(argv[5], nullptr, 10);  // explicit CLI seed wins
  } else {
    oasis::obs::ApplySeedOverride(&seed);
  }

  TraceGenerator generator(TraceGeneratorConfig{}, seed);
  TraceFile file{kind, generator.GenerateTraceSet(users, kind)};
  Status status = WriteTraceToPath(path, file);
  if (!status.ok()) {
    std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %d %s user-days to %s (seed %llu)\n", users, DayKindName(kind), path,
              static_cast<unsigned long long>(seed));
  return 0;
}

int Stats(int argc, char** argv) {
  using namespace oasis;
  if (argc < 3) {
    return Usage();
  }
  StatusOr<TraceFile> file = ReadTraceFromPath(argv[2]);
  if (!file.ok()) {
    std::fprintf(stderr, "read failed: %s\n", file.status().ToString().c_str());
    return 1;
  }
  const TraceSet& set = file->users;
  std::printf("%zu %s user-days\n", set.size(), DayKindName(file->kind));
  std::printf("  peak simultaneous activity : %.1f%% at %02.0f:%02.0f\n",
              PeakActiveFraction(set) * 100.0, HourOfInterval(PeakInterval(set)),
              60.0 * (HourOfInterval(PeakInterval(set)) -
                      static_cast<int>(HourOfInterval(PeakInterval(set)))));
  std::printf("  mean activity              : %.1f%%\n", MeanActiveFraction(set) * 100.0);
  std::printf("  all-idle fraction (30 VMs) : %.1f%%\n",
              MeanAllIdleFraction(set, 30) * 100.0);

  // A 24-bucket sparkline of the aggregate activity curve.
  std::vector<int> counts = ActiveCountSeries(set);
  std::printf("  hourly active users        :");
  for (int h = 0; h < 24; ++h) {
    int peak = 0;
    for (int i = h * 12; i < (h + 1) * 12; ++i) {
      peak = std::max(peak, counts[static_cast<size_t>(i)]);
    }
    std::printf(" %d", peak);
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Honour OASIS_TRACE / OASIS_METRICS / OASIS_LOG_LEVEL for this run.
  // Invariant checking per OASIS_CHECK (off | warn | strict); declared
  // before ObsScope so traces flush before any strict exit.
  oasis::check::CheckScope check_scope;
  oasis::obs::ObsScope obs_scope;
  if (argc < 2) {
    return Usage();
  }
  if (std::strcmp(argv[1], "gen") == 0) {
    return Generate(argc, argv);
  }
  if (std::strcmp(argv[1], "stats") == 0) {
    return Stats(argc, argv);
  }
  return Usage();
}
