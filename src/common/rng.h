// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component in Oasis draws from an explicitly-seeded Rng so
// that simulation runs are exactly reproducible. The generator is
// xoshiro256** seeded through SplitMix64, which has far better statistical
// quality than std::minstd and, unlike std::mt19937, a trivially copyable
// 32-byte state that makes forking independent streams cheap.

#ifndef OASIS_SRC_COMMON_RNG_H_
#define OASIS_SRC_COMMON_RNG_H_

#include <cstdint>

namespace oasis {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over all 64-bit values.
  uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0. Uses Lemire's multiply-shift
  // rejection method to avoid modulo bias.
  uint64_t NextBelow(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextRange(double lo, double hi);

  // Bernoulli draw.
  bool NextBool(double p_true);

  // Standard normal via Box-Muller (cached second deviate).
  double NextGaussian();

  // Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  // Exponential with the given mean (not rate).
  double NextExponential(double mean);

  // Bounded Pareto on [lo, hi] with tail index alpha; used for bursty idle
  // page-request gaps.
  double NextBoundedPareto(double alpha, double lo, double hi);

  // A statistically independent child generator, derived from this stream.
  // Forking N children from one parent yields N decorrelated streams.
  Rng Fork();

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace oasis

#endif  // OASIS_SRC_COMMON_RNG_H_
