// CSV emission so figure series can be re-plotted with external tooling.

#ifndef OASIS_SRC_COMMON_CSV_H_
#define OASIS_SRC_COMMON_CSV_H_

#include <ostream>
#include <string>
#include <vector>

namespace oasis {

class CsvWriter {
 public:
  // Writes rows to `os`; does not own the stream.
  CsvWriter(std::ostream& os, std::vector<std::string> headers);

  void WriteRow(const std::vector<std::string>& cells);

  // Quotes a field per RFC 4180 if it contains commas, quotes or newlines.
  static std::string Escape(const std::string& field);

 private:
  std::ostream& os_;
  size_t columns_;
};

}  // namespace oasis

#endif  // OASIS_SRC_COMMON_CSV_H_
