#include "src/common/csv.h"

#include <cassert>

namespace oasis {

CsvWriter::CsvWriter(std::ostream& os, std::vector<std::string> headers)
    : os_(os), columns_(headers.size()) {
  WriteRow(headers);
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  assert(cells.size() == columns_);
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) {
      os_ << ",";
    }
    os_ << Escape(cells[i]);
  }
  os_ << "\n";
}

std::string CsvWriter::Escape(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) {
    return field;
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += "\"";
  return out;
}

}  // namespace oasis
