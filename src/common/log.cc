#include "src/common/log.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstring>

namespace oasis {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

// INT64_MIN = "no simulation clock published". Thread-local: each parallel
// experiment worker runs its own simulator, so the published clock must not
// leak across runs (and updating it must not race).
constexpr int64_t kNoSimTime = INT64_MIN;
thread_local int64_t t_sim_time_us = kNoSimTime;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

bool ParseLogLevel(const std::string& name, LogLevel* out) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug" || lower == "d") {
    *out = LogLevel::kDebug;
  } else if (lower == "info" || lower == "i") {
    *out = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn" || lower == "w") {
    *out = LogLevel::kWarning;
  } else if (lower == "error" || lower == "e") {
    *out = LogLevel::kError;
  } else if (lower == "off") {
    *out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

void SetLogSimTime(SimTime now) { t_sim_time_us = now.micros(); }

void ClearLogSimTime() { t_sim_time_us = kNoSimTime; }

bool GetLogSimTime(SimTime* out) {
  if (t_sim_time_us == kNoSimTime) {
    return false;
  }
  *out = SimTime::Micros(t_sim_time_us);
  return true;
}

void LogMessage(LogLevel level, const char* component, const char* file, int line,
                const std::string& message) {
  if (level < GetLogLevel()) {
    return;
  }
  // Render the whole line first so it reaches stderr in one fwrite; writers
  // on different threads cannot interleave mid-line.
  std::string out;
  out.reserve(message.size() + 64);
  out += '[';
  out += LevelTag(level);
  SimTime sim_now;
  if (GetLogSimTime(&sim_now)) {
    out += ' ';
    out += sim_now.ToClockString();
  }
  if (component != nullptr) {
    out += ' ';
    out += component;
  }
  out += ' ';
  out += Basename(file);
  out += ':';
  out += std::to_string(line);
  out += "] ";
  out += message;
  out += '\n';
  std::fwrite(out.data(), 1, out.size(), stderr);
}

}  // namespace oasis
