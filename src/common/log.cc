#include "src/common/log.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace oasis {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  if (level < GetLogLevel()) {
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level), Basename(file), line,
               message.c_str());
}

}  // namespace oasis
