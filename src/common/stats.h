// Streaming statistics, histograms and empirical CDFs used by every
// experiment harness.

#ifndef OASIS_SRC_COMMON_STATS_H_
#define OASIS_SRC_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace oasis {

// Welford's online mean / variance. O(1) space, numerically stable.
class OnlineStats {
 public:
  void Add(double x);
  void Merge(const OnlineStats& other);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double sample_variance() const;
  double stddev() const;
  double sample_stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Exact empirical distribution: stores every sample, sorts lazily.
// Fine for the sample counts our experiments produce (≤ a few million).
class EmpiricalCdf {
 public:
  void Add(double x);
  void AddN(double x, size_t n);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // Value at quantile q in [0, 1] (q=0.5 is the median). Uses the
  // nearest-rank definition. Requires at least one sample.
  double Quantile(double q) const;

  // Fraction of samples <= x.
  double FractionAtOrBelow(double x) const;

  double Mean() const;
  double Min() const;
  double Max() const;

  // (value, cumulative fraction) pairs at the given number of evenly spaced
  // ranks — convenient for printing a CDF series.
  std::vector<std::pair<double, double>> Curve(size_t points) const;

  const std::vector<double>& sorted_samples() const;

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Fixed-width linear histogram over [lo, hi); out-of-range values clamp to
// the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  uint64_t BucketCount(size_t i) const { return counts_[i]; }
  size_t num_buckets() const { return counts_.size(); }
  double BucketLow(size_t i) const;
  double BucketHigh(size_t i) const;
  uint64_t total() const { return total_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace oasis

#endif  // OASIS_SRC_COMMON_STATS_H_
