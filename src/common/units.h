// Strong unit types and conversion helpers shared by every Oasis module.
//
// Simulated time is kept as a 64-bit signed count of microseconds so that a
// multi-day cluster simulation accumulates no floating-point drift. Byte
// quantities are 64-bit unsigned. Power and energy are doubles (watts and
// joules) because they are only ever integrated, never compared for identity.

#ifndef OASIS_SRC_COMMON_UNITS_H_
#define OASIS_SRC_COMMON_UNITS_H_

#include <cstdint>
#include <compare>
#include <string>

namespace oasis {

// --- Time ------------------------------------------------------------------

// A point or span on the simulated clock, in microseconds.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(int64_t micros) : micros_(micros) {}

  static constexpr SimTime Micros(int64_t us) { return SimTime(us); }
  static constexpr SimTime Millis(int64_t ms) { return SimTime(ms * 1000); }
  static constexpr SimTime Seconds(double s) {
    return SimTime(static_cast<int64_t>(s * 1e6));
  }
  static constexpr SimTime Minutes(double m) { return Seconds(m * 60.0); }
  static constexpr SimTime Hours(double h) { return Seconds(h * 3600.0); }
  static constexpr SimTime Max() { return SimTime(INT64_MAX); }
  static constexpr SimTime Zero() { return SimTime(0); }

  constexpr int64_t micros() const { return micros_; }
  constexpr double seconds() const { return static_cast<double>(micros_) / 1e6; }
  constexpr double minutes() const { return seconds() / 60.0; }
  constexpr double hours() const { return seconds() / 3600.0; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime o) const { return SimTime(micros_ + o.micros_); }
  constexpr SimTime operator-(SimTime o) const { return SimTime(micros_ - o.micros_); }
  constexpr SimTime& operator+=(SimTime o) {
    micros_ += o.micros_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    micros_ -= o.micros_;
    return *this;
  }
  constexpr SimTime operator*(double k) const {
    return SimTime(static_cast<int64_t>(static_cast<double>(micros_) * k));
  }
  constexpr double operator/(SimTime o) const {
    return static_cast<double>(micros_) / static_cast<double>(o.micros_);
  }

  // "hh:mm:ss" rendering of a time-of-day (wraps at 24 h).
  std::string ToClockString() const;

 private:
  int64_t micros_ = 0;
};

// --- Bytes -----------------------------------------------------------------

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

// The x86 page and the allocation chunk Oasis' hypervisor hands out
// (2 MiB, matching the prototype's heap-fragmentation avoidance).
inline constexpr uint64_t kPageSize = 4 * kKiB;
inline constexpr uint64_t kChunkSize = 2 * kMiB;
inline constexpr uint64_t kPagesPerChunk = kChunkSize / kPageSize;

constexpr double ToMiB(uint64_t bytes) { return static_cast<double>(bytes) / kMiB; }
constexpr double ToGiB(uint64_t bytes) { return static_cast<double>(bytes) / kGiB; }
constexpr uint64_t MiBToBytes(double mib) { return static_cast<uint64_t>(mib * kMiB); }

// Human-friendly "37.6 MiB" / "4.0 GiB" formatting.
std::string FormatBytes(uint64_t bytes);

// --- Power / energy --------------------------------------------------------

using Watts = double;
using Joules = double;

constexpr Joules WattHours(double wh) { return wh * 3600.0; }
constexpr double ToWattHours(Joules j) { return j / 3600.0; }
constexpr double ToKWh(Joules j) { return j / 3.6e6; }

// Energy from holding a constant power draw for a span of simulated time.
constexpr Joules EnergyOver(Watts p, SimTime span) { return p * span.seconds(); }

}  // namespace oasis

#endif  // OASIS_SRC_COMMON_UNITS_H_
