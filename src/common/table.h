// ASCII table rendering for benchmark harnesses, so every reproduced table
// and figure prints in a uniform, diff-friendly format.

#ifndef OASIS_SRC_COMMON_TABLE_H_
#define OASIS_SRC_COMMON_TABLE_H_

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace oasis {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  // Adds one row; the cell count must match the header count.
  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);
  static std::string Pct(double fraction, int precision = 1);  // 0.28 -> "28.0%"

  void Print(std::ostream& os) const;
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints "# <title>" followed by an optional caption — the standard header
// every bench binary emits before its table.
void PrintExperimentHeader(std::ostream& os, const std::string& title,
                           const std::string& caption);

}  // namespace oasis

#endif  // OASIS_SRC_COMMON_TABLE_H_
