#include "src/common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace oasis {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  size_t n = count_ + other.count_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ = n;
}

double OnlineStats::variance() const {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double OnlineStats::sample_variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::sample_stddev() const { return std::sqrt(sample_variance()); }

void EmpiricalCdf::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void EmpiricalCdf::AddN(double x, size_t n) {
  samples_.insert(samples_.end(), n, x);
  sorted_ = false;
}

void EmpiricalCdf::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::Quantile(double q) const {
  assert(!samples_.empty());
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(samples_.size())));
  if (rank > 0) {
    --rank;
  }
  rank = std::min(rank, samples_.size() - 1);
  return samples_[rank];
}

double EmpiricalCdf::FractionAtOrBelow(double x) const {
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double EmpiricalCdf::Mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (double x : samples_) {
    s += x;
  }
  return s / static_cast<double>(samples_.size());
}

double EmpiricalCdf::Min() const {
  EnsureSorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double EmpiricalCdf::Max() const {
  EnsureSorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

std::vector<std::pair<double, double>> EmpiricalCdf::Curve(size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) {
    return out;
  }
  EnsureSorted();
  out.reserve(points);
  for (size_t i = 1; i <= points; ++i) {
    double frac = static_cast<double>(i) / static_cast<double>(points);
    size_t idx = std::min(samples_.size() - 1,
                          static_cast<size_t>(frac * static_cast<double>(samples_.size())));
    out.emplace_back(samples_[idx], frac);
  }
  return out;
}

const std::vector<double>& EmpiricalCdf::sorted_samples() const {
  EnsureSorted();
  return samples_;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  assert(hi > lo);
  assert(buckets > 0);
}

void Histogram::Add(double x) {
  double pos = (x - lo_) / width_;
  size_t i;
  if (pos < 0.0) {
    i = 0;
  } else if (pos >= static_cast<double>(counts_.size())) {
    i = counts_.size() - 1;
  } else {
    i = static_cast<size_t>(pos);
  }
  ++counts_[i];
  ++total_;
}

double Histogram::BucketLow(size_t i) const { return lo_ + width_ * static_cast<double>(i); }

double Histogram::BucketHigh(size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

}  // namespace oasis
