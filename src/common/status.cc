#include "src/common/status.h"

namespace oasis {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace oasis
