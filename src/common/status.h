// Minimal Status / StatusOr error types (modeled on absl::Status) used for
// recoverable failures across module boundaries. Oasis never throws across
// library boundaries; invariant violations use assertions instead.

#ifndef OASIS_SRC_COMMON_STATUS_H_
#define OASIS_SRC_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace oasis {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kResourceExhausted,
  kFailedPrecondition,
  kOutOfRange,
  kUnavailable,
  kAborted,
  kInternal,
};

const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) { return Status(StatusCode::kNotFound, std::move(m)); }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  // An operation was cut off mid-flight (e.g. an injected fault killed the
  // serving component while the request was in progress).
  static Status Aborted(std::string m) { return Status(StatusCode::kAborted, std::move(m)); }
  static Status Internal(std::string m) { return Status(StatusCode::kInternal, std::move(m)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    return ok() ? "OK" : std::string(StatusCodeName(code_)) + ": " + message_;
  }

  bool operator==(const Status& o) const { return code_ == o.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : value_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(value_).ok() && "StatusOr must not hold OK without a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(value_); }

  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(value_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> value_;
};

}  // namespace oasis

#endif  // OASIS_SRC_COMMON_STATUS_H_
