#include "src/common/rng.h"

#include <cmath>

namespace oasis {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Lemire's nearly-divisionless method.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  // 53 high bits -> [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextRange(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::NextExponential(double mean) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::NextBoundedPareto(double alpha, double lo, double hi) {
  double u = NextDouble();
  double la = std::pow(lo, alpha);
  double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0xA02BDBF7BB3C0A7ull); }

}  // namespace oasis
