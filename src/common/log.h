// Tiny leveled logger. Benchmarks and the cluster manager log at kInfo;
// per-event detail goes to kDebug and is compiled in but filtered at runtime.

#ifndef OASIS_SRC_COMMON_LOG_H_
#define OASIS_SRC_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace oasis {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

// Global minimum level; messages below it are dropped. Defaults to kWarning
// so library users see problems but not chatter.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one formatted line to stderr. Prefer the OASIS_LOG macro.
void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

namespace log_internal {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace log_internal

#define OASIS_LOG(level)                                        \
  if (::oasis::LogLevel::level < ::oasis::GetLogLevel()) {      \
  } else                                                        \
    ::oasis::log_internal::LogLine(::oasis::LogLevel::level, __FILE__, __LINE__)

}  // namespace oasis

#endif  // OASIS_SRC_COMMON_LOG_H_
