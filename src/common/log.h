// Tiny leveled logger. Benchmarks and the cluster manager log at kInfo;
// per-event detail goes to kDebug and is compiled in but filtered at runtime.
//
// Lines are rendered in one buffer and emitted with a single fwrite, so
// concurrent writers (tests, future threaded drivers) cannot interleave
// mid-line. When a simulation publishes its clock via SetLogSimTime, every
// line carries the current simulated time, and OASIS_CLOG additionally tags
// the emitting component:
//
//   [I 13:25:00 cluster manager.cc:412] vacating host 7 (3 partials)

#ifndef OASIS_SRC_COMMON_LOG_H_
#define OASIS_SRC_COMMON_LOG_H_

#include <sstream>
#include <string>

#include "src/common/units.h"

namespace oasis {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

// Global minimum level; messages below it are dropped. Defaults to kWarning
// so library users see problems but not chatter.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Parses "debug" / "info" / "warning" / "error" / "off" (case-insensitive,
// single-letter abbreviations accepted). Returns false on unknown names.
bool ParseLogLevel(const std::string& name, LogLevel* out);

// Simulated-clock annotation. The simulator publishes its clock before each
// event dispatch; while set, log lines carry the time as hh:mm:ss.
void SetLogSimTime(SimTime now);
void ClearLogSimTime();
bool GetLogSimTime(SimTime* out);

// Emits one formatted line to stderr. Prefer the OASIS_LOG / OASIS_CLOG
// macros. `component` may be nullptr.
void LogMessage(LogLevel level, const char* component, const char* file, int line,
                const std::string& message);

namespace log_internal {

class LogLine {
 public:
  LogLine(LogLevel level, const char* component, const char* file, int line)
      : level_(level), component_(component), file_(file), line_(line) {}
  ~LogLine() { LogMessage(level_, component_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* component_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace log_internal

#define OASIS_LOG(level)                                        \
  if (::oasis::LogLevel::level < ::oasis::GetLogLevel()) {      \
  } else                                                        \
    ::oasis::log_internal::LogLine(::oasis::LogLevel::level, nullptr, __FILE__, __LINE__)

// Like OASIS_LOG with a component tag ("cluster", "memsrv", ...); the tag
// must be a string literal or otherwise outlive the statement.
#define OASIS_CLOG(level, component)                            \
  if (::oasis::LogLevel::level < ::oasis::GetLogLevel()) {      \
  } else                                                        \
    ::oasis::log_internal::LogLine(::oasis::LogLevel::level, component, __FILE__, __LINE__)

}  // namespace oasis

#endif  // OASIS_SRC_COMMON_LOG_H_
