#include "src/common/units.h"

#include <cstdio>

namespace oasis {

std::string SimTime::ToClockString() const {
  int64_t total_seconds = micros_ / 1000000;
  int64_t day_seconds = ((total_seconds % 86400) + 86400) % 86400;
  int hh = static_cast<int>(day_seconds / 3600);
  int mm = static_cast<int>((day_seconds / 60) % 60);
  int ss = static_cast<int>(day_seconds % 60);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d", hh, mm, ss);
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.1f GiB", ToGiB(bytes));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB", ToMiB(bytes));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", static_cast<double>(bytes) / kKiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace oasis
