#include "src/common/table.h"

#include <cassert>
#include <cstdio>
#include <sstream>

namespace oasis {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::Pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void TextTable::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << "\n";
  };
  auto print_rule = [&]() {
    os << "+";
    for (size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << "+";
    }
    os << "\n";
  };
  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) {
    print_row(row);
  }
  print_rule();
}

std::string TextTable::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

void PrintExperimentHeader(std::ostream& os, const std::string& title,
                           const std::string& caption) {
  os << "\n# " << title << "\n";
  if (!caption.empty()) {
    os << caption << "\n";
  }
  os << "\n";
}

}  // namespace oasis
