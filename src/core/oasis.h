// Oasis public API.
//
// This is the façade a downstream user programs against:
//
//   #include "src/core/oasis.h"
//
//   oasis::SimulationConfig config;                       // 30+4 VDI rack
//   config.cluster.policy = oasis::ConsolidationPolicy::kFullToPartial;
//   oasis::ClusterSimulation simulation(config);
//   oasis::SimulationResult result = simulation.Run();
//   std::cout << result.metrics.EnergySavings();
//
// It wires the trace generator (or a caller-provided trace) into the
// cluster manager and aggregates repeated runs, and exposes the canned
// experiment presets used by the bench/ harnesses.

#ifndef OASIS_SRC_CORE_OASIS_H_
#define OASIS_SRC_CORE_OASIS_H_

#include <optional>
#include <vector>

#include "src/cluster/cluster_types.h"
#include "src/cluster/manager.h"
#include "src/cluster/metrics.h"
#include "src/common/stats.h"
#include "src/obs/run_context.h"
#include "src/trace/activity_trace.h"
#include "src/trace/trace_generator.h"

namespace oasis {

struct SimulationConfig {
  // cluster.fault opts into deterministic failure injection (host crashes,
  // WoL loss, RPC faults, memory-server deaths, migration aborts — see
  // DESIGN.md § Failure model). Disabled by default; a disabled config
  // consumes no random draws, so results match builds without the subsystem.
  ClusterConfig cluster;
  DayKind day = DayKind::kWeekday;
  TraceGeneratorConfig trace;
  // When set, this trace drives the run instead of the generator.
  std::optional<TraceSet> fixed_trace;
  // Drives the trace generator, the cluster's RNG streams, and the fault
  // schedule; every bench/example main lets OASIS_SEED override it
  // (obs::ApplySeedOverride).
  uint64_t seed = 42;
};

struct SimulationResult {
  ClusterMetrics metrics;
  // The trace that drove the run (useful for baselines and plotting).
  TraceSet trace;
};

class ClusterSimulation {
 public:
  // `run_context` (optional) scopes the run's observability — tracer,
  // metrics, sim-time logging — to a run-local collector; the parallel
  // experiment runner (src/exp) passes one per in-flight run. nullptr keeps
  // the process-global collectors, exactly as before.
  explicit ClusterSimulation(const SimulationConfig& config,
                             obs::RunContext* run_context = nullptr);

  // Simulates one day.
  SimulationResult Run();

  const SimulationConfig& config() const { return config_; }

 private:
  SimulationConfig config_;
  obs::RunContext* run_context_ = nullptr;
};

// Aggregate of N independent runs (fresh trace sample + seed per run), the
// way §5 reports each datapoint as the average of five runs.
struct RepeatedRunResult {
  OnlineStats savings;            // energy-savings fraction per run
  OnlineStats total_energy_kwh;
  OnlineStats baseline_energy_kwh;
  std::vector<SimulationResult> runs;
};

RepeatedRunResult RunRepeated(const SimulationConfig& config, int runs);

}  // namespace oasis

#endif  // OASIS_SRC_CORE_OASIS_H_
