#include "src/core/oasis.h"

namespace oasis {

ClusterSimulation::ClusterSimulation(const SimulationConfig& config,
                                     obs::RunContext* run_context)
    : config_(config), run_context_(run_context) {}

SimulationResult ClusterSimulation::Run() {
  SimulationResult result;
  if (config_.fixed_trace.has_value()) {
    result.trace = *config_.fixed_trace;
  } else {
    TraceGenerator generator(config_.trace, config_.seed ^ 0x7ACEBA5Eull);
    result.trace = generator.GenerateTraceSet(config_.cluster.TotalVms(), config_.day);
  }
  ClusterConfig cluster = config_.cluster;
  cluster.seed = config_.seed;
  ClusterManager manager(cluster, result.trace, run_context_);
  result.metrics = manager.Run();
  return result;
}

RepeatedRunResult RunRepeated(const SimulationConfig& config, int runs) {
  RepeatedRunResult out;
  for (int r = 0; r < runs; ++r) {
    SimulationConfig run_config = config;
    run_config.seed = config.seed + static_cast<uint64_t>(r) * 0x9E3779B9ull;
    ClusterSimulation simulation(run_config);
    SimulationResult result = simulation.Run();
    out.savings.Add(result.metrics.EnergySavings());
    out.total_energy_kwh.Add(ToKWh(result.metrics.TotalEnergy()));
    out.baseline_energy_kwh.Add(ToKWh(result.metrics.baseline_energy));
    out.runs.push_back(std::move(result));
  }
  return out;
}

}  // namespace oasis
