// Real-time LZ77-style page compression.
//
// Stands in for the LZO library the prototype uses on every page pushed to
// the memory server (§4.3). Like LZO this is a byte-oriented
// literal-run/match format tuned for speed over ratio, so compressed sizes
// react honestly to page contents (zero pages collapse, text compresses
// well, random data stays put).
//
// Format: a sequence of tokens.
//   0xxxxxxx                 -> literal run of (x+1) bytes (1..128) follows
//   1xxxxxxx <off_lo> <off_hi> -> copy (x + kMinMatch) bytes from `offset`
//                               bytes back (1..65535)
// Matches are at least kMinMatch (4) and at most kMaxMatch (131) bytes.

#ifndef OASIS_SRC_MEM_COMPRESSION_H_
#define OASIS_SRC_MEM_COMPRESSION_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace oasis {

inline constexpr size_t kMinMatch = 4;
inline constexpr size_t kMaxMatch = kMinMatch + 127;

// Compresses `input`; output is self-delimiting given its size.
std::vector<uint8_t> LzCompress(const std::vector<uint8_t>& input);

// Inverse of LzCompress. Returns nullopt on corrupt input.
std::optional<std::vector<uint8_t>> LzDecompress(const std::vector<uint8_t>& compressed,
                                                 size_t expected_size);

// compressed_size / input_size for one buffer (1.0 when input is empty).
double CompressionRatio(const std::vector<uint8_t>& input);

}  // namespace oasis

#endif  // OASIS_SRC_MEM_COMPRESSION_H_
