#include "src/mem/compression.h"

#include <cstring>

namespace oasis {
namespace {

constexpr size_t kHashBits = 13;
constexpr size_t kHashSize = 1u << kHashBits;

uint32_t Hash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return (v * 2654435761u) >> (32 - kHashBits);
}

void FlushLiterals(const std::vector<uint8_t>& input, size_t lit_start, size_t lit_end,
                   std::vector<uint8_t>& out) {
  size_t n = lit_end - lit_start;
  while (n > 0) {
    size_t run = std::min<size_t>(n, 128);
    out.push_back(static_cast<uint8_t>(run - 1));
    out.insert(out.end(), input.begin() + static_cast<long>(lit_start),
               input.begin() + static_cast<long>(lit_start + run));
    lit_start += run;
    n -= run;
  }
}

}  // namespace

std::vector<uint8_t> LzCompress(const std::vector<uint8_t>& input) {
  std::vector<uint8_t> out;
  if (input.empty()) {
    return out;
  }
  out.reserve(input.size() / 2);

  // Last seen position of each 4-byte hash; kNone means unseen.
  constexpr uint32_t kNone = 0xFFFFFFFFu;
  uint32_t table[kHashSize];
  std::memset(table, 0xFF, sizeof(table));

  size_t pos = 0;
  size_t lit_start = 0;
  const size_t n = input.size();
  while (pos + kMinMatch <= n) {
    uint32_t h = Hash4(&input[pos]);
    uint32_t cand = table[h];
    table[h] = static_cast<uint32_t>(pos);
    if (cand != kNone && pos - cand <= 0xFFFF &&
        std::memcmp(&input[cand], &input[pos], kMinMatch) == 0) {
      // Extend the match.
      size_t len = kMinMatch;
      size_t max_len = std::min(kMaxMatch, n - pos);
      while (len < max_len && input[cand + len] == input[pos + len]) {
        ++len;
      }
      FlushLiterals(input, lit_start, pos, out);
      size_t offset = pos - cand;
      out.push_back(static_cast<uint8_t>(0x80u | (len - kMinMatch)));
      out.push_back(static_cast<uint8_t>(offset & 0xFF));
      out.push_back(static_cast<uint8_t>((offset >> 8) & 0xFF));
      pos += len;
      lit_start = pos;
    } else {
      ++pos;
    }
  }
  FlushLiterals(input, lit_start, n, out);
  return out;
}

std::optional<std::vector<uint8_t>> LzDecompress(const std::vector<uint8_t>& compressed,
                                                 size_t expected_size) {
  std::vector<uint8_t> out;
  out.reserve(expected_size);
  size_t pos = 0;
  const size_t n = compressed.size();
  while (pos < n) {
    uint8_t token = compressed[pos++];
    if (token & 0x80u) {
      size_t len = (token & 0x7Fu) + kMinMatch;
      if (pos + 2 > n) {
        return std::nullopt;
      }
      size_t offset = compressed[pos] | (static_cast<size_t>(compressed[pos + 1]) << 8);
      pos += 2;
      if (offset == 0 || offset > out.size()) {
        return std::nullopt;
      }
      size_t src = out.size() - offset;
      for (size_t i = 0; i < len; ++i) {
        out.push_back(out[src + i]);  // byte-by-byte: overlapping copies are legal
      }
    } else {
      size_t run = static_cast<size_t>(token) + 1;
      if (pos + run > n) {
        return std::nullopt;
      }
      out.insert(out.end(), compressed.begin() + static_cast<long>(pos),
                 compressed.begin() + static_cast<long>(pos + run));
      pos += run;
    }
  }
  if (out.size() != expected_size) {
    return std::nullopt;
  }
  return out;
}

double CompressionRatio(const std::vector<uint8_t>& input) {
  if (input.empty()) {
    return 1.0;
  }
  return static_cast<double>(LzCompress(input).size()) / static_cast<double>(input.size());
}

}  // namespace oasis
