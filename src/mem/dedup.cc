#include "src/mem/dedup.h"

namespace oasis {

uint64_t HashPage(const PageBytes& page) {
  uint64_t h = 0xCBF29CE484222325ull;  // FNV offset basis
  for (uint8_t byte : page) {
    h ^= byte;
    h *= 0x100000001B3ull;  // FNV prime
  }
  return h;
}

uint64_t DedupPageStore::Insert(const PageBytes& page) {
  uint64_t hash = HashPage(page);
  ++refcounts_[hash];
  ++total_refs_;
  return hash;
}

bool DedupPageStore::Remove(uint64_t content_hash) {
  auto it = refcounts_.find(content_hash);
  if (it == refcounts_.end()) {
    return false;
  }
  --total_refs_;
  if (--it->second == 0) {
    refcounts_.erase(it);
  }
  return true;
}

bool DedupPageStore::Contains(uint64_t content_hash) const {
  return refcounts_.count(content_hash) > 0;
}

double DedupPageStore::DedupFactor() const {
  if (refcounts_.empty()) {
    return 1.0;
  }
  return static_cast<double>(total_refs_) / static_cast<double>(refcounts_.size());
}

}  // namespace oasis
