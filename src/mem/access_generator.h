// Idle-VM memory access processes.
//
// Reproduces the two measurements §2 builds its case on:
//  * Figure 1 — cumulative unique memory touched by an idle VM over one
//    hour: 188.2 MiB for a desktop, 37.6 MiB for a RUBiS web server and
//    30.6 MiB for its database, out of 4 GiB allocations. We model the
//    unique-page curve as exponential saturation toward the per-type target.
//  * Figure 2 — the on-demand page *request* stream a consolidated partial
//    VM sends to its home: bursty, with a mean burst gap of 3.9 minutes for
//    a single database VM but only 5.8 seconds aggregated across 10
//    co-located VMs (5 web + 5 db), which is what kills naive
//    wake-the-host-per-fault consolidation.

#ifndef OASIS_SRC_MEM_ACCESS_GENERATOR_H_
#define OASIS_SRC_MEM_ACCESS_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"

namespace oasis {

enum class VmType { kDesktop, kWebServer, kDatabase };

const char* VmTypeName(VmType type);

struct IdleAccessProfile {
  // Unique bytes touched after one idle hour (the Fig 1 asymptote).
  double unique_mib_at_1h = 188.2;
  // Time constant of the saturating unique-page curve.
  double saturation_tau_minutes = 18.0;
  // Mean gap between page-request bursts while idle.
  double burst_gap_mean_seconds = 45.0;
  // Mean pages fetched per burst (geometric).
  double burst_pages_mean = 12.0;

  static IdleAccessProfile For(VmType type);
};

class IdleAccessGenerator {
 public:
  IdleAccessGenerator(const IdleAccessProfile& profile, uint64_t seed);
  IdleAccessGenerator(VmType type, uint64_t seed)
      : IdleAccessGenerator(IdleAccessProfile::For(type), seed) {}

  // Times of page-request bursts in [0, duration). Gaps are drawn from a
  // two-phase hyperexponential (bursty: many short gaps, a heavy tail of
  // long ones) whose mean equals burst_gap_mean_seconds.
  std::vector<SimTime> GenerateBurstTimes(SimTime duration);

  // Number of pages requested by one burst (>= 1).
  uint64_t SampleBurstPages();

  // Deterministic cumulative unique bytes touched after idling for `t`,
  // normalized so the curve hits unique_mib_at_1h exactly at one hour.
  uint64_t CumulativeUniqueBytes(SimTime t) const;

  const IdleAccessProfile& profile() const { return profile_; }

 private:
  IdleAccessProfile profile_;
  Rng rng_;
};

// Sleep-opportunity analysis for a host that must wake to serve page
// requests (the pre-Oasis Jettison model §2 / Fig 2): after each serviced
// request the host lingers `idle_wait`, then suspends if the next request
// leaves room for suspend + resume.
struct SleepOpportunity {
  double sleep_fraction = 0.0;   // share of the horizon spent in S3
  double mean_gap_seconds = 0.0; // mean request inter-arrival
  int sleep_episodes = 0;
  int requests = 0;
};

SleepOpportunity ComputeSleepOpportunity(const std::vector<SimTime>& request_times,
                                         SimTime horizon, SimTime suspend_latency,
                                         SimTime resume_latency, SimTime idle_wait);

// Merges several VMs' burst-time streams into one sorted arrival stream —
// the aggregate a shared home host must serve.
std::vector<SimTime> MergeRequestStreams(const std::vector<std::vector<SimTime>>& streams);

}  // namespace oasis

#endif  // OASIS_SRC_MEM_ACCESS_GENERATOR_H_
