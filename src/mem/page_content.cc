#include "src/mem/page_content.h"

#include <cstring>

#include "src/common/rng.h"

namespace oasis {
namespace {

// Word pool for text-like pages; repetition is what makes text compress.
constexpr const char* kWords[] = {
    "the",     "config",  "memory",  "server",  "page",    "virtual", "machine",
    "cluster", "energy",  "sleep",   "request", "consolidation",      "host",
    "idle",    "active",  "power",   "network", "desktop", "state",   "cache",
};
constexpr size_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);

}  // namespace

const char* PageClassName(PageClass c) {
  switch (c) {
    case PageClass::kZero:
      return "zero";
    case PageClass::kText:
      return "text";
    case PageClass::kCode:
      return "code";
    case PageClass::kRandom:
      return "random";
  }
  return "?";
}

PageContentGenerator::PageContentGenerator(uint64_t vm_seed, const PageClassMix& mix)
    : vm_seed_(vm_seed), mix_(mix) {}

PageClass PageContentGenerator::ClassOf(uint64_t page_number) const {
  Rng rng(vm_seed_ ^ (page_number * 0x9E3779B97F4A7C15ull));
  double u = rng.NextDouble();
  if (u < mix_.zero) {
    return PageClass::kZero;
  }
  u -= mix_.zero;
  if (u < mix_.text) {
    return PageClass::kText;
  }
  u -= mix_.text;
  if (u < mix_.code) {
    return PageClass::kCode;
  }
  return PageClass::kRandom;
}

PageBytes PageContentGenerator::Generate(uint64_t page_number, uint32_t version) const {
  PageBytes page(kPageSize, 0);
  PageClass cls = ClassOf(page_number);
  if (cls == PageClass::kZero) {
    return page;
  }
  Rng rng(vm_seed_ ^ (page_number * 0xD1B54A32D192ED03ull) ^
          (uint64_t{version} << 48));
  switch (cls) {
    case PageClass::kZero:
      break;
    case PageClass::kText: {
      size_t pos = 0;
      while (pos < kPageSize) {
        const char* w = kWords[rng.NextBelow(kNumWords)];
        size_t len = std::strlen(w);
        size_t n = std::min(len, kPageSize - pos);
        std::memcpy(page.data() + pos, w, n);
        pos += n;
        if (pos < kPageSize) {
          page[pos++] = ' ';
        }
      }
      break;
    }
    case PageClass::kCode: {
      // Structured binary: runs of repeated small records with varying
      // fields, like vtables / linked structures — moderately compressible.
      uint64_t base = rng.NextU64();
      for (size_t off = 0; off + 16 <= kPageSize; off += 16) {
        uint64_t rec[2];
        rec[0] = base + (off / 16) * 64;               // pointer-like, regular stride
        rec[1] = rng.NextBelow(256);                   // small varying field
        std::memcpy(page.data() + off, rec, sizeof(rec));
      }
      break;
    }
    case PageClass::kRandom: {
      for (size_t off = 0; off + 8 <= kPageSize; off += 8) {
        uint64_t v = rng.NextU64();
        std::memcpy(page.data() + off, &v, sizeof(v));
      }
      break;
    }
  }
  return page;
}

}  // namespace oasis
