// Dense fixed-size bitmap used for per-page state in VM memory images.

#ifndef OASIS_SRC_MEM_BITMAP_H_
#define OASIS_SRC_MEM_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace oasis {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t bits);

  size_t size() const { return bits_; }

  bool Get(size_t i) const;
  void Set(size_t i);
  void Clear(size_t i);
  void SetRange(size_t first, size_t count);
  void ClearAll();
  void SetAll();

  // Number of set bits.
  size_t Count() const;

  // Calls fn(i) for every set bit, in ascending order.
  void ForEachSet(const std::function<void(size_t)>& fn) const;

  // this |= other (sizes must match).
  void OrWith(const Bitmap& other);
  // this &= ~other (sizes must match).
  void AndNotWith(const Bitmap& other);

  // Index of the first clear bit at or after `from`; size() if none.
  size_t FindFirstClear(size_t from = 0) const;

  bool operator==(const Bitmap& other) const = default;

 private:
  size_t bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace oasis

#endif  // OASIS_SRC_MEM_BITMAP_H_
