// Dense fixed-size bitmap used for per-page state in VM memory images.

#ifndef OASIS_SRC_MEM_BITMAP_H_
#define OASIS_SRC_MEM_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace oasis {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t bits);

  size_t size() const { return bits_; }

  bool Get(size_t i) const;
  void Set(size_t i);
  void Clear(size_t i);
  void SetRange(size_t first, size_t count);
  void ClearAll();
  void SetAll();

  // Number of set bits. O(1) while the memoized count is valid: bit-level
  // mutators (Set/Clear/SetRange/ClearAll/SetAll) maintain it incrementally;
  // word-level ops (OrWith/AndNotWith) invalidate it and the next Count()
  // repopulates with one popcount pass.
  size_t Count() const;

  // Calls fn(i) for every set bit, in ascending order.
  void ForEachSet(const std::function<void(size_t)>& fn) const;

  // this |= other (sizes must match).
  void OrWith(const Bitmap& other);
  // this &= ~other (sizes must match).
  void AndNotWith(const Bitmap& other);

  // Index of the first clear bit at or after `from`; size() if none.
  size_t FindFirstClear(size_t from = 0) const;

  // Equality is over the bits only — the count memo is excluded.
  bool operator==(const Bitmap& other) const {
    return bits_ == other.bits_ && words_ == other.words_;
  }

 private:
  size_t bits_ = 0;
  std::vector<uint64_t> words_;
  mutable size_t cached_count_ = 0;
  mutable bool count_valid_ = true;  // an empty bitmap has a valid count of 0
};

}  // namespace oasis

#endif  // OASIS_SRC_MEM_BITMAP_H_
