// Deterministic synthetic page contents.
//
// The prototype compresses every page with LZO before writing it to the
// memory server (§4.3), so upload volume depends on what pages actually
// contain. We synthesize page contents from a realistic mix of page classes
// (zero pages, text/code-like pages, structured binary, high-entropy data),
// deterministically derived from (vm_seed, page_number) so the "same" page
// always has the same bytes across the simulation.

#ifndef OASIS_SRC_MEM_PAGE_CONTENT_H_
#define OASIS_SRC_MEM_PAGE_CONTENT_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/units.h"

namespace oasis {

enum class PageClass {
  kZero,        // never-written or madvise'd-free pages: all zeros
  kText,        // ASCII-ish text and markup: highly compressible
  kCode,        // machine code / structured binary: moderately compressible
  kRandom,      // encrypted / already-compressed data: incompressible
};

const char* PageClassName(PageClass c);

struct PageClassMix {
  double zero = 0.18;
  double text = 0.34;
  double code = 0.30;
  double random = 0.18;
};

using PageBytes = std::vector<uint8_t>;

class PageContentGenerator {
 public:
  PageContentGenerator(uint64_t vm_seed, const PageClassMix& mix);
  explicit PageContentGenerator(uint64_t vm_seed)
      : PageContentGenerator(vm_seed, PageClassMix{}) {}

  // The class of a page, a pure function of (vm_seed, page_number).
  PageClass ClassOf(uint64_t page_number) const;

  // 4 KiB of deterministic content for the page. `version` distinguishes
  // successive dirtyings of the same page.
  PageBytes Generate(uint64_t page_number, uint32_t version = 0) const;

 private:
  uint64_t vm_seed_;
  PageClassMix mix_;
};

}  // namespace oasis

#endif  // OASIS_SRC_MEM_PAGE_CONTENT_H_
