// Idle working-set sampling.
//
// §5.1: "a partial VM's memory consumption is randomly sampled from the
// distribution collected from [Jettison], which shows that the mean working
// set of idle desktop VMs with 4 GiB RAM was only 165.63 ± 91.38 MiB".
// We model that distribution as a truncated normal with exactly those
// moments, clamped to a sane floor (a partial VM always needs its page
// tables and kernel-resident set) and to the VM's allocation.

#ifndef OASIS_SRC_MEM_WORKING_SET_H_
#define OASIS_SRC_MEM_WORKING_SET_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/common/units.h"

namespace oasis {

struct WorkingSetDistribution {
  double mean_mib = 165.63;
  double stddev_mib = 91.38;
  double floor_mib = 16.0;
  // Ceiling defaults to the VM allocation at sample time.
};

class WorkingSetSampler {
 public:
  WorkingSetSampler(const WorkingSetDistribution& dist, uint64_t seed);
  explicit WorkingSetSampler(uint64_t seed)
      : WorkingSetSampler(WorkingSetDistribution{}, seed) {}

  // One idle working-set size in bytes for a VM with `allocation_bytes` of
  // RAM, rounded up to whole pages.
  uint64_t Sample(uint64_t allocation_bytes);

  const WorkingSetDistribution& distribution() const { return dist_; }

 private:
  WorkingSetDistribution dist_;
  // Underlying (pre-truncation) normal parameters, solved so the
  // floor-truncated distribution reproduces the configured moments.
  double mu_;
  double sigma_;
  Rng rng_;
};

}  // namespace oasis

#endif  // OASIS_SRC_MEM_WORKING_SET_H_
