#include "src/mem/access_generator.h"

#include <algorithm>
#include <cmath>

namespace oasis {

const char* VmTypeName(VmType type) {
  switch (type) {
    case VmType::kDesktop:
      return "desktop";
    case VmType::kWebServer:
      return "web";
    case VmType::kDatabase:
      return "database";
  }
  return "?";
}

IdleAccessProfile IdleAccessProfile::For(VmType type) {
  IdleAccessProfile p;
  switch (type) {
    case VmType::kDesktop:
      // Desktops run many background services; they touch far more memory
      // and request pages often (Fig 1's 188.2 MiB/h).
      p.unique_mib_at_1h = 188.2;
      p.saturation_tau_minutes = 18.0;
      p.burst_gap_mean_seconds = 20.0;
      p.burst_pages_mean = 24.0;
      break;
    case VmType::kWebServer:
      p.unique_mib_at_1h = 37.6;
      p.saturation_tau_minutes = 14.0;
      p.burst_gap_mean_seconds = 33.0;  // calibrated so 5 web + 5 db => 5.8 s
      p.burst_pages_mean = 10.0;
      break;
    case VmType::kDatabase:
      p.unique_mib_at_1h = 30.6;
      p.saturation_tau_minutes = 14.0;
      p.burst_gap_mean_seconds = 234.0;  // the paper's 3.9-minute mean gap
      p.burst_pages_mean = 10.0;
      break;
  }
  return p;
}

IdleAccessGenerator::IdleAccessGenerator(const IdleAccessProfile& profile, uint64_t seed)
    : profile_(profile), rng_(seed) {}

std::vector<SimTime> IdleAccessGenerator::GenerateBurstTimes(SimTime duration) {
  std::vector<SimTime> times;
  // Hyperexponential gaps: short gaps (mean m/3) with weight 0.6, long gaps
  // with whatever mean keeps the overall mean at m — bursty but mean-exact.
  const double m = profile_.burst_gap_mean_seconds;
  const double p_short = 0.6;
  const double mean_short = m / 3.0;
  const double mean_long = (m - p_short * mean_short) / (1.0 - p_short);
  double t = 0.0;
  while (true) {
    double gap = rng_.NextBool(p_short) ? rng_.NextExponential(mean_short)
                                        : rng_.NextExponential(mean_long);
    t += gap;
    if (t >= duration.seconds()) {
      break;
    }
    times.push_back(SimTime::Seconds(t));
  }
  return times;
}

uint64_t IdleAccessGenerator::SampleBurstPages() {
  // Geometric with the configured mean: P(k) = (1-q) q^(k-1), mean 1/(1-q).
  double q = 1.0 - 1.0 / std::max(1.0, profile_.burst_pages_mean);
  uint64_t k = 1;
  while (rng_.NextBool(q)) {
    ++k;
  }
  return k;
}

uint64_t IdleAccessGenerator::CumulativeUniqueBytes(SimTime t) const {
  double tau_s = profile_.saturation_tau_minutes * 60.0;
  double one_hour = 3600.0;
  double norm = 1.0 - std::exp(-one_hour / tau_s);
  double frac = (1.0 - std::exp(-t.seconds() / tau_s)) / norm;
  double mib = profile_.unique_mib_at_1h * frac;
  return MiBToBytes(mib);
}

SleepOpportunity ComputeSleepOpportunity(const std::vector<SimTime>& request_times,
                                         SimTime horizon, SimTime suspend_latency,
                                         SimTime resume_latency, SimTime idle_wait) {
  SleepOpportunity out;
  out.requests = static_cast<int>(request_times.size());
  if (horizon <= SimTime::Zero()) {
    return out;
  }
  SimTime overhead = suspend_latency + resume_latency + idle_wait;
  SimTime asleep = SimTime::Zero();
  SimTime prev = SimTime::Zero();
  double gap_total = 0.0;
  int gap_count = 0;
  auto consider_gap = [&](SimTime from, SimTime to) {
    SimTime gap = to - from;
    if (gap > overhead) {
      asleep += gap - overhead;
      ++out.sleep_episodes;
    }
  };
  for (SimTime t : request_times) {
    if (t > horizon) {
      break;
    }
    consider_gap(prev, t);
    if (gap_count >= 0 && t > prev) {
      gap_total += (t - prev).seconds();
      ++gap_count;
    }
    prev = t;
  }
  consider_gap(prev, horizon);
  out.sleep_fraction = asleep / horizon;
  out.mean_gap_seconds = gap_count > 0 ? gap_total / gap_count : horizon.seconds();
  return out;
}

std::vector<SimTime> MergeRequestStreams(const std::vector<std::vector<SimTime>>& streams) {
  std::vector<SimTime> merged;
  size_t total = 0;
  for (const auto& s : streams) {
    total += s.size();
  }
  merged.reserve(total);
  for (const auto& s : streams) {
    merged.insert(merged.end(), s.begin(), s.end());
  }
  std::sort(merged.begin(), merged.end());
  return merged;
}

}  // namespace oasis
