#include "src/mem/working_set.h"

#include <algorithm>
#include <cmath>

namespace oasis {
namespace {

double NormalPdf(double x) { return std::exp(-0.5 * x * x) / std::sqrt(2.0 * M_PI); }

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

// Moments of a normal(mu, sigma) truncated below at `floor`.
void TruncatedMoments(double mu, double sigma, double floor, double* mean, double* sd) {
  double alpha = (floor - mu) / sigma;
  double z = 1.0 - NormalCdf(alpha);
  if (z < 1e-12) {
    *mean = floor;
    *sd = 0.0;
    return;
  }
  double lambda = NormalPdf(alpha) / z;
  *mean = mu + sigma * lambda;
  double factor = 1.0 + alpha * lambda - lambda * lambda;
  *sd = sigma * std::sqrt(std::max(factor, 1e-9));
}

}  // namespace

WorkingSetSampler::WorkingSetSampler(const WorkingSetDistribution& dist, uint64_t seed)
    : dist_(dist), mu_(dist.mean_mib), sigma_(dist.stddev_mib), rng_(seed) {
  // Fixed-point solve for the underlying normal whose floor-truncation has
  // the configured moments (the paper reports the *observed* 165.63 ± 91.38,
  // which already includes the physical floor).
  for (int iter = 0; iter < 60; ++iter) {
    double m;
    double s;
    TruncatedMoments(mu_, sigma_, dist_.floor_mib, &m, &s);
    if (s <= 0.0) {
      break;
    }
    mu_ += dist_.mean_mib - m;
    sigma_ *= dist_.stddev_mib / s;
    sigma_ = std::clamp(sigma_, 1e-3, 10.0 * dist_.stddev_mib + 1.0);
  }
}

uint64_t WorkingSetSampler::Sample(uint64_t allocation_bytes) {
  double ceiling_mib = ToMiB(allocation_bytes);
  double mib;
  // Rejection-sample the truncated normal; the truncation region holds
  // nearly all the mass, so this terminates almost immediately.
  do {
    mib = rng_.NextGaussian(mu_, sigma_);
  } while (mib < dist_.floor_mib || mib > ceiling_mib);
  uint64_t bytes = MiBToBytes(mib);
  uint64_t pages = (bytes + kPageSize - 1) / kPageSize;
  return pages * kPageSize;
}

}  // namespace oasis
