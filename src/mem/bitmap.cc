#include "src/mem/bitmap.h"

#include <bit>
#include <cassert>

namespace oasis {

namespace {
constexpr size_t kWordBits = 64;
}

Bitmap::Bitmap(size_t bits) : bits_(bits), words_((bits + kWordBits - 1) / kWordBits, 0) {}

bool Bitmap::Get(size_t i) const {
  assert(i < bits_);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void Bitmap::Set(size_t i) {
  assert(i < bits_);
  uint64_t& word = words_[i / kWordBits];
  uint64_t mask = uint64_t{1} << (i % kWordBits);
  if ((word & mask) == 0) {
    word |= mask;
    ++cached_count_;
  }
}

void Bitmap::Clear(size_t i) {
  assert(i < bits_);
  uint64_t& word = words_[i / kWordBits];
  uint64_t mask = uint64_t{1} << (i % kWordBits);
  if ((word & mask) != 0) {
    word &= ~mask;
    --cached_count_;
  }
}

void Bitmap::SetRange(size_t first, size_t count) {
  assert(first + count <= bits_);
  for (size_t i = first; i < first + count; ++i) {
    Set(i);
  }
}

void Bitmap::ClearAll() {
  for (auto& w : words_) {
    w = 0;
  }
  cached_count_ = 0;
  count_valid_ = true;
}

void Bitmap::SetAll() {
  for (auto& w : words_) {
    w = ~uint64_t{0};
  }
  // Mask tail bits beyond size so Count() stays exact.
  size_t tail = bits_ % kWordBits;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << tail) - 1;
  }
  cached_count_ = bits_;
  count_valid_ = true;
}

size_t Bitmap::Count() const {
  if (!count_valid_) {
    size_t n = 0;
    for (uint64_t w : words_) {
      n += static_cast<size_t>(std::popcount(w));
    }
    cached_count_ = n;
    count_valid_ = true;
  }
  return cached_count_;
}

void Bitmap::ForEachSet(const std::function<void(size_t)>& fn) const {
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w != 0) {
      int bit = std::countr_zero(w);
      fn(wi * kWordBits + static_cast<size_t>(bit));
      w &= w - 1;
    }
  }
}

void Bitmap::OrWith(const Bitmap& other) {
  assert(bits_ == other.bits_);
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
  count_valid_ = false;
}

void Bitmap::AndNotWith(const Bitmap& other) {
  assert(bits_ == other.bits_);
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= ~other.words_[i];
  }
  count_valid_ = false;
}

size_t Bitmap::FindFirstClear(size_t from) const {
  for (size_t i = from; i < bits_; ++i) {
    size_t wi = i / kWordBits;
    if (words_[wi] == ~uint64_t{0}) {
      // Skip to the next word boundary.
      i = (wi + 1) * kWordBits - 1;
      continue;
    }
    if (!Get(i)) {
      return i;
    }
  }
  return bits_;
}

}  // namespace oasis
