// Content-addressed page deduplication.
//
// §3 assumption 1 notes that memory sharing techniques — ballooning and
// de-duplication — let hypervisors over-commit memory by about 1.5x. The
// memory server benefits the same way: pages with identical contents (zero
// pages above all) are stored once and reference-counted. This store works
// on real page bytes via a 64-bit FNV-1a content hash.

#ifndef OASIS_SRC_MEM_DEDUP_H_
#define OASIS_SRC_MEM_DEDUP_H_

#include <cstdint>
#include <unordered_map>

#include "src/mem/page_content.h"

namespace oasis {

// FNV-1a over arbitrary bytes; the content address of a page.
uint64_t HashPage(const PageBytes& page);

class DedupPageStore {
 public:
  // Adds one reference to the page's content; stores it if new.
  // Returns the content hash.
  uint64_t Insert(const PageBytes& page);

  // Drops one reference; frees the content when the count hits zero.
  // Returns false if the hash is unknown.
  bool Remove(uint64_t content_hash);

  bool Contains(uint64_t content_hash) const;

  // Distinct page contents currently stored.
  uint64_t unique_pages() const { return static_cast<uint64_t>(refcounts_.size()); }
  // Total references (what a dedup-less store would hold).
  uint64_t total_references() const { return total_refs_; }

  uint64_t StoredBytes() const { return unique_pages() * kPageSize; }
  uint64_t LogicalBytes() const { return total_refs_ * kPageSize; }

  // LogicalBytes / StoredBytes — 1.0 means nothing deduplicated.
  double DedupFactor() const;

 private:
  std::unordered_map<uint64_t, uint64_t> refcounts_;
  uint64_t total_refs_ = 0;
};

}  // namespace oasis

#endif  // OASIS_SRC_MEM_DEDUP_H_
