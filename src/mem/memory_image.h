// Page-granular VM memory state.
//
// A MemoryImage tracks, per 4 KiB page, whether the page was ever written
// ("touched" — untouched pages are zero pages and upload as nothing) and
// whether it was dirtied since the last upload epoch (the prototype's
// differential-upload optimization, §4.3). Pages are touched in a
// deterministic pseudo-random order so that two images primed with the same
// workload agree byte-for-byte.
//
// Compressed sizes come from a CompressedSizeModel measured by running the
// real LZ compressor over sampled synthetic pages of each content class, so
// upload byte counts are grounded in actual compression behaviour rather
// than an assumed constant ratio.

#ifndef OASIS_SRC_MEM_MEMORY_IMAGE_H_
#define OASIS_SRC_MEM_MEMORY_IMAGE_H_

#include <array>
#include <cstdint>

#include "src/common/units.h"
#include "src/mem/bitmap.h"
#include "src/mem/page_content.h"

namespace oasis {

// Mean compressed page size per content class, measured with LzCompress.
class CompressedSizeModel {
 public:
  CompressedSizeModel(uint64_t seed, int samples_per_class);

  // Model measured once over the default page mix; cheap to share.
  static const CompressedSizeModel& Default();

  uint64_t MeanCompressedPageSize(PageClass c) const;

  // Expected compressed bytes for `pages` pages whose classes follow `mix`.
  uint64_t ExpectedCompressedBytes(uint64_t pages, const PageClassMix& mix) const;

 private:
  std::array<uint64_t, 4> mean_size_{};
};

class MemoryImage {
 public:
  MemoryImage(uint64_t total_bytes, uint64_t vm_seed);

  uint64_t total_pages() const { return total_pages_; }
  uint64_t total_bytes() const { return total_pages_ * kPageSize; }
  uint64_t touched_pages() const { return touched_.Count(); }
  uint64_t touched_bytes() const { return touched_pages() * kPageSize; }
  uint64_t dirty_pages() const { return dirty_.Count(); }
  uint64_t dirty_bytes() const { return dirty_pages() * kPageSize; }

  // Writes `count` not-yet-touched pages (clamped to the remaining pool);
  // they become touched and dirty. Returns pages actually touched.
  uint64_t TouchNewPages(uint64_t count);
  uint64_t TouchNewBytes(uint64_t bytes) { return TouchNewPages(bytes / kPageSize) * kPageSize; }

  // Re-writes `count` already-touched pages (marks them dirty). Returns
  // pages actually dirtied (bounded by the touched count).
  uint64_t DirtyTouchedPages(uint64_t count);

  // Snapshot-and-clear of the dirty set: the pages a differential upload
  // must push. Returns the number of pages that were dirty.
  uint64_t BeginUploadEpoch();

  // Compressed size of all touched pages (a full upload).
  uint64_t CompressedTouchedBytes() const;
  // Compressed size of `pages` pages drawn from this image's touched mix.
  uint64_t CompressedBytesFor(uint64_t pages) const;

  const PageContentGenerator& content() const { return content_; }
  const PageClassMix& mix() const { return mix_; }

 private:
  uint64_t Permute(uint64_t i) const;

  uint64_t total_pages_;
  PageClassMix mix_;
  PageContentGenerator content_;
  Bitmap touched_;
  Bitmap dirty_;
  uint64_t touch_cursor_ = 0;  // next index in permutation order to touch
  uint64_t dirty_cursor_ = 0;  // cycles over touched pages for re-dirtying
};

}  // namespace oasis

#endif  // OASIS_SRC_MEM_MEMORY_IMAGE_H_
