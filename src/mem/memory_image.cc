#include "src/mem/memory_image.h"

#include <cassert>
#include <numeric>

#include "src/mem/compression.h"

namespace oasis {

CompressedSizeModel::CompressedSizeModel(uint64_t seed, int samples_per_class) {
  // Sample real pages of each class and average their LzCompress sizes.
  PageClassMix all;
  PageContentGenerator gen(seed, all);
  std::array<uint64_t, 4> totals{};
  std::array<uint64_t, 4> counts{};
  uint64_t page = 0;
  while (true) {
    bool done = true;
    for (size_t c = 0; c < 4; ++c) {
      if (counts[c] < static_cast<uint64_t>(samples_per_class)) {
        done = false;
      }
    }
    if (done) {
      break;
    }
    PageClass cls = gen.ClassOf(page);
    size_t ci = static_cast<size_t>(cls);
    if (counts[ci] < static_cast<uint64_t>(samples_per_class)) {
      PageBytes bytes = gen.Generate(page, /*version=*/static_cast<uint32_t>(counts[ci]));
      totals[ci] += LzCompress(bytes).size();
      ++counts[ci];
    }
    ++page;
  }
  for (size_t c = 0; c < 4; ++c) {
    mean_size_[c] = counts[c] ? totals[c] / counts[c] : kPageSize;
  }
}

const CompressedSizeModel& CompressedSizeModel::Default() {
  static const CompressedSizeModel model(0xC0FFEE, /*samples_per_class=*/64);
  return model;
}

uint64_t CompressedSizeModel::MeanCompressedPageSize(PageClass c) const {
  return mean_size_[static_cast<size_t>(c)];
}

uint64_t CompressedSizeModel::ExpectedCompressedBytes(uint64_t pages,
                                                      const PageClassMix& mix) const {
  double mean = mix.zero * static_cast<double>(mean_size_[0]) +
                mix.text * static_cast<double>(mean_size_[1]) +
                mix.code * static_cast<double>(mean_size_[2]) +
                mix.random * static_cast<double>(mean_size_[3]);
  return static_cast<uint64_t>(static_cast<double>(pages) * mean);
}

MemoryImage::MemoryImage(uint64_t total_bytes, uint64_t vm_seed)
    : total_pages_(total_bytes / kPageSize),
      content_(vm_seed),
      touched_(total_pages_),
      dirty_(total_pages_) {
  assert(total_pages_ > 0);
}

uint64_t MemoryImage::Permute(uint64_t i) const {
  // Affine walk with a stride coprime to total_pages_ gives a deterministic
  // full-cycle visiting order that scatters touches across the image.
  uint64_t stride = (total_pages_ * 2 / 3) | 1;
  while (std::gcd(stride, total_pages_) != 1) {
    stride += 2;
  }
  return (i * stride + 17) % total_pages_;
}

uint64_t MemoryImage::TouchNewPages(uint64_t count) {
  uint64_t touched = 0;
  while (touched < count && touch_cursor_ < total_pages_) {
    uint64_t page = Permute(touch_cursor_++);
    if (!touched_.Get(page)) {
      touched_.Set(page);
      dirty_.Set(page);
      ++touched;
    }
  }
  return touched;
}

uint64_t MemoryImage::DirtyTouchedPages(uint64_t count) {
  uint64_t n_touched = touched_.Count();
  if (n_touched == 0) {
    return 0;
  }
  count = std::min(count, n_touched);
  uint64_t dirtied = 0;
  uint64_t scanned = 0;
  // Walk the permutation from the cursor, dirtying touched pages only.
  while (dirtied < count && scanned < total_pages_) {
    uint64_t page = Permute(dirty_cursor_);
    dirty_cursor_ = (dirty_cursor_ + 1) % total_pages_;
    ++scanned;
    if (touched_.Get(page) && !dirty_.Get(page)) {
      dirty_.Set(page);
      ++dirtied;
    }
  }
  return dirtied;
}

uint64_t MemoryImage::BeginUploadEpoch() {
  uint64_t n = dirty_.Count();
  dirty_.ClearAll();
  return n;
}

uint64_t MemoryImage::CompressedTouchedBytes() const {
  return CompressedBytesFor(touched_pages());
}

uint64_t MemoryImage::CompressedBytesFor(uint64_t pages) const {
  // Touched pages are never zero-class by construction of the workloads, but
  // the generator still classifies some as zero; treat those as minimal.
  return CompressedSizeModel::Default().ExpectedCompressedBytes(pages, mix_);
}

}  // namespace oasis
