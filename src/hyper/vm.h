// Virtual machine state as the Oasis hypervisor extension sees it.
//
// A Vm couples identity/configuration with a page-granular MemoryImage.
// Activity (active/idle) is what the cluster manager's policies react to;
// residency records where the VM currently executes and in what form
// (full at home, full on a consolidation host, or partial).

#ifndef OASIS_SRC_HYPER_VM_H_
#define OASIS_SRC_HYPER_VM_H_

#include <cstdint>
#include <string>

#include "src/common/units.h"
#include "src/mem/access_generator.h"
#include "src/mem/memory_image.h"

namespace oasis {

using VmId = uint32_t;
using HostId = uint32_t;
inline constexpr HostId kNoHost = UINT32_MAX;
inline constexpr VmId kNoVm = UINT32_MAX;

enum class VmActivity { kActive, kIdle };
enum class VmResidency {
  kFullAtHome,           // complete image resident on its home host
  kFullAtConsolidation,  // live-migrated in full to a consolidation host
  kPartial,              // partial VM: executes remotely, pages fault in
};

const char* VmActivityName(VmActivity a);
const char* VmResidencyName(VmResidency r);

struct VmConfig {
  VmId id = 0;
  uint64_t memory_bytes = 4 * kGiB;
  int vcpus = 1;
  VmType type = VmType::kDesktop;
  uint64_t seed = 1;
  // Size of the descriptor (page tables, execution context, device state)
  // pushed to create a partial VM — §4.4.3 measures 16.0±0.5 MiB.
  uint64_t descriptor_bytes = 16 * kMiB;
};

class Vm {
 public:
  explicit Vm(const VmConfig& config);

  const VmConfig& config() const { return config_; }
  VmId id() const { return config_.id; }

  VmActivity activity() const { return activity_; }
  void set_activity(VmActivity a) { activity_ = a; }

  VmResidency residency() const { return residency_; }
  void set_residency(VmResidency r) { residency_ = r; }

  HostId home_host() const { return home_host_; }
  void set_home_host(HostId h) { home_host_ = h; }
  HostId current_host() const { return current_host_; }
  void set_current_host(HostId h) { current_host_ = h; }

  MemoryImage& image() { return image_; }
  const MemoryImage& image() const { return image_; }

  std::string DebugString() const;

 private:
  VmConfig config_;
  VmActivity activity_ = VmActivity::kActive;
  VmResidency residency_ = VmResidency::kFullAtHome;
  HostId home_host_ = kNoHost;
  HostId current_host_ = kNoHost;
  MemoryImage image_;
};

}  // namespace oasis

#endif  // OASIS_SRC_HYPER_VM_H_
