#include "src/hyper/memory_server.h"

#include <algorithm>
#include <string>

#include "src/check/check.h"
#include "src/common/log.h"
#include "src/fault/fault.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace oasis {

MemoryServer::MemoryServer(const MemoryServerConfig& config)
    : config_(config),
      sas_(Link(config.sas_bytes_per_sec, config.sas_latency)),
      meter_(SimTime::Zero(), 0.0) {}

SimTime MemoryServer::Upload(SimTime now, VmId vm, uint64_t compressed_bytes) {
  images_[vm] += compressed_bytes;
  SimTime done = sas_.EnqueueTransfer(now, compressed_bytes);
  OASIS_CLOG(kDebug, "memsrv") << "vm " << vm << " image upload " << compressed_bytes
                               << " B, done at " << done.seconds() << " s";
  if (obs::Tracer* t = obs::Tracer::IfEnabled()) {
    t->Complete("memsrv", "image_upload", now, done,
                obs::TraceArgs{-1, static_cast<int64_t>(vm),
                               static_cast<int64_t>(compressed_bytes)});
  }
  if (obs::MetricsRegistry* m = obs::MetricsRegistry::IfEnabled()) {
    m->counter("memsrv.uploads")->Increment();
    m->counter("memsrv.upload_bytes")->Increment(compressed_bytes);
  }
  return done;
}

StatusOr<SimTime> MemoryServer::ServePageRequest(SimTime now, VmId vm, uint64_t page_number) {
  (void)now;
  if (failed_) {
    return Status::Unavailable("memory server failed");
  }
  auto it = images_.find(vm);
  if (it == images_.end()) {
    return Status::NotFound("no image for vm " + std::to_string(vm));
  }
  if (injector_ && injector_->SampleServeFailure(now, static_cast<int64_t>(vm))) {
    Fail(now);
    return Status::Aborted("memory server died serving vm " + std::to_string(vm));
  }
  ++pages_served_;
  uint64_t chunk = page_number / kPagesPerChunk;
  SimTime latency = config_.network_rtt + config_.decompress_per_page;
  bool hit = CacheLookupInsert(vm, chunk);
  if (hit) {
    ++cache_hits_;
  } else {
    latency += config_.disk_seek;
  }
  if (obs::Tracer* t = obs::Tracer::IfEnabled()) {
    t->Complete("memsrv", "page_serve", now, now + latency,
                obs::TraceArgs{-1, static_cast<int64_t>(vm),
                               static_cast<int64_t>(kPageSize)});
  }
  if (obs::MetricsRegistry* m = obs::MetricsRegistry::IfEnabled()) {
    m->counter("memsrv.pages_served")->Increment();
    if (hit) {
      m->counter("memsrv.cache_hits")->Increment();
    }
    m->histogram("memsrv.page_serve_us")->Record(latency.micros());
  }
  if (check::InvariantChecker* c = check::InvariantChecker::IfEnabled()) {
    // Every cache hit was a served page, and a served page always pays at
    // least the network round trip — a latency below it means the model
    // skipped a hop.
    c->Expect(cache_hits_ <= pages_served_, "memsrv.hits_within_serves", now,
              [&] {
                return std::to_string(cache_hits_) + " cache hits exceed " +
                       std::to_string(pages_served_) + " pages served";
              },
              obs::TraceArgs{-1, static_cast<int64_t>(vm)});
    c->Expect(latency >= config_.network_rtt, "memsrv.latency_includes_rtt", now,
              [&] {
                return "page served in " + std::to_string(latency.micros()) +
                       " us, below the network RTT of " +
                       std::to_string(config_.network_rtt.micros()) + " us";
              },
              obs::TraceArgs{-1, static_cast<int64_t>(vm)});
  }
  return latency;
}

void MemoryServer::Remove(VmId vm) {
  images_.erase(vm);
  cache_lru_.erase(std::remove_if(cache_lru_.begin(), cache_lru_.end(),
                                  [vm](const auto& e) { return e.first == vm; }),
                   cache_lru_.end());
}

bool MemoryServer::HasImage(VmId vm) const { return images_.count(vm) > 0; }

uint64_t MemoryServer::StoredBytes() const {
  uint64_t total = 0;
  for (const auto& [vm, bytes] : images_) {
    total += bytes;
  }
  return total;
}

bool MemoryServer::CacheLookupInsert(VmId vm, uint64_t chunk) {
  auto key = std::make_pair(vm, chunk);
  auto it = std::find(cache_lru_.begin(), cache_lru_.end(), key);
  bool hit = it != cache_lru_.end();
  if (hit) {
    cache_lru_.erase(it);
  }
  cache_lru_.push_back(key);
  while (cache_lru_.size() > config_.chunk_cache_entries) {
    cache_lru_.pop_front();
  }
  return hit;
}

void MemoryServer::PowerOn(SimTime now) {
  if (!powered_) {
    meter_.SetDraw(now, config_.power.TotalWatts());
    powered_ = true;
  }
}

void MemoryServer::PowerOff(SimTime now) {
  if (powered_) {
    meter_.SetDraw(now, 0.0);
    powered_ = false;
  }
}

Joules MemoryServer::EnergyUsed(SimTime now) {
  meter_.Advance(now);
  return meter_.total_joules();
}

void MemoryServer::Fail(SimTime now) {
  if (failed_) {
    return;
  }
  failed_ = true;
  failed_since_ = now;
  OASIS_CLOG(kWarning, "memsrv") << "board failed at " << now.seconds() << " s";
  PowerOff(now);
}

void MemoryServer::Repair(SimTime now) {
  if (!failed_) {
    return;
  }
  failed_ = false;
  sas_.InjectOutage(failed_since_, now - failed_since_);
  if (injector_) {
    injector_->RecordRecovered(FaultClass::kMemoryServerFailure, failed_since_, now);
  }
  OASIS_CLOG(kInfo, "memsrv") << "board replaced at " << now.seconds() << " s";
  PowerOn(now);
}

}  // namespace oasis
