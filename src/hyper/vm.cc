#include "src/hyper/vm.h"

#include <sstream>

namespace oasis {

const char* VmActivityName(VmActivity a) {
  return a == VmActivity::kActive ? "active" : "idle";
}

const char* VmResidencyName(VmResidency r) {
  switch (r) {
    case VmResidency::kFullAtHome:
      return "full@home";
    case VmResidency::kFullAtConsolidation:
      return "full@consolidation";
    case VmResidency::kPartial:
      return "partial";
  }
  return "?";
}

Vm::Vm(const VmConfig& config)
    : config_(config), image_(config.memory_bytes, config.seed) {}

std::string Vm::DebugString() const {
  std::ostringstream os;
  os << "vm" << config_.id << "[" << VmTypeName(config_.type) << ", "
     << VmActivityName(activity_) << ", " << VmResidencyName(residency_) << ", home=h"
     << home_host_ << ", at=h" << current_host_ << ", touched="
     << FormatBytes(image_.touched_bytes()) << "]";
  return os.str();
}

}  // namespace oasis
