#include "src/hyper/memtap.h"

#include <string>

#include "src/check/check.h"
#include "src/common/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace oasis {

Memtap::Memtap(MemoryServer* server, VmId vm, uint64_t total_pages, uint64_t fault_seed)
    : server_(server), vm_(vm), total_pages_(total_pages), rng_(fault_seed) {}

StatusOr<SimTime> Memtap::FaultIn(SimTime now, uint64_t page) {
  StatusOr<SimTime> latency = server_->ServePageRequest(now, vm_, page);
  if (!latency.ok()) {
    return latency.status();
  }
  last_page_ = page;
  ++pages_fetched_;
  OASIS_CLOG(kDebug, "memtap") << "vm " << vm_ << " fault page " << page << " served in "
                               << latency->micros() << " us";
  if (obs::Tracer* t = obs::Tracer::IfEnabled()) {
    t->Complete("memtap", "fault_fetch", now, now + *latency,
                obs::TraceArgs{-1, static_cast<int64_t>(vm_),
                               static_cast<int64_t>(kPageSize)});
  }
  if (obs::MetricsRegistry* m = obs::MetricsRegistry::IfEnabled()) {
    m->counter("memtap.faults")->Increment();
    m->histogram("memtap.fault_us")->Record(latency->micros());
  }
  return latency;
}

StatusOr<SimTime> Memtap::FaultInMany(SimTime now, uint64_t count, double locality) {
  uint64_t fetched_before = pages_fetched_;
  SimTime total = SimTime::Zero();
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t page;
    if (i > 0 && rng_.NextBool(locality)) {
      // Neighbouring page in the same 2 MiB chunk as the previous fault.
      uint64_t chunk_base = (last_page_ / kPagesPerChunk) * kPagesPerChunk;
      page = chunk_base + rng_.NextBelow(kPagesPerChunk);
    } else {
      page = rng_.NextBelow(total_pages_);
    }
    StatusOr<SimTime> latency = FaultIn(now + total, page);
    if (!latency.ok()) {
      return latency.status();
    }
    total += *latency;
  }
  if (check::InvariantChecker* c = check::InvariantChecker::IfEnabled()) {
    // Page conservation across a fault burst: exactly `count` pages were
    // fetched from the memory server, each costing non-negative sim time.
    c->Expect(pages_fetched_ - fetched_before == count, "memtap.fault_burst_conservation",
              now,
              [&] {
                return "burst of " + std::to_string(count) + " faults fetched " +
                       std::to_string(pages_fetched_ - fetched_before) + " pages";
              },
              obs::TraceArgs{-1, static_cast<int64_t>(vm_),
                             static_cast<int64_t>(count * kPageSize)});
    c->Expect(total >= SimTime::Zero(), "memtap.stall_non_negative", now, [&] {
      return "fault burst stall of " + std::to_string(total.micros()) + " us is negative";
    });
  }
  return total;
}

StatusOr<SimTime> SimulatePartialVmAppStart(const AppStartupProfile& app, Memtap& memtap,
                                            SimTime now, double locality) {
  uint64_t pages = (app.startup_working_set + kPageSize - 1) / kPageSize;
  StatusOr<SimTime> stall = memtap.FaultInMany(now, pages, locality);
  if (!stall.ok()) {
    return stall.status();
  }
  // The app's own computation overlaps nothing: partial VM vCPUs block on
  // every fault, so latency is CPU time plus the sum of fault stalls.
  return app.full_vm_startup + *stall;
}

}  // namespace oasis
