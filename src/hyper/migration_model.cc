#include "src/hyper/migration_model.h"

#include <string>

#include "src/check/check.h"

namespace oasis {

FullMigrationPlan MigrationModel::PlanFullMigration(uint64_t memory_bytes) const {
  FullMigrationPlan plan;
  plan.bytes = memory_bytes;
  plan.duration =
      SimTime::Seconds(static_cast<double>(memory_bytes) / config_.live_migration_bytes_per_sec);
  return plan;
}

PartialMigrationPlan MigrationModel::ExecutePartialMigration(Vm& vm, bool differential) const {
  PartialMigrationPlan plan;
  plan.differential = differential;
  if (differential) {
    plan.upload_pages = vm.image().BeginUploadEpoch();
  } else {
    plan.upload_pages = vm.image().touched_pages();
    vm.image().BeginUploadEpoch();  // a full upload also resets the dirty set
  }
  plan.upload_bytes_raw = plan.upload_pages * kPageSize;
  plan.upload_bytes_compressed = vm.image().CompressedBytesFor(plan.upload_pages);
  plan.upload_time = SimTime::Seconds(static_cast<double>(plan.upload_bytes_compressed) /
                                      config_.upload_bytes_per_sec);
  plan.descriptor_bytes = vm.config().descriptor_bytes;
  plan.descriptor_time =
      config_.descriptor_fixed_overhead +
      SimTime::Seconds(static_cast<double>(plan.descriptor_bytes) /
                       config_.descriptor_bytes_per_sec);
  plan.total = plan.upload_time + plan.descriptor_time;
  if (check::InvariantChecker* c = check::InvariantChecker::IfEnabled()) {
    // Page/byte conservation for the partial-migration upload: the pages
    // sent are bounded by what the guest ever touched, compression never
    // inflates, and the epoch reset leaves no dirty page unaccounted.
    c->Expect(plan.upload_pages <= vm.image().touched_pages() ||
                  (!differential && plan.upload_pages == vm.image().touched_pages()),
              "migration.upload_within_touched", SimTime::Zero(),
              [&] {
                return "upload of " + std::to_string(plan.upload_pages) +
                       " pages exceeds touched set of " +
                       std::to_string(vm.image().touched_pages()) + " pages";
              },
              obs::TraceArgs{-1, -1, static_cast<int64_t>(plan.upload_bytes_raw)});
    c->Expect(plan.upload_bytes_compressed <= plan.upload_bytes_raw,
              "migration.compression_never_inflates", SimTime::Zero(), [&] {
                return "compressed " + std::to_string(plan.upload_bytes_compressed) +
                       " B exceeds raw " + std::to_string(plan.upload_bytes_raw) + " B";
              });
    c->Expect(vm.image().dirty_pages() == 0, "migration.upload_clears_dirty",
              SimTime::Zero(), [&] {
                return std::to_string(vm.image().dirty_pages()) +
                       " dirty pages survived the upload epoch reset";
              });
  }
  return plan;
}

ReintegrationPlan MigrationModel::PlanReintegration(uint64_t dirty_bytes) const {
  ReintegrationPlan plan;
  plan.dirty_bytes = dirty_bytes;
  plan.duration = config_.reintegration_fixed_overhead +
                  SimTime::Seconds(static_cast<double>(dirty_bytes) /
                                   config_.reintegration_bytes_per_sec);
  return plan;
}

}  // namespace oasis
