#include "src/hyper/migration_model.h"

namespace oasis {

FullMigrationPlan MigrationModel::PlanFullMigration(uint64_t memory_bytes) const {
  FullMigrationPlan plan;
  plan.bytes = memory_bytes;
  plan.duration =
      SimTime::Seconds(static_cast<double>(memory_bytes) / config_.live_migration_bytes_per_sec);
  return plan;
}

PartialMigrationPlan MigrationModel::ExecutePartialMigration(Vm& vm, bool differential) const {
  PartialMigrationPlan plan;
  plan.differential = differential;
  if (differential) {
    plan.upload_pages = vm.image().BeginUploadEpoch();
  } else {
    plan.upload_pages = vm.image().touched_pages();
    vm.image().BeginUploadEpoch();  // a full upload also resets the dirty set
  }
  plan.upload_bytes_raw = plan.upload_pages * kPageSize;
  plan.upload_bytes_compressed = vm.image().CompressedBytesFor(plan.upload_pages);
  plan.upload_time = SimTime::Seconds(static_cast<double>(plan.upload_bytes_compressed) /
                                      config_.upload_bytes_per_sec);
  plan.descriptor_bytes = vm.config().descriptor_bytes;
  plan.descriptor_time =
      config_.descriptor_fixed_overhead +
      SimTime::Seconds(static_cast<double>(plan.descriptor_bytes) /
                       config_.descriptor_bytes_per_sec);
  plan.total = plan.upload_time + plan.descriptor_time;
  return plan;
}

ReintegrationPlan MigrationModel::PlanReintegration(uint64_t dirty_bytes) const {
  ReintegrationPlan plan;
  plan.dirty_bytes = dirty_bytes;
  plan.duration = config_.reintegration_fixed_overhead +
                  SimTime::Seconds(static_cast<double>(dirty_bytes) /
                                   config_.reintegration_bytes_per_sec);
  return plan;
}

}  // namespace oasis
