// memtap: the per-partial-VM user-level process that services page faults by
// fetching pages from the VM's memory server (§4.2).
//
// Besides per-fault bookkeeping it provides the Fig 6 experiment: simulate
// an application start inside a partial VM, where every missing page of the
// app's start-up working set must fault through the memory server.

#ifndef OASIS_SRC_HYPER_MEMTAP_H_
#define OASIS_SRC_HYPER_MEMTAP_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/hyper/memory_server.h"
#include "src/hyper/workloads.h"

namespace oasis {

class Memtap {
 public:
  // `server` must outlive the memtap. `fault_seed` drives the page-address
  // pattern of simulated faults.
  Memtap(MemoryServer* server, VmId vm, uint64_t total_pages, uint64_t fault_seed);

  // Services one fault at `page`; returns its latency.
  StatusOr<SimTime> FaultIn(SimTime now, uint64_t page);

  // Services `count` faults with a pseudo-random page pattern in which
  // `locality` of consecutive faults land in the previous fault's 2 MiB
  // chunk (warm in the server cache). Returns total stall time.
  StatusOr<SimTime> FaultInMany(SimTime now, uint64_t count, double locality);

  uint64_t pages_fetched() const { return pages_fetched_; }
  uint64_t bytes_fetched() const { return pages_fetched_ * kPageSize; }

 private:
  MemoryServer* server_;
  VmId vm_;
  uint64_t total_pages_;
  Rng rng_;
  uint64_t last_page_ = 0;
  uint64_t pages_fetched_ = 0;
};

// Simulated start of `app` inside a partial VM: the start-up working set
// faults in page by page (with `locality` chunk reuse), interleaved with the
// app's own CPU time. Returns total start-up latency.
StatusOr<SimTime> SimulatePartialVmAppStart(const AppStartupProfile& app, Memtap& memtap,
                                            SimTime now, double locality = 0.12);

}  // namespace oasis

#endif  // OASIS_SRC_HYPER_MEMTAP_H_
