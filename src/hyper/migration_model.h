// Migration mechanics: the byte counts and latencies of full (pre-copy live)
// migration, partial migration (memory upload + descriptor push), and
// reintegration.
//
// The micro-benchmarks (§4.4) compute these from page-granular MemoryImage
// state and the measured channel bandwidths; the cluster simulation (§5.1)
// uses the same model with the paper's conservative fixed parameters.

#ifndef OASIS_SRC_HYPER_MIGRATION_MODEL_H_
#define OASIS_SRC_HYPER_MIGRATION_MODEL_H_

#include <cstdint>

#include "src/common/units.h"
#include "src/hyper/vm.h"
#include "src/net/link.h"

namespace oasis {

struct MigrationTimingConfig {
  // Effective pre-copy throughput. The §4.4 testbed migrates a 4 GiB VM over
  // GigE in 41 s (≈100 MiB/s once dirty rounds are folded in); the cluster
  // simulation assumes 10 GigE and 10 s per 4 GiB.
  double live_migration_bytes_per_sec = 4.0 * 1024 * kMiB / 41.0;

  // Memory upload writes compressed pages to the shared SAS drive.
  double upload_bytes_per_sec = kSasBytesPerSec;

  // Descriptor push: a fixed control-plane cost (create the partial VM,
  // initialize vCPUs, install page tables) plus the descriptor transfer.
  // §4.4.2: ~5.2 s total for a 16 MiB descriptor on GigE.
  SimTime descriptor_fixed_overhead = SimTime::Seconds(5.07);
  double descriptor_bytes_per_sec = kGigEBytesPerSec;

  // Reintegration pushes only dirty pages back and swaps page tables:
  // fixed overhead plus the dirty transfer. §4.4.2: 3.7 s average while
  // moving ~175 MiB.
  SimTime reintegration_fixed_overhead = SimTime::Seconds(2.2);
  double reintegration_bytes_per_sec = kGigEBytesPerSec;
};

struct FullMigrationPlan {
  uint64_t bytes = 0;  // the VM's entire allocation crosses the network
  SimTime duration;
};

struct PartialMigrationPlan {
  uint64_t upload_pages = 0;            // pages written to the memory server
  uint64_t upload_bytes_raw = 0;        // their uncompressed size
  uint64_t upload_bytes_compressed = 0; // what actually hits the SAS drive
  SimTime upload_time;
  uint64_t descriptor_bytes = 0;
  SimTime descriptor_time;
  SimTime total;
  bool differential = false;
};

struct ReintegrationPlan {
  uint64_t dirty_bytes = 0;
  SimTime duration;
};

class MigrationModel {
 public:
  explicit MigrationModel(const MigrationTimingConfig& config) : config_(config) {}
  MigrationModel() : MigrationModel(MigrationTimingConfig{}) {}

  const MigrationTimingConfig& config() const { return config_; }

  // Live migration of the VM's full memory allocation.
  FullMigrationPlan PlanFullMigration(uint64_t memory_bytes) const;

  // Partial migration of `vm`. Uploads the dirty-since-last-epoch set when
  // `differential` (the §4.3 optimization) or every touched page otherwise,
  // then pushes the descriptor. Consumes the image's dirty set.
  PartialMigrationPlan ExecutePartialMigration(Vm& vm, bool differential) const;

  // Latency/bytes of pushing `dirty_bytes` back to the VM's home.
  ReintegrationPlan PlanReintegration(uint64_t dirty_bytes) const;

 private:
  MigrationTimingConfig config_;
};

}  // namespace oasis

#endif  // OASIS_SRC_HYPER_MIGRATION_MODEL_H_
