// Authenticated memory-server page protocol (§4.3 Security).
//
// "Because the memory server exposes the contents of VMs memory to the
//  network, it is important to ensure that only authorized memtap processes
//  are able to access each VM's memory."
//
// The paper prescribes TLS with enterprise-issued certificates. We implement
// the part that matters for the threat model it names (rogue LAN hosts
// requesting pages, and tampering with transfers): per-VM 128-bit keys
// issued by the IT authority, SipHash-2-4 message authentication on every
// request and response, and a server-side nonce window against replay.
// Confidentiality (the TLS record encryption) is out of scope here.

#ifndef OASIS_SRC_HYPER_PAGE_AUTH_H_
#define OASIS_SRC_HYPER_PAGE_AUTH_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/status.h"
#include "src/hyper/vm.h"
#include "src/mem/page_content.h"

namespace oasis {

// 128-bit MAC key.
struct AuthKey {
  uint64_t k0 = 0;
  uint64_t k1 = 0;
  bool operator==(const AuthKey&) const = default;
};

// SipHash-2-4 of `data` under `key`.
uint64_t SipHash24(const AuthKey& key, const uint8_t* data, size_t length);
uint64_t SipHash24(const AuthKey& key, const std::vector<uint8_t>& data);

// The enterprise IT authority (§4.3): issues one key per VM.
class KeyAuthority {
 public:
  explicit KeyAuthority(uint64_t secret_seed) : seed_(secret_seed) {}

  // Deterministic per-VM key derivation from the authority secret.
  AuthKey IssueKey(VmId vm) const;

 private:
  uint64_t seed_;
};

struct AuthenticatedPageRequest {
  VmId vm = 0;
  uint64_t page_number = 0;
  uint64_t nonce = 0;
  uint64_t mac = 0;
};

struct AuthenticatedPageResponse {
  uint64_t page_number = 0;
  PageBytes payload;
  uint64_t mac = 0;
};

// The memtap side: signs requests and verifies response payloads.
class AuthenticatedClient {
 public:
  AuthenticatedClient(VmId vm, const AuthKey& key) : vm_(vm), key_(key) {}

  AuthenticatedPageRequest MakeRequest(uint64_t page_number);

  // Fails with FAILED_PRECONDITION when the payload or page number was
  // tampered with in flight.
  Status VerifyResponse(const AuthenticatedPageResponse& response) const;

 private:
  VmId vm_;
  AuthKey key_;
  uint64_t next_nonce_ = 1;
};

// The memory-server side: verifies request MACs, rejects replays, and signs
// payloads.
class AuthenticatedServer {
 public:
  explicit AuthenticatedServer(const KeyAuthority* authority) : authority_(authority) {}

  // Registers a VM whose pages this server holds.
  void AdmitVm(VmId vm);
  void EvictVm(VmId vm);

  // Validates authenticity + freshness; PERMISSION-style failures come back
  // as FAILED_PRECONDITION (bad MAC / unknown VM) or INVALID_ARGUMENT
  // (replayed or stale nonce).
  Status VerifyRequest(const AuthenticatedPageRequest& request);

  AuthenticatedPageResponse MakeResponse(VmId vm, uint64_t page_number, PageBytes payload);

  uint64_t rejected_requests() const { return rejected_; }

  // Anti-replay window: a request whose nonce trails the highest nonce seen
  // for that VM by >= kReplayWindow is rejected as stale without consulting
  // the seen-set. Bounds server memory per VM to O(window) regardless of
  // how many pages it ever serves.
  static constexpr uint64_t kReplayWindow = 1024;

 private:
  // Nonces seen within (max_seen - kReplayWindow, max_seen]. Entries at or
  // below the window floor are pruned — they are unrepresentable as fresh
  // requests anyway. The prune is amortized: it runs when the set outgrows
  // twice the window, so steady-state inserts stay O(1).
  struct NonceWindow {
    uint64_t max_seen = 0;
    std::unordered_set<uint64_t> seen;
  };
  static void PruneWindow(NonceWindow& window);

  const KeyAuthority* authority_;
  std::unordered_map<VmId, AuthKey> admitted_;
  std::unordered_map<VmId, NonceWindow> seen_nonces_;
  uint64_t rejected_ = 0;
};

}  // namespace oasis

#endif  // OASIS_SRC_HYPER_PAGE_AUTH_H_
