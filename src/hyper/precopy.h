// Pre-copy live migration (§2 background; Clark et al. NSDI'05).
//
// Iteratively copies memory while the VM runs: round 0 moves every page;
// each later round moves the pages dirtied during the previous round. When
// the dirty set is small enough (or the round budget is exhausted) the VM
// suspends, the final dirty set and execution context transfer, and the VM
// resumes at the destination.
//
// This model explains the effective throughputs the rest of the system uses
// as constants: a 4 GiB VM with a desktop-like dirty rate takes ~41 s over
// GigE and ~10 s over 10 GigE.

#ifndef OASIS_SRC_HYPER_PRECOPY_H_
#define OASIS_SRC_HYPER_PRECOPY_H_

#include <cstdint>
#include <vector>

#include "src/common/units.h"
#include "src/net/link.h"

namespace oasis {

struct PrecopyConfig {
  double link_bytes_per_sec = kGigEBytesPerSec;
  // Pages the running VM dirties per second during migration. ~12 MiB/s is a
  // busy interactive desktop.
  double dirty_bytes_per_sec = 12.0 * kMiB;
  // Stop iterating when the remaining dirty set is at most this big…
  uint64_t stop_and_copy_threshold = 8 * kMiB;
  // …or after this many rounds (Xen's default order of magnitude).
  int max_rounds = 30;
  // Fixed control-plane cost: handshakes, device state, resume.
  SimTime control_overhead = SimTime::Seconds(1.0);
};

struct PrecopyRound {
  int round = 0;
  uint64_t bytes_sent = 0;
  SimTime duration;
};

struct PrecopyResult {
  std::vector<PrecopyRound> rounds;
  uint64_t total_bytes = 0;      // everything that crossed the wire
  SimTime total_duration;        // start of round 0 to resume at destination
  SimTime downtime;              // stop-and-copy phase: the VM is paused
  bool converged = false;        // false when the round budget forced the stop
};

// Simulates migrating `memory_bytes` of RAM under `config`. When tracing is
// enabled, the iterative rounds and the stop-and-copy phase are emitted as
// "precopy" spans anchored at `trace_start` on the simulated clock.
PrecopyResult SimulatePrecopyMigration(uint64_t memory_bytes, const PrecopyConfig& config,
                                       SimTime trace_start = SimTime::Zero());

// Effective throughput (memory_bytes / total_duration) for the given setup —
// what a fixed-latency model should assume.
double EffectivePrecopyBytesPerSec(uint64_t memory_bytes, const PrecopyConfig& config);

}  // namespace oasis

#endif  // OASIS_SRC_HYPER_PRECOPY_H_
