#include "src/hyper/precopy.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "src/check/check.h"
#include "src/obs/trace.h"

namespace oasis {

PrecopyResult SimulatePrecopyMigration(uint64_t memory_bytes, const PrecopyConfig& config,
                                       SimTime trace_start) {
  assert(config.link_bytes_per_sec > 0.0);
  PrecopyResult result;
  double seconds_total = 0.0;
  obs::Tracer* tracer = obs::Tracer::IfEnabled();

  // Round 0 ships the whole allocation while the VM keeps dirtying pages.
  uint64_t to_send = memory_bytes;
  for (int round = 0; round < config.max_rounds; ++round) {
    double round_seconds = static_cast<double>(to_send) / config.link_bytes_per_sec;
    result.rounds.push_back(
        {round, to_send, SimTime::Seconds(round_seconds)});
    if (tracer != nullptr) {
      SimTime begin = trace_start + SimTime::Seconds(seconds_total);
      tracer->Complete("precopy", "precopy_round", begin,
                       begin + SimTime::Seconds(round_seconds),
                       obs::TraceArgs{-1, -1, static_cast<int64_t>(to_send)});
    }
    result.total_bytes += to_send;
    seconds_total += round_seconds;

    // Pages dirtied while this round streamed; they form the next round.
    uint64_t dirtied = static_cast<uint64_t>(config.dirty_bytes_per_sec * round_seconds);
    dirtied = std::min(dirtied, memory_bytes);  // can't dirty more than exists
    to_send = dirtied;
    if (to_send <= config.stop_and_copy_threshold) {
      result.converged = true;
      break;
    }
    // If the VM dirties faster than the link drains, iterating cannot help.
    if (config.dirty_bytes_per_sec >= config.link_bytes_per_sec) {
      break;
    }
  }

  // Stop-and-copy: suspend, ship the residue + context, resume.
  double final_seconds = static_cast<double>(to_send) / config.link_bytes_per_sec;
  result.total_bytes += to_send;
  result.downtime = SimTime::Seconds(final_seconds) + config.control_overhead * 0.25;
  seconds_total += final_seconds;
  result.total_duration = SimTime::Seconds(seconds_total) + config.control_overhead;
  if (tracer != nullptr) {
    SimTime stop_begin = trace_start + SimTime::Seconds(seconds_total - final_seconds);
    tracer->Complete("precopy", "stop_and_copy", stop_begin, stop_begin + result.downtime,
                     obs::TraceArgs{-1, -1, static_cast<int64_t>(to_send)});
    tracer->Complete("precopy", "precopy_migration", trace_start,
                     trace_start + result.total_duration,
                     obs::TraceArgs{-1, -1, static_cast<int64_t>(result.total_bytes)});
  }
  if (check::InvariantChecker* c = check::InvariantChecker::IfEnabled()) {
    // Byte conservation: the total on the wire is exactly the per-round
    // volumes plus the stop-and-copy residue, round 0 ships the whole
    // allocation, and a converged migration stopped at the threshold.
    uint64_t rounds_total = 0;
    for (const PrecopyRound& round : result.rounds) {
      rounds_total += round.bytes_sent;
    }
    c->Expect(rounds_total + to_send == result.total_bytes, "precopy.byte_conservation",
              trace_start,
              [&] {
                return "rounds " + std::to_string(rounds_total) + " B + residue " +
                       std::to_string(to_send) + " B != total " +
                       std::to_string(result.total_bytes) + " B";
              },
              obs::TraceArgs{-1, -1, static_cast<int64_t>(result.total_bytes)});
    c->Expect(!result.rounds.empty() && result.rounds.front().bytes_sent == memory_bytes,
              "precopy.first_round_ships_all", trace_start, [&] {
                return "round 0 shipped " +
                       std::to_string(result.rounds.empty()
                                          ? 0
                                          : result.rounds.front().bytes_sent) +
                       " B of a " + std::to_string(memory_bytes) + " B image";
              });
    c->Expect(!result.converged || to_send <= config.stop_and_copy_threshold,
              "precopy.converged_below_threshold", trace_start, [&] {
                return "converged with residue " + std::to_string(to_send) +
                       " B above threshold " +
                       std::to_string(config.stop_and_copy_threshold) + " B";
              });
  }
  return result;
}

double EffectivePrecopyBytesPerSec(uint64_t memory_bytes, const PrecopyConfig& config) {
  PrecopyResult r = SimulatePrecopyMigration(memory_bytes, config);
  return static_cast<double>(memory_bytes) / r.total_duration.seconds();
}

}  // namespace oasis
