// The desktop workloads of Table 2 and the application start-up profiles of
// Figure 6, expressed as memory-touch scripts a Vm can execute.
//
// Workload 1 primes a freshly booted desktop VM with a heavy multitasking
// mix (mail, IM, three office documents, a PDF, five browser tabs);
// Workload 2 adds four more sites, three documents and another PDF. The
// byte amounts are calibrated so the resulting uploads reproduce the §4.4.2
// latencies (first upload ≈ 10.2 s and differential upload ≈ 2.2 s at the
// SAS drive's 128 MiB/s).

#ifndef OASIS_SRC_HYPER_WORKLOADS_H_
#define OASIS_SRC_HYPER_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/hyper/vm.h"

namespace oasis {

struct WorkloadStep {
  std::string application;
  uint64_t new_bytes;    // memory touched for the first time
  uint64_t dirty_bytes;  // already-touched memory re-written
};

struct Workload {
  std::string name;
  std::vector<WorkloadStep> steps;

  uint64_t TotalNewBytes() const;
  uint64_t TotalDirtyBytes() const;
};

// The OS boot + desktop-environment footprint present before any workload.
Workload BaseSystemFootprint();
// Table 2's Workload 1 and Workload 2.
Workload DesktopWorkload1();
Workload DesktopWorkload2();
// Background churn while a VM idles for `duration` (mail polls, IM
// keepalives §4.4.1): a slow trickle of dirtied pages.
Workload IdleBackgroundChurn(SimTime duration);

// Applies a workload to a VM's memory image (touches then dirties).
void ApplyWorkload(Vm& vm, const Workload& workload);

// --- Figure 6: application start-up profiles --------------------------------

struct AppStartupProfile {
  std::string name;
  uint64_t startup_working_set;  // bytes that must be resident to finish starting
  SimTime full_vm_startup;       // start-up latency with all memory local
};

// The applications Fig 6 launches inside full and partial VMs.
std::vector<AppStartupProfile> Figure6Applications();

}  // namespace oasis

#endif  // OASIS_SRC_HYPER_WORKLOADS_H_
