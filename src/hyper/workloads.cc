#include "src/hyper/workloads.h"

namespace oasis {

uint64_t Workload::TotalNewBytes() const {
  uint64_t total = 0;
  for (const auto& s : steps) {
    total += s.new_bytes;
  }
  return total;
}

uint64_t Workload::TotalDirtyBytes() const {
  uint64_t total = 0;
  for (const auto& s : steps) {
    total += s.dirty_bytes;
  }
  return total;
}

Workload BaseSystemFootprint() {
  // Linux + GNOME after boot, before user applications (§4.4.1 setup).
  return Workload{
      "base-system",
      {
          {"kernel+initramfs", 180 * kMiB, 0},
          {"systemd+services", 220 * kMiB, 0},
          {"Xorg+GNOME shell", 520 * kMiB, 0},
          {"caches+buffers", 310 * kMiB, 0},
      },
  };
}

Workload DesktopWorkload1() {
  // Table 2, Workload 1: heavily multitasking user.
  return Workload{
      "workload-1",
      {
          {"Thunderbird mail", 210 * kMiB, 30 * kMiB},
          {"Pidgin IM", 75 * kMiB, 10 * kMiB},
          {"LibreOffice (3 documents)", 320 * kMiB, 60 * kMiB},
          {"Evince (PDF)", 95 * kMiB, 15 * kMiB},
          {"Firefox: CNN", 145 * kMiB, 40 * kMiB},
          {"Firefox: Slashdot", 105 * kMiB, 30 * kMiB},
          {"Firefox: Google Maps", 185 * kMiB, 50 * kMiB},
          {"Firefox: SunSpider", 125 * kMiB, 35 * kMiB},
          {"Firefox: Acid3", 105 * kMiB, 30 * kMiB},
      },
  };
}

Workload DesktopWorkload2() {
  // Table 2, Workload 2: adds four sites, three documents and a PDF.
  return Workload{
      "workload-2",
      {
          {"Firefox: Shopping.HP.com", 60 * kMiB, 15 * kMiB},
          {"Firefox: CDW.com", 55 * kMiB, 15 * kMiB},
          {"Firefox: BBC News", 65 * kMiB, 15 * kMiB},
          {"Firefox: GlobeAndMail", 60 * kMiB, 15 * kMiB},
          {"LibreOffice (3 more documents)", 100 * kMiB, 25 * kMiB},
          {"Evince (another PDF)", 40 * kMiB, 10 * kMiB},
      },
  };
}

Workload IdleBackgroundChurn(SimTime duration) {
  // Mail polls, IM keepalives, cron jobs: ~1.2 MiB/minute of re-dirtied
  // pages plus a small trickle of genuinely new allocations.
  double minutes = duration.minutes();
  return Workload{
      "idle-churn",
      {
          {"background services", static_cast<uint64_t>(0.15 * minutes * kMiB),
           static_cast<uint64_t>(1.2 * minutes * kMiB)},
      },
  };
}

void ApplyWorkload(Vm& vm, const Workload& workload) {
  for (const auto& step : workload.steps) {
    vm.image().TouchNewBytes(step.new_bytes);
    vm.image().DirtyTouchedPages(step.dirty_bytes / kPageSize);
  }
}

std::vector<AppStartupProfile> Figure6Applications() {
  // Start-up working sets and warm full-VM latencies for the VDI desktop
  // applications Fig 6 measures. The partial-VM latency emerges from demand
  // paging these working sets through the memory server.
  return {
      {"xterm", 9 * kMiB, SimTime::Seconds(0.3)},
      {"Pidgin IM", 42 * kMiB, SimTime::Seconds(0.9)},
      {"Evince (PDF)", 55 * kMiB, SimTime::Seconds(1.0)},
      {"Thunderbird", 96 * kMiB, SimTime::Seconds(1.6)},
      {"Firefox (site)", 118 * kMiB, SimTime::Seconds(2.4)},
      {"LibreOffice (document)", 131 * kMiB, SimTime::Seconds(1.5)},
  };
}

}  // namespace oasis
