#include "src/hyper/page_auth.h"

#include <cstring>

namespace oasis {
namespace {

uint64_t Rotl(uint64_t x, int b) { return (x << b) | (x >> (64 - b)); }

void SipRound(uint64_t& v0, uint64_t& v1, uint64_t& v2, uint64_t& v3) {
  v0 += v1;
  v1 = Rotl(v1, 13);
  v1 ^= v0;
  v0 = Rotl(v0, 32);
  v2 += v3;
  v3 = Rotl(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = Rotl(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = Rotl(v1, 17);
  v1 ^= v2;
  v2 = Rotl(v2, 32);
}

// Little-endian struct-to-bytes for MAC'ing small headers.
template <typename T>
void AppendLe(std::vector<uint8_t>& out, T value) {
  for (size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

}  // namespace

uint64_t SipHash24(const AuthKey& key, const uint8_t* data, size_t length) {
  uint64_t v0 = key.k0 ^ 0x736F6D6570736575ull;
  uint64_t v1 = key.k1 ^ 0x646F72616E646F6Dull;
  uint64_t v2 = key.k0 ^ 0x6C7967656E657261ull;
  uint64_t v3 = key.k1 ^ 0x7465646279746573ull;

  const size_t whole_words = length / 8;
  for (size_t w = 0; w < whole_words; ++w) {
    uint64_t m;
    std::memcpy(&m, data + w * 8, 8);
    v3 ^= m;
    SipRound(v0, v1, v2, v3);
    SipRound(v0, v1, v2, v3);
    v0 ^= m;
  }
  // Final word: remaining bytes plus the length in the top byte.
  uint64_t last = static_cast<uint64_t>(length & 0xFF) << 56;
  for (size_t i = 0; i < length % 8; ++i) {
    last |= static_cast<uint64_t>(data[whole_words * 8 + i]) << (8 * i);
  }
  v3 ^= last;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  v0 ^= last;

  v2 ^= 0xFF;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  return v0 ^ v1 ^ v2 ^ v3;
}

uint64_t SipHash24(const AuthKey& key, const std::vector<uint8_t>& data) {
  return SipHash24(key, data.data(), data.size());
}

AuthKey KeyAuthority::IssueKey(VmId vm) const {
  // Derive the per-VM key by MAC'ing the vmid under the authority secret.
  AuthKey root{seed_, ~seed_};
  std::vector<uint8_t> id;
  AppendLe(id, static_cast<uint64_t>(vm));
  uint64_t k0 = SipHash24(root, id);
  AppendLe(id, k0);
  uint64_t k1 = SipHash24(root, id);
  return AuthKey{k0, k1};
}

namespace {

uint64_t RequestMac(const AuthKey& key, VmId vm, uint64_t page, uint64_t nonce) {
  std::vector<uint8_t> bytes;
  AppendLe(bytes, static_cast<uint64_t>(vm));
  AppendLe(bytes, page);
  AppendLe(bytes, nonce);
  return SipHash24(key, bytes);
}

uint64_t ResponseMac(const AuthKey& key, uint64_t page, const PageBytes& payload) {
  std::vector<uint8_t> bytes;
  AppendLe(bytes, page);
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  return SipHash24(key, bytes);
}

}  // namespace

AuthenticatedPageRequest AuthenticatedClient::MakeRequest(uint64_t page_number) {
  AuthenticatedPageRequest request;
  request.vm = vm_;
  request.page_number = page_number;
  request.nonce = next_nonce_++;
  request.mac = RequestMac(key_, vm_, page_number, request.nonce);
  return request;
}

Status AuthenticatedClient::VerifyResponse(const AuthenticatedPageResponse& response) const {
  if (ResponseMac(key_, response.page_number, response.payload) != response.mac) {
    return Status::FailedPrecondition("page payload failed authentication");
  }
  return Status::Ok();
}

void AuthenticatedServer::AdmitVm(VmId vm) { admitted_[vm] = authority_->IssueKey(vm); }

void AuthenticatedServer::EvictVm(VmId vm) {
  admitted_.erase(vm);
  seen_nonces_.erase(vm);
}

Status AuthenticatedServer::VerifyRequest(const AuthenticatedPageRequest& request) {
  auto it = admitted_.find(request.vm);
  if (it == admitted_.end()) {
    ++rejected_;
    return Status::FailedPrecondition("vm not served here: " + std::to_string(request.vm));
  }
  if (RequestMac(it->second, request.vm, request.page_number, request.nonce) != request.mac) {
    ++rejected_;
    return Status::FailedPrecondition("request failed authentication");
  }
  NonceWindow& window = seen_nonces_[request.vm];
  if (window.max_seen >= kReplayWindow &&
      request.nonce <= window.max_seen - kReplayWindow) {
    ++rejected_;
    return Status::InvalidArgument("stale nonce (outside replay window)");
  }
  if (!window.seen.insert(request.nonce).second) {
    ++rejected_;
    return Status::InvalidArgument("replayed nonce");
  }
  if (request.nonce > window.max_seen) {
    window.max_seen = request.nonce;
    if (window.seen.size() > 2 * kReplayWindow) {
      PruneWindow(window);
    }
  }
  return Status::Ok();
}

void AuthenticatedServer::PruneWindow(NonceWindow& window) {
  if (window.max_seen < kReplayWindow) {
    return;
  }
  const uint64_t floor = window.max_seen - kReplayWindow;
  for (auto it = window.seen.begin(); it != window.seen.end();) {
    if (*it <= floor) {
      it = window.seen.erase(it);
    } else {
      ++it;
    }
  }
}

AuthenticatedPageResponse AuthenticatedServer::MakeResponse(VmId vm, uint64_t page_number,
                                                            PageBytes payload) {
  AuthenticatedPageResponse response;
  response.page_number = page_number;
  response.mac = ResponseMac(admitted_.at(vm), page_number, payload);
  response.payload = std::move(payload);
  return response;
}

}  // namespace oasis
