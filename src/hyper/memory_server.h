// The per-host low-power memory page server (§3.3, §4.3).
//
// Before its host sleeps, the host writes each consolidated VM's compressed
// memory image across the shared SAS drive; the low-power board then serves
// page requests over the network by guest pseudo-frame number while the
// host stays in S3. This model captures the pieces performance depends on:
// the serializing SAS upload channel, per-request service latency with a
// small chunk-granular read cache, and the on/off power bookkeeping.

#ifndef OASIS_SRC_HYPER_MEMORY_SERVER_H_
#define OASIS_SRC_HYPER_MEMORY_SERVER_H_

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/hyper/vm.h"
#include "src/net/link.h"
#include "src/power/energy_meter.h"
#include "src/power/power_model.h"

namespace oasis {

class FaultInjector;

struct MemoryServerConfig {
  // The SAS channel the host uses to push images (§4.3: 128 MiB/s).
  double sas_bytes_per_sec = kSasBytesPerSec;
  SimTime sas_latency = SimTime::Millis(1);

  // Page-request service: network round trip + disk read + decompression.
  SimTime network_rtt = SimTime::Micros(200);
  SimTime disk_seek = SimTime::Micros(5300);  // random read on the SAS drive
  SimTime decompress_per_page = SimTime::Micros(45);
  // Recently read 2 MiB chunks stay in the board's RAM; hits skip the seek.
  size_t chunk_cache_entries = 64;

  MemoryServerProfile power = MemoryServerProfile{};
};

class MemoryServer {
 public:
  explicit MemoryServer(const MemoryServerConfig& config);
  MemoryServer() : MemoryServer(MemoryServerConfig{}) {}

  const MemoryServerConfig& config() const { return config_; }

  // Writes `compressed_bytes` of VM `vm` to the shared drive, queueing
  // behind in-flight uploads. Returns the completion time.
  SimTime Upload(SimTime now, VmId vm, uint64_t compressed_bytes);

  // Serves one page request; returns its service latency. The VM's image
  // must have been uploaded.
  StatusOr<SimTime> ServePageRequest(SimTime now, VmId vm, uint64_t page_number);

  // Frees a VM's image (after full migration away or reintegration).
  void Remove(VmId vm);

  bool HasImage(VmId vm) const;
  uint64_t StoredBytes() const;

  // Power bookkeeping: the board+drive draw power only while serving.
  void PowerOn(SimTime now);
  void PowerOff(SimTime now);
  bool powered() const { return powered_; }
  Joules EnergyUsed(SimTime now);

  uint64_t pages_served() const { return pages_served_; }
  uint64_t cache_hits() const { return cache_hits_; }

  // --- fault injection -----------------------------------------------------
  // With an injector attached, a page serve can kill the whole board
  // (FaultClass::kMemoryServerFailure); without one, Fail/Repair still model
  // an externally detected board failure.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  // The board dies: stops serving and drawing power until Repair().
  void Fail(SimTime now);
  // Replaces the board. Images survive (they live on the shared drive), but
  // uploads queued during the outage drain only after the repair.
  void Repair(SimTime now);
  bool failed() const { return failed_; }

 private:
  bool CacheLookupInsert(VmId vm, uint64_t chunk);

  MemoryServerConfig config_;
  SharedChannel sas_;
  std::unordered_map<VmId, uint64_t> images_;  // vm -> stored compressed bytes
  // Tiny LRU of (vm, chunk) pairs.
  std::deque<std::pair<VmId, uint64_t>> cache_lru_;
  bool powered_ = false;
  EnergyMeter meter_;
  uint64_t pages_served_ = 0;
  uint64_t cache_hits_ = 0;
  FaultInjector* injector_ = nullptr;
  bool failed_ = false;
  SimTime failed_since_;
};

}  // namespace oasis

#endif  // OASIS_SRC_HYPER_MEMORY_SERVER_H_
