#include "src/cluster/actuator.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <string>

#include "src/common/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace oasis {
namespace {

// Working-set growth per planning interval in bytes.
uint64_t GrowthPerInterval(const ClusterConfig& config) {
  double hours = config.planning_interval.hours();
  uint64_t bytes = MiBToBytes(config.volumes.ws_growth_mib_per_hour * hours);
  return (bytes / kPageSize) * kPageSize;
}

// One migration leg as a span on the destination host's track, plus the
// per-kind counter. `name` must be a string literal.
void TraceMigration(const char* name, SimTime start, SimTime end, VmId vm, HostId dest,
                    uint64_t bytes) {
  if (obs::Tracer* t = obs::Tracer::IfEnabled()) {
    t->Complete("migration", name, start, end,
                obs::TraceArgs{static_cast<int64_t>(dest), static_cast<int64_t>(vm),
                               static_cast<int64_t>(bytes)});
  }
  if (obs::MetricsRegistry* m = obs::MetricsRegistry::IfEnabled()) {
    m->counter(std::string("cluster.migrations.") + name)->Increment();
    m->histogram("cluster.migration_s")->Record((end - start).seconds());
  }
}

}  // namespace

Actuator::Actuator(const ClusterConfig& config, Simulator& sim, Rng& rng,
                   WorkingSetSampler& ws_sampler, FaultInjector& fault, ClusterState& state,
                   ClusterMetrics& metrics)
    : config_(config),
      sim_(sim),
      rng_(rng),
      ws_sampler_(ws_sampler),
      fault_(fault),
      state_(state),
      metrics_(metrics) {}

void Actuator::SetResidency(VmSlot& vm, VmResidency next) {
  if (vm.residency == next) {
    return;
  }
  if (vm.residency == VmResidency::kPartial) {
    --state_.partials_homed[vm.home];
  }
  vm.residency = next;
  if (next == VmResidency::kPartial) {
    ++state_.partials_homed[vm.home];
  }
  state_.dirty.MarkVm(vm.id);
  state_.dirty.MarkHost(vm.home);
  state_.dirty.MarkHost(vm.location);
}

void Actuator::MarkInFlightChanged(const VmSlot& vm) {
  state_.dirty.MarkVm(vm.id);
  state_.dirty.MarkHost(vm.location);
}

void Actuator::HandleActivation(SimTime now, VmId vm_id, SimTime activation_time) {
  VmSlot& vm = Slot(vm_id);
  if (vm.migration_in_flight && TryAbortPendingMigration(now, vm)) {
    // The queued move was cancelled; fall through with the VM's restored
    // state (full at home for vacate/swap aborts, still partial for drains).
  } else if (vm.migration_in_flight) {
    if (vm.pending_op == VmSlot::PendingOp::kReturnMove) {
      // The VM is already being reintegrated as part of a group return; the
      // agent promotes it to the front of the queue, so the user waits only
      // one reintegration (§5.5), not the whole storm.
      const ClusterTimings& t = config_.timings;
      metrics_.transition_delay_s.Add(
          (now - activation_time + t.reintegration_fixed + t.reintegration_transfer)
              .seconds());
      return;
    }
    vm.activation_pending = true;
    return;
  }
  switch (vm.residency) {
    case VmResidency::kFullAtHome:
    case VmResidency::kFullAtConsolidation:
      // The VM already holds all its resources: zero perceived delay.
      metrics_.transition_delay_s.Add((now - activation_time).seconds());
      return;
    case VmResidency::kPartial:
      break;
  }
  if (config_.policy != ConsolidationPolicy::kOnlyPartial &&
      TryConvertInPlace(now, vm, activation_time)) {
    return;
  }
  if (config_.policy == ConsolidationPolicy::kNewHome &&
      TryNewHome(now, vm, activation_time)) {
    return;
  }
  ++metrics_.capacity_exhaustions;
  ReturnHomeGroup(now, vm.home, vm.id, activation_time);
}

bool Actuator::TryConvertInPlace(SimTime now, VmSlot& vm, SimTime activation_time) {
  ClusterHost& host = HostOf(vm.location);
  uint64_t extra = vm.full_bytes - vm.ws_bytes;
  if (!host.CanFit(extra)) {
    return false;
  }
  // CPU bound (§3 assumption 1): the activation was already counted here.
  if (host.active_vms() > config_.MaxActiveVmsPerHost()) {
    return false;
  }
  host.Reserve(extra);
  // Pre-fetch the remaining footprint from the memory server (§4.4.4: a
  // partial VM that turns active converts to a full VM).
  uint64_t fetched = vm.ws_bytes - vm.ws_unfetched;
  metrics_.traffic.Add(TrafficCategory::kOnDemandPages, vm.full_bytes - fetched);
  SetResidency(vm, VmResidency::kFullAtConsolidation);
  vm.ws_bytes = 0;
  vm.ws_unfetched = 0;
  vm.dirty_bytes = 0;
  // The VM's working set is already resident, so it responds as soon as its
  // vCPUs are rescheduled with full memory commitment; the bulk of the
  // footprint streams in from the memory server in the background.
  const ClusterTimings& t = config_.timings;
  SimTime done = now + t.reintegration_fixed + t.reintegration_transfer;
  TraceMigration("convert_in_place", now, done, vm.id, vm.location, vm.full_bytes - fetched);
  ScheduleMigration(vm, now, done, VmSlot::PendingOp::kOther, vm.location);
  metrics_.transition_delay_s.Add((done - activation_time).seconds());
  RefreshMemoryServer(now, vm.home);
  return true;
}

bool Actuator::TryNewHome(SimTime now, VmSlot& vm, SimTime activation_time) {
  // Any powered consolidation host with room for the full footprint.
  std::vector<HostId> candidates;
  for (const auto& candidate : state_.hosts) {
    if (!candidate->IsConsolidationHost()) {
      continue;
    }
    HostId id = candidate->id();
    if (id != vm.location && candidate->IsPowered() && candidate->CanFit(vm.full_bytes) &&
        candidate->active_vms() < config_.MaxActiveVmsPerHost()) {
      candidates.push_back(id);
    }
  }
  if (candidates.empty()) {
    return false;
  }
  HostId target_id = candidates[rng_.NextBelow(candidates.size())];
  ClusterHost& target = HostOf(target_id);
  ClusterHost& source = HostOf(vm.location);

  target.Reserve(vm.full_bytes);
  source.Release(vm.ws_bytes);
  source.RemoveVm(now, vm.id);
  target.AddVm(now, vm.id);
  AdjustActiveCount(now, vm.location, -1);
  AdjustActiveCount(now, target_id, +1);
  HostId old_location = vm.location;
  vm.location = target_id;
  SetResidency(vm, VmResidency::kFullAtConsolidation);
  vm.ws_bytes = 0;
  vm.ws_unfetched = 0;
  vm.dirty_bytes = 0;

  metrics_.traffic.Add(TrafficCategory::kFullMigration, vm.full_bytes);
  ++metrics_.full_migrations;
  ++metrics_.new_home_moves;

  const ClusterTimings& t = config_.timings;
  SimTime done = now + t.reintegration_fixed + t.reintegration_transfer;
  TraceMigration("full_migration", now, done, vm.id, target_id, vm.full_bytes);
  ScheduleMigration(vm, now, done, VmSlot::PendingOp::kOther, old_location);
  metrics_.transition_delay_s.Add((done - activation_time).seconds());
  RefreshMemoryServer(now, vm.home);

  if (HostOf(old_location).IsConsolidationHost() && !HostOf(old_location).HasVms()) {
    SleepIdleConsolidationHosts(now);
  }
  return true;
}

SimTime Actuator::ReturnHomeGroup(SimTime now, HostId home_id, VmId requester,
                                  SimTime activation_time) {
  ClusterHost& home = HostOf(home_id);
  StatusOr<SimTime> woken = WakeHost(now, home_id);
  SimTime t0 = woken.ok() ? *woken : home.EarliestPoweredTime(now);
  if (!woken.ok()) {
    OASIS_CLOG(kError, "cluster") << "waking home " << home_id
                                  << " failed: " << woken.status().ToString();
  }
  SimTime last_done = t0;

  // The requester reintegrates first; its delay is what the user feels.
  // vms_by_home lists the home's VMs in ascending id order — the same order
  // the original full-table walk visited them.
  std::vector<VmId> partials;
  std::vector<VmId> idle_fulls;
  for (VmId vid : state_.vms_by_home[home_id]) {
    const VmSlot& vm = state_.vms[vid];
    if (vm.migration_in_flight) {
      continue;
    }
    if (vm.residency == VmResidency::kPartial) {
      if (vm.id == requester) {
        partials.insert(partials.begin(), vm.id);
      } else {
        partials.push_back(vm.id);
      }
    } else if (vm.residency == VmResidency::kFullAtConsolidation &&
               vm.activity == VmActivity::kIdle) {
      // §3.2: "Migrating back all full VMs that were originally homed on the
      // awake host creates additional space on the consolidation hosts."
      idle_fulls.push_back(vm.id);
    }
  }
  const ClusterTimings& t = config_.timings;
  for (VmId id : partials) {
    VmSlot& vm = Slot(id);
    ClusterHost& source = HostOf(vm.location);
    source.Release(vm.ws_bytes);
    source.RemoveVm(now, id);
    home.AddVm(now, id);
    if (vm.activity == VmActivity::kActive) {
      AdjustActiveCount(now, vm.location, -1);
      AdjustActiveCount(now, home_id, +1);
    }
    metrics_.traffic.Add(TrafficCategory::kReintegration, vm.dirty_bytes);
    ++metrics_.reintegrations;
    SimTime done =
        home.EnqueueInboundTransfer(t0, t.reintegration_transfer) + t.reintegration_fixed;
    TraceMigration("reintegration", t0, done, id, home_id, vm.dirty_bytes);
    vm.location = home_id;
    SetResidency(vm, VmResidency::kFullAtHome);
    vm.ws_bytes = 0;
    vm.ws_unfetched = 0;
    vm.dirty_bytes = 0;
    ScheduleMigration(vm, t0, done,
                      id == requester ? VmSlot::PendingOp::kOther
                                      : VmSlot::PendingOp::kReturnMove,
                      home_id);
    if (id == requester) {
      metrics_.transition_delay_s.Add((done - activation_time).seconds());
    }
    last_done = std::max(last_done, done);
  }
  for (VmId id : idle_fulls) {
    VmSlot& vm = Slot(id);
    HostId source_id = vm.location;
    ClusterHost& source = HostOf(source_id);
    source.Release(vm.full_bytes);
    source.RemoveVm(now, id);
    home.AddVm(now, id);
    metrics_.traffic.Add(TrafficCategory::kFullMigration, vm.full_bytes);
    ++metrics_.full_migrations;
    SimTime done = source.EnqueueOutboundMigration(t0, t.full_migration);
    TraceMigration("full_migration", done - t.full_migration, done, id, home_id,
                   vm.full_bytes);
    vm.location = home_id;
    SetResidency(vm, VmResidency::kFullAtHome);
    ScheduleMigration(vm, done - t.full_migration, done, VmSlot::PendingOp::kFullReturnMove,
                      source_id);
    last_done = std::max(last_done, done);
  }
  RefreshMemoryServer(now, home_id);
  return last_done;
}

void Actuator::PartialVmUpkeep(SimTime now) {
  const TrafficVolumes& vol = config_.volumes;
  uint64_t growth = GrowthPerInterval(config_);
  double interval_minutes = config_.planning_interval.minutes();
  std::set<HostId> exhausted_homes;
  for (VmSlot& vm : state_.vms) {
    if (vm.residency != VmResidency::kPartial || vm.migration_in_flight) {
      continue;
    }
    // On-demand fetch: geometric drain of the unfetched working set.
    uint64_t fetch = static_cast<uint64_t>(static_cast<double>(vm.ws_unfetched) *
                                           vol.on_demand_fraction_per_interval);
    fetch = std::min(fetch, vol.on_demand_cap_per_interval);
    if (fetch > 0) {
      metrics_.traffic.Add(TrafficCategory::kOnDemandPages, fetch);
      vm.ws_unfetched -= fetch;
    }
    // Dirty-state accumulation (drives reintegration volume).
    uint64_t dirty_step = MiBToBytes(vol.dirty_mib_per_minute * interval_minutes);
    vm.dirty_bytes = std::min(vm.dirty_bytes + dirty_step, vol.dirty_cap_bytes);
    // Working-set growth; an overfull consolidation host forces a return.
    if (growth > 0) {
      ClusterHost& host = HostOf(vm.location);
      if (host.CanFit(growth)) {
        host.Reserve(growth);
        vm.ws_bytes += growth;
      } else {
        exhausted_homes.insert(vm.home);
      }
    }
  }
  for (HostId home : exhausted_homes) {
    ++metrics_.capacity_exhaustions;
    ReturnHomeGroup(now, home, kNoVm, now);
  }
}

void Actuator::FullToPartialSwapGroup(SimTime now, HostId home_id,
                                      const std::vector<VmId>& group) {
  // Idle full VMs parked on consolidation hosts go home and come back as
  // partials, freeing most of their reservation (§3.2 FulltoPartial).
  const ClusterTimings& t = config_.timings;
  ClusterHost& home = HostOf(home_id);
  StatusOr<SimTime> woken = WakeHost(now, home_id);
  SimTime t0 = woken.ok() ? *woken : home.EarliestPoweredTime(now);
  for (VmId id : group) {
    VmSlot& vm = Slot(id);
    ClusterHost& cons = HostOf(vm.location);
    HostId cons_id = vm.location;
    // Leg 1: live-migrate the full VM back home.
    SimTime done1 = cons.EnqueueOutboundMigration(t0, t.full_migration);
    TraceMigration("full_migration", done1 - t.full_migration, done1, id, home_id,
                   vm.full_bytes);
    cons.Release(vm.full_bytes);
    cons.RemoveVm(now, id);
    home.AddVm(now, id);
    vm.location = home_id;
    SetResidency(vm, VmResidency::kFullAtHome);
    metrics_.traffic.Add(TrafficCategory::kFullMigration, vm.full_bytes);
    ++metrics_.full_migrations;
    // Leg 2: partial-migrate back to the same consolidation host.
    uint64_t ws = SampleWorkingSet();
    if (cons.CanFit(ws)) {
      cons.Reserve(ws);
      home.RemoveVm(now, id);
      cons.AddVm(now, id);
      vm.location = cons_id;
      SetResidency(vm, VmResidency::kPartial);
      vm.ws_bytes = ws;
      vm.ws_unfetched = ws;
      vm.dirty_bytes = 0;
      vm.consolidated_since = now;
      RecordPartialMigrationTraffic(now, vm);
      ++metrics_.full_to_partial_swaps;
      SimTime done2 = home.EnqueueOutboundMigration(done1, t.partial_migration);
      TraceMigration("partial_migration", done2 - t.partial_migration, done2, id, cons_id,
                     ws);
      ScheduleMigration(vm, done2 - t.partial_migration, done2,
                        VmSlot::PendingOp::kSwapReturn, home_id);
    } else {
      // No room for even the partial: the VM stays home.
      ScheduleMigration(vm, t0, done1, VmSlot::PendingOp::kOther, cons_id);
    }
  }
  SimTime all_done = home.outbound_busy_until();
  HostId hid = home_id;
  sim_.ScheduleAt(std::max(now, all_done),
                  [this, hid]() { MaybeSleepHomeHost(sim_.now(), hid); });
}

void Actuator::CommitVacatePlan(SimTime now, const VacatePlan& plan) {
  const ClusterTimings& t = config_.timings;
  for (size_t i = 0; i < plan.hosts_to_vacate.size(); ++i) {
    HostId source_id = plan.hosts_to_vacate[i];
    ClusterHost& source = HostOf(source_id);
    for (const VacatePlacement& placement : plan.placements[i]) {
      VmId vm_id = placement.vm;
      HostId dest_id = placement.dest;
      VmSlot& vm = Slot(vm_id);
      ClusterHost& dest = HostOf(dest_id);
      StatusOr<SimTime> woken = WakeHost(now, dest_id);
      SimTime dest_ready = woken.ok() ? *woken : dest.EarliestPoweredTime(now);
      SimTime done;
      if (!placement.as_partial) {
        // Active (or not-yet-trusted idle) VMs move in full via live
        // migration, so they keep their resources and performance.
        done = source.EnqueueOutboundMigration(dest_ready, t.full_migration);
        dest.Reserve(vm.full_bytes);
        SetResidency(vm, VmResidency::kFullAtConsolidation);
        if (vm.activity == VmActivity::kActive) {
          AdjustActiveCount(now, source_id, -1);
          AdjustActiveCount(now, dest_id, +1);
        }
        metrics_.traffic.Add(TrafficCategory::kFullMigration, vm.full_bytes);
        ++metrics_.full_migrations;
        TraceMigration("full_migration", now, done, vm_id, dest_id, vm.full_bytes);
      } else {
        done = source.EnqueueOutboundMigration(dest_ready, t.partial_migration);
        uint64_t ws = placement.bytes;
        dest.Reserve(ws);
        SetResidency(vm, VmResidency::kPartial);
        vm.ws_bytes = ws;
        vm.ws_unfetched = ws;
        vm.dirty_bytes = 0;
        vm.consolidated_since = now;
        RecordPartialMigrationTraffic(now, vm);
        TraceMigration("partial_migration", done - t.partial_migration, done, vm_id, dest_id,
                       ws);
      }
      source.RemoveVm(now, vm_id);
      dest.AddVm(now, vm_id);
      vm.location = dest_id;
      bool partial = vm.residency == VmResidency::kPartial;
      ScheduleMigration(vm, partial ? done - t.partial_migration : now, done,
                        partial ? VmSlot::PendingOp::kVacatePartial
                                : VmSlot::PendingOp::kOther,
                        source_id);
    }
    SimTime all_done = std::max(now, source.outbound_busy_until());
    HostId hid = source_id;
    sim_.ScheduleAt(all_done, [this, hid]() { MaybeSleepHomeHost(sim_.now(), hid); });
  }
}

void Actuator::DrainMove(SimTime now, VmId vm_id, HostId dest_id) {
  const ClusterTimings& t = config_.timings;
  VmSlot& vm = Slot(vm_id);
  HostId source_id = vm.location;
  ClusterHost& source = HostOf(source_id);
  ClusterHost& dest = HostOf(dest_id);
  source.Release(vm.ws_bytes);
  dest.Reserve(vm.ws_bytes);
  source.RemoveVm(now, vm_id);
  dest.AddVm(now, vm_id);
  vm.location = dest_id;
  metrics_.traffic.Add(TrafficCategory::kPartialDescriptor,
                       config_.volumes.descriptor_bytes);
  ++metrics_.partial_migrations;
  SimTime done = source.EnqueueOutboundMigration(now, t.partial_migration);
  if (obs::Tracer* tr = obs::Tracer::IfEnabled()) {
    // Drains ship only the descriptor; the memory image stays on the
    // home's memory server.
    tr->Complete("migration", "descriptor_push", now, now,
                 obs::TraceArgs{static_cast<int64_t>(dest_id),
                                static_cast<int64_t>(vm_id),
                                static_cast<int64_t>(config_.volumes.descriptor_bytes)});
  }
  TraceMigration("partial_migration", done - t.partial_migration, done, vm_id, dest_id,
                 vm.ws_bytes);
  ScheduleMigration(vm, done - t.partial_migration, done, VmSlot::PendingOp::kDrainMove,
                    source_id);
}

bool Actuator::PrewakeHost(SimTime now, HostId host_id) {
  if (static_cast<size_t>(host_id) >= state_.hosts.size() ||
      !HostOf(host_id).IsAsleep()) {
    return false;
  }
  // The full fault-aware wake path (WoL losses, resume hangs) applies to a
  // speculative wake too; the strategy doesn't wait on the powered-at time.
  (void)WakeHost(now, host_id);
  return true;
}

void Actuator::SleepIdleConsolidationHosts(SimTime now) {
  for (const auto& host_ptr : state_.hosts) {
    if (!host_ptr->IsConsolidationHost()) {
      continue;
    }
    ClusterHost& host = *host_ptr;
    if (host.s3_capable() && host.IsPowered() && !host.HasVms() &&
        host.active_vms() == 0 && host.outbound_busy_until() <= now) {
      host.RequestSleep(sim_);
      ++metrics_.host_sleeps;
    }
  }
}

void Actuator::MaybeSleepHomeHost(SimTime now, HostId host_id) {
  ClusterHost& host = HostOf(host_id);
  if (!host.s3_capable() || !host.IsHomeHost() || !host.IsPowered() ||
      host.HasVms() || host.active_vms() != 0 || host.outbound_busy_until() > now) {
    return;
  }
  HostId id = host_id;
  host.RequestSleep(sim_, [this, id](SimTime at) { RefreshMemoryServer(at, id); });
  ++metrics_.host_sleeps;
}

void Actuator::AdjustActiveCount(SimTime now, HostId host, int delta) {
  ClusterHost& h = HostOf(host);
  h.SetActiveVms(now, h.active_vms() + delta);
}

StatusOr<SimTime> Actuator::WakeHost(SimTime now, HostId id) {
  if (static_cast<size_t>(id) >= state_.hosts.size()) {
    return Status::NotFound("no such host: " + std::to_string(id));
  }
  ClusterHost& host = HostOf(id);
  if (!host.IsPowered()) {
    ++metrics_.host_wakes;
  }
  // A fault-delayed WoL retry loop is already running for this host: join it
  // instead of sampling a fresh fault episode for the same wake.
  if (state_.pending_wake_powered_at[id] > now) {
    return state_.pending_wake_powered_at[id];
  }
  HostId hid = id;
  if (fault_.enabled() && host.IsAsleep()) {
    // Faults attach to the WoL actually sent: each lost packet costs one
    // retry timeout, and a wedged resume costs a watchdog power-cycle.
    SimTime t = now;
    int losses = fault_.SampleWolLosses(now, static_cast<int64_t>(id));
    if (losses > 0) {
      SimTime waited = config_.fault.wol_retry_timeout * static_cast<double>(losses);
      fault_.RecordRecovered(FaultClass::kWolLoss, t, t + waited,
                             obs::TraceArgs{static_cast<int64_t>(id), -1, losses});
      t = t + waited;
      if (losses >= config_.fault.max_wol_retries) {
        OASIS_CLOG(kWarning, "cluster")
            << "host " << id << " ignored " << losses
            << " WoL packets; escalating to the management processor";
        if (obs::MetricsRegistry* m = obs::MetricsRegistry::IfEnabled()) {
          m->counter("fault.wol_escalations")->Increment();
        }
      }
    }
    if (fault_.SampleResumeHang(now, static_cast<int64_t>(id))) {
      SimTime watchdog = config_.fault.resume_watchdog;
      fault_.RecordRecovered(FaultClass::kResumeHang, t, t + watchdog,
                             obs::TraceArgs{static_cast<int64_t>(id)});
      t = t + watchdog;
    }
    if (t > now) {
      // The WoL that sticks goes out at t; the host powers one resume later.
      SimTime powered_at = host.EarliestPoweredTime(t);
      state_.pending_wake_powered_at[id] = powered_at;
      sim_.ScheduleAt(t, [this, hid]() {
        HostOf(hid).RequestWake(sim_, [this, hid](SimTime at) {
          state_.pending_wake_powered_at[hid] = SimTime::Zero();
          RefreshMemoryServer(at, hid);
        });
      });
      return powered_at;
    }
  }
  host.RequestWake(sim_, [this, hid](SimTime at) { RefreshMemoryServer(at, hid); });
  return host.EarliestPoweredTime(now);
}

void Actuator::RefreshMemoryServer(SimTime now, HostId home_id) {
  if (HostOf(home_id).IsConsolidationHost()) {
    return;  // consolidation hosts' memory servers are never powered (§5.1)
  }
  ClusterHost& host = HostOf(home_id);
  bool needed = host.IsAsleep() && CountPartialsHomedAt(home_id) > 0;
  host.SetMemoryServerPowered(now, needed);
}

int Actuator::CountPartialsHomedAt(HostId home_id) const {
  // Maintained exactly by SetResidency (a VM's home never changes), so the
  // memory-server refresh on every host sleep is O(1) instead of a VM-table
  // scan; the invariant checker re-derives it from scratch each round.
  return state_.partials_homed[home_id];
}

void Actuator::ScheduleMigration(VmSlot& vm, SimTime start, SimTime done,
                                 VmSlot::PendingOp op, HostId source) {
  vm.migration_in_flight = true;
  vm.migration_start = start;
  vm.pending_op = op;
  vm.migration_source = source;
  MarkInFlightChanged(vm);
  uint32_t epoch = ++vm.op_epoch;
  VmId id = vm.id;
  sim_.ScheduleAt(done, [this, id, epoch]() { FinishMigration(sim_.now(), id, epoch); });
}

bool Actuator::TryAbortPendingMigration(SimTime now, VmSlot& vm) {
  if (now >= vm.migration_start) {
    return false;  // the transfer already started; ride it out
  }
  return RollbackMigration(now, vm);
}

bool Actuator::RollbackMigration(SimTime now, VmSlot& vm) {
  switch (vm.pending_op) {
    case VmSlot::PendingOp::kVacatePartial:
    case VmSlot::PendingOp::kSwapReturn: {
      // The VM has not been suspended yet; it keeps running at home with its
      // full footprint. Undo the partial placement.
      ClusterHost& dest = HostOf(vm.location);
      ClusterHost& home = HostOf(vm.home);
      dest.Release(vm.ws_bytes);
      dest.RemoveVm(now, vm.id);
      home.AddVm(now, vm.id);
      if (vm.activity == VmActivity::kActive) {
        AdjustActiveCount(now, vm.location, -1);
        AdjustActiveCount(now, vm.home, +1);
      }
      vm.location = vm.home;
      SetResidency(vm, VmResidency::kFullAtHome);
      vm.ws_bytes = 0;
      vm.ws_unfetched = 0;
      vm.dirty_bytes = 0;
      break;
    }
    case VmSlot::PendingOp::kDrainMove: {
      // The VM stays on the consolidation host it was being drained from.
      ClusterHost& dest = HostOf(vm.location);
      ClusterHost& source = HostOf(vm.migration_source);
      dest.Release(vm.ws_bytes);
      dest.RemoveVm(now, vm.id);
      source.Reserve(vm.ws_bytes);
      source.AddVm(now, vm.id);
      if (vm.activity == VmActivity::kActive) {
        AdjustActiveCount(now, vm.location, -1);
        AdjustActiveCount(now, vm.migration_source, +1);
      }
      vm.location = vm.migration_source;
      break;
    }
    case VmSlot::PendingOp::kFullReturnMove: {
      // The return-home live migration has not started: the VM simply stays
      // full on its consolidation host, already holding all its resources.
      ClusterHost& cons = HostOf(vm.migration_source);
      ClusterHost& home = HostOf(vm.location);
      if (!cons.CanFit(vm.full_bytes)) {
        return false;  // space was re-used meanwhile; ride the migration out
      }
      cons.Reserve(vm.full_bytes);
      home.RemoveVm(now, vm.id);
      cons.AddVm(now, vm.id);
      if (vm.activity == VmActivity::kActive) {
        AdjustActiveCount(now, vm.location, -1);
        AdjustActiveCount(now, vm.migration_source, +1);
      }
      vm.location = vm.migration_source;
      SetResidency(vm, VmResidency::kFullAtConsolidation);
      break;
    }
    case VmSlot::PendingOp::kReturnMove:
    case VmSlot::PendingOp::kOther:
    case VmSlot::PendingOp::kNone:
      return false;
  }
  ++vm.op_epoch;  // invalidate the scheduled completion event
  vm.migration_in_flight = false;
  vm.pending_op = VmSlot::PendingOp::kNone;
  vm.activation_pending = false;
  MarkInFlightChanged(vm);
  return true;
}

bool Actuator::RollbackFeasible(const VmSlot& vm) const {
  if (!vm.migration_in_flight) {
    return false;
  }
  switch (vm.pending_op) {
    case VmSlot::PendingOp::kVacatePartial:
    case VmSlot::PendingOp::kSwapReturn:
    case VmSlot::PendingOp::kDrainMove:
      return true;
    case VmSlot::PendingOp::kFullReturnMove:
      return state_.hosts[vm.migration_source]->CanFit(vm.full_bytes);
    case VmSlot::PendingOp::kReturnMove:
    case VmSlot::PendingOp::kOther:
    case VmSlot::PendingOp::kNone:
      return false;
  }
  return false;
}

void Actuator::ApplyScheduledFault(SimTime now, const ScheduledFault& event) {
  switch (event.fault) {
    case FaultClass::kHostCrash: {
      HostId victim = kNoHost;
      if (event.target >= 0) {
        HostId id = static_cast<HostId>(event.target);
        if (static_cast<size_t>(id) < state_.hosts.size() &&
            HostOf(id).IsConsolidationHost() && HostOf(id).IsPowered()) {
          victim = id;
        }
      } else {
        // Deterministic pick: the powered consolidation host with the most
        // resident VMs (ties to the lowest id) — the most damaging crash.
        size_t best_vms = 0;
        for (const auto& host_ptr : state_.hosts) {
          if (!host_ptr->IsConsolidationHost() || !host_ptr->IsPowered()) {
            continue;
          }
          if (victim == kNoHost || host_ptr->vms().size() > best_vms) {
            victim = host_ptr->id();
            best_vms = host_ptr->vms().size();
          }
        }
      }
      if (victim == kNoHost) {
        fault_.RecordSkipped(FaultClass::kHostCrash, now, obs::TraceArgs{event.target});
        return;
      }
      CrashHost(now, victim);
      return;
    }
    case FaultClass::kMemoryServerFailure: {
      HostId victim = kNoHost;
      if (event.target >= 0) {
        HostId id = static_cast<HostId>(event.target);
        if (static_cast<size_t>(id) < state_.hosts.size() && HostOf(id).IsHomeHost() &&
            HostOf(id).memory_server_powered()) {
          victim = id;
        }
      } else {
        // Lowest-id home whose memory server is actually up (i.e. the home
        // sleeps and partial VMs depend on it).
        for (const auto& host_ptr : state_.hosts) {
          if (host_ptr->IsHomeHost() && host_ptr->memory_server_powered()) {
            victim = host_ptr->id();
            break;
          }
        }
      }
      if (victim == kNoHost) {
        fault_.RecordSkipped(FaultClass::kMemoryServerFailure, now,
                             obs::TraceArgs{event.target});
        return;
      }
      FailMemoryServer(now, victim);
      return;
    }
    case FaultClass::kMigrationAbort:
      InjectMigrationAbort(now, event.target);
      return;
    case FaultClass::kWolLoss:
    case FaultClass::kRpcDrop:
    case FaultClass::kRpcDelay:
    case FaultClass::kResumeHang:
      // Query-sampled classes cannot be time-scheduled: there is no pending
      // operation at an arbitrary instant to attach them to.
      fault_.RecordSkipped(event.fault, now, obs::TraceArgs{event.target});
      return;
  }
}

void Actuator::CrashHost(SimTime now, HostId id) {
  ClusterHost& host = HostOf(id);
  // Pass 1: feasibility. A resident whose in-flight op cannot roll back
  // (in-place conversion, reintegration pull) makes the host briefly
  // unkillable — the crash is skipped rather than leaving a VM in a state
  // the simulation cannot account for.
  for (VmId vid : host.vms()) {
    const VmSlot& vm = state_.vms[vid];
    if (vm.migration_in_flight && !RollbackFeasible(vm)) {
      fault_.RecordSkipped(FaultClass::kHostCrash, now,
                           obs::TraceArgs{static_cast<int64_t>(id),
                                          static_cast<int64_t>(vid)});
      return;
    }
  }
  fault_.RecordInjected(FaultClass::kHostCrash, now,
                        obs::TraceArgs{static_cast<int64_t>(id), -1,
                                       static_cast<int64_t>(host.vms().size())});
  OASIS_CLOG(kWarning, "cluster") << "host " << id << " crashed with "
                                  << host.vms().size() << " resident VMs";
  // Pass 2: in-flight migrations into the crashed host lose their stream;
  // roll each back to its consistent pre-move state.
  std::vector<VmId> inflight;
  for (VmId vid : host.vms()) {
    if (state_.vms[vid].migration_in_flight) {
      inflight.push_back(vid);
    }
  }
  for (VmId vid : inflight) {
    bool rolled = RollbackMigration(now, Slot(vid));
    assert(rolled && "feasibility pass admitted an un-rollbackable op");
    (void)rolled;
  }
  SimTime recovered_by = now;
  // Pass 3: live-migration streams *sourced* at the crashed host (full
  // returns heading home) lose their source mid-stream; the destination
  // discards the partial copy and the VM restarts from its home disk image.
  for (VmSlot& vm : state_.vms) {
    if (!vm.migration_in_flight || vm.migration_source != id ||
        vm.pending_op != VmSlot::PendingOp::kFullReturnMove) {
      continue;
    }
    SimTime powered = HostOf(vm.home).EarliestPoweredTime(now);
    SimTime done = powered + config_.fault.vm_restart_latency;
    TraceMigration("crash_restart", now, done, vm.id, vm.home, vm.full_bytes);
    ScheduleMigration(vm, now, done, VmSlot::PendingOp::kOther, id);
    ++metrics_.crash_vm_restarts;
    recovered_by = std::max(recovered_by, done);
  }
  // Pass 4: recover residents. Full VMs restart at home from the disk image
  // (a home never releases the reservation for its own VM, so capacity is
  // guaranteed); partials lose their resident pages and reintegrate with
  // their whole home group below.
  std::vector<VmId> residents(host.vms().begin(), host.vms().end());
  std::set<HostId> partial_homes;
  for (VmId vid : residents) {
    VmSlot& vm = Slot(vid);
    if (vm.residency == VmResidency::kPartial) {
      partial_homes.insert(vm.home);
      continue;
    }
    ClusterHost& home = HostOf(vm.home);
    StatusOr<SimTime> woken = WakeHost(now, vm.home);
    SimTime powered = woken.ok() ? *woken : home.EarliestPoweredTime(now);
    host.Release(vm.full_bytes);
    host.RemoveVm(now, vid);
    home.AddVm(now, vid);
    if (vm.activity == VmActivity::kActive) {
      AdjustActiveCount(now, id, -1);
      AdjustActiveCount(now, vm.home, +1);
    }
    vm.location = vm.home;
    SetResidency(vm, VmResidency::kFullAtHome);
    SimTime done = powered + config_.fault.vm_restart_latency;
    TraceMigration("crash_restart", now, done, vid, vm.home, vm.full_bytes);
    ScheduleMigration(vm, now, done, VmSlot::PendingOp::kOther, id);
    if (vm.activity == VmActivity::kActive) {
      metrics_.transition_delay_s.Add((done - now).seconds());
    }
    ++metrics_.crash_vm_restarts;
    recovered_by = std::max(recovered_by, done);
  }
  for (HostId home_id : partial_homes) {
    recovered_by = std::max(recovered_by, ReturnHomeGroup(now, home_id, kNoVm, now));
  }
  assert(!host.HasVms() && "crash recovery left a VM behind");
  host.Crash(now);
  fault_.RecordRecovered(FaultClass::kHostCrash, now, recovered_by,
                         obs::TraceArgs{static_cast<int64_t>(id)});
}

void Actuator::FailMemoryServer(SimTime now, HostId home_id) {
  ClusterHost& home = HostOf(home_id);
  fault_.RecordInjected(FaultClass::kMemoryServerFailure, now,
                        obs::TraceArgs{static_cast<int64_t>(home_id), -1,
                                       CountPartialsHomedAt(home_id)});
  OASIS_CLOG(kWarning, "cluster")
      << "memory server of home " << home_id
      << " failed; emergency-reintegrating its partial VMs";
  home.SetMemoryServerPowered(now, false);
  // Partials homed here that are mid-drain lose their backing store too;
  // roll them back so the group return below covers them.
  for (VmId vid : state_.vms_by_home[home_id]) {
    VmSlot& vm = state_.vms[vid];
    if (vm.migration_in_flight && vm.pending_op == VmSlot::PendingOp::kDrainMove) {
      RollbackMigration(now, vm);
    }
  }
  SimTime done = ReturnHomeGroup(now, home_id, kNoVm, now);
  fault_.RecordRecovered(FaultClass::kMemoryServerFailure, now, done,
                         obs::TraceArgs{static_cast<int64_t>(home_id)});
}

void Actuator::InjectMigrationAbort(SimTime now, int64_t target) {
  for (VmSlot& vm : state_.vms) {
    if (target >= 0 && vm.id != static_cast<VmId>(target)) {
      continue;
    }
    if (!RollbackFeasible(vm)) {
      continue;
    }
    // The stream aborts at a page boundary: the destination discards the
    // half-copied pages and the VM stays (or resumes) at its source with a
    // consistent image.
    SimTime started = std::min(vm.migration_start, now);
    HostId dest = vm.location;
    fault_.RecordInjected(FaultClass::kMigrationAbort, now,
                          obs::TraceArgs{static_cast<int64_t>(dest),
                                         static_cast<int64_t>(vm.id)});
    bool rolled = RollbackMigration(now, vm);
    assert(rolled && "RollbackFeasible admitted an un-rollbackable op");
    (void)rolled;
    fault_.RecordRecovered(FaultClass::kMigrationAbort, started, now,
                           obs::TraceArgs{static_cast<int64_t>(vm.location),
                                          static_cast<int64_t>(vm.id)});
    return;
  }
  fault_.RecordSkipped(FaultClass::kMigrationAbort, now, obs::TraceArgs{-1, target});
}

void Actuator::FinishMigration(SimTime now, VmId vm_id, uint32_t epoch) {
  VmSlot& vm = Slot(vm_id);
  if (vm.op_epoch != epoch) {
    return;  // aborted (or superseded) in the meantime
  }
  vm.migration_in_flight = false;
  vm.pending_op = VmSlot::PendingOp::kNone;
  MarkInFlightChanged(vm);
  if (vm.activation_pending) {
    vm.activation_pending = false;
    if (vm.residency == VmResidency::kPartial) {
      HandleActivation(now, vm_id, vm.activation_time);
    } else {
      metrics_.transition_delay_s.Add((now - vm.activation_time).seconds());
    }
  }
}

void Actuator::AccrueEnergy(SimTime now) {
  metrics_.home_host_energy = 0.0;
  metrics_.consolidation_host_energy = 0.0;
  metrics_.memory_server_energy = 0.0;
  for (const auto& host : state_.hosts) {
    host->AdvanceLedger(now);
    Joules e = host->HostEnergy(now);
    if (host->IsHomeHost()) {
      metrics_.home_host_energy += e;
    } else {
      metrics_.consolidation_host_energy += e;
    }
    metrics_.memory_server_energy += host->MemoryServerEnergy(now);
  }
}

uint64_t Actuator::SampleWorkingSet() {
  return ws_sampler_.Sample(config_.vm_memory_bytes);
}

void Actuator::RecordPartialMigrationTraffic(SimTime now, VmSlot& vm) {
  metrics_.traffic.Add(TrafficCategory::kPartialDescriptor, config_.volumes.descriptor_bytes);
  bool first = !state_.vm_ever_uploaded[vm.id];
  state_.vm_ever_uploaded[vm.id] = true;
  uint64_t upload = first ? config_.volumes.first_upload_bytes
                          : config_.volumes.repeat_upload_bytes;
  metrics_.traffic.Add(TrafficCategory::kMemoryUpload, upload);
  ++metrics_.partial_migrations;
  if (obs::Tracer* t = obs::Tracer::IfEnabled()) {
    t->Complete("migration", "descriptor_push", now, now,
                obs::TraceArgs{static_cast<int64_t>(vm.location),
                               static_cast<int64_t>(vm.id),
                               static_cast<int64_t>(config_.volumes.descriptor_bytes)});
    t->Complete("migration", "memory_upload", now, now,
                obs::TraceArgs{static_cast<int64_t>(vm.home),
                               static_cast<int64_t>(vm.id),
                               static_cast<int64_t>(upload)});
  }
  if (obs::MetricsRegistry* m = obs::MetricsRegistry::IfEnabled()) {
    m->counter("cluster.descriptor_pushes")->Increment();
  }
}

}  // namespace oasis
