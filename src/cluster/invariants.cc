#include "src/cluster/invariants.h"

#include <cmath>
#include <string>
#include <vector>

#include "src/cluster/manager.h"

namespace oasis {
namespace {

// Relative tolerance for floating-point energy comparisons. The integrals
// are exact piecewise sums, but a 24 h run accumulates hundreds of segment
// additions per meter, so allow rounding noise well below anything a real
// accounting bug would produce (a single mis-billed second at idle draw is
// ~1e2 J; the tolerance on a day's energy is ~1e-2 J).
constexpr double kEnergyRelTol = 1e-8;

bool WithinEnvelope(double value, double lo, double hi) {
  double slack = kEnergyRelTol * (1.0 + std::abs(hi));
  return value >= lo - slack && value <= hi + slack;
}

int64_t H(HostId id) { return static_cast<int64_t>(id); }
int64_t V(VmId id) { return static_cast<int64_t>(id); }

}  // namespace

void CheckClusterInvariants(const ClusterManager& manager, SimTime now,
                            check::InvariantChecker& checker) {
  const ClusterConfig& config = manager.config();
  const size_t num_hosts = manager.num_hosts();
  const size_t num_vms = manager.num_vms();

  // --- VM partition: every VM resident on exactly one host ------------------
  std::vector<uint32_t> residencies(num_vms, 0);
  for (size_t h = 0; h < num_hosts; ++h) {
    const ClusterHost& host = manager.GetHost(static_cast<HostId>(h));
    int active_here = 0;
    uint64_t reserved_expected = 0;
    for (VmId vid : host.vms()) {
      checker.Expect(static_cast<size_t>(vid) < num_vms, "cluster.vm_id_in_range", now,
                     [&] { return "host set names unknown VM " + std::to_string(vid); },
                     obs::TraceArgs{H(host.id()), V(vid)});
      if (static_cast<size_t>(vid) >= num_vms) {
        continue;
      }
      ++residencies[vid];
      const VmSlot& vm = manager.GetVm(vid);
      checker.Expect(vm.location == host.id(), "cluster.location_matches_residency", now,
                     [&] {
                       return "VM " + std::to_string(vid) + " resident on host " +
                              std::to_string(host.id()) + " but location says " +
                              std::to_string(vm.location);
                     },
                     obs::TraceArgs{H(host.id()), V(vid)});
      if (vm.activity == VmActivity::kActive) {
        ++active_here;
      }
      // Homes carry their own VMs' full reservation whether or not the VM is
      // away (the §3.2 capacity guarantee), accounted below; a resident
      // foreign VM only appears on consolidation hosts.
      if (host.IsConsolidationHost()) {
        reserved_expected += vm.ReservedBytes();
      }
    }
    if (host.IsHomeHost()) {
      for (size_t v = 0; v < num_vms; ++v) {
        const VmSlot& vm = manager.GetVm(static_cast<VmId>(v));
        if (vm.home == host.id()) {
          reserved_expected += vm.full_bytes;
        }
      }
    }
    checker.Expect(host.active_vms() == active_here, "cluster.active_count_balanced", now,
                   [&] {
                     return "host " + std::to_string(host.id()) + " counts " +
                            std::to_string(host.active_vms()) + " active VMs, walk found " +
                            std::to_string(active_here);
                   },
                   obs::TraceArgs{H(host.id())});
    checker.Expect(host.reserved_bytes() == reserved_expected,
                   "cluster.reservation_conservation", now,
                   [&] {
                     return "host " + std::to_string(host.id()) + " reserves " +
                            std::to_string(host.reserved_bytes()) +
                            " B but resident footprints sum to " +
                            std::to_string(reserved_expected) + " B";
                   },
                   obs::TraceArgs{H(host.id()), -1,
                                  static_cast<int64_t>(host.reserved_bytes())});
    checker.Expect(host.reserved_bytes() <= host.capacity_bytes(),
                   "cluster.capacity_respected", now,
                   [&] {
                     return "host " + std::to_string(host.id()) + " reserves " +
                            std::to_string(host.reserved_bytes()) + " B of " +
                            std::to_string(host.capacity_bytes()) + " B capacity";
                   },
                   obs::TraceArgs{H(host.id())});
    checker.Expect(!host.memory_server_powered() || host.IsHomeHost(),
                   "cluster.memory_server_on_homes_only", now,
                   [&] {
                     return "consolidation host " + std::to_string(host.id()) +
                            " has a powered memory server";
                   },
                   obs::TraceArgs{H(host.id())});

    // --- time and energy accounting ----------------------------------------
    // The per-state ledger must cover the run to the microsecond (integer
    // arithmetic, so exactly)...
    checker.Expect(host.ledger().TotalTimeAt(now) == now, "power.ledger_covers_run", now,
                   [&] {
                     return "host " + std::to_string(host.id()) + " ledger covers " +
                            std::to_string(host.ledger().TotalTimeAt(now).micros()) +
                            " us of " + std::to_string(now.micros()) + " us";
                   },
                   obs::TraceArgs{H(host.id())});
    // ...and the meter's integral must sit inside the envelope the power
    // model allows for that state mix: powered draw is bounded by the idle
    // and 20-VM measurements, the transition and sleep states are fixed
    // draws. The bounds come from the host's *own* resolved profile, so the
    // envelope stays exact on heterogeneous fleets.
    const HostPowerProfile& p = host.power_profile();
    const StateTimeLedger& ledger = host.ledger();
    double powered_s = ledger.TimeInAt(HostPowerState::kPowered, now).seconds();
    double suspend_s = ledger.TimeInAt(HostPowerState::kSuspending, now).seconds();
    double resume_s = ledger.TimeInAt(HostPowerState::kResuming, now).seconds();
    double sleep_s = ledger.TimeInAt(HostPowerState::kSleeping, now).seconds();
    // An S3-incapable host must never have spent a microsecond suspending —
    // the transition itself also reports (power.s3_on_incapable_host), this
    // walk catches any path that skipped Transition's gate.
    checker.Expect(host.s3_capable() || suspend_s == 0.0,
                   "power.s3_on_incapable_host", now,
                   [&] {
                     return "host " + std::to_string(host.id()) +
                            " is s3_capable=false but spent " +
                            std::to_string(suspend_s) + " s in kSuspending";
                   },
                   obs::TraceArgs{H(host.id())});
    double fixed = suspend_s * p.suspend_watts + resume_s * p.resume_watts +
                   sleep_s * p.sleep_watts;
    double lo = fixed + powered_s * p.idle_watts;
    double hi = fixed + powered_s * p.watts_at_20_vms;
    double host_energy = host.HostEnergyAt(now);
    checker.Expect(WithinEnvelope(host_energy, lo, hi), "power.energy_within_model", now,
                   [&] {
                     return "host " + std::to_string(host.id()) + " energy " +
                            std::to_string(host_energy) + " J outside the model envelope [" +
                            std::to_string(lo) + ", " + std::to_string(hi) + "] J";
                   },
                   obs::TraceArgs{H(host.id())});
    double ms_hi = config.memory_server_power.TotalWatts() * now.seconds();
    double ms_energy = host.MemoryServerEnergyAt(now);
    checker.Expect(WithinEnvelope(ms_energy, 0.0, ms_hi), "power.ms_energy_within_model",
                   now,
                   [&] {
                     return "host " + std::to_string(host.id()) + " memory server energy " +
                            std::to_string(ms_energy) + " J outside [0, " +
                            std::to_string(ms_hi) + "] J";
                   },
                   obs::TraceArgs{H(host.id())});
  }

  // --- maintained aggregates ------------------------------------------------
  // partials_homed is updated at every residency transition; re-derive it
  // from the VM table so a missed or double-counted transition is caught
  // within one planning round.
  {
    std::vector<int> derived(num_hosts, 0);
    for (size_t v = 0; v < num_vms; ++v) {
      const VmSlot& vm = manager.GetVm(static_cast<VmId>(v));
      if (vm.residency == VmResidency::kPartial) {
        ++derived[vm.home];
      }
    }
    for (size_t h = 0; h < num_hosts; ++h) {
      HostId hid = static_cast<HostId>(h);
      checker.Expect(manager.PartialsHomedAt(hid) == derived[h],
                     "cluster.partials_homed_counter_exact", now,
                     [&] {
                       return "home " + std::to_string(hid) + " counter says " +
                              std::to_string(manager.PartialsHomedAt(hid)) +
                              " partials homed, walk found " + std::to_string(derived[h]);
                     },
                     obs::TraceArgs{H(hid), -1,
                                    static_cast<int64_t>(manager.PartialsHomedAt(hid))});
    }
  }

  // --- per-VM state machine -------------------------------------------------
  for (size_t v = 0; v < num_vms; ++v) {
    VmId vid = static_cast<VmId>(v);
    const VmSlot& vm = manager.GetVm(vid);
    checker.Expect(residencies[v] == 1, "cluster.vm_on_exactly_one_host", now,
                   [&] {
                     return "VM " + std::to_string(vid) + " resident on " +
                            std::to_string(residencies[v]) + " hosts";
                   },
                   obs::TraceArgs{H(vm.location), V(vid)});
    checker.Expect(static_cast<size_t>(vm.home) < num_hosts &&
                       manager.GetHost(vm.home).IsHomeHost(),
                   "cluster.home_is_home", now,
                   [&] {
                     return "VM " + std::to_string(vid) + " homed at non-home host " +
                            std::to_string(vm.home);
                   },
                   obs::TraceArgs{H(vm.home), V(vid)});
    bool location_legal = true;
    switch (vm.residency) {
      case VmResidency::kFullAtHome:
        location_legal = vm.location == vm.home;
        break;
      case VmResidency::kPartial:
      case VmResidency::kFullAtConsolidation:
        location_legal = static_cast<size_t>(vm.location) < num_hosts &&
                         manager.GetHost(vm.location).IsConsolidationHost();
        break;
    }
    checker.Expect(location_legal, "cluster.residency_location_consistent", now,
                   [&] {
                     return "VM " + std::to_string(vid) + " residency/location mismatch: "
                            "home=" + std::to_string(vm.home) +
                            " location=" + std::to_string(vm.location);
                   },
                   obs::TraceArgs{H(vm.location), V(vid)});
    checker.Expect(vm.ws_unfetched <= vm.ws_bytes, "cluster.ws_fetch_conservation", now,
                   [&] {
                     return "VM " + std::to_string(vid) + " has " +
                            std::to_string(vm.ws_unfetched) + " B unfetched of a " +
                            std::to_string(vm.ws_bytes) + " B working set";
                   },
                   obs::TraceArgs{H(vm.location), V(vid),
                                  static_cast<int64_t>(vm.ws_unfetched)});
    checker.Expect(vm.residency == VmResidency::kPartial ||
                       (vm.ws_bytes == 0 && vm.ws_unfetched == 0 && vm.dirty_bytes == 0),
                   "cluster.full_vm_carries_no_partial_state", now,
                   [&] {
                     return "full VM " + std::to_string(vid) + " still carries ws=" +
                            std::to_string(vm.ws_bytes) + " B unfetched=" +
                            std::to_string(vm.ws_unfetched) + " B dirty=" +
                            std::to_string(vm.dirty_bytes) + " B";
                   },
                   obs::TraceArgs{H(vm.location), V(vid)});
    checker.Expect(vm.dirty_bytes <= config.volumes.dirty_cap_bytes,
                   "cluster.dirty_within_cap", now,
                   [&] {
                     return "VM " + std::to_string(vid) + " dirtied " +
                            std::to_string(vm.dirty_bytes) + " B past the cap of " +
                            std::to_string(config.volumes.dirty_cap_bytes) + " B";
                   },
                   obs::TraceArgs{H(vm.location), V(vid),
                                  static_cast<int64_t>(vm.dirty_bytes)});
    checker.Expect(vm.migration_in_flight == (vm.pending_op != VmSlot::PendingOp::kNone),
                   "cluster.migration_bookkeeping_paired", now,
                   [&] {
                     return "VM " + std::to_string(vid) + " migration_in_flight=" +
                            (vm.migration_in_flight ? "true" : "false") +
                            " disagrees with pending_op";
                   },
                   obs::TraceArgs{H(vm.location), V(vid)});
  }
}

}  // namespace oasis
