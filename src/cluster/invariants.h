// The cluster-wide invariant walk.
//
// CheckClusterInvariants takes a read-only snapshot of a ClusterManager mid-
// run and asserts the conservation laws the paper's evaluation rests on:
// every VM resident on exactly one host, reservations balancing the resident
// footprints, working-set/dirty byte accounting within its caps, power-state
// ledgers covering the full simulated time to the microsecond, and each
// host's energy integral inside the envelope its power profile allows. The
// manager calls it once per planning interval and once at end of run when a
// check::InvariantChecker is installed; the walk itself is const and
// allocation-light, so enabling it never changes simulation results.

#ifndef OASIS_SRC_CLUSTER_INVARIANTS_H_
#define OASIS_SRC_CLUSTER_INVARIANTS_H_

#include "src/check/check.h"
#include "src/common/units.h"

namespace oasis {

class ClusterManager;

void CheckClusterInvariants(const ClusterManager& manager, SimTime now,
                            check::InvariantChecker& checker);

}  // namespace oasis

#endif  // OASIS_SRC_CLUSTER_INVARIANTS_H_
