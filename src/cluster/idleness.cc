#include "src/cluster/idleness.h"

namespace oasis {

DirtyRateIdlenessDetector::DirtyRateIdlenessDetector(const IdlenessDetectorConfig& config,
                                                     VmActivity initial)
    : config_(config), activity_(initial) {}

VmActivity DirtyRateIdlenessDetector::Observe(uint64_t dirty_bytes, SimTime interval_length) {
  double minutes = interval_length.minutes();
  double rate = minutes > 0.0 ? ToMiB(dirty_bytes) / minutes : 0.0;
  if (rate < config_.idle_threshold_mib_per_min) {
    ++below_streak_;
    above_streak_ = 0;
    if (activity_ == VmActivity::kActive && below_streak_ >= config_.idle_intervals) {
      activity_ = VmActivity::kIdle;
      ++transitions_;
    }
  } else {
    ++above_streak_;
    below_streak_ = 0;
    if (activity_ == VmActivity::kIdle && above_streak_ >= config_.active_intervals) {
      activity_ = VmActivity::kActive;
      ++transitions_;
    }
  }
  return activity_;
}

}  // namespace oasis
