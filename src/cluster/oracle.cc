#include "src/cluster/oracle.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <tuple>
#include <vector>

#include "src/common/rng.h"
#include "src/mem/working_set.h"

namespace oasis {
namespace {

constexpr double kIntervalSeconds = static_cast<double>(kTraceIntervalSeconds);

// The day's activity and cost constants, precomputed once per Solve so the
// annealer's inner loop is pure arithmetic.
//
// Heterogeneous fleets: every per-home rate lives in a per-profile-class
// table (class 0 is the config.host_power template, class k >= 1 the k-th
// FleetMix segment). On the homogeneous default there is exactly one class
// holding the same values the old scalar fields held, and every fold below
// visits it alone — so the uniform digests pinned in the goldens are
// reproduced bit for bit. The consolidation tier keeps scalar rates: hosts
// there are interchangeable in this model, so on a mixed fleet they are
// priced *optimistically* (cheapest generation's idle/per-VM/sleep draw,
// largest capacity) — that keeps both the relaxation and the annealed
// schedule value lower bounds of their real-fleet counterparts.
struct DayModel {
  int num_homes;
  int num_cons;
  int vms_per_home;
  int intervals;
  uint64_t cons_capacity;  // effective bytes per consolidation host
  int active_slots;        // MaxActiveVmsPerHost
  double ms_w;
  double cons_idle_w;
  double per_vm_w;
  double cons_sleep_w;
  double partial_mig_s;
  double full_mig_s;

  // Per profile class (size num_classes).
  int num_classes = 1;
  std::vector<int> homes_in_class;
  std::vector<double> class_loaded_w;  // powered home draw (saturated rate)
  std::vector<double> class_sleep_w;
  std::vector<double> class_suspend_j;  // one S3 entry transition
  std::vector<double> class_resume_j;   // one S3 exit transition
  std::vector<uint8_t> class_sleepable;
  std::vector<int> home_class;  // per home

  // Per (home, interval), flattened h * intervals + t.
  std::vector<int> active_count;
  std::vector<uint64_t> parked_bytes;  // bytes the home parks if asleep then
  std::vector<uint8_t> parks_idle;     // parks at least one idle VM (ms on)

  size_t At(int h, int t) const {
    return static_cast<size_t>(h) * static_cast<size_t>(intervals) +
           static_cast<size_t>(t);
  }
  bool Sleepable(int h) const {
    return class_sleepable[static_cast<size_t>(home_class[static_cast<size_t>(h)])] != 0;
  }
};

DayModel BuildModel(const ClusterConfig& config, const TraceSet& trace,
                    const std::vector<uint64_t>& ws) {
  DayModel m;
  m.num_homes = config.num_home_hosts;
  m.num_cons = config.num_consolidation_hosts;
  m.vms_per_home = config.vms_per_home;
  m.intervals = kIntervalsPerDay;
  m.active_slots = config.MaxActiveVmsPerHost();
  m.ms_w = config.memory_server_power.TotalWatts();
  m.partial_mig_s = config.timings.partial_migration.seconds();
  m.full_mig_s = config.timings.full_migration.seconds();

  // Per-class home rates.
  m.num_classes = config.NumProfileClasses();
  m.homes_in_class.assign(static_cast<size_t>(m.num_classes), 0);
  m.home_class.resize(static_cast<size_t>(m.num_homes));
  for (int h = 0; h < m.num_homes; ++h) {
    int cls = config.ProfileClassOf(static_cast<HostId>(h));
    m.home_class[static_cast<size_t>(h)] = cls;
    ++m.homes_in_class[static_cast<size_t>(cls)];
  }
  for (int cls = 0; cls < m.num_classes; ++cls) {
    const HostProfile profile = config.ResolvedProfile(cls);
    const HostPowerProfile& p = profile.power;
    m.class_loaded_w.push_back(p.Draw(HostPowerState::kPowered, config.vms_per_home));
    m.class_sleep_w.push_back(p.sleep_watts);
    m.class_suspend_j.push_back(p.suspend_latency.seconds() * p.suspend_watts);
    m.class_resume_j.push_back(p.resume_latency.seconds() * p.resume_watts);
    m.class_sleepable.push_back(profile.s3_capable ? 1 : 0);
  }

  // Consolidation-tier scalars: optimistic over the classes that actually
  // cover consolidation-host ids (see the struct comment). A uniform fleet
  // visits class 0 alone, reproducing the legacy constants exactly.
  double cons_idle = 0.0;
  double cons_per_vm = 0.0;
  double cons_sleep = 0.0;
  double cons_scale = 1.0;
  bool first_cons_class = true;
  std::vector<uint8_t> class_has_cons(static_cast<size_t>(m.num_classes), 0);
  for (int c = 0; c < m.num_cons; ++c) {
    class_has_cons[static_cast<size_t>(
        config.ProfileClassOf(static_cast<HostId>(m.num_homes + c)))] = 1;
  }
  for (int cls = 0; cls < m.num_classes; ++cls) {
    if (class_has_cons[static_cast<size_t>(cls)] == 0) {
      continue;
    }
    const HostProfile profile = config.ResolvedProfile(cls);
    const HostPowerProfile& p = profile.power;
    if (first_cons_class) {
      cons_idle = p.idle_watts;
      cons_per_vm = p.PerVmWatts();
      cons_sleep = p.sleep_watts;
      cons_scale = profile.capacity_scale;
      first_cons_class = false;
    } else {
      cons_idle = std::min(cons_idle, p.idle_watts);
      cons_per_vm = std::min(cons_per_vm, p.PerVmWatts());
      cons_sleep = std::min(cons_sleep, p.sleep_watts);
      cons_scale = std::max(cons_scale, profile.capacity_scale);
    }
  }
  if (first_cons_class) {
    // No consolidation hosts at all: keep the class-0 template rates so the
    // (never-exercised) cons terms stay defined.
    cons_idle = config.host_power.idle_watts;
    cons_per_vm = config.host_power.PerVmWatts();
    cons_sleep = config.host_power.sleep_watts;
  }
  m.cons_idle_w = cons_idle;
  m.per_vm_w = cons_per_vm;
  m.cons_sleep_w = cons_sleep;
  m.cons_capacity = static_cast<uint64_t>(
      static_cast<double>(config.host_memory_bytes) * config.memory_overcommit *
      cons_scale);

  size_t cells = static_cast<size_t>(m.num_homes) * static_cast<size_t>(m.intervals);
  m.active_count.assign(cells, 0);
  m.parked_bytes.assign(cells, 0);
  m.parks_idle.assign(cells, 0);
  for (int h = 0; h < m.num_homes; ++h) {
    for (int k = 0; k < m.vms_per_home; ++k) {
      size_t vm_id = static_cast<size_t>(h) * static_cast<size_t>(m.vms_per_home) +
                     static_cast<size_t>(k);
      const UserDay& day = trace[vm_id % trace.size()];
      for (int t = 0; t < m.intervals; ++t) {
        size_t at = m.At(h, t);
        if (day.IsActive(t)) {
          ++m.active_count[at];
          m.parked_bytes[at] += config.vm_memory_bytes;
        } else {
          m.parked_bytes[at] += ws[vm_id];
          m.parks_idle[at] = 1;
        }
      }
    }
  }
  return m;
}

// Cluster draw at one interval given the sleeping-home aggregates
// (`sleeping_by_class` points at m.num_classes per-class counts). Sets
// *feasible to whether the parked load fits the consolidation tier.
double PowerAt(const DayModel& m, const int* sleeping_by_class, int parked_active,
               int parked_idle, uint64_t parked_bytes, int ms_on, bool* feasible) {
  uint64_t by_bytes =
      parked_bytes == 0 ? 0 : (parked_bytes + m.cons_capacity - 1) / m.cons_capacity;
  int by_cpu = parked_active == 0
                   ? 0
                   : (parked_active + m.active_slots - 1) / m.active_slots;
  int cons = static_cast<int>(std::max<uint64_t>(by_bytes, static_cast<uint64_t>(by_cpu)));
  if (feasible != nullptr) {
    *feasible = cons <= m.num_cons;
  }
  cons = std::min(cons, m.num_cons);
  double residents = static_cast<double>(parked_active + parked_idle);
  // Per-class home draw: awake homes at their own loaded rate, sleeping
  // ones at their own S3 rate. One class on a uniform fleet, so the fold
  // is the legacy two-term expression bit for bit.
  double home_w = 0.0;
  for (int cls = 0; cls < m.num_classes; ++cls) {
    size_t c = static_cast<size_t>(cls);
    int slp = sleeping_by_class[cls];
    if (m.homes_in_class[c] == 0 && slp == 0) {
      continue;
    }
    home_w += static_cast<double>(m.homes_in_class[c] - slp) * m.class_loaded_w[c] +
              static_cast<double>(slp) * m.class_sleep_w[c];
  }
  return home_w + static_cast<double>(ms_on) * m.ms_w +
         static_cast<double>(cons) * m.cons_idle_w +
         m.per_vm_w * std::min(residents, 20.0 * cons) +
         static_cast<double>(m.num_cons - cons) * m.cons_sleep_w;
}

// Whole-day schedule state with incrementally maintained per-interval
// aggregates and energy terms.
struct Schedule {
  const DayModel* m;
  // rows[h][t] = 1 while home h sleeps.
  std::vector<std::vector<uint8_t>> rows;
  // Per t: how many homes of each profile class sleep (flattened
  // t * num_classes + cls). Integer per-class counts keep every
  // incremental move exactly reversible, mixed fleet or not.
  std::vector<int> sleeping_by_class;
  std::vector<int> parked_active;  // per t
  std::vector<int> parked_idle;    // per t
  std::vector<uint64_t> parked_bytes;
  std::vector<int> ms_on;
  std::vector<double> power;  // per t, watts
  std::vector<double> trans;  // per home, joules
  double power_sum = 0.0;     // watts summed over intervals
  double trans_sum = 0.0;

  explicit Schedule(const DayModel& model)
      : m(&model),
        rows(static_cast<size_t>(model.num_homes),
             std::vector<uint8_t>(static_cast<size_t>(model.intervals), 0)),
        sleeping_by_class(static_cast<size_t>(model.intervals) *
                              static_cast<size_t>(model.num_classes),
                          0),
        parked_active(static_cast<size_t>(model.intervals), 0),
        parked_idle(static_cast<size_t>(model.intervals), 0),
        parked_bytes(static_cast<size_t>(model.intervals), 0),
        ms_on(static_cast<size_t>(model.intervals), 0),
        power(static_cast<size_t>(model.intervals), 0.0),
        trans(static_cast<size_t>(model.num_homes), 0.0) {}

  const int* SleepingAt(int t) const {
    return &sleeping_by_class[static_cast<size_t>(t) *
                              static_cast<size_t>(m->num_classes)];
  }

  void AddHomeAt(int h, int t, int sign) {
    size_t at = m->At(h, t);
    size_t ti = static_cast<size_t>(t);
    sleeping_by_class[ti * static_cast<size_t>(m->num_classes) +
                      static_cast<size_t>(m->home_class[static_cast<size_t>(h)])] += sign;
    parked_active[ti] += sign * m->active_count[at];
    parked_idle[ti] += sign * (m->vms_per_home - m->active_count[at]);
    if (sign > 0) {
      parked_bytes[ti] += m->parked_bytes[at];
    } else {
      parked_bytes[ti] -= m->parked_bytes[at];
    }
    ms_on[ti] += sign * static_cast<int>(m->parks_idle[at]);
  }

  // Entry/exit costs of every sleep episode of home h: migration-out at
  // loaded power (serialized on the source NIC, capped at one interval),
  // the S3 suspend, and — when the episode ends within the day — the S3
  // resume.
  double HomeTransitionCost(int h) const {
    const std::vector<uint8_t>& row = rows[static_cast<size_t>(h)];
    double cost = 0.0;
    int t = 0;
    while (t < m->intervals) {
      if (row[static_cast<size_t>(t)] == 0) {
        ++t;
        continue;
      }
      int entry = t;
      while (t < m->intervals && row[static_cast<size_t>(t)] != 0) {
        ++t;
      }
      int n_active = m->active_count[m->At(h, entry)];
      int n_idle = m->vms_per_home - n_active;
      double mig_s = std::min(kIntervalSeconds, static_cast<double>(n_idle) * m->partial_mig_s +
                                                    static_cast<double>(n_active) * m->full_mig_s);
      size_t cls = static_cast<size_t>(m->home_class[static_cast<size_t>(h)]);
      cost += m->class_suspend_j[cls] +
              mig_s * (m->class_loaded_w[cls] - m->class_sleep_w[cls]);
      if (t < m->intervals) {
        cost += m->class_resume_j[cls];
      }
    }
    return cost;
  }

  // Recomputes every derived term from the rows (used after init).
  // Returns false if any interval is infeasible.
  bool RebuildAll() {
    std::fill(sleeping_by_class.begin(), sleeping_by_class.end(), 0);
    std::fill(parked_active.begin(), parked_active.end(), 0);
    std::fill(parked_idle.begin(), parked_idle.end(), 0);
    std::fill(parked_bytes.begin(), parked_bytes.end(), 0);
    std::fill(ms_on.begin(), ms_on.end(), 0);
    for (int h = 0; h < m->num_homes; ++h) {
      for (int t = 0; t < m->intervals; ++t) {
        if (rows[static_cast<size_t>(h)][static_cast<size_t>(t)] != 0) {
          AddHomeAt(h, t, +1);
        }
      }
    }
    power_sum = 0.0;
    bool all_feasible = true;
    for (int t = 0; t < m->intervals; ++t) {
      size_t ti = static_cast<size_t>(t);
      bool feasible = true;
      power[ti] = PowerAt(*m, SleepingAt(t), parked_active[ti], parked_idle[ti],
                          parked_bytes[ti], ms_on[ti], &feasible);
      all_feasible = all_feasible && feasible;
      power_sum += power[ti];
    }
    trans_sum = 0.0;
    for (int h = 0; h < m->num_homes; ++h) {
      trans[static_cast<size_t>(h)] = HomeTransitionCost(h);
      trans_sum += trans[static_cast<size_t>(h)];
    }
    return all_feasible;
  }

  double EnergyJoules() const { return power_sum * kIntervalSeconds + trans_sum; }
};

// Hindsight-greedy starting point: sleep every all-idle run of at least two
// intervals (one interval doesn't amortize the transitions), then wake the
// biggest parkers wherever the consolidation tier overflows.
void InitSchedule(Schedule& s) {
  const DayModel& m = *s.m;
  for (int h = 0; h < m.num_homes; ++h) {
    if (!m.Sleepable(h)) {
      continue;  // an S3-incapable home never sleeps in any schedule
    }
    int t = 0;
    while (t < m.intervals) {
      if (m.active_count[m.At(h, t)] != 0) {
        ++t;
        continue;
      }
      int run = t;
      while (t < m.intervals && m.active_count[m.At(h, t)] == 0) {
        ++t;
      }
      if (t - run >= 2) {
        for (int u = run; u < t; ++u) {
          s.rows[static_cast<size_t>(h)][static_cast<size_t>(u)] = 1;
        }
      }
    }
  }
  if (s.RebuildAll()) {
    return;
  }
  // Feasibility repair, interval by interval.
  for (int t = 0; t < m.intervals; ++t) {
    size_t ti = static_cast<size_t>(t);
    for (;;) {
      bool feasible = true;
      (void)PowerAt(m, s.SleepingAt(t), s.parked_active[ti], s.parked_idle[ti],
                    s.parked_bytes[ti], s.ms_on[ti], &feasible);
      if (feasible) {
        break;
      }
      int worst = -1;
      uint64_t worst_bytes = 0;
      for (int h = 0; h < m.num_homes; ++h) {
        if (s.rows[static_cast<size_t>(h)][ti] != 0 &&
            (worst < 0 || m.parked_bytes[m.At(h, t)] > worst_bytes)) {
          worst = h;
          worst_bytes = m.parked_bytes[m.At(h, t)];
        }
      }
      if (worst < 0) {
        break;  // nothing left to wake; PowerAt already clamps
      }
      s.rows[static_cast<size_t>(worst)][ti] = 0;
      s.AddHomeAt(worst, t, -1);
    }
  }
  (void)s.RebuildAll();
}

double RelaxedLowerBound(const DayModel& m) {
  double total_w = 0.0;
  // Only sleepable homes enter the prefix walk: no real schedule can park
  // an S3-incapable home, so restricting the relaxation to the sleepable
  // set keeps it a valid (and tighter) floor on mixed fleets.
  std::vector<std::tuple<int, uint64_t, int>> order;
  order.reserve(static_cast<size_t>(m.num_homes));
  std::vector<int> sleeping(static_cast<size_t>(m.num_classes), 0);
  const std::vector<int> none(static_cast<size_t>(m.num_classes), 0);
  for (int t = 0; t < m.intervals; ++t) {
    order.clear();
    for (int h = 0; h < m.num_homes; ++h) {
      if (!m.Sleepable(h)) {
        continue;
      }
      size_t at = m.At(h, t);
      order.emplace_back(m.active_count[at], m.parked_bytes[at], h);
    }
    std::sort(order.begin(), order.end());
    std::fill(sleeping.begin(), sleeping.end(), 0);
    int parked_active = 0;
    int parked_idle = 0;
    uint64_t parked = 0;
    int ms = 0;
    bool feasible = true;
    double best = PowerAt(m, none.data(), 0, 0, 0, 0, nullptr);  // everything powered
    for (const auto& [a, bytes, h] : order) {
      ++sleeping[static_cast<size_t>(m.home_class[static_cast<size_t>(h)])];
      parked_active += a;
      parked_idle += m.vms_per_home - a;
      parked += bytes;
      ms += static_cast<int>(m.parks_idle[m.At(h, t)]);
      double p =
          PowerAt(m, sleeping.data(), parked_active, parked_idle, parked, ms, &feasible);
      if (!feasible) {
        break;
      }
      best = std::min(best, p);
    }
    total_w += best;
  }
  return total_w * kIntervalSeconds;
}

void Anneal(Schedule& s, const OracleConfig& cfg, Rng& rng) {
  const DayModel& m = *s.m;
  std::vector<int> changed;
  std::vector<double> old_power;
  int iters = std::max(1, cfg.sa_iterations);
  for (int i = 0; i < iters; ++i) {
    double frac = static_cast<double>(i) / static_cast<double>(iters);
    double temp = cfg.initial_temperature_j *
                  std::pow(cfg.final_temperature_j / cfg.initial_temperature_j, frac);
    int h = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(m.num_homes)));
    int t0 = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(m.intervals)));
    int len = 1 + static_cast<int>(
                      rng.NextBelow(static_cast<uint64_t>(cfg.max_move_intervals)));
    int t1 = std::min(m.intervals, t0 + len);
    uint8_t v = static_cast<uint8_t>(rng.NextBelow(2));
    // All four proposal draws happen before this gate, so the rng sequence
    // is identical whether or not the fleet has unsleepable homes.
    if (v != 0 && !m.Sleepable(h)) {
      continue;
    }
    std::vector<uint8_t>& row = s.rows[static_cast<size_t>(h)];

    changed.clear();
    old_power.clear();
    for (int t = t0; t < t1; ++t) {
      if (row[static_cast<size_t>(t)] != v) {
        changed.push_back(t);
      }
    }
    if (changed.empty()) {
      continue;
    }
    int sign = v != 0 ? +1 : -1;
    bool infeasible = false;
    double power_delta = 0.0;
    size_t applied = 0;
    for (int t : changed) {
      size_t ti = static_cast<size_t>(t);
      old_power.push_back(s.power[ti]);
      s.AddHomeAt(h, t, sign);
      ++applied;
      bool feasible = true;
      double p = PowerAt(m, s.SleepingAt(t), s.parked_active[ti], s.parked_idle[ti],
                         s.parked_bytes[ti], s.ms_on[ti], &feasible);
      if (v != 0 && !feasible) {
        infeasible = true;
        break;
      }
      power_delta += p - s.power[ti];
      s.power[ti] = p;
    }
    if (infeasible) {
      for (size_t k = 0; k < applied; ++k) {
        int t = changed[k];
        s.AddHomeAt(h, t, -sign);
        if (k + 1 < applied) {
          s.power[static_cast<size_t>(t)] = old_power[k];
        }
      }
      continue;
    }
    for (int t : changed) {
      row[static_cast<size_t>(t)] = v;
    }
    double old_trans = s.trans[static_cast<size_t>(h)];
    double new_trans = s.HomeTransitionCost(h);
    double delta_j = power_delta * kIntervalSeconds + (new_trans - old_trans);
    bool accept = delta_j <= 0.0 || rng.NextDouble() < std::exp(-delta_j / temp);
    if (accept) {
      s.power_sum += power_delta;
      s.trans[static_cast<size_t>(h)] = new_trans;
      s.trans_sum += new_trans - old_trans;
      continue;
    }
    for (size_t k = 0; k < changed.size(); ++k) {
      int t = changed[k];
      row[static_cast<size_t>(t)] = static_cast<uint8_t>(v == 0 ? 1 : 0);
      s.AddHomeAt(h, t, -sign);
      s.power[static_cast<size_t>(t)] = old_power[k];
    }
  }
}

uint64_t FnvMix(uint64_t hash, uint64_t value) {
  for (int b = 0; b < 8; ++b) {
    hash ^= (value >> (b * 8)) & 0xFFu;
    hash *= 1099511628211ULL;
  }
  return hash;
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

uint64_t OracleResult::Digest() const {
  uint64_t hash = 1469598103934665603ULL;
  hash = FnvMix(hash, DoubleBits(relaxed_lower_bound));
  hash = FnvMix(hash, DoubleBits(schedule_energy));
  hash = FnvMix(hash, DoubleBits(baseline_energy));
  return hash;
}

OfflineOracle::OfflineOracle(const ClusterConfig& config, OracleConfig oracle_config)
    : config_(config), oracle_(oracle_config) {}

OracleResult OfflineOracle::Solve(const TraceSet& trace, uint64_t seed) const {
  OracleResult result;
  // Per-class baseline (every home powered all day at its own loaded draw);
  // one class on the homogeneous default, where the fold is the legacy
  // draw * num_home_hosts product bit for bit.
  Watts baseline_w = 0.0;
  std::vector<int> homes_in_class(static_cast<size_t>(config_.NumProfileClasses()), 0);
  for (int h = 0; h < config_.num_home_hosts; ++h) {
    ++homes_in_class[static_cast<size_t>(config_.ProfileClassOf(static_cast<HostId>(h)))];
  }
  for (int cls = 0; cls < config_.NumProfileClasses(); ++cls) {
    if (homes_in_class[static_cast<size_t>(cls)] == 0) {
      continue;
    }
    baseline_w += config_.ResolvedProfile(cls).power.Draw(HostPowerState::kPowered,
                                                          config_.vms_per_home) *
                  homes_in_class[static_cast<size_t>(cls)];
  }
  result.baseline_energy = baseline_w * 24.0 * 3600.0;
  if (trace.empty() || config_.num_home_hosts == 0) {
    result.schedule_energy = result.baseline_energy;
    result.relaxed_lower_bound = result.baseline_energy;
    return result;
  }
  // The oracle's own working-set draws: sampled in VM id order from a
  // sampler seeded off (seed, salt) only, so the result is independent of
  // anything the simulation drew.
  size_t num_vms = static_cast<size_t>(config_.TotalVms());
  WorkingSetSampler sampler(config_.working_set, seed ^ oracle_.seed_salt);
  std::vector<uint64_t> ws(num_vms, 0);
  for (size_t v = 0; v < num_vms; ++v) {
    ws[v] = sampler.Sample(config_.vm_memory_bytes);
  }
  DayModel model = BuildModel(config_, trace, ws);
  Schedule schedule(model);
  InitSchedule(schedule);
  Rng rng(seed ^ (oracle_.seed_salt * 0x9E3779B97F4A7C15ULL));
  Anneal(schedule, oracle_, rng);
  result.schedule_energy = schedule.EnergyJoules();
  // The per-interval relaxation is a floor under every schedule the model
  // admits; min() guards the reported pair's ordering against any tie-level
  // arithmetic wobble in the prefix heuristic.
  result.relaxed_lower_bound = std::min(RelaxedLowerBound(model), result.schedule_energy);
  return result;
}

double OptimalityGap(Joules strategy_energy, const OracleResult& oracle) {
  if (oracle.schedule_energy <= 0.0) {
    return 0.0;
  }
  return strategy_energy / oracle.schedule_energy - 1.0;
}

}  // namespace oasis
