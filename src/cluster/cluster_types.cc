#include "src/cluster/cluster_types.h"

#include "src/cluster/strategy.h"

namespace oasis {

const char* ConsolidationPolicyName(ConsolidationPolicy p) {
  switch (p) {
    case ConsolidationPolicy::kOnlyPartial:
      return "OnlyPartial";
    case ConsolidationPolicy::kDefault:
      return "Default";
    case ConsolidationPolicy::kFullToPartial:
      return "FulltoPartial";
    case ConsolidationPolicy::kNewHome:
      return "NewHome";
  }
  return "?";
}

StatusOr<ConsolidationPolicy> ParseConsolidationPolicy(const std::string& name) {
  constexpr ConsolidationPolicy kAll[] = {
      ConsolidationPolicy::kOnlyPartial,
      ConsolidationPolicy::kDefault,
      ConsolidationPolicy::kFullToPartial,
      ConsolidationPolicy::kNewHome,
  };
  for (ConsolidationPolicy p : kAll) {
    if (name == ConsolidationPolicyName(p)) {
      return p;
    }
  }
  std::string valid;
  for (ConsolidationPolicy p : kAll) {
    if (!valid.empty()) {
      valid += ", ";
    }
    valid += ConsolidationPolicyName(p);
  }
  return Status::InvalidArgument("unknown consolidation policy '" + name +
                                 "' (valid: " + valid + ")");
}

const char* HostRoleName(HostRole role) {
  switch (role) {
    case HostRole::kHome:
      return "home";
    case HostRole::kConsolidation:
      return "consolidation";
  }
  return "?";
}

Status ClusterConfig::Validate() const {
  if (num_home_hosts <= 0 || num_consolidation_hosts < 0 || vms_per_home <= 0) {
    return Status::InvalidArgument("host/VM counts must be positive");
  }
  if (vm_memory_bytes == 0 || host_memory_bytes == 0) {
    return Status::InvalidArgument("memory sizes must be positive");
  }
  if (static_cast<uint64_t>(vms_per_home) * vm_memory_bytes > host_memory_bytes) {
    return Status::InvalidArgument(
        "home hosts cannot fit their own VMs: " + std::to_string(vms_per_home) + " x " +
        FormatBytes(vm_memory_bytes) + " > " + FormatBytes(host_memory_bytes) +
        " (use SetVmsPerHome to scale host capacity)");
  }
  if (planning_interval <= SimTime::Zero()) {
    return Status::InvalidArgument("planning interval must be positive");
  }
  if (memory_overcommit < 1.0 || memory_overcommit > 3.0) {
    return Status::InvalidArgument("memory_overcommit must be in [1, 3]");
  }
  if (host_cores <= 0 || cpu_overcommit < 1.0) {
    return Status::InvalidArgument("host_cores must be positive, cpu_overcommit >= 1");
  }
  if (idle_smoothing_intervals < 0) {
    return Status::InvalidArgument("idle smoothing must be non-negative");
  }
  if (!IsRegisteredStrategyName(strategy_name)) {
    return Status::InvalidArgument("unknown consolidation strategy '" + strategy_name +
                                   "' (registered: " + RegisteredStrategyNamesJoined() +
                                   ")");
  }
  if (fault.enabled) {
    Status fault_ok = fault.Validate();
    if (!fault_ok.ok()) {
      return fault_ok;
    }
  }
  if (!fleet.empty()) {
    Status fleet_ok = fleet.Validate();
    if (!fleet_ok.ok()) {
      return fleet_ok;
    }
    if (fleet.CoveredHosts() > TotalHosts()) {
      return Status::InvalidArgument(
          "fleet mix covers " + std::to_string(fleet.CoveredHosts()) +
          " hosts but the cluster has " + std::to_string(TotalHosts()));
    }
    // Every generation assigned to a home range must still fit that home's
    // own VM population (the class-0 check above, per capacity_scale).
    for (size_t s = 0, first = 0; s < fleet.segments.size(); ++s) {
      const FleetSegment& segment = fleet.segments[s];
      if (static_cast<int>(first) < num_home_hosts) {
        const HostProfile profile = ResolvedProfile(static_cast<int>(s) + 1);
        const uint64_t capacity = static_cast<uint64_t>(
            static_cast<double>(host_memory_bytes) * profile.capacity_scale);
        if (static_cast<uint64_t>(vms_per_home) * vm_memory_bytes > capacity) {
          return Status::InvalidArgument(
              "home hosts of generation '" + segment.generation +
              "' cannot fit their own VMs: " + std::to_string(vms_per_home) +
              " x " + FormatBytes(vm_memory_bytes) + " > " +
              FormatBytes(capacity));
        }
      }
      first += static_cast<size_t>(segment.count);
    }
  }
  return Status::Ok();
}

int ClusterConfig::ProfileClassOf(HostId id) const {
  int first = 0;
  for (size_t s = 0; s < fleet.segments.size(); ++s) {
    first += fleet.segments[s].count;
    if (id < first) {
      return static_cast<int>(s) + 1;
    }
  }
  return 0;
}

HostProfile ClusterConfig::ResolvedProfile(int profile_class) const {
  if (profile_class <= 0 ||
      profile_class > static_cast<int>(fleet.segments.size())) {
    HostProfile profile;
    profile.power = host_power;
    return profile;
  }
  const HostProfile* found =
      FindHostGeneration(fleet.segments[profile_class - 1].generation);
  if (found == nullptr) {  // Validate() rejects this; stay total anyway.
    HostProfile profile;
    profile.power = host_power;
    return profile;
  }
  HostProfile profile = *found;
  if (fleet_power_scale != 1.0) {
    profile.power = profile.power.Scaled(fleet_power_scale);
  }
  return profile;
}

void ClusterConfig::SetVmsPerHome(int vms) {
  double scale = static_cast<double>(vms) / 30.0;
  vms_per_home = vms;
  host_memory_bytes = static_cast<uint64_t>(128.0 * scale * kGiB);
  // Bigger servers (more DIMMs, more sockets) draw capacity-proportional
  // power in every state; the memory server board stays the same. Catalog
  // generations resolve through fleet_power_scale so a resized cluster
  // rescales its whole fleet coherently.
  host_power = host_power.Scaled(scale);
  fleet_power_scale *= scale;
}

}  // namespace oasis
