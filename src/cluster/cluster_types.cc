#include "src/cluster/cluster_types.h"

#include "src/cluster/strategy.h"

namespace oasis {

const char* ConsolidationPolicyName(ConsolidationPolicy p) {
  switch (p) {
    case ConsolidationPolicy::kOnlyPartial:
      return "OnlyPartial";
    case ConsolidationPolicy::kDefault:
      return "Default";
    case ConsolidationPolicy::kFullToPartial:
      return "FulltoPartial";
    case ConsolidationPolicy::kNewHome:
      return "NewHome";
  }
  return "?";
}

StatusOr<ConsolidationPolicy> ParseConsolidationPolicy(const std::string& name) {
  constexpr ConsolidationPolicy kAll[] = {
      ConsolidationPolicy::kOnlyPartial,
      ConsolidationPolicy::kDefault,
      ConsolidationPolicy::kFullToPartial,
      ConsolidationPolicy::kNewHome,
  };
  for (ConsolidationPolicy p : kAll) {
    if (name == ConsolidationPolicyName(p)) {
      return p;
    }
  }
  std::string valid;
  for (ConsolidationPolicy p : kAll) {
    if (!valid.empty()) {
      valid += ", ";
    }
    valid += ConsolidationPolicyName(p);
  }
  return Status::InvalidArgument("unknown consolidation policy '" + name +
                                 "' (valid: " + valid + ")");
}

const char* HostRoleName(HostRole role) {
  switch (role) {
    case HostRole::kHome:
      return "home";
    case HostRole::kConsolidation:
      return "consolidation";
  }
  return "?";
}

Status ClusterConfig::Validate() const {
  if (num_home_hosts <= 0 || num_consolidation_hosts < 0 || vms_per_home <= 0) {
    return Status::InvalidArgument("host/VM counts must be positive");
  }
  if (vm_memory_bytes == 0 || host_memory_bytes == 0) {
    return Status::InvalidArgument("memory sizes must be positive");
  }
  if (static_cast<uint64_t>(vms_per_home) * vm_memory_bytes > host_memory_bytes) {
    return Status::InvalidArgument(
        "home hosts cannot fit their own VMs: " + std::to_string(vms_per_home) + " x " +
        FormatBytes(vm_memory_bytes) + " > " + FormatBytes(host_memory_bytes) +
        " (use SetVmsPerHome to scale host capacity)");
  }
  if (planning_interval <= SimTime::Zero()) {
    return Status::InvalidArgument("planning interval must be positive");
  }
  if (memory_overcommit < 1.0 || memory_overcommit > 3.0) {
    return Status::InvalidArgument("memory_overcommit must be in [1, 3]");
  }
  if (host_cores <= 0 || cpu_overcommit < 1.0) {
    return Status::InvalidArgument("host_cores must be positive, cpu_overcommit >= 1");
  }
  if (idle_smoothing_intervals < 0) {
    return Status::InvalidArgument("idle smoothing must be non-negative");
  }
  if (!IsRegisteredStrategyName(strategy_name)) {
    return Status::InvalidArgument("unknown consolidation strategy '" + strategy_name +
                                   "' (registered: " + RegisteredStrategyNamesJoined() +
                                   ")");
  }
  if (fault.enabled) {
    Status fault_ok = fault.Validate();
    if (!fault_ok.ok()) {
      return fault_ok;
    }
  }
  return Status::Ok();
}

void ClusterConfig::SetVmsPerHome(int vms) {
  double scale = static_cast<double>(vms) / 30.0;
  vms_per_home = vms;
  host_memory_bytes = static_cast<uint64_t>(128.0 * scale * kGiB);
  // Bigger servers (more DIMMs, more sockets) draw capacity-proportional
  // power in every state; the memory server board stays the same.
  host_power.idle_watts *= scale;
  host_power.watts_at_20_vms *= scale;
  host_power.sleep_watts *= scale;
  host_power.suspend_watts *= scale;
  host_power.resume_watts *= scale;
}

}  // namespace oasis
