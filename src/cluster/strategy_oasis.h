// The paper's §3 consolidation algorithm as a pluggable strategy (the
// "oasis-greedy" registry entry, and the default).
//
// The planning passes run in the legacy monolithic manager's exact order —
// FulltoPartial swaps, power-gated vacate planning, incremental draining —
// and draw from the shared planning streams at the exact same points, so a
// run under this strategy is byte-identical to the pre-refactor manager.
//
// The class is exposed (rather than hidden behind its factory) so tests can
// drive BuildVacatePlan directly against a manager's view and assert on the
// power-delta gate without running a whole day.

#ifndef OASIS_SRC_CLUSTER_STRATEGY_OASIS_H_
#define OASIS_SRC_CLUSTER_STRATEGY_OASIS_H_

#include <unordered_map>

#include "src/cluster/strategy.h"

namespace oasis {

class OasisGreedyStrategy : public ConsolidationStrategy {
 public:
  const char* name() const override { return kDefaultStrategyName; }
  PlanActions PlanInterval(const ClusterView& view, SimTime now, Actuator& act) override;

  // Pre-samples the working set each trusted-idle VM on a vacate-eligible
  // home would consolidate with. Both plan variants share the samples so
  // they compare like for like.
  std::unordered_map<VmId, uint64_t> PresampleWorkingSets(const ClusterView& view,
                                                          SimTime now) const;
  // Builds (without committing) one vacate plan: candidate homes by
  // ascending demand, random destinations among powered consolidation
  // hosts, first-fit spill onto sleeping ones when allowed, and the §3.1
  // net power delta of executing it.
  VacatePlan BuildVacatePlan(const ClusterView& view, SimTime now,
                             bool allow_waking_consolidation_hosts,
                             const std::unordered_map<VmId, uint64_t>& planned_ws) const;
  bool HostEligibleForVacate(const ClusterView& view, const ClusterHost& host,
                             SimTime now) const;

 private:
  int PlanFullToPartialSwaps(const ClusterView& view, SimTime now, Actuator& act,
                             PlanActions& actions) const;
  void PlanVacations(const ClusterView& view, SimTime now, Actuator& act,
                     PlanActions& actions) const;
  int DrainConsolidationHosts(const ClusterView& view, SimTime now, Actuator& act) const;
};

}  // namespace oasis

#endif  // OASIS_SRC_CLUSTER_STRATEGY_OASIS_H_
