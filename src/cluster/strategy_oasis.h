// The paper's §3 consolidation algorithm as a pluggable strategy (the
// "oasis-greedy" registry entry, and the default).
//
// The planning passes run in the legacy monolithic manager's exact order —
// FulltoPartial swaps, power-gated vacate planning, incremental draining —
// and draw from the shared planning streams at the exact same points, so a
// run under this strategy is byte-identical to the pre-refactor manager.
//
// The strategy has two interchangeable backends (see DESIGN.md, "Hot path"):
//
//   full         — every pass rescans the whole ClusterView. The reference
//                  implementation, kept deliberately close to the legacy
//                  manager's loops.
//   incremental  — per-host scan state ({in-flight residents, partial
//                  residents} counts and per-home full-at-consolidation
//                  membership) is kept across intervals and refreshed from
//                  the DirtyTracker change log before each pass. Everything
//                  else (power states, capacities, activity, idleness trust)
//                  is read live, and the planning streams are drawn in the
//                  full backend's exact order, so the decisions — and the
//                  whole simulation — are identical byte for byte.
//
// OASIS_PLAN picks the backend per process; "verify" runs both per pass
// (rewinding the planning streams in between) and dies on any divergence.
//
// The class is exposed (rather than hidden behind its factory) so tests can
// drive BuildVacatePlan directly against a manager's view and assert on the
// power-delta gate without running a whole day.

#ifndef OASIS_SRC_CLUSTER_STRATEGY_OASIS_H_
#define OASIS_SRC_CLUSTER_STRATEGY_OASIS_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/cluster/strategy.h"

namespace oasis {

// How the oasis-greedy strategy derives each interval's plan. Selected once
// per strategy instance, normally from OASIS_PLAN at construction.
enum class PlanMode {
  kFull,         // rebuild every scan from the view (the legacy reference)
  kIncremental,  // dirty-set-refreshed scan state; provably identical output
  kVerify,       // run both per pass and exit(2) on any divergence
};

// Parses OASIS_PLAN (full|incremental|verify; unset/empty defaults to
// incremental — safe because the backends are pinned byte-identical). An
// unknown value is a fatal configuration error: exit status 2, mirroring
// OASIS_PROF and OASIS_POLICY.
PlanMode PlanModeFromEnv();

// The OASIS_PLAN spelling of `mode` (for bench/JSON reporting).
const char* PlanModeName(PlanMode mode);

class OasisGreedyStrategy : public ConsolidationStrategy {
 public:
  explicit OasisGreedyStrategy(PlanMode mode = PlanModeFromEnv()) : mode_(mode) {}

  const char* name() const override { return kDefaultStrategyName; }
  StrategyTraits traits() const override {
    return {/*has_power_gate=*/true, /*supports_plan_modes=*/true};
  }
  PlanActions PlanInterval(const ClusterView& view, SimTime now, Actuator& act) override;
  PlanMode mode() const { return mode_; }

  // Pre-samples the working set each trusted-idle VM on a vacate-eligible
  // home would consolidate with. Both plan variants share the samples so
  // they compare like for like. (Full backend; the incremental backend fuses
  // this into its candidate scan, drawing in the same order.)
  std::unordered_map<VmId, uint64_t> PresampleWorkingSets(const ClusterView& view,
                                                          SimTime now) const;
  // Builds (without committing) one vacate plan: candidate homes by
  // ascending demand, random destinations among powered consolidation
  // hosts, first-fit spill onto sleeping ones when allowed, and the §3.1
  // net power delta of executing it.
  VacatePlan BuildVacatePlan(const ClusterView& view, SimTime now,
                             bool allow_waking_consolidation_hosts,
                             const std::unordered_map<VmId, uint64_t>& planned_ws) const;
  bool HostEligibleForVacate(const ClusterView& view, const ClusterHost& host,
                             SimTime now) const;

 protected:
  // The building blocks PredictiveStrategy composes with: candidate/dest
  // tables, the rng-drawing placement+pricing core, and the §3.1 gate.
  struct Candidate {
    HostId host;
    uint64_t demand;
  };
  struct Dest {
    HostId host;
    uint64_t available;
    int active_slots;  // CPU headroom for incoming active VMs
    bool sleeping;
    bool used = false;
  };

  // --- backend-shared execution and pricing -------------------------------
  // Places the (already demand-sorted) candidates onto a scratch copy of the
  // destination table and prices the resulting plan. This is the only part
  // of pass 2 that draws from the planning rng, so both backends share it.
  VacatePlan PlaceAndPrice(const ClusterView& view, SimTime now,
                           const std::vector<Candidate>& candidates,
                           std::vector<Dest> dests, size_t powered_dests,
                           const std::vector<uint64_t>& planned_ws) const;
  void MaybeCommitVacatePlan(SimTime now, Actuator& act, PlanActions& actions,
                             const VacatePlan& best) const;

 private:
  // Per-host cached scan state for the incremental backend. Deliberately
  // minimal: everything except these two resident counts is O(1) to read
  // live from the view, so caching more would only widen the invalidation
  // surface.
  struct HostRow {
    int inflight_residents = 0;
    int partial_residents = 0;
  };
  // Pass 1 decisions: (home, swap group) pairs in ascending home order.
  using SwapGroups = std::vector<std::pair<HostId, std::vector<VmId>>>;

  void ExecuteSwapGroups(const SwapGroups& groups, SimTime now, Actuator& act,
                         PlanActions& actions) const;
  // Executes the incremental drain from `source_id` (kNoHost = nothing to
  // drain): the completion-feasibility gate plus the per-VM moves, whose
  // destination scans stay live because each move mutates the cluster.
  int ExecuteDrain(const ClusterView& view, SimTime now, Actuator& act,
                   HostId source_id) const;

  // --- full backend -------------------------------------------------------
  SwapGroups ComputeSwapGroupsFull(const ClusterView& view, SimTime now) const;
  VacatePlan ComputeVacatePlanFull(const ClusterView& view, SimTime now) const;
  HostId SelectDrainSourceFull(const ClusterView& view, SimTime now) const;

  // --- incremental backend ------------------------------------------------
  // Folds the DirtyTracker change log into the cached rows. Must run before
  // *each* pass: executing a pass mutates state that later passes read.
  void Refresh(const ClusterView& view);
  void RebuildRow(const ClusterView& view, HostId h);
  SwapGroups ComputeSwapGroupsIncremental(const ClusterView& view, SimTime now) const;
  VacatePlan ComputeVacatePlanIncremental(const ClusterView& view, SimTime now);
  HostId SelectDrainSourceIncremental(const ClusterView& view, SimTime now) const;

  PlanMode mode_;

  // Incremental scan cache. This is *derived* state — rebuildable from the
  // view at any time, invalidated precisely by the DirtyTracker marks — not
  // decision memory, so the strategy stays a pure function of the cluster
  // state (see the doctrine note in strategy.h).
  bool primed_ = false;
  std::vector<HostRow> rows_;      // per host
  std::vector<uint8_t> is_fac_;    // per VM: residency == kFullAtConsolidation
  std::vector<int> fac_count_;     // per home: VMs homed there with is_fac_ set
  std::vector<uint64_t> planned_ws_;  // per-interval scratch (flat VmId index)
};

}  // namespace oasis

#endif  // OASIS_SRC_CLUSTER_STRATEGY_OASIS_H_
