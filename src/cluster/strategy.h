// Pluggable consolidation strategies (the policy layer of the control
// plane; see DESIGN.md, "Control-plane layering").
//
// A strategy decides, once per planning interval, which VMs move where and
// which hosts get to sleep. It reads the cluster only through ClusterView
// and effects every decision through Actuator verbs — it can never touch a
// host or VM slot directly. Strategies are pure functions of the view: they
// carry no *decision* state between intervals. A strategy may keep derived
// scan caches (state rebuildable from the view at any instant, invalidated
// via the view's DirtyTracker — see OasisGreedyStrategy's incremental
// backend), because a cache that is provably a function of the current view
// cannot smuggle information between intervals.
//
// One declared exception to the no-decision-state rule: a *forecast* — an
// online summary of past observed activity used to predict future activity
// (see PredictiveStrategy). Forecast state is genuine cross-interval memory,
// so it must be (a) declared here, (b) derived exclusively from what the
// view exposed at past planning instants, and (c) never a hidden channel
// for replaying its own past decisions. See DESIGN.md, "Strategy depth &
// oracle bound".
//
// Registered strategies:
//   "oasis-greedy"         — the paper's §3 algorithm (full-to-partial swaps,
//                            power-gated greedy vacate planning, incremental
//                            consolidation-host draining). The default, and
//                            byte-identical to the pre-refactor monolithic
//                            manager.
//   "first-fit-decreasing" — static bin-packing: sort all trusted-idle
//                            working sets decreasing and first-fit them onto
//                            the consolidation hosts, all-or-nothing per
//                            home, behind the same global power gate.
//   "local-threshold"      — distributed per-host decisions with no global
//                            scan: each fully-idle home independently parks
//                            its group on its statically designated
//                            consolidation host whenever it fits.
//   "predictive"           — oasis-greedy plus a diurnal activity forecast:
//                            pre-drains almost-idle homes ahead of the
//                            forecast trough and pre-wakes parked homes
//                            ahead of the forecast peak, both behind the
//                            same §3.1 power gate.

#ifndef OASIS_SRC_CLUSTER_STRATEGY_H_
#define OASIS_SRC_CLUSTER_STRATEGY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster_types.h"
#include "src/cluster/view.h"

namespace oasis {

class Actuator;

// One VM move inside a vacate plan. `as_partial` and `bytes` are decided at
// plan-build time (nothing mutates the cluster between building and
// committing a plan, so the build-time idleness verdict still holds at
// commit): a partial placement reserves `bytes` of sampled working set at
// the destination, a full placement reserves the VM's full footprint.
struct VacatePlacement {
  VmId vm = kNoVm;
  HostId dest = kNoHost;
  bool as_partial = false;
  uint64_t bytes = 0;
};

// A set of home hosts to empty, with a destination for every resident VM
// and the net power effect of executing it (§3.1: consolidate only when it
// saves energy).
struct VacatePlan {
  std::vector<HostId> hosts_to_vacate;
  // Parallel to hosts_to_vacate: the placements for every VM resident there.
  std::vector<std::vector<VacatePlacement>> placements;
  double net_power_delta_watts = 0.0;  // positive means the plan saves power
  int newly_woken_consolidation_hosts = 0;
};

// What a strategy did this interval — the executed-action record returned
// by PlanInterval, used for observability only (never folded into
// ClusterMetrics, so enabling it cannot perturb pinned outputs).
struct PlanActions {
  int full_to_partial_swap_groups = 0;
  int swapped_vms = 0;
  int vacated_hosts = 0;
  int vacate_moves = 0;
  int drain_moves = 0;
  int prewoken_hosts = 0;
  double committed_power_delta_watts = 0.0;
};

// Capability flags a strategy declares about itself, consumed by the
// conformance suite (tests/strategy_conformance_test.cpp) to decide which
// registry-wide invariants apply. Defaults describe a gate-respecting
// strategy with a single planning backend.
struct StrategyTraits {
  // The strategy only commits vacate plans whose net power delta is
  // positive (§3.1). Conformance asserts such strategies never migrate on
  // a cluster configured so consolidation can't save energy.
  bool has_power_gate = true;
  // The strategy honors OASIS_PLAN=full|incremental|verify and produces
  // byte-identical results under all three. Conformance asserts digest
  // identity across modes for strategies that set this.
  bool supports_plan_modes = false;
};

// Interface every consolidation strategy implements. PlanInterval runs at
// one simulated instant; the actuator executes verbs immediately, so a
// strategy that plans in several passes observes its own earlier actions
// through the (live) view — exactly the legacy manager's plan/execute
// interleaving.
class ConsolidationStrategy {
 public:
  virtual ~ConsolidationStrategy() = default;
  virtual const char* name() const = 0;
  virtual StrategyTraits traits() const { return {}; }
  virtual PlanActions PlanInterval(const ClusterView& view, SimTime now, Actuator& act) = 0;
};

inline constexpr char kDefaultStrategyName[] = "oasis-greedy";

// --- registry ---------------------------------------------------------------
// Every registered strategy name, in registration order.
const std::vector<std::string>& RegisteredStrategyNames();
// The names joined with ", " (for error messages).
std::string RegisteredStrategyNamesJoined();
bool IsRegisteredStrategyName(const std::string& name);
// Instantiates a registered strategy; nullptr for unknown names.
std::unique_ptr<ConsolidationStrategy> MakeStrategy(const std::string& name);

// Applies the OASIS_POLICY environment override to config->strategy_name.
// An unknown name is a fatal configuration error: prints the registered
// names to stderr and exits with status 2 (mirrors obs::ApplySeedOverride's
// call-it-from-main pattern; call it before constructing managers so
// per-experiment strategy_name assignments made later still win).
void ApplyPolicyOverride(ClusterConfig* config);

// --- factories --------------------------------------------------------------
std::unique_ptr<ConsolidationStrategy> MakeOasisGreedyStrategy();
std::unique_ptr<ConsolidationStrategy> MakeFirstFitDecreasingStrategy();
std::unique_ptr<ConsolidationStrategy> MakeLocalThresholdStrategy();
std::unique_ptr<ConsolidationStrategy> MakePredictiveStrategy();

}  // namespace oasis

#endif  // OASIS_SRC_CLUSTER_STRATEGY_H_
