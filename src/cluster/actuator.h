// The actuator: all cluster *mechanism*, owned by ClusterManager (see
// DESIGN.md, "Control-plane layering").
//
// Strategies decide; the actuator executes. It is the only layer allowed to
// mutate ClusterState: migrations and their serialization on per-host
// channels, host wake/sleep (including fault-injected WoL loss and resume
// hangs), memory-server refresh, activation servicing, fault recovery and
// rollback, and energy accrual. Verbs take effect immediately at the
// simulated instant they are called, so a strategy that interleaves reads
// and verbs observes its own earlier actions through the live ClusterView.

#ifndef OASIS_SRC_CLUSTER_ACTUATOR_H_
#define OASIS_SRC_CLUSTER_ACTUATOR_H_

#include <vector>

#include "src/cluster/cluster_types.h"
#include "src/cluster/host.h"
#include "src/cluster/metrics.h"
#include "src/cluster/strategy.h"
#include "src/cluster/view.h"
#include "src/common/rng.h"
#include "src/mem/working_set.h"
#include "src/sim/simulator.h"

namespace oasis {

class Actuator {
 public:
  // All references must outlive the actuator; ClusterManager owns every one
  // of them and constructs the actuator last.
  Actuator(const ClusterConfig& config, Simulator& sim, Rng& rng,
           WorkingSetSampler& ws_sampler, FaultInjector& fault, ClusterState& state,
           ClusterMetrics& metrics);

  // --- strategy-facing verbs ----------------------------------------------
  // One §3.2 FulltoPartial swap group: wakes `home_id`, live-migrates each
  // idle full VM in `group` back home, re-consolidates it as a partial onto
  // its previous consolidation host (when the freshly sampled working set
  // fits), and schedules the home's sleep once its channel drains.
  void FullToPartialSwapGroup(SimTime now, HostId home_id, const std::vector<VmId>& group);
  // Executes a vacate plan: wakes destinations, moves each VM full or
  // partial per its placement, and schedules each emptied home's sleep.
  void CommitVacatePlan(SimTime now, const VacatePlan& plan);
  // Moves one partial VM from its current consolidation host to `dest_id`
  // (only the descriptor travels; the memory image stays on the home's
  // memory server).
  void DrainMove(SimTime now, VmId vm_id, HostId dest_id);
  // Starts waking `host_id` now so it is powered before forecast demand
  // arrives (PredictiveStrategy's pre-wake). Acts only on sleeping hosts and
  // returns whether a wake was started; a pre-woken host that goes unused is
  // re-slept by the manager's normal end-of-interval sweep, so a wrong
  // forecast costs at most one interval of idle draw.
  bool PrewakeHost(SimTime now, HostId host_id);

  // --- manager entry points -----------------------------------------------
  // Services an idle->active edge: aborts or rides out in-flight moves,
  // converts in place, tries a new home (NewHome policy), or wakes the home
  // and returns the whole group.
  void HandleActivation(SimTime now, VmId vm_id, SimTime activation_time);
  void AdjustActiveCount(SimTime now, HostId host, int delta);
  // Per-partial-VM upkeep: on-demand fetch traffic, dirty-state growth, and
  // working-set growth (which can exhaust a consolidation host and force a
  // return).
  void PartialVmUpkeep(SimTime now);
  // Sweeps mechanism-owned sleep opportunities after planning.
  void SleepIdleConsolidationHosts(SimTime now);
  void MaybeSleepHomeHost(SimTime now, HostId host_id);
  // Dispatches one FaultPlan event at its scheduled time.
  void ApplyScheduledFault(SimTime now, const ScheduledFault& event);
  void AccrueEnergy(SimTime now);

 private:
  // --- transition handling ------------------------------------------------
  bool TryConvertInPlace(SimTime now, VmSlot& vm, SimTime activation_time);
  bool TryNewHome(SimTime now, VmSlot& vm, SimTime activation_time);
  // Returns when the last migration of the group completes (>= now even when
  // there was nothing to move), so fault recovery can bound its spans.
  SimTime ReturnHomeGroup(SimTime now, HostId home_id, VmId requester,
                          SimTime activation_time);

  // --- fault handling -----------------------------------------------------
  void CrashHost(SimTime now, HostId id);
  void FailMemoryServer(SimTime now, HostId home_id);
  void InjectMigrationAbort(SimTime now, int64_t target);
  bool RollbackMigration(SimTime now, VmSlot& vm);
  bool RollbackFeasible(const VmSlot& vm) const;

  // --- helpers ------------------------------------------------------------
  ClusterHost& HostOf(HostId id) { return *state_.hosts[id]; }
  VmSlot& Slot(VmId id) { return state_.vms[id]; }
  // The single gateway for residency changes: keeps the per-home partial
  // count exact (a VM's home never changes) and records the change in the
  // planner's dirty log. No actuator code assigns vm.residency directly.
  void SetResidency(VmSlot& vm, VmResidency next);
  // Records an in-flight flip (ScheduleMigration / FinishMigration /
  // RollbackMigration) in the planner's dirty log.
  void MarkInFlightChanged(const VmSlot& vm);
  // Sends the WoL and returns the time the host will be executing VMs. With
  // fault injection the wake can lose WoL packets or hang in resume, pushing
  // that time out; callers must use the returned value rather than asking
  // the host directly.
  StatusOr<SimTime> WakeHost(SimTime now, HostId id);
  void RefreshMemoryServer(SimTime now, HostId home_id);
  int CountPartialsHomedAt(HostId home_id) const;
  // Marks `vm` in flight for [start, done) and schedules completion.
  void ScheduleMigration(VmSlot& vm, SimTime start, SimTime done, VmSlot::PendingOp op,
                         HostId source);
  // Cancels a queued-but-not-started migration when the user returns.
  bool TryAbortPendingMigration(SimTime now, VmSlot& vm);
  void FinishMigration(SimTime now, VmId vm_id, uint32_t epoch);
  uint64_t SampleWorkingSet();
  void RecordPartialMigrationTraffic(SimTime now, VmSlot& vm);

  const ClusterConfig& config_;
  Simulator& sim_;
  Rng& rng_;
  WorkingSetSampler& ws_sampler_;
  FaultInjector& fault_;
  ClusterState& state_;
  ClusterMetrics& metrics_;
};

}  // namespace oasis

#endif  // OASIS_SRC_CLUSTER_ACTUATOR_H_
