// Offline consolidation oracle — how well could *any* online strategy have
// done on a given day?
//
// The online strategies see only the past; the oracle is handed the
// completed day's activity timeline and searches whole-day sleep schedules
// (per home host, per 5-minute interval) under the same Table 1 power model
// and migration/transition costs the simulator charges. Its best schedule's
// energy is the reference bench/ablation_policy measures every strategy
// against: optimality_gap = strategy_energy / oracle_schedule_energy - 1.
//
// The model (deliberately a relaxation — the bound must err low, so a gap
// can never be negative for modeling reasons):
//
//   * A sleeping home's VMs live on the consolidation tier: idle VMs as
//     partials (their sampled working set), active VMs as fulls (their whole
//     allocation plus a CPU slot) — the paper's hybrid mechanism with
//     perfect foresight and no idleness-smoothing delay.
//   * Each interval needs c(t) powered consolidation hosts, the max of the
//     byte bound (parked bytes / effective host capacity) and the CPU bound
//     (parked actives / MaxActiveVmsPerHost); a schedule is feasible only if
//     c(t) never exceeds the consolidation tier.
//   * Interval power: powered homes draw the loaded Table 1 rate, sleeping
//     homes S3 plus their memory server (when they park any idle VM),
//     powered consolidation hosts the idle rate plus the per-VM increment
//     (saturating at 20 residents each), everything else S3.
//   * Each sleep episode is charged its entry (migration-out time at loaded
//     power, capped at one interval, plus the S3 suspend transition) and its
//     exit (the S3 resume transition). On-demand fetches, reintegration
//     traffic, and mid-sleep reshuffling are not charged — relaxations, all
//     in the oracle's favor.
//
// Search: seeded simulated annealing over per-home sleep windows, started
// from the hindsight-greedy schedule (sleep every all-idle run). The whole
// solve is a pure function of (cluster config, trace, seed, OracleConfig) —
// it touches no global stream and no wall clock — so it is deterministic
// across reruns and OASIS_JOBS settings by construction.

#ifndef OASIS_SRC_CLUSTER_ORACLE_H_
#define OASIS_SRC_CLUSTER_ORACLE_H_

#include <cstdint>

#include "src/cluster/cluster_types.h"
#include "src/trace/activity_trace.h"

namespace oasis {

struct OracleConfig {
  // Annealing budget and geometric temperature schedule (joules). The
  // defaults converge well within the gap harness's tolerances on the
  // 30-home paper rack; they are part of the oracle's pinned definition, so
  // changing them moves golden digests.
  int sa_iterations = 40000;
  double initial_temperature_j = 30000.0;
  double final_temperature_j = 100.0;
  // Longest window (in intervals) a single annealing move rewrites.
  int max_move_intervals = 24;
  // Folded into the caller's seed so the oracle's working-set draws and move
  // sequence are decorrelated from the simulation's own streams.
  uint64_t seed_salt = 0x6F7261636C65ULL;  // "oracle"
};

struct OracleResult {
  // Per-interval relaxation (transition costs dropped, each interval
  // optimized independently): a floor under every schedule in the model.
  Joules relaxed_lower_bound = 0.0;
  // Energy of the best whole-day schedule the annealer found — the
  // denominator of every optimality gap.
  Joules schedule_energy = 0.0;
  // All home hosts powered all day (the simulator's baseline definition).
  Joules baseline_energy = 0.0;

  double ScheduleSavings() const {
    return baseline_energy > 0.0 ? 1.0 - schedule_energy / baseline_energy : 0.0;
  }
  // FNV-1a over the three energies' bit patterns — the determinism pin.
  uint64_t Digest() const;
};

class OfflineOracle {
 public:
  explicit OfflineOracle(const ClusterConfig& config, OracleConfig oracle_config = {});

  // Solves one completed day. `trace` drives VM activity exactly as
  // ClusterManager maps it (vm id modulo trace size); `seed` seeds the
  // working-set draws and the annealer.
  OracleResult Solve(const TraceSet& trace, uint64_t seed) const;

 private:
  ClusterConfig config_;
  OracleConfig oracle_;
};

// strategy_energy / oracle schedule energy - 1 (0 = matched the oracle).
double OptimalityGap(Joules strategy_energy, const OracleResult& oracle);

}  // namespace oasis

#endif  // OASIS_SRC_CLUSTER_ORACLE_H_
