// Predictive consolidation: oasis-greedy plus a diurnal activity forecast
// (the "predictive" registry entry).
//
// The reactive planner consolidates only after the idleness detector's
// smoothing window has elapsed and wakes hosts only after users are already
// back — it trails the workload by construction. This strategy runs the full
// oasis-greedy plan first (so it inherits the §3.2 swaps, the §3.1
// power-gated vacate search, and the OASIS_PLAN backends byte for byte) and
// then adds two forecast-driven passes:
//
//   pre-drain  — when the forecast says activity stays below a floor for the
//                whole lookahead window (the run into the ~6:30am trough),
//                homes whose residents are all idle *now* — including ones
//                the smoothing window doesn't yet trust — are planned as
//                all-partial vacates through the shared PlaceAndPrice core,
//                behind the same §3.1 gate. Greedy would have planned the
//                untrusted residents as full placements (or waited out the
//                window); draining them as partials earns the smoothing
//                window's worth of extra sleep per home.
//   pre-wake   — when the forecast rises ahead of observed activity (the run
//                into the ~2pm peak), sleeping home hosts are woken ahead of
//                their users so returning groups land on a powered host. A
//                wrongly pre-woken host is re-slept by the manager's normal
//                end-of-interval sweep, so a forecast miss costs at most one
//                interval of idle draw.
//
// The forecast is the one declared piece of cross-interval strategy state
// (see the doctrine note in strategy.h): a per-slot EWMA over day-folded
// observed activity, seeded from the trace generator's own diurnal prior
// (src/trace/diurnal_prior.h), plus a scalar level ratio that adapts the
// shape to days the prior doesn't match (weekends, chaos days). It
// summarizes only what past views exposed — never the strategy's own past
// decisions.
//
// Both passes draw from the shared planning streams strictly *after* the
// base greedy pass finishes, and the base pass leaves the stream cursors in
// an identical state under every OASIS_PLAN backend, so predictive runs are
// byte-identical across full/incremental/verify too.

#ifndef OASIS_SRC_CLUSTER_STRATEGY_PREDICTIVE_H_
#define OASIS_SRC_CLUSTER_STRATEGY_PREDICTIVE_H_

#include <vector>

#include "src/cluster/strategy_oasis.h"

namespace oasis {

// Parses OASIS_FORECAST_WINDOW — how many 5-minute intervals ahead the
// pre-drain/pre-wake passes look (unset/empty defaults to 6, i.e. 30
// minutes; accepted: an integer in [1, 288]). A malformed value is a fatal
// configuration error: exit status 2, mirroring OASIS_PLAN and OASIS_POLICY.
int ForecastWindowFromEnv();

class PredictiveStrategy : public OasisGreedyStrategy {
 public:
  explicit PredictiveStrategy(int forecast_window = ForecastWindowFromEnv());

  const char* name() const override { return "predictive"; }
  StrategyTraits traits() const override {
    return {/*has_power_gate=*/true, /*supports_plan_modes=*/true};
  }
  PlanActions PlanInterval(const ClusterView& view, SimTime now, Actuator& act) override;

  // Forecast active fraction for day slot `slot` (mod intervals-per-day).
  // Exposed so tests can pin the forecast's shape without running a day.
  double Forecast(int slot) const;
  int forecast_window() const { return window_; }

 private:
  void UpdateForecast(int slot, double observed);
  void PreDrainPass(const ClusterView& view, SimTime now, Actuator& act,
                    PlanActions& actions, int slot);
  void PreWakePass(const ClusterView& view, SimTime now, Actuator& act,
                   PlanActions& actions, int slot, double observed);

  int window_;
  // Declared forecast state (strategy.h doctrine): day-folded per-slot EWMA
  // of observed active fraction, seeded from the generator's diurnal prior,
  // and a scalar level ratio tracking how far today runs above/below it.
  std::vector<double> hist_;
  double level_ = 1.0;
};

}  // namespace oasis

#endif  // OASIS_SRC_CLUSTER_STRATEGY_PREDICTIVE_H_
