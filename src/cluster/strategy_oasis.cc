#include "src/cluster/strategy_oasis.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "src/cluster/actuator.h"

namespace oasis {

PlanActions OasisGreedyStrategy::PlanInterval(const ClusterView& view, SimTime now,
                                              Actuator& act) {
  PlanActions actions;
  const ClusterConfig& config = view.config();
  if (config.policy == ConsolidationPolicy::kFullToPartial ||
      config.policy == ConsolidationPolicy::kNewHome) {
    PlanFullToPartialSwaps(view, now, act, actions);
  }
  PlanVacations(view, now, act, actions);
  actions.drain_moves += DrainConsolidationHosts(view, now, act);
  return actions;
}

int OasisGreedyStrategy::PlanFullToPartialSwaps(const ClusterView& view, SimTime now,
                                                Actuator& act, PlanActions& actions) const {
  // Idle full VMs parked on consolidation hosts go home and come back as
  // partials, freeing most of their reservation (§3.2 FulltoPartial).
  std::map<HostId, std::vector<VmId>> by_home;
  for (size_t v = 0; v < view.num_vms(); ++v) {
    const VmSlot& vm = view.vm(static_cast<VmId>(v));
    if (vm.residency == VmResidency::kFullAtConsolidation && view.TrustedIdle(vm, now) &&
        !vm.migration_in_flight) {
      by_home[vm.home].push_back(vm.id);
    }
  }
  for (const auto& [home_id, group] : by_home) {
    act.FullToPartialSwapGroup(now, home_id, group);
    ++actions.full_to_partial_swap_groups;
    actions.swapped_vms += static_cast<int>(group.size());
  }
  return static_cast<int>(by_home.size());
}

bool OasisGreedyStrategy::HostEligibleForVacate(const ClusterView& view,
                                                const ClusterHost& host, SimTime now) const {
  if (!host.IsHomeHost() || !host.IsPowered() || !host.HasVms()) {
    return false;
  }
  for (VmId id : host.vms()) {
    const VmSlot& vm = view.vm(id);
    if (vm.migration_in_flight || vm.location != host.id()) {
      return false;
    }
    // OnlyPartial never migrates VMs in full, so every VM must be (trusted)
    // idle before the host can be emptied.
    if (view.config().policy == ConsolidationPolicy::kOnlyPartial &&
        !view.TrustedIdle(vm, now)) {
      return false;
    }
  }
  return true;
}

std::unordered_map<VmId, uint64_t> OasisGreedyStrategy::PresampleWorkingSets(
    const ClusterView& view, SimTime now) const {
  std::unordered_map<VmId, uint64_t> planned_ws;
  for (size_t h = 0; h < view.num_hosts(); ++h) {
    const ClusterHost& host = view.host(static_cast<HostId>(h));
    if (!host.IsHomeHost() || !HostEligibleForVacate(view, host, now)) {
      continue;
    }
    for (VmId id : host.vms()) {
      if (view.TrustedIdle(view.vm(id), now)) {
        planned_ws[id] = view.SampleWorkingSet();
      }
    }
  }
  return planned_ws;
}

VacatePlan OasisGreedyStrategy::BuildVacatePlan(
    const ClusterView& view, SimTime now, bool allow_waking_consolidation_hosts,
    const std::unordered_map<VmId, uint64_t>& planned_ws) const {
  const ClusterConfig& config = view.config();
  VacatePlan plan;
  // Candidate home hosts sorted by ascending total memory demand (§3.1).
  struct Candidate {
    HostId host;
    uint64_t demand;
  };
  std::vector<Candidate> candidates;
  for (size_t h = 0; h < view.num_hosts(); ++h) {
    const ClusterHost& host = view.host(static_cast<HostId>(h));
    if (!host.IsHomeHost() || !HostEligibleForVacate(view, host, now)) {
      continue;
    }
    uint64_t demand = 0;
    for (VmId id : host.vms()) {
      const VmSlot& vm = view.vm(id);
      demand += view.TrustedIdle(vm, now) ? planned_ws.at(id) : vm.full_bytes;
    }
    candidates.push_back({host.id(), demand});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.demand < b.demand; });

  // Snapshot consolidation-host free space. Powered hosts come first so the
  // random destination choice only spills onto sleeping hosts (waking them)
  // when the powered ones are full.
  struct Dest {
    HostId host;
    uint64_t available;
    int active_slots;  // CPU headroom for incoming active VMs
    bool sleeping;
    bool used = false;
  };
  std::vector<Dest> dests;
  size_t powered_dests = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t h = 0; h < view.num_hosts(); ++h) {
      const ClusterHost& host = view.host(static_cast<HostId>(h));
      if (!host.IsConsolidationHost()) {
        continue;
      }
      int slots = config.MaxActiveVmsPerHost() - host.active_vms();
      bool awake = host.IsPowered() || host.power_state() == HostPowerState::kResuming;
      if (pass == 0 && awake) {
        dests.push_back({host.id(), host.AvailableBytes(), slots, false});
        ++powered_dests;
      } else if (pass == 1 && !awake && allow_waking_consolidation_hosts) {
        dests.push_back({host.id(), host.AvailableBytes(), slots, true});
      }
    }
  }

  for (const Candidate& cand : candidates) {
    const ClusterHost& host = view.host(cand.host);
    std::vector<VacatePlacement> placement;
    struct Tentative {
      size_t idx;
      uint64_t bytes;
      bool active;
    };
    std::vector<Tentative> tentative;
    bool ok = true;
    for (VmId id : host.vms()) {
      const VmSlot& vm = view.vm(id);
      bool consumes_cpu = vm.activity == VmActivity::kActive;
      bool as_partial = view.TrustedIdle(vm, now);
      uint64_t need = as_partial ? planned_ws.at(id) : vm.full_bytes;
      // Destination choice (§3.1): random among powered consolidation hosts
      // with room; spill onto sleeping hosts first-fit in a fixed order so
      // the plan wakes as few of them as possible. Active VMs additionally
      // need a CPU slot (assumption 1's 3x over-subscription cap).
      bool placed = false;
      auto try_segment = [&](size_t first, size_t count, bool randomize) {
        if (count == 0 || placed) {
          return;
        }
        size_t start = randomize ? first + view.planning_rng().NextBelow(count) : first;
        for (size_t k = 0; k < count; ++k) {
          size_t idx = first + (start - first + k) % count;
          Dest& d = dests[idx];
          if (d.available >= need && (!consumes_cpu || d.active_slots > 0)) {
            d.available -= need;
            if (consumes_cpu) {
              --d.active_slots;
            }
            tentative.push_back({idx, need, consumes_cpu});
            placement.push_back({id, d.host, as_partial, need});
            placed = true;
            return;
          }
        }
      };
      try_segment(0, powered_dests, /*randomize=*/true);
      try_segment(powered_dests, dests.size() - powered_dests, /*randomize=*/false);
      if (!placed) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      for (const Tentative& t : tentative) {
        dests[t.idx].available += t.bytes;
        if (t.active) {
          ++dests[t.idx].active_slots;
        }
      }
      continue;
    }
    for (const Tentative& t : tentative) {
      dests[t.idx].used = true;
    }
    plan.hosts_to_vacate.push_back(cand.host);
    plan.placements.push_back(std::move(placement));
  }

  // Net power effect (§3.1: consolidate only when it saves energy): a
  // vacated home stops drawing its loaded-host power and costs S3 plus the
  // memory server; every sleeping consolidation host we wake will run loaded.
  const HostPowerProfile& p = config.host_power;
  Watts loaded = p.Draw(HostPowerState::kPowered, config.vms_per_home);
  double saved_per_home =
      loaded - p.sleep_watts - config.memory_server_power.TotalWatts();
  int woken = 0;
  for (const Dest& d : dests) {
    if (d.sleeping && d.used) {
      ++woken;
    }
  }
  plan.newly_woken_consolidation_hosts = woken;
  plan.net_power_delta_watts =
      static_cast<double>(plan.hosts_to_vacate.size()) * saved_per_home -
      static_cast<double>(woken) * (loaded - p.sleep_watts);
  return plan;
}

void OasisGreedyStrategy::PlanVacations(const ClusterView& view, SimTime now, Actuator& act,
                                        PlanActions& actions) const {
  // Pre-sample the working set each idle VM would consolidate with, shared
  // by both plan variants so they compare like for like.
  std::unordered_map<VmId, uint64_t> planned_ws = PresampleWorkingSets(view, now);
  if (planned_ws.empty() && view.config().policy == ConsolidationPolicy::kOnlyPartial) {
    return;
  }
  VacatePlan conservative = BuildVacatePlan(view, now, /*allow_waking=*/false, planned_ws);
  VacatePlan aggressive = BuildVacatePlan(view, now, /*allow_waking=*/true, planned_ws);
  VacatePlan* best = &conservative;
  if (aggressive.net_power_delta_watts > conservative.net_power_delta_watts) {
    best = &aggressive;
  }
  // §3.1: consolidate only when it saves energy.
  if (best->net_power_delta_watts <= 0.0 || best->hosts_to_vacate.empty()) {
    return;
  }
  act.CommitVacatePlan(now, *best);
  actions.vacated_hosts += static_cast<int>(best->hosts_to_vacate.size());
  for (const auto& placements : best->placements) {
    actions.vacate_moves += static_cast<int>(placements.size());
  }
  actions.committed_power_delta_watts += best->net_power_delta_watts;
}

int OasisGreedyStrategy::DrainConsolidationHosts(const ClusterView& view, SimTime now,
                                                 Actuator& act) const {
  // §3.1's plan search minimizes the number of powered hosts, which includes
  // consolidation hosts: one whose guests are all partial VMs can push them
  // to its powered peers and sleep. Only descriptors and resident pages
  // move — the VMs' memory images stay on their homes' memory servers.
  //
  // Draining is incremental: each interval moves at most as many VMs as fit
  // into the interval (the moves serialize on the source's outbound path),
  // so a heavily loaded host empties over several intervals.
  const ClusterTimings& t = view.config().timings;
  size_t max_moves = static_cast<size_t>(view.config().planning_interval.seconds() /
                                         t.partial_migration.seconds());

  // The drain source: the least-occupied powered consolidation host whose
  // guests are all partial, provided its peers have room for all of it.
  HostId source_id = kNoHost;
  uint64_t best_reserved = 0;
  for (size_t h = 0; h < view.num_hosts(); ++h) {
    const ClusterHost& host = view.host(static_cast<HostId>(h));
    if (!host.IsConsolidationHost()) {
      continue;
    }
    if (!host.IsPowered() || !host.HasVms() || host.outbound_busy_until() > now) {
      continue;
    }
    bool all_partial = true;
    for (VmId vm_id : host.vms()) {
      const VmSlot& vm = view.vm(vm_id);
      if (vm.residency != VmResidency::kPartial || vm.migration_in_flight) {
        all_partial = false;
        break;
      }
    }
    if (!all_partial) {
      continue;
    }
    if (source_id == kNoHost || host.reserved_bytes() < best_reserved) {
      source_id = host.id();
      best_reserved = host.reserved_bytes();
    }
  }
  if (source_id == kNoHost) {
    return 0;
  }
  const ClusterHost& source = view.host(source_id);
  uint64_t peer_spare = 0;
  for (size_t h = 0; h < view.num_hosts(); ++h) {
    const ClusterHost& host = view.host(static_cast<HostId>(h));
    if (host.IsConsolidationHost() && host.id() != source_id && host.IsPowered()) {
      peer_spare += host.AvailableBytes();
    }
  }
  // Don't start (or continue) a drain that cannot complete; partially
  // drained hosts still burn full power.
  if (peer_spare < source.reserved_bytes() + source.reserved_bytes() / 8) {
    return 0;
  }

  std::vector<VmId> movable(source.vms().begin(), source.vms().end());
  size_t moved = 0;
  for (VmId vm_id : movable) {
    if (moved >= max_moves) {
      break;
    }
    const VmSlot& vm = view.vm(vm_id);
    HostId dest_id = kNoHost;
    for (size_t h = 0; h < view.num_hosts(); ++h) {
      const ClusterHost& host = view.host(static_cast<HostId>(h));
      if (host.IsConsolidationHost() && host.id() != source_id && host.IsPowered() &&
          host.CanFit(vm.ws_bytes)) {
        dest_id = host.id();
        break;
      }
    }
    if (dest_id == kNoHost) {
      break;
    }
    act.DrainMove(now, vm_id, dest_id);
    ++moved;
  }
  // The emptied host sleeps at the next sweep once its channel drains.
  return static_cast<int>(moved);
}

std::unique_ptr<ConsolidationStrategy> MakeOasisGreedyStrategy() {
  return std::make_unique<OasisGreedyStrategy>();
}

}  // namespace oasis
