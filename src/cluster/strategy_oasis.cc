#include "src/cluster/strategy_oasis.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/cluster/actuator.h"
#include "src/cluster/power_delta.h"
#include "src/common/rng.h"
#include "src/mem/working_set.h"

namespace oasis {
namespace {

// A divergence between the backends is a planner bug, and because every
// decision feeds the shared event queue and planning streams, the first one
// poisons everything downstream — so die loudly rather than keep simulating.
[[noreturn]] void VerifyDiverged(const char* pass, const std::string& detail) {
  std::fprintf(stderr,
               "[plan-verify] %s pass diverged between the full and incremental "
               "planners: %s\n",
               pass, detail.c_str());
  std::exit(2);
}

void CompareSwapGroups(const std::vector<std::pair<HostId, std::vector<VmId>>>& inc,
                       const std::vector<std::pair<HostId, std::vector<VmId>>>& full) {
  if (inc != full) {
    VerifyDiverged("swap", "incremental computed " + std::to_string(inc.size()) +
                               " group(s), full computed " + std::to_string(full.size()) +
                               " (or memberships differ)");
  }
}

void ComparePlans(const VacatePlan& inc, const VacatePlan& full) {
  if (inc.hosts_to_vacate != full.hosts_to_vacate) {
    VerifyDiverged("vacate", "hosts_to_vacate differ (incremental " +
                                 std::to_string(inc.hosts_to_vacate.size()) + " vs full " +
                                 std::to_string(full.hosts_to_vacate.size()) + ")");
  }
  if (inc.placements.size() != full.placements.size()) {
    VerifyDiverged("vacate", "placement group counts differ");
  }
  for (size_t i = 0; i < full.placements.size(); ++i) {
    const auto& a = inc.placements[i];
    const auto& b = full.placements[i];
    if (a.size() != b.size()) {
      VerifyDiverged("vacate",
                     "placement counts differ for host " +
                         std::to_string(full.hosts_to_vacate[i]));
    }
    for (size_t j = 0; j < b.size(); ++j) {
      if (a[j].vm != b[j].vm || a[j].dest != b[j].dest ||
          a[j].as_partial != b[j].as_partial || a[j].bytes != b[j].bytes) {
        VerifyDiverged("vacate", "placement for VM " + std::to_string(b[j].vm) +
                                     " differs (dest " + std::to_string(a[j].dest) +
                                     " vs " + std::to_string(b[j].dest) + ")");
      }
    }
  }
  // Both deltas come from the identical arithmetic on identical inputs, so
  // exact equality is the right comparison.
  if (inc.net_power_delta_watts != full.net_power_delta_watts ||
      inc.newly_woken_consolidation_hosts != full.newly_woken_consolidation_hosts) {
    VerifyDiverged("vacate", "power pricing differs (incremental " +
                                 std::to_string(inc.net_power_delta_watts) + " W vs full " +
                                 std::to_string(full.net_power_delta_watts) + " W)");
  }
}

}  // namespace

const char* PlanModeName(PlanMode mode) {
  switch (mode) {
    case PlanMode::kFull:
      return "full";
    case PlanMode::kIncremental:
      return "incremental";
    case PlanMode::kVerify:
      return "verify";
  }
  return "unknown";
}

PlanMode PlanModeFromEnv() {
  const char* env = std::getenv("OASIS_PLAN");
  if (env == nullptr || *env == '\0') {
    return PlanMode::kIncremental;
  }
  std::string value(env);
  if (value == "full") {
    return PlanMode::kFull;
  }
  if (value == "incremental") {
    return PlanMode::kIncremental;
  }
  if (value == "verify") {
    return PlanMode::kVerify;
  }
  std::fprintf(stderr, "unknown OASIS_PLAN mode \"%s\" (accepted: full|incremental|verify)\n",
               env);
  std::exit(2);
}

PlanActions OasisGreedyStrategy::PlanInterval(const ClusterView& view, SimTime now,
                                              Actuator& act) {
  PlanActions actions;
  const ClusterConfig& config = view.config();
  bool swaps_enabled = config.policy == ConsolidationPolicy::kFullToPartial ||
                       config.policy == ConsolidationPolicy::kNewHome;
  switch (mode_) {
    case PlanMode::kFull: {
      if (swaps_enabled) {
        ExecuteSwapGroups(ComputeSwapGroupsFull(view, now), now, act, actions);
      }
      MaybeCommitVacatePlan(now, act, actions, ComputeVacatePlanFull(view, now));
      actions.drain_moves += ExecuteDrain(view, now, act, SelectDrainSourceFull(view, now));
      break;
    }
    case PlanMode::kIncremental: {
      // Refresh before each pass: executing a pass mutates resident sets,
      // residencies and in-flight flags that the next pass's rows cover.
      if (swaps_enabled) {
        Refresh(view);
        ExecuteSwapGroups(ComputeSwapGroupsIncremental(view, now), now, act, actions);
      }
      Refresh(view);
      MaybeCommitVacatePlan(now, act, actions, ComputeVacatePlanIncremental(view, now));
      Refresh(view);
      actions.drain_moves +=
          ExecuteDrain(view, now, act, SelectDrainSourceIncremental(view, now));
      break;
    }
    case PlanMode::kVerify: {
      // Each pass: compute the incremental decision, rewind any stream
      // consumption, compute the full (authoritative) decision, compare,
      // then execute the full one. Computation is pure, so running both
      // against the same state is sound.
      if (swaps_enabled) {
        Refresh(view);
        SwapGroups inc = ComputeSwapGroupsIncremental(view, now);
        SwapGroups full = ComputeSwapGroupsFull(view, now);
        CompareSwapGroups(inc, full);
        ExecuteSwapGroups(full, now, act, actions);
      }
      Refresh(view);
      Rng rng_snapshot = *view.rng_state();
      WorkingSetSampler ws_snapshot = *view.ws_sampler_state();
      VacatePlan inc_plan = ComputeVacatePlanIncremental(view, now);
      *view.rng_state() = rng_snapshot;
      *view.ws_sampler_state() = ws_snapshot;
      VacatePlan full_plan = ComputeVacatePlanFull(view, now);
      ComparePlans(inc_plan, full_plan);
      MaybeCommitVacatePlan(now, act, actions, full_plan);
      Refresh(view);
      HostId inc_source = SelectDrainSourceIncremental(view, now);
      HostId full_source = SelectDrainSourceFull(view, now);
      if (inc_source != full_source) {
        VerifyDiverged("drain", "source selection differs (incremental " +
                                    std::to_string(inc_source) + " vs full " +
                                    std::to_string(full_source) + ")");
      }
      actions.drain_moves += ExecuteDrain(view, now, act, full_source);
      break;
    }
  }
  return actions;
}

// --- pass 1: FulltoPartial swaps ---------------------------------------------

OasisGreedyStrategy::SwapGroups OasisGreedyStrategy::ComputeSwapGroupsFull(
    const ClusterView& view, SimTime now) const {
  // Idle full VMs parked on consolidation hosts go home and come back as
  // partials, freeing most of their reservation (§3.2 FulltoPartial).
  std::map<HostId, std::vector<VmId>> by_home;
  for (size_t v = 0; v < view.num_vms(); ++v) {
    const VmSlot& vm = view.vm(static_cast<VmId>(v));
    if (vm.residency == VmResidency::kFullAtConsolidation && view.TrustedIdle(vm, now) &&
        !vm.migration_in_flight) {
      by_home[vm.home].push_back(vm.id);
    }
  }
  return SwapGroups(by_home.begin(), by_home.end());
}

OasisGreedyStrategy::SwapGroups OasisGreedyStrategy::ComputeSwapGroupsIncremental(
    const ClusterView& view, SimTime now) const {
  // Same scan, but homes whose full-at-consolidation count is zero are
  // skipped wholesale. The full scan walks VM ids ascending, and VM ids are
  // contiguous per home, so walking homes ascending and each home's VM list
  // ascending visits the same VMs in the same order; idleness trust and the
  // in-flight flag are read live either way.
  SwapGroups groups;
  int num_homes = view.config().num_home_hosts;
  for (HostId h = 0; h < static_cast<HostId>(num_homes); ++h) {
    if (fac_count_[h] == 0) {
      continue;
    }
    std::vector<VmId> group;
    for (VmId id : view.vms_of_home(h)) {
      const VmSlot& vm = view.vm(id);
      if (vm.residency == VmResidency::kFullAtConsolidation && view.TrustedIdle(vm, now) &&
          !vm.migration_in_flight) {
        group.push_back(id);
      }
    }
    if (!group.empty()) {
      groups.emplace_back(h, std::move(group));
    }
  }
  return groups;
}

void OasisGreedyStrategy::ExecuteSwapGroups(const SwapGroups& groups, SimTime now,
                                            Actuator& act, PlanActions& actions) const {
  for (const auto& [home_id, group] : groups) {
    act.FullToPartialSwapGroup(now, home_id, group);
    ++actions.full_to_partial_swap_groups;
    actions.swapped_vms += static_cast<int>(group.size());
  }
}

// --- pass 2: power-gated vacate planning -------------------------------------

bool OasisGreedyStrategy::HostEligibleForVacate(const ClusterView& view,
                                                const ClusterHost& host, SimTime now) const {
  if (!host.IsHomeHost() || !host.IsPowered() || !host.HasVms()) {
    return false;
  }
  // An S3-incapable home can sponsor guests but never sleeps itself, so
  // vacating it frees no power — it is never a candidate.
  if (!host.s3_capable()) {
    return false;
  }
  for (VmId id : host.vms()) {
    const VmSlot& vm = view.vm(id);
    if (vm.migration_in_flight || vm.location != host.id()) {
      return false;
    }
    // OnlyPartial never migrates VMs in full, so every VM must be (trusted)
    // idle before the host can be emptied.
    if (view.config().policy == ConsolidationPolicy::kOnlyPartial &&
        !view.TrustedIdle(vm, now)) {
      return false;
    }
  }
  return true;
}

std::unordered_map<VmId, uint64_t> OasisGreedyStrategy::PresampleWorkingSets(
    const ClusterView& view, SimTime now) const {
  std::unordered_map<VmId, uint64_t> planned_ws;
  for (size_t h = 0; h < view.num_hosts(); ++h) {
    const ClusterHost& host = view.host(static_cast<HostId>(h));
    if (!host.IsHomeHost() || !HostEligibleForVacate(view, host, now)) {
      continue;
    }
    for (VmId id : host.vms()) {
      if (view.TrustedIdle(view.vm(id), now)) {
        planned_ws[id] = view.SampleWorkingSet();
      }
    }
  }
  return planned_ws;
}

VacatePlan OasisGreedyStrategy::BuildVacatePlan(
    const ClusterView& view, SimTime now, bool allow_waking_consolidation_hosts,
    const std::unordered_map<VmId, uint64_t>& planned_ws) const {
  const ClusterConfig& config = view.config();
  // Candidate home hosts sorted by ascending total memory demand (§3.1).
  std::vector<Candidate> candidates;
  for (size_t h = 0; h < view.num_hosts(); ++h) {
    const ClusterHost& host = view.host(static_cast<HostId>(h));
    if (!host.IsHomeHost() || !HostEligibleForVacate(view, host, now)) {
      continue;
    }
    uint64_t demand = 0;
    for (VmId id : host.vms()) {
      const VmSlot& vm = view.vm(id);
      demand += view.TrustedIdle(vm, now) ? planned_ws.at(id) : vm.full_bytes;
    }
    candidates.push_back({host.id(), demand});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.demand < b.demand; });

  // Snapshot consolidation-host free space. Powered hosts come first so the
  // random destination choice only spills onto sleeping hosts (waking them)
  // when the powered ones are full.
  std::vector<Dest> dests;
  size_t powered_dests = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t h = 0; h < view.num_hosts(); ++h) {
      const ClusterHost& host = view.host(static_cast<HostId>(h));
      if (!host.IsConsolidationHost()) {
        continue;
      }
      int slots = config.MaxActiveVmsPerHost() - host.active_vms();
      bool awake = host.IsPowered() || host.power_state() == HostPowerState::kResuming;
      if (pass == 0 && awake) {
        dests.push_back({host.id(), host.AvailableBytes(), slots, false});
        ++powered_dests;
      } else if (pass == 1 && !awake && allow_waking_consolidation_hosts) {
        dests.push_back({host.id(), host.AvailableBytes(), slots, true});
      }
    }
  }

  // Flatten the sample map for the shared placement core (a VM id indexes
  // both); only trusted VMs' entries are ever read, and the map covers all
  // of them.
  std::vector<uint64_t> ws_flat(view.num_vms(), 0);
  for (const auto& [id, ws] : planned_ws) {
    ws_flat[id] = ws;
  }
  return PlaceAndPrice(view, now, candidates, std::move(dests), powered_dests, ws_flat);
}

VacatePlan OasisGreedyStrategy::PlaceAndPrice(const ClusterView& view, SimTime /*now*/,
                                              const std::vector<Candidate>& candidates,
                                              std::vector<Dest> dests, size_t powered_dests,
                                              const std::vector<uint64_t>& planned_ws) const {
  VacatePlan plan;
  for (const Candidate& cand : candidates) {
    const ClusterHost& host = view.host(cand.host);
    std::vector<VacatePlacement> placement;
    struct Tentative {
      size_t idx;
      uint64_t bytes;
      bool active;
    };
    std::vector<Tentative> tentative;
    bool ok = true;
    for (VmId id : host.vms()) {
      const VmSlot& vm = view.vm(id);
      bool consumes_cpu = vm.activity == VmActivity::kActive;
      // A nonzero planned working set marks the VM for partial placement.
      // Callers populate the table for exactly the VMs they intend to park
      // as partials (the greedy backends: trusted-idle residents; the
      // predictive pre-drain: any currently idle resident), and samples are
      // floored well above zero, so the encoding is unambiguous.
      bool as_partial = planned_ws[id] != 0;
      uint64_t need = as_partial ? planned_ws[id] : vm.full_bytes;
      // Destination choice (§3.1): random among powered consolidation hosts
      // with room; spill onto sleeping hosts first-fit in a fixed order so
      // the plan wakes as few of them as possible. Active VMs additionally
      // need a CPU slot (assumption 1's 3x over-subscription cap).
      bool placed = false;
      auto try_segment = [&](size_t first, size_t count, bool randomize) {
        if (count == 0 || placed) {
          return;
        }
        size_t start = randomize ? first + view.planning_rng().NextBelow(count) : first;
        for (size_t k = 0; k < count; ++k) {
          size_t idx = first + (start - first + k) % count;
          Dest& d = dests[idx];
          if (d.available >= need && (!consumes_cpu || d.active_slots > 0)) {
            d.available -= need;
            if (consumes_cpu) {
              --d.active_slots;
            }
            tentative.push_back({idx, need, consumes_cpu});
            placement.push_back({id, d.host, as_partial, need});
            placed = true;
            return;
          }
        }
      };
      try_segment(0, powered_dests, /*randomize=*/true);
      try_segment(powered_dests, dests.size() - powered_dests, /*randomize=*/false);
      if (!placed) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      for (const Tentative& t : tentative) {
        dests[t.idx].available += t.bytes;
        if (t.active) {
          ++dests[t.idx].active_slots;
        }
      }
      continue;
    }
    for (const Tentative& t : tentative) {
      dests[t.idx].used = true;
    }
    plan.hosts_to_vacate.push_back(cand.host);
    plan.placements.push_back(std::move(placement));
  }

  // Net power effect (§3.1: consolidate only when it saves energy), priced
  // per host profile: a vacated home stops drawing its *own* loaded power
  // and costs its own S3 draw plus the memory server; every sleeping
  // consolidation host we wake runs loaded at its own curve. The fold
  // buckets by profile class (power_delta.h), so the homogeneous default
  // reproduces the legacy single-profile arithmetic bit for bit.
  power_delta::DeltaAccumulator delta(view);
  for (HostId home : plan.hosts_to_vacate) {
    delta.AddVacatedHome(home);
  }
  for (const Dest& d : dests) {
    if (d.sleeping && d.used) {
      delta.AddWokenConsolidationHost(d.host);
    }
  }
  plan.newly_woken_consolidation_hosts = delta.total_woken();
  plan.net_power_delta_watts = delta.NetWatts();
  return plan;
}

VacatePlan OasisGreedyStrategy::ComputeVacatePlanFull(const ClusterView& view,
                                                      SimTime now) const {
  // Pre-sample the working set each idle VM would consolidate with, shared
  // by both plan variants so they compare like for like.
  std::unordered_map<VmId, uint64_t> planned_ws = PresampleWorkingSets(view, now);
  if (planned_ws.empty() && view.config().policy == ConsolidationPolicy::kOnlyPartial) {
    return VacatePlan{};
  }
  VacatePlan conservative = BuildVacatePlan(view, now, /*allow_waking=*/false, planned_ws);
  VacatePlan aggressive = BuildVacatePlan(view, now, /*allow_waking=*/true, planned_ws);
  if (aggressive.net_power_delta_watts > conservative.net_power_delta_watts) {
    return aggressive;
  }
  return conservative;
}

VacatePlan OasisGreedyStrategy::ComputeVacatePlanIncremental(const ClusterView& view,
                                                             SimTime now) {
  const ClusterConfig& config = view.config();
  bool only_partial = config.policy == ConsolidationPolicy::kOnlyPartial;
  // Fused eligibility + presample + demand scan, visiting eligible homes
  // ascending and each home's residents in ascending VM id — exactly the
  // full backend's presample order, so the sampler is drawn identically.
  // Eligibility reads the cached in-flight count; the full backend's
  // per-resident location check is vacuous here because residency and
  // location agree by invariant (cluster.location_matches_residency).
  planned_ws_.assign(view.num_vms(), 0);
  std::vector<Candidate> candidates;
  int num_homes = config.num_home_hosts;
  for (HostId h = 0; h < static_cast<HostId>(num_homes); ++h) {
    const ClusterHost& host = view.host(h);
    if (!host.IsPowered() || !host.HasVms() || !host.s3_capable() ||
        rows_[h].inflight_residents > 0) {
      continue;
    }
    if (only_partial) {
      bool all_trusted = true;
      for (VmId id : host.vms()) {
        if (!view.TrustedIdle(view.vm(id), now)) {
          all_trusted = false;
          break;
        }
      }
      if (!all_trusted) {
        continue;
      }
    }
    uint64_t demand = 0;
    for (VmId id : host.vms()) {
      const VmSlot& vm = view.vm(id);
      if (view.TrustedIdle(vm, now)) {
        uint64_t ws = view.SampleWorkingSet();
        planned_ws_[id] = ws;
        demand += ws;
      } else {
        demand += vm.full_bytes;
      }
    }
    candidates.push_back({h, demand});
  }
  // No candidates: both full variants would place nothing and draw nothing,
  // and the power gate rejects an empty plan, so the empty plan is exact.
  if (candidates.empty()) {
    return VacatePlan{};
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.demand < b.demand; });

  // One pristine destination table (consolidation hosts are the id-ascending
  // tail). The conservative variant sees only the powered prefix — the exact
  // table BuildVacatePlan(allow_waking=false) builds — and each variant
  // places into its own scratch copy, as the full backend's separate builds
  // do.
  std::vector<Dest> dests;
  size_t powered_dests = 0;
  size_t first_cons = static_cast<size_t>(num_homes);
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t h = first_cons; h < view.num_hosts(); ++h) {
      const ClusterHost& host = view.host(static_cast<HostId>(h));
      int slots = config.MaxActiveVmsPerHost() - host.active_vms();
      bool awake = host.IsPowered() || host.power_state() == HostPowerState::kResuming;
      if (pass == 0 && awake) {
        dests.push_back({host.id(), host.AvailableBytes(), slots, false});
        ++powered_dests;
      } else if (pass == 1 && !awake) {
        dests.push_back({host.id(), host.AvailableBytes(), slots, true});
      }
    }
  }
  std::vector<Dest> conservative_dests(dests.begin(),
                                       dests.begin() + static_cast<long>(powered_dests));
  VacatePlan conservative = PlaceAndPrice(view, now, candidates,
                                          std::move(conservative_dests), powered_dests,
                                          planned_ws_);
  VacatePlan aggressive =
      PlaceAndPrice(view, now, candidates, dests, powered_dests, planned_ws_);
  if (aggressive.net_power_delta_watts > conservative.net_power_delta_watts) {
    return aggressive;
  }
  return conservative;
}

void OasisGreedyStrategy::MaybeCommitVacatePlan(SimTime now, Actuator& act,
                                                PlanActions& actions,
                                                const VacatePlan& best) const {
  // §3.1: consolidate only when it saves energy.
  if (best.net_power_delta_watts <= 0.0 || best.hosts_to_vacate.empty()) {
    return;
  }
  act.CommitVacatePlan(now, best);
  actions.vacated_hosts += static_cast<int>(best.hosts_to_vacate.size());
  for (const auto& placements : best.placements) {
    actions.vacate_moves += static_cast<int>(placements.size());
  }
  actions.committed_power_delta_watts += best.net_power_delta_watts;
}

// --- pass 3: consolidation-host draining -------------------------------------

HostId OasisGreedyStrategy::SelectDrainSourceFull(const ClusterView& view,
                                                  SimTime now) const {
  // The drain source: the least-occupied powered consolidation host whose
  // guests are all partial, provided its peers have room for all of it.
  HostId source_id = kNoHost;
  uint64_t best_reserved = 0;
  for (size_t h = 0; h < view.num_hosts(); ++h) {
    const ClusterHost& host = view.host(static_cast<HostId>(h));
    if (!host.IsConsolidationHost()) {
      continue;
    }
    if (!host.IsPowered() || !host.HasVms() || host.outbound_busy_until() > now) {
      continue;
    }
    bool all_partial = true;
    for (VmId vm_id : host.vms()) {
      const VmSlot& vm = view.vm(vm_id);
      if (vm.residency != VmResidency::kPartial || vm.migration_in_flight) {
        all_partial = false;
        break;
      }
    }
    if (!all_partial) {
      continue;
    }
    if (source_id == kNoHost || host.reserved_bytes() < best_reserved) {
      source_id = host.id();
      best_reserved = host.reserved_bytes();
    }
  }
  return source_id;
}

HostId OasisGreedyStrategy::SelectDrainSourceIncremental(const ClusterView& view,
                                                         SimTime now) const {
  // The all-partial/none-in-flight resident walk collapses to two cached
  // counts; ties on reserved bytes keep the first (lowest-id) host in both
  // backends.
  HostId source_id = kNoHost;
  uint64_t best_reserved = 0;
  size_t first_cons = static_cast<size_t>(view.config().num_home_hosts);
  for (size_t h = first_cons; h < view.num_hosts(); ++h) {
    const ClusterHost& host = view.host(static_cast<HostId>(h));
    if (!host.IsPowered() || !host.HasVms() || host.outbound_busy_until() > now) {
      continue;
    }
    const HostRow& row = rows_[h];
    if (row.inflight_residents > 0 ||
        row.partial_residents != static_cast<int>(host.vms().size())) {
      continue;
    }
    if (source_id == kNoHost || host.reserved_bytes() < best_reserved) {
      source_id = host.id();
      best_reserved = host.reserved_bytes();
    }
  }
  return source_id;
}

int OasisGreedyStrategy::ExecuteDrain(const ClusterView& view, SimTime now, Actuator& act,
                                      HostId source_id) const {
  // §3.1's plan search minimizes the number of powered hosts, which includes
  // consolidation hosts: one whose guests are all partial VMs can push them
  // to its powered peers and sleep. Only descriptors and resident pages
  // move — the VMs' memory images stay on their homes' memory servers.
  //
  // Draining is incremental: each interval moves at most as many VMs as fit
  // into the interval (the moves serialize on the source's outbound path),
  // so a heavily loaded host empties over several intervals. Destination
  // scans stay live — each move mutates the cluster — and walk the
  // consolidation tail in id order, as the full-table scans did.
  if (source_id == kNoHost) {
    return 0;
  }
  const ClusterConfig& config = view.config();
  const ClusterTimings& t = config.timings;
  size_t max_moves = static_cast<size_t>(config.planning_interval.seconds() /
                                         t.partial_migration.seconds());
  const ClusterHost& source = view.host(source_id);
  size_t first_cons = static_cast<size_t>(config.num_home_hosts);
  uint64_t peer_spare = 0;
  for (size_t h = first_cons; h < view.num_hosts(); ++h) {
    const ClusterHost& host = view.host(static_cast<HostId>(h));
    if (host.id() != source_id && host.IsPowered()) {
      peer_spare += host.AvailableBytes();
    }
  }
  // Don't start (or continue) a drain that cannot complete; partially
  // drained hosts still burn full power.
  if (peer_spare < source.reserved_bytes() + source.reserved_bytes() / 8) {
    return 0;
  }

  std::vector<VmId> movable(source.vms().begin(), source.vms().end());
  size_t moved = 0;
  for (VmId vm_id : movable) {
    if (moved >= max_moves) {
      break;
    }
    const VmSlot& vm = view.vm(vm_id);
    HostId dest_id = kNoHost;
    for (size_t h = first_cons; h < view.num_hosts(); ++h) {
      const ClusterHost& host = view.host(static_cast<HostId>(h));
      if (host.id() != source_id && host.IsPowered() && host.CanFit(vm.ws_bytes)) {
        dest_id = host.id();
        break;
      }
    }
    if (dest_id == kNoHost) {
      break;
    }
    act.DrainMove(now, vm_id, dest_id);
    ++moved;
  }
  // The emptied host sleeps at the next sweep once its channel drains.
  return static_cast<int>(moved);
}

// --- incremental cache maintenance -------------------------------------------

void OasisGreedyStrategy::RebuildRow(const ClusterView& view, HostId h) {
  HostRow row;
  for (VmId id : view.host(h).vms()) {
    const VmSlot& vm = view.vm(id);
    if (vm.migration_in_flight) {
      ++row.inflight_residents;
    }
    if (vm.residency == VmResidency::kPartial) {
      ++row.partial_residents;
    }
  }
  rows_[h] = row;
}

void OasisGreedyStrategy::Refresh(const ClusterView& view) {
  DirtyTracker& dirty = view.dirty_tracker();
  size_t num_hosts = view.num_hosts();
  size_t num_vms = view.num_vms();
  if (!primed_ || rows_.size() != num_hosts || is_fac_.size() != num_vms) {
    // First use (or a different cluster behind the same strategy instance):
    // full rebuild, and any accumulated marks are thereby covered.
    rows_.assign(num_hosts, HostRow{});
    is_fac_.assign(num_vms, 0);
    fac_count_.assign(num_hosts, 0);
    for (size_t v = 0; v < num_vms; ++v) {
      const VmSlot& vm = view.vm(static_cast<VmId>(v));
      if (vm.residency == VmResidency::kFullAtConsolidation) {
        is_fac_[v] = 1;
        ++fac_count_[vm.home];
      }
    }
    for (size_t h = 0; h < num_hosts; ++h) {
      RebuildRow(view, static_cast<HostId>(h));
    }
    primed_ = true;
    dirty.Clear();
    return;
  }
  for (VmId v : dirty.dirty_vms()) {
    const VmSlot& vm = view.vm(v);
    uint8_t fac = vm.residency == VmResidency::kFullAtConsolidation ? 1 : 0;
    if (fac != is_fac_[v]) {
      fac_count_[vm.home] += fac ? 1 : -1;
      is_fac_[v] = fac;
    }
  }
  for (HostId h : dirty.dirty_hosts()) {
    RebuildRow(view, h);
  }
  dirty.Clear();
}

std::unique_ptr<ConsolidationStrategy> MakeOasisGreedyStrategy() {
  return std::make_unique<OasisGreedyStrategy>();
}

}  // namespace oasis
