// "first-fit-decreasing": classic static bin-packing as a consolidation
// policy, for ablation against the paper's greedy algorithm.
//
// Once per interval it gathers every home whose VMs are ALL trusted-idle
// (it never migrates a VM in full, like OnlyPartial), sorts the sampled
// working sets of all their VMs decreasing, and first-fits them onto the
// consolidation hosts in id order. Packing is all-or-nothing per home: a
// home with any unplaceable VM is dropped from the plan. Dropped homes'
// bin space is deliberately not refunded — this is a single-pass packer,
// and under-counting free space only makes the surviving placements more
// feasible, never less. The whole plan then stands behind the same §3.1
// net-power gate the greedy strategy uses.
//
// It performs no full-to-partial swaps and no draining, so compared with
// "oasis-greedy" it consolidates less often but with tighter packings.

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "src/cluster/actuator.h"
#include "src/cluster/power_delta.h"
#include "src/cluster/strategy.h"

namespace oasis {
namespace {

class FirstFitDecreasingStrategy : public ConsolidationStrategy {
 public:
  const char* name() const override { return "first-fit-decreasing"; }
  StrategyTraits traits() const override {
    return {/*has_power_gate=*/true, /*supports_plan_modes=*/false};
  }

  PlanActions PlanInterval(const ClusterView& view, SimTime now, Actuator& act) override {
    PlanActions actions;

    // Eligible homes: powered, S3-capable (a home that cannot sleep saves
    // nothing by being packed away), occupied, every resident settled here
    // and trusted-idle. Sample each VM's working set in deterministic order
    // (homes by id, residents in set order) as we go.
    struct Item {
      VmId vm;
      HostId home;
      uint64_t ws;
    };
    std::vector<HostId> homes;
    std::vector<Item> items;
    for (size_t h = 0; h < view.num_hosts(); ++h) {
      const ClusterHost& host = view.host(static_cast<HostId>(h));
      if (!host.IsHomeHost() || !host.IsPowered() || !host.HasVms() ||
          !host.s3_capable()) {
        continue;
      }
      bool eligible = true;
      for (VmId id : host.vms()) {
        const VmSlot& vm = view.vm(id);
        if (vm.migration_in_flight || vm.location != host.id() ||
            !view.TrustedIdle(vm, now)) {
          eligible = false;
          break;
        }
      }
      if (!eligible) {
        continue;
      }
      homes.push_back(host.id());
      for (VmId id : host.vms()) {
        items.push_back({id, host.id(), view.SampleWorkingSet()});
      }
    }
    if (homes.empty()) {
      return actions;
    }
    std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
      return a.ws != b.ws ? a.ws > b.ws : a.vm < b.vm;
    });

    // Bins: consolidation hosts in id order with their live free space.
    // Every item is idle, so CPU slots never constrain the packing.
    struct Bin {
      HostId host;
      uint64_t available;
      bool sleeping;
      bool used = false;
    };
    std::vector<Bin> bins;
    for (size_t h = 0; h < view.num_hosts(); ++h) {
      const ClusterHost& host = view.host(static_cast<HostId>(h));
      if (!host.IsConsolidationHost()) {
        continue;
      }
      bool awake = host.IsPowered() || host.power_state() == HostPowerState::kResuming;
      bins.push_back({host.id(), host.AvailableBytes(), !awake});
    }

    std::unordered_map<VmId, HostId> dest_of;
    std::unordered_map<HostId, bool> home_complete;
    for (HostId home : homes) {
      home_complete[home] = true;
    }
    for (const Item& item : items) {
      bool placed = false;
      for (Bin& bin : bins) {
        if (bin.available >= item.ws) {
          bin.available -= item.ws;
          bin.used = true;
          dest_of[item.vm] = bin.host;
          placed = true;
          break;
        }
      }
      if (!placed) {
        home_complete[item.home] = false;
      }
    }

    // Assemble the surviving (fully placed) homes, then re-derive which bins
    // the survivors actually wake: a bin used only by dropped homes costs
    // nothing.
    VacatePlan plan;
    std::unordered_map<HostId, bool> bin_woken_by_survivor;
    for (HostId home : homes) {
      if (!home_complete[home]) {
        continue;
      }
      std::vector<VacatePlacement> placements;
      for (VmId id : view.host(home).vms()) {
        auto it = dest_of.find(id);
        if (it == dest_of.end()) {
          continue;  // packed before its home was dropped; unreachable here
        }
        placements.push_back({id, it->second, /*as_partial=*/true,
                              /*bytes=*/0});
      }
      plan.hosts_to_vacate.push_back(home);
      plan.placements.push_back(std::move(placements));
    }
    // Fill in the sampled bytes (the item list, not the placement walk,
    // holds them) and count woken bins among surviving destinations.
    std::unordered_map<VmId, uint64_t> ws_of;
    for (const Item& item : items) {
      ws_of[item.vm] = item.ws;
    }
    for (auto& placements : plan.placements) {
      for (VacatePlacement& p : placements) {
        p.bytes = ws_of.at(p.vm);
        for (const Bin& bin : bins) {
          if (bin.host == p.dest && bin.sleeping) {
            bin_woken_by_survivor[p.dest] = true;
          }
        }
      }
    }
    plan.newly_woken_consolidation_hosts =
        static_cast<int>(bin_woken_by_survivor.size());

    // The same §3.1 gate as the greedy strategy, priced per host profile:
    // commit only when the plan saves power net of the consolidation hosts
    // it wakes (power_delta.h keeps the homogeneous fold bit-identical to
    // the old single-profile arithmetic).
    power_delta::DeltaAccumulator delta(view);
    for (HostId home : plan.hosts_to_vacate) {
      delta.AddVacatedHome(home);
    }
    for (const auto& woken : bin_woken_by_survivor) {
      delta.AddWokenConsolidationHost(woken.first);
    }
    plan.net_power_delta_watts = delta.NetWatts();
    if (plan.net_power_delta_watts <= 0.0 || plan.hosts_to_vacate.empty()) {
      return actions;
    }
    act.CommitVacatePlan(now, plan);
    actions.vacated_hosts += static_cast<int>(plan.hosts_to_vacate.size());
    for (const auto& placements : plan.placements) {
      actions.vacate_moves += static_cast<int>(placements.size());
    }
    actions.committed_power_delta_watts += plan.net_power_delta_watts;
    return actions;
  }
};

}  // namespace

std::unique_ptr<ConsolidationStrategy> MakeFirstFitDecreasingStrategy() {
  return std::make_unique<FirstFitDecreasingStrategy>();
}

}  // namespace oasis
