// Everything the §5 evaluation measures, collected during a cluster run.

#ifndef OASIS_SRC_CLUSTER_METRICS_H_
#define OASIS_SRC_CLUSTER_METRICS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/fault/fault.h"
#include "src/net/traffic.h"

namespace oasis {

// One per planning interval: the Fig 7 timeline.
struct IntervalSnapshot {
  SimTime time;
  int active_vms = 0;
  int powered_hosts = 0;          // home + consolidation, fully powered
  int powered_home_hosts = 0;
  int powered_consolidation_hosts = 0;
  int partial_vms = 0;
  int full_at_consolidation_vms = 0;
};

struct ClusterMetrics {
  // Energy, integrated over the whole run.
  Joules home_host_energy = 0.0;
  Joules consolidation_host_energy = 0.0;
  Joules memory_server_energy = 0.0;
  Joules baseline_energy = 0.0;  // all home hosts left powered, same VM activity

  Joules TotalEnergy() const {
    return home_host_energy + consolidation_host_energy + memory_server_energy;
  }
  // The headline number: savings relative to the unconsolidated baseline.
  double EnergySavings() const {
    return baseline_energy > 0.0 ? 1.0 - TotalEnergy() / baseline_energy : 0.0;
  }

  // Fig 7: per-interval cluster state.
  std::vector<IntervalSnapshot> timeline;

  // Fig 9: VMs per powered consolidation host, sampled every interval.
  EmpiricalCdf consolidation_ratio;

  // Fig 11: user-perceived idle->active transition delays (seconds).
  EmpiricalCdf transition_delay_s;

  // Fig 10: transfer volumes by category.
  TrafficAccounting traffic;

  // Heterogeneous fleets: per-profile-class breakdown, indexed by
  // ClusterConfig profile class (0 = the host_power template, k >= 1 the
  // k-th FleetMix segment). Filled once at the end of a run from the hosts'
  // own ledgers; both have NumProfileClasses() entries.
  std::vector<int> hosts_by_class;
  std::vector<double> host_sleep_seconds_by_class;

  // Operational counters.
  uint64_t full_migrations = 0;
  uint64_t partial_migrations = 0;
  uint64_t reintegrations = 0;
  uint64_t host_sleeps = 0;
  uint64_t host_wakes = 0;
  uint64_t capacity_exhaustions = 0;
  uint64_t full_to_partial_swaps = 0;
  uint64_t new_home_moves = 0;

  // Fault-injection accounting (all zero when FaultConfig is disabled).
  uint64_t faults_injected = 0;
  uint64_t faults_recovered = 0;
  uint64_t crash_vm_restarts = 0;  // VMs restarted at home after a host crash

  // Per-class breakdown of the injector's accounting, indexed by FaultClass.
  // Copied out of the manager at the end of a run so reports built from
  // SimulationResult (e.g. chaos_day via the experiment runner) don't need
  // the manager alive.
  std::array<uint64_t, kNumFaultClasses> fault_injected_by_class{};
  std::array<uint64_t, kNumFaultClasses> fault_recovered_by_class{};
  std::array<uint64_t, kNumFaultClasses> fault_skipped_by_class{};

  // Total simulator events dispatched during the run (perf accounting for
  // bench/perf_sweep's events/sec).
  uint64_t events_dispatched = 0;
};

}  // namespace oasis

#endif  // OASIS_SRC_CLUSTER_METRICS_H_
