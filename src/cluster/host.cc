#include "src/cluster/host.h"

#include <algorithm>
#include <cassert>

#include "src/check/check.h"
#include "src/common/log.h"

namespace oasis {

ClusterHost::ClusterHost(HostId id, HostRole role, const ClusterConfig& config,
                         bool initially_powered)
    : ClusterHost(id, role, config, config.HostProfileFor(id), initially_powered) {}

ClusterHost::ClusterHost(HostId id, HostRole role, const ClusterConfig& config,
                         const HostProfile& profile, bool initially_powered)
    : id_(id),
      role_(role),
      power_(profile.power),
      s3_capable_(profile.s3_capable),
      profile_class_(config.ProfileClassOf(id)),
      ms_watts_(config.memory_server_power.TotalWatts()),
      capacity_bytes_(static_cast<uint64_t>(static_cast<double>(config.host_memory_bytes) *
                                            config.memory_overcommit *
                                            profile.capacity_scale)),
      // An S3-incapable host has no sleeping state to start in.
      state_(initially_powered || !profile.s3_capable ? HostPowerState::kPowered
                                                      : HostPowerState::kSleeping),
      meter_(SimTime::Zero(), power_.Draw(state_, 0)),
      ms_meter_(SimTime::Zero(), 0.0),
      ledger_(SimTime::Zero(), state_) {
  ledger_.set_trace_host(static_cast<int64_t>(id));
}

void ClusterHost::Reserve(uint64_t bytes) {
  assert(bytes <= AvailableBytes() && "host memory over-reserved");
  reserved_bytes_ += bytes;
}

void ClusterHost::Release(uint64_t bytes) {
  assert(bytes <= reserved_bytes_ && "releasing more than reserved");
  reserved_bytes_ -= bytes;
}

void ClusterHost::AddVm(SimTime now, VmId vm) {
  vms_.insert(vm);
  meter_.SetDraw(now, CurrentDraw());
  if (dirty_ != nullptr) {
    dirty_->MarkHost(id_);
  }
}

void ClusterHost::RemoveVm(SimTime now, VmId vm) {
  vms_.erase(vm);
  meter_.SetDraw(now, CurrentDraw());
  if (dirty_ != nullptr) {
    dirty_->MarkHost(id_);
  }
}

void ClusterHost::SetActiveVms(SimTime now, int n) {
  assert(n >= 0);
  active_vms_ = n;
  meter_.SetDraw(now, CurrentDraw());
}

Watts ClusterHost::CurrentDraw() const {
  return power_.Draw(state_, static_cast<int>(vms_.size()));
}

void ClusterHost::Transition(SimTime now, HostPowerState next) {
  if (next == HostPowerState::kSuspending && !s3_capable_) {
    if (check::InvariantChecker* c = check::InvariantChecker::IfEnabled()) {
      c->Report("power.s3_on_incapable_host", now,
                "host " + std::to_string(id_) +
                    " entered kSuspending but its profile has s3_capable=false");
    }
  }
  state_ = next;
  ledger_.Transition(now, next);
  meter_.SetDraw(now, CurrentDraw());
}

void ClusterHost::RequestWake(Simulator& sim, std::function<void(SimTime)> on_powered) {
  switch (state_) {
    case HostPowerState::kPowered:
      on_powered(sim.now());
      return;
    case HostPowerState::kResuming:
      wake_waiters_.push_back(std::move(on_powered));
      return;
    case HostPowerState::kSuspending:
      // The S3 entry cannot abort; the wake fires right after it completes.
      wake_after_suspend_ = true;
      wake_waiters_.push_back(std::move(on_powered));
      return;
    case HostPowerState::kSleeping:
      break;
  }
  wake_waiters_.push_back(std::move(on_powered));
  Transition(sim.now(), HostPowerState::kResuming);
  uint64_t epoch = ++transition_epoch_;
  sim.ScheduleAfter(power_.resume_latency, [this, &sim, epoch]() {
    if (transition_epoch_ != epoch || state_ != HostPowerState::kResuming) {
      return;
    }
    Transition(sim.now(), HostPowerState::kPowered);
    auto waiters = std::move(wake_waiters_);
    wake_waiters_.clear();
    for (auto& w : waiters) {
      w(sim.now());
    }
  });
}

void ClusterHost::RequestSleep(Simulator& sim, std::function<void(SimTime)> on_asleep) {
  if (state_ != HostPowerState::kPowered) {
    return;
  }
  assert(active_vms_ == 0 && "host with active VMs must never sleep");
  Transition(sim.now(), HostPowerState::kSuspending);
  uint64_t epoch = ++transition_epoch_;
  sleep_waiter_ = std::move(on_asleep);
  sim.ScheduleAfter(power_.suspend_latency, [this, &sim, epoch]() {
    if (transition_epoch_ != epoch || state_ != HostPowerState::kSuspending) {
      return;
    }
    Transition(sim.now(), HostPowerState::kSleeping);
    std::function<void(SimTime)> on_asleep = std::move(sleep_waiter_);
    sleep_waiter_ = nullptr;
    if (on_asleep && !wake_after_suspend_) {
      on_asleep(sim.now());
    }
    if (wake_after_suspend_) {
      wake_after_suspend_ = false;
      // Re-enter the wake path for the queued waiters.
      auto waiters = std::move(wake_waiters_);
      wake_waiters_.clear();
      for (auto& w : waiters) {
        RequestWake(sim, std::move(w));
      }
    }
  });
}

void ClusterHost::Crash(SimTime now) {
  assert(vms_.empty() && "crash recovery must relocate resident VMs first");
  assert(active_vms_ == 0);
  ++transition_epoch_;  // invalidate any in-flight suspend/resume completion
  wake_after_suspend_ = false;
  wake_waiters_.clear();
  sleep_waiter_ = nullptr;
  if (state_ != HostPowerState::kSleeping) {
    Transition(now, HostPowerState::kSleeping);
  }
  SetMemoryServerPowered(now, false);
}

SimTime ClusterHost::EarliestPoweredTime(SimTime now) const {
  switch (state_) {
    case HostPowerState::kPowered:
      return now;
    case HostPowerState::kResuming:
    case HostPowerState::kSleeping:
      return now + power_.resume_latency;
    case HostPowerState::kSuspending:
      return now + power_.suspend_latency + power_.resume_latency;
  }
  return now;
}

SimTime ClusterHost::EnqueueOutboundMigration(SimTime now, SimTime duration) {
  SimTime start = std::max(now, outbound_busy_until_);
  outbound_busy_until_ = start + duration;
  return outbound_busy_until_;
}

SimTime ClusterHost::EnqueueInboundTransfer(SimTime now, SimTime duration) {
  SimTime start = std::max(now, inbound_busy_until_);
  inbound_busy_until_ = start + duration;
  return inbound_busy_until_;
}

void ClusterHost::SetMemoryServerPowered(SimTime now, bool on) {
  if (ms_powered_ == on) {
    return;
  }
  ms_powered_ = on;
  ms_meter_.SetDraw(now, on ? ms_watts_ : 0.0);
}

Joules ClusterHost::HostEnergy(SimTime now) {
  meter_.Advance(now);
  return meter_.total_joules();
}

Joules ClusterHost::MemoryServerEnergy(SimTime now) {
  ms_meter_.Advance(now);
  return ms_meter_.total_joules();
}

}  // namespace oasis
