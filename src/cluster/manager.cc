#include "src/cluster/manager.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <string>
#include <vector>

#include "src/check/check.h"
#include "src/cluster/invariants.h"
#include "src/common/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace oasis {

ClusterManager::ClusterManager(const ClusterConfig& config, TraceSet trace,
                               obs::RunContext* run_context)
    : config_(config),
      trace_(std::move(trace)),
      run_context_(run_context),
      sim_(run_context),
      rng_(config.seed),
      ws_sampler_(config.working_set, config.seed ^ 0x5EED5EEDull),
      fault_(config.fault, config.seed ^ 0xFA0175EEDull),
      strategy_(MakeStrategy(config.strategy_name)),
      act_(config_, sim_, rng_, ws_sampler_, fault_, state_, metrics_) {
  assert(!trace_.empty() && "cluster needs at least one user-day");
  Status valid = config_.Validate();
  if (!valid.ok()) {
    OASIS_LOG(kError) << "invalid cluster config: " << valid.ToString();
  }
  assert(valid.ok());
  assert(strategy_ != nullptr && "Validate() guarantees a registered strategy_name");
  // Hosts: homes first, then consolidation hosts (asleep by default, §3.1).
  for (int h = 0; h < config_.num_home_hosts; ++h) {
    state_.hosts.push_back(std::make_unique<ClusterHost>(
        static_cast<HostId>(h), HostRole::kHome, config_, /*initially_powered=*/true));
  }
  for (int c = 0; c < config_.num_consolidation_hosts; ++c) {
    state_.hosts.push_back(std::make_unique<ClusterHost>(
        static_cast<HostId>(config_.num_home_hosts + c), HostRole::kConsolidation, config_,
        /*initially_powered=*/false));
  }
  // VMs: vms_per_home per home host; activity from trace interval 0.
  int total_vms = config_.TotalVms();
  state_.vms.reserve(static_cast<size_t>(total_vms));
  state_.vm_ever_uploaded.assign(static_cast<size_t>(total_vms), false);
  state_.vms_by_home.assign(state_.hosts.size(), {});
  for (int v = 0; v < total_vms; ++v) {
    VmSlot slot;
    slot.id = static_cast<VmId>(v);
    slot.home = static_cast<HostId>(v / config_.vms_per_home);
    slot.location = slot.home;
    slot.full_bytes = config_.vm_memory_bytes;
    slot.activity = trace_[static_cast<size_t>(v) % trace_.size()].IsActive(0)
                        ? VmActivity::kActive
                        : VmActivity::kIdle;
    slot.residency = VmResidency::kFullAtHome;
    state_.vms.push_back(slot);
    state_.vms_by_home[slot.home].push_back(slot.id);
    ClusterHost& home = *state_.hosts[slot.home];
    home.AddVm(SimTime::Zero(), slot.id);
    home.Reserve(slot.full_bytes);
    if (slot.activity == VmActivity::kActive) {
      home.SetActiveVms(SimTime::Zero(), home.active_vms() + 1);
    }
  }
  state_.pending_wake_powered_at.assign(state_.hosts.size(), SimTime::Zero());
  state_.partials_homed.assign(state_.hosts.size(), 0);
  // Size the planner change log and wire host self-marking only now:
  // construction-time marks would be redundant with the planner's first
  // refresh, which is always a full rebuild.
  state_.dirty.Reset(state_.hosts.size(), state_.vms.size());
  for (const auto& host : state_.hosts) {
    host->set_dirty_tracker(&state_.dirty);
  }
}

ClusterMetrics ClusterManager::Run() {
  // While the run executes, every instrumentation site below this frame —
  // hosts, migrations, RPC bus, memory servers, the fault injector —
  // resolves to the run-local collectors. Without a context of our own the
  // thread's installed context (or the globals) stays in effect.
  std::optional<obs::RunContext::Scope> obs_scope;
  if (run_context_ != nullptr) {
    obs_scope.emplace(run_context_);
  }
  // Plans fire every planning_interval (§3.1's configurable knob); each tick
  // reads the activity trace at its own 5-minute resolution.
  SimTime end = SimTime::Hours(24.0);
  int ticks = static_cast<int>(end / config_.planning_interval);
  for (int t = 0; t < ticks; ++t) {
    SimTime when = config_.planning_interval * t;
    int interval = std::min(kIntervalsPerDay - 1,
                            static_cast<int>(when.seconds()) / kTraceIntervalSeconds);
    sim_.ScheduleAt(when, [this, interval]() { OnInterval(sim_.now(), interval); });
  }
  // The pre-sampled fault schedule rides the same event queue, so a fault
  // landing between planning rounds interleaves with migrations exactly as
  // a real failure would.
  if (fault_.enabled()) {
    for (const ScheduledFault& event : fault_.plan().events) {
      if (event.at > end) {
        continue;
      }
      ScheduledFault ev = event;
      sim_.ScheduleAt(ev.at, [this, ev]() { act_.ApplyScheduledFault(sim_.now(), ev); });
    }
  }
  sim_.RunUntil(end);
  act_.AccrueEnergy(end);
  if (check::InvariantChecker* c = check::InvariantChecker::IfEnabled()) {
    CheckClusterInvariants(*this, end, *c);
  }
  metrics_.baseline_energy = BaselineEnergy(config_, trace_);
  metrics_.hosts_by_class.assign(static_cast<size_t>(config_.NumProfileClasses()), 0);
  metrics_.host_sleep_seconds_by_class.assign(
      static_cast<size_t>(config_.NumProfileClasses()), 0.0);
  for (const auto& host : state_.hosts) {
    size_t cls = static_cast<size_t>(host->profile_class());
    ++metrics_.hosts_by_class[cls];
    metrics_.host_sleep_seconds_by_class[cls] +=
        host->ledger().TimeInAt(HostPowerState::kSleeping, end).seconds();
  }
  metrics_.faults_injected = fault_.TotalInjected();
  metrics_.faults_recovered = fault_.TotalRecovered();
  for (int c = 0; c < kNumFaultClasses; ++c) {
    FaultClass fault = static_cast<FaultClass>(c);
    metrics_.fault_injected_by_class[c] = fault_.injected(fault);
    metrics_.fault_recovered_by_class[c] = fault_.recovered(fault);
    metrics_.fault_skipped_by_class[c] = fault_.skipped(fault);
  }
  metrics_.events_dispatched = sim_.events_dispatched();
  return metrics_;
}

Joules ClusterManager::BaselineEnergy(const ClusterConfig& config, const TraceSet& trace) {
  // Every home host stays powered all day running its own VMs (§5.3's
  // normalization). The draw saturates with the resident VM count, so the
  // baseline is flat regardless of user activity. On a mixed fleet each
  // home is billed at its own generation's loaded draw; the per-class fold
  // reduces to the legacy single product on the homogeneous default.
  (void)trace;
  std::vector<int> homes_in_class(config.NumProfileClasses(), 0);
  for (int h = 0; h < config.num_home_hosts; ++h) {
    ++homes_in_class[config.ProfileClassOf(static_cast<HostId>(h))];
  }
  Watts total = 0.0;
  for (int cls = 0; cls < config.NumProfileClasses(); ++cls) {
    if (homes_in_class[cls] == 0) {
      continue;
    }
    const HostProfile profile = config.ResolvedProfile(cls);
    total += profile.power.Draw(HostPowerState::kPowered, config.vms_per_home) *
             homes_in_class[cls];
  }
  return EnergyOver(total, SimTime::Hours(24.0));
}

void ClusterManager::OnInterval(SimTime now, int interval) {
  OASIS_CLOG(kDebug, "cluster") << "planning round " << interval;
  UpdateActivities(now, interval);
  act_.PartialVmUpkeep(now);
  PlanActions actions = strategy_->PlanInterval(View(), now, act_);
  act_.SleepIdleConsolidationHosts(now);
  // Sweep home hosts that drained since the last interval.
  for (const auto& host : state_.hosts) {
    if (host->IsHomeHost()) {
      act_.MaybeSleepHomeHost(now, host->id());
    }
  }
  RecordSnapshot(now, interval);
  if (check::InvariantChecker* c = check::InvariantChecker::IfEnabled()) {
    // The conservation walk runs after every planning round, so a violation
    // is reported within one interval of the step that introduced it.
    CheckClusterInvariants(*this, now, *c);
  }
  // All the work above happens at one simulated instant; the round still
  // gets a span so Perfetto shows where each burst of migrations came from.
  if (obs::Tracer* t = obs::Tracer::IfEnabled()) {
    t->Complete("ctrl", "planning_round", now, now);
    // The strategy's executed-action record is observability-only: it never
    // feeds ClusterMetrics, so enabling it cannot perturb pinned outputs.
    t->Instant("ctrl", "policy_actions", now,
               obs::TraceArgs{static_cast<int64_t>(actions.vacated_hosts),
                              static_cast<int64_t>(actions.vacate_moves),
                              static_cast<int64_t>(actions.drain_moves)});
  }
  if (obs::MetricsRegistry* m = obs::MetricsRegistry::IfEnabled()) {
    m->counter("cluster.planning_rounds")->Increment();
    std::string prefix = std::string("cluster.policy.") + strategy_->name();
    m->counter(prefix + ".vacated_hosts")
        ->Increment(static_cast<uint64_t>(actions.vacated_hosts));
    m->counter(prefix + ".vacate_moves")
        ->Increment(static_cast<uint64_t>(actions.vacate_moves));
    m->counter(prefix + ".drain_moves")
        ->Increment(static_cast<uint64_t>(actions.drain_moves));
    m->counter(prefix + ".swapped_vms")
        ->Increment(static_cast<uint64_t>(actions.swapped_vms));
    m->counter(prefix + ".prewoken_hosts")
        ->Increment(static_cast<uint64_t>(actions.prewoken_hosts));
  }
}

void ClusterManager::UpdateActivities(SimTime now, int interval) {
  for (VmSlot& vm : state_.vms) {
    bool should_be_active =
        trace_[vm.id % trace_.size()].IsActive(interval);
    bool is_active = vm.activity == VmActivity::kActive;
    if (should_be_active == is_active) {
      continue;
    }
    if (should_be_active) {
      vm.activity = VmActivity::kActive;
      vm.activation_time = now;
      act_.AdjustActiveCount(now, vm.location, +1);
      if (obs::Tracer* t = obs::Tracer::IfEnabled()) {
        t->Instant("ctrl", "vm_activation", now,
                   obs::TraceArgs{static_cast<int64_t>(vm.location),
                                  static_cast<int64_t>(vm.id)});
      }
      act_.HandleActivation(now, vm.id, now);
    } else {
      vm.activity = VmActivity::kIdle;
      vm.idle_since = now;
      act_.AdjustActiveCount(now, vm.location, -1);
    }
  }
}

void ClusterManager::RecordSnapshot(SimTime now, int interval) {
  (void)interval;
  IntervalSnapshot snap;
  snap.time = now;
  for (const VmSlot& vm : state_.vms) {
    if (vm.activity == VmActivity::kActive) {
      ++snap.active_vms;
    }
    if (vm.residency == VmResidency::kPartial) {
      ++snap.partial_vms;
    }
    if (vm.residency == VmResidency::kFullAtConsolidation) {
      ++snap.full_at_consolidation_vms;
    }
  }
  for (const auto& host : state_.hosts) {
    if (!host->IsPowered()) {
      continue;
    }
    ++snap.powered_hosts;
    if (host->IsHomeHost()) {
      ++snap.powered_home_hosts;
    } else {
      ++snap.powered_consolidation_hosts;
      metrics_.consolidation_ratio.Add(static_cast<double>(host->vms().size()));
    }
  }
  metrics_.timeline.push_back(snap);
}

}  // namespace oasis
