// The Oasis cluster manager (§3) driving a trace-driven simulated day (§5).
//
// The manager is a thin orchestrator over three layers (DESIGN.md,
// "Control-plane layering"):
//
//   ClusterView            what strategies read    (src/cluster/view.h)
//   ConsolidationStrategy  decides, per interval   (src/cluster/strategy.h)
//   Actuator               all mechanism/mutation  (src/cluster/actuator.h)
//
// Every planning interval (5 minutes) the manager:
//   1. applies the activity trace to all VMs, handing idle->active
//      transitions to the actuator (in-place conversion to a full VM,
//      NewHome moves, or the Default wake-home-and-return-all fallback);
//   2. runs per-partial-VM upkeep: on-demand fetch traffic, dirty-state
//      growth, and working-set growth (which can exhaust a consolidation
//      host and force a return);
//   3. runs the configured consolidation strategy (config.strategy_name;
//      the default "oasis-greedy" reproduces the paper's §3 algorithm and
//      the pre-refactor manager byte for byte);
//   4. sweeps mechanism-owned sleep opportunities and records the
//      timeline/energy/latency/traffic metrics of §5.
//
// Migration latencies serialize on per-host channels and host S3 transitions
// take their measured 3.1 s / 2.3 s, so reintegration storms and wake-ups
// show up in the delay distribution exactly as in Fig 11.
//
// One deliberate deviation from §3.2 is documented in DESIGN.md: a VM's home
// host never changes (the paper re-homes a converted VM onto its
// consolidation host). Keeping the original home preserves every dynamic the
// evaluation depends on while keeping capacity accounting well-defined.

#ifndef OASIS_SRC_CLUSTER_MANAGER_H_
#define OASIS_SRC_CLUSTER_MANAGER_H_

#include <memory>

#include "src/cluster/actuator.h"
#include "src/cluster/cluster_types.h"
#include "src/cluster/host.h"
#include "src/cluster/metrics.h"
#include "src/cluster/strategy.h"
#include "src/cluster/view.h"
#include "src/common/rng.h"
#include "src/mem/working_set.h"
#include "src/sim/simulator.h"
#include "src/trace/activity_trace.h"

namespace oasis {

class ClusterManager {
 public:
  // `trace` must hold at least one user-day; VM u follows user
  // u % trace.size().
  //
  // `run_context` (optional) scopes all observability of this cluster's run
  // to a run-local collector — the experiment runner passes one per worker
  // so concurrent runs never share a tracer or metrics registry. With
  // nullptr the process-global collectors are used, exactly as before.
  ClusterManager(const ClusterConfig& config, TraceSet trace,
                 obs::RunContext* run_context = nullptr);

  // Simulates one full day and returns the collected metrics.
  ClusterMetrics Run();

  // Baseline energy: every home host powered all day with the same VM
  // activity and no consolidation (the §5.3 normalization).
  static Joules BaselineEnergy(const ClusterConfig& config, const TraceSet& trace);

  const ClusterConfig& config() const { return config_; }

  // Read-only introspection for tests and diagnostics.
  const ClusterHost& GetHost(HostId id) const { return *state_.hosts[id]; }
  const VmSlot& GetVm(VmId id) const { return state_.vms[id]; }
  size_t num_hosts() const { return state_.hosts.size(); }
  size_t num_vms() const { return state_.vms.size(); }
  // The maintained per-home partial count (see ClusterState::partials_homed);
  // the invariant checker re-derives it from the VM table every round.
  int PartialsHomedAt(HostId home) const { return state_.partials_homed[home]; }
  const FaultInjector& fault_injector() const { return fault_; }
  const ConsolidationStrategy& strategy() const { return *strategy_; }

  // The strategies' window onto this cluster. Exposed so strategy unit
  // tests can drive planning entry points (e.g. BuildVacatePlan) against a
  // manager's real state without simulating a day. Non-const because the
  // view carries the shared planning streams.
  ClusterView View() { return ClusterView(config_, state_, &rng_, &ws_sampler_); }

 private:
  // --- interval pipeline --------------------------------------------------
  void OnInterval(SimTime now, int interval);
  void UpdateActivities(SimTime now, int interval);
  void RecordSnapshot(SimTime now, int interval);

  ClusterConfig config_;
  TraceSet trace_;
  obs::RunContext* run_context_ = nullptr;
  Simulator sim_;
  Rng rng_;
  WorkingSetSampler ws_sampler_;
  FaultInjector fault_;
  ClusterState state_;
  ClusterMetrics metrics_;
  std::unique_ptr<ConsolidationStrategy> strategy_;
  Actuator act_;  // constructed last: holds references to everything above
};

}  // namespace oasis

#endif  // OASIS_SRC_CLUSTER_MANAGER_H_
