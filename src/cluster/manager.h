// The Oasis cluster manager (§3) driving a trace-driven simulated day (§5).
//
// Every planning interval (5 minutes) the manager:
//   1. applies the activity trace to all VMs, servicing idle->active
//      transitions (in-place conversion to a full VM, NewHome moves, or the
//      Default wake-home-and-return-all fallback);
//   2. runs per-partial-VM upkeep: on-demand fetch traffic, dirty-state
//      growth, and working-set growth (which can exhaust a consolidation
//      host and force a return);
//   3. runs the consolidation policy: FulltoPartial swaps of idle full VMs
//      on consolidation hosts, then greedy vacate planning that migrates
//      active VMs in full and idle VMs partially so home hosts can sleep,
//      gated on the plan actually reducing total power draw;
//   4. records the timeline/energy/latency/traffic metrics of §5.
//
// Migration latencies serialize on per-host channels and host S3 transitions
// take their measured 3.1 s / 2.3 s, so reintegration storms and wake-ups
// show up in the delay distribution exactly as in Fig 11.
//
// One deliberate deviation from §3.2 is documented in DESIGN.md: a VM's home
// host never changes (the paper re-homes a converted VM onto its
// consolidation host). Keeping the original home preserves every dynamic the
// evaluation depends on while keeping capacity accounting well-defined.

#ifndef OASIS_SRC_CLUSTER_MANAGER_H_
#define OASIS_SRC_CLUSTER_MANAGER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/cluster/cluster_types.h"
#include "src/cluster/host.h"
#include "src/cluster/metrics.h"
#include "src/common/rng.h"
#include "src/mem/working_set.h"
#include "src/sim/simulator.h"
#include "src/trace/activity_trace.h"

namespace oasis {

class ClusterManager {
 public:
  // `trace` must hold at least one user-day; VM u follows user
  // u % trace.size().
  //
  // `run_context` (optional) scopes all observability of this cluster's run
  // to a run-local collector — the experiment runner passes one per worker
  // so concurrent runs never share a tracer or metrics registry. With
  // nullptr the process-global collectors are used, exactly as before.
  ClusterManager(const ClusterConfig& config, TraceSet trace,
                 obs::RunContext* run_context = nullptr);

  // Simulates one full day and returns the collected metrics.
  ClusterMetrics Run();

  // Baseline energy: every home host powered all day with the same VM
  // activity and no consolidation (the §5.3 normalization).
  static Joules BaselineEnergy(const ClusterConfig& config, const TraceSet& trace);

  const ClusterConfig& config() const { return config_; }

  // Read-only introspection for tests and diagnostics.
  const ClusterHost& GetHost(HostId id) const { return *hosts_[id]; }
  const VmSlot& GetVm(VmId id) const { return vms_[id]; }
  size_t num_hosts() const { return hosts_.size(); }
  size_t num_vms() const { return vms_.size(); }
  const FaultInjector& fault_injector() const { return fault_; }

 private:
  // --- interval pipeline --------------------------------------------------
  void OnInterval(SimTime now, int interval);
  void UpdateActivities(SimTime now, int interval);
  void PartialVmUpkeep(SimTime now);
  void Plan(SimTime now);
  void PlanFullToPartialSwaps(SimTime now);
  void PlanVacations(SimTime now);
  void DrainConsolidationHosts(SimTime now);
  void SleepIdleConsolidationHosts(SimTime now);
  void RecordSnapshot(SimTime now, int interval);

  // --- transition handling --------------------------------------------------
  void HandleActivation(SimTime now, VmId vm_id, SimTime activation_time);
  bool TryConvertInPlace(SimTime now, VmSlot& vm, SimTime activation_time);
  bool TryNewHome(SimTime now, VmSlot& vm, SimTime activation_time);
  // Returns when the last migration of the group completes (>= now even when
  // there was nothing to move), so fault recovery can bound its spans.
  SimTime ReturnHomeGroup(SimTime now, HostId home_id, VmId requester,
                          SimTime activation_time);

  // --- fault handling -------------------------------------------------------
  // Dispatches one FaultPlan event at its scheduled time.
  void ApplyScheduledFault(SimTime now, const ScheduledFault& event);
  // Instant power loss on a consolidation host: rolls back what can roll
  // back, restarts full VMs at their homes, emergency-reintegrates partials,
  // then cuts the power.
  void CrashHost(SimTime now, HostId id);
  // A sleeping home's memory server dies: its partial VMs lose their backing
  // store, so the home is woken and the whole group reintegrated.
  void FailMemoryServer(SimTime now, HostId home_id);
  // Aborts one in-flight migration at a page boundary (rolling it back to a
  // consistent resident state). `target` picks a VM, -1 the lowest eligible.
  void InjectMigrationAbort(SimTime now, int64_t target);
  // The abort bookkeeping shared by user-triggered aborts (which gate on the
  // transfer not having started) and injected stream aborts (which do not).
  bool RollbackMigration(SimTime now, VmSlot& vm);
  // Whether RollbackMigration would succeed for `vm` right now.
  bool RollbackFeasible(const VmSlot& vm) const;

  // --- vacate machinery -----------------------------------------------------
  struct VacatePlan {
    std::vector<HostId> hosts_to_vacate;
    // Parallel to hosts_to_vacate: (vm, destination) for every VM on it.
    std::vector<std::vector<std::pair<VmId, HostId>>> placements;
    double net_power_delta_watts = 0.0;  // positive means the plan saves power
    int newly_woken_consolidation_hosts = 0;
  };
  VacatePlan BuildVacatePlan(SimTime now, bool allow_waking_consolidation_hosts,
                             const std::unordered_map<VmId, uint64_t>& planned_ws);
  void CommitVacatePlan(SimTime now, const VacatePlan& plan,
                        const std::unordered_map<VmId, uint64_t>& planned_ws);
  bool HostEligibleForVacate(const ClusterHost& host, SimTime now) const;

  // --- helpers --------------------------------------------------------------
  ClusterHost& HostOf(HostId id) { return *hosts_[id]; }
  VmSlot& Slot(VmId id) { return vms_[id]; }
  bool IsConsolidationHost(HostId id) const {
    return id >= static_cast<HostId>(config_.num_home_hosts);
  }
  void AdjustActiveCount(SimTime now, HostId host, int delta);
  // Idle long enough that the manager's idleness detector trusts it.
  bool TrustedIdle(const VmSlot& vm, SimTime now) const;
  // Sends the WoL and returns the time the host will be executing VMs. With
  // fault injection the wake can lose WoL packets or hang in resume, pushing
  // that time out; callers must use the returned value rather than asking
  // the host directly.
  StatusOr<SimTime> WakeHost(SimTime now, HostId id);
  void RefreshMemoryServer(SimTime now, HostId home_id);
  int CountPartialsHomedAt(HostId home_id) const;
  void MaybeSleepHomeHost(SimTime now, HostId host_id);
  // Marks `vm` in flight for [start, done) and schedules completion.
  void ScheduleMigration(VmSlot& vm, SimTime start, SimTime done, VmSlot::PendingOp op,
                         HostId source);
  // Cancels a queued-but-not-started migration when the user returns.
  // Returns true if the VM was reverted (it then holds its full resources or
  // remains partial at its drain source).
  bool TryAbortPendingMigration(SimTime now, VmSlot& vm);
  void FinishMigration(SimTime now, VmId vm_id, uint32_t epoch);
  void AccrueEnergy(SimTime now);
  uint64_t SampleWorkingSet();
  void RecordPartialMigrationTraffic(SimTime now, VmSlot& vm);

  ClusterConfig config_;
  TraceSet trace_;
  obs::RunContext* run_context_ = nullptr;
  Simulator sim_;
  Rng rng_;
  WorkingSetSampler ws_sampler_;
  FaultInjector fault_;
  std::vector<std::unique_ptr<ClusterHost>> hosts_;
  std::vector<VmSlot> vms_;
  std::vector<bool> vm_ever_uploaded_;
  // Per host: when a fault-delayed wake will have the host powered
  // (SimTime::Zero() = no delayed wake pending). Duplicate wake requests
  // while the WoL retry loop runs join the pending wake instead of sampling
  // new faults.
  std::vector<SimTime> pending_wake_powered_at_;
  ClusterMetrics metrics_;
};

}  // namespace oasis

#endif  // OASIS_SRC_CLUSTER_MANAGER_H_
