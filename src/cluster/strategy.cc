#include "src/cluster/strategy.h"

#include <cstdio>
#include <cstdlib>

namespace oasis {
namespace {

struct RegistryEntry {
  const char* name;
  std::unique_ptr<ConsolidationStrategy> (*make)();
};

// Registration order is also the order bench/ablation_policy compares in.
const RegistryEntry kRegistry[] = {
    {"oasis-greedy", &MakeOasisGreedyStrategy},
    {"first-fit-decreasing", &MakeFirstFitDecreasingStrategy},
    {"local-threshold", &MakeLocalThresholdStrategy},
    {"predictive", &MakePredictiveStrategy},
};

}  // namespace

const std::vector<std::string>& RegisteredStrategyNames() {
  static const std::vector<std::string>* names = [] {
    auto* v = new std::vector<std::string>();
    for (const RegistryEntry& entry : kRegistry) {
      v->push_back(entry.name);
    }
    return v;
  }();
  return *names;
}

std::string RegisteredStrategyNamesJoined() {
  std::string joined;
  for (const RegistryEntry& entry : kRegistry) {
    if (!joined.empty()) {
      joined += ", ";
    }
    joined += entry.name;
  }
  return joined;
}

bool IsRegisteredStrategyName(const std::string& name) {
  for (const RegistryEntry& entry : kRegistry) {
    if (name == entry.name) {
      return true;
    }
  }
  return false;
}

std::unique_ptr<ConsolidationStrategy> MakeStrategy(const std::string& name) {
  for (const RegistryEntry& entry : kRegistry) {
    if (name == entry.name) {
      return entry.make();
    }
  }
  return nullptr;
}

void ApplyPolicyOverride(ClusterConfig* config) {
  const char* env = std::getenv("OASIS_POLICY");
  if (env == nullptr || *env == '\0') {
    return;
  }
  if (!IsRegisteredStrategyName(env)) {
    std::fprintf(stderr, "OASIS_POLICY=%s names no registered strategy (registered: %s)\n",
                 env, RegisteredStrategyNamesJoined().c_str());
    std::exit(2);
  }
  config->strategy_name = env;
}

}  // namespace oasis
