// Dirty-rate idleness detection (§3.1).
//
// "To determine a VM's idleness, we can monitor its resource usage. For
//  example, one metric for memory usage is VM page dirtying rate which can
//  be monitored from the hypervisor."
//
// The detector consumes per-interval dirty-byte samples and classifies the
// VM with hysteresis: it flips to idle only after `idle_intervals`
// consecutive samples below the threshold, and back to active after
// `active_intervals` consecutive samples above it. This is the mechanism
// behind ClusterConfig::idle_smoothing_intervals.

#ifndef OASIS_SRC_CLUSTER_IDLENESS_H_
#define OASIS_SRC_CLUSTER_IDLENESS_H_

#include <cstdint>

#include "src/common/units.h"
#include "src/hyper/vm.h"

namespace oasis {

struct IdlenessDetectorConfig {
  // Below this dirtying rate a VM looks idle. Idle desktops churn ~1.2
  // MiB/min of background writes; active users dirty tens of MiB/min.
  double idle_threshold_mib_per_min = 4.0;
  // Consecutive below-threshold samples before declaring idle.
  int idle_intervals = 2;
  // Consecutive above-threshold samples before declaring active (1 = react
  // immediately, as user-facing latency demands).
  int active_intervals = 1;
};

class DirtyRateIdlenessDetector {
 public:
  // `initial` seeds the classification (a freshly created VM is active).
  DirtyRateIdlenessDetector(const IdlenessDetectorConfig& config, VmActivity initial);
  explicit DirtyRateIdlenessDetector(const IdlenessDetectorConfig& config)
      : DirtyRateIdlenessDetector(config, VmActivity::kActive) {}
  DirtyRateIdlenessDetector() : DirtyRateIdlenessDetector(IdlenessDetectorConfig{}) {}

  // Feeds one planning interval's dirty volume; returns the (possibly
  // updated) classification.
  VmActivity Observe(uint64_t dirty_bytes, SimTime interval_length);

  VmActivity activity() const { return activity_; }
  // Classification changes since construction.
  int transitions() const { return transitions_; }

 private:
  IdlenessDetectorConfig config_;
  VmActivity activity_;
  int below_streak_ = 0;
  int above_streak_ = 0;
  int transitions_ = 0;
};

}  // namespace oasis

#endif  // OASIS_SRC_CLUSTER_IDLENESS_H_
