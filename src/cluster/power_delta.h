// Shared §3.1 power-delta arithmetic.
//
// Every consolidation strategy — and the offline oracle — prices a plan
// with the same three quantities: the draw of a loaded home, the net watts
// saved by parking one home (loaded minus S3 minus the memory server left
// on), and the watts spent waking one consolidation host. Before the
// heterogeneous-fleet refactor each strategy recomputed them inline from
// the single global config.host_power; these helpers take the host's own
// resolved profile instead, and DeltaAccumulator folds a whole plan into
// a net delta with per-profile-class integer counts.
//
// Byte-identity note: the accumulator multiplies each class's count by its
// per-home value (count * value, one multiply) rather than summing the
// value per host. On a homogeneous fleet there is exactly one class, so
// the fold reproduces the legacy
//     N * saved_per_home - W * (loaded - sleep_watts)
// expression bit for bit — which is what keeps every pre-fleet golden and
// metamorphic digest pinned through this refactor.

#ifndef OASIS_SRC_CLUSTER_POWER_DELTA_H_
#define OASIS_SRC_CLUSTER_POWER_DELTA_H_

#include <vector>

#include "src/cluster/view.h"
#include "src/power/power_model.h"

namespace oasis {
namespace power_delta {

// Draw of a loaded home host: every one of its vms_per_home VMs resident
// (the §3.1 operating point the savings arithmetic is anchored to).
inline Watts LoadedWatts(const HostPowerProfile& p, int vms_per_home) {
  return p.Draw(HostPowerState::kPowered, vms_per_home);
}

// Net watts saved by parking one home of this profile: loaded draw minus
// S3 draw minus the memory server that stays on. Zero when the host cannot
// enter S3 — it may sponsor guests but never sleeps, so vacating it saves
// nothing.
inline double SavedPerHome(const HostPowerProfile& p, bool s3_capable,
                           int vms_per_home, Watts memory_server_watts) {
  if (!s3_capable) {
    return 0.0;
  }
  return LoadedWatts(p, vms_per_home) - p.sleep_watts - memory_server_watts;
}

// Watts spent waking one sleeping consolidation host of this profile: it
// leaves S3 and runs loaded (§3.1's cost term).
inline double WakeCostWatts(const HostPowerProfile& p, int vms_per_home) {
  return LoadedWatts(p, vms_per_home) - p.sleep_watts;
}

// Folds a vacate plan's savings and wake costs into one net delta,
// bucketing hosts by profile class (see the byte-identity note above).
// Per-class values are resolved lazily from the first host of each class
// the plan touches.
class DeltaAccumulator {
 public:
  explicit DeltaAccumulator(const ClusterView& view)
      : view_(view),
        ms_watts_(view.config().memory_server_power.TotalWatts()),
        saved_count_(view.config().NumProfileClasses(), 0),
        saved_value_(view.config().NumProfileClasses(), 0.0),
        woken_count_(view.config().NumProfileClasses(), 0),
        wake_value_(view.config().NumProfileClasses(), 0.0) {}

  void AddVacatedHome(HostId home) {
    const ClusterHost& h = view_.host(home);
    const int cls = h.profile_class();
    if (saved_count_[cls] == 0) {
      saved_value_[cls] =
          SavedPerHome(h.power_profile(), h.s3_capable(),
                       view_.config().vms_per_home, ms_watts_);
    }
    ++saved_count_[cls];
  }

  void AddWokenConsolidationHost(HostId host) {
    const ClusterHost& h = view_.host(host);
    const int cls = h.profile_class();
    if (woken_count_[cls] == 0) {
      wake_value_[cls] =
          WakeCostWatts(h.power_profile(), view_.config().vms_per_home);
    }
    ++woken_count_[cls];
    ++total_woken_;
  }

  int total_woken() const { return total_woken_; }

  double NetWatts() const {
    double net = 0.0;
    for (size_t c = 0; c < saved_count_.size(); ++c) {
      if (saved_count_[c] > 0) {
        net += static_cast<double>(saved_count_[c]) * saved_value_[c];
      }
    }
    for (size_t c = 0; c < woken_count_.size(); ++c) {
      if (woken_count_[c] > 0) {
        net -= static_cast<double>(woken_count_[c]) * wake_value_[c];
      }
    }
    return net;
  }

 private:
  const ClusterView& view_;
  Watts ms_watts_;
  std::vector<int> saved_count_;
  std::vector<double> saved_value_;
  std::vector<int> woken_count_;
  std::vector<double> wake_value_;
  int total_woken_ = 0;
};

}  // namespace power_delta
}  // namespace oasis

#endif  // OASIS_SRC_CLUSTER_POWER_DELTA_H_
