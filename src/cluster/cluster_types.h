// Shared types for the Oasis cluster manager and its trace-driven simulation.

#ifndef OASIS_SRC_CLUSTER_CLUSTER_TYPES_H_
#define OASIS_SRC_CLUSTER_CLUSTER_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/fault/fault.h"
#include "src/hyper/vm.h"
#include "src/mem/working_set.h"
#include "src/power/host_profile.h"
#include "src/power/power_model.h"

namespace oasis {

// The §3.2 consolidation policies, plus the partial-only baseline §5.3
// evaluates against. These are variants *within* the Oasis greedy strategy
// family; the orthogonal ConsolidationStrategy axis (src/cluster/strategy.h)
// swaps out the whole planning algorithm.
enum class ConsolidationPolicy {
  kOnlyPartial,   // never full-migrate; a home sleeps only when all its VMs are idle
  kDefault,       // hybrid; consolidated VMs keep their form until capacity runs out
  kFullToPartial, // idle full VMs on consolidation hosts are re-consolidated as partials
  kNewHome,       // active partials that run out of room move to any powered host
};

const char* ConsolidationPolicyName(ConsolidationPolicy p);

// Inverse of ConsolidationPolicyName (round-trip stable). Unknown names get
// INVALID_ARGUMENT with a message listing every valid name.
StatusOr<ConsolidationPolicy> ParseConsolidationPolicy(const std::string& name);

// A host's structural role in the rack (§3.1): home hosts own VMs and their
// memory servers; consolidation hosts only ever host guests and start the
// day asleep. The role is carried on every ClusterHost — code must branch on
// it rather than on id arithmetic against num_home_hosts.
enum class HostRole { kHome, kConsolidation };

const char* HostRoleName(HostRole role);

// Fixed migration/transition parameters for the cluster simulation, straight
// from §5.1 ("we use the conservative parameters from 4.4.2") and Table 1.
struct ClusterTimings {
  // Full (pre-copy live) migration of a 4 GiB VM over the rack's 10 GigE.
  SimTime full_migration = SimTime::Seconds(10.0);
  // Partial migration including the memory upload.
  SimTime partial_migration = SimTime::Seconds(7.2);
  // Reintegration of a partial VM: a fixed portion (suspend partial VM,
  // rebuild page tables, resume) plus a transfer portion that serializes on
  // the destination host's NIC — together the paper's 3.7 s.
  SimTime reintegration_fixed = SimTime::Seconds(2.2);
  SimTime reintegration_transfer = SimTime::Seconds(1.5);
  // ACPI S3 transitions (Table 1).
  SimTime suspend = SimTime::Seconds(3.1);
  SimTime resume = SimTime::Seconds(2.3);
};

// Byte-volume models for traffic accounting (Fig 10) — latency uses the
// fixed ClusterTimings; volumes follow the §4.4.3 measurements.
struct TrafficVolumes {
  uint64_t descriptor_bytes = 16 * kMiB;  // partial VM creation push
  // On-demand page fetches drain the unfetched working set geometrically:
  // each interval a partial VM fetches this fraction of what remains,
  // capped at the per-interval ceiling.
  double on_demand_fraction_per_interval = 0.30;
  uint64_t on_demand_cap_per_interval = 15 * kMiB;
  // Dirty state accumulated by a consolidated partial VM (§4.4.3 measures
  // ~175 MiB after 20 minutes, i.e. ~8.8 MiB/min, saturating).
  double dirty_mib_per_minute = 8.8;
  uint64_t dirty_cap_bytes = 400 * kMiB;
  // Idle working sets creep upward while consolidated (§3.2's grow case).
  double ws_growth_mib_per_hour = 6.0;
  // Compressed memory-upload volumes on the SAS channel (§4.4.2: the first
  // upload pushes the whole touched image, later ones only the delta).
  uint64_t first_upload_bytes = 1306 * kMiB;
  uint64_t repeat_upload_bytes = 282 * kMiB;
};

struct ClusterConfig {
  int num_home_hosts = 30;
  int num_consolidation_hosts = 4;
  int vms_per_home = 30;
  uint64_t host_memory_bytes = 128 * kGiB;
  uint64_t vm_memory_bytes = 4 * kGiB;
  // Memory over-commitment via ballooning/de-duplication (§3 assumption 1:
  // "a factor of 1.5" is regarded as safe). Scales every host's effective
  // capacity; 1.0 disables over-commitment.
  double memory_overcommit = 1.0;
  // CPU side of assumption 1: hosts run at most cores x overcommit *active*
  // 1-vCPU VMs ("over-committing CPU by a factor of 3 is regarded as a safe
  // practice"). Idle/partial VMs consume no accountable CPU. With the
  // default 16-core hosts the memory bound (32 full VMs) binds first, which
  // is exactly the paper's point.
  int host_cores = 16;
  double cpu_overcommit = 3.0;

  // Most active VMs a single host may execute.
  int MaxActiveVmsPerHost() const {
    return static_cast<int>(static_cast<double>(host_cores) * cpu_overcommit);
  }
  ConsolidationPolicy policy = ConsolidationPolicy::kFullToPartial;
  // Which ConsolidationStrategy plans each interval (src/cluster/strategy.h).
  // Must name a registered strategy; the default is the paper's greedy
  // algorithm and is guaranteed to reproduce the legacy monolithic manager
  // byte for byte. Override per process with OASIS_POLICY (see
  // ApplyPolicyOverride).
  std::string strategy_name = "oasis-greedy";
  SimTime planning_interval = SimTime::Seconds(300);
  // A VM counts as idle for consolidation decisions only after this many
  // consecutive idle intervals (§3.1 determines idleness from resource-usage
  // monitoring, e.g. page-dirtying rate, which needs a sampling window; it
  // also keeps momentary pauses from triggering migration ping-pong).
  int idle_smoothing_intervals = 2;
  ClusterTimings timings;
  TrafficVolumes volumes;
  HostPowerProfile host_power;
  // Per-host hardware generations (src/power/host_profile.h). Fleet
  // segments cover hosts [0, CoveredHosts()) in order; every host past the
  // covered prefix — and the whole cluster when the mix is empty, the
  // default — resolves to profile class 0, whose power curve is exactly
  // `host_power`. Class 0 keeps the homogeneous cluster byte-identical to
  // the pre-fleet code path; catalog generations additionally pick up the
  // compounded SetVmsPerHome scale via `fleet_power_scale`.
  FleetMix fleet;
  double fleet_power_scale = 1.0;
  MemoryServerProfile memory_server_power;
  WorkingSetDistribution working_set;
  uint64_t seed = 42;
  // Fault injection (disabled by default; a disabled config is guaranteed
  // not to perturb the simulation in any way).
  FaultConfig fault;

  int TotalVms() const { return num_home_hosts * vms_per_home; }
  int TotalHosts() const { return num_home_hosts + num_consolidation_hosts; }

  // --- fleet resolution -----------------------------------------------------
  // Profile classes: 0 is the default (host_power, S3-capable, scale 1.0);
  // class c >= 1 is fleet segment c-1's catalog generation. Strategies price
  // plans per class with integer counts so a single-class fleet folds to the
  // exact legacy arithmetic.
  int NumProfileClasses() const {
    return 1 + static_cast<int>(fleet.segments.size());
  }
  int ProfileClassOf(HostId id) const;
  HostProfile ResolvedProfile(int profile_class) const;
  HostProfile HostProfileFor(HostId id) const {
    return ResolvedProfile(ProfileClassOf(id));
  }

  // Rejects configurations the simulation cannot represent, most notably a
  // home host without enough memory for its own VMs.
  Status Validate() const;

  // Scales host capacity (and, capacity-proportionally, host power) so each
  // home host can carry `vms` VMs with the same relative headroom the
  // default 30-VM/128-GiB configuration has — the Fig 12 "vary the server
  // capacity" knob.
  void SetVmsPerHome(int vms);
};

// Cluster-level VM bookkeeping. Unlike hyper::Vm this carries aggregate byte
// counters instead of page bitmaps, so 900-VM day simulations stay cheap;
// the byte arithmetic matches the page-level MigrationModel.
struct VmSlot {
  VmId id = 0;
  HostId home = kNoHost;        // owner of the VM's full image / memory server
  HostId location = kNoHost;    // where the VM currently executes
  VmActivity activity = VmActivity::kIdle;
  VmResidency residency = VmResidency::kFullAtHome;
  uint64_t full_bytes = 4 * kGiB;
  uint64_t ws_bytes = 0;        // current idle working-set reservation (partial only)
  uint64_t ws_unfetched = 0;    // portion of the working set not yet faulted in
  uint64_t dirty_bytes = 0;     // dirtied while consolidated (reintegration volume)
  SimTime consolidated_since;   // when the VM last left its home
  bool migration_in_flight = false;
  bool activation_pending = false;  // went active while a migration was in flight
  SimTime activation_time;          // when the user became active (delay accounting)
  SimTime idle_since = SimTime::Micros(INT64_MIN / 2);  // last active->idle edge

  // In-flight operation bookkeeping. Outbound migrations serialize on the
  // source host, so a VM late in the queue has not actually been suspended
  // yet; if its user comes back before `migration_start`, the agent aborts
  // the pending move and the VM keeps running where it was.
  enum class PendingOp {
    kNone,
    kVacatePartial,   // home -> consolidation, as a partial VM
    kSwapReturn,      // FulltoPartial round trip, ending partial at the source
    kDrainMove,       // consolidation -> consolidation partial move
    kReturnMove,      // group return: partial reintegrating to its home
    kFullReturnMove,  // group return: idle full VM live-migrating home
    kOther,           // not abortable (conversions, requester reintegration)
  };
  PendingOp pending_op = PendingOp::kNone;
  SimTime migration_start;   // when this VM's own transfer begins
  HostId migration_source = kNoHost;
  uint32_t op_epoch = 0;     // invalidates completion events after an abort

  // Memory the VM reserves on the host it currently occupies.
  uint64_t ReservedBytes() const {
    return residency == VmResidency::kPartial ? ws_bytes : full_bytes;
  }
};

// Change log consumed by the incremental planner (OASIS_PLAN=incremental).
//
// Mutators record which hosts and VMs changed in planner-relevant ways since
// the last planning pass; the planner refreshes only those hosts' cached
// scan state instead of rescanning the cluster. Marking is conservative
// (over-marking is always safe — it only costs one host rescan); the two
// invariants that matter are:
//   * a host is marked whenever its resident set changes (ClusterHost::AddVm
//     and RemoveVm self-mark), and whenever a *resident's* planner-read
//     fields (migration_in_flight, residency) change; and
//   * a VM is marked whenever its residency changes (the planner's per-home
//     swap-candidate membership is keyed on residency).
// Marks before Reset() — e.g. during ClusterManager construction — are
// dropped; the planner's first refresh is always a full rebuild, which
// covers initial state.
class DirtyTracker {
 public:
  void Reset(size_t num_hosts, size_t num_vms) {
    host_dirty_.assign(num_hosts, 0);
    vm_dirty_.assign(num_vms, 0);
    hosts_.clear();
    vms_.clear();
  }

  void MarkHost(HostId h) {
    if (static_cast<size_t>(h) < host_dirty_.size() && !host_dirty_[h]) {
      host_dirty_[h] = 1;
      hosts_.push_back(h);
    }
  }

  void MarkVm(VmId v) {
    if (static_cast<size_t>(v) < vm_dirty_.size() && !vm_dirty_[v]) {
      vm_dirty_[v] = 1;
      vms_.push_back(v);
    }
  }

  const std::vector<HostId>& dirty_hosts() const { return hosts_; }
  const std::vector<VmId>& dirty_vms() const { return vms_; }

  void Clear() {
    for (HostId h : hosts_) {
      host_dirty_[h] = 0;
    }
    for (VmId v : vms_) {
      vm_dirty_[v] = 0;
    }
    hosts_.clear();
    vms_.clear();
  }

 private:
  // Bitmaps dedup the mark lists, so a host touched by many migrations in
  // one interval is rescanned once.
  std::vector<uint8_t> host_dirty_;
  std::vector<uint8_t> vm_dirty_;
  std::vector<HostId> hosts_;
  std::vector<VmId> vms_;
};

}  // namespace oasis

#endif  // OASIS_SRC_CLUSTER_CLUSTER_TYPES_H_
