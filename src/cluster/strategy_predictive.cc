#include "src/cluster/strategy_predictive.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/cluster/actuator.h"
#include "src/trace/activity_trace.h"
#include "src/trace/diurnal_prior.h"

namespace oasis {
namespace {

// Forecast floor below which the lookahead window counts as "the trough is
// coming" (the weekday night floor is ~1–3% active; the working day never
// dips near this).
constexpr double kDrainForecastThreshold = 0.10;
// Minimum forecast-over-observed rise before pre-waking anything. The
// morning ramp climbs ~25 points over an hour; transient wobble stays under
// this.
constexpr double kPrewakeRiseThreshold = 0.05;
// Day-folded per-slot smoothing: heavy enough that one day's observation
// reshapes the slot, light enough that a single chaos interval doesn't.
constexpr double kHistAlpha = 0.2;
// The scalar level ratio reacts faster than the fold fills in, but is
// clamped so the near-zero night slots can't blow it up.
constexpr double kLevelAlpha = 0.1;
constexpr double kLevelMin = 0.25;
constexpr double kLevelMax = 4.0;
// Monte-Carlo budget for the generator-derived prior the fold is seeded
// from. Fixed seed: the prior is part of the strategy's definition, not a
// per-run sample, so every instance — any OASIS_JOBS, any OASIS_PLAN —
// computes the identical curve.
constexpr int kPriorUsers = 512;
constexpr uint64_t kPriorSeed = 20160418;

int DaySlot(SimTime now) {
  int slot = static_cast<int>(now.seconds()) / kTraceIntervalSeconds;
  return std::min(slot, kIntervalsPerDay - 1) % kIntervalsPerDay;
}

double ObservedActiveFraction(const ClusterView& view) {
  if (view.num_vms() == 0) {
    return 0.0;
  }
  size_t active = 0;
  for (size_t v = 0; v < view.num_vms(); ++v) {
    if (view.vm(static_cast<VmId>(v)).activity == VmActivity::kActive) {
      ++active;
    }
  }
  return static_cast<double>(active) / static_cast<double>(view.num_vms());
}

}  // namespace

int ForecastWindowFromEnv() {
  const char* env = std::getenv("OASIS_FORECAST_WINDOW");
  if (env == nullptr || *env == '\0') {
    return 6;
  }
  char* end = nullptr;
  long value = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || value < 1 || value > kIntervalsPerDay) {
    std::fprintf(stderr,
                 "bad OASIS_FORECAST_WINDOW \"%s\" (accepted: an integer number of "
                 "5-minute intervals in [1, %d])\n",
                 env, kIntervalsPerDay);
    std::exit(2);
  }
  return static_cast<int>(value);
}

PredictiveStrategy::PredictiveStrategy(int forecast_window)
    : window_(forecast_window),
      hist_(EstimateDiurnalPrior(TraceGeneratorConfig{}, DayKind::kWeekday, kPriorUsers,
                                 kPriorSeed)) {}

double PredictiveStrategy::Forecast(int slot) const {
  size_t idx = static_cast<size_t>(slot % kIntervalsPerDay);
  return std::clamp(hist_[idx] * level_, 0.0, 1.0);
}

void PredictiveStrategy::UpdateForecast(int slot, double observed) {
  size_t idx = static_cast<size_t>(slot);
  double predicted = std::max(hist_[idx], 1e-3);
  double ratio = std::clamp(observed / predicted, kLevelMin, kLevelMax);
  level_ = (1.0 - kLevelAlpha) * level_ + kLevelAlpha * ratio;
  hist_[idx] = (1.0 - kHistAlpha) * hist_[idx] + kHistAlpha * observed;
}

PlanActions PredictiveStrategy::PlanInterval(const ClusterView& view, SimTime now,
                                             Actuator& act) {
  int slot = DaySlot(now);
  double observed = ObservedActiveFraction(view);
  UpdateForecast(slot, observed);
  // The full reactive plan first. It leaves the planning-stream cursors in a
  // backend-independent state, so the forecast passes below draw identically
  // under every OASIS_PLAN mode.
  PlanActions actions = OasisGreedyStrategy::PlanInterval(view, now, act);
  PreDrainPass(view, now, act, actions, slot);
  PreWakePass(view, now, act, actions, slot, observed);
  return actions;
}

void PredictiveStrategy::PreDrainPass(const ClusterView& view, SimTime now, Actuator& act,
                                      PlanActions& actions, int slot) {
  double floor = 1.0;
  for (int k = 1; k <= window_; ++k) {
    floor = std::min(floor, Forecast(slot + k));
  }
  if (floor >= kDrainForecastThreshold) {
    return;
  }
  const ClusterConfig& config = view.config();
  // Candidates: powered homes whose residents are all idle *now* with at
  // least one the smoothing window doesn't trust yet — those are exactly the
  // homes the base greedy pass either skipped (OnlyPartial) or priced with
  // expensive full placements. The forecast says they'll stay idle, so plan
  // every resident as a partial with a freshly sampled working set.
  std::vector<uint64_t> planned_ws(view.num_vms(), 0);
  std::vector<Candidate> candidates;
  int num_homes = config.num_home_hosts;
  for (HostId h = 0; h < static_cast<HostId>(num_homes); ++h) {
    const ClusterHost& host = view.host(h);
    // Same s3 gate as HostEligibleForVacate: a home that cannot sleep is
    // never worth pre-draining.
    if (!host.IsPowered() || !host.HasVms() || !host.s3_capable()) {
      continue;
    }
    bool eligible = true;
    bool any_untrusted = false;
    for (VmId id : host.vms()) {
      const VmSlot& vm = view.vm(id);
      if (vm.migration_in_flight || vm.location != h ||
          vm.activity != VmActivity::kIdle) {
        eligible = false;
        break;
      }
      if (!view.TrustedIdle(vm, now)) {
        any_untrusted = true;
      }
    }
    if (!eligible || !any_untrusted) {
      continue;
    }
    uint64_t demand = 0;
    for (VmId id : host.vms()) {
      uint64_t ws = view.SampleWorkingSet();
      planned_ws[id] = ws;
      demand += ws;
    }
    candidates.push_back({h, demand});
  }
  if (candidates.empty()) {
    return;
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.demand < b.demand; });

  // Same destination table and conservative/aggressive pricing as the base
  // vacate search, through the same rng-drawing placement core and the same
  // §3.1 gate.
  std::vector<Dest> dests;
  size_t powered_dests = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t h = 0; h < view.num_hosts(); ++h) {
      const ClusterHost& host = view.host(static_cast<HostId>(h));
      if (!host.IsConsolidationHost()) {
        continue;
      }
      int slots = config.MaxActiveVmsPerHost() - host.active_vms();
      bool awake = host.IsPowered() || host.power_state() == HostPowerState::kResuming;
      if (pass == 0 && awake) {
        dests.push_back({host.id(), host.AvailableBytes(), slots, false});
        ++powered_dests;
      } else if (pass == 1 && !awake) {
        dests.push_back({host.id(), host.AvailableBytes(), slots, true});
      }
    }
  }
  std::vector<Dest> conservative_dests(dests.begin(),
                                       dests.begin() + static_cast<long>(powered_dests));
  VacatePlan conservative = PlaceAndPrice(view, now, candidates,
                                          std::move(conservative_dests), powered_dests,
                                          planned_ws);
  VacatePlan aggressive =
      PlaceAndPrice(view, now, candidates, std::move(dests), powered_dests, planned_ws);
  const VacatePlan& best =
      aggressive.net_power_delta_watts > conservative.net_power_delta_watts ? aggressive
                                                                            : conservative;
  MaybeCommitVacatePlan(now, act, actions, best);
}

void PredictiveStrategy::PreWakePass(const ClusterView& view, SimTime now, Actuator& act,
                                     PlanActions& actions, int slot, double observed) {
  double peak = 0.0;
  for (int k = 1; k <= window_; ++k) {
    peak = std::max(peak, Forecast(slot + k));
  }
  double rise = peak - observed;
  if (rise <= kPrewakeRiseThreshold) {
    return;
  }
  const ClusterConfig& config = view.config();
  int num_homes = config.num_home_hosts;
  // Target enough prepared (powered, empty) homes to absorb the forecast
  // rise; homes already woken — by an earlier pre-wake or a return in
  // flight — count toward the target so the pass converges instead of
  // walking down the ranking each interval.
  int want = static_cast<int>(std::ceil(rise * num_homes));
  int ready = 0;
  for (HostId h = 0; h < static_cast<HostId>(num_homes); ++h) {
    const ClusterHost& host = view.host(h);
    if (!host.HasVms() &&
        (host.IsPowered() || host.power_state() == HostPowerState::kResuming)) {
      ++ready;
    }
  }
  int needed = want - ready;
  if (needed <= 0) {
    return;
  }
  // Wake the homes with the most parked VMs first — they serve the most
  // users when the rise arrives. Stable sort on descending count keeps ties
  // in ascending host id, so the ranking is deterministic.
  struct Ranked {
    HostId host;
    int parked;
  };
  std::vector<Ranked> ranked;
  for (HostId h = 0; h < static_cast<HostId>(num_homes); ++h) {
    if (!view.host(h).IsAsleep()) {
      continue;
    }
    int parked = 0;
    for (VmId id : view.vms_of_home(h)) {
      if (view.vm(id).location != h) {
        ++parked;
      }
    }
    if (parked > 0) {
      ranked.push_back({h, parked});
    }
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Ranked& a, const Ranked& b) { return a.parked > b.parked; });
  for (const Ranked& r : ranked) {
    if (needed <= 0) {
      break;
    }
    if (act.PrewakeHost(now, r.host)) {
      ++actions.prewoken_hosts;
      --needed;
    }
  }
}

std::unique_ptr<ConsolidationStrategy> MakePredictiveStrategy() {
  return std::make_unique<PredictiveStrategy>();
}

}  // namespace oasis
