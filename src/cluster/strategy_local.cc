// "local-threshold": fully distributed consolidation, for ablation against
// the paper's global greedy scan.
//
// Each home host decides alone, from its own state only: when every one of
// its residents has been trusted-idle for the smoothing window, it parks the
// whole group on its statically designated consolidation host (home h maps
// to consolidation host h mod N — no global view, no load balancing) as
// partial VMs, provided the group fits there right now.
//
// The deliberate weakness, documented in DESIGN.md: a single host cannot
// amortize wake costs across peers, so there is no net-power gate — waking
// the designated consolidation host for one home can cost more than the
// sleeping home saves. The plan's net_power_delta_watts is still reported
// honestly so the ablation can show exactly where the local decisions lose
// energy to the global ones.

#include <vector>

#include "src/cluster/actuator.h"
#include "src/cluster/power_delta.h"
#include "src/cluster/strategy.h"

namespace oasis {
namespace {

class LocalThresholdStrategy : public ConsolidationStrategy {
 public:
  const char* name() const override { return "local-threshold"; }
  // Commits any plan that fits, even a power-losing one — no §3.1 gate.
  StrategyTraits traits() const override {
    return {/*has_power_gate=*/false, /*supports_plan_modes=*/false};
  }

  PlanActions PlanInterval(const ClusterView& view, SimTime now, Actuator& act) override {
    PlanActions actions;
    const ClusterConfig& config = view.config();
    std::vector<HostId> cons_ids;
    for (size_t h = 0; h < view.num_hosts(); ++h) {
      const ClusterHost& host = view.host(static_cast<HostId>(h));
      if (host.IsConsolidationHost()) {
        cons_ids.push_back(host.id());
      }
    }
    if (cons_ids.empty()) {
      return actions;
    }
    const Watts ms_watts = config.memory_server_power.TotalWatts();

    int home_index = -1;
    for (size_t h = 0; h < view.num_hosts(); ++h) {
      const ClusterHost& host = view.host(static_cast<HostId>(h));
      if (!host.IsHomeHost()) {
        continue;
      }
      ++home_index;
      // The s3 gate rides after ++home_index so skipping an S3-incapable
      // home (it can never sleep, so parking its VMs frees nothing) does
      // not shift the static home -> consolidation-host mapping.
      if (!host.IsPowered() || !host.HasVms() || !host.s3_capable()) {
        continue;
      }
      bool all_idle = true;
      for (VmId id : host.vms()) {
        const VmSlot& vm = view.vm(id);
        if (vm.migration_in_flight || vm.location != host.id() ||
            !view.TrustedIdle(vm, now)) {
          all_idle = false;
          break;
        }
      }
      if (!all_idle) {
        continue;
      }
      const ClusterHost& dest =
          view.host(cons_ids[static_cast<size_t>(home_index) % cons_ids.size()]);
      // Sample before the fit check so the draw sequence depends only on
      // which homes are fully idle, not on the destination's state.
      std::vector<VacatePlacement> placements;
      uint64_t total = 0;
      for (VmId id : host.vms()) {
        uint64_t ws = view.SampleWorkingSet();
        placements.push_back({id, dest.id(), /*as_partial=*/true, ws});
        total += ws;
      }
      if (total > dest.AvailableBytes()) {
        continue;
      }
      bool wakes_dest =
          !(dest.IsPowered() || dest.power_state() == HostPowerState::kResuming);
      VacatePlan plan;
      plan.hosts_to_vacate.push_back(host.id());
      plan.placements.push_back(std::move(placements));
      plan.newly_woken_consolidation_hosts = wakes_dest ? 1 : 0;
      // Priced from the two hosts actually involved: this home's own saving
      // and this destination's own wake cost (heterogeneous fleets).
      plan.net_power_delta_watts =
          power_delta::SavedPerHome(host.power_profile(), host.s3_capable(),
                                    config.vms_per_home, ms_watts) -
          (wakes_dest
               ? power_delta::WakeCostWatts(dest.power_profile(), config.vms_per_home)
               : 0.0);
      act.CommitVacatePlan(now, plan);
      ++actions.vacated_hosts;
      actions.vacate_moves += static_cast<int>(plan.placements[0].size());
      actions.committed_power_delta_watts += plan.net_power_delta_watts;
    }
    return actions;
  }
};

}  // namespace

std::unique_ptr<ConsolidationStrategy> MakeLocalThresholdStrategy() {
  return std::make_unique<LocalThresholdStrategy>();
}

}  // namespace oasis
