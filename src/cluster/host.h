// A cluster host: memory capacity, resident VMs, the ACPI power-state
// machine with Table 1 transition latencies, the attached low-power memory
// server, and exact energy accounting for all of it.

#ifndef OASIS_SRC_CLUSTER_HOST_H_
#define OASIS_SRC_CLUSTER_HOST_H_

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "src/cluster/cluster_types.h"
#include "src/power/energy_meter.h"
#include "src/sim/simulator.h"

namespace oasis {

class ClusterHost {
 public:
  // Resolves the host's own hardware profile from the config's fleet mix
  // (config.HostProfileFor(id)) — the host's copy is authoritative: power
  // draw, S3 latencies, capacity and S3 capability all come from it, never
  // from config.host_power directly. An S3-incapable host ignores
  // `initially_powered = false` and starts the day powered (it has no
  // sleeping state to start in).
  ClusterHost(HostId id, HostRole role, const ClusterConfig& config, bool initially_powered);

  HostId id() const { return id_; }
  // The host's structural role (home vs consolidation, §3.1). All role
  // branching goes through this — never through id arithmetic against
  // num_home_hosts.
  HostRole role() const { return role_; }
  bool IsHomeHost() const { return role_ == HostRole::kHome; }
  bool IsConsolidationHost() const { return role_ == HostRole::kConsolidation; }
  HostPowerState power_state() const { return state_; }
  bool IsPowered() const { return state_ == HostPowerState::kPowered; }
  bool IsAsleep() const { return state_ == HostPowerState::kSleeping; }

  // --- Hardware profile ---------------------------------------------------
  // The host's resolved power curve + S3 latencies (class 0 == the config's
  // host_power). Strategies price per-host savings from these, never from
  // the global profile.
  const HostPowerProfile& power_profile() const { return power_; }
  // false: this host may sponsor guests but can never enter S3. The planner
  // and actuator both gate on it; a kSuspending transition anyway is an
  // invariant violation ("power.s3_on_incapable_host").
  bool s3_capable() const { return s3_capable_; }
  // Index into ClusterConfig::ResolvedProfile — strategies bucket pricing
  // by class so homogeneous fleets keep the legacy count*value arithmetic.
  int profile_class() const { return profile_class_; }

  // --- Capacity ---------------------------------------------------------
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  uint64_t reserved_bytes() const { return reserved_bytes_; }
  uint64_t AvailableBytes() const { return capacity_bytes_ - reserved_bytes_; }
  bool CanFit(uint64_t bytes) const { return bytes <= AvailableBytes(); }
  void Reserve(uint64_t bytes);
  void Release(uint64_t bytes);

  // Wires the owning manager's planner change log; resident-set changes
  // self-mark this host so the incremental planner rescans it (nullptr — the
  // default — disables marking, e.g. for standalone hosts in tests).
  void set_dirty_tracker(DirtyTracker* tracker) { dirty_ = tracker; }

  // --- VM presence ------------------------------------------------------
  // Adding/removing VMs changes the host's power draw (which saturates at
  // the Table 1 twenty-VM measurement), so both take the current time.
  void AddVm(SimTime now, VmId vm);
  void RemoveVm(SimTime now, VmId vm);
  const std::set<VmId>& vms() const { return vms_; }
  bool HasVms() const { return !vms_.empty(); }

  // Number of active VMs currently executing here. Purely logical (a host
  // with active VMs must never sleep); the draw follows the resident count.
  void SetActiveVms(SimTime now, int n);
  int active_vms() const { return active_vms_; }

  // --- Power-state machine ------------------------------------------------
  // Wake-on-LAN: transitions toward kPowered and invokes `on_powered` once
  // the host is up (immediately if already powered). Safe to call in any
  // state; a wake during suspend queues behind the suspend.
  void RequestWake(Simulator& sim, std::function<void(SimTime)> on_powered);

  // Suspends to S3 once outstanding migrations drain (the caller gates on
  // that); ignored unless currently powered. A wake request cancels a
  // not-yet-finished suspend at its completion boundary. `on_asleep` fires
  // when S3 entry completes (and is dropped if a wake pre-empts it).
  void RequestSleep(Simulator& sim, std::function<void(SimTime)> on_asleep = nullptr);

  // Earliest time the host could be executing VMs if woken at `now`.
  SimTime EarliestPoweredTime(SimTime now) const;

  // Injected power loss: the host drops to kSleeping instantly (no S3 entry
  // latency), pending transitions and queued wake waiters are discarded, and
  // the memory server goes dark with it. The caller must have relocated all
  // resident VMs first — a crash is only modelled after its recovery plan is
  // in place, because a VM left behind would silently stop being simulated.
  void Crash(SimTime now);

  // --- Outbound migration / inbound reintegration serialization ----------
  // Occupies the host's outbound migration path for `duration` starting no
  // earlier than `now`; returns the completion time.
  SimTime EnqueueOutboundMigration(SimTime now, SimTime duration);
  // Same for inbound reintegration transfers (the Fig 11 storm queue).
  SimTime EnqueueInboundTransfer(SimTime now, SimTime duration);
  SimTime outbound_busy_until() const { return outbound_busy_until_; }

  // --- Memory server ------------------------------------------------------
  void SetMemoryServerPowered(SimTime now, bool on);
  bool memory_server_powered() const { return ms_powered_; }

  // --- Energy -------------------------------------------------------------
  // Host energy (excluding the memory server) up to `now`.
  Joules HostEnergy(SimTime now);
  // Memory-server energy up to `now`.
  Joules MemoryServerEnergy(SimTime now);
  // Side-effect-free views of the same integrals for the invariant checker:
  // the meters stay untouched, so checking cannot perturb the simulation.
  Joules HostEnergyAt(SimTime now) const { return meter_.EnergyAt(now); }
  Joules MemoryServerEnergyAt(SimTime now) const { return ms_meter_.EnergyAt(now); }
  const StateTimeLedger& ledger() const { return ledger_; }
  void AdvanceLedger(SimTime now) { ledger_.Advance(now); }

 private:
  ClusterHost(HostId id, HostRole role, const ClusterConfig& config,
              const HostProfile& profile, bool initially_powered);
  void Transition(SimTime now, HostPowerState next);
  Watts CurrentDraw() const;

  HostId id_;
  HostRole role_;
  DirtyTracker* dirty_ = nullptr;
  HostPowerProfile power_;
  bool s3_capable_ = true;
  int profile_class_ = 0;
  Watts ms_watts_;
  uint64_t capacity_bytes_;
  uint64_t reserved_bytes_ = 0;
  std::set<VmId> vms_;
  int active_vms_ = 0;

  HostPowerState state_;
  uint64_t transition_epoch_ = 0;  // invalidates stale scheduled transitions
  bool wake_after_suspend_ = false;
  std::vector<std::function<void(SimTime)>> wake_waiters_;
  // At most one suspend is ever in flight (RequestSleep only acts from
  // kPowered), so its completion callback lives here instead of in the
  // scheduled closure — keeping that closure inside EventClosure::kCapacity.
  std::function<void(SimTime)> sleep_waiter_;

  SimTime outbound_busy_until_;
  SimTime inbound_busy_until_;

  bool ms_powered_ = false;
  EnergyMeter meter_;
  EnergyMeter ms_meter_;
  StateTimeLedger ledger_;
};

}  // namespace oasis

#endif  // OASIS_SRC_CLUSTER_HOST_H_
