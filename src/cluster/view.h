// Read-only cluster snapshot consumed by consolidation strategies.
//
// The control plane is layered (see DESIGN.md, "Control-plane layering"):
//
//   ClusterView  — what a strategy may *read*: hosts, VM slots, residency,
//                  working-set/dirty accounting, power states, plus the two
//                  deterministic planning streams (random choice and
//                  working-set sampling).
//   Strategy     — decides *what* to do each interval (src/cluster/strategy.h).
//   Actuator     — the only layer that may *mutate* hosts and VM slots
//                  (src/cluster/actuator.h).
//
// A strategy holds no state of its own and receives nothing but a view and
// an actuator, so by construction it can neither touch a host directly nor
// smuggle information between intervals. (Two declared carve-outs, both
// documented in strategy.h: derived scan caches rebuildable from the view,
// and PredictiveStrategy's activity forecast, which summarizes only what
// past views exposed.)

#ifndef OASIS_SRC_CLUSTER_VIEW_H_
#define OASIS_SRC_CLUSTER_VIEW_H_

#include <memory>
#include <vector>

#include "src/cluster/cluster_types.h"
#include "src/cluster/host.h"
#include "src/common/rng.h"
#include "src/mem/working_set.h"

namespace oasis {

// The cluster's entire mutable state, owned by ClusterManager. Hosts are
// stored homes-first in id order (host id == index); VM slots in id order
// (vm id == index). Only the Actuator mutates it (plus the owning manager,
// which applies the activity trace); strategies read it through ClusterView.
struct ClusterState {
  std::vector<std::unique_ptr<ClusterHost>> hosts;
  std::vector<VmSlot> vms;
  // Whether each VM has ever uploaded its compressed image to its memory
  // server (the first upload ships the whole touched image, later ones only
  // the delta, §4.4.2).
  std::vector<bool> vm_ever_uploaded;
  // Per host: when a fault-delayed wake will have the host powered
  // (SimTime::Zero() = no delayed wake pending).
  std::vector<SimTime> pending_wake_powered_at;
  // Per home host: its VM ids in ascending order. A VM's home never changes
  // (documented deviation from the paper), so this index is built once at
  // construction and lets home-keyed walks skip the full VM table.
  std::vector<std::vector<VmId>> vms_by_home;
  // Per home host: how many of its VMs currently have kPartial residency.
  // Maintained by Actuator::SetResidency; the memory-server refresh on every
  // host sleep reads it instead of scanning the VM table.
  std::vector<int> partials_homed;
  // Planner-relevant change log (see DirtyTracker). Mutable because it is
  // bookkeeping *about* the state, consumed and cleared by the planner
  // through the read-only view — clearing it cannot change any simulation
  // outcome, only how much cached scan state the next refresh recomputes.
  mutable DirtyTracker dirty;
};

// The strategies' window onto ClusterState. Cheap to construct (four
// pointers); valid only while the owning ClusterManager is alive and only
// within the planning call it was handed to.
class ClusterView {
 public:
  ClusterView(const ClusterConfig& config, const ClusterState& state, Rng* planning_rng,
              WorkingSetSampler* ws_sampler)
      : config_(&config), state_(&state), rng_(planning_rng), ws_sampler_(ws_sampler) {}

  const ClusterConfig& config() const { return *config_; }
  size_t num_hosts() const { return state_->hosts.size(); }
  size_t num_vms() const { return state_->vms.size(); }
  const ClusterHost& host(HostId id) const { return *state_->hosts[id]; }
  const VmSlot& vm(VmId id) const { return state_->vms[id]; }

  // Per-host hardware profile shortcuts (heterogeneous fleets): the host's
  // authoritative resolved power curve and S3 capability. Strategies price
  // savings from these — config().host_power is only the class-0 template.
  const HostPowerProfile& host_power(HostId id) const {
    return state_->hosts[id]->power_profile();
  }
  bool host_s3_capable(HostId id) const { return state_->hosts[id]->s3_capable(); }

  // Idle long enough that the idleness detector trusts it (§3.1's smoothing
  // window over the resource-usage monitor).
  bool TrustedIdle(const VmSlot& vm, SimTime now) const {
    if (vm.activity != VmActivity::kIdle) {
      return false;
    }
    SimTime window = config_->planning_interval * config_->idle_smoothing_intervals;
    return now - vm.idle_since >= window;
  }

  // The deterministic planning streams. Both advance a cursor shared with
  // the whole simulation, so *when* a strategy draws is part of its
  // observable behavior: the default strategy reproduces the legacy manager
  // byte for byte precisely because it draws in the same order the monolith
  // did. Strategies must draw only while planning (never store the refs).
  Rng& planning_rng() const { return *rng_; }
  uint64_t SampleWorkingSet() const {
    return ws_sampler_->Sample(config_->vm_memory_bytes);
  }

  // Direct stream access for OASIS_PLAN=verify: the cross-check snapshots
  // and restores both cursors so it can run each planning pass twice
  // (incremental compute, then the authoritative full compute) without
  // advancing the streams twice. Strategies must not use these otherwise.
  Rng* rng_state() const { return rng_; }
  WorkingSetSampler* ws_sampler_state() const { return ws_sampler_; }

  // Home-keyed VM index and the planner change log (see ClusterState).
  const std::vector<VmId>& vms_of_home(HostId home) const {
    return state_->vms_by_home[home];
  }
  DirtyTracker& dirty_tracker() const { return state_->dirty; }

 private:
  const ClusterConfig* config_;
  const ClusterState* state_;
  Rng* rng_;
  WorkingSetSampler* ws_sampler_;
};

}  // namespace oasis

#endif  // OASIS_SRC_CLUSTER_VIEW_H_
