// The simulation clock and run loop.
//
// A Simulator owns an EventQueue and a monotone clock. Components schedule
// closures relative to `now()`; Run() drains events until a deadline or the
// queue empties. Periodic tasks re-arm themselves through SchedulePeriodic.

#ifndef OASIS_SRC_SIM_SIMULATOR_H_
#define OASIS_SRC_SIM_SIMULATOR_H_

#include <functional>
#include <memory>

#include "src/common/units.h"
#include "src/obs/metrics.h"
#include "src/obs/run_context.h"
#include "src/sim/event_queue.h"

namespace oasis {

class Simulator {
 public:
  // `run_context` scopes this simulator's instrumentation to a run-local
  // collector (parallel experiments); nullptr — the default — resolves
  // through the thread's installed context or the process globals.
  explicit Simulator(obs::RunContext* run_context = nullptr)
      : run_context_(run_context) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  obs::RunContext* run_context() const { return run_context_; }

  SimTime now() const { return now_; }

  // Schedules `fn` after `delay` from now (delay must be >= 0).
  EventId ScheduleAfter(SimTime delay, EventFn fn);

  // Schedules `fn` at the absolute time `when` (must be >= now).
  EventId ScheduleAt(SimTime when, EventFn fn);

  // Runs `fn` every `period`, starting at now + first_delay, until the
  // returned handle is cancelled or the simulation stops. `fn` receives the
  // firing time.
  struct PeriodicHandle {
    std::shared_ptr<bool> alive;
    void Cancel() {
      if (alive) {
        *alive = false;
      }
    }
  };
  PeriodicHandle SchedulePeriodic(SimTime first_delay, SimTime period,
                                  std::function<void(SimTime)> fn);

  bool Cancel(EventId id) { return queue_.Cancel(id); }

  // Runs until the queue empties or the clock would pass `deadline`;
  // the clock finishes at min(deadline, last-event time). Events scheduled
  // exactly at the deadline still run.
  void RunUntil(SimTime deadline);

  // Runs until the queue is empty.
  void RunToCompletion();

  // Executes at most one event; returns false when the queue is empty.
  // Single-step path for tests and drivers: resolves every observability
  // gate per call, unlike the run loops, which hoist them.
  bool Step();

  size_t pending_events() const { return queue_.size(); }

  uint64_t events_dispatched() const { return dispatched_; }

 private:
  // The registry to instrument (run-local or global), nullptr when metrics
  // are disabled. Cached instrument pointers are re-resolved whenever the
  // effective registry changes, so one simulator object stays correct across
  // enable/disable flips and context installs.
  obs::MetricsRegistry* EffectiveMetrics();

  // Shared body of RunUntil/RunToCompletion: dispatches events with
  // observability gates hoisted out of the per-event path.
  void RunLoop(SimTime deadline);

  EventQueue queue_;
  SimTime now_ = SimTime::Zero();
  uint64_t dispatched_ = 0;
  obs::RunContext* run_context_ = nullptr;
  obs::MetricsRegistry* metrics_source_ = nullptr;
  obs::Counter* dispatched_counter_ = nullptr;
  obs::Gauge* depth_gauge_ = nullptr;
};

}  // namespace oasis

#endif  // OASIS_SRC_SIM_SIMULATOR_H_
