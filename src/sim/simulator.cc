#include "src/sim/simulator.h"

#include <cassert>
#include <string>
#include <utility>

#include "src/check/check.h"
#include "src/common/log.h"
#include "src/obs/prof.h"
#include "src/obs/trace.h"

namespace oasis {

EventId Simulator::ScheduleAfter(SimTime delay, EventFn fn) {
  assert(delay >= SimTime::Zero() && "negative delay");
  return queue_.Schedule(now_ + delay, std::move(fn));
}

EventId Simulator::ScheduleAt(SimTime when, EventFn fn) {
  if (check::InvariantChecker* c = check::InvariantChecker::IfEnabled()) {
    if (when < now_) {
      c->Report("sim.schedule_into_past", now_,
                "event scheduled at " + std::to_string(when.micros()) +
                    " us, before now=" + std::to_string(now_.micros()) + " us");
    }
  }
  assert(when >= now_ && "scheduling into the past");
  return queue_.Schedule(when, std::move(fn));
}

Simulator::PeriodicHandle Simulator::SchedulePeriodic(SimTime first_delay, SimTime period,
                                                      std::function<void(SimTime)> fn) {
  assert(period > SimTime::Zero());
  auto alive = std::make_shared<bool>(true);
  // The re-arming closure owns the user callback and the liveness flag. It
  // refers to itself only weakly; the strong reference lives in the queued
  // wrapper, so the chain is freed once no firing is pending (a self-capture
  // would be a shared_ptr cycle and leak every periodic task).
  auto rearm = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_rearm = rearm;
  *rearm = [this, alive, period, fn = std::move(fn), weak_rearm]() {
    if (!*alive) {
      return;
    }
    fn(now_);
    if (*alive) {
      if (auto self = weak_rearm.lock()) {
        ScheduleAfter(period, [self]() { (*self)(); });
      }
    }
  };
  ScheduleAfter(first_delay, [rearm]() { (*rearm)(); });
  return PeriodicHandle{std::move(alive)};
}

void Simulator::RunUntil(SimTime deadline) {
  RunLoop(deadline);
  if (now_ < deadline) {
    now_ = deadline;
  }
}

void Simulator::RunToCompletion() { RunLoop(SimTime::Max()); }

void Simulator::RunLoop(SimTime deadline) {
  // The hot dispatch loop. Observability gates (profiler, checker, metrics,
  // tracer) are resolved once here instead of per event; collectors are
  // configured before a run starts and never flip mid-run, which is what
  // makes this equivalent to the per-event resolution in Step(). The
  // sim.events_dispatched counter is accumulated locally and flushed on
  // exit (the registry is only exported after the run returns); the
  // queue-depth gauge keeps its per-pop store because its last-written
  // value — depth after the final pop, before that event's own schedules —
  // is pinned by the metric digests.
  const bool profiling = prof::Profiler::Enabled();
  check::InvariantChecker* checker = check::InvariantChecker::IfEnabled();
  obs::Counter* dispatched_counter =
      EffectiveMetrics() != nullptr ? dispatched_counter_ : nullptr;
  obs::Gauge* depth_gauge = dispatched_counter != nullptr ? depth_gauge_ : nullptr;
  obs::Tracer* tracer =
      run_context_ != nullptr
          ? (run_context_->tracer().enabled() ? &run_context_->tracer() : nullptr)
          : obs::Tracer::IfEnabled();
  uint64_t batched = 0;
  while (!queue_.empty() && queue_.NextTime() <= deadline) {
    const uint64_t t_pop = profiling ? prof::Profiler::NowNs() : 0;
    EventQueue::Popped ev = queue_.Pop();
    const uint64_t t_run = profiling ? prof::Profiler::NowNs() : 0;
    if (profiling) {
      prof::Profiler::Instance().RecordSpan(prof::Phase::kSimHeapPop, t_pop, t_run);
    }
    if (checker != nullptr && ev.time < now_) {
      checker->Report("sim.event_time_monotonic", now_,
                      "popped event at " + std::to_string(ev.time.micros()) +
                          " us behind clock " + std::to_string(now_.micros()) + " us");
    }
    assert(ev.time >= now_);
    now_ = ev.time;
    SetLogSimTime(now_);
    ++dispatched_;
    ++batched;
    if (depth_gauge != nullptr) {
      depth_gauge->Set(static_cast<double>(queue_.size()));
    }
    if (tracer != nullptr && (dispatched_ & 0x3f) == 0) {
      tracer->CounterValue("sim", "queue_depth", now_, static_cast<int64_t>(queue_.size()));
    }
    ev.fn();
    if (profiling) {
      prof::Profiler::Instance().RecordSpan(prof::Phase::kSimDispatch, t_run,
                                            prof::Profiler::NowNs());
    }
  }
  if (dispatched_counter != nullptr && batched > 0) {
    dispatched_counter->Increment(batched);
  }
}

obs::MetricsRegistry* Simulator::EffectiveMetrics() {
  obs::MetricsRegistry* registry =
      run_context_ != nullptr
          ? (run_context_->metrics().enabled() ? &run_context_->metrics() : nullptr)
          : obs::MetricsRegistry::IfEnabled();
  if (registry != nullptr && registry != metrics_source_) {
    metrics_source_ = registry;
    dispatched_counter_ = registry->counter("sim.events_dispatched");
    depth_gauge_ = registry->gauge("sim.queue_depth");
  }
  return registry;
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  // Wall-clock attribution of the event loop (OASIS_PROF): heap maintenance
  // vs. closure execution. Three clock reads per event when profiling, zero
  // when off — the gate is one relaxed atomic load.
  const bool profiling = prof::Profiler::Enabled();
  const uint64_t t_pop = profiling ? prof::Profiler::NowNs() : 0;
  EventQueue::Popped ev = queue_.Pop();
  const uint64_t t_run = profiling ? prof::Profiler::NowNs() : 0;
  if (profiling) {
    prof::Profiler::Instance().RecordSpan(prof::Phase::kSimHeapPop, t_pop, t_run);
  }
  if (check::InvariantChecker* c = check::InvariantChecker::IfEnabled()) {
    // Event-queue sim-time monotonicity: dispatch order must never move the
    // clock backwards. Per-event hot path, so only the failure reports; the
    // passing case costs the IfEnabled load and one predicted branch.
    if (ev.time < now_) {
      c->Report("sim.event_time_monotonic", now_,
                "popped event at " + std::to_string(ev.time.micros()) +
                    " us behind clock " + std::to_string(now_.micros()) + " us");
    }
  }
  assert(ev.time >= now_);
  now_ = ev.time;
  SetLogSimTime(now_);
  ++dispatched_;
  if (EffectiveMetrics() != nullptr) {
    dispatched_counter_->Increment();
    depth_gauge_->Set(static_cast<double>(queue_.size()));
  }
  obs::Tracer* tracer =
      run_context_ != nullptr
          ? (run_context_->tracer().enabled() ? &run_context_->tracer() : nullptr)
          : obs::Tracer::IfEnabled();
  if (tracer != nullptr) {
    // Sample the queue-depth counter track; every dispatch would flood the
    // bounded ring and evict the spans the track is meant to contextualize.
    if ((dispatched_ & 0x3f) == 0) {
      tracer->CounterValue("sim", "queue_depth", now_, static_cast<int64_t>(queue_.size()));
    }
  }
  ev.fn();
  if (profiling) {
    prof::Profiler::Instance().RecordSpan(prof::Phase::kSimDispatch, t_run,
                                          prof::Profiler::NowNs());
  }
  return true;
}

}  // namespace oasis
