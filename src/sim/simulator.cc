#include "src/sim/simulator.h"

#include <cassert>
#include <utility>

namespace oasis {

EventId Simulator::ScheduleAfter(SimTime delay, EventFn fn) {
  assert(delay >= SimTime::Zero() && "negative delay");
  return queue_.Schedule(now_ + delay, std::move(fn));
}

EventId Simulator::ScheduleAt(SimTime when, EventFn fn) {
  assert(when >= now_ && "scheduling into the past");
  return queue_.Schedule(when, std::move(fn));
}

Simulator::PeriodicHandle Simulator::SchedulePeriodic(SimTime first_delay, SimTime period,
                                                      std::function<void(SimTime)> fn) {
  assert(period > SimTime::Zero());
  auto alive = std::make_shared<bool>(true);
  // The re-arming closure owns the user callback and the liveness flag.
  auto rearm = std::make_shared<std::function<void()>>();
  *rearm = [this, alive, period, fn = std::move(fn), rearm]() {
    if (!*alive) {
      return;
    }
    fn(now_);
    if (*alive) {
      ScheduleAfter(period, *rearm);
    }
  };
  ScheduleAfter(first_delay, *rearm);
  return PeriodicHandle{std::move(alive)};
}

void Simulator::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.NextTime() <= deadline) {
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

void Simulator::RunToCompletion() {
  while (Step()) {
  }
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  EventQueue::Popped ev = queue_.Pop();
  assert(ev.time >= now_);
  now_ = ev.time;
  ev.fn();
  return true;
}

}  // namespace oasis
