// Cancellable discrete-event queue.
//
// Events are closures scheduled at absolute simulated times. The closure
// lives inline in the heap entry — Schedule and Pop touch only the heap
// array, no per-event hash-map traffic on the simulator's hottest loop.
//
// Cancellation is lazy: Cancel flips a generation-checked tombstone in a
// small slot table and the dead entry is skipped (and destroyed) when it
// surfaces at the top of the heap. EventIds encode (slot, generation), so a
// stale id held across slot reuse can never cancel the wrong event.

#ifndef OASIS_SRC_SIM_EVENT_QUEUE_H_
#define OASIS_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/units.h"

namespace oasis {

using EventFn = std::function<void()>;
using EventId = uint64_t;

inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  // Schedules `fn` at absolute time `when`. Ties break in schedule order.
  EventId Schedule(SimTime when, EventFn fn);

  // Cancels a pending event; returns false if it already ran or was
  // cancelled. The closure of a cancelled event is destroyed lazily, when
  // its tombstoned heap entry surfaces.
  bool Cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  // Time of the earliest pending event; SimTime::Max() when empty.
  SimTime NextTime() const;

  // Pops and returns the earliest pending event. Must not be empty.
  struct Popped {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  Popped Pop();

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
    uint32_t slot;
    uint32_t generation;
    EventFn fn;
  };

  // Per-slot liveness; ids are (generation << 32) | slot. A slot is recycled
  // as soon as its event runs or is cancelled — the generation bump makes
  // any heap entry or EventId still referring to the old tenant inert.
  struct Slot {
    uint32_t generation = 0;
    bool live = false;
  };

  bool EntryLive(const Entry& entry) const {
    const Slot& slot = slots_[entry.slot];
    return slot.live && slot.generation == entry.generation;
  }
  // Drops tombstoned entries off the heap top (destroying their closures).
  void SkipCancelled() const;

  // Min-heap on (time, seq) maintained with push_heap/pop_heap: a plain
  // vector lets Pop move the closure out of the extracted entry, which
  // std::priority_queue's const top() forbids.
  mutable std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  size_t live_count_ = 0;
  uint64_t next_seq_ = 1;
};

}  // namespace oasis

#endif  // OASIS_SRC_SIM_EVENT_QUEUE_H_
