// Cancellable discrete-event queue.
//
// Events are closures scheduled at absolute simulated times. Closure state
// lives inline in the pooled slot table (EventClosure below, a fixed-capacity
// small-buffer type) and heap entries are trivially copyable 24-byte records,
// so Schedule and Pop perform no per-event heap allocation and heap sifts
// move plain words instead of running std::function managers.
//
// Cancellation destroys the closure eagerly (captured state is released the
// moment Cancel returns) and flips a generation-checked tombstone; the dead
// heap entry is skipped when it surfaces at the top. EventIds encode
// (slot, generation), so a stale id held across slot reuse can never cancel
// the wrong event.

#ifndef OASIS_SRC_SIM_EVENT_QUEUE_H_
#define OASIS_SRC_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/units.h"

namespace oasis {

// A move-only callable with fixed inline storage and no heap fallback:
// scheduling an event is a placement-new into the slot table, dispatching it
// is one indirect call through a static per-type ops table (no vtable, no
// std::function manager protocol). Captures larger than kCapacity are a
// compile error — move bulky state into the callee (see
// ClusterHost::RequestSleep for the pattern) rather than raising the cap;
// the cap is what keeps slot-table relocation cheap.
class EventClosure {
 public:
  static constexpr size_t kCapacity = 48;

  EventClosure() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, EventClosure>>>
  // NOLINTNEXTLINE(google-explicit-constructor): callables convert implicitly
  // so Schedule call sites read exactly as they did with std::function.
  EventClosure(F&& fn) {
    using Fn = std::remove_cvref_t<F>;
    static_assert(sizeof(Fn) <= kCapacity,
                  "event closure captures exceed the 48-byte inline buffer; "
                  "shrink the capture list or move state into the callee");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "event closure capture is over-aligned");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "event closures must be nothrow-movable (slot relocation)");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
    ops_ = &OpsFor<Fn>::kOps;
  }

  EventClosure(EventClosure&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  EventClosure& operator=(EventClosure&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventClosure(const EventClosure&) = delete;
  EventClosure& operator=(const EventClosure&) = delete;

  ~EventClosure() { Reset(); }

  // Destroys the held callable (running capture destructors inline) and
  // leaves the closure empty.
  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs dst from src, then destroys src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  struct OpsFor {
    static void Invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void Relocate(void* dst, void* src) {
      Fn* s = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*s));
      s->~Fn();
    }
    static void Destroy(void* p) { static_cast<Fn*>(p)->~Fn(); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
  };

  const Ops* ops_ = nullptr;
  alignas(alignof(std::max_align_t)) unsigned char buf_[kCapacity];
};

using EventFn = EventClosure;
using EventId = uint64_t;

inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  // Schedules `fn` at absolute time `when`. Ties break in schedule order.
  EventId Schedule(SimTime when, EventFn fn);

  // Cancels a pending event; returns false if it already ran or was
  // cancelled. The closure is destroyed before Cancel returns — captured
  // state (shared_ptrs, handles) is released immediately, not when the
  // tombstoned heap entry eventually surfaces.
  bool Cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  // Time of the earliest pending event; SimTime::Max() when empty.
  SimTime NextTime() const;

  // Pops and returns the earliest pending event. Must not be empty. The
  // closure is moved out of the slot before the slot is recycled, so the
  // callable may freely schedule new events (which can reuse its old slot).
  struct Popped {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  Popped Pop();

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
    uint32_t slot;
    uint32_t generation;
  };
  static_assert(std::is_trivially_copyable_v<Entry>,
                "heap sifts must move plain words");

  // Per-slot liveness plus the pooled closure storage; ids are
  // (generation << 32) | slot. A slot is recycled as soon as its event runs
  // or is cancelled — the generation bump makes any heap entry or EventId
  // still referring to the old tenant inert.
  struct Slot {
    uint32_t generation = 0;
    bool live = false;
    EventClosure closure;
  };

  bool EntryLive(const Entry& entry) const {
    const Slot& slot = slots_[entry.slot];
    return slot.live && slot.generation == entry.generation;
  }
  // Drops tombstoned entries off the heap top (their closures were already
  // destroyed by Cancel).
  void SkipCancelled() const;

  // Min-heap on (time, seq) maintained with push_heap/pop_heap over a plain
  // vector of POD entries.
  mutable std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  size_t live_count_ = 0;
  uint64_t next_seq_ = 1;
};

}  // namespace oasis

#endif  // OASIS_SRC_SIM_EVENT_QUEUE_H_
