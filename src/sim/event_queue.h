// Cancellable discrete-event queue.
//
// Events are closures scheduled at absolute simulated times. Cancellation is
// lazy: a cancelled event stays in the heap but is skipped on pop, which
// keeps both schedule and cancel cheap.

#ifndef OASIS_SRC_SIM_EVENT_QUEUE_H_
#define OASIS_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/common/units.h"

namespace oasis {

using EventFn = std::function<void()>;
using EventId = uint64_t;

inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  // Schedules `fn` at absolute time `when`. Ties break in schedule order.
  EventId Schedule(SimTime when, EventFn fn);

  // Cancels a pending event; returns false if it already ran or was
  // cancelled.
  bool Cancel(EventId id);

  bool empty() const { return live_.empty(); }
  size_t size() const { return live_.size(); }

  // Time of the earliest pending event; SimTime::Max() when empty.
  SimTime NextTime() const;

  // Pops and returns the earliest pending event. Must not be empty.
  struct Popped {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  Popped Pop();

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
    EventId id;
    bool operator>(const Entry& o) const {
      if (time != o.time) {
        return time > o.time;
      }
      return seq > o.seq;
    }
  };

  // Drops heap entries whose event has been cancelled.
  void SkipCancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, EventFn> live_;
  uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
};

}  // namespace oasis

#endif  // OASIS_SRC_SIM_EVENT_QUEUE_H_
