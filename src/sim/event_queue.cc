#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

namespace oasis {

EventId EventQueue::Schedule(SimTime when, EventFn fn) {
  EventId id = next_id_++;
  heap_.push(Entry{when, next_seq_++, id});
  live_.emplace(id, std::move(fn));
  return id;
}

bool EventQueue::Cancel(EventId id) { return live_.erase(id) > 0; }

void EventQueue::SkipCancelled() const {
  while (!heap_.empty() && live_.find(heap_.top().id) == live_.end()) {
    heap_.pop();
  }
}

SimTime EventQueue::NextTime() const {
  SkipCancelled();
  return heap_.empty() ? SimTime::Max() : heap_.top().time;
}

EventQueue::Popped EventQueue::Pop() {
  SkipCancelled();
  assert(!heap_.empty() && "Pop() on empty EventQueue");
  Entry top = heap_.top();
  heap_.pop();
  auto it = live_.find(top.id);
  Popped out{top.time, top.id, std::move(it->second)};
  live_.erase(it);
  return out;
}

}  // namespace oasis
