#include "src/sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace oasis {
namespace {

// Min-heap ordering: the entry that pops first compares "greater".
struct EntryAfter {
  template <typename Entry>
  bool operator()(const Entry& a, const Entry& b) const {
    if (a.time != b.time) {
      return a.time > b.time;
    }
    return a.seq > b.seq;
  }
};

constexpr uint32_t kSlotBits = 32;

EventId MakeId(uint32_t slot, uint32_t generation) {
  return (static_cast<EventId>(generation) << kSlotBits) | slot;
}

uint32_t SlotOf(EventId id) { return static_cast<uint32_t>(id); }
uint32_t GenerationOf(EventId id) { return static_cast<uint32_t>(id >> kSlotBits); }

}  // namespace

EventId EventQueue::Schedule(SimTime when, EventFn fn) {
  uint32_t slot_index;
  if (!free_slots_.empty()) {
    slot_index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot_index = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[slot_index];
  // Generations start at 1 so no valid id ever equals kInvalidEventId.
  ++slot.generation;
  slot.live = true;
  slot.closure = std::move(fn);
  heap_.push_back(Entry{when, next_seq_++, slot_index, slot.generation});
  std::push_heap(heap_.begin(), heap_.end(), EntryAfter{});
  ++live_count_;
  return MakeId(slot_index, slot.generation);
}

bool EventQueue::Cancel(EventId id) {
  uint32_t slot_index = SlotOf(id);
  if (slot_index >= slots_.size()) {
    return false;
  }
  Slot& slot = slots_[slot_index];
  if (!slot.live || slot.generation != GenerationOf(id)) {
    return false;
  }
  // Tombstone: the heap entry stays (its generation no longer matches once
  // the slot is recycled, and `live` is false until then) and is skipped on
  // pop. The closure dies here — capture destructors run inline — and the
  // slot is immediately reusable.
  slot.live = false;
  slot.closure.Reset();
  free_slots_.push_back(slot_index);
  --live_count_;
  return true;
}

void EventQueue::SkipCancelled() const {
  while (!heap_.empty() && !EntryLive(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), EntryAfter{});
    heap_.pop_back();
  }
}

SimTime EventQueue::NextTime() const {
  SkipCancelled();
  return heap_.empty() ? SimTime::Max() : heap_.front().time;
}

EventQueue::Popped EventQueue::Pop() {
  SkipCancelled();
  assert(!heap_.empty() && "Pop() on empty EventQueue");
  std::pop_heap(heap_.begin(), heap_.end(), EntryAfter{});
  Entry top = heap_.back();
  heap_.pop_back();
  Slot& slot = slots_[top.slot];
  // Move the closure to the caller before recycling the slot: the callable
  // may schedule new events, which may claim this very slot (or grow the
  // slot table and invalidate references into it).
  EventFn fn = std::move(slot.closure);
  slot.live = false;
  free_slots_.push_back(top.slot);
  --live_count_;
  return Popped{top.time, MakeId(top.slot, top.generation), std::move(fn)};
}

}  // namespace oasis
