// Deterministic fault injection for the consolidation control plane.
//
// The paper's §3.1 controller assumes every wake-on-LAN, RPC, migration and
// S3 transition succeeds. This subsystem removes that assumption without
// giving up reproducibility: every fault is either scheduled explicitly at a
// sim-time or sampled from per-class rates using xoshiro streams derived
// from the run seed, so the same seed always produces the same fault
// schedule — and therefore byte-identical simulation results.
//
// Two kinds of fault classes exist:
//   * time-scheduled (host crash, memory-server failure, migration abort):
//     FaultPlan::Build pre-samples their firing times as a Poisson process
//     over the configured horizon and merges explicitly scheduled entries;
//     the cluster manager walks the plan as simulator events.
//   * query-sampled (WoL loss, S3 resume hang, RPC drop/delay, memory-server
//     serve failure): the affected component asks the injector at the moment
//     the operation happens (Sample*); each class draws from its own stream
//     so interleaving across components cannot perturb another class.
//
// A disabled injector (the default) builds no plan, owns no streams, and
// every Sample* early-returns without consuming a draw — runs with faults
// disabled are byte-identical to builds without the subsystem.
//
// Every injected fault is recorded as an obs instant ("fault"/"inject.<c>")
// and a fault.injected.<c> counter; every completed recovery as a span
// ("fault"/"recover.<c>") and fault.recovered.<c>. Faults whose scheduled
// target is ineligible (e.g. a crash when no consolidation host is powered)
// are recorded under fault.skipped.<c> instead, so tests can assert an exact
// inject/recover pairing.

#ifndef OASIS_SRC_FAULT_FAULT_H_
#define OASIS_SRC_FAULT_FAULT_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/units.h"
#include "src/obs/trace.h"

namespace oasis {

enum class FaultClass {
  kHostCrash = 0,          // consolidation host loses power instantly
  kWolLoss,                // wake-on-LAN packet dropped; re-sent on a timeout
  kRpcDrop,                // control-plane RPC lost; caller retries with backoff
  kRpcDelay,               // control-plane RPC delayed by FaultConfig::rpc_delay
  kMemoryServerFailure,    // a sleeping home's memory server dies
  kMigrationAbort,         // an in-flight migration aborts at a page boundary
  kResumeHang,             // S3 resume wedges until the watchdog fires
};

inline constexpr int kNumFaultClasses = 7;

// Stable lowercase identifier used in metric names ("fault.injected.<name>").
const char* FaultClassName(FaultClass fault);

// One explicitly scheduled (or plan-sampled) fault firing.
struct ScheduledFault {
  SimTime at;
  FaultClass fault = FaultClass::kHostCrash;
  // Target host/VM id depending on the class; -1 lets the injection site pick
  // a deterministic eligible target (lowest-id match).
  int64_t target = -1;

  bool operator==(const ScheduledFault& o) const {
    return at == o.at && fault == o.fault && target == o.target;
  }
};

struct FaultConfig {
  // Master switch. When false the injector is inert: no plan, no streams, no
  // draws, no recording — the simulation behaves exactly as if the subsystem
  // did not exist.
  bool enabled = false;

  // --- query-sampled classes (per-operation probabilities) ---------------
  double wol_loss_probability = 0.0;         // per WoL send
  double resume_hang_probability = 0.0;      // per S3 resume
  double rpc_drop_probability = 0.0;         // per RPC delivery
  double rpc_delay_probability = 0.0;        // per RPC delivery
  double serve_failure_probability = 0.0;    // per memory-server page serve
  SimTime rpc_delay = SimTime::Millis(50);

  // --- time-scheduled classes (Poisson rates over `horizon`) -------------
  double host_crash_per_hour = 0.0;
  double memory_server_failure_per_hour = 0.0;
  double migration_abort_per_hour = 0.0;
  SimTime horizon = SimTime::Hours(24.0);

  // Explicit fault schedule, merged (and time-sorted) with the sampled plan.
  std::vector<ScheduledFault> scheduled;

  // --- recovery policy knobs ---------------------------------------------
  SimTime wol_retry_timeout = SimTime::Seconds(1.0);  // re-send after no link-up
  int max_wol_retries = 5;                            // then escalate
  SimTime resume_watchdog = SimTime::Seconds(10.0);   // hung resume is re-tried
  int max_rpc_attempts = 4;
  SimTime rpc_backoff_initial = SimTime::Millis(10);
  SimTime rpc_backoff_cap = SimTime::Seconds(1.0);
  // A VM on a crashed host restarts from its home's disk image; boot takes
  // this long after the home host is powered.
  SimTime vm_restart_latency = SimTime::Seconds(30.0);

  Status Validate() const;

  // A representative mix for chaos runs: every class enabled at rates that
  // keep the cluster functional while firing each class several times per
  // simulated day.
  static FaultConfig ChaosDay();
};

// The pre-sampled, time-sorted schedule of the time-scheduled fault classes.
struct FaultPlan {
  std::vector<ScheduledFault> events;

  // Deterministic: the same (config, seed) always yields the same plan. The
  // plan draws from per-class streams derived from `seed`, so adding a rate
  // for one class never shifts another class's firing times.
  static FaultPlan Build(const FaultConfig& config, uint64_t seed);
};

// The run-time injection engine. One instance per simulated cluster (and
// shared with the control-plane bus/memory servers of that cluster), holding
// the plan, the per-class query streams, and the injected/recovered/skipped
// accounting the chaos tests assert on.
class FaultInjector {
 public:
  // Inert injector (the default-constructed state everywhere).
  FaultInjector();
  // Builds the plan and query streams when config.enabled; inert otherwise.
  FaultInjector(const FaultConfig& config, uint64_t seed);

  bool enabled() const { return config_.enabled; }
  const FaultConfig& config() const { return config_; }
  const FaultPlan& plan() const { return plan_; }

  // --- query-sampled classes ---------------------------------------------
  // Number of consecutive WoL packets lost for this wake (0 = delivered
  // first try; capped at max_wol_retries, at which point the caller
  // escalates). Records the injection instant when non-zero.
  int SampleWolLosses(SimTime now, int64_t host);
  // True when this S3 resume wedges and costs the watchdog timeout.
  bool SampleResumeHang(SimTime now, int64_t host);
  // True when this RPC delivery is dropped (caller sees kUnavailable).
  bool SampleRpcDrop(SimTime now);
  // True when this RPC delivery is delayed by config().rpc_delay.
  bool SampleRpcDelay(SimTime now);
  // True when this memory-server page serve fails the whole server.
  bool SampleServeFailure(SimTime now, int64_t vm);

  // --- recording ----------------------------------------------------------
  // The injection sites call these so counters and the trace stay the single
  // source of truth for the inject/recover pairing tests.
  void RecordInjected(FaultClass fault, SimTime at, obs::TraceArgs args = {});
  void RecordRecovered(FaultClass fault, SimTime start, SimTime end,
                       obs::TraceArgs args = {});
  void RecordSkipped(FaultClass fault, SimTime at, obs::TraceArgs args = {});

  uint64_t injected(FaultClass fault) const {
    return injected_[static_cast<int>(fault)];
  }
  uint64_t recovered(FaultClass fault) const {
    return recovered_[static_cast<int>(fault)];
  }
  uint64_t skipped(FaultClass fault) const {
    return skipped_[static_cast<int>(fault)];
  }
  uint64_t TotalInjected() const;
  uint64_t TotalRecovered() const;

 private:
  Rng& StreamFor(FaultClass fault) { return streams_[static_cast<int>(fault)]; }

  FaultConfig config_;
  FaultPlan plan_;
  std::vector<Rng> streams_;  // one per FaultClass; empty when disabled
  uint64_t injected_[kNumFaultClasses] = {};
  uint64_t recovered_[kNumFaultClasses] = {};
  uint64_t skipped_[kNumFaultClasses] = {};
};

}  // namespace oasis

#endif  // OASIS_SRC_FAULT_FAULT_H_
