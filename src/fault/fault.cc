#include "src/fault/fault.h"

#include <algorithm>
#include <string>

#include "src/common/log.h"
#include "src/obs/metrics.h"

namespace oasis {
namespace {

// Tracer names must be string literals (they outlive the call), so the
// class-indexed tables below replace string concatenation on the hot path.
constexpr const char* kClassNames[kNumFaultClasses] = {
    "host_crash", "wol_loss",        "rpc_drop",   "rpc_delay",
    "ms_failure", "migration_abort", "resume_hang"};

constexpr const char* kInjectNames[kNumFaultClasses] = {
    "inject.host_crash", "inject.wol_loss",        "inject.rpc_drop",
    "inject.rpc_delay",  "inject.ms_failure",      "inject.migration_abort",
    "inject.resume_hang"};

constexpr const char* kRecoverNames[kNumFaultClasses] = {
    "recover.host_crash", "recover.wol_loss",        "recover.rpc_drop",
    "recover.rpc_delay",  "recover.ms_failure",      "recover.migration_abort",
    "recover.resume_hang"};

// Distinct stream salts per class: the plan streams sample firing times, the
// query streams drive per-operation Bernoulli draws. Deriving both from the
// run seed with golden-ratio multiples keeps classes decorrelated while the
// whole schedule stays a pure function of (config, seed).
uint64_t PlanSalt(int c) {
  return 0x9E3779B97F4A7C15ull * static_cast<uint64_t>(c + 1);
}
uint64_t QuerySalt(int c) {
  return 0xC2B2AE3D27D4EB4Full * static_cast<uint64_t>(c + 1);
}

void SamplePoisson(FaultClass fault, double per_hour, SimTime horizon, uint64_t seed,
                   std::vector<ScheduledFault>& out) {
  if (per_hour <= 0.0 || horizon <= SimTime::Zero()) {
    return;
  }
  Rng rng(seed ^ PlanSalt(static_cast<int>(fault)));
  double mean_hours = 1.0 / per_hour;
  SimTime t = SimTime::Hours(rng.NextExponential(mean_hours));
  while (t <= horizon) {
    out.push_back({t, fault, -1});
    t += SimTime::Hours(rng.NextExponential(mean_hours));
  }
}

void BumpCounter(const char* kind, FaultClass fault) {
  if (obs::MetricsRegistry* m = obs::MetricsRegistry::IfEnabled()) {
    m->counter(std::string("fault.") + kind + "." +
               kClassNames[static_cast<int>(fault)])
        ->Increment();
  }
}

}  // namespace

const char* FaultClassName(FaultClass fault) {
  return kClassNames[static_cast<int>(fault)];
}

Status FaultConfig::Validate() const {
  for (double p : {wol_loss_probability, resume_hang_probability, rpc_drop_probability,
                   rpc_delay_probability, serve_failure_probability}) {
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("fault probability outside [0,1]");
    }
  }
  for (double r :
       {host_crash_per_hour, memory_server_failure_per_hour, migration_abort_per_hour}) {
    if (r < 0.0) {
      return Status::InvalidArgument("fault rate must be non-negative");
    }
  }
  if (max_wol_retries < 1 || max_rpc_attempts < 1) {
    return Status::InvalidArgument("retry limits must be at least 1");
  }
  if (wol_retry_timeout <= SimTime::Zero() || rpc_backoff_initial <= SimTime::Zero() ||
      rpc_backoff_cap < rpc_backoff_initial) {
    return Status::InvalidArgument("invalid retry/backoff timings");
  }
  return Status::Ok();
}

FaultConfig FaultConfig::ChaosDay() {
  FaultConfig config;
  config.enabled = true;
  config.wol_loss_probability = 0.10;
  config.resume_hang_probability = 0.05;
  config.rpc_drop_probability = 0.02;
  config.rpc_delay_probability = 0.05;
  config.serve_failure_probability = 0.0;  // opt-in; fails the whole server
  config.host_crash_per_hour = 0.25;
  config.memory_server_failure_per_hour = 0.5;
  config.migration_abort_per_hour = 1.0;
  return config;
}

FaultPlan FaultPlan::Build(const FaultConfig& config, uint64_t seed) {
  FaultPlan plan;
  if (!config.enabled) {
    return plan;
  }
  SamplePoisson(FaultClass::kHostCrash, config.host_crash_per_hour, config.horizon, seed,
                plan.events);
  SamplePoisson(FaultClass::kMemoryServerFailure, config.memory_server_failure_per_hour,
                config.horizon, seed, plan.events);
  SamplePoisson(FaultClass::kMigrationAbort, config.migration_abort_per_hour,
                config.horizon, seed, plan.events);
  for (const ScheduledFault& f : config.scheduled) {
    plan.events.push_back(f);
  }
  std::sort(plan.events.begin(), plan.events.end(),
            [](const ScheduledFault& a, const ScheduledFault& b) {
              if (a.at != b.at) {
                return a.at < b.at;
              }
              if (a.fault != b.fault) {
                return a.fault < b.fault;
              }
              return a.target < b.target;
            });
  return plan;
}

FaultInjector::FaultInjector() = default;

FaultInjector::FaultInjector(const FaultConfig& config, uint64_t seed) : config_(config) {
  if (!config_.enabled) {
    return;
  }
  Status valid = config_.Validate();
  if (!valid.ok()) {
    OASIS_LOG(kError) << "invalid fault config: " << valid.ToString()
                      << "; fault injection disabled";
    config_.enabled = false;
    return;
  }
  plan_ = FaultPlan::Build(config_, seed);
  streams_.reserve(kNumFaultClasses);
  for (int c = 0; c < kNumFaultClasses; ++c) {
    streams_.emplace_back(seed ^ QuerySalt(c));
  }
}

int FaultInjector::SampleWolLosses(SimTime now, int64_t host) {
  // Early-out before touching the stream: a disabled (or zero-probability)
  // injector must not consume draws, or enabling the subsystem with zero
  // rates would already perturb downstream randomness.
  if (!enabled() || config_.wol_loss_probability <= 0.0) {
    return 0;
  }
  Rng& rng = StreamFor(FaultClass::kWolLoss);
  int losses = 0;
  while (losses < config_.max_wol_retries && rng.NextBool(config_.wol_loss_probability)) {
    ++losses;
  }
  if (losses > 0) {
    RecordInjected(FaultClass::kWolLoss, now, obs::TraceArgs{host, -1, losses});
  }
  return losses;
}

bool FaultInjector::SampleResumeHang(SimTime now, int64_t host) {
  if (!enabled() || config_.resume_hang_probability <= 0.0) {
    return false;
  }
  if (!StreamFor(FaultClass::kResumeHang).NextBool(config_.resume_hang_probability)) {
    return false;
  }
  RecordInjected(FaultClass::kResumeHang, now, obs::TraceArgs{host});
  return true;
}

bool FaultInjector::SampleRpcDrop(SimTime now) {
  if (!enabled() || config_.rpc_drop_probability <= 0.0) {
    return false;
  }
  if (!StreamFor(FaultClass::kRpcDrop).NextBool(config_.rpc_drop_probability)) {
    return false;
  }
  RecordInjected(FaultClass::kRpcDrop, now);
  return true;
}

bool FaultInjector::SampleRpcDelay(SimTime now) {
  if (!enabled() || config_.rpc_delay_probability <= 0.0) {
    return false;
  }
  if (!StreamFor(FaultClass::kRpcDelay).NextBool(config_.rpc_delay_probability)) {
    return false;
  }
  RecordInjected(FaultClass::kRpcDelay, now);
  return true;
}

bool FaultInjector::SampleServeFailure(SimTime now, int64_t vm) {
  if (!enabled() || config_.serve_failure_probability <= 0.0) {
    return false;
  }
  if (!StreamFor(FaultClass::kMemoryServerFailure)
           .NextBool(config_.serve_failure_probability)) {
    return false;
  }
  RecordInjected(FaultClass::kMemoryServerFailure, now, obs::TraceArgs{-1, vm});
  return true;
}

void FaultInjector::RecordInjected(FaultClass fault, SimTime at, obs::TraceArgs args) {
  ++injected_[static_cast<int>(fault)];
  OASIS_CLOG(kInfo, "fault") << "inject " << FaultClassName(fault) << " host=" << args.host
                             << " vm=" << args.vm;
  if (obs::Tracer* t = obs::Tracer::IfEnabled()) {
    t->Instant("fault", kInjectNames[static_cast<int>(fault)], at, args);
  }
  BumpCounter("injected", fault);
}

void FaultInjector::RecordRecovered(FaultClass fault, SimTime start, SimTime end,
                                    obs::TraceArgs args) {
  ++recovered_[static_cast<int>(fault)];
  if (obs::Tracer* t = obs::Tracer::IfEnabled()) {
    t->Complete("fault", kRecoverNames[static_cast<int>(fault)], start, end, args);
  }
  BumpCounter("recovered", fault);
}

void FaultInjector::RecordSkipped(FaultClass fault, SimTime at, obs::TraceArgs args) {
  ++skipped_[static_cast<int>(fault)];
  OASIS_CLOG(kDebug, "fault") << "skip " << FaultClassName(fault)
                              << " (no eligible target)";
  if (obs::Tracer* t = obs::Tracer::IfEnabled()) {
    t->Instant("fault", "skipped", at, args);
  }
  BumpCounter("skipped", fault);
}

uint64_t FaultInjector::TotalInjected() const {
  uint64_t n = 0;
  for (uint64_t c : injected_) {
    n += c;
  }
  return n;
}

uint64_t FaultInjector::TotalRecovered() const {
  uint64_t n = 0;
  for (uint64_t c : recovered_) {
    n += c;
  }
  return n;
}

}  // namespace oasis
