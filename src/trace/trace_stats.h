// Aggregate statistics over trace sets — the measurements §5.2 reports about
// the input workload, used both by tests (to validate the generator's
// calibration) and by the Fig 7 bench (active-VM timeline).

#ifndef OASIS_SRC_TRACE_TRACE_STATS_H_
#define OASIS_SRC_TRACE_TRACE_STATS_H_

#include <vector>

#include "src/trace/activity_trace.h"

namespace oasis {

// Number of simultaneously active users at each interval.
std::vector<int> ActiveCountSeries(const TraceSet& set);

// Peak of ActiveCountSeries as a fraction of the user count.
double PeakActiveFraction(const TraceSet& set);

// Interval index at which the active count peaks / bottoms out.
int PeakInterval(const TraceSet& set);
int TroughInterval(const TraceSet& set);

// Mean over intervals of the fraction of users active.
double MeanActiveFraction(const TraceSet& set);

// Fraction of intervals during which *all* users in [first, first+count) are
// simultaneously idle — the quantity that bounds OnlyPartial's savings when
// those users' VMs share one home host (§5.3 reports ~13% for 30 VMs).
double AllIdleFraction(const TraceSet& set, size_t first, size_t count);

// Mean of AllIdleFraction over consecutive groups of `group_size` users.
double MeanAllIdleFraction(const TraceSet& set, size_t group_size);

}  // namespace oasis

#endif  // OASIS_SRC_TRACE_TRACE_STATS_H_
