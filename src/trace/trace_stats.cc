#include "src/trace/trace_stats.h"

#include <algorithm>
#include <cassert>

namespace oasis {

std::vector<int> ActiveCountSeries(const TraceSet& set) {
  std::vector<int> counts(kIntervalsPerDay, 0);
  for (const UserDay& day : set) {
    for (int i = 0; i < kIntervalsPerDay; ++i) {
      if (day.IsActive(i)) {
        ++counts[static_cast<size_t>(i)];
      }
    }
  }
  return counts;
}

double PeakActiveFraction(const TraceSet& set) {
  if (set.empty()) {
    return 0.0;
  }
  std::vector<int> counts = ActiveCountSeries(set);
  int peak = *std::max_element(counts.begin(), counts.end());
  return static_cast<double>(peak) / static_cast<double>(set.size());
}

int PeakInterval(const TraceSet& set) {
  std::vector<int> counts = ActiveCountSeries(set);
  return static_cast<int>(std::max_element(counts.begin(), counts.end()) - counts.begin());
}

int TroughInterval(const TraceSet& set) {
  std::vector<int> counts = ActiveCountSeries(set);
  return static_cast<int>(std::min_element(counts.begin(), counts.end()) - counts.begin());
}

double MeanActiveFraction(const TraceSet& set) {
  if (set.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const UserDay& day : set) {
    total += day.ActiveFraction();
  }
  return total / static_cast<double>(set.size());
}

double AllIdleFraction(const TraceSet& set, size_t first, size_t count) {
  assert(first + count <= set.size());
  if (count == 0) {
    return 1.0;
  }
  int all_idle = 0;
  for (int i = 0; i < kIntervalsPerDay; ++i) {
    bool any_active = false;
    for (size_t u = first; u < first + count; ++u) {
      if (set[u].IsActive(i)) {
        any_active = true;
        break;
      }
    }
    if (!any_active) {
      ++all_idle;
    }
  }
  return static_cast<double>(all_idle) / kIntervalsPerDay;
}

double MeanAllIdleFraction(const TraceSet& set, size_t group_size) {
  assert(group_size > 0);
  size_t groups = set.size() / group_size;
  if (groups == 0) {
    return 0.0;
  }
  double total = 0.0;
  for (size_t g = 0; g < groups; ++g) {
    total += AllIdleFraction(set, g * group_size, group_size);
  }
  return total / static_cast<double>(groups);
}

}  // namespace oasis
