#include "src/trace/diurnal_prior.h"

#include "src/trace/trace_stats.h"

namespace oasis {

std::vector<double> EstimateDiurnalPrior(const TraceGeneratorConfig& config,
                                         DayKind kind, int n_users, uint64_t seed) {
  TraceGenerator gen(config, seed);
  TraceSet set = gen.GenerateTraceSet(n_users, kind);
  std::vector<int> counts = ActiveCountSeries(set);
  std::vector<double> prior(counts.size(), 0.0);
  for (size_t i = 0; i < counts.size(); ++i) {
    prior[i] = static_cast<double>(counts[i]) / static_cast<double>(n_users);
  }
  return prior;
}

}  // namespace oasis
