// Diurnal activity prior — the expected fraction of users active at each
// 5-minute interval of a day, estimated by Monte-Carlo over the trace
// generator's own Markov structure. PredictiveStrategy uses it as the shape
// of its forecast (scaled online by an observed-activity level); the offline
// oracle has the real day's timeline and doesn't need it.

#ifndef OASIS_SRC_TRACE_DIURNAL_PRIOR_H_
#define OASIS_SRC_TRACE_DIURNAL_PRIOR_H_

#include <cstdint>
#include <vector>

#include "src/trace/trace_generator.h"

namespace oasis {

// Mean active fraction per interval over `n_users` generated user-days.
// Deterministic in (config, kind, n_users, seed); the returned vector has
// kIntervalsPerDay entries in [0, 1].
std::vector<double> EstimateDiurnalPrior(const TraceGeneratorConfig& config,
                                         DayKind kind, int n_users, uint64_t seed);

}  // namespace oasis

#endif  // OASIS_SRC_TRACE_DIURNAL_PRIOR_H_
