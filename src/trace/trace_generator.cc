#include "src/trace/trace_generator.h"

#include <algorithm>
#include <cmath>

namespace oasis {
namespace {

constexpr double kIntervalMinutes = kTraceIntervalSeconds / 60.0;

double ClampHour(double h, double lo, double hi) { return std::clamp(h, lo, hi); }

}  // namespace

TraceGenerator::TraceGenerator(const TraceGeneratorConfig& config, uint64_t seed)
    : config_(config), rng_(seed) {}

UserDay TraceGenerator::GenerateUserDay(DayKind kind) {
  return kind == DayKind::kWeekday ? GenerateWeekday() : GenerateWeekend();
}

TraceSet TraceGenerator::GenerateTraceSet(int n_users, DayKind kind) {
  TraceSet set;
  set.reserve(static_cast<size_t>(n_users));
  for (int i = 0; i < n_users; ++i) {
    set.push_back(GenerateUserDay(kind));
  }
  return set;
}

void TraceGenerator::ApplyNightSessions(UserDay& day, int from, int to) {
  if (to <= from) {
    return;
  }
  // Poisson session count: the expected count scales with how much of the
  // day the window covers (off-hours windows cover ~2/3 of a weekday, so the
  // 1.5 factor makes the per-day expectation come out at the configured rate).
  double window_fraction = static_cast<double>(to - from) / kIntervalsPerDay;
  double expected = config_.night_sessions_per_user_day * window_fraction * 1.5;
  int sessions = 0;
  double acc = rng_.NextExponential(1.0);
  while (acc < expected) {
    ++sessions;
    acc += rng_.NextExponential(1.0);
  }
  for (int s = 0; s < sessions; ++s) {
    int start = from + static_cast<int>(rng_.NextBelow(static_cast<uint64_t>(to - from)));
    double len_minutes =
        std::max(kIntervalMinutes, rng_.NextExponential(config_.night_session_mean_minutes));
    int len = static_cast<int>(std::ceil(len_minutes / kIntervalMinutes));
    for (int i = start; i < std::min(start + len, kIntervalsPerDay); ++i) {
      day.SetActive(i, true);
    }
  }
}

void TraceGenerator::ApplyBurstGapProcess(UserDay& day, int from, int to,
                                          double envelope_peak_hour,
                                          double envelope_strength) {
  // Alternating renewal process: exponential active bursts, exponential idle
  // gaps whose mean shrinks near the envelope peak (more bursts mid-afternoon).
  bool active = true;  // sessions begin with input (the user just sat down)
  double remaining_minutes = std::max(kIntervalMinutes,
                                      rng_.NextExponential(config_.burst_mean_minutes));
  for (int i = std::max(0, from); i < std::min(kIntervalsPerDay, to); ++i) {
    if (active) {
      day.SetActive(i, true);
    }
    remaining_minutes -= kIntervalMinutes;
    if (remaining_minutes <= 0.0) {
      if (active) {
        double hour = HourOfInterval(i);
        double envelope =
            1.0 + envelope_strength *
                      std::exp(-std::pow(hour - envelope_peak_hour, 2.0) / (2.0 * 3.0 * 3.0));
        double gap_mean = config_.gap_mean_minutes / envelope;
        active = false;
        remaining_minutes = std::max(kIntervalMinutes, rng_.NextExponential(gap_mean));
      } else {
        active = true;
        remaining_minutes =
            std::max(kIntervalMinutes, rng_.NextExponential(config_.burst_mean_minutes));
      }
    }
  }
}

UserDay TraceGenerator::GenerateWeekday() {
  UserDay day;
  if (!rng_.NextBool(config_.weekday_attendance)) {
    // Absent: maybe one brief remote check.
    if (rng_.NextBool(config_.absent_remote_check_probability)) {
      int start = static_cast<int>(rng_.NextBelow(kIntervalsPerDay - 3));
      int len = 1 + static_cast<int>(rng_.NextBelow(3));
      for (int i = start; i < start + len; ++i) {
        day.SetActive(i, true);
      }
    }
    ApplyNightSessions(day, 0, kIntervalsPerDay);
    return day;
  }

  double arrival = ClampHour(
      rng_.NextGaussian(config_.arrival_mean_hour, config_.arrival_stddev_hours), 6.0, 12.0);
  double departure = ClampHour(
      rng_.NextGaussian(config_.departure_mean_hour, config_.departure_stddev_hours),
      arrival + 2.0, 23.0);
  int arr_i = IntervalAt(arrival);
  int dep_i = IntervalAt(departure);

  ApplyBurstGapProcess(day, arr_i, dep_i, /*envelope_peak_hour=*/14.0,
                       /*envelope_strength=*/1.0);

  // Lunch dip: thin activity down to the lunch probability.
  double lunch_start = rng_.NextGaussian(config_.lunch_start_mean_hour, 0.6);
  double lunch_len = std::max(0.0, rng_.NextGaussian(config_.lunch_duration_mean_hours, 0.3));
  int ls_i = IntervalAt(lunch_start);
  int le_i = IntervalAt(lunch_start + lunch_len);
  for (int i = std::max(arr_i, ls_i); i <= std::min(dep_i, le_i) && i < kIntervalsPerDay;
       ++i) {
    if (day.IsActive(i) && !rng_.NextBool(config_.lunch_active_probability)) {
      day.SetActive(i, false);
    }
  }

  // Optional evening session (e.g. 20:00-22:00, sparser than daytime).
  if (rng_.NextBool(config_.evening_session_probability)) {
    double ev_start = rng_.NextRange(19.5, 21.5);
    double ev_len = rng_.NextRange(0.5, 1.5);
    ApplyBurstGapProcess(day, IntervalAt(ev_start), IntervalAt(ev_start + ev_len),
                         /*envelope_peak_hour=*/20.5, /*envelope_strength=*/0.0);
  }

  // Rare contiguous night sessions before arrival / after departure.
  ApplyNightSessions(day, 0, arr_i);
  ApplyNightSessions(day, dep_i, kIntervalsPerDay);
  return day;
}

UserDay TraceGenerator::GenerateWeekend() {
  UserDay day;
  if (rng_.NextBool(config_.weekend_attendance)) {
    double start = rng_.NextRange(9.0, 16.0);
    double len = std::max(0.5, rng_.NextExponential(config_.weekend_session_mean_hours));
    ApplyBurstGapProcess(day, IntervalAt(start), IntervalAt(start + len),
                         /*envelope_peak_hour=*/13.0, /*envelope_strength=*/0.2);
  }
  ApplyNightSessions(day, 0, kIntervalsPerDay);
  return day;
}

}  // namespace oasis
