#include "src/trace/activity_trace.h"

#include <algorithm>
#include <cassert>

namespace oasis {

const char* DayKindName(DayKind kind) {
  return kind == DayKind::kWeekday ? "weekday" : "weekend";
}

UserDay::UserDay(std::vector<bool> bits) : active_(std::move(bits)) {
  assert(active_.size() == static_cast<size_t>(kIntervalsPerDay));
}

int UserDay::ActiveIntervals() const {
  return static_cast<int>(std::count(active_.begin(), active_.end(), true));
}

double UserDay::ActiveFraction() const {
  return static_cast<double>(ActiveIntervals()) / kIntervalsPerDay;
}

int UserDay::LongestIdleRun() const {
  int best = 0;
  int run = 0;
  for (bool a : active_) {
    if (a) {
      run = 0;
    } else {
      ++run;
      best = std::max(best, run);
    }
  }
  return best;
}

int IntervalAt(double hour_of_day) {
  int idx = static_cast<int>(hour_of_day * 3600.0 / kTraceIntervalSeconds);
  return std::clamp(idx, 0, kIntervalsPerDay - 1);
}

double HourOfInterval(int interval) {
  return (static_cast<double>(interval) + 0.5) * kTraceIntervalSeconds / 3600.0;
}

}  // namespace oasis
