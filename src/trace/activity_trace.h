// User activity traces.
//
// The paper drives its cluster simulation with keyboard/mouse activity traces
// of 22 desktop users sampled every 5 seconds and quantized to 5-minute
// intervals: an interval is "active" if it saw any input (§5.1). That trace
// is not public, so Oasis ships a calibrated synthetic generator
// (trace_generator.h) and this module defines the trace representation both
// share: one bit per 5-minute interval per user-day.

#ifndef OASIS_SRC_TRACE_ACTIVITY_TRACE_H_
#define OASIS_SRC_TRACE_ACTIVITY_TRACE_H_

#include <cstdint>
#include <vector>

#include "src/common/units.h"

namespace oasis {

inline constexpr int kTraceIntervalSeconds = 300;  // 5 minutes
inline constexpr int kIntervalsPerDay = 24 * 3600 / kTraceIntervalSeconds;  // 288

inline constexpr SimTime TraceIntervalLength() {
  return SimTime::Seconds(kTraceIntervalSeconds);
}

enum class DayKind { kWeekday, kWeekend };

const char* DayKindName(DayKind kind);

// One user's activity over one day: active_[i] is true iff the user produced
// keyboard/mouse input during 5-minute interval i.
class UserDay {
 public:
  UserDay() : active_(kIntervalsPerDay, false) {}
  explicit UserDay(std::vector<bool> bits);

  bool IsActive(int interval) const { return active_[static_cast<size_t>(interval)]; }
  void SetActive(int interval, bool active) {
    active_[static_cast<size_t>(interval)] = active;
  }

  int ActiveIntervals() const;
  double ActiveFraction() const;

  // Longest run of consecutive idle intervals.
  int LongestIdleRun() const;

  const std::vector<bool>& bits() const { return active_; }

 private:
  std::vector<bool> active_;
};

// A set of user-days that drives one simulated day: element u is the
// activity of VM u's user.
using TraceSet = std::vector<UserDay>;

// Interval index for a time-of-day (e.g. 14:00 -> 168).
int IntervalAt(double hour_of_day);

// Midpoint hour of an interval index.
double HourOfInterval(int interval);

}  // namespace oasis

#endif  // OASIS_SRC_TRACE_ACTIVITY_TRACE_H_
