// Trace persistence: a line-oriented text format so trace sets can be saved,
// inspected, and replayed across runs.
//
// Format:
//   OASISTRACE v1 <num_users> <intervals_per_day> <weekday|weekend>
//   <one line per user: '0'/'1' chars, one per interval>

#ifndef OASIS_SRC_TRACE_TRACE_IO_H_
#define OASIS_SRC_TRACE_TRACE_IO_H_

#include <iosfwd>
#include <string>

#include "src/common/status.h"
#include "src/trace/activity_trace.h"

namespace oasis {

struct TraceFile {
  DayKind kind = DayKind::kWeekday;
  TraceSet users;
};

Status WriteTrace(std::ostream& os, const TraceFile& trace);
StatusOr<TraceFile> ReadTrace(std::istream& is);

Status WriteTraceToPath(const std::string& path, const TraceFile& trace);
StatusOr<TraceFile> ReadTraceFromPath(const std::string& path);

}  // namespace oasis

#endif  // OASIS_SRC_TRACE_TRACE_IO_H_
