// Synthetic VDI user-activity generator.
//
// Substitutes for the paper's 4-month / 22-user keyboard-mouse trace (2086
// user-days). The generator produces user-days whose aggregate statistics
// match what §5.2 reports about the real trace:
//   * diurnal weekday shape — activity peaks around 14:00 and bottoms out
//     around 06:30;
//   * peak simultaneous activity never much above 46% of users;
//   * weekends are markedly quieter;
//   * long fully-idle stretches overnight, but with enough background
//     stragglers that a 30-VM host only sees all of its users idle
//     simultaneously ~13% of the time (§5.3).
//
// Each user-day is drawn independently: an attendance coin decides whether
// the user shows up at all; attendees get an arrival/departure window with a
// lunch dip, and within the window activity alternates between exponential
// active bursts and idle gaps whose density follows a diurnal envelope.

#ifndef OASIS_SRC_TRACE_TRACE_GENERATOR_H_
#define OASIS_SRC_TRACE_TRACE_GENERATOR_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/trace/activity_trace.h"

namespace oasis {

struct TraceGeneratorConfig {
  // Probability that the user works at all on a given day.
  double weekday_attendance = 0.76;
  double weekend_attendance = 0.30;

  // Presence window (hours). Arrival/departure are Gaussian.
  double arrival_mean_hour = 9.3;
  double arrival_stddev_hours = 1.2;
  double departure_mean_hour = 17.5;
  double departure_stddev_hours = 1.5;

  // Lunch dip.
  double lunch_start_mean_hour = 12.3;
  double lunch_duration_mean_hours = 0.8;
  double lunch_active_probability = 0.05;

  // In-presence burst/gap process (minutes). The idle-gap mean is divided by
  // the diurnal envelope, so gaps shrink near the 14:00 peak.
  double burst_mean_minutes = 26.0;
  double gap_mean_minutes = 28.0;

  // Off-hours activity is session-based, not per-interval noise: real users
  // who touch their desktop at night do so in contiguous remote sessions,
  // which is what leaves home hosts long fully-idle stretches overnight.
  // Expected number of off-hours remote sessions per user-day and their
  // mean length.
  double night_sessions_per_user_day = 0.55;
  double night_session_mean_minutes = 18.0;

  // Probability an attendee works an extra evening session.
  double evening_session_probability = 0.20;

  // Probability that a non-attending user still does one brief remote check.
  double absent_remote_check_probability = 0.20;

  // Weekend sessions: start uniform in [9, 16], exponential duration.
  double weekend_session_mean_hours = 3.5;
};

class TraceGenerator {
 public:
  TraceGenerator(const TraceGeneratorConfig& config, uint64_t seed);

  // One independent user-day.
  UserDay GenerateUserDay(DayKind kind);

  // `n_users` independent user-days, emulating the paper's procedure of
  // sampling user-days from the trace pool and aligning them to one day.
  TraceSet GenerateTraceSet(int n_users, DayKind kind);

  const TraceGeneratorConfig& config() const { return config_; }

 private:
  UserDay GenerateWeekday();
  UserDay GenerateWeekend();
  // Contiguous off-hours remote sessions (Poisson count, uniform start in
  // [from, to), exponential length).
  void ApplyNightSessions(UserDay& day, int from, int to);
  void ApplyBurstGapProcess(UserDay& day, int from, int to, double envelope_peak_hour,
                            double envelope_strength);

  TraceGeneratorConfig config_;
  Rng rng_;
};

}  // namespace oasis

#endif  // OASIS_SRC_TRACE_TRACE_GENERATOR_H_
