#include "src/trace/trace_io.h"

#include <fstream>
#include <sstream>
#include <string>

namespace oasis {

Status WriteTrace(std::ostream& os, const TraceFile& trace) {
  os << "OASISTRACE v1 " << trace.users.size() << " " << kIntervalsPerDay << " "
     << DayKindName(trace.kind) << "\n";
  for (const UserDay& day : trace.users) {
    std::string line;
    line.reserve(kIntervalsPerDay);
    for (int i = 0; i < kIntervalsPerDay; ++i) {
      line.push_back(day.IsActive(i) ? '1' : '0');
    }
    os << line << "\n";
  }
  if (!os) {
    return Status::Internal("trace write failed");
  }
  return Status::Ok();
}

StatusOr<TraceFile> ReadTrace(std::istream& is) {
  std::string magic;
  std::string version;
  size_t num_users = 0;
  int intervals = 0;
  std::string kind_name;
  if (!(is >> magic >> version >> num_users >> intervals >> kind_name)) {
    return Status::InvalidArgument("malformed trace header");
  }
  if (magic != "OASISTRACE" || version != "v1") {
    return Status::InvalidArgument("not an OASISTRACE v1 file");
  }
  if (intervals != kIntervalsPerDay) {
    return Status::InvalidArgument("interval count mismatch: expected " +
                                   std::to_string(kIntervalsPerDay) + ", got " +
                                   std::to_string(intervals));
  }
  TraceFile out;
  if (kind_name == "weekday") {
    out.kind = DayKind::kWeekday;
  } else if (kind_name == "weekend") {
    out.kind = DayKind::kWeekend;
  } else {
    return Status::InvalidArgument("unknown day kind: " + kind_name);
  }
  std::string line;
  std::getline(is, line);  // consume end of header line
  out.users.reserve(num_users);
  for (size_t u = 0; u < num_users; ++u) {
    if (!std::getline(is, line)) {
      return Status::InvalidArgument("truncated trace: expected " + std::to_string(num_users) +
                                     " users, got " + std::to_string(u));
    }
    if (line.size() != static_cast<size_t>(kIntervalsPerDay)) {
      return Status::InvalidArgument("bad trace line length at user " + std::to_string(u));
    }
    UserDay day;
    for (int i = 0; i < kIntervalsPerDay; ++i) {
      char c = line[static_cast<size_t>(i)];
      if (c != '0' && c != '1') {
        return Status::InvalidArgument("bad trace character at user " + std::to_string(u));
      }
      day.SetActive(i, c == '1');
    }
    out.users.push_back(std::move(day));
  }
  return out;
}

Status WriteTraceToPath(const std::string& path, const TraceFile& trace) {
  std::ofstream os(path);
  if (!os) {
    return Status::Unavailable("cannot open for write: " + path);
  }
  return WriteTrace(os, trace);
}

StatusOr<TraceFile> ReadTraceFromPath(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    return Status::NotFound("cannot open: " + path);
  }
  return ReadTrace(is);
}

}  // namespace oasis
