// Host and memory-server power models.
//
// All constants default to the paper's Table 1 measurements of the custom
// S3-capable Supermicro host and the ASUS AT5IONT-I + SAS memory-server
// prototype:
//     host idle 102.2 W, 20 active VMs 137.9 W, S3 sleep 12.9 W,
//     suspend 3.1 s @ 138.2 W, resume 2.3 s @ 149.2 W,
//     memory server 27.8 W + shared SAS drive 14.4 W = 42.2 W.
// Table 3 additionally studies hypothetical memory servers between 1 W and
// 16 W, which MemoryServerProfile::WithPower covers.

#ifndef OASIS_SRC_POWER_POWER_MODEL_H_
#define OASIS_SRC_POWER_POWER_MODEL_H_

#include "src/common/units.h"

namespace oasis {

enum class HostPowerState {
  kPowered,     // running VMs
  kSuspending,  // entering S3
  kSleeping,    // in S3; cannot run VMs
  kResuming,    // leaving S3
};

const char* HostPowerStateName(HostPowerState s);

struct HostPowerProfile {
  Watts idle_watts = 102.2;
  Watts watts_at_20_vms = 137.9;
  Watts sleep_watts = 12.9;
  Watts suspend_watts = 138.2;
  Watts resume_watts = 149.2;
  SimTime suspend_latency = SimTime::Seconds(3.1);
  SimTime resume_latency = SimTime::Seconds(2.3);

  // Linear per-VM increment implied by the idle / 20-VM measurements.
  Watts PerVmWatts() const { return (watts_at_20_vms - idle_watts) / 20.0; }

  // Instantaneous draw in a given state while hosting `resident_vms` VMs.
  // Desktop VMs load the host continuously (GNOME, background services), so
  // the draw rises with the resident count and saturates at the Table 1
  // 20-VM measurement — a host packed with VMs draws ~137.9 W whether it
  // hosts 20 or 300.
  Watts Draw(HostPowerState state, int resident_vms) const;

  // A copy with every wattage multiplied by `factor` (latencies unchanged):
  // the "bigger/smaller box, same silicon generation" transform that
  // ClusterConfig::SetVmsPerHome applies when resizing the standard host.
  HostPowerProfile Scaled(double factor) const;
};

struct MemoryServerProfile {
  Watts board_watts = 27.8;  // ASUS AT5IONT-I platform
  Watts drive_watts = 14.4;  // shared SAS drive

  Watts TotalWatts() const { return board_watts + drive_watts; }

  // A hypothetical integrated memory server drawing `total` watts (Table 3's
  // 1-16 W design points fold the storage path into the board budget).
  static MemoryServerProfile WithPower(Watts total) {
    return MemoryServerProfile{total, 0.0};
  }
};

}  // namespace oasis

#endif  // OASIS_SRC_POWER_POWER_MODEL_H_
