// Piecewise-constant energy integration.
//
// Every powered component (host, memory server) owns an EnergyMeter; state
// machines call SetDraw whenever their power changes, and the meter
// accumulates joules exactly over the piecewise-constant timeline. A
// per-state time ledger supports the sleep-fraction and powered-host
// reporting in §5.

#ifndef OASIS_SRC_POWER_ENERGY_METER_H_
#define OASIS_SRC_POWER_ENERGY_METER_H_

#include <array>
#include <cstdint>

#include "src/common/units.h"
#include "src/power/power_model.h"

namespace oasis {

class EnergyMeter {
 public:
  // Starts metering at `start` with the given draw.
  EnergyMeter(SimTime start, Watts initial_draw)
      : last_change_(start), current_draw_(initial_draw) {}
  EnergyMeter() : EnergyMeter(SimTime::Zero(), 0.0) {}

  // Changes the draw at time `now` (now must be monotone).
  void SetDraw(SimTime now, Watts draw);

  // Accrues energy up to `now` without changing the draw.
  void Advance(SimTime now);

  Joules total_joules() const { return joules_; }
  Watts current_draw() const { return current_draw_; }

  // Energy accrued through `now` without mutating the meter — the invariant
  // checker's view, guaranteed free of side effects on the simulation.
  Joules EnergyAt(SimTime now) const {
    return now > last_change_ ? joules_ + EnergyOver(current_draw_, now - last_change_)
                              : joules_;
  }

 private:
  SimTime last_change_;
  Watts current_draw_;
  Joules joules_ = 0.0;
};

// Tracks how long a host spends in each power state. When a trace host id is
// set, completed S3 phases (suspend, resume) are emitted as spans on the
// global tracer and every state change as an instant event, which is how the
// Fig 11 transition storms become visible in Perfetto.
class StateTimeLedger {
 public:
  StateTimeLedger(SimTime start, HostPowerState initial)
      : last_change_(start), state_(initial) {}
  StateTimeLedger() : StateTimeLedger(SimTime::Zero(), HostPowerState::kPowered) {}

  void Transition(SimTime now, HostPowerState next);
  void Advance(SimTime now);

  SimTime TimeIn(HostPowerState s) const;
  HostPowerState state() const { return state_; }
  double SleepFraction(SimTime horizon) const;
  // Total time across all states since construction (call Advance first).
  // The chaos tests use it to assert the time accounting still balances
  // after injected crashes: every host's ledger must cover the full run.
  SimTime TotalTime() const;

  // Side-effect-free views through `now`: the recorded tallies plus the
  // still-open segment. Integer microsecond arithmetic, so the invariant
  // checker can require TotalTimeAt(now) == now exactly.
  SimTime TimeInAt(HostPowerState s, SimTime now) const {
    SimTime t = TimeIn(s);
    if (s == state_ && now > last_change_) {
      t += now - last_change_;
    }
    return t;
  }
  SimTime TotalTimeAt(SimTime now) const {
    return now > last_change_ ? TotalTime() + (now - last_change_) : TotalTime();
  }

  // Attaches the owning host's id to emitted trace events (-1 = untraced).
  void set_trace_host(int64_t host) { trace_host_ = host; }

 private:
  SimTime last_change_;
  HostPowerState state_;
  std::array<SimTime, 4> time_in_{};
  int64_t trace_host_ = -1;
};

}  // namespace oasis

#endif  // OASIS_SRC_POWER_ENERGY_METER_H_
