// Per-host hardware generations and fleet mixes.
//
// The paper evaluates one host: the Table 1 custom S3-capable Supermicro
// box. Real fleets mix server generations — different power curves, faster
// or slower S3 transitions, bigger memory, and boxes with no S3 support at
// all. A HostProfile captures everything the control plane needs to know
// about one generation; the named catalog below provides the mixes the
// heterogeneous-fleet bench and tests draw from; a FleetMix assigns
// consecutive host ranges to generations inside a ClusterConfig.
//
// The default fleet (an empty FleetMix) reproduces the homogeneous
// Table 1 cluster byte for byte: every host resolves to profile class 0,
// whose power curve IS ClusterConfig::host_power, so all pre-existing
// goldens and digests are pinned through the new resolution path.

#ifndef OASIS_SRC_POWER_HOST_PROFILE_H_
#define OASIS_SRC_POWER_HOST_PROFILE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/power/power_model.h"

namespace oasis {

// One host generation: power curve + S3 suspend/resume latencies (both
// inside HostPowerProfile), whether the box can enter S3 at all, and its
// memory capacity relative to the Table 1 reference host.
//
// `s3_capable = false` means the host can never transition through
// kSuspending/kSleeping under control-plane direction: it may sponsor
// other hosts' VMs but never sleeps itself (the invariant checker rejects
// any S3 transition on such a host). A crash still drops it to the
// powered-off ledger state — losing power is not entering S3.
struct HostProfile {
  std::string generation = "default";
  HostPowerProfile power;
  bool s3_capable = true;
  double capacity_scale = 1.0;  // host_memory_bytes multiplier
};

// The named-generation catalog. Three generations span the interesting
// axes without inventing a config language:
//
//   table1        the paper's measured host, byte-identical to the default
//   efficient-v2  a newer box: lower idle/sleep draw, faster S3, 25% more
//                 memory — sleeping it saves less (it idles cheap) but
//                 costs less to cycle
//   legacy-no-s3  an older box: hungrier at every operating point and no
//                 S3 support — it can only ever help as a sponsor
const std::vector<HostProfile>& HostGenerationCatalog();

// nullptr when `name` is not in the catalog.
const HostProfile* FindHostGeneration(const std::string& name);

// All catalog names, in catalog order (for error messages and probes).
std::string HostGenerationNames();

// A fleet mix: consecutive host ranges assigned to named generations.
// Segments cover hosts [0, CoveredHosts()) in declaration order; hosts
// past the covered prefix — and every host when the mix is empty — run
// the default profile derived from ClusterConfig::host_power.
struct FleetSegment {
  std::string generation;
  int count = 0;
};

struct FleetMix {
  std::vector<FleetSegment> segments;

  bool empty() const { return segments.empty(); }
  int CoveredHosts() const;
  // Segment counts positive and every generation name in the catalog.
  Status Validate() const;
};

// Parses a "generation:count,generation:count,..." spec (the OASIS_FLEET
// wire format). An unknown generation or malformed count is an
// InvalidArgument naming the catalog.
StatusOr<FleetMix> ParseFleetMix(const std::string& spec);

}  // namespace oasis

#endif  // OASIS_SRC_POWER_HOST_PROFILE_H_
