#include "src/power/power_model.h"

#include <algorithm>

namespace oasis {

const char* HostPowerStateName(HostPowerState s) {
  switch (s) {
    case HostPowerState::kPowered:
      return "powered";
    case HostPowerState::kSuspending:
      return "suspending";
    case HostPowerState::kSleeping:
      return "sleeping";
    case HostPowerState::kResuming:
      return "resuming";
  }
  return "?";
}

HostPowerProfile HostPowerProfile::Scaled(double factor) const {
  HostPowerProfile scaled = *this;
  scaled.idle_watts *= factor;
  scaled.watts_at_20_vms *= factor;
  scaled.sleep_watts *= factor;
  scaled.suspend_watts *= factor;
  scaled.resume_watts *= factor;
  return scaled;
}

Watts HostPowerProfile::Draw(HostPowerState state, int resident_vms) const {
  switch (state) {
    case HostPowerState::kPowered:
      return idle_watts + PerVmWatts() * std::min(resident_vms, 20);
    case HostPowerState::kSuspending:
      return suspend_watts;
    case HostPowerState::kSleeping:
      return sleep_watts;
    case HostPowerState::kResuming:
      return resume_watts;
  }
  return idle_watts;
}

}  // namespace oasis
