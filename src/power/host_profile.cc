#include "src/power/host_profile.h"

#include <cstdlib>

namespace oasis {
namespace {

std::vector<HostProfile> BuildCatalog() {
  std::vector<HostProfile> catalog;

  // The paper's measured host. Identical to a default-constructed
  // HostPowerProfile, so a fleet spelled "table1:N" matches the
  // homogeneous default watt for watt.
  HostProfile table1;
  table1.generation = "table1";
  catalog.push_back(table1);

  // A newer generation: cheaper at idle and in S3, faster to cycle, 25%
  // more memory. Its *absolute* sleep saving per parked home is smaller
  // than table1's — the gate should prefer vacating hungry hosts first.
  HostProfile efficient;
  efficient.generation = "efficient-v2";
  efficient.power.idle_watts = 78.4;
  efficient.power.watts_at_20_vms = 118.6;
  efficient.power.sleep_watts = 6.2;
  efficient.power.suspend_watts = 104.0;
  efficient.power.resume_watts = 112.5;
  efficient.power.suspend_latency = SimTime::Seconds(1.8);
  efficient.power.resume_latency = SimTime::Seconds(1.2);
  efficient.capacity_scale = 1.25;
  catalog.push_back(efficient);

  // An older box: hungrier at every operating point and no S3 support.
  // It can sponsor consolidated VMs but never sleeps; the suspend/resume
  // rows are retained only so the profile stays a complete power curve
  // (the checker forbids ever drawing them).
  HostProfile legacy;
  legacy.generation = "legacy-no-s3";
  legacy.power.idle_watts = 131.5;
  legacy.power.watts_at_20_vms = 171.3;
  legacy.power.sleep_watts = 14.8;
  legacy.power.suspend_watts = 172.0;
  legacy.power.resume_watts = 184.6;
  legacy.power.suspend_latency = SimTime::Seconds(5.0);
  legacy.power.resume_latency = SimTime::Seconds(4.1);
  legacy.s3_capable = false;
  catalog.push_back(legacy);

  return catalog;
}

}  // namespace

const std::vector<HostProfile>& HostGenerationCatalog() {
  static const std::vector<HostProfile>* catalog =
      new std::vector<HostProfile>(BuildCatalog());
  return *catalog;
}

const HostProfile* FindHostGeneration(const std::string& name) {
  for (const HostProfile& profile : HostGenerationCatalog()) {
    if (profile.generation == name) {
      return &profile;
    }
  }
  return nullptr;
}

std::string HostGenerationNames() {
  std::string names;
  for (const HostProfile& profile : HostGenerationCatalog()) {
    if (!names.empty()) {
      names += ", ";
    }
    names += profile.generation;
  }
  return names;
}

int FleetMix::CoveredHosts() const {
  int covered = 0;
  for (const FleetSegment& segment : segments) {
    covered += segment.count;
  }
  return covered;
}

Status FleetMix::Validate() const {
  for (const FleetSegment& segment : segments) {
    if (segment.count <= 0) {
      return Status::InvalidArgument("fleet segment count must be positive (" +
                                     segment.generation + ")");
    }
    if (FindHostGeneration(segment.generation) == nullptr) {
      return Status::InvalidArgument("unknown host generation '" +
                                     segment.generation + "' (catalog: " +
                                     HostGenerationNames() + ")");
    }
  }
  return Status::Ok();
}

StatusOr<FleetMix> ParseFleetMix(const std::string& spec) {
  FleetMix mix;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    const size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= entry.size()) {
      return Status::InvalidArgument("fleet entry '" + entry +
                                     "' is not generation:count");
    }
    FleetSegment segment;
    segment.generation = entry.substr(0, colon);
    const std::string count = entry.substr(colon + 1);
    char* end = nullptr;
    const long parsed = std::strtol(count.c_str(), &end, 10);
    if (end == count.c_str() || *end != '\0' || parsed <= 0) {
      return Status::InvalidArgument("fleet entry '" + entry +
                                     "' has a malformed count");
    }
    segment.count = static_cast<int>(parsed);
    mix.segments.push_back(segment);
  }
  if (mix.empty()) {
    return Status::InvalidArgument("empty fleet spec");
  }
  Status status = mix.Validate();
  if (!status.ok()) {
    return status;
  }
  return mix;
}

}  // namespace oasis
