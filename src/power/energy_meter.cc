#include "src/power/energy_meter.h"

#include <cassert>
#include <string>

#include "src/check/check.h"
#include "src/common/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace oasis {

void EnergyMeter::SetDraw(SimTime now, Watts draw) {
  Advance(now);
  current_draw_ = draw;
}

void EnergyMeter::Advance(SimTime now) {
  assert(now >= last_change_ && "meter time went backwards");
  joules_ += EnergyOver(current_draw_, now - last_change_);
  last_change_ = now;
}

namespace {

// The host power state machine (§4.2 + fault model): S3 entry and exit pass
// through their in-transit states, and only a crash may land in kSleeping
// from anywhere (power loss skips the S3 latency). Everything else — e.g.
// kPowered -> kResuming or kSleeping -> kPowered — indicates lost
// bookkeeping.
bool LegalPowerTransition(HostPowerState prev, HostPowerState next) {
  if (prev == next || next == HostPowerState::kSleeping) {
    return true;
  }
  return (prev == HostPowerState::kPowered && next == HostPowerState::kSuspending) ||
         (prev == HostPowerState::kSleeping && next == HostPowerState::kResuming) ||
         (prev == HostPowerState::kResuming && next == HostPowerState::kPowered);
}

}  // namespace

void StateTimeLedger::Transition(SimTime now, HostPowerState next) {
  SimTime phase_start = last_change_;
  HostPowerState prev = state_;
  if (check::InvariantChecker* c = check::InvariantChecker::IfEnabled()) {
    c->Expect(LegalPowerTransition(prev, next), "power.legal_transition", now,
              [&] {
                return std::string(HostPowerStateName(prev)) + " -> " +
                       HostPowerStateName(next) + " is not a legal host power transition";
              },
              obs::TraceArgs{trace_host_});
    c->Expect(now >= last_change_, "power.ledger_monotonic", now,
              [&] {
                return "ledger transition at " + std::to_string(now.micros()) +
                       " us behind last change " + std::to_string(last_change_.micros()) +
                       " us";
              },
              obs::TraceArgs{trace_host_});
  }
  Advance(now);
  state_ = next;
  if (trace_host_ < 0 || prev == next) {
    return;
  }
  OASIS_CLOG(kDebug, "power") << "host " << trace_host_ << " "
                              << HostPowerStateName(prev) << " -> "
                              << HostPowerStateName(next);
  if (obs::Tracer* t = obs::Tracer::IfEnabled()) {
    // A finished in-transit phase becomes a span covering the Table 1
    // latency; the landing state is an instant on the host's track.
    if (prev == HostPowerState::kSuspending && next == HostPowerState::kSleeping) {
      t->Complete("power", "s3_suspend", phase_start, now, obs::TraceArgs{trace_host_});
    } else if (prev == HostPowerState::kResuming && next == HostPowerState::kPowered) {
      t->Complete("power", "s3_resume", phase_start, now, obs::TraceArgs{trace_host_});
    }
    t->Instant("power", HostPowerStateName(next), now, obs::TraceArgs{trace_host_});
  }
  if (obs::MetricsRegistry* m = obs::MetricsRegistry::IfEnabled()) {
    if (next == HostPowerState::kSleeping) {
      m->counter("power.s3_suspends")->Increment();
      m->histogram("power.s3_suspend_s")->Record((now - phase_start).seconds());
    } else if (prev == HostPowerState::kResuming && next == HostPowerState::kPowered) {
      m->counter("power.s3_resumes")->Increment();
      m->histogram("power.s3_resume_s")->Record((now - phase_start).seconds());
    }
  }
}

void StateTimeLedger::Advance(SimTime now) {
  assert(now >= last_change_ && "ledger time went backwards");
  time_in_[static_cast<size_t>(state_)] += now - last_change_;
  last_change_ = now;
}

SimTime StateTimeLedger::TimeIn(HostPowerState s) const {
  return time_in_[static_cast<size_t>(s)];
}

SimTime StateTimeLedger::TotalTime() const {
  SimTime total = SimTime::Zero();
  for (SimTime t : time_in_) {
    total += t;
  }
  return total;
}

double StateTimeLedger::SleepFraction(SimTime horizon) const {
  if (horizon <= SimTime::Zero()) {
    return 0.0;
  }
  return TimeIn(HostPowerState::kSleeping) / horizon;
}

}  // namespace oasis
