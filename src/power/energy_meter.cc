#include "src/power/energy_meter.h"

#include <cassert>

namespace oasis {

void EnergyMeter::SetDraw(SimTime now, Watts draw) {
  Advance(now);
  current_draw_ = draw;
}

void EnergyMeter::Advance(SimTime now) {
  assert(now >= last_change_ && "meter time went backwards");
  joules_ += EnergyOver(current_draw_, now - last_change_);
  last_change_ = now;
}

void StateTimeLedger::Transition(SimTime now, HostPowerState next) {
  Advance(now);
  state_ = next;
}

void StateTimeLedger::Advance(SimTime now) {
  assert(now >= last_change_ && "ledger time went backwards");
  time_in_[static_cast<size_t>(state_)] += now - last_change_;
  last_change_ = now;
}

SimTime StateTimeLedger::TimeIn(HostPowerState s) const {
  return time_in_[static_cast<size_t>(s)];
}

double StateTimeLedger::SleepFraction(SimTime horizon) const {
  if (horizon <= SimTime::Zero()) {
    return 0.0;
  }
  return TimeIn(HostPowerState::kSleeping) / horizon;
}

}  // namespace oasis
