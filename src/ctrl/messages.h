// Control-plane message types and their wire encoding (§4.1).
//
// The manager sends agents migration tuples <vmid, migration type,
// destination>, VM creation/shutdown calls and suspend commands; agents
// report periodic host/VM statistics. Messages encode to a single line
//   TYPE|key=value|key=value...
// so they can travel any byte stream and appear verbatim in logs.

#ifndef OASIS_SRC_CTRL_MESSAGES_H_
#define OASIS_SRC_CTRL_MESSAGES_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "src/common/status.h"
#include "src/hyper/vm.h"

namespace oasis {

enum class MigrationType { kFull, kPartial };

const char* MigrationTypeName(MigrationType t);

struct CreateVmRequest {
  std::string config_path;  // path of the VM configuration in network storage
};

struct CreateVmResponse {
  std::string vmid;
  HostId host = kNoHost;
};

struct MigrateCommand {
  std::string vmid;
  MigrationType type = MigrationType::kPartial;
  HostId destination = kNoHost;
};

struct SuspendHostCommand {
  HostId host = kNoHost;
};

struct WakeHostCommand {
  HostId host = kNoHost;  // delivered as a Wake-on-LAN by the manager
};

struct VmStats {
  std::string vmid;
  uint64_t memory_bytes = 0;
  double cpu_utilization = 0.0;
  double dirty_mib_per_min = 0.0;
};

struct HostStatsReport {
  HostId host = kNoHost;
  double memory_utilization = 0.0;
  double cpu_utilization = 0.0;
  double io_utilization = 0.0;
  std::vector<VmStats> vms;
};

struct AckResponse {
  bool ok = false;
  std::string detail;
};

// Manager -> agent poll for the periodic statistics report.
struct StatsRequest {};

using ControlMessage = std::variant<CreateVmRequest, CreateVmResponse, MigrateCommand,
                                    SuspendHostCommand, WakeHostCommand, HostStatsReport,
                                    AckResponse, StatsRequest>;

// One-line wire form.
std::string EncodeMessage(const ControlMessage& message);
StatusOr<ControlMessage> DecodeMessage(const std::string& line);

// Human-readable type tag ("MIGRATE", "HOST_STATS", ...).
std::string MessageTypeName(const ControlMessage& message);

}  // namespace oasis

#endif  // OASIS_SRC_CTRL_MESSAGES_H_
