#include "src/ctrl/rpc_bus.h"

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace oasis {
namespace {

// Tracer span names must outlive the tracer, so map the variant to string
// literals (same tags MessageTypeName uses) instead of a temporary string.
const char* CallSpanName(const ControlMessage& message) {
  struct Visitor {
    const char* operator()(const CreateVmRequest&) { return "CREATE_VM"; }
    const char* operator()(const CreateVmResponse&) { return "CREATE_VM_OK"; }
    const char* operator()(const MigrateCommand&) { return "MIGRATE"; }
    const char* operator()(const SuspendHostCommand&) { return "SUSPEND_HOST"; }
    const char* operator()(const WakeHostCommand&) { return "WAKE_HOST"; }
    const char* operator()(const HostStatsReport&) { return "HOST_STATS"; }
    const char* operator()(const AckResponse&) { return "ACK"; }
    const char* operator()(const StatsRequest&) { return "STATS_REQ"; }
  };
  return std::visit(Visitor{}, message);
}

}  // namespace

Status RpcBus::RegisterEndpoint(const std::string& name, Handler handler) {
  if (endpoints_.count(name)) {
    return Status::FailedPrecondition("endpoint already registered: " + name);
  }
  endpoints_.emplace(name, std::move(handler));
  return Status::Ok();
}

void RpcBus::UnregisterEndpoint(const std::string& name) { endpoints_.erase(name); }

bool RpcBus::HasEndpoint(const std::string& name) const { return endpoints_.count(name) > 0; }

StatusOr<ControlMessage> RpcBus::Call(const std::string& from, const std::string& to,
                                      const ControlMessage& request) {
  auto it = endpoints_.find(to);
  if (it == endpoints_.end()) {
    return Status::NotFound("no such endpoint: " + to);
  }
  ++calls_;
  // Request leg over the wire.
  std::string request_line = EncodeMessage(request);
  Record(from, to, request_line);
  StatusOr<ControlMessage> decoded_request = DecodeMessage(request_line);
  if (!decoded_request.ok()) {
    return decoded_request.status();
  }
  ControlMessage response = it->second(*decoded_request);
  // Response leg.
  std::string response_line = EncodeMessage(response);
  Record(to, from, response_line);
  if (obs::Tracer* t = obs::Tracer::IfEnabled()) {
    t->Complete("rpc", CallSpanName(request), now_, now_,
                obs::TraceArgs{-1, -1,
                               static_cast<int64_t>(request_line.size() +
                                                    response_line.size())});
  }
  if (obs::MetricsRegistry* m = obs::MetricsRegistry::IfEnabled()) {
    m->counter("rpc.calls")->Increment();
    m->counter("rpc.bytes")->Increment(request_line.size() + response_line.size());
  }
  return DecodeMessage(response_line);
}

std::vector<std::string> RpcBus::log() const {
  std::vector<std::string> out;
  size_t n = ring_.size();
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Oldest first: when full, the slot after the newest is the oldest.
    size_t idx = n < kLogLimit ? i : (recorded_ + i) % kLogLimit;
    out.push_back(ring_[idx]);
  }
  return out;
}

void RpcBus::Record(const std::string& from, const std::string& to, const std::string& line) {
  bytes_ += line.size();
  std::string entry = from + "->" + to + " " + line;
  if (ring_.size() < kLogLimit) {
    ring_.push_back(std::move(entry));
  } else {
    ring_[recorded_ % kLogLimit] = std::move(entry);
  }
  ++recorded_;
}

}  // namespace oasis
