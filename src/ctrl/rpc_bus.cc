#include "src/ctrl/rpc_bus.h"

namespace oasis {

Status RpcBus::RegisterEndpoint(const std::string& name, Handler handler) {
  if (endpoints_.count(name)) {
    return Status::FailedPrecondition("endpoint already registered: " + name);
  }
  endpoints_.emplace(name, std::move(handler));
  return Status::Ok();
}

void RpcBus::UnregisterEndpoint(const std::string& name) { endpoints_.erase(name); }

bool RpcBus::HasEndpoint(const std::string& name) const { return endpoints_.count(name) > 0; }

StatusOr<ControlMessage> RpcBus::Call(const std::string& from, const std::string& to,
                                      const ControlMessage& request) {
  auto it = endpoints_.find(to);
  if (it == endpoints_.end()) {
    return Status::NotFound("no such endpoint: " + to);
  }
  // Request leg over the wire.
  std::string request_line = EncodeMessage(request);
  Record(from, to, request_line);
  StatusOr<ControlMessage> decoded_request = DecodeMessage(request_line);
  if (!decoded_request.ok()) {
    return decoded_request.status();
  }
  ControlMessage response = it->second(*decoded_request);
  // Response leg.
  std::string response_line = EncodeMessage(response);
  Record(to, from, response_line);
  return DecodeMessage(response_line);
}

void RpcBus::Record(const std::string& from, const std::string& to, const std::string& line) {
  ++calls_;
  bytes_ += line.size();
  log_.push_back(from + "->" + to + " " + line);
  while (log_.size() > kLogLimit) {
    log_.pop_front();
  }
}

}  // namespace oasis
