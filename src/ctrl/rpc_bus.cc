#include "src/ctrl/rpc_bus.h"

#include <algorithm>

#include "src/fault/fault.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace oasis {
namespace {

// Tracer span names must outlive the tracer, so map the variant to string
// literals (same tags MessageTypeName uses) instead of a temporary string.
const char* CallSpanName(const ControlMessage& message) {
  struct Visitor {
    const char* operator()(const CreateVmRequest&) { return "CREATE_VM"; }
    const char* operator()(const CreateVmResponse&) { return "CREATE_VM_OK"; }
    const char* operator()(const MigrateCommand&) { return "MIGRATE"; }
    const char* operator()(const SuspendHostCommand&) { return "SUSPEND_HOST"; }
    const char* operator()(const WakeHostCommand&) { return "WAKE_HOST"; }
    const char* operator()(const HostStatsReport&) { return "HOST_STATS"; }
    const char* operator()(const AckResponse&) { return "ACK"; }
    const char* operator()(const StatsRequest&) { return "STATS_REQ"; }
  };
  return std::visit(Visitor{}, message);
}

}  // namespace

Status RpcBus::RegisterEndpoint(const std::string& name, Handler handler) {
  if (endpoints_.count(name)) {
    return Status::FailedPrecondition("endpoint already registered: " + name);
  }
  endpoints_.emplace(name, std::move(handler));
  return Status::Ok();
}

void RpcBus::UnregisterEndpoint(const std::string& name) { endpoints_.erase(name); }

bool RpcBus::HasEndpoint(const std::string& name) const { return endpoints_.count(name) > 0; }

StatusOr<ControlMessage> RpcBus::Call(const std::string& from, const std::string& to,
                                      const ControlMessage& request) {
  auto it = endpoints_.find(to);
  if (it == endpoints_.end()) {
    return Status::NotFound("no such endpoint: " + to);
  }
  // An injected drop loses the exchange on the wire: the handler never runs
  // and the caller (or CallWithRetry) must handle kUnavailable. Endpoint
  // lookup stays first so "agent gone" keeps its distinct kNotFound.
  if (injector_ && injector_->SampleRpcDrop(now_)) {
    ++dropped_;
    Record(from, to, "DROPPED " + EncodeMessage(request));
    return Status::Unavailable("rpc to " + to + " dropped (injected)");
  }
  SimTime delay;
  if (injector_ && injector_->SampleRpcDelay(now_)) {
    ++delayed_;
    delay = injector_->config().rpc_delay;
    total_delay_ += delay;
    // The delay recovers by itself once the wire stops stalling; the span
    // below stretches to cover it.
    injector_->RecordRecovered(FaultClass::kRpcDelay, now_, now_ + delay);
  }
  ++calls_;
  // Request leg over the wire.
  std::string request_line = EncodeMessage(request);
  Record(from, to, request_line);
  StatusOr<ControlMessage> decoded_request = DecodeMessage(request_line);
  if (!decoded_request.ok()) {
    return decoded_request.status();
  }
  ControlMessage response = it->second(*decoded_request);
  // Response leg.
  std::string response_line = EncodeMessage(response);
  Record(to, from, response_line);
  if (obs::Tracer* t = obs::Tracer::IfEnabled()) {
    t->Complete("rpc", CallSpanName(request), now_, now_ + delay,
                obs::TraceArgs{-1, -1,
                               static_cast<int64_t>(request_line.size() +
                                                    response_line.size())});
  }
  if (obs::MetricsRegistry* m = obs::MetricsRegistry::IfEnabled()) {
    m->counter("rpc.calls")->Increment();
    m->counter("rpc.bytes")->Increment(request_line.size() + response_line.size());
  }
  return DecodeMessage(response_line);
}

StatusOr<ControlMessage> RpcBus::CallWithRetry(const std::string& from,
                                               const std::string& to,
                                               const ControlMessage& request) {
  int max_attempts = injector_ && injector_->enabled() ? injector_->config().max_rpc_attempts : 1;
  SimTime backoff =
      injector_ && injector_->enabled() ? injector_->config().rpc_backoff_initial : SimTime::Zero();
  for (int attempt = 1;; ++attempt) {
    StatusOr<ControlMessage> result = Call(from, to, request);
    if (result.ok() || result.status().code() != StatusCode::kUnavailable ||
        attempt >= max_attempts) {
      return result;
    }
    // Dropped delivery: back off and re-send. The backoff span is the
    // recovery record the chaos tests pair with the drop's injection.
    ++retries_;
    total_backoff_ += backoff;
    if (injector_) {
      injector_->RecordRecovered(FaultClass::kRpcDrop, now_, now_ + backoff);
    }
    backoff = std::min(backoff + backoff, injector_->config().rpc_backoff_cap);
  }
}

std::vector<std::string> RpcBus::log() const {
  std::vector<std::string> out;
  size_t n = ring_.size();
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Oldest first: when full, the slot after the newest is the oldest.
    size_t idx = n < kLogLimit ? i : (recorded_ + i) % kLogLimit;
    out.push_back(ring_[idx]);
  }
  return out;
}

void RpcBus::Record(const std::string& from, const std::string& to, const std::string& line) {
  bytes_ += line.size();
  if (ring_.capacity() < kLogLimit) {
    // One up-front reservation; the ring never exceeds kLogLimit slots, so
    // the vector never reallocates after this.
    ring_.reserve(kLogLimit);
  }
  std::string* slot;
  if (ring_.size() < kLogLimit) {
    ring_.emplace_back();
    slot = &ring_.back();
  } else {
    slot = &ring_[recorded_ % kLogLimit];
  }
  // Build the entry in place: clear() keeps the slot's capacity, so a warmed
  // ring records without touching the heap (Record sits on the per-call hot
  // path — two executions per RPC exchange).
  slot->clear();
  slot->reserve(from.size() + to.size() + 3 + line.size());
  slot->append(from).append("->").append(to).append(1, ' ').append(line);
  ++recorded_;
}

}  // namespace oasis
