#include "src/ctrl/messages.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace oasis {
namespace {

// Percent-escapes the wire metacharacters.
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '%' || c == '|' || c == '=' || c == '\n') {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string Unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      char hex[3] = {s[i + 1], s[i + 2], 0};
      out += static_cast<char>(std::strtoul(hex, nullptr, 16));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

using FieldMap = std::multimap<std::string, std::string>;

std::string Build(const std::string& type, const FieldMap& fields) {
  std::ostringstream os;
  os << type;
  for (const auto& [key, value] : fields) {
    os << "|" << key << "=" << Escape(value);
  }
  return os.str();
}

StatusOr<std::pair<std::string, FieldMap>> Split(const std::string& line) {
  FieldMap fields;
  size_t pos = line.find('|');
  std::string type = line.substr(0, pos);
  if (type.empty()) {
    return Status::InvalidArgument("empty message type");
  }
  while (pos != std::string::npos) {
    size_t next = line.find('|', pos + 1);
    std::string field = line.substr(pos + 1, next == std::string::npos ? std::string::npos
                                                                       : next - pos - 1);
    size_t eq = field.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("field without '=': " + field);
    }
    fields.emplace(field.substr(0, eq), Unescape(field.substr(eq + 1)));
    pos = next;
  }
  return std::make_pair(type, fields);
}

StatusOr<std::string> Required(const FieldMap& fields, const std::string& key) {
  auto it = fields.find(key);
  if (it == fields.end()) {
    return Status::InvalidArgument("missing field: " + key);
  }
  return it->second;
}

}  // namespace

const char* MigrationTypeName(MigrationType t) {
  return t == MigrationType::kFull ? "full" : "partial";
}

std::string MessageTypeName(const ControlMessage& message) {
  struct Visitor {
    std::string operator()(const CreateVmRequest&) { return "CREATE_VM"; }
    std::string operator()(const CreateVmResponse&) { return "CREATE_VM_OK"; }
    std::string operator()(const MigrateCommand&) { return "MIGRATE"; }
    std::string operator()(const SuspendHostCommand&) { return "SUSPEND_HOST"; }
    std::string operator()(const WakeHostCommand&) { return "WAKE_HOST"; }
    std::string operator()(const HostStatsReport&) { return "HOST_STATS"; }
    std::string operator()(const AckResponse&) { return "ACK"; }
    std::string operator()(const StatsRequest&) { return "STATS_REQ"; }
  };
  return std::visit(Visitor{}, message);
}

std::string EncodeMessage(const ControlMessage& message) {
  struct Visitor {
    std::string operator()(const CreateVmRequest& m) {
      return Build("CREATE_VM", {{"config", m.config_path}});
    }
    std::string operator()(const CreateVmResponse& m) {
      return Build("CREATE_VM_OK", {{"vmid", m.vmid}, {"host", std::to_string(m.host)}});
    }
    std::string operator()(const MigrateCommand& m) {
      return Build("MIGRATE", {{"vmid", m.vmid},
                               {"type", MigrationTypeName(m.type)},
                               {"dest", std::to_string(m.destination)}});
    }
    std::string operator()(const SuspendHostCommand& m) {
      return Build("SUSPEND_HOST", {{"host", std::to_string(m.host)}});
    }
    std::string operator()(const WakeHostCommand& m) {
      return Build("WAKE_HOST", {{"host", std::to_string(m.host)}});
    }
    std::string operator()(const HostStatsReport& m) {
      FieldMap fields = {{"host", std::to_string(m.host)},
                         {"mem", std::to_string(m.memory_utilization)},
                         {"cpu", std::to_string(m.cpu_utilization)},
                         {"io", std::to_string(m.io_utilization)}};
      for (const VmStats& vm : m.vms) {
        std::ostringstream os;
        os << vm.vmid << ":" << vm.memory_bytes << ":" << vm.cpu_utilization << ":"
           << vm.dirty_mib_per_min;
        fields.emplace("vm", os.str());
      }
      return Build("HOST_STATS", fields);
    }
    std::string operator()(const AckResponse& m) {
      return Build("ACK", {{"ok", m.ok ? "1" : "0"}, {"detail", m.detail}});
    }
    std::string operator()(const StatsRequest&) { return Build("STATS_REQ", {}); }
  };
  return std::visit(Visitor{}, message);
}

StatusOr<ControlMessage> DecodeMessage(const std::string& line) {
  StatusOr<std::pair<std::string, FieldMap>> split = Split(line);
  if (!split.ok()) {
    return split.status();
  }
  const auto& [type, fields] = *split;
  auto required = [&](const std::string& key) { return Required(fields, key); };

  if (type == "CREATE_VM") {
    StatusOr<std::string> config = required("config");
    if (!config.ok()) {
      return config.status();
    }
    return ControlMessage(CreateVmRequest{*config});
  }
  if (type == "CREATE_VM_OK") {
    StatusOr<std::string> vmid = required("vmid");
    StatusOr<std::string> host = required("host");
    if (!vmid.ok() || !host.ok()) {
      return Status::InvalidArgument("CREATE_VM_OK missing fields");
    }
    return ControlMessage(
        CreateVmResponse{*vmid, static_cast<HostId>(std::strtoul(host->c_str(), nullptr, 10))});
  }
  if (type == "MIGRATE") {
    StatusOr<std::string> vmid = required("vmid");
    StatusOr<std::string> mtype = required("type");
    StatusOr<std::string> dest = required("dest");
    if (!vmid.ok() || !mtype.ok() || !dest.ok()) {
      return Status::InvalidArgument("MIGRATE missing fields");
    }
    MigrateCommand cmd;
    cmd.vmid = *vmid;
    if (*mtype == "full") {
      cmd.type = MigrationType::kFull;
    } else if (*mtype == "partial") {
      cmd.type = MigrationType::kPartial;
    } else {
      return Status::InvalidArgument("unknown migration type: " + *mtype);
    }
    cmd.destination = static_cast<HostId>(std::strtoul(dest->c_str(), nullptr, 10));
    return ControlMessage(cmd);
  }
  if (type == "SUSPEND_HOST" || type == "WAKE_HOST") {
    StatusOr<std::string> host = required("host");
    if (!host.ok()) {
      return host.status();
    }
    HostId id = static_cast<HostId>(std::strtoul(host->c_str(), nullptr, 10));
    if (type == "SUSPEND_HOST") {
      return ControlMessage(SuspendHostCommand{id});
    }
    return ControlMessage(WakeHostCommand{id});
  }
  if (type == "HOST_STATS") {
    StatusOr<std::string> host = required("host");
    StatusOr<std::string> mem = required("mem");
    StatusOr<std::string> cpu = required("cpu");
    StatusOr<std::string> io = required("io");
    if (!host.ok() || !mem.ok() || !cpu.ok() || !io.ok()) {
      return Status::InvalidArgument("HOST_STATS missing fields");
    }
    HostStatsReport report;
    report.host = static_cast<HostId>(std::strtoul(host->c_str(), nullptr, 10));
    report.memory_utilization = std::atof(mem->c_str());
    report.cpu_utilization = std::atof(cpu->c_str());
    report.io_utilization = std::atof(io->c_str());
    auto [begin, end] = fields.equal_range("vm");
    for (auto it = begin; it != end; ++it) {
      std::istringstream os(it->second);
      VmStats vm;
      std::string token;
      if (!std::getline(os, vm.vmid, ':') || !std::getline(os, token, ':')) {
        return Status::InvalidArgument("malformed vm stats: " + it->second);
      }
      vm.memory_bytes = std::strtoull(token.c_str(), nullptr, 10);
      if (!std::getline(os, token, ':')) {
        return Status::InvalidArgument("malformed vm stats: " + it->second);
      }
      vm.cpu_utilization = std::atof(token.c_str());
      if (!std::getline(os, token, ':')) {
        return Status::InvalidArgument("malformed vm stats: " + it->second);
      }
      vm.dirty_mib_per_min = std::atof(token.c_str());
      report.vms.push_back(std::move(vm));
    }
    return ControlMessage(report);
  }
  if (type == "ACK") {
    StatusOr<std::string> ok = required("ok");
    if (!ok.ok()) {
      return ok.status();
    }
    AckResponse ack;
    ack.ok = (*ok == "1");
    auto it = fields.find("detail");
    if (it != fields.end()) {
      ack.detail = it->second;
    }
    return ControlMessage(ack);
  }
  if (type == "STATS_REQ") {
    return ControlMessage(StatsRequest{});
  }
  return Status::InvalidArgument("unknown message type: " + type);
}

}  // namespace oasis
