// The host agent (§4.2): a user-level process on each host's administrative
// domain that creates VMs, executes host-to-host migrations on command,
// performs ACPI power operations, and reports host/VM statistics.
//
// The agent here manages ownership and capacity bookkeeping and answers the
// control protocol; the heavy lifting (actual page movement, latencies,
// energy) lives in the hyper/cluster simulation layers, to which the agent
// is connected in ClusterController demos through the bus.

#ifndef OASIS_SRC_CTRL_HOST_AGENT_H_
#define OASIS_SRC_CTRL_HOST_AGENT_H_

#include <map>
#include <string>

#include "src/common/status.h"
#include "src/ctrl/messages.h"
#include "src/ctrl/rpc_bus.h"
#include "src/ctrl/vm_config_file.h"

namespace oasis {

class HostAgent {
 public:
  // Registers endpoint "agent/<host_id>" on `bus` (which must outlive this).
  HostAgent(RpcBus* bus, HostId host_id, uint64_t memory_capacity_bytes);
  ~HostAgent();

  HostAgent(const HostAgent&) = delete;
  HostAgent& operator=(const HostAgent&) = delete;

  static std::string EndpointName(HostId host_id);

  HostId host_id() const { return host_id_; }
  bool suspended() const { return suspended_; }
  uint64_t used_bytes() const { return used_bytes_; }
  uint64_t free_bytes() const { return capacity_bytes_ - used_bytes_; }
  size_t vm_count() const { return vms_.size(); }

  // The agent holds this VM's record (as owner or as a partial replica).
  bool HasVm(const std::string& vmid) const { return vms_.count(vmid) > 0; }
  // §4.2 ownership: the agent controls the VM's memory image/memory server.
  bool OwnsVm(const std::string& vmid) const;
  // The VM currently executes here (an owner record left behind by a partial
  // migration is not present — and does not block host suspend).
  bool VmPresent(const std::string& vmid) const;
  size_t PresentVmCount() const;

  // --- RPC entry points (§4.2) --------------------------------------------
  // Status-returning so in-process callers and tests check outcomes
  // directly; the bus handler wraps failures into Nack responses on the
  // wire. Migrations push through CallWithRetry, so a lossy bus costs
  // retries, not VMs.
  StatusOr<CreateVmResponse> Create(const CreateVmRequest& request);
  Status Migrate(const MigrateCommand& command);
  Status Suspend();
  Status Wake();

 private:
  struct VmRecord {
    VmConfigFile config;
    bool owner = true;    // owns the full image and memory-server state
    bool present = true;  // executing on this host right now
  };

  ControlMessage Handle(const ControlMessage& request);
  HostStatsReport BuildStats() const;

  RpcBus* bus_;
  HostId host_id_;
  uint64_t capacity_bytes_;
  uint64_t used_bytes_ = 0;
  bool suspended_ = false;
  std::map<std::string, VmRecord> vms_;
};

}  // namespace oasis

#endif  // OASIS_SRC_CTRL_HOST_AGENT_H_
