// The cluster manager's control front end (§4.1): clients create VMs by
// submitting the network-storage path of a configuration file; the manager
// parses the configuration, selects a host with sufficient resources, and
// issues the creation call to that host's agent. It also polls agents for
// periodic statistics and relays migration/suspend/wake commands.

#ifndef OASIS_SRC_CTRL_CONTROLLER_H_
#define OASIS_SRC_CTRL_CONTROLLER_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/ctrl/host_agent.h"
#include "src/ctrl/rpc_bus.h"

namespace oasis {

// Stand-in for the NFS share holding VM configuration files.
class ConfigStore {
 public:
  void Put(const std::string& path, const std::string& text);
  StatusOr<std::string> Get(const std::string& path) const;

 private:
  std::map<std::string, std::string> files_;
};

class ClusterController {
 public:
  // `bus` and `store` must outlive the controller. Registers "manager".
  ClusterController(RpcBus* bus, const ConfigStore* store);
  ~ClusterController();

  ClusterController(const ClusterController&) = delete;
  ClusterController& operator=(const ClusterController&) = delete;

  // Tells the controller about a host and its capacity; VM placement only
  // considers registered hosts whose agents are reachable.
  void RegisterHost(HostId host, uint64_t memory_capacity_bytes);

  // §4.1 VM creation: resolve the config, pick the host with the most free
  // memory that fits the VM, and call its agent.
  StatusOr<CreateVmResponse> CreateVm(const std::string& config_path);

  // Relays a migration tuple <vmid, type, destination> to the owning agent.
  Status MigrateVm(HostId owner, const std::string& vmid, MigrationType type,
                   HostId destination);

  Status SuspendHost(HostId host);
  Status WakeHost(HostId host);

  // Polls every registered agent; unreachable agents are skipped.
  std::vector<HostStatsReport> CollectStats();

  // Free memory as tracked by placement bookkeeping.
  StatusOr<uint64_t> FreeBytes(HostId host) const;

 private:
  struct HostRecord {
    uint64_t capacity = 0;
    uint64_t used = 0;
    bool suspended = false;  // placement skips sleeping hosts (§3.1)
  };

  RpcBus* bus_;
  const ConfigStore* store_;
  std::map<HostId, HostRecord> hosts_;
};

}  // namespace oasis

#endif  // OASIS_SRC_CTRL_CONTROLLER_H_
