#include "src/ctrl/host_agent.h"

#include <cassert>

#include "src/common/log.h"

namespace oasis {
namespace {

// VM configurations travel inline on the bus (the in-process stand-in for
// the network-storage config path of §4.1). Partial migrations push a
// replica; the destination does not take ownership.
constexpr char kInlinePrefix[] = "inline:";
constexpr char kReplicaPrefix[] = "replica:";

AckResponse Nack(const std::string& detail) { return AckResponse{false, detail}; }

}  // namespace

std::string HostAgent::EndpointName(HostId host_id) {
  return "agent/" + std::to_string(host_id);
}

HostAgent::HostAgent(RpcBus* bus, HostId host_id, uint64_t memory_capacity_bytes)
    : bus_(bus), host_id_(host_id), capacity_bytes_(memory_capacity_bytes) {
  Status status = bus_->RegisterEndpoint(
      EndpointName(host_id_), [this](const ControlMessage& m) { return Handle(m); });
  assert(status.ok() && "duplicate agent endpoint");
  (void)status;
}

HostAgent::~HostAgent() { bus_->UnregisterEndpoint(EndpointName(host_id_)); }

bool HostAgent::OwnsVm(const std::string& vmid) const {
  auto it = vms_.find(vmid);
  return it != vms_.end() && it->second.owner;
}

bool HostAgent::VmPresent(const std::string& vmid) const {
  auto it = vms_.find(vmid);
  return it != vms_.end() && it->second.present;
}

size_t HostAgent::PresentVmCount() const {
  size_t n = 0;
  for (const auto& [vmid, record] : vms_) {
    if (record.present) {
      ++n;
    }
  }
  return n;
}

ControlMessage HostAgent::Handle(const ControlMessage& request) {
  struct Visitor {
    HostAgent* agent;
    ControlMessage operator()(const CreateVmRequest& m) {
      StatusOr<CreateVmResponse> created = agent->Create(m);
      if (!created.ok()) {
        return Nack(created.status().message());
      }
      return *created;
    }
    ControlMessage operator()(const MigrateCommand& m) {
      Status migrated = agent->Migrate(m);
      if (!migrated.ok()) {
        return Nack(migrated.message());
      }
      return AckResponse{true, "migrated " + m.vmid};
    }
    ControlMessage operator()(const SuspendHostCommand&) {
      Status suspended = agent->Suspend();
      if (!suspended.ok()) {
        return Nack(suspended.message());
      }
      return AckResponse{true, "suspended"};
    }
    ControlMessage operator()(const WakeHostCommand&) {
      Status woken = agent->Wake();
      if (!woken.ok()) {
        return Nack(woken.message());
      }
      return AckResponse{true, "powered"};
    }
    ControlMessage operator()(const StatsRequest&) { return agent->BuildStats(); }
    ControlMessage operator()(const CreateVmResponse&) { return Nack("unexpected message"); }
    ControlMessage operator()(const HostStatsReport&) { return Nack("unexpected message"); }
    ControlMessage operator()(const AckResponse&) { return Nack("unexpected message"); }
  };
  return std::visit(Visitor{this}, request);
}

StatusOr<CreateVmResponse> HostAgent::Create(const CreateVmRequest& request) {
  if (suspended_) {
    return Status::FailedPrecondition("host is suspended");
  }
  std::string text = request.config_path;
  bool replica = false;
  if (text.rfind(kInlinePrefix, 0) == 0) {
    text = text.substr(sizeof(kInlinePrefix) - 1);
  } else if (text.rfind(kReplicaPrefix, 0) == 0) {
    text = text.substr(sizeof(kReplicaPrefix) - 1);
    replica = true;
  } else {
    return Status::InvalidArgument("config not resolvable by agent: " + request.config_path);
  }
  StatusOr<VmConfigFile> config = ParseVmConfig(text);
  if (!config.ok()) {
    return Status::InvalidArgument("bad config: " + config.status().message());
  }
  auto it = vms_.find(config->vmid);
  if (it != vms_.end()) {
    if (!it->second.present && it->second.owner) {
      // Reintegration: the owner's image is already here; the VM resumes.
      it->second.present = true;
      return CreateVmResponse{config->vmid, host_id_};
    }
    return Status::FailedPrecondition("vmid already present: " + config->vmid);
  }
  if (config->memory_bytes > free_bytes()) {
    return Status::ResourceExhausted("insufficient memory for vm " + config->vmid);
  }
  used_bytes_ += config->memory_bytes;
  std::string vmid = config->vmid;
  vms_.emplace(vmid, VmRecord{*std::move(config), /*owner=*/!replica, /*present=*/true});
  return CreateVmResponse{vmid, host_id_};
}

Status HostAgent::Migrate(const MigrateCommand& command) {
  auto it = vms_.find(command.vmid);
  if (it == vms_.end() || !it->second.present) {
    return Status::NotFound("vm not running on this agent: " + command.vmid);
  }
  if (command.destination == host_id_) {
    return Status::InvalidArgument("cannot migrate to self");
  }
  const char* prefix =
      command.type == MigrationType::kPartial ? kReplicaPrefix : kInlinePrefix;
  CreateVmRequest push{std::string(prefix) + SerializeVmConfig(it->second.config)};
  StatusOr<ControlMessage> response = bus_->CallWithRetry(
      EndpointName(host_id_), EndpointName(command.destination), push);
  if (!response.ok()) {
    return Status::Unavailable("destination unreachable: " + response.status().message());
  }
  if (const auto* ack = std::get_if<AckResponse>(&*response)) {
    return Status::FailedPrecondition("destination refused: " + ack->detail);
  }
  if (!std::holds_alternative<CreateVmResponse>(*response)) {
    return Status::Internal("unexpected destination response");
  }
  if (command.type == MigrationType::kFull) {
    // §4.2: the destination becomes the owner; the source frees everything,
    // including any memory-server state.
    used_bytes_ -= it->second.config.memory_bytes;
    vms_.erase(it);
  } else if (it->second.owner) {
    // Partial migration away: ownership and the memory image stay here; the
    // VM itself now executes at the destination.
    it->second.present = false;
  } else {
    // A replica moving on (reintegration to its owner, or a consolidation
    // drain): this host frees its copy.
    used_bytes_ -= it->second.config.memory_bytes;
    vms_.erase(it);
  }
  return Status::Ok();
}

Status HostAgent::Suspend() {
  // A host may sleep once no VM *executes* here; owner records whose VMs
  // were partially migrated away stay behind, served by the memory server
  // while the host is in S3.
  if (PresentVmCount() > 0) {
    return Status::FailedPrecondition("host still runs VMs");
  }
  suspended_ = true;
  return Status::Ok();
}

Status HostAgent::Wake() {
  suspended_ = false;
  return Status::Ok();
}

HostStatsReport HostAgent::BuildStats() const {
  HostStatsReport report;
  report.host = host_id_;
  report.memory_utilization =
      capacity_bytes_ ? static_cast<double>(used_bytes_) / static_cast<double>(capacity_bytes_)
                      : 0.0;
  report.cpu_utilization = 0.02 * static_cast<double>(PresentVmCount());
  report.io_utilization = 0.01 * static_cast<double>(PresentVmCount());
  for (const auto& [vmid, record] : vms_) {
    if (!record.present) {
      continue;  // the VM reports from wherever it executes
    }
    VmStats stats;
    stats.vmid = vmid;
    stats.memory_bytes = record.config.memory_bytes;
    stats.cpu_utilization = 0.02;
    stats.dirty_mib_per_min = 1.2;
    report.vms.push_back(std::move(stats));
  }
  return report;
}

}  // namespace oasis
