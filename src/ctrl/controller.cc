#include "src/ctrl/controller.h"

#include <algorithm>
#include <cassert>

#include "src/common/log.h"
#include "src/ctrl/vm_config_file.h"
#include "src/fault/fault.h"
#include "src/obs/metrics.h"

namespace oasis {
namespace {

constexpr char kManagerEndpoint[] = "manager";
constexpr char kInlinePrefix[] = "inline:";

}  // namespace

void ConfigStore::Put(const std::string& path, const std::string& text) {
  files_[path] = text;
}

StatusOr<std::string> ConfigStore::Get(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("no such config: " + path);
  }
  return it->second;
}

ClusterController::ClusterController(RpcBus* bus, const ConfigStore* store)
    : bus_(bus), store_(store) {
  // The manager endpoint exists so agents could push asynchronous reports;
  // in this repo it simply acknowledges.
  Status status = bus_->RegisterEndpoint(kManagerEndpoint, [](const ControlMessage&) {
    return ControlMessage(AckResponse{true, ""});
  });
  assert(status.ok());
  (void)status;
}

ClusterController::~ClusterController() { bus_->UnregisterEndpoint(kManagerEndpoint); }

void ClusterController::RegisterHost(HostId host, uint64_t memory_capacity_bytes) {
  hosts_[host] = HostRecord{memory_capacity_bytes, 0};
}

StatusOr<CreateVmResponse> ClusterController::CreateVm(const std::string& config_path) {
  StatusOr<std::string> text = store_->Get(config_path);
  if (!text.ok()) {
    return text.status();
  }
  StatusOr<VmConfigFile> config = ParseVmConfig(*text);
  if (!config.ok()) {
    return config.status();
  }
  // Pick the reachable host with the most free memory that fits the VM.
  HostId best = kNoHost;
  uint64_t best_free = 0;
  for (const auto& [host, record] : hosts_) {
    uint64_t free = record.capacity - record.used;
    if (!record.suspended && free >= config->memory_bytes &&
        (best == kNoHost || free > best_free) &&
        bus_->HasEndpoint(HostAgent::EndpointName(host))) {
      best = host;
      best_free = free;
    }
  }
  if (best == kNoHost) {
    return Status::ResourceExhausted("no host can fit vm " + config->vmid);
  }
  CreateVmRequest request{std::string(kInlinePrefix) + SerializeVmConfig(*config)};
  StatusOr<ControlMessage> response =
      bus_->CallWithRetry(kManagerEndpoint, HostAgent::EndpointName(best), request);
  if (!response.ok()) {
    return response.status();
  }
  if (const auto* ack = std::get_if<AckResponse>(&*response)) {
    return Status::Internal("agent refused creation: " + ack->detail);
  }
  const auto* created = std::get_if<CreateVmResponse>(&*response);
  if (created == nullptr) {
    return Status::Internal("unexpected agent response");
  }
  hosts_[best].used += config->memory_bytes;
  return *created;
}

Status ClusterController::MigrateVm(HostId owner, const std::string& vmid,
                                    MigrationType type, HostId destination) {
  MigrateCommand command{vmid, type, destination};
  StatusOr<ControlMessage> response =
      bus_->CallWithRetry(kManagerEndpoint, HostAgent::EndpointName(owner), command);
  if (!response.ok()) {
    return response.status();
  }
  const auto* ack = std::get_if<AckResponse>(&*response);
  if (ack == nullptr) {
    return Status::Internal("unexpected agent response");
  }
  if (!ack->ok) {
    return Status::FailedPrecondition(ack->detail);
  }
  return Status::Ok();
}

Status ClusterController::SuspendHost(HostId host) {
  StatusOr<ControlMessage> response = bus_->CallWithRetry(
      kManagerEndpoint, HostAgent::EndpointName(host), SuspendHostCommand{host});
  if (!response.ok()) {
    return response.status();
  }
  const auto* ack = std::get_if<AckResponse>(&*response);
  if (ack == nullptr || !ack->ok) {
    return Status::FailedPrecondition(ack ? ack->detail : "unexpected response");
  }
  auto it = hosts_.find(host);
  if (it != hosts_.end()) {
    it->second.suspended = true;
  }
  return Status::Ok();
}

Status ClusterController::WakeHost(HostId host) {
  // §4.1: "the manager wakes up the corresponding host with a network
  // Wake-on-LAN before issuing the migration or creation call".
  //
  // WoL is connectionless, so a lost packet produces no error — the manager
  // only notices the host never came up. Recovery: re-send on a timeout; a
  // host that eats max_wol_retries packets escalates (operator alert) and
  // gets one final send.
  if (FaultInjector* f = bus_->fault_injector()) {
    int losses = f->SampleWolLosses(bus_->now(), static_cast<int64_t>(host));
    if (losses > 0) {
      SimTime waited = f->config().wol_retry_timeout * static_cast<double>(losses);
      f->RecordRecovered(FaultClass::kWolLoss, bus_->now(), bus_->now() + waited,
                         obs::TraceArgs{static_cast<int64_t>(host), -1, losses});
      if (losses >= f->config().max_wol_retries) {
        OASIS_CLOG(kWarning, "ctrl")
            << "host " << host << " ignored " << losses << " WoL packets; escalating";
        if (obs::MetricsRegistry* m = obs::MetricsRegistry::IfEnabled()) {
          m->counter("fault.wol_escalations")->Increment();
        }
      }
    }
  }
  StatusOr<ControlMessage> response =
      bus_->CallWithRetry(kManagerEndpoint, HostAgent::EndpointName(host), WakeHostCommand{host});
  if (!response.ok()) {
    return response.status();
  }
  auto it = hosts_.find(host);
  if (it != hosts_.end()) {
    it->second.suspended = false;
  }
  return Status::Ok();
}

std::vector<HostStatsReport> ClusterController::CollectStats() {
  std::vector<HostStatsReport> reports;
  for (const auto& [host, record] : hosts_) {
    StatusOr<ControlMessage> response =
        bus_->CallWithRetry(kManagerEndpoint, HostAgent::EndpointName(host), StatsRequest{});
    if (!response.ok()) {
      continue;
    }
    if (const auto* stats = std::get_if<HostStatsReport>(&*response)) {
      reports.push_back(*stats);
    }
  }
  return reports;
}

StatusOr<uint64_t> ClusterController::FreeBytes(HostId host) const {
  auto it = hosts_.find(host);
  if (it == hosts_.end()) {
    return Status::NotFound("unknown host " + std::to_string(host));
  }
  return it->second.capacity - it->second.used;
}

}  // namespace oasis
