#include "src/ctrl/vm_config_file.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace oasis {
namespace {

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) {
    return "";
  }
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

bool IsFourDigits(const std::string& s) {
  if (s.size() != 4) {
    return false;
  }
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return true;
}

}  // namespace

uint32_t VmConfigFile::VmidNumber() const {
  return static_cast<uint32_t>(std::strtoul(vmid.c_str(), nullptr, 10));
}

StatusOr<uint64_t> ParseMemorySize(const std::string& text) {
  if (text.empty()) {
    return Status::InvalidArgument("empty memory size");
  }
  char suffix = text.back();
  std::string digits = text;
  uint64_t multiplier = 1;
  if (!std::isdigit(static_cast<unsigned char>(suffix))) {
    digits = text.substr(0, text.size() - 1);
    switch (std::toupper(static_cast<unsigned char>(suffix))) {
      case 'K':
        multiplier = kKiB;
        break;
      case 'M':
        multiplier = kMiB;
        break;
      case 'G':
        multiplier = kGiB;
        break;
      default:
        return Status::InvalidArgument(std::string("unknown memory suffix: ") + suffix);
    }
  }
  if (digits.empty()) {
    return Status::InvalidArgument("no digits in memory size: " + text);
  }
  for (char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument("malformed memory size: " + text);
    }
  }
  return static_cast<uint64_t>(std::strtoull(digits.c_str(), nullptr, 10)) * multiplier;
}

StatusOr<VmConfigFile> ParseVmConfig(const std::string& text) {
  VmConfigFile config;
  bool have_vmid = false;
  bool have_disk = false;
  bool have_memory = false;
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') {
      continue;
    }
    size_t eq = trimmed.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": expected 'key = value'");
    }
    std::string key = Trim(trimmed.substr(0, eq));
    std::string value = Trim(trimmed.substr(eq + 1));
    if (value.empty()) {
      return Status::InvalidArgument("line " + std::to_string(line_number) + ": empty value");
    }
    if (key == "vmid") {
      if (!IsFourDigits(value)) {
        return Status::InvalidArgument("line " + std::to_string(line_number) +
                                       ": vmid must be exactly four digits");
      }
      config.vmid = value;
      have_vmid = true;
    } else if (key == "disk") {
      config.disk_image = value;
      have_disk = true;
    } else if (key == "memory") {
      StatusOr<uint64_t> bytes = ParseMemorySize(value);
      if (!bytes.ok()) {
        return Status::InvalidArgument("line " + std::to_string(line_number) + ": " +
                                       bytes.status().message());
      }
      config.memory_bytes = *bytes;
      have_memory = true;
    } else if (key == "vcpus") {
      int n = std::atoi(value.c_str());
      if (n <= 0 || n > 256) {
        return Status::InvalidArgument("line " + std::to_string(line_number) +
                                       ": vcpus out of range");
      }
      config.vcpus = n;
    } else if (key == "device") {
      config.devices.push_back(value);
    } else if (key == "policy") {
      StatusOr<ConsolidationPolicy> policy = ParseConsolidationPolicy(value);
      if (!policy.ok()) {
        return Status::InvalidArgument("line " + std::to_string(line_number) + ": " +
                                       policy.status().message());
      }
      config.policy = *policy;
      config.has_policy = true;
    } else {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": unknown key '" + key + "'");
    }
  }
  if (!have_vmid) {
    return Status::InvalidArgument("missing vmid");
  }
  if (!have_disk) {
    return Status::InvalidArgument("missing disk");
  }
  if (!have_memory) {
    return Status::InvalidArgument("missing memory");
  }
  return config;
}

std::string SerializeVmConfig(const VmConfigFile& config) {
  std::ostringstream os;
  os << "vmid = " << config.vmid << "\n";
  os << "disk = " << config.disk_image << "\n";
  os << "memory = " << config.memory_bytes << "\n";
  os << "vcpus = " << config.vcpus << "\n";
  for (const std::string& device : config.devices) {
    os << "device = " << device << "\n";
  }
  if (config.has_policy) {
    os << "policy = " << ConsolidationPolicyName(config.policy) << "\n";
  }
  return os.str();
}

}  // namespace oasis
