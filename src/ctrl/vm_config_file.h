// VM configuration files (§4.1).
//
// "Each VM configuration file contains a unique four digit vmid used to
//  identify the VM, the path to the VM's disk image, memory allocation,
//  number of virtual CPUs, and device configuration such as network and
//  virtual frame buffer."
//
// Format: one `key = value` per line, '#' comments, repeated `device` keys:
//
//   vmid   = 0042
//   disk   = nfs://storage/images/alice.img
//   memory = 4096M
//   vcpus  = 1
//   device = net:bridge0
//   device = vfb:vnc,port=5942
//   policy = FulltoPartial        # optional consolidation-policy override

#ifndef OASIS_SRC_CTRL_VM_CONFIG_FILE_H_
#define OASIS_SRC_CTRL_VM_CONFIG_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cluster/cluster_types.h"
#include "src/common/status.h"
#include "src/common/units.h"

namespace oasis {

struct VmConfigFile {
  std::string vmid;  // exactly four digits, e.g. "0042"
  std::string disk_image;
  uint64_t memory_bytes = 0;
  int vcpus = 1;
  std::vector<std::string> devices;
  // Optional per-VM consolidation-policy override (the `policy` key, one of
  // the ConsolidationPolicyName spellings). has_policy distinguishes "key
  // absent" from an explicit default.
  bool has_policy = false;
  ConsolidationPolicy policy = ConsolidationPolicy::kFullToPartial;

  // Numeric form of the vmid.
  uint32_t VmidNumber() const;
};

// Parses the text of one configuration file. Returns INVALID_ARGUMENT with a
// line-numbered message on any malformed or missing field.
StatusOr<VmConfigFile> ParseVmConfig(const std::string& text);

// Inverse of ParseVmConfig (round-trip stable).
std::string SerializeVmConfig(const VmConfigFile& config);

// Parses memory sizes like "4096M", "4G", "512K", "1073741824".
StatusOr<uint64_t> ParseMemorySize(const std::string& text);

}  // namespace oasis

#endif  // OASIS_SRC_CTRL_VM_CONFIG_FILE_H_
