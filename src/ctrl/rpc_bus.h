// In-process RPC bus connecting the cluster manager, host agents and
// clients (§4.1's "RPC interface"). Every call travels through the wire
// encoding (EncodeMessage/DecodeMessage) so the protocol is exercised
// end-to-end, and the last messages are retained for diagnostics.

#ifndef OASIS_SRC_CTRL_RPC_BUS_H_
#define OASIS_SRC_CTRL_RPC_BUS_H_

#include <deque>
#include <functional>
#include <string>
#include <unordered_map>

#include "src/common/status.h"
#include "src/ctrl/messages.h"

namespace oasis {

class RpcBus {
 public:
  // Handles one decoded request and produces the response message.
  using Handler = std::function<ControlMessage(const ControlMessage&)>;

  // Registers an endpoint; fails if the name is taken.
  Status RegisterEndpoint(const std::string& name, Handler handler);
  void UnregisterEndpoint(const std::string& name);
  bool HasEndpoint(const std::string& name) const;

  // Synchronous request/response. The request is encoded, "transmitted",
  // decoded at the far end, handled, and the response makes the same trip —
  // so malformed messages fail exactly as they would on a real socket.
  StatusOr<ControlMessage> Call(const std::string& from, const std::string& to,
                                const ControlMessage& request);

  uint64_t calls() const { return calls_; }
  uint64_t bytes_transferred() const { return bytes_; }

  // The most recent wire lines, newest last ("from->to TYPE|...").
  const std::deque<std::string>& log() const { return log_; }

 private:
  void Record(const std::string& from, const std::string& to, const std::string& line);

  std::unordered_map<std::string, Handler> endpoints_;
  uint64_t calls_ = 0;
  uint64_t bytes_ = 0;
  std::deque<std::string> log_;
  static constexpr size_t kLogLimit = 64;
};

}  // namespace oasis

#endif  // OASIS_SRC_CTRL_RPC_BUS_H_
