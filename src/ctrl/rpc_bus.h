// In-process RPC bus connecting the cluster manager, host agents and
// clients (§4.1's "RPC interface"). Every call travels through the wire
// encoding (EncodeMessage/DecodeMessage) so the protocol is exercised
// end-to-end, and the last messages are retained for diagnostics.

#ifndef OASIS_SRC_CTRL_RPC_BUS_H_
#define OASIS_SRC_CTRL_RPC_BUS_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/ctrl/messages.h"

namespace oasis {

class FaultInjector;

class RpcBus {
 public:
  // Handles one decoded request and produces the response message.
  using Handler = std::function<ControlMessage(const ControlMessage&)>;

  // Registers an endpoint; fails if the name is taken.
  Status RegisterEndpoint(const std::string& name, Handler handler);
  void UnregisterEndpoint(const std::string& name);
  bool HasEndpoint(const std::string& name) const;

  // Synchronous request/response. The request is encoded, "transmitted",
  // decoded at the far end, handled, and the response makes the same trip —
  // so malformed messages fail exactly as they would on a real socket.
  StatusOr<ControlMessage> Call(const std::string& from, const std::string& to,
                                const ControlMessage& request);

  // Call() plus the recovery policy for lossy transports: a delivery the
  // fault injector drops (kUnavailable) is retried up to
  // FaultConfig::max_rpc_attempts times with capped exponential backoff.
  // Without an injector this is exactly Call(). Backoff time is accounted in
  // total_backoff() (the in-process bus cannot advance the simulated clock
  // itself).
  StatusOr<ControlMessage> CallWithRetry(const std::string& from, const std::string& to,
                                         const ControlMessage& request);

  // Attaches the fault injector that decides per-delivery drop/delay; null
  // (the default) makes delivery loss-free.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  // Publishes the simulated clock so diagnostics (tracer spans) carry
  // sim-time timestamps. Callers that don't run under a simulator may skip
  // this; spans then land at time zero.
  void set_now(SimTime now) { now_ = now; }
  SimTime now() const { return now_; }

  // One completed request/response exchange per Call().
  uint64_t calls() const { return calls_; }
  // Wire bytes across both legs of every exchange (requests + responses).
  uint64_t bytes_transferred() const { return bytes_; }
  // Deliveries the injector dropped / delayed, and the retry accounting.
  uint64_t dropped() const { return dropped_; }
  uint64_t delayed() const { return delayed_; }
  uint64_t retries() const { return retries_; }
  SimTime total_backoff() const { return total_backoff_; }
  SimTime total_delay() const { return total_delay_; }

  // The most recent wire lines, oldest first ("from->to TYPE|..."). At most
  // kLogLimit entries are retained; the ring enforces the bound structurally
  // so no insertion path can leak past it.
  std::vector<std::string> log() const;
  size_t log_capacity() const { return kLogLimit; }

 private:
  void Record(const std::string& from, const std::string& to, const std::string& line);

  std::unordered_map<std::string, Handler> endpoints_;
  FaultInjector* injector_ = nullptr;
  uint64_t calls_ = 0;
  uint64_t bytes_ = 0;
  uint64_t dropped_ = 0;
  uint64_t delayed_ = 0;
  uint64_t retries_ = 0;
  SimTime total_backoff_;
  SimTime total_delay_;
  SimTime now_;
  // Fixed-capacity ring: slot = recorded_ % kLogLimit.
  static constexpr size_t kLogLimit = 64;
  std::vector<std::string> ring_;
  uint64_t recorded_ = 0;
};

}  // namespace oasis

#endif  // OASIS_SRC_CTRL_RPC_BUS_H_
