#include "src/check/check.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/obs/metrics.h"

namespace oasis {
namespace check {
namespace {

std::atomic<InvariantChecker*> g_checker{nullptr};

// One stderr line per violation, fixed key=value shape so CI can grep and
// parse it:   [check] violation invariant=... t_us=... host=... vm=... ...
void WriteViolationLine(const Violation& v) {
  char line[512];
  int n = std::snprintf(line, sizeof(line),
                        "[check] violation invariant=%s t_us=%lld host=%lld vm=%lld "
                        "bytes=%lld detail=\"%s\"\n",
                        v.invariant, static_cast<long long>(v.at.micros()),
                        static_cast<long long>(v.args.host),
                        static_cast<long long>(v.args.vm),
                        static_cast<long long>(v.args.bytes), v.detail.c_str());
  if (n > 0) {
    std::fwrite(line, 1, static_cast<size_t>(n) < sizeof(line) ? static_cast<size_t>(n)
                                                               : sizeof(line) - 1,
                stderr);
  }
}

}  // namespace

const char* CheckModeName(CheckMode mode) {
  switch (mode) {
    case CheckMode::kOff:
      return "off";
    case CheckMode::kWarn:
      return "warn";
    case CheckMode::kStrict:
      return "strict";
  }
  return "?";
}

CheckConfig CheckConfig::FromEnv() {
  CheckConfig config;
  const char* value = std::getenv("OASIS_CHECK");
  if (value == nullptr || *value == '\0' || std::strcmp(value, "0") == 0 ||
      std::strcmp(value, "off") == 0) {
    config.mode = CheckMode::kOff;
  } else if (std::strcmp(value, "strict") == 0 || std::strcmp(value, "2") == 0) {
    config.mode = CheckMode::kStrict;
  } else if (std::strcmp(value, "1") == 0 || std::strcmp(value, "on") == 0 ||
             std::strcmp(value, "warn") == 0) {
    config.mode = CheckMode::kWarn;
  } else {
    std::fprintf(stderr, "[check] unknown OASIS_CHECK=%s, assuming warn\n", value);
    config.mode = CheckMode::kWarn;
  }
  return config;
}

void InvariantChecker::Report(const char* invariant, SimTime at, std::string detail,
                              obs::TraceArgs args) {
  Violation v{invariant, at, std::move(detail), args};
  WriteViolationLine(v);
  if (obs::Tracer* t = obs::Tracer::IfEnabled()) {
    t->Instant("check", invariant, at, args);
  }
  if (obs::MetricsRegistry* m = obs::MetricsRegistry::IfEnabled()) {
    m->counter("check.violations")->Increment();
  }
  violation_count_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (stored_.size() < kMaxStoredViolations) {
    stored_.push_back(std::move(v));
  }
}

std::vector<Violation> InvariantChecker::violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stored_;
}

uint64_t InvariantChecker::ReportToStderr() const {
  uint64_t count = violation_count();
  if (count == 0) {
    std::fprintf(stderr, "[check] invariant checker (%s): %llu checks, 0 violations\n",
                 CheckModeName(mode_), static_cast<unsigned long long>(checks_run()));
    return 0;
  }
  std::fprintf(stderr,
               "[check] invariant checker (%s): %llu checks, %llu VIOLATIONS\n",
               CheckModeName(mode_), static_cast<unsigned long long>(checks_run()),
               static_cast<unsigned long long>(count));
  std::vector<Violation> stored = violations();
  for (const Violation& v : stored) {
    WriteViolationLine(v);
  }
  if (count > stored.size()) {
    std::fprintf(stderr, "[check] ... %llu further violations not stored\n",
                 static_cast<unsigned long long>(count - stored.size()));
  }
  return count;
}

InvariantChecker* InvariantChecker::IfEnabled() {
  return g_checker.load(std::memory_order_relaxed);
}

void InvariantChecker::Install(InvariantChecker* checker) {
  g_checker.store(checker, std::memory_order_release);
}

CheckScope::CheckScope(const CheckConfig& config) : config_(config) {
  if (config_.Enabled()) {
    checker_ = std::make_unique<InvariantChecker>(config_.mode);
    InvariantChecker::Install(checker_.get());
  }
}

bool CheckScope::Finish() {
  if (finished_ || checker_ == nullptr) {
    return false;
  }
  finished_ = true;
  InvariantChecker::Install(nullptr);
  uint64_t count = checker_->ReportToStderr();
  return config_.mode == CheckMode::kStrict && count > 0;
}

CheckScope::~CheckScope() {
  if (Finish()) {
    // Deferred strict exit: collectors declared after this scope (ObsScope)
    // have already flushed, and sibling experiment runs finished normally.
    std::exit(kStrictExitCode);
  }
}

}  // namespace check
}  // namespace oasis
