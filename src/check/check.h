// Opt-in runtime invariant checking.
//
// The simulator's credibility rests on conservation laws — no VM lost or
// duplicated across hosts, bytes balanced across migrations, the energy
// ledger equal to the piecewise integral of the power model — yet nothing in
// a passing unit-test run proves they hold mid-simulation under chaos or
// concurrency. InvariantChecker is the collection point: instrumentation
// sites across sim/, power/, hyper/ and cluster/ gate on IfEnabled() (one
// relaxed atomic load, mirroring obs::Tracer) and report violations with the
// simulated timestamp and structured args. CheckScope wires the checker to
// the environment for a binary's main, exactly like obs::ObsScope:
//
//     OASIS_CHECK=strict ./build/bench/fig08_energy_savings
//
// runs the full day with every invariant asserted and exits non-zero (with a
// structured stderr report) if any fired.
//
// Environment variable:
//   OASIS_CHECK=off|warn|strict   off (default): checker disabled, zero
//                                 overhead beyond one predictable branch per
//                                 hook and zero RNG draws.
//                                 warn: record + report violations, exit
//                                 status untouched.
//                                 strict: like warn, but the process exits
//                                 with status 2 once the scope closes if any
//                                 violation was recorded.
//
// Violations are triple-reported: a structured stderr line at record time,
// an obs instant event (category "check") plus "check.violations" counter
// when those collectors are enabled, and the end-of-scope summary. The
// checker never writes to stdout, so golden-file comparisons hold with the
// checker on. It is thread-safe: parallel experiment runs share the global
// checker, and a violation in one run neither stops nor perturbs siblings.

#ifndef OASIS_SRC_CHECK_CHECK_H_
#define OASIS_SRC_CHECK_CHECK_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/obs/trace.h"

namespace oasis {
namespace check {

enum class CheckMode {
  kOff,
  kWarn,    // record and report, but do not affect the exit status
  kStrict,  // non-zero process exit if any violation was recorded
};

const char* CheckModeName(CheckMode mode);

// Exit status a strict CheckScope uses when violations were recorded.
inline constexpr int kStrictExitCode = 2;

struct CheckConfig {
  CheckMode mode = CheckMode::kOff;

  bool Enabled() const { return mode != CheckMode::kOff; }

  // Parses OASIS_CHECK ("", "0", "off" -> off; "1", "on", "warn" -> warn;
  // "2", "strict" -> strict; anything else warns on stderr and means warn).
  static CheckConfig FromEnv();
};

// One recorded invariant failure. `invariant` is a stable dotted identifier
// (e.g. "cluster.vm_unique_location"); it must be a string literal — events
// forwarded to the tracer store the pointer, not a copy.
struct Violation {
  const char* invariant = "";
  SimTime at;              // simulated time the check ran
  std::string detail;      // human-readable specifics
  obs::TraceArgs args;     // structured host/vm/bytes payload
};

class InvariantChecker {
 public:
  explicit InvariantChecker(CheckMode mode) : mode_(mode) {}
  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  CheckMode mode() const { return mode_; }

  // Records one violation: stores it (up to kMaxStoredViolations; the count
  // is always exact), writes one structured stderr line, and emits an obs
  // instant + counter when those collectors are enabled. Thread-safe.
  void Report(const char* invariant, SimTime at, std::string detail,
              obs::TraceArgs args = {});

  // The bulk-accounting entry point for instrumentation sites: counts
  // `checks` executed assertions and reports when `ok` is false. Hot paths
  // that run per event skip the counting overload and call Report directly
  // on failure.
  template <typename DetailFn>
  void Expect(bool ok, const char* invariant, SimTime at, DetailFn&& detail,
              obs::TraceArgs args = {}) {
    checks_run_.fetch_add(1, std::memory_order_relaxed);
    if (!ok) {
      Report(invariant, at, detail(), args);
    }
  }
  void CountChecks(uint64_t checks) {
    checks_run_.fetch_add(checks, std::memory_order_relaxed);
  }

  uint64_t checks_run() const { return checks_run_.load(std::memory_order_relaxed); }
  uint64_t violation_count() const {
    return violation_count_.load(std::memory_order_relaxed);
  }
  std::vector<Violation> violations() const;

  // Writes the end-of-run summary (one line per stored violation plus a
  // checks/violations tally) to stderr. Returns the violation count.
  uint64_t ReportToStderr() const;

  // --- process-wide wiring -------------------------------------------------
  // The installed checker, nullptr when checking is disabled — the hot-path
  // gate at every instrumentation site:
  //   if (check::InvariantChecker* c = check::InvariantChecker::IfEnabled()) ...
  static InvariantChecker* IfEnabled();
  // Installs `checker` as the process-wide instance (nullptr uninstalls).
  static void Install(InvariantChecker* checker);

  // Stored-violation cap: the count stays exact past it, but a pathological
  // run cannot grow the report without bound.
  static constexpr size_t kMaxStoredViolations = 256;

 private:
  const CheckMode mode_;
  std::atomic<uint64_t> checks_run_{0};
  std::atomic<uint64_t> violation_count_{0};
  mutable std::mutex mu_;
  std::vector<Violation> stored_;
};

// RAII: installs an InvariantChecker per CheckConfig::FromEnv() for the
// duration of a binary's main. On destruction it uninstalls, prints the
// summary, and — in strict mode with violations recorded — exits the process
// with kStrictExitCode. Declare it *before* ObsScope so traces and metrics
// flush before a strict exit:
//
//     int main() {
//       oasis::check::CheckScope check_scope;  // OASIS_CHECK
//       oasis::obs::ObsScope obs_scope;        // OASIS_TRACE / OASIS_METRICS
//       ...
//     }
class CheckScope {
 public:
  explicit CheckScope(const CheckConfig& config = CheckConfig::FromEnv());
  ~CheckScope();
  CheckScope(const CheckScope&) = delete;
  CheckScope& operator=(const CheckScope&) = delete;

  // Uninstalls the checker and prints the summary now (idempotent). Returns
  // true when the strict contract is violated (strict mode + violations);
  // the destructor turns that into a process exit.
  bool Finish();

  const CheckConfig& config() const { return config_; }
  // nullptr when the scope is disabled (OASIS_CHECK unset/off).
  InvariantChecker* checker() { return checker_.get(); }

 private:
  CheckConfig config_;
  std::unique_ptr<InvariantChecker> checker_;
  bool finished_ = false;
};

}  // namespace check
}  // namespace oasis

#endif  // OASIS_SRC_CHECK_CHECK_H_
